file(REMOVE_RECURSE
  "CMakeFiles/bench_alloc_overhead.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_alloc_overhead.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_alloc_overhead.dir/bench_alloc_overhead.cpp.o"
  "CMakeFiles/bench_alloc_overhead.dir/bench_alloc_overhead.cpp.o.d"
  "bench_alloc_overhead"
  "bench_alloc_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alloc_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
