# Empty dependencies file for bench_alloc_overhead.
# This may be replaced when dependencies are built.
