file(REMOVE_RECURSE
  "CMakeFiles/bench_heap_conservativism.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_heap_conservativism.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_heap_conservativism.dir/bench_heap_conservativism.cpp.o"
  "CMakeFiles/bench_heap_conservativism.dir/bench_heap_conservativism.cpp.o.d"
  "bench_heap_conservativism"
  "bench_heap_conservativism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heap_conservativism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
