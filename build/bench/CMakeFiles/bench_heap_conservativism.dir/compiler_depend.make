# Empty compiler generated dependencies file for bench_heap_conservativism.
# This may be replaced when dependencies are built.
