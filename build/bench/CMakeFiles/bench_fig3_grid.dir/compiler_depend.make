# Empty compiler generated dependencies file for bench_fig3_grid.
# This may be replaced when dependencies are built.
