file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_grid.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_fig3_grid.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_fig3_grid.dir/bench_fig3_grid.cpp.o"
  "CMakeFiles/bench_fig3_grid.dir/bench_fig3_grid.cpp.o.d"
  "bench_fig3_grid"
  "bench_fig3_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
