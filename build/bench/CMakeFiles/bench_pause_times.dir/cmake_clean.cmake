file(REMOVE_RECURSE
  "CMakeFiles/bench_pause_times.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_pause_times.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_pause_times.dir/bench_pause_times.cpp.o"
  "CMakeFiles/bench_pause_times.dir/bench_pause_times.cpp.o.d"
  "bench_pause_times"
  "bench_pause_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pause_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
