# Empty dependencies file for bench_pause_times.
# This may be replaced when dependencies are built.
