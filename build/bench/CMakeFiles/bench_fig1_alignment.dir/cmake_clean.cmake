file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_alignment.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_fig1_alignment.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_fig1_alignment.dir/bench_fig1_alignment.cpp.o"
  "CMakeFiles/bench_fig1_alignment.dir/bench_fig1_alignment.cpp.o.d"
  "bench_fig1_alignment"
  "bench_fig1_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
