# Empty compiler generated dependencies file for bench_zorn_cost.
# This may be replaced when dependencies are built.
