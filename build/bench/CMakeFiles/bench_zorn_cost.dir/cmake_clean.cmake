file(REMOVE_RECURSE
  "CMakeFiles/bench_zorn_cost.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_zorn_cost.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_zorn_cost.dir/bench_zorn_cost.cpp.o"
  "CMakeFiles/bench_zorn_cost.dir/bench_zorn_cost.cpp.o.d"
  "bench_zorn_cost"
  "bench_zorn_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_zorn_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
