file(REMOVE_RECURSE
  "CMakeFiles/bench_blacklist_ablation.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_blacklist_ablation.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_blacklist_ablation.dir/bench_blacklist_ablation.cpp.o"
  "CMakeFiles/bench_blacklist_ablation.dir/bench_blacklist_ablation.cpp.o.d"
  "bench_blacklist_ablation"
  "bench_blacklist_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blacklist_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
