# Empty compiler generated dependencies file for bench_blacklist_ablation.
# This may be replaced when dependencies are built.
