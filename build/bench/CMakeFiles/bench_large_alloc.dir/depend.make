# Empty dependencies file for bench_large_alloc.
# This may be replaced when dependencies are built.
