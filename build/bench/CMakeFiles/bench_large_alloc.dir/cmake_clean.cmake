file(REMOVE_RECURSE
  "CMakeFiles/bench_large_alloc.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_large_alloc.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_large_alloc.dir/bench_large_alloc.cpp.o"
  "CMakeFiles/bench_large_alloc.dir/bench_large_alloc.cpp.o.d"
  "bench_large_alloc"
  "bench_large_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_large_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
