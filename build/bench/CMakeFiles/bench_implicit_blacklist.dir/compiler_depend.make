# Empty compiler generated dependencies file for bench_implicit_blacklist.
# This may be replaced when dependencies are built.
