file(REMOVE_RECURSE
  "CMakeFiles/bench_implicit_blacklist.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_implicit_blacklist.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_implicit_blacklist.dir/bench_implicit_blacklist.cpp.o"
  "CMakeFiles/bench_implicit_blacklist.dir/bench_implicit_blacklist.cpp.o.d"
  "bench_implicit_blacklist"
  "bench_implicit_blacklist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_implicit_blacklist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
