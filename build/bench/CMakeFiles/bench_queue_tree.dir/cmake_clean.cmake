file(REMOVE_RECURSE
  "CMakeFiles/bench_queue_tree.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_queue_tree.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_queue_tree.dir/bench_queue_tree.cpp.o"
  "CMakeFiles/bench_queue_tree.dir/bench_queue_tree.cpp.o.d"
  "bench_queue_tree"
  "bench_queue_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_queue_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
