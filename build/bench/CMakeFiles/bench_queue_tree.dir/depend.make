# Empty dependencies file for bench_queue_tree.
# This may be replaced when dependencies are built.
