# Empty compiler generated dependencies file for bench_cords.
# This may be replaced when dependencies are built.
