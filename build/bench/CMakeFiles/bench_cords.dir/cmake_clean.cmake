file(REMOVE_RECURSE
  "CMakeFiles/bench_cords.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_cords.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_cords.dir/bench_cords.cpp.o"
  "CMakeFiles/bench_cords.dir/bench_cords.cpp.o.d"
  "bench_cords"
  "bench_cords.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cords.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
