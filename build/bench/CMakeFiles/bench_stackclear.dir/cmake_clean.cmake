file(REMOVE_RECURSE
  "CMakeFiles/bench_stackclear.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_stackclear.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_stackclear.dir/bench_stackclear.cpp.o"
  "CMakeFiles/bench_stackclear.dir/bench_stackclear.cpp.o.d"
  "bench_stackclear"
  "bench_stackclear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stackclear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
