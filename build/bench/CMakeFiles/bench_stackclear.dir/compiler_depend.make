# Empty compiler generated dependencies file for bench_stackclear.
# This may be replaced when dependencies are built.
