file(REMOVE_RECURSE
  "CMakeFiles/example_c_api_demo.dir/c_api_demo.cpp.o"
  "CMakeFiles/example_c_api_demo.dir/c_api_demo.cpp.o.d"
  "example_c_api_demo"
  "example_c_api_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_c_api_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
