# Empty dependencies file for example_c_api_demo.
# This may be replaced when dependencies are built.
