file(REMOVE_RECURSE
  "CMakeFiles/example_leak_detector.dir/leak_detector.cpp.o"
  "CMakeFiles/example_leak_detector.dir/leak_detector.cpp.o.d"
  "example_leak_detector"
  "example_leak_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_leak_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
