# Empty dependencies file for example_leak_detector.
# This may be replaced when dependencies are built.
