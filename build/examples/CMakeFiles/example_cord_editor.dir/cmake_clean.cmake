file(REMOVE_RECURSE
  "CMakeFiles/example_cord_editor.dir/cord_editor.cpp.o"
  "CMakeFiles/example_cord_editor.dir/cord_editor.cpp.o.d"
  "example_cord_editor"
  "example_cord_editor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cord_editor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
