# Empty compiler generated dependencies file for example_cord_editor.
# This may be replaced when dependencies are built.
