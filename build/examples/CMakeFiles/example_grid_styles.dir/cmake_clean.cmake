file(REMOVE_RECURSE
  "CMakeFiles/example_grid_styles.dir/grid_styles.cpp.o"
  "CMakeFiles/example_grid_styles.dir/grid_styles.cpp.o.d"
  "example_grid_styles"
  "example_grid_styles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_grid_styles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
