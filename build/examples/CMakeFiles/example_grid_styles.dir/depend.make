# Empty dependencies file for example_grid_styles.
# This may be replaced when dependencies are built.
