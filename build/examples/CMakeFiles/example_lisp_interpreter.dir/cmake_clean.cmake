file(REMOVE_RECURSE
  "CMakeFiles/example_lisp_interpreter.dir/lisp_interpreter.cpp.o"
  "CMakeFiles/example_lisp_interpreter.dir/lisp_interpreter.cpp.o.d"
  "example_lisp_interpreter"
  "example_lisp_interpreter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_lisp_interpreter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
