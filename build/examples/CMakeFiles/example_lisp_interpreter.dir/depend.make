# Empty dependencies file for example_lisp_interpreter.
# This may be replaced when dependencies are built.
