# Empty compiler generated dependencies file for cgc_tests.
# This may be replaced when dependencies are built.
