
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/TestAppendixB.cpp" "tests/CMakeFiles/cgc_tests.dir/TestAppendixB.cpp.o" "gcc" "tests/CMakeFiles/cgc_tests.dir/TestAppendixB.cpp.o.d"
  "/root/repo/tests/TestBaseline.cpp" "tests/CMakeFiles/cgc_tests.dir/TestBaseline.cpp.o" "gcc" "tests/CMakeFiles/cgc_tests.dir/TestBaseline.cpp.o.d"
  "/root/repo/tests/TestBlacklist.cpp" "tests/CMakeFiles/cgc_tests.dir/TestBlacklist.cpp.o" "gcc" "tests/CMakeFiles/cgc_tests.dir/TestBlacklist.cpp.o.d"
  "/root/repo/tests/TestCApi.cpp" "tests/CMakeFiles/cgc_tests.dir/TestCApi.cpp.o" "gcc" "tests/CMakeFiles/cgc_tests.dir/TestCApi.cpp.o.d"
  "/root/repo/tests/TestCollector.cpp" "tests/CMakeFiles/cgc_tests.dir/TestCollector.cpp.o" "gcc" "tests/CMakeFiles/cgc_tests.dir/TestCollector.cpp.o.d"
  "/root/repo/tests/TestCord.cpp" "tests/CMakeFiles/cgc_tests.dir/TestCord.cpp.o" "gcc" "tests/CMakeFiles/cgc_tests.dir/TestCord.cpp.o.d"
  "/root/repo/tests/TestDeath.cpp" "tests/CMakeFiles/cgc_tests.dir/TestDeath.cpp.o" "gcc" "tests/CMakeFiles/cgc_tests.dir/TestDeath.cpp.o.d"
  "/root/repo/tests/TestExtensions.cpp" "tests/CMakeFiles/cgc_tests.dir/TestExtensions.cpp.o" "gcc" "tests/CMakeFiles/cgc_tests.dir/TestExtensions.cpp.o.d"
  "/root/repo/tests/TestFinalization.cpp" "tests/CMakeFiles/cgc_tests.dir/TestFinalization.cpp.o" "gcc" "tests/CMakeFiles/cgc_tests.dir/TestFinalization.cpp.o.d"
  "/root/repo/tests/TestHeap.cpp" "tests/CMakeFiles/cgc_tests.dir/TestHeap.cpp.o" "gcc" "tests/CMakeFiles/cgc_tests.dir/TestHeap.cpp.o.d"
  "/root/repo/tests/TestHeapWalk.cpp" "tests/CMakeFiles/cgc_tests.dir/TestHeapWalk.cpp.o" "gcc" "tests/CMakeFiles/cgc_tests.dir/TestHeapWalk.cpp.o.d"
  "/root/repo/tests/TestInterp.cpp" "tests/CMakeFiles/cgc_tests.dir/TestInterp.cpp.o" "gcc" "tests/CMakeFiles/cgc_tests.dir/TestInterp.cpp.o.d"
  "/root/repo/tests/TestInvariants.cpp" "tests/CMakeFiles/cgc_tests.dir/TestInvariants.cpp.o" "gcc" "tests/CMakeFiles/cgc_tests.dir/TestInvariants.cpp.o.d"
  "/root/repo/tests/TestLazySweep.cpp" "tests/CMakeFiles/cgc_tests.dir/TestLazySweep.cpp.o" "gcc" "tests/CMakeFiles/cgc_tests.dir/TestLazySweep.cpp.o.d"
  "/root/repo/tests/TestMarker.cpp" "tests/CMakeFiles/cgc_tests.dir/TestMarker.cpp.o" "gcc" "tests/CMakeFiles/cgc_tests.dir/TestMarker.cpp.o.d"
  "/root/repo/tests/TestPageAllocatorFuzz.cpp" "tests/CMakeFiles/cgc_tests.dir/TestPageAllocatorFuzz.cpp.o" "gcc" "tests/CMakeFiles/cgc_tests.dir/TestPageAllocatorFuzz.cpp.o.d"
  "/root/repo/tests/TestProperty.cpp" "tests/CMakeFiles/cgc_tests.dir/TestProperty.cpp.o" "gcc" "tests/CMakeFiles/cgc_tests.dir/TestProperty.cpp.o.d"
  "/root/repo/tests/TestRetentionTracer.cpp" "tests/CMakeFiles/cgc_tests.dir/TestRetentionTracer.cpp.o" "gcc" "tests/CMakeFiles/cgc_tests.dir/TestRetentionTracer.cpp.o.d"
  "/root/repo/tests/TestRootSet.cpp" "tests/CMakeFiles/cgc_tests.dir/TestRootSet.cpp.o" "gcc" "tests/CMakeFiles/cgc_tests.dir/TestRootSet.cpp.o.d"
  "/root/repo/tests/TestSim.cpp" "tests/CMakeFiles/cgc_tests.dir/TestSim.cpp.o" "gcc" "tests/CMakeFiles/cgc_tests.dir/TestSim.cpp.o.d"
  "/root/repo/tests/TestStructures.cpp" "tests/CMakeFiles/cgc_tests.dir/TestStructures.cpp.o" "gcc" "tests/CMakeFiles/cgc_tests.dir/TestStructures.cpp.o.d"
  "/root/repo/tests/TestSupport.cpp" "tests/CMakeFiles/cgc_tests.dir/TestSupport.cpp.o" "gcc" "tests/CMakeFiles/cgc_tests.dir/TestSupport.cpp.o.d"
  "/root/repo/tests/TestTable1Integration.cpp" "tests/CMakeFiles/cgc_tests.dir/TestTable1Integration.cpp.o" "gcc" "tests/CMakeFiles/cgc_tests.dir/TestTable1Integration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cgc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
