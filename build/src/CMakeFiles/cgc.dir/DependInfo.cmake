
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/ExplicitHeap.cpp" "src/CMakeFiles/cgc.dir/baseline/ExplicitHeap.cpp.o" "gcc" "src/CMakeFiles/cgc.dir/baseline/ExplicitHeap.cpp.o.d"
  "/root/repo/src/capi/cgc.cpp" "src/CMakeFiles/cgc.dir/capi/cgc.cpp.o" "gcc" "src/CMakeFiles/cgc.dir/capi/cgc.cpp.o.d"
  "/root/repo/src/cords/Cord.cpp" "src/CMakeFiles/cgc.dir/cords/Cord.cpp.o" "gcc" "src/CMakeFiles/cgc.dir/cords/Cord.cpp.o.d"
  "/root/repo/src/core/Blacklist.cpp" "src/CMakeFiles/cgc.dir/core/Blacklist.cpp.o" "gcc" "src/CMakeFiles/cgc.dir/core/Blacklist.cpp.o.d"
  "/root/repo/src/core/Collector.cpp" "src/CMakeFiles/cgc.dir/core/Collector.cpp.o" "gcc" "src/CMakeFiles/cgc.dir/core/Collector.cpp.o.d"
  "/root/repo/src/core/Finalization.cpp" "src/CMakeFiles/cgc.dir/core/Finalization.cpp.o" "gcc" "src/CMakeFiles/cgc.dir/core/Finalization.cpp.o.d"
  "/root/repo/src/core/GcNew.cpp" "src/CMakeFiles/cgc.dir/core/GcNew.cpp.o" "gcc" "src/CMakeFiles/cgc.dir/core/GcNew.cpp.o.d"
  "/root/repo/src/core/Marker.cpp" "src/CMakeFiles/cgc.dir/core/Marker.cpp.o" "gcc" "src/CMakeFiles/cgc.dir/core/Marker.cpp.o.d"
  "/root/repo/src/core/RetentionTracer.cpp" "src/CMakeFiles/cgc.dir/core/RetentionTracer.cpp.o" "gcc" "src/CMakeFiles/cgc.dir/core/RetentionTracer.cpp.o.d"
  "/root/repo/src/heap/BlockTable.cpp" "src/CMakeFiles/cgc.dir/heap/BlockTable.cpp.o" "gcc" "src/CMakeFiles/cgc.dir/heap/BlockTable.cpp.o.d"
  "/root/repo/src/heap/ObjectHeap.cpp" "src/CMakeFiles/cgc.dir/heap/ObjectHeap.cpp.o" "gcc" "src/CMakeFiles/cgc.dir/heap/ObjectHeap.cpp.o.d"
  "/root/repo/src/heap/PageAllocator.cpp" "src/CMakeFiles/cgc.dir/heap/PageAllocator.cpp.o" "gcc" "src/CMakeFiles/cgc.dir/heap/PageAllocator.cpp.o.d"
  "/root/repo/src/heap/SizeClassTable.cpp" "src/CMakeFiles/cgc.dir/heap/SizeClassTable.cpp.o" "gcc" "src/CMakeFiles/cgc.dir/heap/SizeClassTable.cpp.o.d"
  "/root/repo/src/heap/VirtualArena.cpp" "src/CMakeFiles/cgc.dir/heap/VirtualArena.cpp.o" "gcc" "src/CMakeFiles/cgc.dir/heap/VirtualArena.cpp.o.d"
  "/root/repo/src/interp/Builtins.cpp" "src/CMakeFiles/cgc.dir/interp/Builtins.cpp.o" "gcc" "src/CMakeFiles/cgc.dir/interp/Builtins.cpp.o.d"
  "/root/repo/src/interp/Interpreter.cpp" "src/CMakeFiles/cgc.dir/interp/Interpreter.cpp.o" "gcc" "src/CMakeFiles/cgc.dir/interp/Interpreter.cpp.o.d"
  "/root/repo/src/roots/MachineStack.cpp" "src/CMakeFiles/cgc.dir/roots/MachineStack.cpp.o" "gcc" "src/CMakeFiles/cgc.dir/roots/MachineStack.cpp.o.d"
  "/root/repo/src/sim/PlatformProfile.cpp" "src/CMakeFiles/cgc.dir/sim/PlatformProfile.cpp.o" "gcc" "src/CMakeFiles/cgc.dir/sim/PlatformProfile.cpp.o.d"
  "/root/repo/src/sim/SimStack.cpp" "src/CMakeFiles/cgc.dir/sim/SimStack.cpp.o" "gcc" "src/CMakeFiles/cgc.dir/sim/SimStack.cpp.o.d"
  "/root/repo/src/sim/SyntheticSegments.cpp" "src/CMakeFiles/cgc.dir/sim/SyntheticSegments.cpp.o" "gcc" "src/CMakeFiles/cgc.dir/sim/SyntheticSegments.cpp.o.d"
  "/root/repo/src/structures/BinaryTree.cpp" "src/CMakeFiles/cgc.dir/structures/BinaryTree.cpp.o" "gcc" "src/CMakeFiles/cgc.dir/structures/BinaryTree.cpp.o.d"
  "/root/repo/src/structures/Grid.cpp" "src/CMakeFiles/cgc.dir/structures/Grid.cpp.o" "gcc" "src/CMakeFiles/cgc.dir/structures/Grid.cpp.o.d"
  "/root/repo/src/structures/ListReversal.cpp" "src/CMakeFiles/cgc.dir/structures/ListReversal.cpp.o" "gcc" "src/CMakeFiles/cgc.dir/structures/ListReversal.cpp.o.d"
  "/root/repo/src/structures/ProgramT.cpp" "src/CMakeFiles/cgc.dir/structures/ProgramT.cpp.o" "gcc" "src/CMakeFiles/cgc.dir/structures/ProgramT.cpp.o.d"
  "/root/repo/src/support/BitVector.cpp" "src/CMakeFiles/cgc.dir/support/BitVector.cpp.o" "gcc" "src/CMakeFiles/cgc.dir/support/BitVector.cpp.o.d"
  "/root/repo/src/support/Random.cpp" "src/CMakeFiles/cgc.dir/support/Random.cpp.o" "gcc" "src/CMakeFiles/cgc.dir/support/Random.cpp.o.d"
  "/root/repo/src/support/Statistics.cpp" "src/CMakeFiles/cgc.dir/support/Statistics.cpp.o" "gcc" "src/CMakeFiles/cgc.dir/support/Statistics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
