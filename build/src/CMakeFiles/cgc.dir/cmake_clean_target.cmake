file(REMOVE_RECURSE
  "libcgc.a"
)
