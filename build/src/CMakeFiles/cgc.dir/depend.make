# Empty dependencies file for cgc.
# This may be replaced when dependencies are built.
