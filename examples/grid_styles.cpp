//===- examples/grid_styles.cpp - §4 programming-style guidance -----------===//
//
// A walkable version of the paper's §4 advice: "When it is possible,
// the introduction of explicit cons-cells conveys more information to
// the garbage collector than the use of embedded link fields, and
// should be encouraged, in the presence of any garbage collector."
//
// The program builds the same 64x64 linked grid both ways (the paper's
// Figures 3 and 4), drops it, plants one stray reference into the
// middle, and shows what each representation costs.  It then shows the
// queue-link-clearing advice in action.
//
//===----------------------------------------------------------------------===//

#include "core/Collector.h"
#include "structures/FalseRef.h"
#include "structures/Grid.h"
#include "structures/Queue.h"
#include <cstdio>

using namespace cgc;

namespace {

GcConfig exampleConfig() {
  GcConfig Config;
  Config.MinHeapBytesBeforeGc = ~uint64_t(0);
  return Config;
}

void demoGrids() {
  std::printf("== figures 3 and 4: one stray reference into a 64x64 "
              "grid ==\n\n");

  {
    Collector GC(exampleConfig());
    EmbeddedGrid Grid(GC, 64, 64);
    std::printf("embedded links (figure 3): %llu KiB structure\n",
                (unsigned long long)(Grid.totalBytes() >> 10));
    Grid.dropRoots();
    PlantedRef Stray(GC);
    Stray.setOffset(Grid.vertexOffset(16, 16));
    CollectionStats Cycle = GC.collect();
    std::printf("  stray ref at vertex (16,16): %llu objects / %llu KiB "
                "retained\n",
                (unsigned long long)Cycle.ObjectsLive,
                (unsigned long long)(Cycle.BytesLive >> 10));
    std::printf("  (everything right of column 16 and below row 16 is "
                "reachable)\n\n");
  }
  {
    Collector GC(exampleConfig());
    SeparateGrid Grid(GC, 64, 64);
    std::printf("separate cons cells (figure 4): %llu KiB structure\n",
                (unsigned long long)(Grid.totalBytes() >> 10));
    Grid.dropRoots();
    PlantedRef Stray(GC);
    Stray.setOffset(Grid.rowCellOffset(16, 16));
    CollectionStats Cycle = GC.collect();
    std::printf("  stray ref at row cell (16,16): %llu objects / %llu "
                "KiB retained\n",
                (unsigned long long)Cycle.ObjectsLive,
                (unsigned long long)(Cycle.BytesLive >> 10));
    std::printf("  (at most the rest of one row spine and its "
                "pointer-free payloads)\n\n");
  }
}

void demoQueueClearing() {
  std::printf("== the queue advice: clear the link on dequeue ==\n\n");
  for (bool Clear : {false, true}) {
    Collector GC(exampleConfig());
    GcQueue Queue(GC, Clear);
    for (uint64_t I = 0; I != 8; ++I)
      Queue.enqueue(I);
    // One stray reference to the current front element.
    PlantedRef Stray(GC);
    Stray.setPointer(Queue.head());
    // Steady-state processing: 50,000 items flow through.
    for (uint64_t I = 0; I != 50000; ++I) {
      Queue.enqueue(I);
      Queue.dequeue();
    }
    CollectionStats Cycle = GC.collect();
    std::printf("%-28s live after 50k items: %6llu nodes (%llu KiB)\n",
                Clear ? "links cleared on dequeue:"
                      : "links left in place:",
                (unsigned long long)Cycle.ObjectsLive,
                (unsigned long long)(Cycle.BytesLive >> 10));
  }
  std::printf("\n\"Note that clearing links is much safer than explicit "
              "deallocation ... it is\nalso easy to decide when it is "
              "safe to clear links based on very local\ninformation.\" "
              "(paper, §4)\n");
}

} // namespace

int main() {
  demoGrids();
  demoQueueClearing();
  return 0;
}
