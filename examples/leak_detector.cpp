//===- examples/leak_detector.cpp - GC as a debugging tool ----------------===//
//
// The paper notes that conservative collectors "have also been used as
// a debugging tool for programs that explicitly deallocate storage":
// run the program with its explicit malloc/free calls mapped onto the
// collector, and let a collection report every allocation that is
// unreachable but was never freed — a leak — with no false positives
// from the program's own bookkeeping.
//
// This example runs a small "document store" that manages its memory
// explicitly and contains two classic bugs:
//   1. a forgotten free when a document is replaced, and
//   2. a component that frees the container but not its payload.
// The collector's leak callback pinpoints both.
//
//===----------------------------------------------------------------------===//

#include "core/Collector.h"
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

using namespace cgc;

namespace {

/// The application under test: an explicitly-managed document store.
class DocumentStore {
public:
  explicit DocumentStore(Collector &GC) : GC(GC) {
    // The index is rooted so reachable documents are never reported.
    IndexRoot = GC.addRootRange(Index, Index + MaxDocs,
                                RootEncoding::Native64,
                                RootSource::Client, "document-index");
  }
  ~DocumentStore() { GC.removeRootRange(IndexRoot); }

  struct Document {
    char Title[32];
    char *Body;
    size_t BodyLength;
  };

  void put(unsigned Slot, const char *Title, const char *Body) {
    auto *Doc = static_cast<Document *>(GC.allocate(sizeof(Document)));
    std::snprintf(Doc->Title, sizeof(Doc->Title), "%s", Title);
    Doc->BodyLength = std::strlen(Body);
    Doc->Body = static_cast<char *>(
        GC.allocate(Doc->BodyLength + 1, ObjectKind::PointerFree));
    std::memcpy(Doc->Body, Body, Doc->BodyLength + 1);
    // BUG 1: the document previously in this slot is never freed; the
    // reference is simply overwritten.
    Index[Slot] = reinterpret_cast<uint64_t>(Doc);
  }

  void drop(unsigned Slot) {
    auto *Doc = reinterpret_cast<Document *>(Index[Slot]);
    if (!Doc)
      return;
    // BUG 2: the container is freed but its body is not.
    GC.deallocate(Doc);
    Index[Slot] = 0;
  }

private:
  static constexpr unsigned MaxDocs = 16;
  Collector &GC;
  uint64_t Index[MaxDocs] = {};
  RootId IndexRoot;
};

} // namespace

int main() {
  GcConfig Config;
  Config.MinHeapBytesBeforeGc = ~uint64_t(0); // We collect explicitly.
  Collector GC(Config);

  std::printf("== cgc leak detector ==\n");
  std::printf("running the document store with explicit deallocation...\n");

  DocumentStore Store(GC);
  Store.put(0, "readme", "A short body.");
  Store.put(1, "design", "Another body, somewhat longer than the first.");
  Store.put(0, "readme-v2", "Replaces slot 0; v1 leaks (bug 1).");
  Store.drop(1); // Frees the Document but leaks its body (bug 2).

  // Audit: one collection, with every unreachable-but-unfreed object
  // reported.  Reachable documents (slot 0's v2) are *not* reported —
  // the collector proves them reachable, so there are no false alarms.
  std::printf("\nleak report:\n");
  size_t LeakCount = 0, LeakBytes = 0;
  GC.setLeakCallback([&](void *Ptr, size_t Bytes, ObjectKind Kind) {
    ++LeakCount;
    LeakBytes += Bytes;
    std::printf("  LEAK: %zu bytes at window offset 0x%llx (%s)\n",
                Bytes,
                (unsigned long long)GC.windowOffsetOf(Ptr),
                objectKindName(Kind));
  });
  GC.collect("leak-audit");

  std::printf("\n%zu leaked allocations, %zu bytes total\n", LeakCount,
              LeakBytes);
  std::printf("expected: 3 leaks — the replaced document (container + "
              "body) and the dropped\ndocument's body.  The live "
              "documents in the index were not reported.\n");
  std::printf("\nNote the paper's related advice: clearing links is "
              "\"much safer than explicit\ndeallocation, since an error "
              "cannot result in random overwrites of unrelated\n"
              "modules' data\" — a double drop() here is caught by the "
              "collector, not silent\ncorruption.\n");
  return LeakCount == 3 ? 0 : 1;
}
