//===- examples/redirect_demo.cpp - Program for the LD_PRELOAD shim ------===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
//
// An ordinary C++ program that knows nothing about cgc: it includes no
// collector header and links only libc/libstdc++.  Run it plain and it
// uses libc malloc; run it under the shim
//
//   LD_PRELOAD=./libcgc_preload.so ./example_redirect_demo
//
// and every malloc/new/strdup below is served by the collector,
// including the deliberately hostile calls at the end (freeing a
// stack address and a stack-allocated buffer) which the shim must
// degrade to structured incidents rather than corruption.  CI runs it
// both ways and requires identical program output.
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

namespace {

// Linked list churned hard enough to need reclamation under a
// collector: only the newest window of nodes stays reachable.
struct Node {
  int Value;
  Node *Next;
};

unsigned long long churnList(unsigned Rounds) {
  unsigned long long Sum = 0;
  Node *Head = nullptr;
  for (unsigned Round = 0; Round != Rounds; ++Round) {
    for (int I = 0; I != 1000; ++I) {
      Node *N = static_cast<Node *>(std::malloc(sizeof(Node)));
      if (!N)
        std::abort();
      N->Value = I;
      N->Next = Head;
      Head = N;
    }
    // Drop all but the first 10 nodes; under libc this frees them,
    // under the shim the frees are real too (explicit free of GC
    // memory reclaims eagerly).
    Node *Keep = Head;
    for (int I = 0; I != 9 && Keep; ++I)
      Keep = Keep->Next;
    Node *Drop = Keep ? Keep->Next : nullptr;
    if (Keep)
      Keep->Next = nullptr;
    while (Drop) {
      Node *Next = Drop->Next;
      Sum += static_cast<unsigned>(Drop->Value);
      std::free(Drop);
      Drop = Next;
    }
  }
  while (Head) {
    Node *Next = Head->Next;
    Sum += static_cast<unsigned>(Head->Value);
    std::free(Head);
    Head = Next;
  }
  return Sum;
}

std::string buildDocument(unsigned Paragraphs) {
  std::string Doc;
  std::vector<std::unique_ptr<std::string>> Fragments;
  for (unsigned I = 0; I != Paragraphs; ++I) {
    Fragments.push_back(std::make_unique<std::string>(
        "paragraph " + std::to_string(I) + ": " +
        std::string(40 + I % 17, 'x')));
  }
  for (const auto &Fragment : Fragments) {
    Doc += *Fragment;
    Doc += '\n';
  }
  return Doc;
}

} // namespace

int main() {
  std::printf("redirect_demo: start\n");

  unsigned long long Sum = churnList(50);
  std::printf("redirect_demo: churn sum %llu\n", Sum);

  std::string Doc = buildDocument(200);
  std::printf("redirect_demo: document %zu bytes\n", Doc.size());

  // The C string family: strdup + realloc growth.
  char *Name = strdup("conservative");
  char *Grown = static_cast<char *>(std::realloc(Name, 64));
  if (!Grown)
    std::abort();
  std::strcat(Grown, "-collector");
  std::printf("redirect_demo: %s (usable >= 64)\n", Grown);
  std::free(Grown);

  // calloc with sane and hostile sizes.
  int *Zeros = static_cast<int *>(std::calloc(1024, sizeof(int)));
  if (!Zeros || Zeros[512] != 0)
    std::abort();
  std::free(Zeros);
  void *Overflow = std::calloc(static_cast<size_t>(-1) / 8, 16);
  std::printf("redirect_demo: overflowing calloc -> %s\n",
              Overflow ? "POINTER (bad)" : "NULL (good)");

  // Aligned allocation through the standard entry points.
  void *Aligned = nullptr;
  if (posix_memalign(&Aligned, 256, 1000) != 0 ||
      (reinterpret_cast<uintptr_t>(Aligned) & 255) != 0)
    std::abort();
  std::memset(Aligned, 0x5a, 1000);
  std::free(Aligned);
  std::printf("redirect_demo: posix_memalign 256-byte alignment ok\n");

  // Hostile frees an unmodified-but-buggy program might perform.
  // Under plain libc these are undefined behavior (glibc aborts); under
  // the shim with CGC_REDIRECT_FOREIGN_FREE=warn they degrade to
  // structured foreign-free incidents and the program keeps running.
  // Gated on both so the demo never aborts by design: in the default
  // passthrough mode a truly foreign pointer is handed to the real
  // libc free, which is the right call for pre-shim libc allocations
  // but still fatal for a stack address.
  const char *Preload = getenv("LD_PRELOAD");
  const char *ForeignMode = getenv("CGC_REDIRECT_FOREIGN_FREE");
  if (Preload && std::strstr(Preload, "cgc") && ForeignMode &&
      std::strcmp(ForeignMode, "warn") == 0) {
    char StackBuffer[64];
    StackBuffer[0] = 'x';
    std::free(StackBuffer);        // free of a stack address
    int Local = 42;
    std::free(&Local);             // free of another non-heap pointer
    std::printf("redirect_demo: hostile frees survived\n");
  }

  std::printf("redirect_demo: done\n");
  return 0;
}
