//===- examples/c_api_demo.cpp - Using the C API --------------------------===//
//
// The paper's collector was a C library serving C programs; this
// example uses cgc exclusively through its C API (capi/cgc.h), in the
// style of a 1993 client: an intrusive symbol table for a toy
// assembler, built with cgc_malloc, never freed, reclaimed by the
// collector when whole scopes are dropped.
//
// (Compiled as C++ only because the build is; every line below is
// plain C except the cast-free comforts.)
//
//===----------------------------------------------------------------------===//

#include "capi/cgc.h"
#include <stdio.h>
#include <string.h>

/* A classic C hash table with intrusive chaining — the embedded-link
 * style §4 warns about, which is fine here because buckets are the
 * only access path and scopes die wholesale. */

#define BUCKETS 64

typedef struct Symbol {
  struct Symbol *Next;
  char Name[24];
  long Value;
} Symbol;

typedef struct Scope {
  struct Scope *Parent;
  Symbol *Buckets[BUCKETS];
} Scope;

static unsigned hashName(const char *Name) {
  unsigned Hash = 5381;
  for (; *Name; ++Name)
    Hash = Hash * 33 + (unsigned char)*Name;
  return Hash % BUCKETS;
}

static Scope *pushScope(cgc_collector *GC, Scope *Parent) {
  Scope *S = (Scope *)cgc_malloc(GC, sizeof(Scope));
  S->Parent = Parent;
  return S;
}

static void define(cgc_collector *GC, Scope *S, const char *Name,
                   long Value) {
  Symbol *Sym = (Symbol *)cgc_malloc(GC, sizeof(Symbol));
  snprintf(Sym->Name, sizeof(Sym->Name), "%s", Name);
  Sym->Value = Value;
  unsigned H = hashName(Sym->Name);
  Sym->Next = S->Buckets[H];
  S->Buckets[H] = Sym;
}

static const Symbol *lookup(const Scope *S, const char *Name) {
  for (; S; S = S->Parent)
    for (const Symbol *Sym = S->Buckets[hashName(Name)]; Sym;
         Sym = Sym->Next)
      if (strcmp(Sym->Name, Name) == 0)
        return Sym;
  return NULL;
}

/* The "current scope" is program data: registered as a root. */
static Scope *Current;

int main(void) {
  cgc_config Config;
  cgc_config_init(&Config);
  cgc_collector *GC = cgc_create(&Config);
  cgc_enable_stack_scanning(GC);
  cgc_add_roots(GC, &Current, &Current + 1);

  printf("== cgc C API demo: scoped symbol tables ==\n");

  /* Global scope with some fixed symbols. */
  Current = pushScope(GC, NULL);
  define(GC, Current, "start", 0x1000);
  define(GC, Current, "limit", 0x8000);

  /* Simulate assembling 200 functions: each gets a local scope with
   * 500 labels, queried, then popped — no frees anywhere. */
  long Checksum = 0;
  for (int Fn = 0; Fn != 200; ++Fn) {
    Current = pushScope(GC, Current);
    char Name[24];
    for (int L = 0; L != 500; ++L) {
      snprintf(Name, sizeof(Name), "L%d_%d", Fn, L);
      define(GC, Current, Name, Fn * 1000 + L);
    }
    snprintf(Name, sizeof(Name), "L%d_%d", Fn, Fn % 500);
    const Symbol *Sym = lookup(Current, Name);
    Checksum += Sym ? Sym->Value : -1;
    Current = Current->Parent; /* Scope dies; collector reclaims it. */
  }

  /* sum of Fn*1000 + Fn over Fn in [0,200) = 1001 * 19900 */
  printf("checksum: %ld (expect 19919900)\n", Checksum);
  printf("globals still visible: start=0x%lx limit=0x%lx\n",
         lookup(Current, "start")->Value, lookup(Current, "limit")->Value);

  cgc_gcollect(GC);
  printf("after final collection: %llu bytes live, %llu collections, "
         "%llu KiB heap\n",
         cgc_live_bytes(GC), cgc_collection_count(GC),
         cgc_heap_committed_bytes(GC) / 1024);
  printf("100,000 symbols allocated, zero calls to free.\n");

  cgc_destroy(GC);
  return 0;
}
