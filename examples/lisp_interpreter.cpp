//===- examples/lisp_interpreter.cpp - A Lisp on the collector ------------===//
//
// The paper's motivating use case: "Conservative garbage collection
// also makes it possible to easily compile other programming languages
// that require garbage collection into efficient C" (Scheme, ML, Common
// Lisp, Cedar/Mesa all ran on collectors like this one).
//
// This driver runs the cgc::interp library — a small Scheme whose
// pairs, closures, and environments all live on a cgc::Collector, with
// interpreter temporaries kept alive purely by conservative
// machine-stack scanning, exactly as in a Scheme-to-C system of the
// era.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include <cstdio>

using namespace cgc;
using namespace cgc::interp;

namespace {

void runProgram(Interpreter &In, const char *Label, const char *Source) {
  std::printf("\n;; %s\n", Label);
  Value Result = In.evalString(Source);
  if (In.failed()) {
    std::printf("error: %s\n", In.errorMessage().c_str());
    In.clearError();
    return;
  }
  std::printf("=> %s\n", In.toString(Result).c_str());
}

} // namespace

int main() {
  GcConfig Config;
  Config.StackClearing = StackClearMode::Cheap;
  Collector GC(Config);
  GC.enableMachineStackScanning();
  Interpreter In(GC);

  runProgram(In, "recursion: fibonacci", R"lisp(
    (define fib (lambda (n)
      (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))))
    (fib 20)
  )lisp");

  runProgram(In, "higher-order functions: map and filter", R"lisp(
    (define iota (lambda (n)
      (if (= n 0) '() (cons n (iota (- n 1))))))
    (define map (lambda (f xs)
      (if (null? xs) '() (cons (f (car xs)) (map f (cdr xs))))))
    (define filter (lambda (p xs)
      (if (null? xs) '()
        (if (p (car xs))
            (cons (car xs) (filter p (cdr xs)))
            (filter p (cdr xs))))))
    (map (lambda (x) (* x x)) (filter (lambda (x) (< x 6)) (iota 10)))
  )lisp");

  runProgram(In, "let, shadowing, and closures", R"lisp(
    (define make-counter (lambda (step)
      (lambda (n) (+ n step))))
    (let ((bump (make-counter 5)))
      (list (bump 1) (bump 10) (bump 100)))
  )lisp");

  runProgram(In, "garbage-heavy loop: builds and drops a list per step",
             R"lisp(
    (define churn (lambda (n acc)
      (if (= n 0) acc
          (churn (- n 1) (+ acc (length (iota 100)))))))
    (churn 2000 0)
  )lisp");

  std::printf("\n;; collector statistics\n");
  GC.printReport(stdout);
  return 0;
}
