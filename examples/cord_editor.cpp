//===- examples/cord_editor.cpp - Rope-backed text buffer -----------------===//
//
// Cords were the original companion library of the paper's collector:
// immutable rope strings whose flat leaves are allocated pointer-free
// (§2's advice for bulk data) and whose interior nodes carry precise
// layouts.  This example uses them the way the Cedar editor used its
// ropes: an undo-friendly text buffer where every edit is O(log n) and
// every previous version stays alive only as long as something points
// at it.
//
//===----------------------------------------------------------------------===//

#include "cords/Cord.h"
#include <cstdio>
#include <string>
#include <vector>

using namespace cgc;

namespace {

/// An immutable-buffer editor: edits produce new versions; undo is a
/// pointer copy.  All versions share structure on the collector's heap.
class Editor {
public:
  explicit Editor(Collector &GC) : GC(GC) { Versions.push_back(Cord(GC)); }

  const Cord &buffer() const { return Versions.back(); }

  void insert(size_t Pos, std::string_view Text) {
    const Cord &Current = buffer();
    Cord Left = Current.substr(0, Pos);
    Cord Right = Current.substr(Pos, Current.length() - Pos);
    Versions.push_back(Left + Cord::fromString(GC, Text) + Right);
  }

  void erase(size_t Pos, size_t Len) {
    const Cord &Current = buffer();
    Cord Left = Current.substr(0, Pos);
    Cord Right =
        Current.substr(Pos + Len, Current.length() - Pos - Len);
    Versions.push_back(Left + Right);
  }

  void undo() {
    if (Versions.size() > 1)
      Versions.pop_back();
  }

  /// Drops history older than the last \p Keep versions.
  void truncateHistory(size_t Keep) {
    if (Versions.size() > Keep)
      Versions.erase(Versions.begin(),
                     Versions.end() - static_cast<ptrdiff_t>(Keep));
  }

  size_t versions() const { return Versions.size(); }

private:
  Collector &GC;
  /// Version stack; lives in collector-external memory, registered as
  /// a root by main() (the vector's buffer moves as it grows, so the
  /// root range is refreshed around edits).
  std::vector<Cord> Versions;

  friend void registerEditorRoots(Collector &, Editor &);
  friend void refreshEditorRoots(Collector &, Editor &, RootId);
};

RootId EditorRoot;

void registerEditorRoots(Collector &GC, Editor &E) {
  EditorRoot = GC.addRootRange(
      E.Versions.data(), E.Versions.data() + E.Versions.size(),
      RootEncoding::Native64, RootSource::Client, "editor-versions");
}

void refreshEditorRoots(Collector &GC, Editor &E, RootId Id) {
  GC.updateRootRange(Id, E.Versions.data(),
                     E.Versions.data() + E.Versions.size());
}

} // namespace

int main() {
  Collector GC;
  GC.enableMachineStackScanning();
  Editor Ed(GC);
  registerEditorRoots(GC, Ed);
  GC.addPreCollectionHook([&] { refreshEditorRoots(GC, Ed, EditorRoot); });

  std::printf("== cgc cord editor ==\n");

  // Build a ~1 MB document by repeated insertion.
  for (int Line = 0; Line != 10000; ++Line) {
    char Text[128];
    int Len = std::snprintf(Text, sizeof(Text),
                            "line %05d: the quick brown fox jumps over "
                            "the lazy dog\n",
                            Line);
    Ed.insert(Ed.buffer().length(),
              std::string_view(Text, static_cast<size_t>(Len)));
  }
  std::printf("document: %zu bytes, tree depth %u, %zu versions kept\n",
              Ed.buffer().length(), Ed.buffer().depth(), Ed.versions());

  // Edit in the middle: O(log n), shares everything unchanged.
  size_t Mid = Ed.buffer().length() / 2;
  Ed.insert(Mid, "<<< inserted in the middle >>>");
  Ed.erase(100, 57); // Delete one early line.
  std::printf("after edits: %zu bytes; undo twice...\n",
              Ed.buffer().length());
  Ed.undo();
  Ed.undo();
  std::printf("restored:    %zu bytes\n", Ed.buffer().length());

  // Drop history; the collector reclaims every unreachable version's
  // unshared nodes.
  Ed.truncateHistory(1);
  CollectionStats Cycle = GC.collect("history dropped");
  std::printf("history truncated: %llu KiB live, %llu KiB reclaimed, "
              "%llu collections total\n",
              (unsigned long long)(Cycle.BytesLive >> 10),
              (unsigned long long)(Cycle.BytesSweptFree >> 10),
              (unsigned long long)GC.lifetimeStats().Collections);
  std::printf("first 30 chars: %s...\n",
              Ed.buffer().substr(0, 30).str().c_str());
  return 0;
}
