//===- examples/quickstart.cpp - First steps with the collector ----------===//
//
// Builds a linked structure with gcNew, drops references, collects, and
// prints what the collector reclaimed.  Demonstrates:
//   * real machine-stack scanning (locals keep objects alive),
//   * pointer-free allocation,
//   * finalizers,
//   * collection statistics.
//
//===----------------------------------------------------------------------===//

#include "core/Collector.h"
#include "core/GcNew.h"
#include <cstdio>

namespace {

struct Node {
  Node *Next;
  long Value;
};

/// Builds a chain of N nodes; only the head pointer (a stack local in
/// the caller) keeps it alive.
Node *buildChain(cgc::Collector &GC, int Length) {
  Node *Head = nullptr;
  for (int I = 0; I != Length; ++I) {
    Node *N = cgc::gcNew<Node>(GC);
    N->Next = Head;
    N->Value = I;
    Head = N;
  }
  return Head;
}

long sumChain(const Node *Head) {
  long Sum = 0;
  for (const Node *N = Head; N; N = N->Next)
    Sum += N->Value;
  return Sum;
}

} // namespace

int main() {
  cgc::GcConfig Config;
  Config.StackClearing = cgc::StackClearMode::Cheap;
  cgc::Collector GC(Config);
  GC.enableMachineStackScanning();

  std::printf("== cgc quickstart ==\n");
  std::printf("heap window: %llu MiB reserved, heap arena at offset 0x%llx\n",
              (unsigned long long)(GC.arena().size() >> 20),
              (unsigned long long)GC.config().heapBaseOffset());

  // 1. Allocate a million list nodes reachable from a stack local.
  Node *Head = buildChain(GC, 1'000'000);
  std::printf("built 1M-node chain, sum=%ld, heap=%llu KiB allocated\n",
              sumChain(Head),
              (unsigned long long)(GC.allocatedBytes() >> 10));

  // 2. Collect while the chain is reachable: nothing is reclaimed.
  cgc::CollectionStats Live = GC.collect("chain live");
  std::printf("collect with chain live:   %8llu objects freed, "
              "%8llu live\n",
              (unsigned long long)Live.ObjectsSweptFree,
              (unsigned long long)Live.ObjectsLive);

  // 3. Pointer-free data: a big buffer the collector never scans.
  auto *Buffer = static_cast<unsigned char *>(
      GC.allocate(8 << 20, cgc::ObjectKind::PointerFree));
  Buffer[0] = 0xAB; // Touch it so the page is real.

  // 4. A finalized object: its destructor runs after it dies.
  struct Session {
    ~Session() { std::printf("finalizer: session closed\n"); }
    int Id = 7;
  };
  (void)cgc::gcNewFinalized<Session>(GC);

  // 5. Drop the chain and collect again.
  Head = nullptr;
  Buffer = nullptr;
  cgc::CollectionStats Dead = GC.collect("chain dropped");
  std::printf("collect after dropping:    %8llu objects freed, "
              "%8llu live (%llu KiB)\n",
              (unsigned long long)Dead.ObjectsSweptFree,
              (unsigned long long)Dead.ObjectsLive,
              (unsigned long long)(Dead.BytesLive >> 10));
  std::printf("ran %zu finalizer(s)\n", GC.runFinalizers());

  std::printf("blacklisted pages: %llu (near-miss candidates seen: %llu)\n",
              (unsigned long long)GC.blacklistedPageCount(),
              (unsigned long long)GC.blacklistStats().CandidatesNoted);
  std::printf("collections: %llu, total mark time %.2f ms\n",
              (unsigned long long)GC.lifetimeStats().Collections,
              GC.lifetimeStats().TotalMarkNanos / 1e6);
  return 0;
}
