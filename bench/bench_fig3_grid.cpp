//===- bench/bench_fig3_grid.cpp - §4 Figures 3/4: grid styles ------------===//
//
// Regenerates the paper's Figures 3/4 study: a rectangular array of
// vertices linked horizontally and vertically, represented either with
// embedded link fields (Figure 3) or with separate lisp-style cons
// cells (Figure 4).
//
//   "In the former case, a false reference can be expected to result in
//    the retention of a large fraction of the structure.  In the latter
//    case, at most a single row or column is affected."
//
// Metric: mean bytes retained by one uniformly random false reference
// into the structure's interior, after all intentional references are
// dropped, as a fraction of the structure's size — swept over grid
// sizes.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Collector.h"
#include "structures/FalseRef.h"
#include "structures/Grid.h"
#include "support/Random.h"
#include "support/Statistics.h"

using namespace cgc;

namespace {

GcConfig gridConfig() {
  GcConfig Config;
  Config.MaxHeapBytes = uint64_t(128) << 20;
  Config.GcAtStartup = false;
  Config.MinHeapBytesBeforeGc = ~uint64_t(0);
  return Config;
}

struct StyleResult {
  double MeanRetainedBytes = 0;
  double MaxRetainedBytes = 0;
  uint64_t TotalBytes = 0;
};

StyleResult measureEmbedded(unsigned N, unsigned Samples, Rng &R) {
  Collector GC(gridConfig());
  EmbeddedGrid Grid(GC, N, N);
  Grid.dropRoots();
  PlantedRef Ref(GC);
  RunningStat Stat;
  for (unsigned I = 0; I != Samples; ++I) {
    Ref.setOffset(Grid.vertexOffset(static_cast<unsigned>(R.pickIndex(N)),
                                    static_cast<unsigned>(R.pickIndex(N))));
    Stat.addSample(
        static_cast<double>(GC.measureLiveness().BytesMarked));
  }
  return {Stat.mean(), Stat.maximum(), Grid.totalBytes()};
}

StyleResult measureSeparate(unsigned N, unsigned Samples, Rng &R) {
  Collector GC(gridConfig());
  SeparateGrid Grid(GC, N, N);
  Grid.dropRoots();
  PlantedRef Ref(GC);
  RunningStat Stat;
  for (unsigned I = 0; I != Samples; ++I) {
    // A false reference may land on a row cell, a column cell, or a
    // payload vertex; sample all three proportionally to their bytes.
    unsigned Row = static_cast<unsigned>(R.pickIndex(N));
    unsigned Col = static_cast<unsigned>(R.pickIndex(N));
    WindowOffset Target;
    switch (R.pickIndex(3)) {
    case 0:
      Target = Grid.rowCellOffset(Row, Col);
      break;
    case 1:
      Target = Grid.colCellOffset(Row, Col);
      break;
    default:
      Target = Grid.vertexOffset(Row, Col);
      break;
    }
    Ref.setOffset(Target);
    Stat.addSample(
        static_cast<double>(GC.measureLiveness().BytesMarked));
  }
  return {Stat.mean(), Stat.maximum(), Grid.totalBytes()};
}

std::string fractionOf(double Bytes, uint64_t Total) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%6.2f%%",
                100.0 * Bytes / static_cast<double>(Total));
  return Buffer;
}

void reportStyle(cgcbench::JsonReport &Report, unsigned N,
                 const char *Style, const StyleResult &R) {
  Report.beginRow();
  Report.rowSet("grid_n", uint64_t(N));
  Report.rowSet("style", std::string(Style));
  Report.rowSet("structure_bytes", R.TotalBytes);
  Report.rowSet("mean_retained_bytes", R.MeanRetainedBytes);
  Report.rowSet("max_retained_bytes", R.MaxRetainedBytes);
  Report.rowSet("mean_retained_pct",
                100.0 * R.MeanRetainedBytes /
                    static_cast<double>(R.TotalBytes));
  Report.rowSet("max_retained_pct",
                100.0 * R.MaxRetainedBytes /
                    static_cast<double>(R.TotalBytes));
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = cgcbench::consumeJsonFlag(Argc, Argv);
  cgcbench::printBanner(
      "Figs. 3/4 (grid styles)",
      "bytes retained by one random false reference: embedded links vs "
      "separate cons cells",
      "embedded: a large fraction of the structure; separate: at most "
      "a single row or column");

  cgcbench::JsonReport Report("fig3_grid");
  TablePrinter Table({"grid", "style", "structure size",
                      "mean retained", "mean %", "max %"});
  Rng R(77);
  for (unsigned N : {16u, 32u, 64u, 128u}) {
    unsigned Samples = N <= 32 ? 60 : 25;
    StyleResult E = measureEmbedded(N, Samples, R);
    StyleResult S = measureSeparate(N, Samples, R);
    std::string Dim = std::to_string(N) + "x" + std::to_string(N);
    Table.addRow({Dim, "embedded (fig 3)",
                  TablePrinter::bytes(E.TotalBytes),
                  TablePrinter::bytes(
                      static_cast<uint64_t>(E.MeanRetainedBytes)),
                  fractionOf(E.MeanRetainedBytes, E.TotalBytes),
                  fractionOf(E.MaxRetainedBytes, E.TotalBytes)});
    Table.addRow({Dim, "separate (fig 4)",
                  TablePrinter::bytes(S.TotalBytes),
                  TablePrinter::bytes(
                      static_cast<uint64_t>(S.MeanRetainedBytes)),
                  fractionOf(S.MeanRetainedBytes, S.TotalBytes),
                  fractionOf(S.MaxRetainedBytes, S.TotalBytes)});
    reportStyle(Report, N, "embedded", E);
    reportStyle(Report, N, "separate", S);
  }
  Table.print(stdout);
  std::printf("\nembedded retention stays ~25%% of the structure (the "
              "expected lower-right\nquadrant) at every size; separate "
              "retention falls as 1/N — one spine.\n");
  if (Json) {
    std::string Path = Report.write();
    std::printf("json: %s\n", Path.empty() ? "(write failed)" : Path.c_str());
  }
  return 0;
}
