//===- bench/bench_parallel_mark.cpp - Parallel mark-phase speedup --------===//
//
// Measures the Mark phase of the collection pipeline under 1, 2, and 4
// work-stealing mark workers, on a Table-1-scale heap (~20 MB of
// pointer-dense objects).  The retained set and every liveness counter
// are identical for any worker count — the knob only moves wall-clock
// time — so the run cross-checks determinism while it measures.
//
// Phase timings come from the GC observer layer (the same events the
// collector's own statistics consume), not from timers around
// collect(): the report isolates Mark from root scanning and sweeping.
//
// Usage: bench_parallel_mark [--json] [nodes] [reps]  (default 150000 8)
// --json additionally writes BENCH_parallel_mark.json for CI and sweep
// scripts.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Collector.h"
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

using namespace cgc;

namespace {

/// A pointer-dense node: 14 child links plus payload = 128 bytes, so
/// marking has real per-object scan work to distribute.
constexpr unsigned ChildrenPerNode = 14;
struct FanoutNode {
  FanoutNode *Children[ChildrenPerNode];
  uint64_t Payload[2];
};

/// Deterministic xorshift so every run (and every thread count) traces
/// the same graph.
uint64_t nextRand(uint64_t &State) {
  State ^= State << 13;
  State ^= State >> 7;
  State ^= State << 17;
  return State;
}

/// Builds a connected random graph over \p Count nodes: node I's first
/// child is node I+1 (guaranteeing full reachability from node 0), the
/// rest are uniform random — heavy mark-sharing, wide fan-out.
FanoutNode *buildGraph(Collector &GC, size_t Count) {
  std::vector<FanoutNode *> Nodes(Count);
  for (size_t I = 0; I != Count; ++I)
    Nodes[I] = static_cast<FanoutNode *>(GC.allocate(sizeof(FanoutNode)));
  uint64_t Rng = 0x9e3779b97f4a7c15ull;
  for (size_t I = 0; I != Count; ++I) {
    Nodes[I]->Children[0] = Nodes[(I + 1) % Count];
    for (unsigned C = 1; C != ChildrenPerNode; ++C)
      Nodes[I]->Children[C] = Nodes[nextRand(Rng) % Count];
  }
  return Nodes[0];
}

/// Observer capturing each collection's Mark-phase duration.
class MarkTimer : public GcObserver {
public:
  void onPhaseEnd(GcPhase Phase, uint64_t Nanos,
                  const CollectionStats &) override {
    if (Phase == GcPhase::Mark)
      LastMarkNanos = Nanos;
  }
  uint64_t LastMarkNanos = 0;
};

} // namespace

int main(int Argc, char **Argv) {
  bool Json = cgcbench::consumeJsonFlag(Argc, Argv);
  size_t Nodes = Argc > 1 ? std::strtoull(Argv[1], nullptr, 10) : 150000;
  unsigned Reps = Argc > 2 ? std::atoi(Argv[2]) : 8;
  if (Nodes == 0)
    Nodes = 150000;
  if (Reps == 0)
    Reps = 8;

  cgcbench::printBanner(
      "parallel mark",
      "mark-phase wall clock vs work-stealing worker count",
      "n/a (post-paper extension; results must match the sequential "
      "marker bit for bit)");

  GcConfig Config;
  Config.WindowBytes = uint64_t(512) << 20;
  Config.Placement = HeapPlacement::Custom;
  Config.CustomHeapBaseOffset = 16 << 20;
  Config.MaxHeapBytes = uint64_t(128) << 20;
  Config.GcAtStartup = false;
  Config.MinHeapBytesBeforeGc = ~uint64_t(0);
  Collector GC(Config);

  uint64_t Root = reinterpret_cast<uint64_t>(buildGraph(GC, Nodes));
  GC.addRootRange(&Root, &Root + 1, RootEncoding::Native64,
                  RootSource::Client, "graph-root");

  MarkTimer Timer;
  GC.addObserver(&Timer);

  std::printf("heap: %zu nodes x %zu B = %.1f MB pointer-dense graph\n",
              Nodes, sizeof(FanoutNode),
              double(Nodes) * sizeof(FanoutNode) / (1 << 20));
  unsigned Cores = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u%s\n", Cores,
              Cores < 4 ? "  (speedup needs >= as many cores as workers)"
                        : "");
  std::printf("%-8s %14s %14s %10s %12s\n", "workers", "mark best",
              "mark mean", "speedup", "marked");

  cgcbench::JsonReport Report("parallel mark");
  Report.set("nodes", uint64_t(Nodes));
  Report.set("reps", uint64_t(Reps));
  Report.set("hardware_threads", uint64_t(Cores));

  uint64_t Baseline = 0;
  uint64_t BaselineMarked = 0;
  for (unsigned Workers : {1u, 2u, 4u}) {
    GC.setMarkThreads(Workers);
    uint64_t Best = ~uint64_t(0), Sum = 0;
    uint64_t Marked = 0;
    for (unsigned Rep = 0; Rep != Reps; ++Rep) {
      CollectionStats Cycle = GC.collect("bench");
      Best = std::min(Best, Timer.LastMarkNanos);
      Sum += Timer.LastMarkNanos;
      Marked = Cycle.ObjectsMarked;
    }
    if (Workers == 1) {
      Baseline = Best;
      BaselineMarked = Marked;
    } else if (Marked != BaselineMarked) {
      std::printf("DETERMINISM VIOLATION: %llu marked at %u workers, "
                  "%llu at 1\n",
                  static_cast<unsigned long long>(Marked), Workers,
                  static_cast<unsigned long long>(BaselineMarked));
      return 1;
    }
    double Speedup = Baseline ? double(Baseline) / Best : 0.0;
    std::printf("%-8u %11.2f ms %11.2f ms %9.2fx %12llu\n", Workers,
                Best / 1e6, Sum / double(Reps) / 1e6, Speedup,
                static_cast<unsigned long long>(Marked));
    Report.beginRow();
    Report.rowSet("workers", uint64_t(Workers));
    Report.rowSet("mark_best_ns", Best);
    Report.rowSet("mark_mean_ns", uint64_t(Sum / Reps));
    Report.rowSet("speedup", Speedup);
    Report.rowSet("objects_marked", Marked);
  }
  if (Json) {
    std::string Path = Report.write();
    std::printf("json: %s\n", Path.empty() ? "(write failed)" : Path.c_str());
  }
  return 0;
}
