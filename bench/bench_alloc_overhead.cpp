//===- bench/bench_alloc_overhead.cpp - §3 footnote 3: overheads ----------===//
//
// Regenerates the paper's footnote-3 measurements:
//
//   * "The stand-alone collector can still allocate and collect an
//     8 byte object in around 2 microseconds under optimal conditions
//     (no accessible heap data) on a SPARCStation 2, which is much
//     faster than malloc/free round-trip times for most malloc
//     implementations."
//   * "the total additional overhead introduced by blacklisting is
//     usually less than 1%"; "version 2.5 of the collector spends
//     approximately 0.2% of its time dealing with blacklisting related
//     bookkeeping".
//
// Absolute times are 2026 hardware, not a SPARCStation 2; the claims
// under test are the *relations*: GC alloc+collect <= malloc/free
// round trip, and blacklisting overhead ~1% or less.
//
//===----------------------------------------------------------------------===//

#include "baseline/ExplicitHeap.h"
#include "core/Collector.h"
#include "sim/SyntheticSegments.h"
#include <benchmark/benchmark.h>
#include <memory>

using namespace cgc;
using namespace cgc::sim;

namespace {

GcConfig steadyStateConfig(BlacklistMode Mode) {
  GcConfig Config;
  Config.MaxHeapBytes = uint64_t(64) << 20;
  // Low placement, as on the paper's platforms: pollution data actually
  // lands in the potential heap, so the blacklist has real work.
  Config.Placement = HeapPlacement::LowSbrk;
  Config.Blacklist = Mode;
  // Collect automatically and often, so the loop measures
  // allocate+collect amortized, as in the paper's footnote.
  Config.MinHeapBytesBeforeGc = 1 << 20;
  Config.CollectBeforeGrowthRatio = 0.5;
  return Config;
}

/// Steady-state 8-byte allocation with everything immediately garbage
/// ("no accessible heap data"), with optional root pollution to give
/// the blacklist real work.
void allocateLoop(benchmark::State &State, BlacklistMode Mode,
                  bool Polluted) {
  Collector GC(steadyStateConfig(Mode));
  Segment Tables;
  Rng R(3);
  appendIntTable(Tables, {15000, 0x30000000, 0.05, 0.30}, R, true);
  if (Polluted)
    GC.addRootRange(Tables.data(), Tables.data() + Tables.size(),
                    RootEncoding::Window32BE, RootSource::StaticData,
                    "pollution");

  for (auto _ : State) {
    void *P = GC.allocate(8);
    benchmark::DoNotOptimize(P);
  }

  const GcLifetimeStats &Life = GC.lifetimeStats();
  uint64_t GcNanos = Life.TotalMarkNanos + Life.TotalSweepNanos;
  State.counters["collections"] =
      static_cast<double>(Life.Collections);
  State.counters["blacklist_time_%"] =
      GcNanos == 0 ? 0.0
                   : 100.0 * static_cast<double>(Life.TotalBlacklistNanos) /
                         static_cast<double>(GcNanos);
  State.counters["blacklisted_pages"] =
      static_cast<double>(GC.blacklistedPageCount());
}

void BM_GcAlloc8_NoBlacklist(benchmark::State &State) {
  allocateLoop(State, BlacklistMode::Off, /*Polluted=*/false);
}

void BM_GcAlloc8_Blacklist(benchmark::State &State) {
  allocateLoop(State, BlacklistMode::FlatBitmap, /*Polluted=*/false);
}

void BM_GcAlloc8_BlacklistPolluted(benchmark::State &State) {
  allocateLoop(State, BlacklistMode::FlatBitmap, /*Polluted=*/true);
}

void BM_GcAlloc8_HashedBlacklistPolluted(benchmark::State &State) {
  allocateLoop(State, BlacklistMode::Hashed, /*Polluted=*/true);
}

/// The malloc/free round trip the footnote compares against.
void BM_MallocFreeRoundTrip8(benchmark::State &State) {
  baseline::ExplicitHeap Heap(uint64_t(64) << 20);
  for (auto _ : State) {
    void *P = Heap.malloc(8);
    benchmark::DoNotOptimize(P);
    Heap.free(P);
  }
}

/// Round trip with live churn (a more honest malloc workload: frees
/// lag allocations).
void BM_MallocFreeChurn8(benchmark::State &State) {
  baseline::ExplicitHeap Heap(uint64_t(64) << 20);
  constexpr size_t WindowSize = 4096;
  void *Window[WindowSize] = {};
  size_t I = 0;
  for (auto _ : State) {
    if (Window[I])
      Heap.free(Window[I]);
    Window[I] = Heap.malloc(8);
    benchmark::DoNotOptimize(Window[I]);
    I = (I + 1) % WindowSize;
  }
  for (void *P : Window)
    if (P)
      Heap.free(P);
}

/// GC allocation with the same live-window churn.
void BM_GcAllocChurn8(benchmark::State &State) {
  Collector GC(steadyStateConfig(BlacklistMode::FlatBitmap));
  constexpr size_t WindowSize = 4096;
  static uint64_t Window[WindowSize];
  for (auto &Slot : Window)
    Slot = 0;
  GC.addRootRange(Window, Window + WindowSize, RootEncoding::Native64,
                  RootSource::Client, "churn-window");
  size_t I = 0;
  for (auto _ : State) {
    void *P = GC.allocate(8);
    benchmark::DoNotOptimize(P);
    Window[I] = reinterpret_cast<uint64_t>(P);
    I = (I + 1) % WindowSize;
  }
}

} // namespace

BENCHMARK(BM_GcAlloc8_NoBlacklist);
BENCHMARK(BM_GcAlloc8_Blacklist);
BENCHMARK(BM_GcAlloc8_BlacklistPolluted);
BENCHMARK(BM_GcAlloc8_HashedBlacklistPolluted);
BENCHMARK(BM_MallocFreeRoundTrip8);
BENCHMARK(BM_MallocFreeChurn8);
BENCHMARK(BM_GcAllocChurn8);

BENCHMARK_MAIN();
