//===- bench/bench_alloc_overhead.cpp - §3 footnote 3: overheads ----------===//
//
// Regenerates the paper's footnote-3 measurements:
//
//   * "The stand-alone collector can still allocate and collect an
//     8 byte object in around 2 microseconds under optimal conditions
//     (no accessible heap data) on a SPARCStation 2, which is much
//     faster than malloc/free round-trip times for most malloc
//     implementations."
//   * "the total additional overhead introduced by blacklisting is
//     usually less than 1%"; "version 2.5 of the collector spends
//     approximately 0.2% of its time dealing with blacklisting related
//     bookkeeping".
//
// Absolute times are 2026 hardware, not a SPARCStation 2; the claims
// under test are the *relations*: GC alloc+collect <= malloc/free
// round trip, and blacklisting overhead ~1% or less.
//
// Usage: bench_alloc_overhead [--json] [allocs]
//   (default 2000000 allocations per configuration; --json writes
//   BENCH_alloc_overhead.json, including a fault_injection_compiled
//   scalar so result consumers can reject runs timed with the
//   injection checks compiled in)
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "baseline/ExplicitHeap.h"
#include "core/Collector.h"
#include "heap/GuardedHeap.h"
#include "heap/SizeClassTable.h"
#include "sim/SyntheticSegments.h"
#include "support/FaultInjection.h"
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

using namespace cgc;
using namespace cgc::sim;

namespace {

uint64_t nowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

GcConfig steadyStateConfig(BlacklistMode Mode) {
  GcConfig Config;
  Config.MaxHeapBytes = uint64_t(64) << 20;
  // Low placement, as on the paper's platforms: pollution data actually
  // lands in the potential heap, so the blacklist has real work.
  Config.Placement = HeapPlacement::LowSbrk;
  Config.Blacklist = Mode;
  // Collect automatically and often, so the loop measures
  // allocate+collect amortized, as in the paper's footnote.
  Config.MinHeapBytesBeforeGc = 1 << 20;
  Config.CollectBeforeGrowthRatio = 0.5;
  return Config;
}

/// One configuration's results: amortized ns per allocation plus the
/// collector-side counters the footnote talks about.
struct RunResult {
  double NanosPerOp = 0;
  uint64_t Collections = 0;
  double BlacklistTimePct = 0;
  uint64_t BlacklistedPages = 0;
};

/// Steady-state 8-byte allocation with everything immediately garbage
/// ("no accessible heap data"), with optional root pollution to give
/// the blacklist real work.
RunResult gcAllocLoop(BlacklistMode Mode, bool Polluted, size_t Allocs,
                      bool Guarded = false) {
  GcConfig Config = steadyStateConfig(Mode);
  Config.DebugGuards = Guarded;
  Collector GC(Config);
  Segment Tables;
  Rng R(3);
  appendIntTable(Tables, {15000, 0x30000000, 0.05, 0.30}, R, true);
  if (Polluted)
    GC.addRootRange(Tables.data(), Tables.data() + Tables.size(),
                    RootEncoding::Window32BE, RootSource::StaticData,
                    "pollution");

  uint64_t Start = nowNanos();
  for (size_t I = 0; I != Allocs; ++I) {
    void *P = GC.allocate(8);
    if (!P) {
      std::fprintf(stderr, "out of memory\n");
      std::exit(1);
    }
  }
  uint64_t Elapsed = nowNanos() - Start;

  const GcLifetimeStats &Life = GC.lifetimeStats();
  uint64_t GcNanos = Life.TotalMarkNanos + Life.TotalSweepNanos;
  RunResult Result;
  Result.NanosPerOp = double(Elapsed) / double(Allocs);
  Result.Collections = Life.Collections;
  Result.BlacklistTimePct =
      GcNanos == 0 ? 0.0
                   : 100.0 * double(Life.TotalBlacklistNanos) /
                         double(GcNanos);
  Result.BlacklistedPages = GC.blacklistedPageCount();
  return Result;
}

/// The malloc/free round trip the footnote compares against.
RunResult mallocRoundTrip(size_t Allocs) {
  baseline::ExplicitHeap Heap(uint64_t(64) << 20);
  uint64_t Start = nowNanos();
  for (size_t I = 0; I != Allocs; ++I) {
    void *P = Heap.malloc(8);
    Heap.free(P);
  }
  RunResult Result;
  Result.NanosPerOp = double(nowNanos() - Start) / double(Allocs);
  return Result;
}

/// Round trip with live churn (a more honest malloc workload: frees
/// lag allocations).
RunResult mallocChurn(size_t Allocs) {
  baseline::ExplicitHeap Heap(uint64_t(64) << 20);
  constexpr size_t WindowSize = 4096;
  static void *Window[WindowSize];
  for (auto &Slot : Window)
    Slot = nullptr;
  size_t I = 0;
  uint64_t Start = nowNanos();
  for (size_t N = 0; N != Allocs; ++N) {
    if (Window[I])
      Heap.free(Window[I]);
    Window[I] = Heap.malloc(8);
    I = (I + 1) % WindowSize;
  }
  uint64_t Elapsed = nowNanos() - Start;
  for (void *P : Window)
    if (P)
      Heap.free(P);
  RunResult Result;
  Result.NanosPerOp = double(Elapsed) / double(Allocs);
  return Result;
}

/// GC allocation with the same live-window churn.
RunResult gcChurn(size_t Allocs) {
  Collector GC(steadyStateConfig(BlacklistMode::FlatBitmap));
  constexpr size_t WindowSize = 4096;
  static uint64_t Window[WindowSize];
  for (auto &Slot : Window)
    Slot = 0;
  GC.addRootRange(Window, Window + WindowSize, RootEncoding::Native64,
                  RootSource::Client, "churn-window");
  size_t I = 0;
  uint64_t Start = nowNanos();
  for (size_t N = 0; N != Allocs; ++N) {
    void *P = GC.allocate(8);
    if (!P) {
      std::fprintf(stderr, "out of memory\n");
      std::exit(1);
    }
    Window[I] = reinterpret_cast<uint64_t>(P);
    I = (I + 1) % WindowSize;
  }
  RunResult Result;
  Result.NanosPerOp = double(nowNanos() - Start) / double(Allocs);
  Result.Collections = GC.lifetimeStats().Collections;
  return Result;
}

void report(cgcbench::JsonReport &Report, const char *Name,
            const RunResult &Result) {
  std::printf("%-28s %9.1f ns/alloc %8llu collections "
              "%6.2f%% blacklist time %8llu blacklisted pages\n",
              Name, Result.NanosPerOp,
              static_cast<unsigned long long>(Result.Collections),
              Result.BlacklistTimePct,
              static_cast<unsigned long long>(Result.BlacklistedPages));
  Report.beginRow();
  Report.rowSet("config", std::string(Name));
  Report.rowSet("ns_per_alloc", Result.NanosPerOp);
  Report.rowSet("collections", Result.Collections);
  Report.rowSet("blacklist_time_pct", Result.BlacklistTimePct);
  Report.rowSet("blacklisted_pages", Result.BlacklistedPages);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = cgcbench::consumeJsonFlag(Argc, Argv);
  size_t Allocs = Argc > 1 ? std::strtoull(Argv[1], nullptr, 10) : 2000000;
  if (Allocs == 0)
    Allocs = 2000000;

  cgcbench::printBanner(
      "alloc overhead",
      "amortized 8-byte allocate+collect vs malloc/free round trips",
      "~2 us/alloc on a SPARCStation 2; blacklisting overhead < 1% "
      "(0.2% of collector time)");

  if (FaultInjectionCompiled)
    std::printf("note: fault-injection checks are compiled in; absolute "
                "numbers are conservative\n");
  std::printf("allocations per configuration: %zu\n\n", Allocs);

  cgcbench::JsonReport Report("alloc_overhead");
  Report.set("allocs", uint64_t(Allocs));
  Report.set("fault_injection_compiled",
             uint64_t(FaultInjectionCompiled ? 1 : 0));

  report(Report, "gc_8B_no_blacklist",
         gcAllocLoop(BlacklistMode::Off, false, Allocs));
  report(Report, "gc_8B_blacklist",
         gcAllocLoop(BlacklistMode::FlatBitmap, false, Allocs));
  report(Report, "gc_8B_blacklist_polluted",
         gcAllocLoop(BlacklistMode::FlatBitmap, true, Allocs));
  report(Report, "gc_8B_hashed_polluted",
         gcAllocLoop(BlacklistMode::Hashed, true, Allocs));
  report(Report, "gc_8B_guarded",
         gcAllocLoop(BlacklistMode::FlatBitmap, false, Allocs,
                     /*Guarded=*/true));
  report(Report, "malloc_free_roundtrip_8B", mallocRoundTrip(Allocs));
  report(Report, "malloc_free_churn_8B", mallocChurn(Allocs));
  report(Report, "gc_churn_8B", gcChurn(Allocs));

  // Guarded-mode space cost per size class: a guarded request is padded
  // by header + minimum redzone (32 bytes), which can also push it into
  // a larger class — or, near the small-object ceiling, off to a
  // dedicated page run.
  std::printf("\nguarded-mode space overhead (header %llu + redzone %llu "
              "bytes per object)\n",
              static_cast<unsigned long long>(GuardLayer::HeaderBytes),
              static_cast<unsigned long long>(GuardLayer::MinRedzoneBytes));
  std::printf("%10s %12s %14s %10s %8s\n", "user B", "plain slot",
              "guarded slot", "extra B", "extra");
  SizeClassTable Classes;
  for (size_t UserBytes : {8, 16, 32, 64, 128, 256, 512, 1024, 2048}) {
    uint64_t PlainSlot = Classes.classSize(Classes.classForSize(UserBytes));
    uint64_t Padded = GuardLayer::paddedSize(UserBytes);
    uint64_t GuardedSlot = SizeClassTable::isSmall(Padded)
                               ? Classes.classSize(Classes.classForSize(Padded))
                               : Padded;
    uint64_t Overhead = GuardedSlot - PlainSlot;
    double OverheadPct = 100.0 * double(Overhead) / double(PlainSlot);
    std::printf("%10zu %12llu %14llu %10llu %7.1f%%%s\n", UserBytes,
                static_cast<unsigned long long>(PlainSlot),
                static_cast<unsigned long long>(GuardedSlot),
                static_cast<unsigned long long>(Overhead), OverheadPct,
                SizeClassTable::isSmall(Padded) ? "" : "  (large object)");
    Report.beginRow();
    Report.rowSet("config", std::string("guard_overhead"));
    Report.rowSet("user_bytes", uint64_t(UserBytes));
    Report.rowSet("plain_slot_bytes", PlainSlot);
    Report.rowSet("guarded_slot_bytes", GuardedSlot);
    Report.rowSet("overhead_bytes", Overhead);
    Report.rowSet("overhead_pct", OverheadPct);
  }

  if (Json) {
    std::string Path = Report.write();
    std::printf("json: %s\n", Path.empty() ? "(write failed)" : Path.c_str());
  }
  return 0;
}
