//===- bench/bench_heap_conservativism.cpp - §2: degrees of precision -----===//
//
// Regenerates two §2/intro claims about how much the collector knows:
//
//   * "certain kinds of objects (most notably large amounts of
//     compressed data, such as compressed bitmaps) introduce false
//     pointers with excessively high probability" unless the client
//     can declare them pointer-free;
//   * implementations "vary greatly in their degree of conservativism
//     ... Some maintain complete information on the location of
//     pointers in the heap, and only scan the stack conservatively" —
//     registered object layouts implement that regime.
//
// Workload: a linked list of records, each holding one next pointer and
// a payload of "compressed data" whose words are distributed the way
// random 32-bit data is relative to the heap (uniform over the window).
// Half the records are dropped; what stays live measures heap-sourced
// misidentification under three declarations of the same structure:
//
//   conservative — payload scanned as potential pointers (paper's [18,
//                  2, 17] class);
//   typed        — layout registered; only the link word scanned
//                  (paper's [4, 19, 21] class);
//   atomic split — payload in separate pointer-free objects.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Collector.h"
#include "support/Random.h"
#include "support/Statistics.h"

using namespace cgc;

namespace {

constexpr unsigned NumRecords = 4000;
constexpr unsigned PayloadWords = 30; // 240 B payload + 8 B link.

GcConfig heapConfig() {
  GcConfig Config;
  Config.WindowBytes = uint64_t(4) << 30;
  Config.Placement = HeapPlacement::LowSbrk;
  Config.MaxHeapBytes = uint64_t(64) << 20;
  Config.GcAtStartup = true;
  Config.MinHeapBytesBeforeGc = ~uint64_t(0);
  return Config;
}

/// Fills a payload with 1993-style random data: every word is some
/// address in the 32-bit space (window), hitting the heap with
/// probability heap-size/4 GiB.
void fillCompressedData(Collector &GC, uint64_t *Payload, size_t Words,
                        Rng &R) {
  for (size_t I = 0; I != Words; ++I)
    Payload[I] = GC.arena().base() + R.nextBelow(GC.arena().size());
}

struct Outcome {
  uint64_t GarbageBytesRetained = 0;
  uint64_t NearMisses = 0;
  uint64_t HeapWordsScanned = 0;
};

enum class Style { Conservative, Typed, AtomicSplit };

Outcome run(Style S, uint64_t Seed) {
  Collector GC(heapConfig());
  Rng R(Seed);
  constexpr size_t RecordBytes = (1 + PayloadWords) * sizeof(uint64_t);

  LayoutId Layout = 0;
  if (S == Style::Typed) {
    std::vector<bool> PointerWords(1 + PayloadWords, false);
    PointerWords[0] = true; // Only the link.
    Layout = GC.registerObjectLayout(PointerWords, RecordBytes);
  }

  // Keep the records in two rooted chains so we can drop exactly half.
  uint64_t Chains[2] = {0, 0};
  GC.addRootRange(Chains, Chains + 2, RootEncoding::Native64,
                  RootSource::Client, "chains");

  for (unsigned I = 0; I != NumRecords; ++I) {
    uint64_t *Record = nullptr;
    switch (S) {
    case Style::Conservative:
      Record = static_cast<uint64_t *>(GC.allocate(RecordBytes));
      fillCompressedData(GC, Record + 1, PayloadWords, R);
      break;
    case Style::Typed:
      Record = static_cast<uint64_t *>(GC.allocateTyped(Layout));
      fillCompressedData(GC, Record + 1, PayloadWords, R);
      break;
    case Style::AtomicSplit: {
      // Header: link + payload pointer; payload pointer-free.
      Record = static_cast<uint64_t *>(
          GC.allocate(2 * sizeof(uint64_t)));
      auto *Payload = static_cast<uint64_t *>(GC.allocate(
          PayloadWords * sizeof(uint64_t), ObjectKind::PointerFree));
      fillCompressedData(GC, Payload, PayloadWords, R);
      Record[1] = reinterpret_cast<uint64_t>(Payload);
      break;
    }
    }
    CGC_CHECK(Record, "record allocation failed");
    uint64_t &Chain = Chains[I % 2];
    Record[0] = Chain;
    Chain = reinterpret_cast<uint64_t>(Record);
  }

  // Measure live bytes with both chains, then drop chain 1.
  CollectionStats Before = GC.collect("before-drop");
  Chains[1] = 0;
  CollectionStats After = GC.collect("after-drop");

  Outcome Result;
  uint64_t ExpectedLive = Before.BytesLive / 2;
  Result.GarbageBytesRetained =
      After.BytesLive > ExpectedLive ? After.BytesLive - ExpectedLive : 0;
  Result.NearMisses = After.NearMisses;
  Result.HeapWordsScanned = After.HeapWordsScanned;
  return Result;
}

const char *styleName(Style S) {
  switch (S) {
  case Style::Conservative:
    return "fully conservative";
  case Style::Typed:
    return "typed layout (precise heap)";
  case Style::AtomicSplit:
    return "pointer-free payload split";
  }
  return "?";
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = cgcbench::consumeJsonFlag(Argc, Argv);
  cgcbench::printBanner(
      "§2 (heap conservativism)",
      "garbage retained through 'compressed data' payloads, by how "
      "much the collector is told",
      "random payload data scanned conservatively introduces false "
      "pointers with high probability; pointer-free/typed declarations "
      "remove them");

  cgcbench::JsonReport Report("heap conservativism");
  Report.set("records", uint64_t(NumRecords));
  Report.set("payload_words", uint64_t(PayloadWords));
  TablePrinter Table({"declaration", "garbage retained", "near misses",
                      "heap words scanned"});
  for (Style S :
       {Style::Conservative, Style::Typed, Style::AtomicSplit}) {
    Outcome Result = run(S, 17);
    Table.addRow({styleName(S),
                  TablePrinter::bytes(Result.GarbageBytesRetained),
                  std::to_string(Result.NearMisses),
                  std::to_string(Result.HeapWordsScanned)});
    Report.beginRow();
    Report.rowSet("declaration", std::string(styleName(S)));
    Report.rowSet("garbage_bytes_retained", Result.GarbageBytesRetained);
    Report.rowSet("near_misses", Result.NearMisses);
    Report.rowSet("heap_words_scanned", Result.HeapWordsScanned);
  }
  Table.print(stdout);
  if (Json) {
    std::string Path = Report.write();
    std::printf("json: %s\n", Path.empty() ? "(write failed)" : Path.c_str());
  }
  std::printf("\nthe same structure, the same random payload bits: only "
              "the declaration\nchanges.  Conservative payload scanning "
              "also floods the blacklist (near\nmisses), poisoning "
              "future page placement.\n");
  return 0;
}
