//===- bench/bench_mt_alloc.cpp - Multi-threaded allocation throughput ----===//
//
// Measures small-object allocation throughput from 1, 2, 4, and 8
// registered mutator threads, with the per-thread caches on
// (GcConfig::ThreadCacheSlots = 32: lock-free pops, batch refills
// under the heap lock) and off (0: every allocation serializes on the
// shared heap lock).  The interesting numbers are the cached-vs-
// uncached ratio at each thread count — the caches exist so threads
// stop queueing on the lock — and the scaling curve of the cached
// configuration.
//
// Every run cross-checks the accounting: after the threads unregister
// (flushing their caches and reversing unconsumed reservations), the
// heap's lifetime allocation counter must equal exactly threads x
// allocations-per-thread.
//
// Usage: bench_mt_alloc [--json] [allocs-per-thread] [reps]
//   (default 100000 3; --json writes BENCH_mt_alloc.json)
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Collector.h"
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

using namespace cgc;

namespace {

uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

GcConfig benchConfig(unsigned CacheSlots) {
  GcConfig Config;
  Config.WindowBytes = uint64_t(1) << 30;
  Config.Placement = HeapPlacement::Custom;
  Config.CustomHeapBaseOffset = 16 << 20;
  Config.MaxHeapBytes = uint64_t(256) << 20;
  Config.GcAtStartup = false;
  Config.MinHeapBytesBeforeGc = ~uint64_t(0); // Pure allocation, no GC.
  Config.ThreadCacheSlots = CacheSlots;
  return Config;
}

/// One timed run: \p Threads registered mutators allocate \p PerThread
/// 64-byte objects each, started together off a shared flag.  \returns
/// wall nanoseconds from release to last completion.
uint64_t runOnce(unsigned Threads, unsigned CacheSlots, size_t PerThread) {
  Collector GC(benchConfig(CacheSlots));
  std::atomic<unsigned> Ready{0};
  std::atomic<bool> Go{false};
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([&GC, &Ready, &Go, PerThread] {
      GcThreadScope Scope(GC);
      if (!Scope.registered()) {
        std::fprintf(stderr, "mutator registration refused\n");
        std::exit(1);
      }
      Ready.fetch_add(1);
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      // A tiny rotation window keeps a handful of objects reachable
      // and lets the rest die; the run never collects, so this is a
      // pure allocator measurement.
      uint64_t *Keep[8] = {nullptr};
      for (size_t I = 0; I != PerThread; ++I) {
        auto *Obj = static_cast<uint64_t *>(GC.allocate(64));
        if (!Obj) {
          std::fprintf(stderr, "out of memory\n");
          std::exit(1);
        }
        *Obj = I;
        Keep[I % 8] = Obj;
      }
      (void)Keep;
    });
  while (Ready.load() != Threads)
    std::this_thread::yield();
  uint64_t Begin = nowNanos();
  Go.store(true, std::memory_order_release);
  for (std::thread &W : Workers)
    W.join();
  uint64_t Nanos = nowNanos() - Begin;

  // Unregister reversed every unconsumed reservation: the lifetime
  // counter must be exactly the objects the threads really took.
  uint64_t Expected = uint64_t(Threads) * PerThread;
  if (GC.heapStats().ObjectsAllocated != Expected) {
    std::fprintf(stderr,
                 "ACCOUNTING VIOLATION: %llu objects recorded, expected "
                 "%llu\n",
                 static_cast<unsigned long long>(
                     GC.heapStats().ObjectsAllocated),
                 static_cast<unsigned long long>(Expected));
    std::exit(1);
  }
  return Nanos;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = cgcbench::consumeJsonFlag(Argc, Argv);
  size_t PerThread = Argc > 1 ? std::strtoull(Argv[1], nullptr, 10) : 100000;
  unsigned Reps = Argc > 2 ? static_cast<unsigned>(std::atoi(Argv[2])) : 3;
  if (PerThread == 0)
    PerThread = 100000;
  if (Reps == 0)
    Reps = 3;

  cgcbench::printBanner(
      "mt alloc",
      "multi-threaded allocation throughput, per-thread caches on vs off",
      "n/a (threading extension; bdwgc-style thread-local free lists)");

  unsigned Cores = std::thread::hardware_concurrency();
  std::printf("%zu x 64 B allocations per thread, best of %u reps, "
              "hardware threads %u\n",
              PerThread, Reps, Cores);
  std::printf("%-8s %16s %16s %10s %10s\n", "threads", "uncached",
              "cached (32)", "ratio", "scaling");

  cgcbench::JsonReport Report("mt alloc");
  Report.set("allocs_per_thread", uint64_t(PerThread));
  Report.set("reps", uint64_t(Reps));
  Report.set("hardware_threads", uint64_t(Cores));
  Report.set("cache_slots", uint64_t(32));

  double CachedBase = 0;
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    uint64_t BestUncached = ~uint64_t(0), BestCached = ~uint64_t(0);
    for (unsigned Rep = 0; Rep != Reps; ++Rep) {
      uint64_t Uncached = runOnce(Threads, /*CacheSlots=*/0, PerThread);
      uint64_t Cached = runOnce(Threads, /*CacheSlots=*/32, PerThread);
      if (Uncached < BestUncached)
        BestUncached = Uncached;
      if (Cached < BestCached)
        BestCached = Cached;
    }
    double Total = double(Threads) * double(PerThread);
    double UncachedRate = Total / (double(BestUncached) / 1e9);
    double CachedRate = Total / (double(BestCached) / 1e9);
    double Ratio = UncachedRate > 0 ? CachedRate / UncachedRate : 0;
    if (Threads == 1)
      CachedBase = CachedRate;
    double Scaling = CachedBase > 0 ? CachedRate / CachedBase : 0;
    std::printf("%-8u %11.2f M/s %11.2f M/s %9.2fx %9.2fx\n", Threads,
                UncachedRate / 1e6, CachedRate / 1e6, Ratio, Scaling);
    Report.beginRow();
    Report.rowSet("threads", uint64_t(Threads));
    Report.rowSet("uncached_allocs_per_sec", UncachedRate);
    Report.rowSet("cached_allocs_per_sec", CachedRate);
    Report.rowSet("uncached_best_ns", BestUncached);
    Report.rowSet("cached_best_ns", BestCached);
    Report.rowSet("cached_vs_uncached", Ratio);
    Report.rowSet("cached_scaling_vs_1t", Scaling);
  }
  std::printf("ratio = cached / uncached throughput at the same thread "
              "count; scaling = cached throughput vs 1 thread\n");
  if (Json) {
    std::string Path = Report.write();
    std::printf("json: %s\n", Path.empty() ? "(write failed)" : Path.c_str());
  }
  return 0;
}
