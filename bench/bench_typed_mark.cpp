//===- bench/bench_typed_mark.cpp - Typed vs conservative marking ---------===//
//
// Quantifies what the descriptor-driven tracing layer buys on heaps
// the paper's conservative scan handles worst — pointer-dense records
// whose integer words are distributed like random addresses:
//
//   * retained bytes: garbage kept alive only because an integer word
//     spelled a heap address (the §2 "compressed data" failure mode,
//     here measured on dense record heaps and the Figure-3 grid);
//   * mark throughput: a precise scan strides over the descriptor's
//     pointer words instead of every word, so the Mark phase touches a
//     fraction of the heap.
//
// Each workload runs twice — the typed declaration against the same
// structure with GcConfig::AllConservativeDescriptors demoting every
// descriptor — so the delta isolates exactly the mark-path change.
//
// Usage: bench_typed_mark [--json]
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Collector.h"
#include "structures/FalseRef.h"
#include "support/Random.h"
#include "support/Statistics.h"
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

using namespace cgc;

namespace {

GcConfig benchConfig(bool AllConservative) {
  GcConfig Config;
  Config.WindowBytes = uint64_t(4) << 30;
  Config.Placement = HeapPlacement::LowSbrk;
  Config.MaxHeapBytes = uint64_t(128) << 20;
  Config.GcAtStartup = false;
  Config.MinHeapBytesBeforeGc = ~uint64_t(0);
  Config.AllConservativeDescriptors = AllConservative;
  return Config;
}

/// Observer capturing each collection's Mark-phase duration.
class MarkTimer : public GcObserver {
public:
  void onPhaseEnd(GcPhase Phase, uint64_t Nanos,
                  const CollectionStats &) override {
    if (Phase == GcPhase::Mark)
      LastMarkNanos = Nanos;
  }
  uint64_t LastMarkNanos = 0;
};

/// Random 1993-style data: words uniform over the window hit the heap
/// with probability heap-size / window-size.
void fillRandomData(Collector &GC, uint64_t *Words, size_t Count, Rng &R) {
  for (size_t I = 0; I != Count; ++I)
    Words[I] = GC.arena().base() + R.nextBelow(GC.arena().size());
}

//===----------------------------------------------------------------------===//
// Workload 1: pointer-dense record list
//===----------------------------------------------------------------------===//

constexpr unsigned RecordWords = 16; // 1 link + 15 words of random data.
constexpr unsigned NumRecords = 8000;
constexpr unsigned MarkReps = 12;

struct ListOutcome {
  uint64_t GarbageBytesRetained = 0;
  uint64_t HeapWordsScanned = 0;
  uint64_t BestMarkNanos = ~uint64_t(0);
};

ListOutcome runRecordList(bool AllConservative, uint64_t Seed) {
  Collector GC(benchConfig(AllConservative));
  Rng R(Seed);
  constexpr size_t RecordBytes = RecordWords * sizeof(uint64_t);
  std::vector<bool> PointerWords(RecordWords, false);
  PointerWords[0] = true; // Only the link.
  LayoutId Layout = GC.registerObjectLayout(PointerWords, RecordBytes);

  // Two rooted chains so exactly half the records can be dropped.
  uint64_t Chains[2] = {0, 0};
  RootId Root = GC.addRootRange(Chains, Chains + 2, RootEncoding::Native64,
                                RootSource::Client, "chains");
  for (unsigned I = 0; I != NumRecords; ++I) {
    auto *Record = static_cast<uint64_t *>(GC.allocateTyped(Layout));
    CGC_CHECK(Record, "record allocation failed");
    fillRandomData(GC, Record + 1, RecordWords - 1, R);
    uint64_t &Chain = Chains[I % 2];
    Record[0] = Chain;
    Chain = reinterpret_cast<uint64_t>(Record);
  }

  CollectionStats Before = GC.collect("before-drop");
  Chains[1] = 0;

  MarkTimer Timer;
  GcObserverId TimerId = GC.addObserver(&Timer);
  ListOutcome Result;
  CollectionStats After;
  for (unsigned Rep = 0; Rep != MarkReps; ++Rep) {
    After = GC.collect("after-drop");
    Result.BestMarkNanos = std::min(Result.BestMarkNanos,
                                    Timer.LastMarkNanos);
  }
  uint64_t ExpectedLive = Before.BytesLive / 2;
  Result.GarbageBytesRetained =
      After.BytesLive > ExpectedLive ? After.BytesLive - ExpectedLive : 0;
  Result.HeapWordsScanned = After.HeapWordsScanned;
  GC.removeObserver(TimerId);
  GC.removeRootRange(Root);
  return Result;
}

//===----------------------------------------------------------------------===//
// Workload 2: the Figure-3 grid with noisy payloads
//===----------------------------------------------------------------------===//

constexpr unsigned GridN = 64;
constexpr unsigned GridSamples = 48;
constexpr unsigned VertexPayloadWords = 6;

struct GridVertex {
  GridVertex *Right;
  GridVertex *Down;
  uint64_t Payload[VertexPayloadWords];
};

struct GridOutcome {
  double MeanRetainedBytes = 0;
  uint64_t TotalBytes = 0;
};

/// The paper's Figure-3 embedded grid, with each vertex carrying noisy
/// payload words — mostly window-uniform, but one word in eight spells
/// the address of a random *other vertex* (integer data colliding with
/// the structure, the way hashes and compressed bitmaps do).  One
/// false reference into the interior retains exactly the down-right
/// cone under precise tracing; a conservative scan follows the
/// colliding payload words and drags in unrelated regions of the grid.
GridOutcome runGrid(bool AllConservative, uint64_t Seed) {
  Collector GC(benchConfig(AllConservative));
  Rng R(Seed);
  std::vector<bool> PointerWords(2 + VertexPayloadWords, false);
  PointerWords[0] = PointerWords[1] = true;
  LayoutId Layout =
      GC.registerObjectLayout(PointerWords, sizeof(GridVertex));

  std::vector<GridVertex *> Vertices(GridN * GridN);
  for (GridVertex *&V : Vertices) {
    V = static_cast<GridVertex *>(GC.allocateTyped(Layout));
    CGC_CHECK(V, "vertex allocation failed");
    fillRandomData(GC, V->Payload, VertexPayloadWords, R);
  }
  for (GridVertex *V : Vertices)
    for (unsigned W = 0; W != VertexPayloadWords; ++W)
      if (R.nextBool(0.125))
        V->Payload[W] = reinterpret_cast<uint64_t>(
            Vertices[R.pickIndex(Vertices.size())]);
  for (unsigned Row = 0; Row != GridN; ++Row)
    for (unsigned Col = 0; Col != GridN; ++Col) {
      GridVertex *V = Vertices[Row * GridN + Col];
      V->Right = Col + 1 != GridN ? Vertices[Row * GridN + Col + 1]
                                  : nullptr;
      V->Down = Row + 1 != GridN ? Vertices[(Row + 1) * GridN + Col]
                                 : nullptr;
    }

  GridOutcome Result;
  Result.TotalBytes = uint64_t(GridN) * GridN * sizeof(GridVertex);
  PlantedRef Ref(GC);
  double Sum = 0;
  for (unsigned I = 0; I != GridSamples; ++I) {
    Ref.setPointer(Vertices[R.pickIndex(Vertices.size())]);
    Sum += static_cast<double>(GC.measureLiveness().BytesMarked);
  }
  Result.MeanRetainedBytes = Sum / GridSamples;
  return Result;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = cgcbench::consumeJsonFlag(Argc, Argv);
  cgcbench::printBanner(
      "typed mark",
      "retained bytes and mark throughput, typed descriptors vs the "
      "same heap demoted to fully conservative",
      "precise heap tracing (the paper's Bartlett/Chailloux regime) "
      "drops integer-word false retention and scans a fraction of the "
      "words");

  cgcbench::JsonReport Report("typed mark");
  Report.set("records", uint64_t(NumRecords));
  Report.set("record_words", uint64_t(RecordWords));
  Report.set("grid_n", uint64_t(GridN));
  Report.set("grid_samples", uint64_t(GridSamples));

  TablePrinter Table({"workload", "declaration", "garbage retained",
                      "words scanned", "mark best"});

  ListOutcome TypedList = runRecordList(/*AllConservative=*/false, 17);
  ListOutcome ConsList = runRecordList(/*AllConservative=*/true, 17);
  for (bool Conservative : {false, true}) {
    const ListOutcome &O = Conservative ? ConsList : TypedList;
    const char *Decl = Conservative ? "all-conservative" : "typed";
    char Nanos[32];
    std::snprintf(Nanos, sizeof(Nanos), "%.2f ms",
                  double(O.BestMarkNanos) / 1e6);
    Table.addRow({"record list", Decl,
                  TablePrinter::bytes(O.GarbageBytesRetained),
                  std::to_string(O.HeapWordsScanned), Nanos});
    Report.beginRow();
    Report.rowSet("workload", std::string("record_list"));
    Report.rowSet("declaration", std::string(Decl));
    Report.rowSet("garbage_bytes_retained", O.GarbageBytesRetained);
    Report.rowSet("heap_words_scanned", O.HeapWordsScanned);
    Report.rowSet("mark_best_nanos", O.BestMarkNanos);
  }

  GridOutcome TypedGrid = runGrid(/*AllConservative=*/false, 29);
  GridOutcome ConsGrid = runGrid(/*AllConservative=*/true, 29);
  for (bool Conservative : {false, true}) {
    const GridOutcome &O = Conservative ? ConsGrid : TypedGrid;
    const char *Decl = Conservative ? "all-conservative" : "typed";
    char Mean[32];
    std::snprintf(Mean, sizeof(Mean), "%.0f B/falseref",
                  O.MeanRetainedBytes);
    Table.addRow({"fig3 grid", Decl, Mean, "-", "-"});
    Report.beginRow();
    Report.rowSet("workload", std::string("fig3_grid"));
    Report.rowSet("declaration", std::string(Decl));
    Report.rowSet("mean_retained_bytes_per_false_ref",
                  O.MeanRetainedBytes);
    Report.rowSet("structure_bytes", O.TotalBytes);
  }
  Table.print(stdout);

  double WordsRatio =
      ConsList.HeapWordsScanned
          ? double(TypedList.HeapWordsScanned) / ConsList.HeapWordsScanned
          : 0;
  double RetainedRatio =
      ConsGrid.MeanRetainedBytes
          ? TypedGrid.MeanRetainedBytes / ConsGrid.MeanRetainedBytes
          : 0;
  Report.set("record_list_words_scanned_ratio", WordsRatio);
  Report.set("grid_retained_ratio", RetainedRatio);
  std::printf("\nrecord list: typed marking scans %.1f%% of the "
              "conservative words and\nretains %s garbage vs %s; grid "
              "false refs retain %.1f%% as much.\n",
              100 * WordsRatio,
              TablePrinter::bytes(TypedList.GarbageBytesRetained).c_str(),
              TablePrinter::bytes(ConsList.GarbageBytesRetained).c_str(),
              100 * RetainedRatio);

  if (Json) {
    std::string Path = Report.write();
    std::printf("json: %s\n", Path.empty() ? "(write failed)" : Path.c_str());
  }
  return 0;
}
