//===- bench/bench_zorn_cost.cpp - Conclusions: the measured cost ---------===//
//
// Regenerates the paper's concluding discussion of Zorn's "The Measured
// Cost of Conservative Garbage Collection" [25]:
//
//   * "simply replacing explicit deallocation in a leak-free program
//     with conservative garbage collection is still likely to increase
//     memory consumption": (1) programs written for explicit
//     deallocation keep dead data reachable until free() — visible to
//     any collector; (2) "any tracing garbage collector will require
//     some fraction of the heap to be empty in order to avoid
//     excessively frequent collections".
//   * "even a completely nonmoving conservative collector should gain a
//     slight advantage over a malloc/free implementation, in that it is
//     usually much less expensive to keep free lists sorted by
//     address", reducing fragmentation.
//
// Method: one synthetic allocation trace (mixed sizes, overlapping
// lifetimes) replayed through (a) the explicit-heap baseline with LIFO
// free lists, (b) the baseline with address-ordered free lists, and
// (c) the conservative collector.  Reported: peak footprint, throughput,
// and fragmentation.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "baseline/ExplicitHeap.h"
#include "core/Collector.h"
#include "support/Random.h"
#include "support/Statistics.h"
#include <chrono>

using namespace cgc;
using namespace cgc::baseline;

namespace {

/// One step of the trace: allocate into a random slot, freeing what was
/// there.  Sizes are a two-mode mixture (small cells + medium buffers).
struct TraceConfig {
  size_t Slots = 20000;
  uint64_t Steps = 600000;
  uint64_t Seed = 99;
};

size_t traceSize(Rng &R) {
  return R.nextBool(0.85) ? R.nextInRange(16, 64)
                          : R.nextInRange(128, 2048);
}

uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct RunResult {
  uint64_t PeakFootprintBytes = 0;
  uint64_t LiveBytesAtEnd = 0;
  double NanosPerOp = 0;
  double FragmentationPct = 0;
  uint64_t Collections = 0;
};

RunResult runExplicit(ExplicitHeap::Policy Policy,
                      const TraceConfig &Trace) {
  ExplicitHeap Heap(uint64_t(512) << 20, Policy);
  Rng R(Trace.Seed);
  std::vector<void *> Slots(Trace.Slots, nullptr);
  uint64_t Start = nowNanos();
  for (uint64_t Step = 0; Step != Trace.Steps; ++Step) {
    size_t I = R.pickIndex(Slots.size());
    if (Slots[I])
      Heap.free(Slots[I]);
    Slots[I] = Heap.malloc(traceSize(R));
    CGC_CHECK(Slots[I], "baseline exhausted");
  }
  uint64_t Elapsed = nowNanos() - Start;
  RunResult Result;
  Result.PeakFootprintBytes = Heap.stats().FootprintBytes;
  Result.LiveBytesAtEnd = Heap.stats().BytesInUse;
  Result.NanosPerOp =
      static_cast<double>(Elapsed) / static_cast<double>(Trace.Steps);
  Result.FragmentationPct = Heap.fragmentation() * 100.0;
  return Result;
}

RunResult runCollected(const TraceConfig &Trace, bool LeakFreeStyle) {
  GcConfig Config;
  Config.MaxHeapBytes = uint64_t(512) << 20;
  Config.MinHeapBytesBeforeGc = 4 << 20;
  Config.CollectBeforeGrowthRatio = 0.5;
  Collector GC(Config);
  Rng R(Trace.Seed);
  // The slot table is the program's data: a scanned root.
  std::vector<uint64_t> Slots(Trace.Slots, 0);
  GC.addRootRange(Slots.data(), Slots.data() + Slots.size(),
                  RootEncoding::Native64, RootSource::Client,
                  "trace-slots");
  // A program converted from explicit deallocation "keeps deallocated
  // memory accessible through program variables": model the free-list
  // bookkeeping such programs carry as a window of dead-but-visible
  // pointers that clears only when it rotates.
  constexpr size_t DeferWindow = 4096;
  std::vector<uint64_t> Deferred;
  size_t DeferCursor = 0;
  if (!LeakFreeStyle) {
    Deferred.assign(DeferWindow, 0);
    GC.addRootRange(Deferred.data(), Deferred.data() + Deferred.size(),
                    RootEncoding::Native64, RootSource::Client,
                    "deferred-free-bookkeeping");
  }
  uint64_t Start = nowNanos();
  for (uint64_t Step = 0; Step != Trace.Steps; ++Step) {
    size_t I = R.pickIndex(Slots.size());
    uint64_t Old = Slots[I];
    Slots[I] = 0; // The reference the program actually drops.
    if (!LeakFreeStyle && Old != 0) {
      // Converted style: the dead pointer stays visible for a while.
      Deferred[DeferCursor] = Old;
      DeferCursor = (DeferCursor + 1) % DeferWindow;
    }
    void *P = GC.allocate(traceSize(R));
    CGC_CHECK(P, "collector exhausted");
    Slots[I] = reinterpret_cast<uint64_t>(P);
  }
  uint64_t Elapsed = nowNanos() - Start;
  RunResult Result;
  Result.PeakFootprintBytes = GC.committedHeapBytes();
  Result.LiveBytesAtEnd = GC.allocatedBytes();
  Result.NanosPerOp =
      static_cast<double>(Elapsed) / static_cast<double>(Trace.Steps);
  Result.FragmentationPct =
      GC.committedHeapBytes() == 0
          ? 0.0
          : 100.0 * (1.0 - static_cast<double>(GC.allocatedBytes()) /
                               static_cast<double>(
                                   GC.committedHeapBytes()));
  Result.Collections = GC.lifetimeStats().Collections;
  return Result;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = cgcbench::consumeJsonFlag(Argc, Argv);
  cgcbench::printBanner(
      "Zorn-style cost",
      "one allocation trace through malloc/free (LIFO and "
      "address-ordered) and the conservative collector",
      "GC footprint > malloc footprint (empty-heap fraction); "
      "address-ordered free lists reduce fragmentation; GC throughput "
      "competitive");

  TraceConfig Trace;
  cgcbench::JsonReport Report("zorn_cost");
  Report.set("slots", uint64_t(Trace.Slots));
  Report.set("steps", Trace.Steps);
  TablePrinter Table({"allocator", "peak footprint", "live at end",
                      "fragmentation", "ns/op", "collections"});

  auto addRow = [&](const char *Name, const RunResult &R) {
    char Frag[32], Ns[32];
    std::snprintf(Frag, sizeof(Frag), "%.1f%%", R.FragmentationPct);
    std::snprintf(Ns, sizeof(Ns), "%.1f", R.NanosPerOp);
    Table.addRow({Name, TablePrinter::bytes(R.PeakFootprintBytes),
                  TablePrinter::bytes(R.LiveBytesAtEnd), Frag, Ns,
                  std::to_string(R.Collections)});
    Report.beginRow();
    Report.rowSet("allocator", std::string(Name));
    Report.rowSet("peak_footprint_bytes", R.PeakFootprintBytes);
    Report.rowSet("live_bytes_at_end", R.LiveBytesAtEnd);
    Report.rowSet("fragmentation_pct", R.FragmentationPct);
    Report.rowSet("ns_per_op", R.NanosPerOp);
    Report.rowSet("collections", R.Collections);
  };

  addRow("malloc/free, LIFO free lists",
         runExplicit(ExplicitHeap::Policy::LifoFit, Trace));
  addRow("malloc/free, address-ordered",
         runExplicit(ExplicitHeap::Policy::AddressOrderedFit, Trace));
  addRow("conservative GC (written for GC)",
         runCollected(Trace, /*LeakFreeStyle=*/true));
  addRow("conservative GC (converted program)",
         runCollected(Trace, /*LeakFreeStyle=*/false));
  Table.print(stdout);
  std::printf("\nthe collector's extra footprint is the empty-heap "
              "fraction a tracing\ncollector needs; its throughput "
              "stays competitive with the explicit heap.\n");
  if (Json) {
    std::string Path = Report.write();
    std::printf("json: %s\n", Path.empty() ? "(write failed)" : Path.c_str());
  }
  return 0;
}
