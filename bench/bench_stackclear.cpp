//===- bench/bench_stackclear.cpp - §3.1: stack clearing ------------------===//
//
// Regenerates the §3.1 experiment:
//
//   "A simple program (compiled unoptimized on a SPARC) that
//    recursively and nondestructively reverses a 1000 element list 1000
//    times resulted in a maximum of between 40,000 and 100,000
//    apparently accessible cons-cells at one point.  With a very cheap
//    stack-clearing algorithm added, we never saw the maximum exceed
//    18,000 ... The optimized version of the program never resulted in
//    many more than 2000 cons-cells reported as accessible."
//
// The three rows below are those three configurations.  The true live
// set is ~2000 cells (the original list plus the accumulating
// reversal), so the first row's inflation is entirely stale-stack
// retention.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Collector.h"
#include "sim/SimStack.h"
#include "structures/ListReversal.h"
#include "support/Statistics.h"

using namespace cgc;
using namespace cgc::sim;

namespace {

ReversalResult runVariant(bool Recursive, bool Clearing, uint64_t Seed) {
  GcConfig Config;
  Config.Placement = HeapPlacement::HighBitsMixed;
  Config.MaxHeapBytes = uint64_t(64) << 20;
  Config.GcAtStartup = false;
  Config.MinHeapBytesBeforeGc = ~uint64_t(0); // Reversal collects itself.
  Config.StackClearing =
      Clearing ? StackClearMode::Cheap : StackClearMode::Off;
  Config.StackClearEveryNAllocs = 64;
  Collector GC(Config);

  SimStack Stack(1 << 17);
  Stack.attachTo(GC);
  // "A very cheap stack-clearing algorithm": a bounded chunk per hook.
  GC.addStackClearHook([&Stack] { Stack.clearBeyondTop(1024); });

  ReversalConfig RConfig;
  RConfig.ListLength = 1000;
  RConfig.Iterations = 1000;
  RConfig.Recursive = Recursive;
  // Unoptimized SPARC frames are "unnecessarily large": a 16-word
  // register-window save area plus locals, spills, and padding —
  // several hundred bytes.  Lazily flushed windows leak one earlier
  // iteration's pointer per save slot.
  RConfig.FrameSlots = 48;
  RConfig.ConsPerGc = 2000;
  (void)Seed;
  return runListReversal(GC, Stack, RConfig);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = cgcbench::consumeJsonFlag(Argc, Argv);
  cgcbench::printBanner(
      "§3.1 (stack clearing)",
      "max apparently-live cons cells: reverse a 1000-element list "
      "1000 times (true live set ~2000 cells)",
      "unoptimized 40,000-100,000; with cheap stack clearing <= "
      "18,000; optimized (loop) ~2,000");

  cgcbench::JsonReport Report("stackclear");
  TablePrinter Table({"variant", "max apparent live cells",
                      "mean apparent live", "collections",
                      "cells allocated"});

  struct Variant {
    const char *Name;
    bool Recursive;
    bool Clearing;
  };
  const Variant Variants[] = {
      {"recursive, no clearing", true, false},
      {"recursive, cheap stack clearing", true, true},
      {"loop (optimized build)", false, false},
  };
  double MeanApparent[3];
  unsigned Index = 0;
  for (const Variant &V : Variants) {
    ReversalResult R = runVariant(V.Recursive, V.Clearing, 1);
    MeanApparent[Index++] = R.meanApparentLiveCells();
    char Mean[32];
    std::snprintf(Mean, sizeof(Mean), "%.0f", R.meanApparentLiveCells());
    Table.addRow({V.Name, std::to_string(R.MaxApparentLiveCells), Mean,
                  std::to_string(R.CollectionsRun),
                  std::to_string(R.CellsAllocated)});
    Report.beginRow();
    Report.rowSet("variant", std::string(V.Name));
    Report.rowSet("max_apparent_live_cells", R.MaxApparentLiveCells);
    Report.rowSet("mean_apparent_live_cells", R.meanApparentLiveCells());
    Report.rowSet("collections", R.CollectionsRun);
    Report.rowSet("cells_allocated", R.CellsAllocated);
  }
  Table.print(stdout);

  // The paper's generational remark: "stray stack pointers can
  // significantly lengthen the lifetime of some objects, thus placing
  // a ceiling on the effectiveness of generational collection."  The
  // excess of the recursive variant's mean apparent liveness over the
  // loop baseline is garbage a generational collector would tenure.
  std::printf("\ngenerational ceiling: a generational collector would "
              "see ~%.0f dead cells as\nlive per collection "
              "(no-clearing) vs ~%.0f with stack clearing — stray "
              "stack\npointers lengthen object lifetimes and cap "
              "generational effectiveness.\n",
              MeanApparent[0] - MeanApparent[2],
              MeanApparent[1] - MeanApparent[2]);
  if (Json) {
    std::string Path = Report.write();
    std::printf("json: %s\n", Path.empty() ? "(write failed)" : Path.c_str());
  }
  return 0;
}
