//===- bench/bench_large_alloc.cpp - §3 observation 7: large objects -----===//
//
// Regenerates the paper's observation 7:
//
//   "A quick examination of the blacklist in a statically linked SPARC
//    executable suggests that if all interior pointers are considered
//    valid, it becomes difficult to allocate individual objects larger
//    than about 100 Kbytes without violating the blacklist constraint
//    ... This is never a problem if addresses that do not point to the
//    first page of an object can be considered invalid."
//
// Method: install SPARC-static-style pollution, run the startup
// collection so the blacklist fills, then probe for the largest single
// object allocatable without growing past already-blacklisted pages —
// under InteriorPolicy::All (run must avoid every blacklisted page)
// versus InteriorPolicy::FirstPage (only the first page matters).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Collector.h"
#include "sim/PlatformProfile.h"
#include "support/Statistics.h"

using namespace cgc;
using namespace cgc::sim;

namespace {

struct ProbeResult {
  uint64_t BlacklistedPages = 0;
  /// Largest gap between blacklisted pages within the committed heap —
  /// the cap on AllPagesClean objects that avoid heap growth.
  uint64_t LargestCleanGapBytes = 0;
  /// Largest object the allocator placed without growing the heap
  /// beyond its pre-probe committed size + one increment.
  uint64_t LargestPlacedBytes = 0;
};

ProbeResult probe(InteriorPolicy Interior, double TableScale,
                  uint64_t Seed) {
  PlatformSpec Spec = specFor(Platform::SparcStatic, false);
  Spec.Tables.Words =
      static_cast<size_t>(Spec.Tables.Words * TableScale);
  GcConfig Config = configFor(Spec, BlacklistMode::FlatBitmap);
  Config.Interior = Interior;
  Config.MaxHeapBytes = uint64_t(64) << 20;
  Collector GC(Config);
  SimEnvironment Env(GC, Spec, Seed);

  // Trigger the startup collection (fills the blacklist), then commit
  // a realistic heap.
  for (int I = 0; I != 4096; ++I)
    GC.allocate(8);
  GC.collect("settle");

  ProbeResult Result;
  Result.BlacklistedPages = GC.blacklistedPageCount();

  // Largest clean gap across the whole arena.
  PageAllocator &Pages = GC.pageAllocator();
  uint64_t Gap = 0, Best = 0;
  for (PageIndex P = Pages.arenaBasePage(); P != Pages.arenaLimitPage();
       ++P) {
    if (GC.blacklist().isBlacklisted(P)) {
      Best = std::max(Best, Gap);
      Gap = 0;
    } else {
      ++Gap;
    }
  }
  Best = std::max(Best, Gap);
  Result.LargestCleanGapBytes = Best * PageSize;

  // Binary-search (in pages) the largest object the allocator will
  // place.  Lo is known-good, Hi known-bad.
  uint64_t LoPages = 0, HiPages = Config.MaxHeapBytes / PageSize;
  while (LoPages + 1 < HiPages) {
    uint64_t MidPages = (LoPages + HiPages) / 2;
    void *P = GC.allocate(MidPages * PageSize - 64);
    if (P) {
      GC.deallocate(P);
      LoPages = MidPages;
    } else {
      HiPages = MidPages;
    }
  }
  Result.LargestPlacedBytes = LoPages * PageSize;
  return Result;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = cgcbench::consumeJsonFlag(Argc, Argv);
  cgcbench::printBanner(
      "Obs. 7 (large objects)",
      "largest allocatable object under blacklist pressure, by "
      "interior-pointer policy and pollution level",
      "with all interior pointers valid, objects over ~100 KB become "
      "hard to place on a polluted SPARC; first-page-only policy "
      "removes the limit");

  cgcbench::JsonReport Report("large_alloc");
  TablePrinter Table({"interior policy", "pollution scale",
                      "blacklisted pages", "largest clean gap",
                      "largest object placed"});
  for (double Scale : {0.25, 1.0, 4.0}) {
    for (InteriorPolicy Policy :
         {InteriorPolicy::All, InteriorPolicy::FirstPage}) {
      ProbeResult R = probe(Policy, Scale, 1);
      const char *PolicyName =
          Policy == InteriorPolicy::All ? "all interior" : "first page";
      Table.addRow(
          {PolicyName, std::to_string(Scale),
           std::to_string(R.BlacklistedPages),
           TablePrinter::bytes(R.LargestCleanGapBytes),
           TablePrinter::bytes(R.LargestPlacedBytes)});
      Report.beginRow();
      Report.rowSet("interior_policy", std::string(PolicyName));
      Report.rowSet("pollution_scale", Scale);
      Report.rowSet("blacklisted_pages", R.BlacklistedPages);
      Report.rowSet("largest_clean_gap_bytes", R.LargestCleanGapBytes);
      Report.rowSet("largest_placed_bytes", R.LargestPlacedBytes);
    }
  }
  Table.print(stdout);
  std::printf("\nUnder \"all interior\" the object must fit between "
              "blacklisted pages;\nunder \"first page\" only the first "
              "page must be clean, so the size cap disappears\n(limited "
              "only by the arena).\n");
  if (Json) {
    std::string Path = Report.write();
    std::printf("json: %s\n", Path.empty() ? "(write failed)" : Path.c_str());
  }
  return 0;
}
