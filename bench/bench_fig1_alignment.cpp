//===- bench/bench_fig1_alignment.cpp - §2/Figure 1: misidentification ----===//
//
// Regenerates the paper's §2 anatomy of pointer misidentification:
//
//  (a) Heap placement: "an adequate solution sometimes consists of
//      properly positioning the heap in the address space" — the same
//      random data segments are scanned against heaps placed like a
//      classic sbrk heap (low), inside the four-ASCII-byte range, and
//      at the recommended mixed-high-bits position.
//
//  (b) Figure 1: "the concatenation of the low order half word of an
//      integer with the high order half word of the next can easily be
//      a valid heap address" — arrays of small integers scanned at
//      word, half-word, and byte alignment.  "objects [should not be]
//      allocated at addresses containing a large number of trailing
//      zeroes": the trailing-zero-avoidance knob neutralizes exactly
//      the Figure-1 pattern, whose concatenated values end in 16 zero
//      bits.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Collector.h"
#include "sim/SyntheticSegments.h"
#include "support/Statistics.h"

using namespace cgc;
using namespace cgc::sim;

namespace {

/// Fills ~20 MiB of heap with standalone 16-byte objects (no links),
/// so every misidentified candidate retains exactly one object and
/// ObjectsMarked counts direct hits.
void fillHeap(Collector &GC, uint64_t Bytes) {
  for (uint64_t Used = 0; Used < Bytes; Used += 16)
    CGC_CHECK(GC.allocate(16), "fill allocation failed");
}

GcConfig baseConfig() {
  GcConfig Config;
  Config.MaxHeapBytes = uint64_t(24) << 20;
  Config.GcAtStartup = false;
  Config.MinHeapBytesBeforeGc = ~uint64_t(0);
  Config.Blacklist = BlacklistMode::Off;
  return Config;
}

/// Scans \p Seg as a Window32BE root and returns (hits, candidates).
std::pair<uint64_t, uint64_t> scanSegment(Collector &GC,
                                          const Segment &Seg) {
  RootId Root =
      GC.addRootRange(Seg.data(), Seg.data() + Seg.size(),
                      RootEncoding::Window32BE, RootSource::StaticData,
                      "probe-segment");
  CollectionStats Cycle = GC.measureLiveness();
  GC.removeRootRange(Root);
  return {Cycle.ObjectsMarked, Cycle.RootCandidatesExamined};
}

const char *placementName(HeapPlacement P) {
  switch (P) {
  case HeapPlacement::LowSbrk:
    return "low sbrk (0x100000)";
  case HeapPlacement::HighBitsMixed:
    return "mixed high bits (0x90000000)";
  case HeapPlacement::AsciiRange:
    return "ASCII range (0x61000000)";
  case HeapPlacement::Custom:
    return "custom";
  }
  return "?";
}

void partAPlacement(cgcbench::JsonReport &Report) {
  cgcbench::printBanner(
      "Fig.1/a (placement)",
      "objects misidentified per 10k scanned data words, by heap "
      "placement and data kind",
      "low-placed heaps collide with integer data; ASCII-range heaps "
      "collide with character data; mixed high bits collide with "
      "neither");

  TablePrinter Table({"heap placement", "30-bit ints", "small ints",
                      "packed strings", "uniform 32-bit"});

  for (HeapPlacement Placement :
       {HeapPlacement::LowSbrk, HeapPlacement::AsciiRange,
        HeapPlacement::HighBitsMixed}) {
    GcConfig Config = baseConfig();
    Config.Placement = Placement;
    Config.RootScanAlignment = 4;
    Collector GC(Config);
    fillHeap(GC, uint64_t(20) << 20);

    Rng R(42);
    Segment Ints30, SmallInts, Strings, Wild;
    appendIntTable(Ints30, {10000, 0x30000000, 0.0, 0.0}, R, true);
    appendIntTable(SmallInts, {10000, 4096, 0.0, 0.0}, R, true);
    appendStringPool(Strings, {2500, 3, 24, false}, R); // ~10k words.
    appendIntTable(Wild, {10000, 0xFFFFFFFF, 0.0, 0.0}, R, true);

    Report.beginRow();
    Report.rowSet("section", std::string("placement"));
    Report.rowSet("placement", std::string(placementName(Placement)));
    auto Rate = [&](const Segment &Seg, const char *Key) {
      auto [Hits, Candidates] = scanSegment(GC, Seg);
      double Pct = 100.0 * static_cast<double>(Hits) /
                   static_cast<double>(Candidates);
      Report.rowSet(Key, Pct);
      char Buffer[64];
      std::snprintf(Buffer, sizeof(Buffer), "%6.2f%%", Pct);
      return std::string(Buffer);
    };
    Table.addRow({placementName(Placement), Rate(Ints30, "ints30_pct"),
                  Rate(SmallInts, "small_ints_pct"),
                  Rate(Strings, "strings_pct"),
                  Rate(Wild, "uniform32_pct")});
  }
  Table.print(stdout);
  std::printf("\n");
}

void partBFigure1(cgcbench::JsonReport &Report) {
  cgcbench::printBanner(
      "Fig.1/b (alignment)",
      "small-integer arrays scanned at word / half-word / byte "
      "alignment, heap at offset 0x80000",
      "two small integers concatenate into address 0x00090000 at "
      "unaligned positions (Figure 1); avoiding trailing-zero object "
      "addresses neutralizes the pattern");

  TablePrinter Table({"scan alignment", "avoid trailing zeros",
                      "near misses", "objects misidentified"});

  for (unsigned Alignment : {4u, 2u, 1u}) {
    for (bool AvoidZeros : {false, true}) {
      GcConfig Config = baseConfig();
      Config.Placement = HeapPlacement::Custom;
      Config.CustomHeapBaseOffset = 0x80000; // 512 KiB: a very low heap.
      Config.RootScanAlignment = Alignment;
      Config.AvoidTrailingZeroAddresses = AvoidZeros;
      Collector GC(Config);
      fillHeap(GC, uint64_t(20) << 20);

      // Figure 1's data: adjacent small integers (0x0009, 0x000a, ...).
      Rng R(7);
      Segment SmallInts;
      appendIntTable(SmallInts, {20000, 4096, 0.0, 0.0}, R, true);

      RootId Root = GC.addRootRange(
          SmallInts.data(), SmallInts.data() + SmallInts.size(),
          RootEncoding::Window32BE, RootSource::StaticData, "fig1");
      CollectionStats Cycle = GC.measureLiveness();
      GC.removeRootRange(Root);

      Table.addRow({std::to_string(Alignment) + " bytes",
                    AvoidZeros ? "yes" : "no",
                    std::to_string(Cycle.NearMisses),
                    std::to_string(Cycle.ObjectsMarked)});
      Report.beginRow();
      Report.rowSet("section", std::string("figure1"));
      Report.rowSet("scan_alignment", uint64_t(Alignment));
      Report.rowSet("avoid_trailing_zeros", uint64_t(AvoidZeros ? 1 : 0));
      Report.rowSet("near_misses", Cycle.NearMisses);
      Report.rowSet("objects_misidentified", Cycle.ObjectsMarked);
    }
  }
  Table.print(stdout);
  std::printf("\nword-aligned scans see no hits (small integers are not "
              "heap addresses);\nhalf-word/byte scans manufacture "
              "Figure-1 concatenations, which all end in\n16+ zero bits "
              "— so slotting objects 16 bytes into each page rejects "
              "them.\n");
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = cgcbench::consumeJsonFlag(Argc, Argv);
  cgcbench::JsonReport Report("fig1_alignment");
  partAPlacement(Report);
  partBFigure1(Report);
  if (Json) {
    std::string Path = Report.write();
    std::printf("json: %s\n", Path.empty() ? "(write failed)" : Path.c_str());
  }
  return 0;
}
