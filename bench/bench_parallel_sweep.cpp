//===- bench/bench_parallel_sweep.cpp - Parallel sweep-phase speedup ------===//
//
// Measures the Sweep phase of the collection pipeline under 1, 2, and
// 4 pool workers on a large-heap configuration: many small blocks,
// most of them full of garbage, so sweeping (bitmap scans + freed-slot
// clearing) dominates the phase.  The retained set, free-list order,
// and every counter are identical for any worker count — the knob only
// moves wall-clock time — so the run cross-checks determinism while it
// measures.
//
// Each rep re-creates the garbage (sweep work disappears once swept),
// alternating live and dead lists so blocks are partially, fully, or
// not-at-all reclaimed.
//
// Usage: bench_parallel_sweep [--json] [objects] [reps]
//   (default 400000 6; --json writes BENCH_parallel_sweep.json)
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Collector.h"
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

using namespace cgc;

namespace {

struct ListNode {
  ListNode *Next;
  uint64_t Payload[7]; // 64-byte objects: 63 slots per block.
};

/// Observer capturing each collection's Sweep-phase duration.
class SweepTimer : public GcObserver {
public:
  void onPhaseEnd(GcPhase Phase, uint64_t Nanos,
                  const CollectionStats &) override {
    if (Phase == GcPhase::Sweep)
      LastSweepNanos = Nanos;
  }
  uint64_t LastSweepNanos = 0;
};

constexpr unsigned NumAnchors = 32;

/// Allocates \p Count nodes as NumAnchors linked lists; odd lists are
/// anchored (live across the collection), even lists are dropped —
/// every block ends up with a mix of live and dead slots.
void buildChurn(Collector &GC, size_t Count, ListNode **Anchors) {
  for (unsigned L = 0; L != NumAnchors; ++L)
    Anchors[L] = nullptr;
  size_t PerList = Count / NumAnchors;
  for (unsigned L = 0; L != NumAnchors; ++L) {
    ListNode *Head = nullptr;
    for (size_t I = 0; I != PerList; ++I) {
      auto *N = static_cast<ListNode *>(GC.allocate(sizeof(ListNode)));
      if (!N) {
        std::fprintf(stderr, "out of memory\n");
        std::exit(1);
      }
      N->Next = Head;
      Head = N;
    }
    if (L % 2 == 1)
      Anchors[L] = Head;
  }
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = cgcbench::consumeJsonFlag(Argc, Argv);
  size_t Objects = Argc > 1 ? std::strtoull(Argv[1], nullptr, 10) : 400000;
  unsigned Reps = Argc > 2 ? std::atoi(Argv[2]) : 6;
  if (Objects == 0)
    Objects = 400000;
  if (Reps == 0)
    Reps = 6;

  cgcbench::printBanner(
      "parallel sweep",
      "sweep-phase wall clock vs persistent-pool worker count",
      "n/a (post-paper extension; results must match the sequential "
      "sweep bit for bit)");

  GcConfig Config;
  Config.WindowBytes = uint64_t(512) << 20;
  Config.Placement = HeapPlacement::Custom;
  Config.CustomHeapBaseOffset = 16 << 20;
  Config.MaxHeapBytes = uint64_t(128) << 20;
  Config.GcAtStartup = false;
  Config.MinHeapBytesBeforeGc = ~uint64_t(0);
  Collector GC(Config);

  static ListNode *Anchors[NumAnchors];
  GC.addRootRange(Anchors, Anchors + NumAnchors, RootEncoding::Native64,
                  RootSource::Client, "anchors");

  SweepTimer Timer;
  GC.addObserver(&Timer);

  std::printf("heap: %zu nodes x %zu B = %.1f MB, half the lists live, "
              "half garbage per rep\n",
              Objects, sizeof(ListNode),
              double(Objects) * sizeof(ListNode) / (1 << 20));
  unsigned Cores = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u%s\n", Cores,
              Cores < 4 ? "  (speedup needs >= as many cores as workers)"
                        : "");
  std::printf("%-8s %14s %14s %10s %12s %12s\n", "workers", "sweep best",
              "sweep mean", "speedup", "swept free", "live");

  cgcbench::JsonReport Report("parallel sweep");
  Report.set("objects", uint64_t(Objects));
  Report.set("reps", uint64_t(Reps));
  Report.set("hardware_threads", uint64_t(Cores));

  uint64_t Baseline = 0;
  uint64_t BaselineFree = 0, BaselineLive = 0;
  for (unsigned Workers : {1u, 2u, 4u}) {
    GC.setSweepThreads(Workers);
    uint64_t Best = ~uint64_t(0), Sum = 0;
    uint64_t SweptFree = 0, Live = 0;
    for (unsigned Rep = 0; Rep != Reps; ++Rep) {
      buildChurn(GC, Objects, Anchors);
      CollectionStats Cycle = GC.collect("bench");
      Best = std::min(Best, Timer.LastSweepNanos);
      Sum += Timer.LastSweepNanos;
      SweptFree = Cycle.ObjectsSweptFree;
      Live = Cycle.ObjectsLive;
    }
    if (Workers == 1) {
      Baseline = Best;
      BaselineFree = SweptFree;
      BaselineLive = Live;
    } else if (SweptFree != BaselineFree || Live != BaselineLive) {
      std::printf("DETERMINISM VIOLATION: %llu freed / %llu live at %u "
                  "workers, %llu / %llu at 1\n",
                  static_cast<unsigned long long>(SweptFree),
                  static_cast<unsigned long long>(Live), Workers,
                  static_cast<unsigned long long>(BaselineFree),
                  static_cast<unsigned long long>(BaselineLive));
      return 1;
    }
    double Speedup = Baseline ? double(Baseline) / Best : 0.0;
    std::printf("%-8u %11.2f ms %11.2f ms %9.2fx %12llu %12llu\n",
                Workers, Best / 1e6, Sum / double(Reps) / 1e6, Speedup,
                static_cast<unsigned long long>(SweptFree),
                static_cast<unsigned long long>(Live));
    Report.beginRow();
    Report.rowSet("workers", uint64_t(Workers));
    Report.rowSet("sweep_best_ns", Best);
    Report.rowSet("sweep_mean_ns", uint64_t(Sum / Reps));
    Report.rowSet("speedup", Speedup);
    Report.rowSet("objects_swept_free", SweptFree);
    Report.rowSet("objects_live", Live);
  }
  std::printf("pool threads spawned: %u (persistent; zero per-collection "
              "thread construction)\n",
              GC.workerPool().threadsSpawned());
  if (Json) {
    std::string Path = Report.write();
    std::printf("json: %s\n", Path.empty() ? "(write failed)" : Path.c_str());
  }
  return 0;
}
