//===- bench/bench_cords.cpp - Cord (rope) operation scaling --------------===//
//
// The cord library was the collector's original demonstration client:
// persistent tree-structured strings are only practical when dropping
// an old version costs nothing, which is exactly what a garbage
// collector buys.  This bench shows the asymptotics — O(1)-ish
// concatenation and O(log n) substring against std::string's O(n) —
// and that leaves being pointer-free keeps collection time independent
// of text volume.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "cords/Cord.h"
#include <benchmark/benchmark.h>

using namespace cgc;

namespace {

GcConfig cordBenchConfig() {
  GcConfig Config;
  Config.MaxHeapBytes = uint64_t(512) << 20;
  Config.MinHeapBytesBeforeGc = 16 << 20;
  return Config;
}

std::string chunkText() { return std::string(64, 'x'); }

void BM_CordAppend(benchmark::State &State) {
  Collector GC(cordBenchConfig());
  std::string Chunk = chunkText();
  // The current cord lives in a registered root slot.
  static Cord *Live;
  alignas(8) static unsigned char Slot[sizeof(Cord)];
  Live = new (Slot) Cord(GC);
  GC.addRootRange(Slot, Slot + sizeof(Cord), RootEncoding::Native64,
                  RootSource::Client, "bench-cord");
  size_t Limit = static_cast<size_t>(State.range(0));
  for (auto _ : State) {
    if (Live->length() >= Limit)
      *Live = Cord(GC); // Start over; the old tree becomes garbage.
    *Live = *Live + Chunk;
    benchmark::DoNotOptimize(Live->length());
  }
  State.counters["final_depth"] = Live->depth();
  Live->~Cord();
}

void BM_StringAppend(benchmark::State &State) {
  std::string Chunk = chunkText();
  std::string Live;
  size_t Limit = static_cast<size_t>(State.range(0));
  for (auto _ : State) {
    if (Live.size() >= Limit)
      Live.clear();
    // Value-semantics append, as persistent versions would need.
    std::string Next = Live + Chunk;
    benchmark::DoNotOptimize(Next.size());
    Live = std::move(Next);
  }
}

void BM_CordSubstring(benchmark::State &State) {
  Collector GC(cordBenchConfig());
  size_t Len = static_cast<size_t>(State.range(0));
  static Cord *Base;
  alignas(8) static unsigned char Slot[sizeof(Cord)];
  Base = new (Slot) Cord(Cord::fromString(GC, std::string(Len, 'y')));
  GC.addRootRange(Slot, Slot + sizeof(Cord), RootEncoding::Native64,
                  RootSource::Client, "bench-cord");
  size_t At = 0;
  for (auto _ : State) {
    Cord Sub = Base->substr(At % (Len / 2), Len / 2);
    benchmark::DoNotOptimize(Sub.length());
    At += 4097;
  }
  Base->~Cord();
}

void BM_StringSubstring(benchmark::State &State) {
  size_t Len = static_cast<size_t>(State.range(0));
  std::string Base(Len, 'y');
  size_t At = 0;
  for (auto _ : State) {
    std::string Sub = Base.substr(At % (Len / 2), Len / 2);
    benchmark::DoNotOptimize(Sub.size());
    At += 4097;
  }
}

} // namespace

BENCHMARK(BM_CordAppend)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(BM_StringAppend)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(BM_CordSubstring)->Arg(1 << 16)->Arg(1 << 22);
BENCHMARK(BM_StringSubstring)->Arg(1 << 16)->Arg(1 << 22);

namespace {

/// Console reporter that also mirrors every run into a JsonReport row,
/// so `--json` produces the same BENCH_<id>.json as the other benches.
class RecordingReporter : public benchmark::ConsoleReporter {
public:
  explicit RecordingReporter(cgcbench::JsonReport &Report)
      : Report(Report) {}

  void ReportRuns(const std::vector<Run> &Runs) override {
    ConsoleReporter::ReportRuns(Runs);
    for (const Run &R : Runs) {
      if (R.error_occurred)
        continue;
      Report.beginRow();
      Report.rowSet("name", R.benchmark_name());
      Report.rowSet("iterations", static_cast<uint64_t>(R.iterations));
      double NsPerIter =
          R.iterations == 0
              ? 0.0
              : 1e9 * R.real_accumulated_time /
                    static_cast<double>(R.iterations);
      Report.rowSet("ns_per_iter", NsPerIter);
      for (const auto &Counter : R.counters)
        Report.rowSet(Counter.first.c_str(),
                      static_cast<double>(Counter.second.value));
    }
  }

private:
  cgcbench::JsonReport &Report;
};

} // namespace

int main(int Argc, char **Argv) {
  bool Json = cgcbench::consumeJsonFlag(Argc, Argv);
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  cgcbench::JsonReport Report("cords");
  RecordingReporter Reporter(Report);
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();
  if (Json) {
    std::string Path = Report.write();
    std::printf("json: %s\n", Path.empty() ? "(write failed)" : Path.c_str());
  }
  return 0;
}
