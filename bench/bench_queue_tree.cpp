//===- bench/bench_queue_tree.cpp - §4: structure sensitivity -------------===//
//
// Regenerates §4's data-structure sensitivity results:
//
//   * Queue growth under a single pinned element: "Queues ... grow
//     without bound, but typically only a section of bounded length is
//     accessible ... A false reference can result in retention of all
//     the inaccessible elements, and thus unbounded heap growth.
//     Queues no longer grow without bound if the queue link field is
//     cleared when an item is removed."
//   * Lazy lists: same unbounded hazard.
//   * Balanced binary trees: "The expected number of vertices retained
//     ... is approximately equal to the height of the tree" — benign.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Collector.h"
#include "structures/BinaryTree.h"
#include "structures/FalseRef.h"
#include "structures/LazyList.h"
#include "structures/Queue.h"
#include "support/Random.h"
#include "support/Statistics.h"

using namespace cgc;

namespace {

GcConfig benchConfig() {
  GcConfig Config;
  Config.MaxHeapBytes = uint64_t(128) << 20;
  Config.GcAtStartup = false;
  Config.MinHeapBytesBeforeGc = ~uint64_t(0);
  return Config;
}

void queueGrowth(cgcbench::JsonReport &Report) {
  cgcbench::printBanner(
      "§4 queues", "live cells vs items processed, one pinned element",
      "uncleared links grow without bound; cleared links stay flat");

  TablePrinter Table({"items through queue", "live (uncleared links)",
                      "live (cleared links)"});
  for (uint64_t Churn : {1000u, 4000u, 16000u, 64000u, 256000u}) {
    uint64_t Live[2];
    for (bool Clear : {false, true}) {
      Collector GC(benchConfig());
      GcQueue Q(GC, Clear);
      for (uint64_t I = 0; I != 16; ++I)
        Q.enqueue(I);
      PlantedRef Pin(GC);
      Pin.setPointer(Q.head()); // One stray reference, planted once.
      for (uint64_t I = 0; I != Churn; ++I) {
        Q.enqueue(I);
        Q.dequeue();
      }
      Live[Clear] = GC.collect().ObjectsLive;
    }
    Table.addRow({std::to_string(Churn), std::to_string(Live[0]),
                  std::to_string(Live[1])});
    Report.beginRow();
    Report.rowSet("section", std::string("queue"));
    Report.rowSet("items", uint64_t(Churn));
    Report.rowSet("live_uncleared_links", Live[0]);
    Report.rowSet("live_cleared_links", Live[1]);
  }
  Table.print(stdout);
  std::printf("\n");
}

void lazyListGrowth(cgcbench::JsonReport &Report) {
  cgcbench::printBanner(
      "§4 lazy lists", "live cells vs stream position, one pinned cell",
      "a false reference to a consumed cell retains the whole segment "
      "up to the cursor");

  TablePrinter Table({"cells consumed", "live (pinned)", "live (clean)"});
  for (uint64_t Steps : {1000u, 8000u, 64000u}) {
    uint64_t Live[2];
    for (bool Pinned : {true, false}) {
      Collector GC(benchConfig());
      LazyList Stream(GC, [](uint64_t I) { return I; });
      PlantedRef Pin(GC);
      if (Pinned)
        Pin.setPointer(Stream.cursor());
      for (uint64_t I = 0; I != Steps; ++I)
        Stream.advance();
      Live[Pinned ? 0 : 1] = GC.collect().ObjectsLive;
    }
    Table.addRow({std::to_string(Steps), std::to_string(Live[0]),
                  std::to_string(Live[1])});
    Report.beginRow();
    Report.rowSet("section", std::string("lazy_list"));
    Report.rowSet("cells_consumed", uint64_t(Steps));
    Report.rowSet("live_pinned", Live[0]);
    Report.rowSet("live_clean", Live[1]);
  }
  Table.print(stdout);
  std::printf("\n");
}

void treeRetention(cgcbench::JsonReport &Report) {
  cgcbench::printBanner(
      "§4 balanced trees",
      "mean vertices retained by a false reference vs tree height",
      "approximately equal to the height of the tree");

  TablePrinter Table({"height", "nodes", "mean retained",
                      "retained/height"});
  Rng R(5);
  for (unsigned Height : {8u, 10u, 12u, 14u}) {
    Collector GC(benchConfig());
    BalancedTree Tree(GC, Height);
    Tree.dropRoot();
    PlantedRef Ref(GC);
    RunningStat Stat;
    unsigned Samples = 4000;
    for (unsigned I = 0; I != Samples; ++I) {
      Ref.setOffset(Tree.nodeOffset(R.pickIndex(Tree.nodeCount())));
      Stat.addSample(
          static_cast<double>(GC.measureLiveness().ObjectsMarked));
    }
    char Ratio[32];
    std::snprintf(Ratio, sizeof(Ratio), "%.2f", Stat.mean() / Height);
    Table.addRow({std::to_string(Height),
                  std::to_string(Tree.nodeCount()),
                  std::to_string(Stat.mean()), Ratio});
    Report.beginRow();
    Report.rowSet("section", std::string("tree"));
    Report.rowSet("height", uint64_t(Height));
    Report.rowSet("nodes", uint64_t(Tree.nodeCount()));
    Report.rowSet("mean_retained", Stat.mean());
    Report.rowSet("retained_over_height", Stat.mean() / Height);
  }
  Table.print(stdout);
  std::printf("\n\"a large number of false references to such structures "
              "can usually be tolerated\"\n");
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = cgcbench::consumeJsonFlag(Argc, Argv);
  cgcbench::JsonReport Report("queue_tree");
  queueGrowth(Report);
  lazyListGrowth(Report);
  treeRetention(Report);
  if (Json) {
    std::string Path = Report.write();
    std::printf("json: %s\n", Path.empty() ? "(write failed)" : Path.c_str());
  }
  return 0;
}
