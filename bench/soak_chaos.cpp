//===- bench/soak_chaos.cpp - Deterministic chaos-soak harness ------------===//
//
// Long-running robustness soak: drives the interpreter, Program T, and
// the §4 queue/tree workloads under seed-replayable randomized fault
// arming, with periodic HeapVerifier deep checks and retention-sentinel
// invariant assertions along the way.
//
// Every decision the harness makes — which workload to run, what sizes
// to allocate, which fault site to arm and for how many hits — is drawn
// from one xoshiro256** stream seeded on the command line, so a failure
// replays with a single command.  On any check failure the harness
// prints the exact seed and step:
//
//   SOAK FAILURE: <what failed>
//     at step 117 of 300, seed 42
//     replay: soak_chaos --seed 42 --steps 300
//
// The run folds its schedule and every deterministic observable (eval
// results, live-object counts, retained-list counts, tolerated
// allocation failures) into an FNV-1a digest; --replay-check executes
// the whole soak twice and fails unless the digests are bit-identical.
//
// Usage: soak_chaos [--seed S] [--steps N] [--replay-check] [--guarded]
//        [--typed] [--mutator-threads N] [--wedge] [--corrupt]
//        [--redirect] [--json]
// --guarded re-runs every collector in guarded-heap mode
// (GcConfig::DebugGuards): headers, redzones, quarantine, and the
// explicit-free validation ladder are all live, and ~25% of churn
// slots are explicitly freed to keep the quarantine churning.
// --typed adds a descriptor-driven lane: each round builds the same
// pointer-dense list precisely and all-conservatively, asserts the
// typed heap retains a subset, reconciles the per-class scan split,
// and folds both retained counts into the digest.
// --mutator-threads N appends a multi-mutator phase: N registered
// threads run independent seeded churn streams against one collector
// (any of them may trigger a stop-the-world collect), and each
// thread's stream-deterministic counters and value-tag checksum are
// folded into the digest in thread-index order, so --replay-check
// covers the handshake/cache machinery too.
// --wedge appends the stop-the-world hardening lane: each round one
// mutator spins past every safepoint so the handshake must climb the
// watchdog ladder to the signal-suspension rung; only stream-pure
// counters and the per-round suspension delta fold into the digest,
// so the lane replays bit-identically under --replay-check.
// --corrupt appends the corruption-containment lane: every round
// deliberately damages one metadata structure (block header, free-list
// link, page-map entry, or alloc bit — schedule-drawn) at collection
// entry on a sealed-metadata collector running with per-phase
// verification and the repair ladder engaged.  Each corruption must be
// detected, the cycle abandoned and retried after an in-place repair,
// and the heap deep-verified clean — with every live-count and
// repair-counter delta folded into the digest so --replay-check proves
// the whole detect/repair/retry ladder is bit-replayable.
// --redirect appends the malloc-redirection lane: seeded churn through
// the process-global cgc_redirect_* entry points with ~10% hostile
// calls mixed in (foreign frees of real libc chunks, overflowing
// callocs, frees of stack addresses, zero-size and realloc edge
// cases), recorded to a trace and replayed through ExplicitHeap — the
// replay digest, the per-op stream, and the redirect stats deltas all
// fold into the soak digest, so --replay-check proves the hardened
// entry points behave bit-identically under hostility.
// --json writes BENCH_soak_chaos.json for CI trend tracking
// (BENCH_soak_chaos_wedge.json under --wedge,
// BENCH_soak_chaos_corrupt.json under --corrupt,
// BENCH_soak_chaos_redirect.json under --redirect).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "baseline/ExplicitHeap.h"
#include "capi/cgc.h"
#include "core/Collector.h"
#include "core/GcSentinel.h"
#include "interp/Interpreter.h"
#include "redirect/Redirect.h"
#include "redirect/TraceLog.h"
#include "redirect/TraceReplay.h"
#include "structures/BinaryTree.h"
#include "structures/FalseRef.h"
#include "structures/ProgramT.h"
#include "structures/Queue.h"
#include "support/CrashReporter.h"
#include "support/FaultInjection.h"
#include "support/Random.h"
#include <atomic>
#include <cerrno>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace cgc;

namespace {

struct SoakOptions {
  uint64_t Seed = 1;
  unsigned Steps = 300;
  bool ReplayCheck = false;
  bool Json = false;
  bool Guarded = false;
  /// Adds a typed-marking lane: descriptor-driven allocation rounds
  /// whose subset property and scan-mix reconciliation fold into the
  /// digest (a soak without --typed keeps its historical digest).
  bool Typed = false;
  /// 0 disables the multi-mutator phase (and leaves the digest of an
  /// unthreaded soak untouched).
  unsigned MutatorThreads = 0;
  /// Appends the stop-the-world hardening lane: each round wedges one
  /// mutator in a poll-free spin so the handshake must climb the
  /// watchdog ladder to the signal-suspension rung.
  bool Wedge = false;
  /// Appends the corruption-containment lane: one injected metadata
  /// corruption per step, each detected, repaired, and retried.
  bool Corrupt = false;
  /// Appends the malloc-redirection lane: hostile churn through the
  /// process-global cgc_redirect_* entry points, recorded to a trace
  /// and replayed through ExplicitHeap into the digest.
  bool Redirect = false;
};

/// Everything a completed run reports; digest first, counters for the
/// JSON report after.
struct SoakOutcome {
  bool Failed = false;
  uint64_t Digest = 0xcbf29ce484222325ull; // FNV-1a offset basis.
  uint64_t Collections = 0;
  uint64_t Verifications = 0;
  uint64_t AllocFailuresTolerated = 0;
  uint64_t FaultsArmed = 0;
  uint64_t InterpEvals = 0;
  uint64_t QueueRounds = 0;
  uint64_t TreeProbes = 0;
  uint64_t ProgramTRuns = 0;
  uint64_t TypedRounds = 0;
  uint64_t GuardedFrees = 0;
  uint64_t MutatorAllocs = 0;
  uint64_t MutatorFrees = 0;
  uint64_t MutatorCollections = 0;
  uint64_t MutatorHandshakes = 0;
  uint64_t WedgeRounds = 0;
  uint64_t WedgeSuspensions = 0;
  uint64_t CorruptionsInjected = 0;
  uint64_t CorruptRetries = 0;
  uint64_t CorruptFindingsRepaired = 0;
  uint64_t CorruptFreeListRebuilds = 0;
  uint64_t CorruptPageMapRederivations = 0;
  uint64_t CorruptCountersResynced = 0;
  uint64_t CorruptQuarantined = 0;
  uint64_t CorruptSealTransitions = 0;
  uint64_t RedirectRounds = 0;
  uint64_t RedirectAllocs = 0;
  uint64_t RedirectFrees = 0;
  uint64_t RedirectHostileCalls = 0;
  uint64_t RedirectForeignFrees = 0;
  uint64_t RedirectCallocOverflows = 0;
  uint64_t RedirectTraceRecords = 0;
  uint64_t RedirectReplayEvents = 0;
  GcSentinelStats Sentinel;
  GcGuardStats Guard;
};

class SoakRun {
public:
  SoakRun(const SoakOptions &Opts) : Opts(Opts), Schedule(Opts.Seed) {}

  SoakOutcome run();

private:
  // Workload phases; drawn per step from the schedule stream.
  void stepChurn(Collector &GC, std::vector<uint64_t> &Slots);
  void stepInterpreter(interp::Interpreter &Interp);
  void stepQueue();
  void stepTree();
  void stepProgramT();
  void stepTyped();

  void deepVerify(Collector &GC, const char *Label);
  void checkSentinel(Collector &GC);
  void checkGuards(Collector &GC);
  void runMutatorPhase();
  void runWedgePhase();
  void runCorruptPhase();
  void runRedirectPhase();

  void fold(uint64_t Value) {
    Outcome.Digest ^= Value;
    Outcome.Digest *= 0x100000001b3ull;
  }
  void foldString(const std::string &Text) {
    for (unsigned char C : Text)
      fold(C);
  }

  [[noreturn]] void fail(const char *What, const std::string &Detail = "") {
    std::printf("SOAK FAILURE: %s\n", What);
    if (!Detail.empty())
      std::printf("%s\n", Detail.c_str());
    std::printf("  at step %u of %u, seed %" PRIu64 "\n", Step, Opts.Steps,
                Opts.Seed);
    std::printf("  replay: soak_chaos --seed %" PRIu64 " --steps %u%s%s%s%s%s",
                Opts.Seed, Opts.Steps, Opts.Guarded ? " --guarded" : "",
                Opts.Typed ? " --typed" : "", Opts.Wedge ? " --wedge" : "",
                Opts.Corrupt ? " --corrupt" : "",
                Opts.Redirect ? " --redirect" : "");
    if (Opts.MutatorThreads != 0)
      std::printf(" --mutator-threads %u", Opts.MutatorThreads);
    std::printf("\n");
    std::fflush(stdout);
    std::exit(1);
  }

  SoakOptions Opts;
  Rng Schedule;
  SoakOutcome Outcome;
  unsigned Step = 0;
};

GcConfig soakConfig(bool WithSentinel, bool Guarded) {
  GcConfig Config;
  Config.MaxHeapBytes = uint64_t(64) << 20;
  Config.GcAtStartup = false;
  if (Guarded) {
    // The whole soak rides on guarded slots: headers and redzones are
    // re-validated at every sweep and deep verification, and the small
    // quarantine forces constant poison re-checks and evictions.
    Config.DebugGuards = true;
    Config.GuardFatal = true;
    Config.QuarantineSlots = 64;
  }
  if (WithSentinel) {
    // Aggressive policy so the soak actually exercises the ladder: a
    // short window and a low floor turn churn surges into storms.
    Config.Sentinel.Enabled = true;
    Config.Sentinel.WindowCollections = 4;
    Config.Sentinel.GrowthFloorBytes = 256 << 10;
    Config.Sentinel.CalmCollections = 3;
  }
  return Config;
}

void SoakRun::deepVerify(Collector &GC, const char *Label) {
  HeapVerifyReport Report = GC.verifyHeapReport();
  ++Outcome.Verifications;
  if (!Report.clean())
    fail(Label, Report.str());
}

void SoakRun::checkSentinel(Collector &GC) {
  GcSentinel *Sentinel = GC.sentinel();
  if (!Sentinel)
    fail("sentinel disappeared from a sentinel-enabled collector");
  const GcSentinelStats &S = Sentinel->stats();
  if (S.CurrentLevel > 4)
    fail("sentinel escalated past the top of the ladder");
  // Each ladder rung fires at most once per climb, in order; a climb
  // that reached level N must have passed through every rung below it.
  uint64_t Climbs = S.StackClearForces;
  if (S.BlacklistRefreshes > Climbs || S.InteriorTightenings > Climbs ||
      S.IncidentsRaised > Climbs)
    fail("sentinel escalation rungs fired out of order");
  if (S.CurrentLevel > 0 && Climbs == 0)
    fail("sentinel reports a level without any recorded escalation");
  Outcome.Sentinel = S;
}

/// A guarded soak runs only correct code, so any tripped guard counter
/// is a collector bug: either the guard machinery misfired or the heap
/// really was corrupted.  Folding the benign counters into the digest
/// also makes replay-check cover the guard bookkeeping itself.
void SoakRun::checkGuards(Collector &GC) {
  if (!Opts.Guarded)
    return;
  const GcGuardStats &G = GC.guardStats();
  if (G.HeaderSmashes || G.RedzoneSmashes || G.DoubleFrees ||
      G.InvalidFrees || G.UseAfterFreeWrites)
    fail("guard violation raised on a correct workload",
         "header=" + std::to_string(G.HeaderSmashes) +
             " redzone=" + std::to_string(G.RedzoneSmashes) +
             " double-free=" + std::to_string(G.DoubleFrees) +
             " invalid-free=" + std::to_string(G.InvalidFrees) +
             " uaf=" + std::to_string(G.UseAfterFreeWrites));
  fold(G.GuardedAllocations);
  fold(G.GuardedFrees);
  fold(G.QuarantineFlushes);
  Outcome.Guard = G;
}

/// Random allocation churn with faults armed: the one phase that runs
/// with the injector live, so every allocation is written to tolerate
/// failure.
void SoakRun::stepChurn(Collector &GC, std::vector<uint64_t> &Slots) {
  if (FaultInjectionCompiled && Schedule.nextBool(0.5)) {
    // Finite FailCount: the fault is a transient the collector must
    // ride through, not a permanently broken arena.  Only the
    // allocation-path sites are drawn here: WedgedMutator (and any
    // later site) is meaningless on a single-threaded phase, and
    // pinning the draw range keeps historical soak digests stable.
    constexpr unsigned NumChaosFaultSites = 4;
    static_assert(static_cast<unsigned>(FaultSite::WedgedMutator) ==
                      NumChaosFaultSites,
                  "allocation-path fault sites must stay contiguous below "
                  "the thread faults");
    FaultSite Site =
        static_cast<FaultSite>(Schedule.nextBelow(NumChaosFaultSites));
    uint64_t Skip = Schedule.nextBelow(16);
    uint64_t Fails = Schedule.nextInRange(1, 8);
    FaultInjector::instance().arm(Site, Skip, Fails);
    ++Outcome.FaultsArmed;
    fold(static_cast<uint64_t>(Site) ^ (Skip << 8) ^ (Fails << 16));
  }
  if (Schedule.nextBool(0.25))
    GC.setMarkThreads(
        static_cast<unsigned>(Schedule.nextInRange(1, 4)));

  // A surge leaves slots populated (live bytes climb, feeding the
  // sentinel window); a purge clears most of them.
  bool Surge = Schedule.nextBool(0.6);
  unsigned Ops = static_cast<unsigned>(Schedule.nextInRange(32, 192));
  for (unsigned I = 0; I != Ops; ++I) {
    size_t Slot = Schedule.pickIndex(Slots.size());
    // Guarded runs exercise the explicit-free path too: each pointer
    // lives in exactly one slot, so this never double-frees, and every
    // free rides the full validation ladder into the quarantine.
    if (Opts.Guarded && Slots[Slot] && Schedule.nextBool(0.25)) {
      GC.deallocate(reinterpret_cast<void *>(Slots[Slot]));
      Slots[Slot] = 0;
      ++Outcome.GuardedFrees;
      fold(0xf4eeull ^ (uint64_t(Slot) << 16));
      continue;
    }
    if (!Surge && Schedule.nextBool(0.7)) {
      Slots[Slot] = 0;
      continue;
    }
    size_t Bytes = Schedule.nextBool(0.05)
                       ? Schedule.nextInRange(16 << 10, 64 << 10)
                       : Schedule.nextInRange(16, 4096);
    void *Ptr = GC.allocate(Bytes);
    if (!Ptr) {
      // An armed arena fault surfaced as a failed allocation after the
      // OOM ladder ran dry — tolerated, counted, and folded so replays
      // agree on exactly which allocations failed.
      ++Outcome.AllocFailuresTolerated;
      fold(0xdeadull ^ (uint64_t(I) << 16));
      continue;
    }
    std::memset(Ptr, 0, Bytes < 64 ? Bytes : 64);
    Slots[Slot] = reinterpret_cast<uint64_t>(Ptr);
  }

  if (Schedule.nextBool(0.5)) {
    CollectionStats Cycle = GC.collect("soak-churn");
    ++Outcome.Collections;
    fold(Cycle.ObjectsLive);
    checkSentinel(GC);
    checkGuards(GC);
  }
  FaultInjector::instance().disarmAll();
}

void SoakRun::stepInterpreter(interp::Interpreter &Interp) {
  // Parameterized programs with computable answers: the eval result is
  // a pure function of the schedule, so folding it into the digest
  // turns any GC bug that frees a live interpreter temporary into a
  // digest mismatch (or an error flag) instead of silent corruption.
  char Program[256];
  uint64_t Expected;
  switch (Schedule.nextBelow(3)) {
  case 0: {
    unsigned N = static_cast<unsigned>(Schedule.nextInRange(50, 400));
    std::snprintf(Program, sizeof(Program),
                  "(define build (lambda (n acc) (if (= n 0) acc "
                  "(build (- n 1) (cons n acc))))) (length (build %u '()))",
                  N);
    Expected = N;
    break;
  }
  case 1: {
    unsigned N = static_cast<unsigned>(Schedule.nextInRange(3, 30));
    std::snprintf(Program, sizeof(Program),
                  "(define sum (lambda (n) (if (= n 0) 0 "
                  "(+ n (sum (- n 1)))))) (sum %u)",
                  N);
    Expected = uint64_t(N) * (N + 1) / 2;
    break;
  }
  default: {
    unsigned A = static_cast<unsigned>(Schedule.nextInRange(2, 40));
    unsigned B = static_cast<unsigned>(Schedule.nextInRange(2, 40));
    std::snprintf(Program, sizeof(Program),
                  "(length (append (build-list %u) (build-list %u)))", A, B);
    Expected = A + B;
    break;
  }
  }
  interp::Value Result = Interp.evalString(Program);
  if (Interp.failed())
    fail("interpreter error during soak", Interp.errorMessage());
  std::string Text = Interp.toString(Result);
  if (Text != std::to_string(Expected))
    fail("interpreter produced a wrong answer (GC corruption?)",
         std::string("program: ") + Program + "\n  got " + Text +
             ", expected " + std::to_string(Expected));
  foldString(Text);
  ++Outcome.InterpEvals;
  if (Schedule.nextBool(0.3)) {
    Interp.collector().collect("soak-interp");
    ++Outcome.Collections;
  }
}

void SoakRun::stepQueue() {
  Collector GC(soakConfig(false, Opts.Guarded));
  bool Clear = Schedule.nextBool(0.5);
  uint64_t Churn = Schedule.nextInRange(200, 2000);
  GcQueue Q(GC, Clear);
  for (uint64_t I = 0; I != 8; ++I)
    Q.enqueue(I);
  PlantedRef Pin(GC);
  Pin.setPointer(Q.head());
  for (uint64_t I = 0; I != Churn; ++I) {
    Q.enqueue(I);
    Q.dequeue();
  }
  CollectionStats Cycle = GC.collect("soak-queue");
  ++Outcome.Collections;
  ++Outcome.QueueRounds;
  // §4's bound: cleared links keep the live set flat no matter the
  // churn; a regression here is a correctness bug, not noise.
  if (Clear && Cycle.ObjectsLive > 64)
    fail("cleared-link queue retained unbounded garbage");
  fold(Cycle.ObjectsLive);
  deepVerify(GC, "heap verification failed after queue churn");
  checkGuards(GC);
}

void SoakRun::stepTree() {
  Collector GC(soakConfig(false, Opts.Guarded));
  unsigned Height = static_cast<unsigned>(Schedule.nextInRange(6, 10));
  BalancedTree Tree(GC, Height);
  Tree.dropRoot();
  PlantedRef Ref(GC);
  // The paper's §4 claim is about the *expectation*: "the expected
  // number of vertices retained ... is approximately equal to the
  // height of the tree".  A single unlucky probe can land near the
  // root and legitimately retain a whole subtree, so the assertion is
  // statistical: out of 32 probes, at most a quarter may retain more
  // than 4x the height (the true fraction is about 1/(4*height)).
  constexpr unsigned Probes = 32;
  unsigned Exceeded = 0;
  for (unsigned I = 0; I != Probes; ++I) {
    Ref.setOffset(Tree.nodeOffset(Schedule.pickIndex(Tree.nodeCount())));
    CollectionStats Marked = GC.measureLiveness();
    if (Marked.ObjectsMarked > Tree.nodeCount() + 8)
      fail("false reference retained more objects than the tree holds");
    if (Marked.ObjectsMarked > uint64_t(4) * Height + 8)
      ++Exceeded;
    fold(Marked.ObjectsMarked);
    ++Outcome.TreeProbes;
  }
  if (Exceeded > Probes / 4)
    fail("false references into balanced tree retained far more than "
         "the expected O(height)");
}

void SoakRun::stepProgramT() {
  Collector GC(soakConfig(false, Opts.Guarded));
  ProgramTConfig Config;
  Config.NumLists = static_cast<unsigned>(Schedule.nextInRange(8, 24));
  Config.CellsPerList = 500;
  ProgramT T(GC, /*Stack=*/nullptr, Config);
  ProgramTResult R = T.run();
  if (R.OutOfMemory)
    fail("Program T exhausted a 64 MB arena at toy scale");
  fold((uint64_t(R.ListsBuilt) << 32) | R.ListsRetained);
  ++Outcome.ProgramTRuns;
  Outcome.Collections += R.CollectionsRun;
  deepVerify(GC, "heap verification failed after Program T");
  checkGuards(GC);
}

/// The --typed lane: the same pointer-dense list is built twice — once
/// through its precise descriptor, once with every descriptor demoted
/// to conservative (GcConfig::AllConservativeDescriptors) — and the
/// paper-level claim is asserted directly: the typed heap retains a
/// subset of the conservative heap, because integer payloads that spell
/// heap addresses stop retaining anything once the descriptor says
/// they are not pointers.  Both retained counts and the per-class
/// scan-mix reconciliation fold into the digest.
void SoakRun::stepTyped() {
  struct TypedNode {
    uint64_t Payload; // Never a pointer; filled with decoy addresses.
    TypedNode *Next;
    uint64_t Noise; // Never a pointer either.
  };
  static_assert(sizeof(TypedNode) == 3 * sizeof(uint64_t), "");
  unsigned Count = static_cast<unsigned>(Schedule.nextInRange(64, 512));
  unsigned Decoys = static_cast<unsigned>(Schedule.nextInRange(8, 64));

  auto build = [&](bool AllConservative) -> uint64_t {
    GcConfig Config = soakConfig(false, Opts.Guarded);
    Config.AllConservativeDescriptors = AllConservative;
    Collector GC(Config);
    LayoutId Node = GC.registerObjectLayout({false, true, false},
                                            sizeof(TypedNode));
    // Decoys: real heap objects that go dead immediately; their
    // addresses live on only inside non-pointer words of the list.
    std::vector<uint64_t> DecoyAddrs;
    for (unsigned I = 0; I != Decoys; ++I)
      DecoyAddrs.push_back(
          reinterpret_cast<uint64_t>(GC.allocate(64)));
    TypedNode *Head = nullptr;
    for (unsigned I = 0; I != Count; ++I) {
      auto *N = static_cast<TypedNode *>(GC.allocateTyped(Node));
      if (!N)
        fail("typed allocation failed in a 64 MB arena");
      N->Payload = DecoyAddrs[I % DecoyAddrs.size()];
      N->Next = Head;
      N->Noise = DecoyAddrs[(I + 1) % DecoyAddrs.size()];
      Head = N;
    }
    PlantedRef Pin(GC);
    Pin.setPointer(Head);
    CollectionStats Cycle = GC.collect("soak-typed");
    ++Outcome.Collections;
    constexpr unsigned Cons =
        static_cast<unsigned>(DescriptorClass::Conservative);
    constexpr unsigned Precise =
        static_cast<unsigned>(DescriptorClass::Precise);
    constexpr unsigned PtrFree =
        static_cast<unsigned>(DescriptorClass::PointerFree);
    if (Cycle.ScanWordsByClass[Cons] + Cycle.ScanWordsByClass[Precise] !=
            Cycle.HeapWordsScanned ||
        Cycle.ScanWordsByClass[PtrFree] != 0)
      fail("per-class scan counters do not reconcile with the total");
    if (AllConservative && Cycle.ScanWordsByClass[Precise] != 0)
      fail("all-conservative mode still traced through a descriptor");
    if (!AllConservative && Cycle.ScanWordsByClass[Precise] == 0)
      fail("typed heap never dispatched a precise scan");
    fold(Cycle.ObjectsLive);
    fold(Cycle.ScanWordsByClass[Precise]);
    deepVerify(GC, "heap verification failed after the typed lane");
    checkGuards(GC);
    return Cycle.ObjectsLive;
  };

  uint64_t TypedLive = build(/*AllConservative=*/false);
  uint64_t ConservativeLive = build(/*AllConservative=*/true);
  if (TypedLive > ConservativeLive)
    fail("typed heap retained more than its conservative twin",
         "  typed=" + std::to_string(TypedLive) +
             " conservative=" + std::to_string(ConservativeLive));
  ++Outcome.TypedRounds;
}

/// The multi-mutator phase: N registered threads run independent
/// seeded churn streams against one shared collector, any of which may
/// trigger a stop-the-world collect at any moment.  Every value a
/// thread folds is a pure function of its own stream — operation
/// counts, sizes, and the tag checksum over objects it re-reads before
/// dropping — never of the interleaving, so folding the per-thread
/// digests in thread-index order keeps the whole soak seed-replayable.
void SoakRun::runMutatorPhase() {
  struct MutatorLocal {
    uint64_t Digest = 0xcbf29ce484222325ull;
    uint64_t Allocs = 0;
    uint64_t Frees = 0;
    uint64_t Collections = 0;
    std::string Error;
    void fold(uint64_t Value) {
      Digest ^= Value;
      Digest *= 0x100000001b3ull;
    }
  };

  unsigned NumThreads = Opts.MutatorThreads;
  GcConfig Config = soakConfig(/*WithSentinel=*/false, Opts.Guarded);
  Config.MutatorThreads = NumThreads;
  Collector GC(Config);
  std::vector<std::vector<uint64_t>> Windows(
      NumThreads, std::vector<uint64_t>(96, 0));
  std::vector<RootId> WindowRoots;
  for (std::vector<uint64_t> &W : Windows)
    WindowRoots.push_back(GC.addRootRange(
        W.data(), W.data() + W.size(), RootEncoding::Native64,
        RootSource::Client, "soak-mutator-window"));

  std::vector<MutatorLocal> Locals(NumThreads);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([this, &GC, &Windows, &Locals, T] {
      MutatorLocal &Local = Locals[T];
      std::vector<uint64_t> &Window = Windows[T];
      GcThreadScope Scope(GC);
      if (!Scope.registered()) {
        Local.Error = "mutator thread refused by the registry";
        return;
      }
      // Per-thread stream: unrelated to the schedule stream and to
      // every other thread's, so each thread's decisions replay
      // identically whatever the interleaving.
      Rng R(Opts.Seed ^ (0x9e3779b97f4a7c15ull * (T + 1)));
      std::vector<uint64_t> Tags(Window.size(), 0);
      for (unsigned Step = 0; Step != 1200; ++Step) {
        size_t Slot = R.pickIndex(Window.size());
        uint64_t Choice = R.nextBelow(100);
        if (Choice < 70) { // Allocate into a slot, re-check the old tag.
          if (Window[Slot] != 0) {
            uint64_t Seen = *reinterpret_cast<uint64_t *>(Window[Slot]);
            if (Seen != Tags[Slot]) {
              Local.Error = "mutator tag mismatch: a rooted object was "
                            "reclaimed or clobbered under churn";
              return;
            }
            Local.fold(Seen);
          }
          size_t Bytes = R.nextInRange(16, 1024);
          void *Ptr = GC.allocate(Bytes);
          if (!Ptr) {
            Local.Error = "mutator allocation failed in a 64 MB arena";
            return;
          }
          uint64_t Tag = (uint64_t(T + 1) << 48) ^ (uint64_t(Step) << 16) ^
                         uint64_t(Slot);
          *reinterpret_cast<uint64_t *>(Ptr) = Tag;
          Window[Slot] = reinterpret_cast<uint64_t>(Ptr);
          Tags[Slot] = Tag;
          ++Local.Allocs;
        } else if (Choice < 85) { // Drop (or explicitly free) a slot.
          if (Window[Slot] != 0) {
            if (Opts.Guarded && R.nextBool(0.5)) {
              GC.deallocate(reinterpret_cast<void *>(Window[Slot]));
              ++Local.Frees;
            }
            Window[Slot] = 0;
            Tags[Slot] = 0;
          }
        } else if (Choice < 88) { // Handshake-collect from this thread.
          GC.collect("soak-mutator");
          ++Local.Collections;
        } else {
          GC.safepoint();
        }
      }
      Local.fold(Local.Allocs);
      Local.fold(Local.Frees);
      Local.fold(Local.Collections);
    });
  for (std::thread &Th : Threads)
    Th.join();

  for (unsigned T = 0; T != NumThreads; ++T) {
    if (!Locals[T].Error.empty())
      fail("multi-mutator phase failed",
           "  thread " + std::to_string(T) + ": " + Locals[T].Error);
    // Thread-index order: the fold sequence is independent of which
    // thread finished first.
    fold(Locals[T].Digest);
    Outcome.MutatorAllocs += Locals[T].Allocs;
    Outcome.MutatorFrees += Locals[T].Frees;
    Outcome.MutatorCollections += Locals[T].Collections;
  }
  Outcome.Collections += Outcome.MutatorCollections;
  Outcome.MutatorHandshakes = GC.threadRegistry().handshakes();
  if (GC.threadRegistry().registeredCount() != 0)
    fail("mutator threads left registry records behind");
  fold(GC.threadRegistry().lifetimeRegistrations());

  // With every thread gone there are no conservative stack roots left;
  // dropping the windows must drain the heap to zero.
  for (std::vector<uint64_t> &W : Windows)
    std::fill(W.begin(), W.end(), 0);
  GC.collect("soak-mutator-drain");
  ++Outcome.Collections;
  GC.objectHeap().finishPendingSweeps();
  if (GC.allocatedBytes() != 0)
    fail("multi-mutator heap failed to drain",
         "  allocatedBytes=" + std::to_string(GC.allocatedBytes()));
  fold(GC.allocatedBytes());
  deepVerify(GC, "deep verification failed after the multi-mutator phase");
  checkGuards(GC);
  for (RootId Id : WindowRoots)
    GC.removeRootRange(Id);
}

/// The --wedge lane: each round one mutator deliberately never reaches
/// a safepoint, so the stop-the-world handshake must climb the
/// watchdog ladder to the signal-suspension rung.  Worker 0 churns a
/// seeded stream, raises a flag, then spins with no polls; worker 1
/// churns the same way and then parks politely on polls; the main
/// thread collects once the flag is up.  Only interleaving-independent
/// values fold into the digest: each worker's stream digest in index
/// order and the per-round suspension delta (always exactly the one
/// wedged thread — the cooperative worker polls every iteration and
/// the signal rung only fires at deadline/2).
void SoakRun::runWedgePhase() {
  struct WedgeLocal {
    uint64_t Digest = 0xcbf29ce484222325ull;
    uint64_t Allocs = 0;
    std::string Error;
    void fold(uint64_t Value) {
      Digest ^= Value;
      Digest *= 0x100000001b3ull;
    }
  };

  constexpr unsigned Rounds = 4;
  GcConfig Config = soakConfig(/*WithSentinel=*/false, Opts.Guarded);
  Config.MutatorThreads = 2;
  // Signal rung at deadline/2 = 50 ms: a huge margin for the
  // cooperative worker to park on a poll first, short enough that the
  // lane stays fast.
  Config.HandshakeDeadlineMs = 100;
  Collector GC(Config);

  std::vector<std::vector<uint64_t>> Windows(2,
                                             std::vector<uint64_t>(64, 0));
  std::vector<RootId> Roots;
  for (std::vector<uint64_t> &W : Windows)
    Roots.push_back(GC.addRootRange(W.data(), W.data() + W.size(),
                                    RootEncoding::Native64,
                                    RootSource::Client,
                                    "soak-wedge-window"));

  for (unsigned Round = 0; Round != Rounds; ++Round) {
    std::atomic<bool> WedgedUp{false};
    std::atomic<bool> CoopUp{false};
    std::atomic<bool> Resume{false};
    WedgeLocal Locals[2];
    // Per-thread stream: a pure function of (seed, round, index), so
    // the folded digest is independent of scheduling.
    auto churn = [&](unsigned T, WedgeLocal &Local) {
      Rng R(Opts.Seed ^ (0xd1b54a32d192ed03ull * (Round * 2 + T + 1)));
      std::vector<uint64_t> &Window = Windows[T];
      for (unsigned I = 0; I != 160; ++I) {
        size_t Slot = R.pickIndex(Window.size());
        size_t Bytes = R.nextInRange(16, 512);
        void *Ptr = GC.allocate(Bytes);
        if (!Ptr) {
          Local.Error = "wedge-lane allocation failed in a 64 MB arena";
          return false;
        }
        std::memset(Ptr, 0, 16);
        Window[Slot] = reinterpret_cast<uint64_t>(Ptr);
        Local.fold((uint64_t(Slot) << 32) ^ Bytes);
        ++Local.Allocs;
      }
      return true;
    };

    std::thread Wedger([&] {
      GcThreadScope Scope(GC);
      if (!Scope.registered()) {
        Locals[0].Error = "wedge thread refused by the registry";
        WedgedUp.store(true, std::memory_order_release);
        return;
      }
      if (!churn(0, Locals[0])) {
        WedgedUp.store(true, std::memory_order_release);
        return;
      }
      // The wedge: raise the flag, then spin without ever polling a
      // safepoint.  The only way to stop this thread is the watchdog's
      // preemptive signal suspension.
      WedgedUp.store(true, std::memory_order_release);
      while (!Resume.load(std::memory_order_acquire)) {
      }
    });
    std::thread Cooperative([&] {
      GcThreadScope Scope(GC);
      if (!Scope.registered()) {
        Locals[1].Error = "cooperative thread refused by the registry";
        CoopUp.store(true, std::memory_order_release);
        return;
      }
      bool Churned = churn(1, Locals[1]);
      // Published only once churn is done: a tail-of-churn allocation
      // can trigger its own collection, and that handshake would
      // signal-suspend the already-spinning wedger.  The suspension
      // window below must not race with such a collection, or the
      // folded delta stops being schedule-independent.
      CoopUp.store(true, std::memory_order_release);
      if (!Churned)
        return;
      while (!Resume.load(std::memory_order_acquire))
        GC.safepoint();
    });

    while (!WedgedUp.load(std::memory_order_acquire) ||
           !CoopUp.load(std::memory_order_acquire))
      std::this_thread::yield();
    uint64_t SuspendsBefore = GC.threadRegistry().signalSuspensions();
    GC.collect("soak-wedge");
    ++Outcome.Collections;
    uint64_t Delta =
        GC.threadRegistry().signalSuspensions() - SuspendsBefore;
    Resume.store(true, std::memory_order_release);
    Wedger.join();
    Cooperative.join();
    for (WedgeLocal &Local : Locals)
      if (!Local.Error.empty())
        fail("wedge phase failed", "  " + Local.Error);
    if (Delta == 0)
      fail("wedged mutator was never signal-suspended; the watchdog "
           "escalation did not fire");
    fold(Locals[0].Digest);
    fold(Locals[1].Digest);
    fold(Delta);
    Outcome.WedgeSuspensions += Delta;
    ++Outcome.WedgeRounds;
  }

  if (GC.threadRegistry().registeredCount() != 0)
    fail("wedge threads left registry records behind");
  for (std::vector<uint64_t> &W : Windows)
    std::fill(W.begin(), W.end(), 0);
  GC.collect("soak-wedge-drain");
  ++Outcome.Collections;
  deepVerify(GC, "deep verification failed after the wedge phase");
  checkGuards(GC);
  for (RootId Id : Roots)
    GC.removeRootRange(Id);
}

/// The --corrupt lane: one deliberate metadata corruption per step on
/// a sealed-metadata collector running per-phase verification with the
/// repair ladder engaged (RepairFatal off).  Each round churns a
/// rooted slot window, arms one of the four metadata-corruption sites
/// (drawn from the schedule), and collects: the injected damage lands
/// at collection entry, the verifier catches it at the first phase
/// boundary, the cycle is abandoned, the heap repaired in place, and
/// the cycle retried — all of which must leave the retained set intact
/// and the heap deep-verified clean, every single round.  Live counts
/// and every repair-counter delta fold into the digest, so
/// --replay-check proves the containment ladder itself replays
/// bit-identically.
void SoakRun::runCorruptPhase() {
  if (!FaultInjectionCompiled)
    fail("--corrupt requires a build with CGC_FAULT_INJECTION");

  // Victim selection inside injectMetadataFaults keys off the
  // process-global injector's cumulative fired counts; zero them so a
  // --replay-check second run corrupts the exact same blocks.
  FaultInjector::instance().resetStats();

  GcConfig Config = soakConfig(/*WithSentinel=*/false, /*Guarded=*/false);
  Config.SealMetadata = true;
  Config.VerifyEveryCollection = true;
  Config.RepairFatal = false;
  Collector GC(Config);
  std::vector<uint64_t> Slots(96, 0);
  RootId SlotsRoot = GC.addRootRange(
      Slots.data(), Slots.data() + Slots.size(), RootEncoding::Native64,
      RootSource::Client, "soak-corrupt-slots");

  // Seed survivors across several size classes, then collect once
  // clean: every later round has live blocks to flip headers in and
  // partial class lists to smash links out of.
  for (size_t Slot = 0; Slot != Slots.size(); ++Slot)
    Slots[Slot] = reinterpret_cast<uint64_t>(
        GC.allocate(Schedule.nextInRange(16, 512)));
  GC.collect("soak-corrupt-seed");
  ++Outcome.Collections;

  constexpr FaultSite MetadataSites[] = {
      FaultSite::MetadataHeaderFlip, FaultSite::MetadataFreeListSmash,
      FaultSite::MetadataPageMapClobber, FaultSite::MetadataAllocBitFlip};

  for (unsigned Round = 0; Round != Opts.Steps; ++Round) {
    // Churn: overwrite and drop slots so the heap shape keeps moving,
    // but always leave survivors for the fault to target.
    unsigned Ops = static_cast<unsigned>(Schedule.nextInRange(16, 64));
    for (unsigned I = 0; I != Ops; ++I) {
      size_t Slot = Schedule.pickIndex(Slots.size());
      if (Schedule.nextBool(0.3)) {
        Slots[Slot] = 0;
        continue;
      }
      void *Ptr = GC.allocate(Schedule.nextInRange(16, 2048));
      if (!Ptr)
        fail("corrupt-lane allocation failed in a 64 MB arena");
      Slots[Slot] = reinterpret_cast<uint64_t>(Ptr);
    }

    FaultSite Site = MetadataSites[Schedule.nextBelow(4)];
    fold(static_cast<uint64_t>(Site));
    uint64_t FiredBefore = FaultInjector::instance().stats(Site).Fired;
    GcRepairStats Before = GC.repairStats();

    FaultInjector::instance().arm(Site, 0, 1);
    CollectionStats Cycle = GC.collect("soak-corrupt");
    FaultInjector::instance().disarmAll();
    ++Outcome.Collections;

    if (FaultInjector::instance().stats(Site).Fired != FiredBefore + 1)
      fail("metadata corruption site never fired");
    ++Outcome.CorruptionsInjected;

    GcRepairStats After = GC.repairStats();
    if (After.CollectionsRetried != Before.CollectionsRetried + 1)
      fail("injected corruption went unreported: the cycle was neither "
           "abandoned nor retried");
    if (After.DegradedMode)
      fail("a repairable corruption degraded the collector");
    Outcome.CorruptRetries += After.CollectionsRetried -
                              Before.CollectionsRetried;
    Outcome.CorruptFindingsRepaired +=
        After.FindingsRepaired - Before.FindingsRepaired;
    Outcome.CorruptFreeListRebuilds +=
        After.FreeListRebuilds - Before.FreeListRebuilds;
    Outcome.CorruptPageMapRederivations +=
        After.PageMapRederivations - Before.PageMapRederivations;
    Outcome.CorruptCountersResynced +=
        After.CountersResynced - Before.CountersResynced;
    Outcome.CorruptQuarantined += (After.BlocksQuarantined -
                                   Before.BlocksQuarantined) +
                                  (After.PagesQuarantined -
                                   Before.PagesQuarantined);

    // Everything the ladder did is a pure function of the schedule:
    // fold it all, so a replay that detects, repairs, or retries even
    // one round differently is a digest mismatch.
    fold(Cycle.ObjectsLive);
    fold(After.FindingsRepaired - Before.FindingsRepaired);
    fold(After.FreeListRebuilds - Before.FreeListRebuilds);
    fold(After.PageMapRederivations - Before.PageMapRederivations);
    fold(After.CountersResynced - Before.CountersResynced);
    fold(After.BlocksQuarantined - Before.BlocksQuarantined);

    deepVerify(GC, "deep verification failed after a repaired corruption");
  }

  Outcome.CorruptSealTransitions = GC.repairStats().SealTransitions;
  GC.removeRootRange(SlotsRoot);
}

/// The --redirect lane: seeded churn through the process-global
/// malloc-redirection entry points with ~10% hostile calls mixed in
/// (foreign frees of real libc chunks and stack addresses, overflowing
/// callocs, zero-size and realloc edge cases), recorded to a trace and
/// replayed through ExplicitHeap.  Everything folded is a pure
/// function of the schedule: per-op draws, payload tags verified
/// before every free, the redirect stats DELTAS (the layer is
/// process-global and survives into a --replay-check second run, so
/// absolute counters would never reproduce), and the replay digest of
/// the recorded trace.
void SoakRun::runRedirectPhase() {
  if (!cgc_redirect_install())
    fail("--redirect: the redirect layer fell back to libc");
  cgc_collector *GC = cgc_redirect_collector();
  if (!GC)
    fail("--redirect: install succeeded but the collector handle is null");

  // Hostile frees must not reach the real libc free (passing it a
  // stack address aborts the process); warn mode raises the incident
  // and leaves the pointer untouched, which also lets the lane free
  // its decoy libc chunks itself afterwards.
  cgc_redirect_set_foreign_free_mode(CGC_FOREIGN_FREE_WARN);

  cgc_redirect_stats Before;
  cgc_redirect_get_stats(&Before);

  char TracePath[128];
  std::snprintf(TracePath, sizeof(TracePath),
                "soak_redirect_%" PRIu64 ".trace", Opts.Seed);
  if (!cgc_redirect_trace_start(TracePath))
    fail("--redirect: trace recording would not start");

  // The slot table is an explicit root of the redirect collector, so
  // survivors stay live across its own collection cycles no matter
  // where the compiler parks this frame.
  constexpr size_t NumSlots = 96;
  constexpr size_t StampMax = 24;
  void *Slots[NumSlots] = {};
  unsigned char Tags[NumSlots] = {};
  size_t Stamps[NumSlots] = {};
  unsigned RootHandle =
      cgc_add_roots(GC, &Slots[0], &Slots[NumSlots]);

  uint64_t ForeignFrees = 0, Overflows = 0;

  auto VerifySlot = [&](size_t Slot) {
    const unsigned char *P = static_cast<const unsigned char *>(Slots[Slot]);
    for (size_t I = 0; I != Stamps[Slot]; ++I)
      if (P[I] != Tags[Slot])
        fail("--redirect: payload stamp clobbered under redirect churn");
  };

  for (unsigned Round = 0; Round != Opts.Steps; ++Round) {
    ++Outcome.RedirectRounds;
    unsigned Ops = static_cast<unsigned>(Schedule.nextInRange(8, 32));
    for (unsigned I = 0; I != Ops; ++I) {
      if (Schedule.nextBelow(100) < 10) {
        // A hostile call: the kind folds, and every expectation about
        // how the hardened entry point absorbs it is checked.
        uint64_t Kind = Schedule.nextBelow(6);
        fold(0x4ed12ec7 ^ Kind);
        ++Outcome.RedirectHostileCalls;
        switch (Kind) {
        case 0: {
          // Foreign free of a real libc chunk: incident, untouched.
          void *Alien = std::malloc(64);
          if (Alien) {
            static_cast<unsigned char *>(Alien)[0] = 0xa5;
            cgc_redirect_free(Alien);
            if (static_cast<unsigned char *>(Alien)[0] != 0xa5)
              fail("--redirect: warn-mode foreign free touched the chunk");
            std::free(Alien);
            ++ForeignFrees;
          }
          break;
        }
        case 1: {
          // Foreign free of a stack address.
          unsigned char Local[32] = {};
          cgc_redirect_free(Local);
          ++ForeignFrees;
          break;
        }
        case 2: {
          // Overflowing calloc: refused with errno=ENOMEM, never a
          // short allocation.
          errno = 0;
          void *P = cgc_redirect_calloc(SIZE_MAX / 2, 16);
          if (P || errno != ENOMEM)
            fail("--redirect: overflowing calloc was not refused");
          ++Overflows;
          break;
        }
        case 3:
          cgc_redirect_free(nullptr);
          break;
        case 4: {
          // Zero-size malloc: a real, freeable pointer (glibc
          // contract).
          void *P = cgc_redirect_malloc(0);
          if (!P)
            fail("--redirect: malloc(0) returned NULL");
          cgc_redirect_free(P);
          break;
        }
        default: {
          // realloc(NULL, n) behaves as malloc; realloc(p, 0) frees
          // and returns NULL.
          void *P = cgc_redirect_realloc(nullptr, 48);
          if (!P)
            fail("--redirect: realloc(NULL, n) returned NULL");
          if (cgc_redirect_realloc(P, 0) != nullptr)
            fail("--redirect: realloc(p, 0) did not return NULL");
          break;
        }
        }
        continue;
      }

      size_t Slot = Schedule.pickIndex(NumSlots);
      if (!Slots[Slot]) {
        uint64_t Kind = Schedule.nextBelow(4);
        size_t Bytes = static_cast<size_t>(Schedule.nextInRange(32, 1024));
        unsigned char Tag =
            static_cast<unsigned char>(1 + Schedule.nextBelow(250));
        void *P = nullptr;
        switch (Kind) {
        case 0:
          P = cgc_redirect_malloc(Bytes);
          break;
        case 1:
          P = cgc_redirect_calloc(1, Bytes);
          if (P)
            for (size_t B = 0; B != StampMax; ++B)
              if (static_cast<unsigned char *>(P)[B] != 0)
                fail("--redirect: calloc returned dirty memory");
          break;
        case 2: {
          std::string Text(Bytes - 1, static_cast<char>(Tag));
          P = cgc_redirect_strdup(Text.c_str());
          break;
        }
        default:
          if (cgc_redirect_posix_memalign(&P, 64, Bytes) != 0)
            P = nullptr;
          else if (reinterpret_cast<uintptr_t>(P) % 64 != 0)
            fail("--redirect: posix_memalign ignored the alignment");
          break;
        }
        if (!P)
          fail("--redirect: allocation failed under the 1 GiB default");
        if (cgc_redirect_malloc_usable_size(P) < Bytes)
          fail("--redirect: usable size smaller than the request");
        std::memset(P, Tag, StampMax);
        Slots[Slot] = P;
        Tags[Slot] = Tag;
        Stamps[Slot] = StampMax;
        fold(Kind);
        fold(Bytes);
        fold(Tag);
        ++Outcome.RedirectAllocs;
      } else {
        VerifySlot(Slot);
        fold(Tags[Slot]);
        if (Schedule.nextBool(0.6)) {
          cgc_redirect_free(Slots[Slot]);
          Slots[Slot] = nullptr;
          ++Outcome.RedirectFrees;
        } else {
          size_t NewBytes =
              static_cast<size_t>(Schedule.nextInRange(64, 2048));
          void *P = cgc_redirect_realloc(Slots[Slot], NewBytes);
          if (!P)
            fail("--redirect: realloc failed under the 1 GiB default");
          // The stamp sits in the preserved prefix; it must survive
          // the move byte-for-byte.
          for (size_t B = 0; B != StampMax; ++B)
            if (static_cast<unsigned char *>(P)[B] != Tags[Slot])
              fail("--redirect: realloc lost the preserved prefix");
          std::memset(P, Tags[Slot], StampMax);
          Slots[Slot] = P;
          fold(NewBytes);
          ++Outcome.RedirectAllocs;
        }
      }
    }
  }

  // Drain every survivor through the verified-free path so the next
  // --replay-check run starts from an empty slot table.
  for (size_t Slot = 0; Slot != NumSlots; ++Slot) {
    if (!Slots[Slot])
      continue;
    VerifySlot(Slot);
    fold(Tags[Slot]);
    cgc_redirect_free(Slots[Slot]);
    Slots[Slot] = nullptr;
    ++Outcome.RedirectFrees;
  }
  cgc_remove_roots(GC, RootHandle);
  cgc_redirect_trace_stop();
  cgc_redirect_set_foreign_free_mode(CGC_FOREIGN_FREE_PASSTHROUGH);

  cgc_redirect_stats After;
  cgc_redirect_get_stats(&After);
  if (After.foreign_frees - Before.foreign_frees != ForeignFrees)
    fail("--redirect: a hostile free went uncounted as foreign");
  if (After.calloc_overflows - Before.calloc_overflows != Overflows)
    fail("--redirect: a calloc overflow went uncounted");
  Outcome.RedirectForeignFrees = ForeignFrees;
  Outcome.RedirectCallocOverflows = Overflows;
  Outcome.RedirectTraceRecords = After.trace_records - Before.trace_records;
  // Stats deltas are pure functions of the schedule; fold them all so
  // a replay that routes even one call differently mismatches.
  fold(After.gc_allocs - Before.gc_allocs);
  fold(After.gc_frees - Before.gc_frees);
  fold(After.foreign_frees - Before.foreign_frees);
  fold(After.foreign_reallocs - Before.foreign_reallocs);
  fold(After.calloc_overflows - Before.calloc_overflows);
  fold(After.failed_allocs - Before.failed_allocs);
  fold(After.trace_records - Before.trace_records);

  // Replay the recorded trace through ExplicitHeap and fold the
  // replay digest: the hostile churn must round-trip through the
  // trace format bit-identically, foreign frees and all.
  TraceReader Reader;
  if (!Reader.load(TracePath))
    fail("--redirect: the recorded trace would not load");
  struct LaneAllocator final : ReplayAllocator {
    baseline::ExplicitHeap Heap{256ull << 20,
                                baseline::ExplicitHeap::Policy::LifoFit};
    void *allocate(size_t Bytes) override { return Heap.malloc(Bytes); }
    void deallocate(void *Ptr) override { Heap.free(Ptr); }
  } Replayer;
  ReplayResult Replay = replayTrace(Reader, Replayer);
  if (Replay.Malformed)
    fail("--redirect: the recorded trace replayed as malformed");
  if (Replay.FailedAllocs != 0)
    fail("--redirect: ExplicitHeap refused a replayed allocation");
  Outcome.RedirectReplayEvents = Replay.Events;
  fold(Replay.Digest);
  fold(Replay.Events);
  fold(Replay.AllocEvents);
  fold(Replay.FreeEvents);
  std::remove(TracePath);
}

SoakOutcome SoakRun::run() {
  // The churn collector and the interpreter live for the whole soak;
  // queue/tree/Program T rounds use fresh throwaway collectors.
  Collector ChurnGC(soakConfig(/*WithSentinel=*/true, Opts.Guarded));
  std::vector<uint64_t> Slots(192, 0);
  RootId SlotsRoot = ChurnGC.addRootRange(
      Slots.data(), Slots.data() + Slots.size(), RootEncoding::Native64,
      RootSource::Client, "soak-churn-slots");

  Collector InterpGC(soakConfig(/*WithSentinel=*/true, Opts.Guarded));
  InterpGC.enableMachineStackScanning();
  interp::Interpreter Interp(InterpGC);
  Interp.evalString("(define build-list (lambda (n) (if (= n 0) '() "
                    "(cons n (build-list (- n 1))))))");

  constexpr unsigned VerifyEvery = 25;
  for (Step = 1; Step <= Opts.Steps; ++Step) {
    uint64_t Choice = Schedule.nextBelow(100);
    fold(Choice);
    if (Choice < 45)
      stepChurn(ChurnGC, Slots);
    else if (Choice < 70)
      stepInterpreter(Interp);
    else if (Choice < 85)
      stepQueue();
    else if (Choice < 95)
      stepTree();
    else if (Opts.Typed && Choice >= 98)
      stepTyped();
    else
      stepProgramT();

    if (Step % VerifyEvery == 0) {
      deepVerify(ChurnGC, "periodic deep verification failed (churn heap)");
      deepVerify(InterpGC,
                 "periodic deep verification failed (interpreter heap)");
    }
  }

  FaultInjector::instance().disarmAll();
  deepVerify(ChurnGC, "final deep verification failed (churn heap)");
  deepVerify(InterpGC, "final deep verification failed (interpreter heap)");
  checkSentinel(ChurnGC);
  // Reported guard stats are the churn heap's (checked last): the one
  // collector whose slots go through explicit frees and the quarantine.
  checkGuards(InterpGC);
  checkGuards(ChurnGC);
  ChurnGC.removeRootRange(SlotsRoot);
  if (Opts.MutatorThreads != 0)
    runMutatorPhase();
  if (Opts.Wedge)
    runWedgePhase();
  if (Opts.Corrupt)
    runCorruptPhase();
  if (Opts.Redirect)
    runRedirectPhase();
  return Outcome;
}

} // namespace

int main(int Argc, char **Argv) {
  SoakOptions Opts;
  Opts.Json = cgcbench::consumeJsonFlag(Argc, Argv);
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--seed") && I + 1 < Argc)
      Opts.Seed = std::strtoull(Argv[++I], nullptr, 10);
    else if (!std::strcmp(Argv[I], "--steps") && I + 1 < Argc)
      Opts.Steps = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--replay-check"))
      Opts.ReplayCheck = true;
    else if (!std::strcmp(Argv[I], "--guarded"))
      Opts.Guarded = true;
    else if (!std::strcmp(Argv[I], "--typed"))
      Opts.Typed = true;
    else if (!std::strcmp(Argv[I], "--mutator-threads") && I + 1 < Argc)
      Opts.MutatorThreads = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--wedge"))
      Opts.Wedge = true;
    else if (!std::strcmp(Argv[I], "--corrupt"))
      Opts.Corrupt = true;
    else if (!std::strcmp(Argv[I], "--redirect"))
      Opts.Redirect = true;
    else {
      std::fprintf(stderr,
                   "usage: soak_chaos [--seed S] [--steps N] "
                   "[--replay-check] [--guarded] [--typed] "
                   "[--mutator-threads N] [--wedge] [--corrupt] "
                   "[--redirect] [--json]\n");
      return 2;
    }
  }
  if (Opts.Corrupt && !FaultInjectionCompiled) {
    std::fprintf(stderr, "soak_chaos: --corrupt needs a build with "
                         "CGC_FAULT_INJECTION enabled\n");
    return 2;
  }
  if (Opts.Steps == 0)
    Opts.Steps = 300;

  cgcbench::printBanner(
      "soak chaos",
      "randomized workloads + fault injection + deep verification",
      "n/a (robustness extension; any failure replays from its seed)");

  // Crashes mid-soak should leave a post-mortem trail, not just a core.
  crash::install();

  std::printf("seed %" PRIu64 ", %u steps, fault hooks %s, guards %s\n",
              Opts.Seed, Opts.Steps,
              FaultInjectionCompiled ? "compiled in" : "compiled out",
              Opts.Guarded ? "on" : "off");

  SoakOutcome First = SoakRun(Opts).run();
  std::printf("digest %016" PRIx64 "\n", First.Digest);
  if (Opts.ReplayCheck) {
    SoakOutcome Second = SoakRun(Opts).run();
    if (Second.Digest != First.Digest) {
      std::printf("REPLAY MISMATCH: %016" PRIx64 " vs %016" PRIx64
                  " for seed %" PRIu64 "\n",
                  First.Digest, Second.Digest, Opts.Seed);
      return 1;
    }
    std::printf("replay check: second run reproduced the digest "
                "bit-for-bit\n");
  }

  std::printf("collections %" PRIu64 ", deep verifications %" PRIu64
              ", faults armed %" PRIu64 ", alloc failures tolerated %" PRIu64
              "\n",
              First.Collections, First.Verifications, First.FaultsArmed,
              First.AllocFailuresTolerated);
  if (Opts.MutatorThreads != 0)
    std::printf("mutators: %u threads, allocs %" PRIu64 ", frees %" PRIu64
                ", collects %" PRIu64 ", handshakes %" PRIu64 "\n",
                Opts.MutatorThreads, First.MutatorAllocs, First.MutatorFrees,
                First.MutatorCollections, First.MutatorHandshakes);
  if (Opts.Wedge)
    std::printf("wedge lane: %" PRIu64 " rounds, %" PRIu64
                " signal suspensions (every handshake climbed to the "
                "signal rung)\n",
                First.WedgeRounds, First.WedgeSuspensions);
  if (Opts.Corrupt)
    std::printf("corrupt lane: %" PRIu64 " corruptions injected, %" PRIu64
                " cycles retried, %" PRIu64 " findings repaired (%" PRIu64
                " free-list rebuilds, %" PRIu64 " page-map rederivations, "
                "%" PRIu64 " counter resyncs, %" PRIu64 " quarantined), "
                "%" PRIu64 " seal transitions, zero aborts\n",
                First.CorruptionsInjected, First.CorruptRetries,
                First.CorruptFindingsRepaired, First.CorruptFreeListRebuilds,
                First.CorruptPageMapRederivations,
                First.CorruptCountersResynced, First.CorruptQuarantined,
                First.CorruptSealTransitions);
  if (Opts.Redirect)
    std::printf("redirect lane: %" PRIu64 " rounds, %" PRIu64
                " allocs, %" PRIu64 " frees, %" PRIu64 " hostile calls "
                "(%" PRIu64 " foreign frees, %" PRIu64 " calloc "
                "overflows), %" PRIu64 " trace records replayed as "
                "%" PRIu64 " events\n",
                First.RedirectRounds, First.RedirectAllocs,
                First.RedirectFrees, First.RedirectHostileCalls,
                First.RedirectForeignFrees, First.RedirectCallocOverflows,
                First.RedirectTraceRecords, First.RedirectReplayEvents);
  if (Opts.Typed)
    std::printf("typed lane: %" PRIu64 " rounds (retained-subset and "
                "scan-mix checks all passed)\n",
                First.TypedRounds);
  std::printf("sentinel: storms %" PRIu64 ", stack-clear %" PRIu64
              ", blacklist-refresh %" PRIu64 ", tighten %" PRIu64
              ", incidents %" PRIu64 ", de-escalations %" PRIu64 "\n",
              First.Sentinel.StormsDetected, First.Sentinel.StackClearForces,
              First.Sentinel.BlacklistRefreshes,
              First.Sentinel.InteriorTightenings,
              First.Sentinel.IncidentsRaised, First.Sentinel.Deescalations);
  if (Opts.Guarded)
    std::printf("guards: explicit frees %" PRIu64
                ", churn-heap allocations %" PRIu64 ", frees %" PRIu64
                ", quarantine flushes %" PRIu64 ", violations 0\n",
                First.GuardedFrees, First.Guard.GuardedAllocations,
                First.Guard.GuardedFrees, First.Guard.QuarantineFlushes);

  if (Opts.Json) {
    char Digest[32];
    std::snprintf(Digest, sizeof(Digest), "%016" PRIx64, First.Digest);
    cgcbench::JsonReport Report(
        Opts.Redirect
            ? "soak chaos redirect"
            : Opts.Corrupt
                  ? "soak chaos corrupt"
                  : Opts.Wedge ? "soak chaos wedge"
                               : Opts.Guarded ? "soak chaos guarded"
                                              : Opts.Typed ? "soak chaos typed"
                                                           : "soak chaos");
    Report.set("seed", Opts.Seed);
    Report.set("steps", uint64_t(Opts.Steps));
    Report.set("digest", std::string(Digest));
    Report.set("fault_hooks_compiled", uint64_t(FaultInjectionCompiled));
    Report.set("collections", First.Collections);
    Report.set("deep_verifications", First.Verifications);
    Report.set("faults_armed", First.FaultsArmed);
    Report.set("alloc_failures_tolerated", First.AllocFailuresTolerated);
    Report.set("interp_evals", First.InterpEvals);
    Report.set("queue_rounds", First.QueueRounds);
    Report.set("tree_probes", First.TreeProbes);
    Report.set("program_t_runs", First.ProgramTRuns);
    Report.set("typed", uint64_t(Opts.Typed ? 1 : 0));
    if (Opts.Typed)
      Report.set("typed_rounds", First.TypedRounds);
    Report.set("sentinel_storms", First.Sentinel.StormsDetected);
    Report.set("sentinel_stack_clear_forces",
               First.Sentinel.StackClearForces);
    Report.set("sentinel_blacklist_refreshes",
               First.Sentinel.BlacklistRefreshes);
    Report.set("sentinel_interior_tightenings",
               First.Sentinel.InteriorTightenings);
    Report.set("sentinel_incidents", First.Sentinel.IncidentsRaised);
    Report.set("sentinel_deescalations", First.Sentinel.Deescalations);
    Report.set("guarded", uint64_t(Opts.Guarded ? 1 : 0));
    Report.set("wedge", uint64_t(Opts.Wedge ? 1 : 0));
    if (Opts.Wedge) {
      Report.set("wedge_rounds", First.WedgeRounds);
      Report.set("wedge_suspensions", First.WedgeSuspensions);
    }
    Report.set("corrupt", uint64_t(Opts.Corrupt ? 1 : 0));
    if (Opts.Corrupt) {
      Report.set("corruptions_injected", First.CorruptionsInjected);
      Report.set("corrupt_retries", First.CorruptRetries);
      Report.set("corrupt_findings_repaired", First.CorruptFindingsRepaired);
      Report.set("corrupt_free_list_rebuilds", First.CorruptFreeListRebuilds);
      Report.set("corrupt_page_map_rederivations",
                 First.CorruptPageMapRederivations);
      Report.set("corrupt_counters_resynced", First.CorruptCountersResynced);
      Report.set("corrupt_quarantined", First.CorruptQuarantined);
      Report.set("corrupt_seal_transitions", First.CorruptSealTransitions);
    }
    Report.set("redirect", uint64_t(Opts.Redirect ? 1 : 0));
    if (Opts.Redirect) {
      Report.set("redirect_rounds", First.RedirectRounds);
      Report.set("redirect_allocs", First.RedirectAllocs);
      Report.set("redirect_frees", First.RedirectFrees);
      Report.set("redirect_hostile_calls", First.RedirectHostileCalls);
      Report.set("redirect_foreign_frees", First.RedirectForeignFrees);
      Report.set("redirect_calloc_overflows", First.RedirectCallocOverflows);
      Report.set("redirect_trace_records", First.RedirectTraceRecords);
      Report.set("redirect_replay_events", First.RedirectReplayEvents);
    }
    Report.set("mutator_threads", uint64_t(Opts.MutatorThreads));
    if (Opts.MutatorThreads != 0) {
      Report.set("mutator_allocs", First.MutatorAllocs);
      Report.set("mutator_frees", First.MutatorFrees);
      Report.set("mutator_collections", First.MutatorCollections);
      Report.set("mutator_handshakes", First.MutatorHandshakes);
    }
    if (Opts.Guarded) {
      Report.set("guarded_explicit_frees", First.GuardedFrees);
      Report.set("guard_allocations", First.Guard.GuardedAllocations);
      Report.set("guard_frees", First.Guard.GuardedFrees);
      Report.set("guard_quarantine_flushes", First.Guard.QuarantineFlushes);
      Report.set("guard_slop_bytes", First.Guard.GuardSlopBytes);
    }
    std::string Path = Report.write();
    std::printf("json: %s\n", Path.empty() ? "(write failed)" : Path.c_str());
  }
  std::printf("SOAK PASS\n");
  return 0;
}
