//===- bench/BenchUtil.h - Shared experiment-harness helpers ---*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-table/per-figure benchmark binaries.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_BENCH_BENCHUTIL_H
#define CGC_BENCH_BENCHUTIL_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace cgcbench {

/// Prints the standard experiment banner: which paper artifact this
/// binary regenerates and what the paper reported.
void printBanner(const char *ExperimentId, const char *Description,
                 const char *PaperResult);

/// Formats "lo-hi%" range strings like the paper's Table 1 cells.
std::string percentRange(double Lo, double Hi);

/// Removes a "--json" flag from (Argc, Argv) if present, so positional
/// argument parsing stays index-based.  \returns true if it was there.
bool consumeJsonFlag(int &Argc, char **Argv);

/// Machine-readable benchmark output: scalar metadata plus a flat
/// "results" array of per-configuration rows, written to
/// BENCH_<id>.json in the working directory so CI and sweep scripts
/// can diff runs without scraping the human tables.
class JsonReport {
public:
  explicit JsonReport(std::string ExperimentId);

  void set(const char *Key, uint64_t Value);
  void set(const char *Key, double Value);
  void set(const char *Key, const std::string &Value);

  /// Starts a new row in the "results" array; subsequent rowSet calls
  /// fill it until the next beginRow.
  void beginRow();
  void rowSet(const char *Key, uint64_t Value);
  void rowSet(const char *Key, double Value);
  void rowSet(const char *Key, const std::string &Value);

  /// Writes BENCH_<experiment id>.json (spaces in the id become
  /// underscores).  \returns the path written, or an empty string on
  /// I/O failure.
  std::string write() const;

private:
  using Fields = std::vector<std::pair<std::string, std::string>>;
  std::string ExperimentId;
  Fields Scalars;   // Values are pre-encoded JSON.
  std::vector<Fields> Rows;
};

} // namespace cgcbench

#endif // CGC_BENCH_BENCHUTIL_H
