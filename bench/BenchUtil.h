//===- bench/BenchUtil.h - Shared experiment-harness helpers ---*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-table/per-figure benchmark binaries.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_BENCH_BENCHUTIL_H
#define CGC_BENCH_BENCHUTIL_H

#include <cstdio>
#include <string>

namespace cgcbench {

/// Prints the standard experiment banner: which paper artifact this
/// binary regenerates and what the paper reported.
void printBanner(const char *ExperimentId, const char *Description,
                 const char *PaperResult);

/// Formats "lo-hi%" range strings like the paper's Table 1 cells.
std::string percentRange(double Lo, double Hi);

} // namespace cgcbench

#endif // CGC_BENCH_BENCHUTIL_H
