//===- bench/bench_blacklist_ablation.cpp - §3 design choices -------------===//
//
// Ablates the blacklist design decisions the paper describes:
//
//   * Representation: flat page bitmap ("a bit array, indexed by page
//     numbers") versus the hashed variant for discontiguous heaps ("a
//     hash table with one bit per entry ... all of them are effectively
//     blacklisted.  Since collisions can easily be made rare, this does
//     not result in much lost precision") — swept over table sizes to
//     show where collisions start costing pages.
//   * Aging: "Blacklisted values that are no longer found by a later
//     collection may be removed from the list."  Without aging, stale
//     entries accumulate and pages are lost forever.
//   * Pointer-free exemption: "blacklisted pages can still be allocated
//     [for] small objects known to be pointer-free, and thus the loss
//     is usually zero."
//
// Workload: SPARC(static) pollution + Program T (reduced size), plus a
// churn phase where the polluting values change so aging has something
// to reclaim.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Collector.h"
#include "sim/PlatformProfile.h"
#include "structures/ProgramT.h"
#include "support/Statistics.h"

using namespace cgc;
using namespace cgc::sim;

namespace {

struct AblationResult {
  double Retained = 0;
  bool OutOfMemory = false;
  uint64_t BlacklistEntries = 0;
  uint64_t PagesLostToBlacklist = 0;
  uint64_t CommittedBytes = 0;
};

AblationResult runConfig(BlacklistMode Mode, unsigned HashedBitsLog2,
                         bool Aging, uint64_t Seed) {
  PlatformSpec Spec = specFor(Platform::SparcStatic, false);
  Spec.ProgramTLists = 100;
  Spec.CellsPerList = 6250; // 50 KB lists: a faster sweep.
  GcConfig Config = configFor(Spec, Mode);
  Config.BlacklistAging = Aging;
  Config.HashedBlacklistBitsLog2 = HashedBitsLog2;
  Collector GC(Config);
  SimEnvironment Env(GC, Spec, Seed);

  ProgramTConfig TConfig;
  TConfig.NumLists = Spec.ProgramTLists;
  TConfig.CellsPerList = Spec.CellsPerList;
  TConfig.AllocFrameSlots = Spec.AllocFrameSlots;
  TConfig.FrameWrittenFraction = Spec.FrameWrittenFraction;
  ProgramT T(GC, &Env.stack(), TConfig);
  ProgramTResult R = T.run();

  AblationResult Result;
  Result.Retained = R.fractionRetained();
  Result.OutOfMemory = R.OutOfMemory;
  Result.BlacklistEntries = GC.blacklistedPageCount();
  Result.PagesLostToBlacklist = GC.pageStats().BlacklistSkippedPages;
  Result.CommittedBytes = R.CommittedHeapBytes;
  return Result;
}

void representationSweep(cgcbench::JsonReport &Report) {
  cgcbench::printBanner(
      "Blacklist ablation A",
      "representation sweep: off / flat bitmap / hashed at several "
      "table sizes (SPARC-static pollution, 100x50KB Program T)",
      "flat and large-hash behave identically; small hash tables "
      "over-blacklist through collisions");

  TablePrinter Table({"representation", "aging", "retained",
                      "blacklist entries", "pages skipped",
                      "heap committed"});

  struct Row {
    const char *Name;
    BlacklistMode Mode;
    unsigned Bits;
    bool Aging;
  };
  const Row Rows[] = {
      {"off", BlacklistMode::Off, 16, true},
      {"flat bitmap", BlacklistMode::FlatBitmap, 16, true},
      {"hashed 2^18", BlacklistMode::Hashed, 18, true},
      {"hashed 2^14", BlacklistMode::Hashed, 14, true},
      {"hashed 2^10", BlacklistMode::Hashed, 10, true},
      {"hashed 2^6", BlacklistMode::Hashed, 6, true},
      {"flat, no aging", BlacklistMode::FlatBitmap, 16, false},
  };
  for (const Row &Config : Rows) {
    AblationResult R =
        runConfig(Config.Mode, Config.Bits, Config.Aging, 1);
    Table.addRow({Config.Name, Config.Aging ? "yes" : "no",
                  R.OutOfMemory ? "OOM (saturated)"
                                : TablePrinter::percent(R.Retained),
                  std::to_string(R.BlacklistEntries),
                  std::to_string(R.PagesLostToBlacklist),
                  TablePrinter::bytes(R.CommittedBytes)});
    Report.beginRow();
    Report.rowSet("section", std::string("representation"));
    Report.rowSet("representation", std::string(Config.Name));
    Report.rowSet("aging", uint64_t(Config.Aging ? 1 : 0));
    Report.rowSet("retained_fraction", R.Retained);
    Report.rowSet("out_of_memory", uint64_t(R.OutOfMemory ? 1 : 0));
    Report.rowSet("blacklist_entries", R.BlacklistEntries);
    Report.rowSet("pages_skipped", R.PagesLostToBlacklist);
    Report.rowSet("committed_bytes", R.CommittedBytes);
  }
  Table.print(stdout);
  std::printf("\n");
}

void agingRecovery(cgcbench::JsonReport &Report) {
  cgcbench::printBanner(
      "Blacklist ablation B",
      "aging recovery: pollution appears, is blacklisted, then is "
      "overwritten; entry counts across collections",
      "with aging, entries not re-seen are dropped; without, they "
      "accumulate");

  TablePrinter Table({"phase", "entries (aging)", "entries (no aging)"});
  uint64_t Entries[2][3];
  for (bool Aging : {true, false}) {
    GcConfig Config;
    Config.Placement = HeapPlacement::LowSbrk;
    Config.MaxHeapBytes = uint64_t(32) << 20;
    Config.BlacklistAging = Aging;
    Config.GcAtStartup = false;
    Config.MinHeapBytesBeforeGc = ~uint64_t(0);
    Collector GC(Config);

    // Phase 1: 2000 polluting words, pointing all over the arena.
    std::vector<uint64_t> Pollution(2000);
    Rng R(11);
    for (uint64_t &Word : Pollution)
      Word = GC.arena().base() + (1 << 20) + R.nextBelow(30 << 20);
    GC.addRootRange(Pollution.data(),
                    Pollution.data() + Pollution.size(),
                    RootEncoding::Native64, RootSource::StaticData,
                    "pollution");
    GC.collect("phase1");
    Entries[Aging][0] = GC.blacklistedPageCount();

    // Phase 2: half the pollution is overwritten with harmless values.
    for (size_t I = 0; I != Pollution.size() / 2; ++I)
      Pollution[I] = I;
    GC.collect("phase2");
    Entries[Aging][1] = GC.blacklistedPageCount();

    // Phase 3: all of it gone.
    for (uint64_t &Word : Pollution)
      Word = 7;
    GC.collect("phase3");
    Entries[Aging][2] = GC.blacklistedPageCount();
  }
  const char *Phases[] = {"all pollution live", "half overwritten",
                          "all overwritten"};
  for (int Phase = 0; Phase != 3; ++Phase) {
    Table.addRow({Phases[Phase], std::to_string(Entries[1][Phase]),
                  std::to_string(Entries[0][Phase])});
    Report.beginRow();
    Report.rowSet("section", std::string("aging"));
    Report.rowSet("phase", std::string(Phases[Phase]));
    Report.rowSet("entries_aging", Entries[1][Phase]);
    Report.rowSet("entries_no_aging", Entries[0][Phase]);
  }
  Table.print(stdout);
  std::printf("\n");
}

void pointerFreeExemption(cgcbench::JsonReport &Report) {
  cgcbench::printBanner(
      "Blacklist ablation C",
      "pointer-free objects may occupy blacklisted pages",
      "\"blacklisted pages can still be allocated, and thus the loss "
      "is usually zero\" (PCedar)");

  GcConfig Config;
  Config.Placement = HeapPlacement::LowSbrk;
  Config.MaxHeapBytes = uint64_t(32) << 20;
  Config.GcAtStartup = true;
  Config.MinHeapBytesBeforeGc = ~uint64_t(0);
  Collector GC(Config);
  // Blacklist a stretch of the young heap via pollution.
  std::vector<uint64_t> Pollution;
  Rng R(13);
  for (int I = 0; I != 200; ++I)
    Pollution.push_back(GC.arena().base() + (1 << 20) +
                        R.nextBelow(2 << 20));
  GC.addRootRange(Pollution.data(), Pollution.data() + Pollution.size(),
                  RootEncoding::Native64, RootSource::StaticData,
                  "pollution");

  // Fill 4 MiB with pointer-free objects; count how many landed on
  // blacklisted pages (reclaiming them), then the same with normal
  // objects (which must avoid them).
  uint64_t OnBlacklisted[2] = {0, 0};
  for (ObjectKind Kind : {ObjectKind::PointerFree, ObjectKind::Normal}) {
    for (int I = 0; I != 4096; ++I) {
      void *P = GC.allocate(512, Kind);
      CGC_CHECK(P, "allocation failed");
      PageIndex Page = pageOfOffset(GC.windowOffsetOf(P));
      if (GC.blacklist().isBlacklisted(Page))
        ++OnBlacklisted[Kind == ObjectKind::Normal];
    }
  }
  std::printf("pointer-free objects on blacklisted pages: %llu\n",
              (unsigned long long)OnBlacklisted[0]);
  std::printf("pointer-bearing objects on blacklisted pages: %llu\n",
              (unsigned long long)OnBlacklisted[1]);
  std::printf("blacklisted pages in arena: %llu\n",
              (unsigned long long)GC.blacklistedPageCount());
  Report.beginRow();
  Report.rowSet("section", std::string("pointer_free_exemption"));
  Report.rowSet("pointer_free_on_blacklisted", OnBlacklisted[0]);
  Report.rowSet("pointer_bearing_on_blacklisted", OnBlacklisted[1]);
  Report.rowSet("blacklisted_pages", GC.blacklistedPageCount());
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = cgcbench::consumeJsonFlag(Argc, Argv);
  cgcbench::JsonReport Report("blacklist_ablation");
  representationSweep(Report);
  agingRecovery(Report);
  pointerFreeExemption(Report);
  if (Json) {
    std::string Path = Report.write();
    std::printf("json: %s\n", Path.empty() ? "(write failed)" : Path.c_str());
  }
  return 0;
}
