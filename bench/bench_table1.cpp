//===- bench/bench_table1.cpp - Table 1: retention with/without blacklist ===//
//
// Regenerates the paper's Table 1: "Storage retention with and without
// blacklisting".  Program T allocates 200 circular lists of 100 KB each
// (100 lists on OS/2), drops every intentional reference, and reports
// the fraction of lists that fail to be collected, for each platform
// pollution profile, optimized and unoptimized, with blacklisting off
// and on.
//
// Paper's Table 1:
//   SPARC(static)   no   79-79.5%   0-.5%
//   SPARC(static)   yes  78-78.5%   .5-1%
//   SPARC(dynamic)  no   8-9.5%     .5%
//   SPARC(dynamic)  yes  9-11.5%    0-.5%
//   SGI(static)     no   1.5-8%     0%
//   SGI(static)     yes  1-4%       0%
//   OS/2(static)    no   28%        3%
//   OS/2(static)    yes  26%        1%
//   PCR             mixed 44.5-55%  1.5-3.5%
//
// Usage: bench_table1 [seeds-per-cell]   (default 3)
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Collector.h"
#include "sim/PlatformProfile.h"
#include "structures/ProgramT.h"
#include "support/Statistics.h"
#include <cstdlib>
#include <memory>

using namespace cgc;
using namespace cgc::sim;

namespace {

struct CellResult {
  RunningStat Fraction;
  RunningStat BlacklistedPages;
  RunningStat CommittedPages;
  /// Seeds whose Program T run exhausted the arena mid-construction
  /// (ProgramTResult::OutOfMemory).  Such a run built fewer lists than
  /// configured, so its retention fraction is not comparable — the
  /// count is surfaced instead of silently averaged away.
  unsigned OomRuns = 0;
};

CellResult runCell(Platform P, bool Optimized, BlacklistMode Mode,
                   unsigned Seeds) {
  CellResult Result;
  PlatformSpec Spec = specFor(P, Optimized);
  for (unsigned Seed = 1; Seed <= Seeds; ++Seed) {
    Collector GC(configFor(Spec, Mode));
    SimEnvironment Env(GC, Spec, Seed * 7919);
    Env.populateOtherLiveData();

    ProgramTConfig TConfig;
    TConfig.NumLists = Spec.ProgramTLists;
    TConfig.CellsPerList = Spec.CellsPerList;
    TConfig.AllocFrameSlots = Spec.AllocFrameSlots;
    TConfig.FrameWrittenFraction = Spec.FrameWrittenFraction;
    TConfig.FurtherExecSlots = Spec.FurtherExecSlots;
    ProgramT T(GC, &Env.stack(), TConfig);
    ProgramTResult R = T.run();

    Result.Fraction.addSample(R.fractionRetained());
    Result.BlacklistedPages.addSample(
        static_cast<double>(R.BlacklistedPages));
    Result.CommittedPages.addSample(
        static_cast<double>(R.CommittedHeapBytes / PageSize));
    if (R.OutOfMemory)
      ++Result.OomRuns;
  }
  return Result;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = cgcbench::consumeJsonFlag(Argc, Argv);
  unsigned Seeds = Argc > 1 ? std::atoi(Argv[1]) : 3;
  if (Seeds == 0)
    Seeds = 3;

  cgcbench::printBanner(
      "Table 1", "storage retention with and without blacklisting",
      "SPARC(static) 79%/0.5% ... OS/2 28%/3%, PCR 44.5-55%/1.5-3.5%");

  // The last column checks the paper's observation 6: "the additional
  // heap size needed to make up for blacklisted pages ... was
  // negligible" — committed heap with blacklisting minus without.
  cgcbench::JsonReport Report("table1");
  Report.set("seeds_per_cell", uint64_t(Seeds));
  TablePrinter Table({"Machine", "Optimized?", "No Blacklisting",
                      "Blacklisting", "BL pages", "extra heap (BL-on)",
                      "OOM runs"});

  for (Platform P : AllPlatforms) {
    for (bool Optimized : {false, true}) {
      CellResult Off = runCell(P, Optimized, BlacklistMode::Off, Seeds);
      CellResult On =
          runCell(P, Optimized, BlacklistMode::FlatBitmap, Seeds);
      unsigned OomRuns = Off.OomRuns + On.OomRuns;
      Table.addRow({platformName(P), Optimized ? "yes" : "no",
                    cgcbench::percentRange(Off.Fraction.minimum(),
                                           Off.Fraction.maximum()),
                    cgcbench::percentRange(On.Fraction.minimum(),
                                           On.Fraction.maximum()),
                    std::to_string(
                        static_cast<long>(On.BlacklistedPages.mean())),
                    TablePrinter::bytes(static_cast<uint64_t>(
                        std::max(0.0, On.CommittedPages.mean() -
                                          Off.CommittedPages.mean()) *
                        PageSize)),
                    OomRuns ? std::to_string(OomRuns) + " (!)" : "0"});
      Report.beginRow();
      Report.rowSet("machine", std::string(platformName(P)));
      Report.rowSet("optimized", uint64_t(Optimized));
      Report.rowSet("fraction_no_blacklist_min", Off.Fraction.minimum());
      Report.rowSet("fraction_no_blacklist_max", Off.Fraction.maximum());
      Report.rowSet("fraction_blacklist_min", On.Fraction.minimum());
      Report.rowSet("fraction_blacklist_max", On.Fraction.maximum());
      Report.rowSet("blacklisted_pages_mean", On.BlacklistedPages.mean());
      Report.rowSet("oom_runs_no_blacklist", uint64_t(Off.OomRuns));
      Report.rowSet("oom_runs_blacklist", uint64_t(On.OomRuns));
    }
  }
  Table.print(stdout);
  if (Json) {
    std::string Path = Report.write();
    std::printf("json: %s\n", Path.empty() ? "(write failed)" : Path.c_str());
  }
  std::printf("\n(%u seed(s) per cell; ranges are min-max across seeds, "
              "matching the paper's reporting)\n",
              Seeds);

  // The paper's Appendix-B analysis: where do the false references
  // come from?  One representative blacklisting run per platform, with
  // the final measurement collection's candidates broken down by
  // origin.
  std::printf("\nLeak-source breakdown (final collection, blacklisting "
              "on, seed 1):\n");
  TablePrinter Sources({"Machine", "near misses: static", "stack",
                        "registers", "heap", "marks from stack",
                        "marks from registers"});
  for (Platform P : AllPlatforms) {
    PlatformSpec Spec = specFor(P, false);
    Collector GC(configFor(Spec, BlacklistMode::FlatBitmap));
    SimEnvironment Env(GC, Spec, 7919);
    Env.populateOtherLiveData();
    ProgramTConfig TConfig;
    TConfig.NumLists = Spec.ProgramTLists;
    TConfig.CellsPerList = Spec.CellsPerList;
    TConfig.AllocFrameSlots = Spec.AllocFrameSlots;
    TConfig.FrameWrittenFraction = Spec.FrameWrittenFraction;
    TConfig.FurtherExecSlots = Spec.FurtherExecSlots;
    ProgramT T(GC, &Env.stack(), TConfig);
    (void)T.run();
    const CollectionStats &Last = GC.lastCollection();
    auto Origin = [&](ScanOrigin O) {
      return std::to_string(
          Last.NearMissesByOrigin[static_cast<unsigned>(O)]);
    };
    auto Marks = [&](ScanOrigin O) {
      return std::to_string(
          Last.MarksByOrigin[static_cast<unsigned>(O)]);
    };
    Sources.addRow({platformName(P), Origin(ScanOrigin::StaticData),
                    Origin(ScanOrigin::Stack),
                    Origin(ScanOrigin::Registers),
                    Origin(ScanOrigin::Heap),
                    Marks(ScanOrigin::Stack),
                    Marks(ScanOrigin::Registers)});
  }
  Sources.print(stdout);
  std::printf("\nwith blacklisting, static near misses are plentiful "
              "but harmless (their pages\nhold no pointer-bearing "
              "objects); residual retention enters through stack\nand "
              "register marks — the paper's observation 5.\n");
  return 0;
}
