//===- bench/bench_implicit_blacklist.cpp - §3 observation 4 --------------===//
//
// Regenerates the paper's observation 4 about what happens *without*
// blacklisting:
//
//   "Large numbers usually do not mean that collected programs exhibit
//    continuous storage leaks ... Usually false references will render
//    a section of memory unusable, and the program will then continue
//    to run out of a section of memory that has no false references to
//    it.  Thus some blacklisting occurs implicitly, after the fact.
//    The problem is that a false reference may decommission much more
//    than a page."
//
// Method: twenty persistent false references into the heap arena, then
// repeated rounds of build-lists / drop / collect.  Reported per round:
// excess live bytes (garbage pinned), showing
//   (a) without blacklisting, retention *stabilizes* instead of
//       leaking continuously — the implicit after-the-fact effect;
//   (b) each false reference decommissions a whole linked list
//       (~40 KB here), not just its 4 KB page;
//   (c) with blacklisting, the same false references cost nothing.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Collector.h"
#include "support/Random.h"
#include "support/Statistics.h"

using namespace cgc;

namespace {

constexpr unsigned FalseRefs = 20;
constexpr unsigned ListsPerRound = 50;
constexpr unsigned CellsPerList = 2500; // 16-byte cells: 40 KB lists.
constexpr unsigned Rounds = 10;

struct Cell {
  Cell *Next;
  uint64_t Pad;
};

std::vector<uint64_t> runMode(BlacklistMode Mode) {
  GcConfig Config;
  Config.Placement = HeapPlacement::LowSbrk;
  Config.MaxHeapBytes = uint64_t(64) << 20;
  Config.Blacklist = Mode;
  Config.GcAtStartup = true;
  Config.MinHeapBytesBeforeGc = ~uint64_t(0);
  Collector GC(Config);

  // Persistent false references: static-data values that happen to
  // fall in the young heap region.
  Rng R(41);
  std::vector<uint64_t> Pollution(FalseRefs);
  for (uint64_t &Word : Pollution)
    Word = GC.arena().base() + (1 << 20) + R.nextBelow(4 << 20);
  GC.addRootRange(Pollution.data(), Pollution.data() + Pollution.size(),
                  RootEncoding::Native64, RootSource::StaticData,
                  "persistent-false-refs");

  uint64_t Head = 0;
  GC.addRootRange(&Head, &Head + 1, RootEncoding::Native64,
                  RootSource::Client, "round-root");

  std::vector<uint64_t> ExcessPerRound;
  for (unsigned Round = 0; Round != Rounds; ++Round) {
    for (unsigned L = 0; L != ListsPerRound; ++L) {
      Head = 0;
      for (unsigned I = 0; I != CellsPerList; ++I) {
        auto *C = static_cast<Cell *>(GC.allocate(sizeof(Cell)));
        CGC_CHECK(C, "allocation failed");
        C->Next = reinterpret_cast<Cell *>(Head);
        Head = reinterpret_cast<uint64_t>(C);
      }
    }
    Head = 0; // Everything from this round is garbage now.
    CollectionStats Cycle = GC.collect("round-end");
    ExcessPerRound.push_back(Cycle.BytesLive);
  }
  return ExcessPerRound;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = cgcbench::consumeJsonFlag(Argc, Argv);
  cgcbench::printBanner(
      "§3 observation 4 (implicit blacklisting)",
      "garbage bytes pinned by 20 persistent false references, per "
      "build/drop round",
      "without blacklisting retention stabilizes ('the program runs "
      "out of a section with no false references'), but each reference "
      "decommissions a whole structure, not a page");

  std::vector<uint64_t> NoBl = runMode(BlacklistMode::Off);
  std::vector<uint64_t> Bl = runMode(BlacklistMode::FlatBitmap);

  cgcbench::JsonReport Report("implicit_blacklist");
  Report.set("false_refs", uint64_t(FalseRefs));
  Report.set("lists_per_round", uint64_t(ListsPerRound));
  Report.set("cells_per_list", uint64_t(CellsPerList));

  TablePrinter Table({"round", "pinned garbage (no blacklist)",
                      "pinned garbage (blacklist)"});
  for (unsigned Round = 0; Round != Rounds; ++Round) {
    Table.addRow({std::to_string(Round + 1),
                  TablePrinter::bytes(NoBl[Round]),
                  TablePrinter::bytes(Bl[Round])});
    Report.beginRow();
    Report.rowSet("round", uint64_t(Round + 1));
    Report.rowSet("pinned_bytes_no_blacklist", NoBl[Round]);
    Report.rowSet("pinned_bytes_blacklist", Bl[Round]);
  }
  Table.print(stdout);

  uint64_t Stable = NoBl.back();
  std::printf("\nsteady state without blacklisting: %s pinned = %.1f KiB "
              "per false reference\n(a 4 KiB page would cost %u KiB "
              "total) — \"a false reference may decommission\nmuch more "
              "than a page\".  With blacklisting: %s.\n",
              TablePrinter::bytes(Stable).c_str(),
              static_cast<double>(Stable) / FalseRefs / 1024.0,
              FalseRefs * 4, TablePrinter::bytes(Bl.back()).c_str());
  if (Json) {
    std::string Path = Report.write();
    std::printf("json: %s\n", Path.empty() ? "(write failed)" : Path.c_str());
  }
  return 0;
}
