//===- bench/bench_pause_times.cpp - Lazy vs eager sweep pauses -----------===//
//
// The paper situates itself among collectors that "utilize many of the
// same performance improvement techniques as conventional collectors"
// (generational [5, 12] and concurrent [8] variants that "greatly
// reduce client pause times").  Lazy sweeping is the technique of that
// family this reproduction implements: collections queue small blocks
// and allocations sweep them on demand, shortening the stop-the-world
// pause without changing total work.
//
// Workload: steady-state list churn (allocate, retain a window, drop),
// automatic collections; we record every collect() pause.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Collector.h"
#include "support/Statistics.h"
#include <chrono>

using namespace cgc;

namespace {

uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct PauseProfile {
  RunningStat PauseMicros;
  double ThroughputOpsPerUs = 0;
  uint64_t Collections = 0;
};

PauseProfile run(bool Lazy) {
  GcConfig Config;
  Config.MaxHeapBytes = uint64_t(128) << 20;
  Config.LazySweep = Lazy;
  Config.GcAtStartup = false;
  Config.MinHeapBytesBeforeGc = ~uint64_t(0); // Explicit collections.
  Collector GC(Config);

  struct Node {
    Node *Next;
    uint64_t Pad[3];
  };
  constexpr size_t WindowSlots = 30000;
  std::vector<uint64_t> Window(WindowSlots, 0);
  GC.addRootRange(Window.data(), Window.data() + Window.size(),
                  RootEncoding::Native64, RootSource::Client, "window");

  PauseProfile Profile;
  uint64_t Seed = 0x9e3779b9;
  uint64_t Start = nowNanos();
  constexpr uint64_t TotalOps = 1'500'000;
  for (uint64_t Op = 0; Op != TotalOps; ++Op) {
    Seed = Seed * 6364136223846793005ULL + 1442695040888963407ULL;
    size_t Slot = (Seed >> 33) % WindowSlots;
    auto *N = static_cast<Node *>(GC.allocate(sizeof(Node)));
    CGC_CHECK(N, "allocation failed");
    Window[Slot] = reinterpret_cast<uint64_t>(N);
    if (Op % 100000 == 99999) { // ~3 MiB between collections.
      uint64_t T0 = nowNanos();
      GC.collect("periodic");
      Profile.PauseMicros.addSample(
          static_cast<double>(nowNanos() - T0) / 1000.0);
      ++Profile.Collections;
    }
  }
  uint64_t Elapsed = nowNanos() - Start;
  Profile.ThroughputOpsPerUs = static_cast<double>(TotalOps) * 1000.0 /
                               static_cast<double>(Elapsed);
  return Profile;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = cgcbench::consumeJsonFlag(Argc, Argv);
  cgcbench::printBanner(
      "Pause times (lazy sweep ablation)",
      "collect() pause distribution: eager whole-heap sweep vs lazy "
      "allocation-time sweep",
      "same total work and throughput; the sweep's share leaves the "
      "pause");

  cgcbench::JsonReport Report("pause times");
  TablePrinter Table({"sweep mode", "collections", "mean pause (us)",
                      "max pause (us)", "throughput (ops/us)"});
  for (bool Lazy : {false, true}) {
    PauseProfile P = run(Lazy);
    char Mean[32], Max[32], Thr[32];
    std::snprintf(Mean, sizeof(Mean), "%.0f", P.PauseMicros.mean());
    std::snprintf(Max, sizeof(Max), "%.0f", P.PauseMicros.maximum());
    std::snprintf(Thr, sizeof(Thr), "%.1f", P.ThroughputOpsPerUs);
    Table.addRow({Lazy ? "lazy" : "eager",
                  std::to_string(P.Collections), Mean, Max, Thr});
    Report.beginRow();
    Report.rowSet("sweep_mode", std::string(Lazy ? "lazy" : "eager"));
    Report.rowSet("collections", P.Collections);
    Report.rowSet("mean_pause_us", P.PauseMicros.mean());
    Report.rowSet("max_pause_us", P.PauseMicros.maximum());
    Report.rowSet("throughput_ops_per_us", P.ThroughputOpsPerUs);
  }
  Table.print(stdout);
  if (Json) {
    std::string Path = Report.write();
    std::printf("json: %s\n", Path.empty() ? "(write failed)" : Path.c_str());
  }
  return 0;
}
