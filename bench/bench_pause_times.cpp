//===- bench/bench_pause_times.cpp - Lazy vs eager sweep pauses -----------===//
//
// The paper situates itself among collectors that "utilize many of the
// same performance improvement techniques as conventional collectors"
// (generational [5, 12] and concurrent [8] variants that "greatly
// reduce client pause times").  Lazy sweeping is the technique of that
// family this reproduction implements: collections queue small blocks
// and allocations sweep them on demand, shortening the stop-the-world
// pause without changing total work.
//
// Workload: steady-state list churn (allocate, retain a window, drop),
// automatic collections; we record every collect() pause.
//
// The threaded rows additionally measure time-to-stop — the handshake
// nanoseconds from raising the stop request to the last mutator
// parking — for a cooperative worker (polls safepoints) and for a
// worker that never polls, so every handshake must climb the watchdog
// ladder to the signal-suspension rung (GcConfig::HandshakeDeadlineMs).
//
// The sealed rows rerun the same workload with GcConfig::SealMetadata:
// GC metadata lives on dedicated pages kept PROT_READ between
// collections, so each cycle pays two mprotect transitions (unseal at
// entry, reseal at exit).  The "seal (us/gc)" column is that cost
// amortized per collection — the price of wild-write containment.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Collector.h"
#include "support/Statistics.h"
#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace cgc;

namespace {

uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct PauseProfile {
  RunningStat PauseMicros;
  double ThroughputOpsPerUs = 0;
  uint64_t Collections = 0;
  /// Per-cycle handshake time-to-stop; empty for single-mutator rows.
  std::vector<double> StopMicros;
  /// Metadata seal/unseal bookkeeping; zero for unsealed rows.
  bool Sealed = false;
  uint64_t SealTransitions = 0;
  double SealMicrosPerCollection = 0;
};

double percentile(std::vector<double> Samples, double Fraction) {
  if (Samples.empty())
    return 0.0;
  std::sort(Samples.begin(), Samples.end());
  size_t Index =
      static_cast<size_t>(Fraction * static_cast<double>(Samples.size() - 1) +
                          0.5);
  return Samples[std::min(Index, Samples.size() - 1)];
}

PauseProfile run(bool Lazy, bool Sealed) {
  GcConfig Config;
  Config.MaxHeapBytes = uint64_t(128) << 20;
  Config.LazySweep = Lazy;
  Config.SealMetadata = Sealed;
  Config.GcAtStartup = false;
  Config.MinHeapBytesBeforeGc = ~uint64_t(0); // Explicit collections.
  Collector GC(Config);

  struct Node {
    Node *Next;
    uint64_t Pad[3];
  };
  constexpr size_t WindowSlots = 30000;
  std::vector<uint64_t> Window(WindowSlots, 0);
  GC.addRootRange(Window.data(), Window.data() + Window.size(),
                  RootEncoding::Native64, RootSource::Client, "window");

  PauseProfile Profile;
  uint64_t Seed = 0x9e3779b9;
  uint64_t Start = nowNanos();
  constexpr uint64_t TotalOps = 1'500'000;
  for (uint64_t Op = 0; Op != TotalOps; ++Op) {
    Seed = Seed * 6364136223846793005ULL + 1442695040888963407ULL;
    size_t Slot = (Seed >> 33) % WindowSlots;
    auto *N = static_cast<Node *>(GC.allocate(sizeof(Node)));
    CGC_CHECK(N, "allocation failed");
    Window[Slot] = reinterpret_cast<uint64_t>(N);
    if (Op % 100000 == 99999) { // ~3 MiB between collections.
      uint64_t T0 = nowNanos();
      GC.collect("periodic");
      Profile.PauseMicros.addSample(
          static_cast<double>(nowNanos() - T0) / 1000.0);
      ++Profile.Collections;
    }
  }
  uint64_t Elapsed = nowNanos() - Start;
  Profile.ThroughputOpsPerUs = static_cast<double>(TotalOps) * 1000.0 /
                               static_cast<double>(Elapsed);
  const GcRepairStats &Repair = GC.repairStats();
  Profile.Sealed = Sealed;
  Profile.SealTransitions = Repair.SealTransitions;
  if (Profile.Collections != 0)
    Profile.SealMicrosPerCollection =
        static_cast<double>(Repair.SealNanos) / 1000.0 /
        static_cast<double>(Profile.Collections);
  return Profile;
}

/// One extra mutator thread alongside the collecting (main) thread.
/// Cooperative: the worker polls GC.safepoint() in its loop, so every
/// handshake stops it on the first rung.  Signal fallback: the worker
/// spins without ever polling, so every handshake must escalate to the
/// watchdog's preemptive signal suspension at deadline/2.
PauseProfile runThreaded(bool SignalFallback) {
  GcConfig Config;
  Config.MaxHeapBytes = uint64_t(128) << 20;
  Config.LazySweep = false;
  Config.GcAtStartup = false;
  Config.MinHeapBytesBeforeGc = ~uint64_t(0);
  // Coop: generous deadline the handshake never approaches (the armed
  // watchdog costs nothing on the cooperative path).  Signal: short
  // deadline so the signal rung (deadline/2) bounds time-to-stop.
  Config.HandshakeDeadlineMs = SignalFallback ? 20 : 2000;
  Collector GC(Config);

  std::atomic<bool> Done{false};
  std::atomic<uint64_t> WorkerOps{0};
  std::thread Worker([&] {
    GcThreadScope Scope(GC);
    if (SignalFallback) {
      while (!Done.load(std::memory_order_acquire))
        WorkerOps.fetch_add(1, std::memory_order_relaxed);
    } else {
      while (!Done.load(std::memory_order_acquire)) {
        GC.safepoint();
        WorkerOps.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  GcThreadScope MainScope(GC);
  struct Node {
    Node *Next;
    uint64_t Pad[3];
  };
  constexpr size_t WindowSlots = 10000;
  std::vector<uint64_t> Window(WindowSlots, 0);
  GC.addRootRange(Window.data(), Window.data() + Window.size(),
                  RootEncoding::Native64, RootSource::Client, "window");

  PauseProfile Profile;
  uint64_t Seed = 0x9e3779b9;
  uint64_t Start = nowNanos();
  // The signal row pays >= deadline/2 per handshake; keep its cycle
  // count small so the bench stays fast.
  const uint64_t TotalOps = SignalFallback ? 120'000 : 600'000;
  const uint64_t OpsPerCycle = SignalFallback ? 10'000 : 50'000;
  for (uint64_t Op = 0; Op != TotalOps; ++Op) {
    Seed = Seed * 6364136223846793005ULL + 1442695040888963407ULL;
    size_t Slot = (Seed >> 33) % WindowSlots;
    auto *N = static_cast<Node *>(GC.allocate(sizeof(Node)));
    CGC_CHECK(N, "allocation failed");
    Window[Slot] = reinterpret_cast<uint64_t>(N);
    if (Op % OpsPerCycle == OpsPerCycle - 1) {
      uint64_t T0 = nowNanos();
      CollectionStats Cycle = GC.collect("periodic");
      Profile.PauseMicros.addSample(
          static_cast<double>(nowNanos() - T0) / 1000.0);
      Profile.StopMicros.push_back(
          static_cast<double>(Cycle.HandshakeNanos) / 1000.0);
      ++Profile.Collections;
    }
  }
  uint64_t Elapsed = nowNanos() - Start;
  Profile.ThroughputOpsPerUs = static_cast<double>(TotalOps) * 1000.0 /
                               static_cast<double>(Elapsed);
  Done.store(true, std::memory_order_release);
  Worker.join();
  return Profile;
}

void addProfileRow(TablePrinter &Table, cgcbench::JsonReport &Report,
                   const char *Mode, const PauseProfile &P) {
  double StopP50 = percentile(P.StopMicros, 0.50);
  double StopP99 = percentile(P.StopMicros, 0.99);
  char Mean[32], Max[32], P50[32], P99[32], Thr[32], Seal[32];
  std::snprintf(Mean, sizeof(Mean), "%.0f", P.PauseMicros.mean());
  std::snprintf(Max, sizeof(Max), "%.0f", P.PauseMicros.maximum());
  std::snprintf(P50, sizeof(P50), "%.0f", StopP50);
  std::snprintf(P99, sizeof(P99), "%.0f", StopP99);
  std::snprintf(Thr, sizeof(Thr), "%.1f", P.ThroughputOpsPerUs);
  std::snprintf(Seal, sizeof(Seal), "%.1f", P.SealMicrosPerCollection);
  Table.addRow({Mode, std::to_string(P.Collections), Mean, Max, P50, P99,
                P.Sealed ? Seal : "-", Thr});
  Report.beginRow();
  Report.rowSet("sweep_mode", std::string(Mode));
  Report.rowSet("collections", P.Collections);
  Report.rowSet("mean_pause_us", P.PauseMicros.mean());
  Report.rowSet("max_pause_us", P.PauseMicros.maximum());
  Report.rowSet("stop_p50_us", StopP50);
  Report.rowSet("stop_p99_us", StopP99);
  Report.rowSet("sealed", uint64_t(P.Sealed ? 1 : 0));
  Report.rowSet("seal_transitions", P.SealTransitions);
  Report.rowSet("seal_us_per_collection", P.SealMicrosPerCollection);
  Report.rowSet("throughput_ops_per_us", P.ThroughputOpsPerUs);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = cgcbench::consumeJsonFlag(Argc, Argv);
  cgcbench::printBanner(
      "Pause times (lazy sweep ablation)",
      "collect() pause distribution: eager whole-heap sweep vs lazy "
      "allocation-time sweep, plus stop-the-world time-to-stop for "
      "cooperative and signal-fallback mutators",
      "same total work and throughput; the sweep's share leaves the "
      "pause, and the signal rows bound time-to-stop by the watchdog");

  cgcbench::JsonReport Report("pause times");
  TablePrinter Table({"sweep mode", "collections", "mean pause (us)",
                      "max pause (us)", "stop p50 (us)", "stop p99 (us)",
                      "seal (us/gc)", "throughput (ops/us)"});
  for (bool Lazy : {false, true})
    addProfileRow(Table, Report, Lazy ? "lazy" : "eager",
                  run(Lazy, /*Sealed=*/false));
  for (bool Lazy : {false, true})
    addProfileRow(Table, Report, Lazy ? "lazy sealed" : "eager sealed",
                  run(Lazy, /*Sealed=*/true));
  addProfileRow(Table, Report, "threaded coop", runThreaded(false));
  addProfileRow(Table, Report, "threaded signal", runThreaded(true));
  Table.print(stdout);
  if (Json) {
    std::string Path = Report.write();
    std::printf("json: %s\n", Path.empty() ? "(write failed)" : Path.c_str());
  }
  return 0;
}
