//===- bench/bench_trace_replay.cpp - Trace replay cost comparison -------===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
//
// Replays allocation traces — the three canned scenarios from
// redirect/TraceScenarios.h, or a file recorded by the LD_PRELOAD shim
// (tools/trace_record) — bit-identically through four allocator
// configurations:
//
//   explicit-lifo   ExplicitHeap, LIFO first-fit free lists
//   explicit-addr   ExplicitHeap, address-ordered free lists
//   gc-free         collector with explicit cgc_free on Free records
//   gc-collected    collector, frees ignored (HonorFrees=false): the
//                   trace's Free records only drop the root reference
//                   and reclamation is entirely the collector's job
//
// The replay digest (redirect/TraceReplay.h) folds opcodes, operands,
// and payload-stamp checksums — never addresses — so every allocator
// must produce the same digest for the same trace, and two runs of the
// same (trace, allocator) pair must match exactly.  --replay-check
// enforces both properties and exits nonzero on any mismatch.
//
// Usage:
//   bench_trace_replay [--trace FILE] [--scale N] [--seed N]
//                      [--replay-check] [--json]
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "baseline/ExplicitHeap.h"
#include "capi/cgc.h"
#include "redirect/TraceLog.h"
#include "redirect/TraceReplay.h"
#include "redirect/TraceScenarios.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace cgc;
using cgc::baseline::ExplicitHeap;

namespace {

constexpr uint64_t ExplicitCapacityBytes = 512ull << 20;
constexpr uint64_t GcMaxHeapBytes = 768ull << 20;

/// ExplicitHeap behind the ReplayAllocator interface; the two policy
/// variants reproduce the paper's malloc-style baselines.
class ExplicitReplayAllocator : public ReplayAllocator {
public:
  explicit ExplicitReplayAllocator(ExplicitHeap::Policy P)
      : Heap(ExplicitCapacityBytes, P) {}

  void *allocate(size_t Bytes) override { return Heap.malloc(Bytes); }
  void deallocate(void *Ptr) override { Heap.free(Ptr); }
  uint64_t footprintBytes() const override {
    return Heap.stats().FootprintBytes;
  }

private:
  ExplicitHeap Heap;
};

/// A fresh collector behind the ReplayAllocator interface.  In
/// explicit-free mode Free records call cgc_free, so the collector is
/// exercised as a drop-in malloc.  In collected mode deallocate is a
/// no-op: the replay harness drops the slot-table reference and the
/// object must be reclaimed by tracing — the slot table itself is
/// registered as a root range so live slots stay live.
class GcReplayAllocator : public ReplayAllocator {
public:
  explicit GcReplayAllocator(bool ExplicitFree) : ExplicitFree(ExplicitFree) {
    cgc_config Config;
    cgc_config_init(&Config);
    Config.max_heap_bytes = GcMaxHeapBytes;
    Gc = cgc_create(&Config);
    if (Gc)
      cgc_register_thread(Gc);
  }

  ~GcReplayAllocator() override {
    if (!Gc)
      return;
    if (RootHandle)
      cgc_remove_roots(Gc, RootHandle);
    cgc_unregister_thread(Gc);
    cgc_destroy(Gc);
  }

  bool valid() const { return Gc != nullptr; }

  void noteSlotTable(void **Table, uint64_t Slots) override {
    if (Gc && Slots > 0)
      RootHandle = cgc_add_roots(Gc, Table, Table + Slots);
  }

  void *allocate(size_t Bytes) override {
    return Gc ? cgc_malloc(Gc, Bytes) : nullptr;
  }

  void deallocate(void *Ptr) override {
    if (ExplicitFree && Gc)
      cgc_free(Gc, Ptr);
  }

  uint64_t footprintBytes() const override {
    return Gc ? cgc_heap_committed_bytes(Gc) : 0;
  }

  uint64_t collections() const override {
    return Gc ? cgc_collection_count(Gc) : 0;
  }

private:
  cgc_collector *Gc = nullptr;
  unsigned RootHandle = 0;
  bool ExplicitFree = false;
};

struct AllocatorConfig {
  const char *Name;
  bool HonorFrees;
};

constexpr AllocatorConfig Configs[] = {
    {"explicit-lifo", true},
    {"explicit-addr", true},
    {"gc-free", true},
    {"gc-collected", false},
};

std::unique_ptr<ReplayAllocator> makeAllocator(const char *Name) {
  if (std::strcmp(Name, "explicit-lifo") == 0)
    return std::make_unique<ExplicitReplayAllocator>(
        ExplicitHeap::Policy::LifoFit);
  if (std::strcmp(Name, "explicit-addr") == 0)
    return std::make_unique<ExplicitReplayAllocator>(
        ExplicitHeap::Policy::AddressOrderedFit);
  auto Gc = std::make_unique<GcReplayAllocator>(
      std::strcmp(Name, "gc-free") == 0);
  if (!Gc->valid()) {
    std::fprintf(stderr, "bench_trace_replay: cgc_create failed\n");
    return nullptr;
  }
  return Gc;
}

struct TraceSource {
  std::string Name;
  std::vector<unsigned char> Records; // empty => load from File
  std::string File;

  bool loadInto(TraceReader &Reader) const {
    if (!File.empty())
      return Reader.load(File.c_str());
    Reader.adopt(Records);
    return true;
  }
};

ReplayResult runOne(const TraceSource &Source, const AllocatorConfig &Config,
                    bool &Ok) {
  Ok = false;
  TraceReader Reader;
  if (!Source.loadInto(Reader)) {
    std::fprintf(stderr, "bench_trace_replay: cannot load trace '%s'\n",
                 Source.File.c_str());
    return ReplayResult();
  }
  auto Allocator = makeAllocator(Config.Name);
  if (!Allocator)
    return ReplayResult();
  ReplayOptions Options;
  Options.HonorFrees = Config.HonorFrees;
  ReplayResult Result = replayTrace(Reader, *Allocator, Options);
  if (Result.Malformed) {
    std::fprintf(stderr, "bench_trace_replay: trace '%s' is malformed\n",
                 Source.Name.c_str());
    return Result;
  }
  Ok = true;
  return Result;
}

void printRow(const TraceSource &Source, const AllocatorConfig &Config,
              const ReplayResult &R) {
  std::printf("  %-14s %-14s events %9" PRIu64 "  digest %016" PRIx64
              "  failed %4" PRIu64 "  leaked %6" PRIu64
              "  peak %7.1f MiB  gcs %4" PRIu64 "  %8.2f ms\n",
              Source.Name.c_str(), Config.Name, R.Events, R.Digest,
              R.FailedAllocs, R.LeakedSlots,
              static_cast<double>(R.PeakFootprintBytes) / (1024.0 * 1024.0),
              R.Collections, static_cast<double>(R.Nanos) / 1e6);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = cgcbench::consumeJsonFlag(Argc, Argv);
  bool ReplayCheck = false;
  const char *TraceFile = nullptr;
  unsigned Scale = 1;
  uint64_t Seed = 12345;

  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--replay-check") == 0) {
      ReplayCheck = true;
    } else if (std::strcmp(Argv[I], "--trace") == 0 && I + 1 < Argc) {
      TraceFile = Argv[++I];
    } else if (std::strcmp(Argv[I], "--scale") == 0 && I + 1 < Argc) {
      Scale = static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    } else if (std::strcmp(Argv[I], "--seed") == 0 && I + 1 < Argc) {
      Seed = std::strtoull(Argv[++I], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: bench_trace_replay [--trace FILE] [--scale N] "
                   "[--seed N] [--replay-check] [--json]\n");
      return 2;
    }
  }
  if (Scale == 0)
    Scale = 1;

  cgcbench::printBanner(
      "trace_replay",
      "Replays allocation traces (canned scenarios or recorded files) "
      "bit-identically through ExplicitHeap and the collector",
      "Paper section 4: collector cost claims must hold against real "
      "program allocation traffic, not synthetic uniform loads");

  std::vector<TraceSource> Sources;
  if (TraceFile) {
    TraceSource S;
    S.Name = "recorded";
    S.File = TraceFile;
    Sources.push_back(std::move(S));
  } else {
    for (TraceScenario Scenario :
         {TraceScenario::WebServer, TraceScenario::JsonDocuments,
          TraceScenario::CompilerAst}) {
      TraceSource S;
      S.Name = scenarioName(Scenario);
      S.Records = generateScenarioTrace(Scenario, Seed, Scale);
      Sources.push_back(std::move(S));
    }
  }

  cgcbench::JsonReport Report("trace_replay");
  Report.set("scale", static_cast<uint64_t>(Scale));
  Report.set("seed", Seed);
  Report.set("replay_check", static_cast<uint64_t>(ReplayCheck ? 1 : 0));

  int Failures = 0;
  for (const TraceSource &Source : Sources) {
    std::printf("trace '%s':\n", Source.Name.c_str());
    // Digest agreement is only required between configurations that
    // succeeded every allocation: a refused allocation folds into the
    // digest, and whether a fixed-capacity allocator refuses is
    // allocator-specific even though each refusal is deterministic.
    uint64_t CleanDigest = 0;
    bool HaveCleanDigest = false;
    for (const AllocatorConfig &Config : Configs) {
      bool Ok = false;
      ReplayResult R = runOne(Source, Config, Ok);
      if (!Ok) {
        ++Failures;
        continue;
      }
      printRow(Source, Config, R);

      if (ReplayCheck) {
        bool Ok2 = false;
        ReplayResult R2 = runOne(Source, Config, Ok2);
        if (!Ok2 || R2.Digest != R.Digest) {
          std::fprintf(stderr,
                       "REPLAY-CHECK FAIL: %s/%s digests differ across runs "
                       "(%016" PRIx64 " vs %016" PRIx64 ")\n",
                       Source.Name.c_str(), Config.Name, R.Digest,
                       Ok2 ? R2.Digest : 0);
          ++Failures;
        }
      }
      if (R.FailedAllocs == 0) {
        if (!HaveCleanDigest) {
          CleanDigest = R.Digest;
          HaveCleanDigest = true;
        } else if (R.Digest != CleanDigest) {
          std::fprintf(stderr,
                       "REPLAY-CHECK FAIL: %s/%s digest %016" PRIx64
                       " diverges from the trace's agreed digest %016" PRIx64
                       "\n",
                       Source.Name.c_str(), Config.Name, R.Digest,
                       CleanDigest);
          ++Failures;
        }
      }

      Report.beginRow();
      Report.rowSet("trace", Source.Name);
      Report.rowSet("allocator", std::string(Config.Name));
      Report.rowSet("events", R.Events);
      Report.rowSet("alloc_events", R.AllocEvents);
      Report.rowSet("free_events", R.FreeEvents);
      Report.rowSet("bytes_requested", R.BytesRequested);
      char DigestHex[32];
      std::snprintf(DigestHex, sizeof(DigestHex), "%016" PRIx64, R.Digest);
      Report.rowSet("digest", std::string(DigestHex));
      Report.rowSet("failed_allocs", R.FailedAllocs);
      Report.rowSet("leaked_slots", R.LeakedSlots);
      Report.rowSet("peak_footprint_bytes", R.PeakFootprintBytes);
      Report.rowSet("collections", R.Collections);
      Report.rowSet("nanos", R.Nanos);
    }
  }

  if (Json) {
    std::string Path = Report.write();
    if (!Path.empty())
      std::printf("wrote %s\n", Path.c_str());
  }

  if (Failures) {
    std::fprintf(stderr, "bench_trace_replay: %d failure(s)\n", Failures);
    return 1;
  }
  std::printf(ReplayCheck
                  ? "replay-check passed: digests bit-identical across runs "
                    "and allocators\n"
                  : "done\n");
  return 0;
}
