//===- bench/BenchUtil.cpp - Shared experiment-harness helpers ------------===//

#include "BenchUtil.h"
#include <cinttypes>
#include <cstring>

namespace cgcbench {

void printBanner(const char *ExperimentId, const char *Description,
                 const char *PaperResult) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s: %s\n", ExperimentId, Description);
  std::printf("paper reports: %s\n", PaperResult);
  std::printf("==============================================================="
              "=\n");
}

std::string percentRange(double Lo, double Hi) {
  char Buffer[64];
  if (Lo == Hi)
    std::snprintf(Buffer, sizeof(Buffer), "%.1f%%", Lo * 100.0);
  else
    std::snprintf(Buffer, sizeof(Buffer), "%.1f-%.1f%%", Lo * 100.0,
                  Hi * 100.0);
  return Buffer;
}

bool consumeJsonFlag(int &Argc, char **Argv) {
  bool Found = false;
  int Out = 1;
  for (int In = 1; In < Argc; ++In) {
    if (std::strcmp(Argv[In], "--json") == 0) {
      Found = true;
      continue;
    }
    Argv[Out++] = Argv[In];
  }
  Argc = Out;
  return Found;
}

namespace {

std::string quoted(const std::string &Value) {
  std::string Out = "\"";
  for (char C : Value) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  Out += '"';
  return Out;
}

std::string encode(uint64_t Value) {
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "%" PRIu64, Value);
  return Buffer;
}

std::string encode(double Value) {
  char Buffer[48];
  std::snprintf(Buffer, sizeof(Buffer), "%.6g", Value);
  return Buffer;
}

void printFields(
    std::FILE *Out,
    const std::vector<std::pair<std::string, std::string>> &Fields,
    const char *Indent, bool TrailingComma = false) {
  for (size_t I = 0; I != Fields.size(); ++I)
    std::fprintf(Out, "%s%s: %s%s\n", Indent,
                 quoted(Fields[I].first).c_str(), Fields[I].second.c_str(),
                 TrailingComma || I + 1 != Fields.size() ? "," : "");
}

} // namespace

JsonReport::JsonReport(std::string Id) : ExperimentId(std::move(Id)) {}

void JsonReport::set(const char *Key, uint64_t Value) {
  Scalars.emplace_back(Key, encode(Value));
}
void JsonReport::set(const char *Key, double Value) {
  Scalars.emplace_back(Key, encode(Value));
}
void JsonReport::set(const char *Key, const std::string &Value) {
  Scalars.emplace_back(Key, quoted(Value));
}

void JsonReport::beginRow() { Rows.emplace_back(); }

void JsonReport::rowSet(const char *Key, uint64_t Value) {
  Rows.back().emplace_back(Key, encode(Value));
}
void JsonReport::rowSet(const char *Key, double Value) {
  Rows.back().emplace_back(Key, encode(Value));
}
void JsonReport::rowSet(const char *Key, const std::string &Value) {
  Rows.back().emplace_back(Key, quoted(Value));
}

std::string JsonReport::write() const {
  std::string FileId = ExperimentId;
  for (char &C : FileId)
    if (C == ' ')
      C = '_';
  std::string Path = "BENCH_" + FileId + ".json";
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out)
    return "";
  std::fprintf(Out, "{\n  \"experiment\": %s,\n",
               quoted(ExperimentId).c_str());
  printFields(Out, Scalars, "  ", /*TrailingComma=*/true);
  std::fprintf(Out, "  \"results\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    std::fprintf(Out, "    {\n");
    printFields(Out, Rows[I], "      ");
    std::fprintf(Out, "    }%s\n", I + 1 != Rows.size() ? "," : "");
  }
  std::fprintf(Out, "  ]\n}\n");
  std::fclose(Out);
  return Path;
}

} // namespace cgcbench
