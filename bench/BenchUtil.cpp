//===- bench/BenchUtil.cpp - Shared experiment-harness helpers ------------===//

#include "BenchUtil.h"

namespace cgcbench {

void printBanner(const char *ExperimentId, const char *Description,
                 const char *PaperResult) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s: %s\n", ExperimentId, Description);
  std::printf("paper reports: %s\n", PaperResult);
  std::printf("==============================================================="
              "=\n");
}

std::string percentRange(double Lo, double Hi) {
  char Buffer[64];
  if (Lo == Hi)
    std::snprintf(Buffer, sizeof(Buffer), "%.1f%%", Lo * 100.0);
  else
    std::snprintf(Buffer, sizeof(Buffer), "%.1f-%.1f%%", Lo * 100.0,
                  Hi * 100.0);
  return Buffer;
}

} // namespace cgcbench
