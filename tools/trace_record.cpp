//===- tools/trace_record.cpp - Record and inspect allocation traces -----===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
//
// Front door for the trace pipeline (redirect/TraceLog.h):
//
//   trace_record --out t.trace -- ./prog args...
//       Runs an *unmodified* program under the LD_PRELOAD shim with
//       CGC_TRACE_FILE set, recording every interposed allocation
//       call to t.trace.  Replay with bench_trace_replay --trace.
//
//   trace_record --emit web --out t.trace [--seed N] [--scale N]
//       Writes one of the canned scenarios (web / json / ast) as a
//       trace file — the same streams bench_trace_replay generates
//       in-memory, useful for shipping fixed corpora to CI.
//
//   trace_record --dump t.trace
//       Decodes a trace and prints an opcode/size histogram plus the
//       first records, for eyeballing what a program actually did.
//
//===----------------------------------------------------------------------===//

#include "redirect/TraceLog.h"
#include "redirect/TraceScenarios.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/wait.h>
#include <unistd.h>

using namespace cgc;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  trace_record --out FILE -- prog [args...]   record prog under the\n"
      "                                              LD_PRELOAD shim\n"
      "  trace_record --emit web|json|ast --out FILE [--seed N] [--scale N]\n"
      "  trace_record --dump FILE\n");
  return 2;
}

/// Locates libcgc_preload.so next to this binary's build tree: the
/// tool lives in <build>/tools/, the shim in <build>/.
std::string findShim(const char *Argv0) {
  std::string Self(Argv0);
  size_t Slash = Self.rfind('/');
  std::string Dir = Slash == std::string::npos ? "." : Self.substr(0, Slash);
  for (const std::string &Candidate :
       {Dir + "/../libcgc_preload.so", Dir + "/libcgc_preload.so"}) {
    if (access(Candidate.c_str(), R_OK) == 0)
      return Candidate;
  }
  return "";
}

int runUnderShim(const char *Argv0, const char *Out, char **Cmd) {
  std::string Shim = findShim(Argv0);
  if (Shim.empty()) {
    const char *Env = getenv("CGC_PRELOAD_PATH");
    if (Env)
      Shim = Env;
  }
  if (Shim.empty()) {
    std::fprintf(stderr,
                 "trace_record: cannot find libcgc_preload.so (set "
                 "CGC_PRELOAD_PATH)\n");
    return 1;
  }

  pid_t Pid = fork();
  if (Pid < 0) {
    std::perror("trace_record: fork");
    return 1;
  }
  if (Pid == 0) {
    setenv("LD_PRELOAD", Shim.c_str(), 1);
    setenv("CGC_TRACE_FILE", Out, 1);
    execvp(Cmd[0], Cmd);
    std::perror("trace_record: exec");
    _exit(127);
  }
  int Status = 0;
  if (waitpid(Pid, &Status, 0) < 0) {
    std::perror("trace_record: waitpid");
    return 1;
  }
  if (WIFSIGNALED(Status)) {
    std::fprintf(stderr, "trace_record: child killed by signal %d\n",
                 WTERMSIG(Status));
    return 1;
  }
  int Exit = WIFEXITED(Status) ? WEXITSTATUS(Status) : 1;

  TraceReader Reader;
  if (!Reader.load(Out)) {
    std::fprintf(stderr, "trace_record: no trace written to %s\n", Out);
    return Exit ? Exit : 1;
  }
  uint64_t Records = 0;
  TraceRecord Rec;
  while (Reader.next(Rec))
    ++Records;
  std::printf("trace_record: %" PRIu64 " records -> %s (child exit %d)\n",
              Records, Out, Exit);
  return Exit;
}

const char *opName(TraceOp Op) {
  switch (Op) {
  case TraceOp::End:
    return "end";
  case TraceOp::Malloc:
    return "malloc";
  case TraceOp::Calloc:
    return "calloc";
  case TraceOp::Memalign:
    return "memalign";
  case TraceOp::Realloc:
    return "realloc";
  case TraceOp::Strdup:
    return "strdup";
  case TraceOp::Free:
    return "free";
  case TraceOp::ForeignFree:
    return "foreign-free";
  }
  return "?";
}

int dumpTrace(const char *Path) {
  TraceReader Reader;
  if (!Reader.load(Path)) {
    std::fprintf(stderr, "trace_record: cannot load %s\n", Path);
    return 1;
  }

  uint64_t Counts[8] = {};
  uint64_t Bytes = 0, Records = 0, Shown = 0;
  // Log2 size histogram over allocation requests.
  uint64_t SizeBuckets[33] = {};
  TraceRecord Rec;
  while (Reader.next(Rec)) {
    ++Records;
    if (static_cast<unsigned>(Rec.Op) < 8)
      ++Counts[static_cast<unsigned>(Rec.Op)];
    uint64_t Req = Rec.requestBytes();
    if (Req) {
      Bytes += Req;
      unsigned Bucket = 0;
      while ((1ull << Bucket) < Req && Bucket < 32)
        ++Bucket;
      ++SizeBuckets[Bucket];
    }
    if (Shown < 16) {
      std::printf("  [%6" PRIu64 "] %-12s id=%" PRIu64 " old=%" PRIu64
                  " a=%" PRIu64 " b=%" PRIu64 "\n",
                  Records - 1, opName(Rec.Op), Rec.Id, Rec.OldId, Rec.A,
                  Rec.B);
      ++Shown;
      if (Shown == 16)
        std::printf("  ...\n");
    }
  }
  if (Reader.malformed()) {
    std::fprintf(stderr, "trace_record: %s is malformed after %" PRIu64
                         " records\n",
                 Path, Records);
    return 1;
  }

  std::printf("%s: %" PRIu64 " records, %" PRIu64 " bytes requested\n", Path,
              Records, Bytes);
  for (unsigned Op = 0; Op != 8; ++Op)
    if (Counts[Op])
      std::printf("  %-12s %10" PRIu64 "\n", opName(static_cast<TraceOp>(Op)),
                  Counts[Op]);
  std::printf("  request size histogram (log2 buckets):\n");
  for (unsigned B = 0; B != 33; ++B)
    if (SizeBuckets[B])
      std::printf("    <= %10llu B  %10" PRIu64 "\n",
                  1ull << B, SizeBuckets[B]);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  const char *Out = nullptr;
  const char *Emit = nullptr;
  const char *Dump = nullptr;
  uint64_t Seed = 12345;
  unsigned Scale = 1;
  int CmdStart = -1;

  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--") == 0) {
      CmdStart = I + 1;
      break;
    }
    if (std::strcmp(Argv[I], "--out") == 0 && I + 1 < Argc)
      Out = Argv[++I];
    else if (std::strcmp(Argv[I], "--emit") == 0 && I + 1 < Argc)
      Emit = Argv[++I];
    else if (std::strcmp(Argv[I], "--dump") == 0 && I + 1 < Argc)
      Dump = Argv[++I];
    else if (std::strcmp(Argv[I], "--seed") == 0 && I + 1 < Argc)
      Seed = std::strtoull(Argv[++I], nullptr, 10);
    else if (std::strcmp(Argv[I], "--scale") == 0 && I + 1 < Argc)
      Scale = static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    else
      return usage();
  }

  if (Dump)
    return dumpTrace(Dump);

  if (Emit) {
    if (!Out)
      return usage();
    TraceScenario Scenario;
    if (!scenarioByName(Emit, Scenario)) {
      std::fprintf(stderr, "trace_record: unknown scenario '%s'\n", Emit);
      return 2;
    }
    if (!writeScenarioTrace(Scenario, Seed, Scale ? Scale : 1, Out)) {
      std::fprintf(stderr, "trace_record: cannot write %s\n", Out);
      return 1;
    }
    std::printf("trace_record: wrote scenario '%s' -> %s\n", Emit, Out);
    return 0;
  }

  if (CmdStart < 0 || CmdStart >= Argc || !Out)
    return usage();
  return runUnderShim(Argv[0], Out, Argv + CmdStart);
}
