//===- structures/Grid.cpp - Figures 3/4 grid styles ----------------------===//

#include "structures/Grid.h"
#include "support/Assert.h"

using namespace cgc;

EmbeddedGrid::EmbeddedGrid(Collector &GC, unsigned Rows, unsigned Cols)
    : GC(GC), Rows(Rows), Cols(Cols) {
  RowHeaders.assign(Rows, 0);
  ColHeaders.assign(Cols, 0);
  VertexOffsets.resize(size_t(Rows) * Cols);

  // Allocate all vertices, then wire links.
  std::vector<EmbeddedVertex *> Vertices(size_t(Rows) * Cols);
  for (unsigned R = 0; R != Rows; ++R) {
    for (unsigned C = 0; C != Cols; ++C) {
      auto *V = static_cast<EmbeddedVertex *>(
          GC.allocate(sizeof(EmbeddedVertex)));
      CGC_CHECK(V, "grid allocation failed");
      V->Payload = uint64_t(R) << 32 | C;
      Vertices[size_t(R) * Cols + C] = V;
      VertexOffsets[size_t(R) * Cols + C] = GC.windowOffsetOf(V);
    }
  }
  for (unsigned R = 0; R != Rows; ++R) {
    for (unsigned C = 0; C != Cols; ++C) {
      EmbeddedVertex *V = Vertices[size_t(R) * Cols + C];
      V->Right = C + 1 < Cols ? Vertices[size_t(R) * Cols + C + 1] : nullptr;
      V->Down = R + 1 < Rows ? Vertices[size_t(R + 1) * Cols + C] : nullptr;
    }
  }
  for (unsigned R = 0; R != Rows; ++R)
    RowHeaders[R] = reinterpret_cast<uint64_t>(Vertices[size_t(R) * Cols]);
  for (unsigned C = 0; C != Cols; ++C)
    ColHeaders[C] = reinterpret_cast<uint64_t>(Vertices[C]);

  RowRoot = GC.addRootRange(RowHeaders.data(),
                            RowHeaders.data() + RowHeaders.size(),
                            RootEncoding::Native64, RootSource::Client,
                            "embedded-grid-rows");
  ColRoot = GC.addRootRange(ColHeaders.data(),
                            ColHeaders.data() + ColHeaders.size(),
                            RootEncoding::Native64, RootSource::Client,
                            "embedded-grid-cols");
}

EmbeddedGrid::~EmbeddedGrid() {
  if (RowRoot)
    GC.removeRootRange(RowRoot);
  if (ColRoot)
    GC.removeRootRange(ColRoot);
}

void EmbeddedGrid::dropRoots() {
  for (uint64_t &H : RowHeaders)
    H = 0;
  for (uint64_t &H : ColHeaders)
    H = 0;
}

SeparateGrid::SeparateGrid(Collector &GC, unsigned Rows, unsigned Cols)
    : GC(GC), Rows(Rows), Cols(Cols) {
  RowHeaders.assign(Rows, 0);
  ColHeaders.assign(Cols, 0);
  VertexOffsets.resize(size_t(Rows) * Cols);
  RowCellOffsets.resize(size_t(Rows) * Cols);
  ColCellOffsets.resize(size_t(Rows) * Cols);

  // Payload vertices: pointer-free, so the collector never scans them
  // — this is the representation telling the collector more.
  std::vector<SeparateVertex *> Vertices(size_t(Rows) * Cols);
  for (unsigned R = 0; R != Rows; ++R) {
    for (unsigned C = 0; C != Cols; ++C) {
      auto *V = static_cast<SeparateVertex *>(
          GC.allocate(sizeof(SeparateVertex), ObjectKind::PointerFree));
      CGC_CHECK(V, "grid allocation failed");
      V->Payload[0] = uint64_t(R) << 32 | C;
      Vertices[size_t(R) * Cols + C] = V;
      VertexOffsets[size_t(R) * Cols + C] = GC.windowOffsetOf(V);
    }
  }

  // Row spines: cons chains over each row, right to left.
  for (unsigned R = 0; R != Rows; ++R) {
    GridConsCell *Next = nullptr;
    for (unsigned C = Cols; C-- > 0;) {
      auto *Cell = static_cast<GridConsCell *>(
          GC.allocate(sizeof(GridConsCell)));
      CGC_CHECK(Cell, "grid allocation failed");
      Cell->Car = Vertices[size_t(R) * Cols + C];
      Cell->Cdr = Next;
      Next = Cell;
      RowCellOffsets[size_t(R) * Cols + C] = GC.windowOffsetOf(Cell);
    }
    RowHeaders[R] = reinterpret_cast<uint64_t>(Next);
  }
  // Column spines, bottom to top.
  for (unsigned C = 0; C != Cols; ++C) {
    GridConsCell *Next = nullptr;
    for (unsigned R = Rows; R-- > 0;) {
      auto *Cell = static_cast<GridConsCell *>(
          GC.allocate(sizeof(GridConsCell)));
      CGC_CHECK(Cell, "grid allocation failed");
      Cell->Car = Vertices[size_t(R) * Cols + C];
      Cell->Cdr = Next;
      Next = Cell;
      ColCellOffsets[size_t(R) * Cols + C] = GC.windowOffsetOf(Cell);
    }
    ColHeaders[C] = reinterpret_cast<uint64_t>(Next);
  }

  RowRoot = GC.addRootRange(RowHeaders.data(),
                            RowHeaders.data() + RowHeaders.size(),
                            RootEncoding::Native64, RootSource::Client,
                            "separate-grid-rows");
  ColRoot = GC.addRootRange(ColHeaders.data(),
                            ColHeaders.data() + ColHeaders.size(),
                            RootEncoding::Native64, RootSource::Client,
                            "separate-grid-cols");
}

SeparateGrid::~SeparateGrid() {
  if (RowRoot)
    GC.removeRootRange(RowRoot);
  if (ColRoot)
    GC.removeRootRange(ColRoot);
}

void SeparateGrid::dropRoots() {
  for (uint64_t &H : RowHeaders)
    H = 0;
  for (uint64_t &H : ColHeaders)
    H = 0;
}
