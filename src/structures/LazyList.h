//===- structures/LazyList.h - Memoized stream (§4) ------------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lazy list (memoized stream): cells are produced on demand as the
/// consumer advances, and the program intends to hold only the current
/// suffix.  Like the §4 queue, the structure as a whole grows without
/// bound while only a bounded window is accessible — a false reference
/// to an old cell retains the entire chain from that cell to the
/// current position.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_STRUCTURES_LAZYLIST_H
#define CGC_STRUCTURES_LAZYLIST_H

#include "core/Collector.h"
#include "support/Assert.h"
#include <functional>

namespace cgc {

struct LazyCell {
  LazyCell *Next; ///< nullptr until forced.
  uint64_t Value;
};

/// A stream of Generator(0), Generator(1), ... with a cursor that the
/// consumer advances.  Only the cursor cell is rooted.
class LazyList {
public:
  LazyList(Collector &GC, std::function<uint64_t(uint64_t)> Generator)
      : GC(GC), Generator(std::move(Generator)) {
    Cursor = 0;
    CursorRoot =
        GC.addRootRange(&Cursor, &Cursor + 1, RootEncoding::Native64,
                        RootSource::Client, "lazy-list-cursor");
    setCursor(makeCell(NextIndex++));
  }

  ~LazyList() { GC.removeRootRange(CursorRoot); }

  uint64_t currentValue() const { return cursor()->Value; }

  /// Forces the next cell and moves the cursor to it; the previous cell
  /// becomes garbage (unless something else still points at it).
  void advance() {
    LazyCell *Current = cursor();
    if (!Current->Next)
      Current->Next = makeCell(NextIndex++);
    setCursor(Current->Next);
  }

  LazyCell *cursor() const {
    return reinterpret_cast<LazyCell *>(Cursor);
  }

  uint64_t cellsProduced() const { return NextIndex; }

private:
  LazyCell *makeCell(uint64_t Index) {
    auto *Cell = static_cast<LazyCell *>(GC.allocate(sizeof(LazyCell)));
    CGC_CHECK(Cell, "lazy list allocation failed");
    Cell->Next = nullptr;
    Cell->Value = Generator(Index);
    return Cell;
  }

  void setCursor(LazyCell *Cell) {
    Cursor = reinterpret_cast<uint64_t>(Cell);
  }

  Collector &GC;
  std::function<uint64_t(uint64_t)> Generator;
  uint64_t Cursor;
  RootId CursorRoot;
  uint64_t NextIndex = 0;
};

} // namespace cgc

#endif // CGC_STRUCTURES_LAZYLIST_H
