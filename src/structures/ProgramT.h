//===- structures/ProgramT.h - The paper's Appendix-A workload -*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Program T from the paper's Appendix A:
///
///   "The program T allocates 200 circular linked lists containing
///    100 Kbytes each. ... We ask what fraction of these linked lists
///    fail to be collected after the program drops the last intentional
///    reference to any of them."
///
/// We use the PCR variant's geometry — "each list consisted of 12500
/// 8-byte cells" — because an 8-byte cell (one next pointer) is the
/// natural 64-bit equivalent of the original 4-byte cell.
///
/// Measurement follows the paper: the list-head array a[] is a static
/// root; after building, a[i] is cleared, "further program execution"
/// is simulated (test(2)), collections run until no further list dies,
/// and the retained fraction is reported.  Both detection methods are
/// provided: direct mark-bit inspection, and the PCR finalization
/// methodology ("statistics were gathered using the PCR finalization
/// facility").
///
//===----------------------------------------------------------------------===//

#ifndef CGC_STRUCTURES_PROGRAMT_H
#define CGC_STRUCTURES_PROGRAMT_H

#include "core/Collector.h"
#include "sim/SimStack.h"
#include <vector>

namespace cgc {

/// An 8-byte circular-list cell: next pointer only.
struct TCell {
  TCell *Next;
};

struct ProgramTConfig {
  unsigned NumLists = 200;
  unsigned CellsPerList = 12500; // 100 KB of 8-byte cells.
  /// Count reclamation through finalizers (PCR methodology) in
  /// addition to mark-bit inspection.
  bool UseFinalizers = false;
  /// Build lists through simulated stack frames so construction leaves
  /// realistic stale pointers behind (lazy frame writes).
  size_t AllocFrameSlots = 40;
  double FrameWrittenFraction = 0.6;
  /// Size of the frame pushed by the paper's "simulate further program
  /// execution" phase (test(2)); smaller frames overwrite less of the
  /// dead test() frame, leaving more stale list heads scannable —
  /// "this is not terribly effective".
  size_t FurtherExecSlots = 12;
  /// Collections run after dropping references, before measuring
  /// ("manually invoked until no more lists were finalized ... once
  /// was usually enough").
  unsigned MeasureCollections = 3;
};

struct ProgramTResult {
  unsigned ListsBuilt = 0;
  unsigned ListsRetained = 0;
  unsigned ListsFinalized = 0;
  /// True if the heap arena was exhausted during construction (e.g. a
  /// saturated blacklist leaves no allocatable pages).
  bool OutOfMemory = false;
  double fractionRetained() const {
    return ListsBuilt == 0
               ? 0.0
               : static_cast<double>(ListsRetained) / ListsBuilt;
  }
  uint64_t BlacklistedPages = 0;
  uint64_t CommittedHeapBytes = 0;
  uint64_t LiveBytesAtEnd = 0;
  uint64_t CollectionsRun = 0;
};

/// Runs program T against \p GC, optionally threading its construction
/// through \p Stack (may be null for a stack-free build).
class ProgramT {
public:
  ProgramT(Collector &GC, sim::SimStack *Stack, const ProgramTConfig &Config);
  ~ProgramT();

  /// Builds the lists, drops references, collects, and measures.
  ProgramTResult run();

  /// Builds the lists and returns without dropping references; callers
  /// that need the intermediate state (tests) drive the phases
  /// themselves.
  void buildLists();
  void dropReferences();
  ProgramTResult measure();

  /// Representative cell (window offset) of list \p Index; valid after
  /// buildLists().
  WindowOffset representativeOf(unsigned Index) const {
    return Representatives[Index];
  }

private:
  TCell *allocCycle(unsigned Cells);

  Collector &GC;
  sim::SimStack *Stack;
  ProgramTConfig Config;
  /// The paper's global `char *a[N]`: a static root holding the heads.
  std::vector<uint64_t> Heads;
  RootId HeadsRoot = 0;
  /// Window offsets of one cell per list (plain data, not a root).
  std::vector<WindowOffset> Representatives;
  unsigned FinalizedCount = 0;
  bool Built = false;
  bool OutOfMemory = false;
};

} // namespace cgc

#endif // CGC_STRUCTURES_PROGRAMT_H
