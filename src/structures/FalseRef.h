//===- structures/FalseRef.h - Planted false references --------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately planted "false" reference: one root slot whose value
/// the experiment controls.  §4's experiments ask what a single
/// misidentified pointer retains in each data-structure style; this is
/// the knob that injects it.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_STRUCTURES_FALSEREF_H
#define CGC_STRUCTURES_FALSEREF_H

#include "core/Collector.h"

namespace cgc {

class PlantedRef {
public:
  explicit PlantedRef(Collector &GC) : GC(GC) {
    Slot = 0;
    Root = GC.addRootRange(&Slot, &Slot + 1, RootEncoding::Native64,
                           RootSource::Client, "planted-false-ref");
  }

  ~PlantedRef() { GC.removeRootRange(Root); }

  /// Points the false reference at window offset \p Offset.
  void setOffset(WindowOffset Offset) {
    Slot = reinterpret_cast<uint64_t>(GC.pointerAtOffset(Offset));
  }

  void setPointer(const void *Ptr) {
    Slot = reinterpret_cast<uint64_t>(Ptr);
  }

  void clear() { Slot = 0; }

private:
  Collector &GC;
  uint64_t Slot;
  RootId Root;
};

} // namespace cgc

#endif // CGC_STRUCTURES_FALSEREF_H
