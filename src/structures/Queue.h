//===- structures/Queue.h - Embedded-link queue (§4) -----------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §4 queue hazard: "Queues and lazy lists in particular have the
/// problem that they grow without bound, but typically only a section
/// of bounded length is accessible at any point.  A false reference can
/// result in retention of all the inaccessible elements, and thus
/// unbounded heap growth."
///
/// The fix the paper recommends: "Queues no longer grow without bound
/// if the queue link field is cleared when an item is removed.  Note
/// that clearing links is much safer than explicit deallocation."
/// GcQueue exposes both behaviors via ClearLinkOnDequeue.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_STRUCTURES_QUEUE_H
#define CGC_STRUCTURES_QUEUE_H

#include "core/Collector.h"
#include "support/Assert.h"

namespace cgc {

struct QueueNode {
  QueueNode *Next;
  uint64_t Value;
};

class GcQueue {
public:
  /// \param ClearLinkOnDequeue apply the paper's mildly defensive
  ///        style: null the link field when an item leaves the queue.
  GcQueue(Collector &GC, bool ClearLinkOnDequeue)
      : GC(GC), ClearLinks(ClearLinkOnDequeue) {
    // Head and tail live in a registered root pair so the queue itself
    // is always reachable.
    Anchors[0] = Anchors[1] = 0;
    AnchorsRoot =
        GC.addRootRange(Anchors, Anchors + 2, RootEncoding::Native64,
                        RootSource::Client, "gc-queue-anchors");
  }

  ~GcQueue() { GC.removeRootRange(AnchorsRoot); }

  void enqueue(uint64_t Value) {
    auto *Node = static_cast<QueueNode *>(GC.allocate(sizeof(QueueNode)));
    CGC_CHECK(Node, "queue allocation failed");
    Node->Next = nullptr;
    Node->Value = Value;
    if (tail())
      tail()->Next = Node;
    else
      setHead(Node);
    setTail(Node);
    ++Size;
  }

  /// \returns the front value; the queue must be nonempty.
  uint64_t dequeue() {
    QueueNode *Front = head();
    CGC_CHECK(Front, "dequeue from an empty queue");
    setHead(Front->Next);
    if (!head())
      setTail(nullptr);
    uint64_t Value = Front->Value;
    if (ClearLinks)
      Front->Next = nullptr; // The paper's defensive clearing.
    --Size;
    return Value;
  }

  size_t size() const { return Size; }
  bool empty() const { return Size == 0; }
  QueueNode *head() const {
    return reinterpret_cast<QueueNode *>(Anchors[0]);
  }
  QueueNode *tail() const {
    return reinterpret_cast<QueueNode *>(Anchors[1]);
  }

private:
  void setHead(QueueNode *Node) {
    Anchors[0] = reinterpret_cast<uint64_t>(Node);
  }
  void setTail(QueueNode *Node) {
    Anchors[1] = reinterpret_cast<uint64_t>(Node);
  }

  Collector &GC;
  bool ClearLinks;
  uint64_t Anchors[2];
  RootId AnchorsRoot;
  size_t Size = 0;
};

} // namespace cgc

#endif // CGC_STRUCTURES_QUEUE_H
