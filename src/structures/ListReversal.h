//===- structures/ListReversal.h - §3.1 stack-clearing workload *- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §3.1 experiment: "A simple program (compiled unoptimized on a
/// SPARC) that recursively and nondestructively reverses a 1000 element
/// list 1000 times resulted in a maximum of between 40,000 and 100,000
/// apparently accessible cons-cells at one point.  With a very cheap
/// stack-clearing algorithm added, we never saw the maximum exceed
/// 18,000. ... The optimized version ... never resulted in many more
/// than 2000 cons-cells reported as accessible" (tail recursion
/// compiled to a loop).
///
/// The reversal is the classic tail-recursive accumulate:
/// rev(l, acc) = l == nil ? acc : rev(cdr l, cons(car l, acc)).
/// In Recursive mode every call pushes a lazily-written SimStack frame,
/// so frames from the *previous* iteration leak stale cons pointers
/// into the unwritten slots of the current one; in Loop mode a single
/// fully-written frame is reused.  Collections run every ConsPerGc
/// allocations and the maximum live-object count is recorded.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_STRUCTURES_LISTREVERSAL_H
#define CGC_STRUCTURES_LISTREVERSAL_H

#include "core/Collector.h"
#include "sim/SimStack.h"

namespace cgc {

struct ConsCell {
  uint64_t Car;
  ConsCell *Cdr;
};

struct ReversalConfig {
  unsigned ListLength = 1000;
  unsigned Iterations = 1000;
  /// Recursive (unoptimized) vs loop (tail call optimized).
  bool Recursive = true;
  /// Frame shape for the recursive version.
  size_t FrameSlots = 12;
  double FrameWrittenFraction = 0.5;
  /// Collect every this-many cons allocations.
  unsigned ConsPerGc = 2000;
};

struct ReversalResult {
  /// Maximum "apparently accessible cons-cells" over all collections.
  uint64_t MaxApparentLiveCells = 0;
  /// Sum over collections of apparently-live cells (divide by
  /// CollectionsRun for the mean).  The excess over the true live set
  /// is garbage a generational collector would tenure: the paper's
  /// "ceiling on the effectiveness of generational collection".
  uint64_t TotalApparentLiveCells = 0;
  uint64_t FinalLiveCells = 0;
  uint64_t CollectionsRun = 0;
  uint64_t CellsAllocated = 0;

  double meanApparentLiveCells() const {
    return CollectionsRun == 0 ? 0.0
                               : static_cast<double>(
                                     TotalApparentLiveCells) /
                                     static_cast<double>(CollectionsRun);
  }
};

/// Runs the reversal workload on \p GC, threading recursion frames
/// through \p Stack (which must already be attached to \p GC).
ReversalResult runListReversal(Collector &GC, sim::SimStack &Stack,
                               const ReversalConfig &Config);

} // namespace cgc

#endif // CGC_STRUCTURES_LISTREVERSAL_H
