//===- structures/BinaryTree.h - Balanced tree (§4) ------------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §4's benign case: "The expected number of vertices retained as a
/// result of a false reference to a balanced binary tree with child
/// links is approximately equal to the height of the tree.  Thus a
/// large number of false references to such structures can usually be
/// tolerated."  (A false reference to a uniformly random vertex retains
/// that vertex's subtree, and the average subtree size over all
/// vertices equals the average vertex depth + 1 ≈ the height.)
///
//===----------------------------------------------------------------------===//

#ifndef CGC_STRUCTURES_BINARYTREE_H
#define CGC_STRUCTURES_BINARYTREE_H

#include "core/Collector.h"
#include <vector>

namespace cgc {

struct TreeNode {
  TreeNode *Left;
  TreeNode *Right;
  uint64_t Key;
};

/// A perfectly balanced tree with every node's window offset recorded,
/// so experiments can aim false references at uniformly random nodes.
class BalancedTree {
public:
  BalancedTree(Collector &GC, unsigned Height);
  ~BalancedTree();

  TreeNode *root() const { return reinterpret_cast<TreeNode *>(Anchor); }
  unsigned height() const { return Height; }
  size_t nodeCount() const { return NodeOffsets.size(); }

  /// Window offset of node \p Index (preorder).
  WindowOffset nodeOffset(size_t Index) const { return NodeOffsets[Index]; }

  /// Drops the intentional root reference.
  void dropRoot() { Anchor = 0; }

  /// Counts nodes reachable from \p Node by child links.
  static size_t countReachable(const TreeNode *Node);

private:
  TreeNode *build(unsigned Depth);

  Collector &GC;
  unsigned Height;
  uint64_t Anchor = 0;
  RootId AnchorRoot;
  std::vector<WindowOffset> NodeOffsets;
};

} // namespace cgc

#endif // CGC_STRUCTURES_BINARYTREE_H
