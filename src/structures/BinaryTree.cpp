//===- structures/BinaryTree.cpp - Balanced tree (§4) ---------------------===//

#include "structures/BinaryTree.h"
#include "support/Assert.h"

using namespace cgc;

BalancedTree::BalancedTree(Collector &GC, unsigned TreeHeight)
    : GC(GC), Height(TreeHeight) {
  AnchorRoot = GC.addRootRange(&Anchor, &Anchor + 1, RootEncoding::Native64,
                               RootSource::Client, "balanced-tree-root");
  Anchor = reinterpret_cast<uint64_t>(build(Height));
}

BalancedTree::~BalancedTree() { GC.removeRootRange(AnchorRoot); }

TreeNode *BalancedTree::build(unsigned Depth) {
  auto *Node = static_cast<TreeNode *>(GC.allocate(sizeof(TreeNode)));
  CGC_CHECK(Node, "tree allocation failed");
  Node->Key = NodeOffsets.size();
  NodeOffsets.push_back(GC.windowOffsetOf(Node));
  if (Depth == 0) {
    Node->Left = Node->Right = nullptr;
    return Node;
  }
  Node->Left = build(Depth - 1);
  Node->Right = build(Depth - 1);
  return Node;
}

size_t BalancedTree::countReachable(const TreeNode *Node) {
  if (!Node)
    return 0;
  return 1 + countReachable(Node->Left) + countReachable(Node->Right);
}
