//===- structures/Grid.h - Figures 3/4 grid styles -------------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §4 programming-style study: a rectangular array of
/// vertices linked both horizontally and vertically, accessed by
/// traversing a row or a column from its header.
///
///   * EmbeddedGrid (Figure 3): link fields live in the vertices
///     themselves.  "A false reference can be expected to result in the
///     retention of a large fraction of the structure" — from vertex
///     (i,j) the child links reach every vertex at (>=i, >=j).
///   * SeparateGrid (Figure 4): vertices carry no links; row and column
///     spines are separate lisp-style cons cells.  "At most a single
///     row or column is affected."
///
/// Both expose per-vertex/per-cell window offsets so the experiment can
/// aim a PlantedRef at a uniformly random internal address.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_STRUCTURES_GRID_H
#define CGC_STRUCTURES_GRID_H

#include "core/Collector.h"
#include <vector>

namespace cgc {

/// Figure 3: vertex with embedded right/down links.
struct EmbeddedVertex {
  EmbeddedVertex *Right;
  EmbeddedVertex *Down;
  uint64_t Payload;
};

class EmbeddedGrid {
public:
  EmbeddedGrid(Collector &GC, unsigned Rows, unsigned Cols);
  ~EmbeddedGrid();

  unsigned rows() const { return Rows; }
  unsigned cols() const { return Cols; }
  size_t vertexBytes() const { return sizeof(EmbeddedVertex); }

  WindowOffset vertexOffset(unsigned Row, unsigned Col) const {
    return VertexOffsets[size_t(Row) * Cols + Col];
  }

  /// Total bytes of the structure (vertices only; headers are roots).
  uint64_t totalBytes() const {
    return uint64_t(Rows) * Cols * sizeof(EmbeddedVertex);
  }

  /// Clears the row/column header roots.
  void dropRoots();

private:
  Collector &GC;
  unsigned Rows, Cols;
  std::vector<uint64_t> RowHeaders; ///< Root: first vertex of each row.
  std::vector<uint64_t> ColHeaders; ///< Root: first vertex of each col.
  RootId RowRoot = 0, ColRoot = 0;
  std::vector<WindowOffset> VertexOffsets;
};

/// Figure 4: lisp-style cons cell of the separate-spine representation.
struct GridConsCell {
  void *Car;         ///< The payload vertex.
  GridConsCell *Cdr; ///< Next cell of this row/column spine.
};

/// Payload vertex with no link fields; allocated pointer-free.
struct SeparateVertex {
  uint64_t Payload[2];
};

class SeparateGrid {
public:
  SeparateGrid(Collector &GC, unsigned Rows, unsigned Cols);
  ~SeparateGrid();

  unsigned rows() const { return Rows; }
  unsigned cols() const { return Cols; }

  WindowOffset vertexOffset(unsigned Row, unsigned Col) const {
    return VertexOffsets[size_t(Row) * Cols + Col];
  }
  /// Offset of the row-spine cell at (Row, Col).
  WindowOffset rowCellOffset(unsigned Row, unsigned Col) const {
    return RowCellOffsets[size_t(Row) * Cols + Col];
  }
  WindowOffset colCellOffset(unsigned Row, unsigned Col) const {
    return ColCellOffsets[size_t(Row) * Cols + Col];
  }

  uint64_t totalBytes() const {
    return uint64_t(Rows) * Cols *
           (sizeof(SeparateVertex) + 2 * sizeof(GridConsCell));
  }

  void dropRoots();

private:
  Collector &GC;
  unsigned Rows, Cols;
  std::vector<uint64_t> RowHeaders;
  std::vector<uint64_t> ColHeaders;
  RootId RowRoot = 0, ColRoot = 0;
  std::vector<WindowOffset> VertexOffsets;
  std::vector<WindowOffset> RowCellOffsets;
  std::vector<WindowOffset> ColCellOffsets;
};

} // namespace cgc

#endif // CGC_STRUCTURES_GRID_H
