//===- structures/ProgramT.cpp - The paper's Appendix-A workload ----------===//

#include "structures/ProgramT.h"

using namespace cgc;

ProgramT::ProgramT(Collector &GC, sim::SimStack *Stack,
                   const ProgramTConfig &Config)
    : GC(GC), Stack(Stack), Config(Config) {
  Heads.assign(Config.NumLists, 0);
  // `char *a[N]` is program data: scanned as a static root.
  HeadsRoot = GC.addRootRange(Heads.data(), Heads.data() + Heads.size(),
                              RootEncoding::Native64,
                              RootSource::StaticData, "program-t-heads");
}

ProgramT::~ProgramT() { GC.removeRootRange(HeadsRoot); }

TCell *ProgramT::allocCycle(unsigned Cells) {
  // Mirror of the paper's alloc_cycle(): builds a circular list while
  // spilling intermediate cell pointers into a lazily-written stack
  // frame, the way compiled C would.
  size_t FrameBase = 0;
  if (Stack)
    FrameBase = Stack->pushFrame(Config.AllocFrameSlots,
                                 Config.FrameWrittenFraction);

  TCell *First = static_cast<TCell *>(GC.allocate(sizeof(TCell)));
  if (!First) {
    OutOfMemory = true;
    if (Stack)
      Stack->popFrame();
    return nullptr;
  }
  TCell *Current = First;
  if (Stack) {
    Stack->writePointer(FrameBase + 0, First);
    Stack->writePointer(FrameBase + 1, Current);
  }
  // Spill the running pointer into rotating "register save" slots so
  // deep frame slots end up holding real cell addresses, the way an
  // unoptimized compiler spills a loop induction pointer.
  unsigned SpillPeriod = std::max(
      1u, Cells / std::max<unsigned>(
              1, static_cast<unsigned>(Config.AllocFrameSlots)));
  for (unsigned I = 1; I != Cells; ++I) {
    TCell *Next = static_cast<TCell *>(GC.allocate(sizeof(TCell)));
    if (!Next) {
      OutOfMemory = true;
      break;
    }
    Current->Next = Next;
    Current = Next;
    if (Stack && I % SpillPeriod == 0 && Config.AllocFrameSlots > 4) {
      size_t Slot = 4 + (I / SpillPeriod) % (Config.AllocFrameSlots - 4);
      Stack->writePointer(FrameBase + Slot, Current);
    }
  }
  Current->Next = First; // Close the cycle.

  if (Stack)
    Stack->popFrame();
  return First;
}

void ProgramT::buildLists() {
  CGC_CHECK(!Built, "program T already built");
  Built = true;
  Representatives.clear();
  Representatives.reserve(Config.NumLists);

  size_t TestFrame = 0;
  if (Stack)
    TestFrame = Stack->pushFrame(12, 1.0); // test()'s own frame.

  for (unsigned I = 0; I != Config.NumLists; ++I) {
    TCell *Head = allocCycle(Config.CellsPerList);
    if (!Head)
      break;
    Heads[I] = reinterpret_cast<uint64_t>(Head);
    // Representative: a cell a few links in, so the low-address slots a
    // post-drop allocation might reuse never collide with one.
    TCell *Rep = Head;
    for (int Step = 0; Step != 8 && Rep->Next != Head; ++Step)
      Rep = Rep->Next;
    Representatives.push_back(GC.windowOffsetOf(Rep));
    if (Stack)
      Stack->writePointer(TestFrame + (I % 12), Head);
    if (Config.UseFinalizers)
      GC.registerFinalizer(Head, [this](void *) { ++FinalizedCount; });
  }

  if (Stack)
    Stack->popFrame();
}

void ProgramT::dropReferences() {
  // The paper's second loop in test(): for (i = 0; i < N; i++) a[i] = 0;
  for (uint64_t &Head : Heads)
    Head = 0;
}

ProgramTResult ProgramT::measure() {
  ProgramTResult Result;
  Result.ListsBuilt = static_cast<unsigned>(Representatives.size());

  // "Force recognition of interior pointers ... GC_gcollect()" and then
  // "Simulate further program execution to clear stack garbage.  This
  // is not terribly effective." — the paper's test(2) call.
  GC.collect("program-t-initial");
  ++Result.CollectionsRun;
  if (Stack) {
    size_t Frame = Stack->pushFrame(Config.FurtherExecSlots, 1.0);
    TCell *Tiny = allocCycle(2);
    if (Tiny)
      Stack->writePointer(Frame + 0, Tiny);
    Stack->popFrame();
  }

  for (unsigned I = 0; I != Config.MeasureCollections; ++I) {
    GC.collect("program-t-measure");
    ++Result.CollectionsRun;
    if (Config.UseFinalizers)
      GC.runFinalizers();
  }

  unsigned Retained = 0;
  for (WindowOffset Rep : Representatives)
    if (GC.wasMarkedLive(GC.pointerAtOffset(Rep)))
      ++Retained;
  Result.ListsRetained = Retained;
  Result.ListsFinalized = FinalizedCount;
  Result.OutOfMemory = OutOfMemory;
  Result.BlacklistedPages = GC.blacklistedPageCount();
  Result.CommittedHeapBytes = GC.committedHeapBytes();
  Result.LiveBytesAtEnd = GC.lastCollection().BytesLive;
  return Result;
}

ProgramTResult ProgramT::run() {
  buildLists();
  dropReferences();
  return measure();
}
