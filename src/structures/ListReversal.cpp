//===- structures/ListReversal.cpp - §3.1 stack-clearing workload ---------===//

#include "structures/ListReversal.h"

using namespace cgc;
using namespace cgc::sim;

namespace {

/// Drives allocation, periodic collection, and the live-cell maximum.
class ReversalDriver {
public:
  ReversalDriver(Collector &GC, SimStack &Stack,
                 const ReversalConfig &Config)
      : GC(GC), Stack(Stack), Config(Config) {}

  ConsCell *cons(uint64_t Car, ConsCell *Cdr) {
    auto *Cell = static_cast<ConsCell *>(GC.allocate(sizeof(ConsCell)));
    CGC_CHECK(Cell, "cons allocation failed");
    Cell->Car = Car;
    Cell->Cdr = Cdr;
    ++Result.CellsAllocated;
    if (Result.CellsAllocated % Config.ConsPerGc == 0)
      collectAndRecord();
    return Cell;
  }

  void collectAndRecord() {
    CollectionStats Cycle = GC.collect("reversal-periodic");
    ++Result.CollectionsRun;
    Result.MaxApparentLiveCells =
        std::max(Result.MaxApparentLiveCells, Cycle.ObjectsLive);
    Result.TotalApparentLiveCells += Cycle.ObjectsLive;
    Result.FinalLiveCells = Cycle.ObjectsLive;
  }

  /// Recursive rev(l, acc) with an unoptimized-SPARC frame per call:
  /// locals at fixed slots plus a register-window save area whose slots
  /// are flushed *lazily* — each call deposits a copy of its live
  /// pointer into a save slot that varies by iteration, so the other
  /// save slots still hold acc-chain pointers from several previous
  /// iterations.  This is the mechanism behind the paper's 40,000 to
  /// 100,000 apparently-live cells: dead register windows acting as
  /// snapshots of earlier iterations.
  ConsCell *revRecursive(ConsCell *List, ConsCell *Acc, unsigned Iter,
                         unsigned Depth) {
    // No write on push: slots hold whatever the same depth's frame left
    // there last time, until this call writes them.
    size_t Frame = Stack.pushFrame(Config.FrameSlots, 0.0);
    Stack.writePointer(Frame + 0, List);
    Stack.writePointer(Frame + 1, Acc);
    ConsCell *Result;
    if (!List) {
      Result = Acc;
    } else {
      ConsCell *NewAcc = cons(List->Car, Acc); // GC may run here: slot 2
                                               // still holds last
                                               // iteration's NewAcc.
      Stack.writePointer(Frame + 2, NewAcc);
      if (Config.FrameSlots > 4) {
        size_t SaveSlots = Config.FrameSlots - 3;
        size_t SaveSlot =
            3 + (uint64_t(Iter) * 2654435761u + Depth) % SaveSlots;
        Stack.writePointer(Frame + SaveSlot, NewAcc);
      }
      Result = revRecursive(List->Cdr, NewAcc, Iter, Depth + 1);
    }
    Stack.popFrame();
    return Result;
  }

  /// Loop rev: one reused, fully written frame (the optimized build).
  ConsCell *revLoop(ConsCell *List) {
    size_t Frame = Stack.pushFrame(4, 1.0);
    ConsCell *Acc = nullptr;
    for (ConsCell *L = List; L; L = L->Cdr) {
      Acc = cons(L->Car, Acc);
      Stack.writePointer(Frame + 0, L);
      Stack.writePointer(Frame + 1, Acc);
    }
    Stack.popFrame();
    return Acc;
  }

  ReversalResult run() {
    // The outer function's frame holds the two intentional references:
    // the original list and the most recent reversal.
    size_t MainFrame = Stack.pushFrame(4, 1.0);

    ConsCell *List = nullptr;
    for (unsigned I = Config.ListLength; I-- > 0;)
      List = cons(I, List);
    Stack.writePointer(MainFrame + 0, List);

    for (unsigned Iter = 0; Iter != Config.Iterations; ++Iter) {
      ConsCell *Reversed = Config.Recursive
                               ? revRecursive(List, nullptr, Iter, 0)
                               : revLoop(List);
      // The benchmark discards each result; it becomes garbage as soon
      // as the reversal returns.
      (void)Reversed;
    }

    Stack.popFrame();
    collectAndRecord();
    return Result;
  }

private:
  Collector &GC;
  SimStack &Stack;
  ReversalConfig Config;
  ReversalResult Result;
};

} // namespace

ReversalResult cgc::runListReversal(Collector &GC, SimStack &Stack,
                                    const ReversalConfig &Config) {
  ReversalDriver Driver(GC, Stack, Config);
  return Driver.run();
}
