//===- roots/RootSet.h - Labeled root ranges -------------------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The set of memory ranges the collector scans for roots: static data,
/// mutator stacks, register files, and explicitly registered client
/// ranges.  Each range carries an encoding:
///
///   * Native64 — the range holds real machine pointers (the examples'
///     machine stack, heap-external client structures).
///   * Window32LE / Window32BE — the range holds 32-bit offsets into
///     the collector's window.  This is how the simulated 1993 root
///     segments represent a 32-bit address space: a 32-bit data word
///     *is* a candidate address, with the paper's hit probabilities.
///     The BE variant models big-endian platforms (SPARC, SGI), whose
///     byte-level false-pointer anatomy (Figure 1, trailing-NUL
///     strings) differs from little-endian.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_ROOTS_ROOTSET_H
#define CGC_ROOTS_ROOTSET_H

#include "heap/HeapUnits.h"
#include "support/Assert.h"
#include <cstdint>
#include <string>
#include <vector>

namespace cgc {

enum class RootEncoding : unsigned char {
  Native64,
  Window32LE,
  Window32BE,
};

/// Broad classification used for statistics and for the paper's
/// source-of-leakage analysis (static vs stack vs register residue).
enum class RootSource : unsigned char {
  StaticData,
  Stack,
  Registers,
  Client,
};

using RootId = uint32_t;

struct RootRange;

/// One batch of root-scanning work: a contiguous, exclusion-free span
/// of a registered range.  The RootScan phase scans a flat list of
/// these rather than nesting range/exclusion loops, so each span is an
/// independent unit whose candidates seed the mark work queues.
struct RootScanSpan {
  const RootRange *Range = nullptr;
  const unsigned char *Begin = nullptr;
  const unsigned char *End = nullptr;
};

struct RootRange {
  RootId Id = 0;
  const unsigned char *Begin = nullptr;
  const unsigned char *End = nullptr;
  RootEncoding Encoding = RootEncoding::Native64;
  RootSource Source = RootSource::Client;
  std::string Label;

  size_t sizeBytes() const { return static_cast<size_t>(End - Begin); }
};

class RootSet {
public:
  /// Registers [Begin, End) as a root range; \returns its id.
  RootId addRange(const void *Begin, const void *End, RootEncoding Encoding,
                  RootSource Source, std::string Label) {
    CGC_CHECK(Begin <= End, "inverted root range");
    RootRange Range;
    Range.Id = NextId++;
    Range.Begin = static_cast<const unsigned char *>(Begin);
    Range.End = static_cast<const unsigned char *>(End);
    Range.Encoding = Encoding;
    Range.Source = Source;
    Range.Label = std::move(Label);
    Ranges.push_back(std::move(Range));
    return Ranges.back().Id;
  }

  /// Unregisters a range; \returns true if it existed.
  bool removeRange(RootId Id) {
    for (size_t I = 0, E = Ranges.size(); I != E; ++I) {
      if (Ranges[I].Id == Id) {
        Ranges.erase(Ranges.begin() + static_cast<ptrdiff_t>(I));
        return true;
      }
    }
    return false;
  }

  /// Replaces the bounds of an existing range (a stack range's top
  /// moves between collections).
  bool updateRange(RootId Id, const void *Begin, const void *End) {
    CGC_CHECK(Begin <= End, "inverted root range");
    for (RootRange &Range : Ranges) {
      if (Range.Id != Id)
        continue;
      Range.Begin = static_cast<const unsigned char *>(Begin);
      Range.End = static_cast<const unsigned char *>(End);
      return true;
    }
    return false;
  }

  /// Pre-reserves capacity for \p N more ranges.  The collector calls
  /// this before stopping the world so that adding mutator stack and
  /// register ranges while threads are frozen (possibly inside libc
  /// malloc, under the watchdog's signal suspension) never allocates.
  void reserveAdditional(size_t N) { Ranges.reserve(Ranges.size() + N); }

  size_t rangeCount() const { return Ranges.size(); }

  size_t totalBytes() const {
    size_t Total = 0;
    for (const RootRange &Range : Ranges)
      Total += Range.sizeBytes();
    return Total;
  }

  template <typename FnT> void forEach(FnT Fn) const {
    for (const RootRange &Range : Ranges)
      Fn(Range);
  }

  /// Flattens every registered range into its scannable spans, in
  /// registration order with exclusions already carved out.  Span
  /// Range pointers stay valid while no range is added or removed —
  /// i.e. for the duration of one collection phase.
  std::vector<RootScanSpan> scannableSpans() const {
    std::vector<RootScanSpan> Spans;
    Spans.reserve(Ranges.size());
    for (const RootRange &Range : Ranges)
      forEachScannableSubrange(
          Range.Begin, Range.End,
          [&](const unsigned char *Begin, const unsigned char *End) {
            Spans.push_back({&Range, Begin, End});
          });
    return Spans;
  }

  /// Excludes [Begin, End) from all root scanning.  The paper: "it is
  /// useful ... to avoid scanning large static data areas that contain
  /// seemingly random, nonpointer areas (e.g. IO buffers)."
  void addExclusion(const void *Begin, const void *End) {
    CGC_CHECK(Begin <= End, "inverted exclusion range");
    Exclusions.push_back({static_cast<const unsigned char *>(Begin),
                          static_cast<const unsigned char *>(End)});
  }

  size_t exclusionCount() const { return Exclusions.size(); }

  /// Calls \p Fn(Begin, End) for each maximal subrange of
  /// [Begin, End) that is not covered by an exclusion.
  template <typename FnT>
  void forEachScannableSubrange(const unsigned char *Begin,
                                const unsigned char *End, FnT Fn) const {
    const unsigned char *Cursor = Begin;
    while (Cursor < End) {
      // Find the first exclusion intersecting [Cursor, End).
      const unsigned char *HoleBegin = End;
      const unsigned char *HoleEnd = End;
      for (const Exclusion &Hole : Exclusions) {
        if (Hole.End <= Cursor || Hole.Begin >= End)
          continue;
        if (Hole.Begin < HoleBegin) {
          HoleBegin = std::max(Hole.Begin, Cursor);
          HoleEnd = std::min(Hole.End, End);
        }
      }
      if (Cursor < HoleBegin)
        Fn(Cursor, HoleBegin);
      if (HoleEnd <= Cursor)
        break;
      Cursor = HoleEnd;
    }
  }

private:
  struct Exclusion {
    const unsigned char *Begin;
    const unsigned char *End;
  };

  std::vector<RootRange> Ranges;
  std::vector<Exclusion> Exclusions;
  RootId NextId = 1;
};

} // namespace cgc

#endif // CGC_ROOTS_ROOTSET_H
