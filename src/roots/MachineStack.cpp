//===- roots/MachineStack.cpp - Real machine-stack scanning ---------------===//

#include "roots/MachineStack.h"
#include "support/Assert.h"
#include <cstring>
#include <pthread.h>

using namespace cgc;

namespace {

/// \returns the current stack pointer, approximated by the address of a
/// local variable.  noinline so the frame is the caller's callee.
__attribute__((noinline)) const void *currentStackPointer() {
  // The frame address of this noinline function is strictly below every
  // live byte of the caller's stack, which is what scanning needs.
  const void *Sp = __builtin_frame_address(0);
  __asm__ volatile("" ::"r"(Sp) : "memory");
  return Sp;
}

} // namespace

MachineStack::MachineStack() {
  pthread_attr_t Attr;
  CGC_CHECK(pthread_getattr_np(pthread_self(), &Attr) == 0,
            "cannot query thread stack bounds");
  void *StackLow = nullptr;
  size_t StackSize = 0;
  CGC_CHECK(pthread_attr_getstack(&Attr, &StackLow, &StackSize) == 0,
            "cannot query thread stack bounds");
  pthread_attr_destroy(&Attr);
  // Stacks grow downward on every supported platform: the scanning base
  // is the high end.
  Base = static_cast<const char *>(StackLow) + StackSize;
  DeepestSeen = Base;
}

MachineStack::Snapshot MachineStack::capture(std::jmp_buf &Registers) const {
  Snapshot Result;
  // setjmp spills callee-saved registers (the ones that may hold the
  // only copy of a pointer across the call into the collector) into the
  // jmp_buf, making them scannable memory.
  (void)setjmp(Registers);
  Result.RegistersBegin = &Registers;
  Result.RegistersEnd = reinterpret_cast<const char *>(&Registers) +
                        sizeof(std::jmp_buf);
  Result.HotEnd = currentStackPointer();
  Result.Base = Base;
  if (Result.HotEnd < DeepestSeen)
    DeepestSeen = Result.HotEnd;
  return Result;
}

void MachineStack::clearDeadStack(uint32_t ChunkBytes) {
  const char *Sp = static_cast<const char *>(currentStackPointer());
  // Leave a guard region below the current frame untouched: the calls
  // we are about to make (memset) need headroom, and a signal handler
  // could in principle run there.
  constexpr size_t GuardBytes = 4096;
  const char *ClearHigh = Sp - GuardBytes;
  const char *ClearLow = static_cast<const char *>(DeepestSeen);
  if (ClearLow + ChunkBytes < ClearHigh)
    ClearLow = ClearHigh - ChunkBytes;
  if (ClearLow >= ClearHigh)
    return;
  std::memset(const_cast<char *>(ClearLow), 0,
              static_cast<size_t>(ClearHigh - ClearLow));
}
