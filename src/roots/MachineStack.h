//===- roots/MachineStack.h - Real machine-stack scanning ------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Support for treating the *real* calling thread's stack and registers
/// as conservative roots, so the examples run as genuine
/// garbage-collected C++ programs.  The experiments use the simulated
/// stack instead (deterministic); this module exists to show the
/// collector is a real collector.
///
/// Register contents are flushed to the stack with setjmp before
/// scanning, the classic uncooperative-environment technique.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_ROOTS_MACHINESTACK_H
#define CGC_ROOTS_MACHINESTACK_H

#include "heap/HeapUnits.h"
#include <csetjmp>

namespace cgc {

class MachineStack {
public:
  /// Captures the calling thread's stack bounds.  Call once from (or
  /// near) main before allocating.
  MachineStack();

  /// \returns the hot end of the live stack at the caller's frame and
  /// flushes callee-saved registers into \p RegisterBuffer so they are
  /// scanned too.  Must not be inlined into the collector's caller.
  struct Snapshot {
    /// Current stack pointer (low end on a downward-growing stack).
    const void *HotEnd = nullptr;
    /// Base captured at construction (high end).
    const void *Base = nullptr;
    /// Register contents flushed via setjmp.
    const void *RegistersBegin = nullptr;
    const void *RegistersEnd = nullptr;
  };

  Snapshot capture(std::jmp_buf &RegisterBuffer) const;

  /// §3.1 stack clearing on the real stack: zeroes up to \p ChunkBytes
  /// of the dead region just beyond the current frame, bounded by the
  /// deepest stack extent seen so far.  Mirrors bdwgc's GC_clear_stack.
  void clearDeadStack(uint32_t ChunkBytes);

  const void *base() const { return Base; }

private:
  const void *Base = nullptr;        ///< High end of the stack.
  mutable const void *DeepestSeen = nullptr; ///< Low-water mark.
};

} // namespace cgc

#endif // CGC_ROOTS_MACHINESTACK_H
