//===- core/GcConfig.h - Collector configuration ---------------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every knob the paper discusses is a configuration field here, so each
/// experiment can switch exactly one technique on or off:
/// blacklisting (and its representation), interior-pointer recognition,
/// scan alignment, heap placement, trailing-zero avoidance, stack
/// clearing, and the startup collection.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_CORE_GCCONFIG_H
#define CGC_CORE_GCCONFIG_H

#include "heap/HeapUnits.h"
#include <cstdint>

namespace cgc {

/// Which pointers into an object force its retention.
enum class InteriorPolicy : unsigned char {
  /// Only exact object-base addresses are valid (precise heap layouts;
  /// the paper notes old C programs "normally also maintain a pointer
  /// to the base of the object").
  BaseOnly,
  /// Pointers into the first page of an object are valid (the paper's
  /// observation 7: this makes >100 KB objects allocatable again).
  FirstPage,
  /// Arbitrary interior pointers are valid — required for full ANSI C,
  /// and the configuration under which Table 1 was measured.
  All,
};

/// Blacklist representation (§3: bit array vs hash table).
enum class BlacklistMode : unsigned char {
  Off,
  /// Bit array indexed by page number; the paper's choice for a
  /// contiguous heap.
  FlatBitmap,
  /// Hash table with one bit per entry; "if a false reference is seen
  /// to any of the pages with a given hash address, all of them are
  /// effectively blacklisted".  The paper's choice for discontiguous
  /// heaps.
  Hashed,
};

/// Where the heap arena sits inside the window (§2's "properly
/// positioning the heap in the address space").
enum class HeapPlacement : unsigned char {
  /// Just above a small program+static area, like a classic sbrk heap
  /// (SPARC/SunOS).  Collides heavily with small-integer data.
  LowSbrk,
  /// High-order bits neither all zeros nor all ones, above the ASCII
  /// four-byte-string range.  The recommended placement.
  HighBitsMixed,
  /// Deliberately inside the range spanned by four ASCII bytes, to
  /// demonstrate character-data collisions.
  AsciiRange,
  /// Use CustomHeapBaseOffset.
  Custom,
};

/// §3.1's cheap stack-clearing technique.
enum class StackClearMode : unsigned char {
  Off,
  /// The allocator occasionally clears a bounded region of the stack
  /// beyond the most recently activated frame.
  Cheap,
};

/// Called when the allocation slow-path ladder is exhausted (collect,
/// lazy-sweep flush, grow, emergency collect all failed).  \p Bytes is
/// the requested size.  Whatever the handler returns is returned to the
/// allocating caller verbatim — a handler may free reserves and return
/// nullptr to make the caller retry, longjmp away, or abort.  With no
/// handler installed the allocation returns nullptr.
using GcOomHandler = void *(*)(uint64_t Bytes, void *UserData);

/// Receives rate-limited resilience warnings ("repeated collections
/// without progress", "large allocation on blacklist-saturated heap").
/// \p Message is a static string; \p Value is event-specific (a
/// repetition count or a request size).
using GcWarnProc = void (*)(const char *Message, uint64_t Value,
                            void *UserData);

/// Policy for the retention-storm sentinel (core/GcSentinel.h): a
/// GcObserver that watches the live-bytes trajectory across a sliding
/// window of collections and escalates defensive responses when the
/// heap keeps growing — the runtime counterpart of the paper's §2
/// "unbounded heap growth from misidentification" failure mode.
struct SentinelPolicy {
  bool Enabled = false;

  /// Collections per trajectory window; detection needs a full window.
  unsigned WindowCollections = 8;

  /// A storm requires net window growth of at least this many bytes...
  uint64_t GrowthFloorBytes = uint64_t(1) << 20;
  /// ...and at least this fraction of the live bytes at window start.
  double GrowthSlopeFraction = 0.05;

  /// Minimum per-collection growth steps (positive deltas) within the
  /// window; filters sawtooth workloads whose net drift is incidental.
  /// 0 means "3/4 of the window's deltas".
  unsigned MinGrowingDeltas = 0;

  /// Collections to wait between escalation steps, so one response can
  /// take effect before the next is judged necessary.
  unsigned EscalationCooldown = 2;

  /// Collections the level-3 interior-pointer tightening stays active.
  unsigned TightenCycles = 8;

  /// Consecutive non-growing collections before the sentinel stands
  /// down and restores every overridden configuration knob.
  unsigned CalmCollections = 4;
};

struct GcConfig {
  /// Reserved window size; models the platform address-space size.
  uint64_t WindowBytes = uint64_t(4) << 30;

  HeapPlacement Placement = HeapPlacement::HighBitsMixed;
  /// Heap arena base offset when Placement == Custom.
  uint64_t CustomHeapBaseOffset = 0;
  /// Arena capacity: the heap never grows beyond this.
  uint64_t MaxHeapBytes = uint64_t(256) << 20;
  /// Pages committed per growth step ("heap expansion increment").
  uint32_t HeapGrowthPages = 256;
  /// Return freed page runs to the OS (reads as zeros afterwards).
  bool DecommitFreedPages = true;

  InteriorPolicy Interior = InteriorPolicy::All;

  /// Byte stride between candidate loads when scanning roots.  4 models
  /// word-aligned 32-bit platforms; 2 or 1 model platforms that must
  /// honor unaligned pointers (the Figure-1 hazard).
  unsigned RootScanAlignment = 4;
  /// Byte stride when scanning heap objects for pointers (native
  /// 8-byte words; normally 8).
  unsigned HeapScanAlignment = 8;

  BlacklistMode Blacklist = BlacklistMode::FlatBitmap;
  /// Drop blacklist entries that a later collection no longer sees.
  bool BlacklistAging = true;
  /// log2 of the hashed blacklist's bit count (Hashed mode only).
  unsigned HashedBlacklistBitsLog2 = 16;

  /// Perform a collection before the first allocation so static false
  /// references are blacklisted before pages can land on them.
  bool GcAtStartup = true;

  /// Workers draining the Mark phase's work-stealing queues.  1 (the
  /// default) runs the paper's exact sequential marker, so every paper
  /// experiment stays deterministic; N > 1 traces the heap in parallel.
  /// The marked set and all CollectionStats counters are identical for
  /// any value — marking computes a transitive closure, so only the
  /// phase's wall-clock time changes.  Clamped to [1, 64].
  unsigned MarkThreads = 1;

  /// Workers sweeping small blocks in the Sweep phase.  1 (the default)
  /// runs the paper's exact sequential sweep.  N > 1 shards the live
  /// block list across persistent pool workers; block dispositions are
  /// applied in sequential visit order afterwards, so the retained set,
  /// free-list order, and all CollectionStats counters are identical
  /// for any value.  Under LazySweep the collection-time Sweep phase
  /// only queues blocks, so this knob has no effect there.  Clamped to
  /// [1, 64].
  unsigned SweepThreads = 1;

  /// Workers gathering root-scan candidates in the RootScan phase.  1
  /// (the default) runs the paper's exact sequential scan.  N > 1
  /// shards the scannable spans across persistent pool workers, which
  /// decode candidate words read-only; the candidates are then replayed
  /// through the marker sequentially in span registration order, so the
  /// seeded set, hit/near-miss counters, and blacklist feed are
  /// identical for any value.  Clamped to [1, 64].
  unsigned RootScanThreads = 1;

  /// Maximum simultaneously registered mutator threads
  /// (cgc_register_thread / GcThreadScope).  Registration beyond the
  /// cap fails cleanly.  With zero registered threads the collector
  /// runs the paper's sequential single-mutator protocol bit-
  /// identically: no heap lock, no safepoints, no handshake.
  unsigned MutatorThreads = 64;

  /// Per-size-class capacity of each registered thread's allocation
  /// cache (heap/ThreadCache.h).  Slots are reserved in batches under
  /// the heap lock and handed out lock-free; every stop-the-world
  /// handshake flushes unused slots back so retained sets stay exact.
  /// 0 disables caching (every allocation takes the heap lock).
  /// Guarded mode (DebugGuards) also disables caching.
  unsigned ThreadCacheSlots = 32;

  /// Stop-the-world handshake watchdog deadline in milliseconds
  /// (monotonic clock).  0 — the default — disables the watchdog:
  /// collect() waits for the cooperative handshake forever, exactly
  /// the pre-watchdog behavior.  With a deadline, a registered mutator
  /// that fails to park climbs an escalation ladder: a rate-limited
  /// GcWarnProc warning naming the wedged thread at deadline/4,
  /// preemptive suspension via the reserved real-time signal at
  /// deadline/2, and — if the thread still cannot be stopped — a
  /// HandshakeTimeout GcIncident at the full deadline, after which
  /// the collection attempt is abandoned and allocation degrades to
  /// heap growth.
  uint64_t HandshakeDeadlineMs = 0;

  /// Abort (via the fatal-error path, so the crash reporter fires)
  /// instead of abandoning the collection when the handshake watchdog
  /// reaches its final timeout.  For deployments where a wedged
  /// mutator is unrecoverable and a loud crash beats silent heap
  /// growth.
  bool HandshakeFatal = false;

  /// Signal number reserved for preemptive mutator suspension (rung 2
  /// of the watchdog ladder).  0 — the default — picks SIGRTMIN+6, or
  /// the CGC_SUSPEND_SIGNAL environment variable when set.  The
  /// resume signal is always SuspendSignal+1; both numbers are
  /// reserved process-wide while any collector has a watchdog armed.
  /// Negative disables the signal fallback entirely (the ladder skips
  /// from the warning rung straight to the final timeout).
  int SuspendSignal = 0;

  /// Collect before growing the heap once allocation since the last
  /// collection exceeds this fraction of the committed heap.
  double CollectBeforeGrowthRatio = 0.5;
  /// Never collect-before-grow below this committed size.
  uint64_t MinHeapBytesBeforeGc = uint64_t(1) << 20;

  /// Ablation/fuzz knob: ignore every registered type descriptor and
  /// serve typed allocations from the ordinary conservative (Normal
  /// kind) path, exactly as if each descriptor were all-conservative.
  /// Registered sizes are granule-aligned, so the allocation stream —
  /// and therefore retained sets, free-list order, stats, and
  /// blacklist contents — must be bit-identical to a collector that
  /// never saw a descriptor.  The typed-marking fuzz cross-check pins
  /// this equivalence.
  bool AllConservativeDescriptors = false;

  /// When the collector cannot tell a free slot from an allocated one
  /// (the paper's collectors could not), a false reference to a free
  /// slot pins it.  Setting this to true lets the collector reject such
  /// candidates instead (modern ablation).
  bool PreciseFreeSlotDetection = false;

  StackClearMode StackClearing = StackClearMode::Off;
  /// Bytes cleared per stack-clearing step.
  uint32_t StackClearChunkBytes = 4096;
  /// Run the stack-clearing hooks every N allocations.
  uint32_t StackClearEveryNAllocs = 64;

  // Object-heap policies (see ObjectHeapConfig).
  bool AvoidTrailingZeroAddresses = true;
  bool ClearFreedObjects = true;
  bool AddressOrderedAllocation = true;
  /// Defer small-block sweeping to allocation time (shorter collection
  /// pauses, same total work).  CollectionStats' live counts then come
  /// from the mark phase.
  bool LazySweep = false;

  /// Out-of-memory handler invoked once per exhausted allocation, after
  /// every ladder rung failed.  See GcOomHandler.  Also settable at
  /// runtime via Collector::setOomHandler.
  GcOomHandler OomHandler = nullptr;
  void *OomHandlerData = nullptr;

  /// Warn procedure for resilience events; rate-limited per event kind
  /// with exponential backoff (occurrence 1, 2, 4, 8, ...).  Also
  /// settable at runtime via Collector::setWarnProc.
  GcWarnProc WarnProc = nullptr;
  void *WarnProcData = nullptr;

  /// Run the deep heap verifier (heap/HeapVerifier.h) after every
  /// pipeline phase of every collection and abort with the full
  /// diagnostic report on any inconsistency.  Expensive; meant for
  /// tests and fuzzing.  The CGC_VERIFY_EVERY_COLLECTION environment
  /// variable (any value but "0") forces this on at construction.
  bool VerifyEveryCollection = false;

  /// Opt-in metadata sealing: BlockTable descriptors, PageMap entries,
  /// and page free-list storage live on dedicated metadata-arena pages
  /// that are flipped PROT_READ between collections and unprotected
  /// under the heap lock at collection/allocation entry.  A wild store
  /// from client code then faults; the SIGSEGV sub-handler attributes
  /// it, lets it proceed, and the collector raises a structured
  /// GcIncident{MetadataWildWrite} and runs verify-and-repair instead
  /// of crashing.  Sealing changes no allocation decision, so
  /// collections are digest-identical with it on or off.
  bool SealMetadata = false;

  /// Abort (historical behavior) when per-phase verification
  /// (VerifyEveryCollection) finds an inconsistency.  false switches to
  /// the containment path: the collection is abandoned, the verifier's
  /// repair mode runs, the cycle is retried once, and a second failure
  /// degrades the collector to fresh-page allocation — never aborting.
  bool RepairFatal = true;

  /// Opt-in guarded-heap (debug) mode: every conservatively scanned
  /// allocation gains a 16-byte debug header (allocation-site tag +
  /// monotonic seqno + canary) and a trailing redzone validated at
  /// sweep time and by the verifier; explicit frees are fully
  /// validated (non-heap / interior / double frees raise structured
  /// GcIncidents instead of UB), poisoned, and parked in a bounded
  /// quarantine whose flush detects use-after-free writes.  Guard
  /// metadata words all read >= 2^63, so the conservative scan never
  /// mistakes them for pointers and retained sets are bit-identical
  /// with guards on or off.  Forces LazySweep off.  See
  /// heap/GuardedHeap.h and DESIGN.md §7.
  bool DebugGuards = false;
  /// Abort (via the fatal-error path, after reporting the incident)
  /// on any guard violation.  false keeps running so incidents and
  /// guard stats can be inspected — meant for tests and soaks.
  bool GuardFatal = true;
  /// Capacity of the guarded free-quarantine ring; the oldest entry is
  /// poison-checked and released when a free would overflow it, and
  /// every collection flushes the whole ring.  0 disables parking
  /// (validated frees release immediately).
  uint32_t QuarantineSlots = 256;

  /// Retention-storm sentinel policy; Sentinel.Enabled defaults off so
  /// paper experiments measure the undefended collector.
  SentinelPolicy Sentinel;

  /// \returns the heap arena base offset implied by Placement.
  uint64_t heapBaseOffset() const {
    switch (Placement) {
    case HeapPlacement::LowSbrk:
      return uint64_t(1) << 20; // 1 MiB: right above program + static.
    case HeapPlacement::HighBitsMixed:
      return uint64_t(0x90000000); // above ASCII range, bits mixed.
    case HeapPlacement::AsciiRange:
      return uint64_t(0x61000000); // 'a'-leading byte territory.
    case HeapPlacement::Custom:
      return CustomHeapBaseOffset;
    }
    return 0;
  }
};

} // namespace cgc

#endif // CGC_CORE_GCCONFIG_H
