//===- core/GcNew.h - Typed allocation helpers -----------------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typed sugar over Collector::allocate:
///
///   * gcNew<T> / gcNewArray<T> — placement-construct on GC storage.
///   * CGC_DESCRIBE(Type, fields...) + gcAllocTyped<T> — declare which
///     fields of a type hold pointers and allocate through the typed
///     (descriptor-driven) mark path: only the declared words are
///     traced, everything else is ignored.
///   * GcAllocated — CRTP-free base class whose operator new allocates
///     from the ambient collector (set with GcScope), so existing C++
///     class hierarchies adopt the collector by inheritance.
///   * GcAllocator<T> — std-compatible allocator for containers whose
///     backing store should be collected (and scanned).
///
/// Destructors: the collector never runs destructors on reclamation.
/// Types allocated here should be trivially destructible, or register a
/// finalizer explicitly.  gcNew enforces the former with a
/// static_assert; use gcNewFinalized for the latter.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_CORE_GCNEW_H
#define CGC_CORE_GCNEW_H

#include "core/Collector.h"
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace cgc {

/// Customization point populated by CGC_DESCRIBE: the specialization
/// for a described type provides pointerWords(), the word-granular
/// pointer bitmap handed to Collector::registerObjectLayout.  Using
/// gcAllocTyped<T> without a CGC_DESCRIBE(T, ...) is a compile error
/// (the primary template is undefined).
template <typename T> struct GcTypeLayout;

/// \returns T's interned descriptor id for \p GC, registering it on
/// first use.  Memoized per {type, collector, thread}; interning makes
/// re-registration idempotent, so the memo is a fast path, not a
/// correctness requirement.  T must be a small object
/// (SizeClassTable::isSmall(sizeof(T))).
template <typename T> LayoutId gcLayoutOf(Collector &GC) {
  thread_local uint64_t CachedCollector = 0;
  thread_local LayoutId Cached = 0;
  if (CachedCollector != GC.uniqueId()) {
    Cached = GC.registerObjectLayout(GcTypeLayout<T>::pointerWords(),
                                     sizeof(T));
    CachedCollector = GC.uniqueId();
  }
  return Cached;
}

/// Allocates and constructs a T on \p GC's heap through the typed mark
/// path: only the words CGC_DESCRIBE declared are traced.  Degenerate
/// descriptors (every word / no word) transparently collapse onto the
/// ordinary Normal / PointerFree allocation paths.
template <typename T, typename... ArgTs>
T *gcAllocTyped(Collector &GC, ArgTs &&...Args) {
  static_assert(std::is_trivially_destructible_v<T>,
                "gcAllocTyped requires trivially destructible types; use "
                "gcNewFinalized to run a destructor at reclamation");
  void *Memory = GC.allocateTyped(gcLayoutOf<T>(GC));
  if (!Memory)
    return nullptr;
  return ::new (Memory) T(std::forward<ArgTs>(Args)...);
}

/// Allocates and constructs a T on \p GC's heap.
template <typename T, typename... ArgTs>
T *gcNew(Collector &GC, ArgTs &&...Args) {
  static_assert(std::is_trivially_destructible_v<T>,
                "gcNew requires trivially destructible types; use "
                "gcNewFinalized to run a destructor at reclamation");
  void *Memory = GC.allocate(sizeof(T), ObjectKind::Normal);
  if (!Memory)
    return nullptr;
  return ::new (Memory) T(std::forward<ArgTs>(Args)...);
}

/// gcNew for pointer-free payloads (never scanned; may be placed on
/// blacklisted pages).
template <typename T, typename... ArgTs>
T *gcNewAtomic(Collector &GC, ArgTs &&...Args) {
  static_assert(std::is_trivially_destructible_v<T>,
                "gcNewAtomic requires trivially destructible types");
  void *Memory = GC.allocate(sizeof(T), ObjectKind::PointerFree);
  if (!Memory)
    return nullptr;
  return ::new (Memory) T(std::forward<ArgTs>(Args)...);
}

/// Allocates and constructs a T whose destructor runs as a finalizer
/// when the object becomes unreachable (after the client next calls
/// Collector::runFinalizers()).
template <typename T, typename... ArgTs>
T *gcNewFinalized(Collector &GC, ArgTs &&...Args) {
  void *Memory = GC.allocate(sizeof(T), ObjectKind::Normal);
  if (!Memory)
    return nullptr;
  T *Object = ::new (Memory) T(std::forward<ArgTs>(Args)...);
  GC.registerFinalizer(Object,
                       [](void *P) { static_cast<T *>(P)->~T(); });
  return Object;
}

/// Allocates a default-initialized array of \p Count Ts.
template <typename T> T *gcNewArray(Collector &GC, size_t Count) {
  static_assert(std::is_trivially_destructible_v<T>,
                "gcNewArray requires trivially destructible types");
  void *Memory = GC.allocate(sizeof(T) * Count, ObjectKind::Normal);
  if (!Memory)
    return nullptr;
  return ::new (Memory) T[Count]();
}

/// \returns the ambient collector used by GcAllocated; set via GcScope.
Collector *ambientCollector();

/// Installs \p GC as the ambient collector for the current scope.
class GcScope {
public:
  explicit GcScope(Collector &GC);
  ~GcScope();
  GcScope(const GcScope &) = delete;
  GcScope &operator=(const GcScope &) = delete;

private:
  Collector *Previous;
};

/// Base class routing operator new/delete to the ambient collector.
/// operator delete is a no-op: reclamation is the collector's job.
class GcAllocated {
public:
  static void *operator new(size_t Bytes);
  static void *operator new[](size_t Bytes);
  static void operator delete(void *, size_t) noexcept {}
  static void operator delete[](void *, size_t) noexcept {}
};

/// std-compatible allocator drawing from a Collector.  Container nodes
/// become heap objects, scanned conservatively like everything else.
template <typename T> class GcAllocator {
public:
  using value_type = T;

  explicit GcAllocator(Collector &GC) : GC(&GC) {}
  template <typename U>
  GcAllocator(const GcAllocator<U> &Other) : GC(Other.collector()) {}

  T *allocate(size_t Count) {
    void *Memory = GC->allocate(sizeof(T) * Count, ObjectKind::Normal);
    if (!Memory)
      throw std::bad_alloc();
    return static_cast<T *>(Memory);
  }

  void deallocate(T *Ptr, size_t) noexcept {
    // Optional eager reuse; safe because the container owns the memory.
    GC->deallocate(Ptr);
  }

  Collector *collector() const { return GC; }

  friend bool operator==(const GcAllocator &A, const GcAllocator &B) {
    return A.GC == B.GC;
  }

private:
  Collector *GC;
};

} // namespace cgc

//===----------------------------------------------------------------------===//
// CGC_DESCRIBE
//===----------------------------------------------------------------------===//
//
// CGC_DESCRIBE(Type, fields...) — at namespace scope, after the type's
// definition — declares that exactly the named fields may hold heap
// pointers.  Every word a named field overlaps is marked pointer-
// bearing (so multi-word members like nested structs or pointer arrays
// are described whole); all other words are declared pointer-free and
// are never traced, never feed the blacklist, and never retain
// anything.  Up to 8 fields; list every pointer-bearing field — an
// omitted one is a collector-visible dangling-pointer bug.

/// Marks the words [offsetof, offsetof + sizeof) of FIELD in Words.
#define CGC_DESCRIBE_FIELD(TYPE, FIELD)                                  \
  for (size_t CgcByte = offsetof(TYPE, FIELD),                           \
              CgcEnd = offsetof(TYPE, FIELD) + sizeof(TYPE::FIELD);      \
       CgcByte < CgcEnd; CgcByte += sizeof(void *))                      \
    Words[CgcByte / sizeof(void *)] = true;

#define CGC_DESC_1(T, F) CGC_DESCRIBE_FIELD(T, F)
#define CGC_DESC_2(T, F, ...) CGC_DESCRIBE_FIELD(T, F) CGC_DESC_1(T, __VA_ARGS__)
#define CGC_DESC_3(T, F, ...) CGC_DESCRIBE_FIELD(T, F) CGC_DESC_2(T, __VA_ARGS__)
#define CGC_DESC_4(T, F, ...) CGC_DESCRIBE_FIELD(T, F) CGC_DESC_3(T, __VA_ARGS__)
#define CGC_DESC_5(T, F, ...) CGC_DESCRIBE_FIELD(T, F) CGC_DESC_4(T, __VA_ARGS__)
#define CGC_DESC_6(T, F, ...) CGC_DESCRIBE_FIELD(T, F) CGC_DESC_5(T, __VA_ARGS__)
#define CGC_DESC_7(T, F, ...) CGC_DESCRIBE_FIELD(T, F) CGC_DESC_6(T, __VA_ARGS__)
#define CGC_DESC_8(T, F, ...) CGC_DESCRIBE_FIELD(T, F) CGC_DESC_7(T, __VA_ARGS__)
#define CGC_DESC_PICK(_1, _2, _3, _4, _5, _6, _7, _8, NAME, ...) NAME

#define CGC_DESCRIBE(TYPE, ...)                                          \
  template <> struct cgc::GcTypeLayout<TYPE> {                           \
    static std::vector<bool> pointerWords() {                            \
      std::vector<bool> Words(                                           \
          (sizeof(TYPE) + sizeof(void *) - 1) / sizeof(void *));         \
      CGC_DESC_PICK(__VA_ARGS__, CGC_DESC_8, CGC_DESC_7, CGC_DESC_6,     \
                    CGC_DESC_5, CGC_DESC_4, CGC_DESC_3, CGC_DESC_2,      \
                    CGC_DESC_1)                                          \
      (TYPE, __VA_ARGS__)                                                \
      return Words;                                                      \
    }                                                                    \
  };

#endif // CGC_CORE_GCNEW_H
