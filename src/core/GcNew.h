//===- core/GcNew.h - Typed allocation helpers -----------------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typed sugar over Collector::allocate:
///
///   * gcNew<T> / gcNewArray<T> — placement-construct on GC storage.
///   * GcAllocated — CRTP-free base class whose operator new allocates
///     from the ambient collector (set with GcScope), so existing C++
///     class hierarchies adopt the collector by inheritance.
///   * GcAllocator<T> — std-compatible allocator for containers whose
///     backing store should be collected (and scanned).
///
/// Destructors: the collector never runs destructors on reclamation.
/// Types allocated here should be trivially destructible, or register a
/// finalizer explicitly.  gcNew enforces the former with a
/// static_assert; use gcNewFinalized for the latter.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_CORE_GCNEW_H
#define CGC_CORE_GCNEW_H

#include "core/Collector.h"
#include <new>
#include <type_traits>
#include <utility>

namespace cgc {

/// Allocates and constructs a T on \p GC's heap.
template <typename T, typename... ArgTs>
T *gcNew(Collector &GC, ArgTs &&...Args) {
  static_assert(std::is_trivially_destructible_v<T>,
                "gcNew requires trivially destructible types; use "
                "gcNewFinalized to run a destructor at reclamation");
  void *Memory = GC.allocate(sizeof(T), ObjectKind::Normal);
  if (!Memory)
    return nullptr;
  return ::new (Memory) T(std::forward<ArgTs>(Args)...);
}

/// gcNew for pointer-free payloads (never scanned; may be placed on
/// blacklisted pages).
template <typename T, typename... ArgTs>
T *gcNewAtomic(Collector &GC, ArgTs &&...Args) {
  static_assert(std::is_trivially_destructible_v<T>,
                "gcNewAtomic requires trivially destructible types");
  void *Memory = GC.allocate(sizeof(T), ObjectKind::PointerFree);
  if (!Memory)
    return nullptr;
  return ::new (Memory) T(std::forward<ArgTs>(Args)...);
}

/// Allocates and constructs a T whose destructor runs as a finalizer
/// when the object becomes unreachable (after the client next calls
/// Collector::runFinalizers()).
template <typename T, typename... ArgTs>
T *gcNewFinalized(Collector &GC, ArgTs &&...Args) {
  void *Memory = GC.allocate(sizeof(T), ObjectKind::Normal);
  if (!Memory)
    return nullptr;
  T *Object = ::new (Memory) T(std::forward<ArgTs>(Args)...);
  GC.registerFinalizer(Object,
                       [](void *P) { static_cast<T *>(P)->~T(); });
  return Object;
}

/// Allocates a default-initialized array of \p Count Ts.
template <typename T> T *gcNewArray(Collector &GC, size_t Count) {
  static_assert(std::is_trivially_destructible_v<T>,
                "gcNewArray requires trivially destructible types");
  void *Memory = GC.allocate(sizeof(T) * Count, ObjectKind::Normal);
  if (!Memory)
    return nullptr;
  return ::new (Memory) T[Count]();
}

/// \returns the ambient collector used by GcAllocated; set via GcScope.
Collector *ambientCollector();

/// Installs \p GC as the ambient collector for the current scope.
class GcScope {
public:
  explicit GcScope(Collector &GC);
  ~GcScope();
  GcScope(const GcScope &) = delete;
  GcScope &operator=(const GcScope &) = delete;

private:
  Collector *Previous;
};

/// Base class routing operator new/delete to the ambient collector.
/// operator delete is a no-op: reclamation is the collector's job.
class GcAllocated {
public:
  static void *operator new(size_t Bytes);
  static void *operator new[](size_t Bytes);
  static void operator delete(void *, size_t) noexcept {}
  static void operator delete[](void *, size_t) noexcept {}
};

/// std-compatible allocator drawing from a Collector.  Container nodes
/// become heap objects, scanned conservatively like everything else.
template <typename T> class GcAllocator {
public:
  using value_type = T;

  explicit GcAllocator(Collector &GC) : GC(&GC) {}
  template <typename U>
  GcAllocator(const GcAllocator<U> &Other) : GC(Other.collector()) {}

  T *allocate(size_t Count) {
    void *Memory = GC->allocate(sizeof(T) * Count, ObjectKind::Normal);
    if (!Memory)
      throw std::bad_alloc();
    return static_cast<T *>(Memory);
  }

  void deallocate(T *Ptr, size_t) noexcept {
    // Optional eager reuse; safe because the container owns the memory.
    GC->deallocate(Ptr);
  }

  Collector *collector() const { return GC; }

  friend bool operator==(const GcAllocator &A, const GcAllocator &B) {
    return A.GC == B.GC;
  }

private:
  Collector *GC;
};

} // namespace cgc

#endif // CGC_CORE_GCNEW_H
