//===- core/GcSentinel.cpp - Retention-storm sentinel ---------------------===//

#include "core/GcSentinel.h"
#include "core/Collector.h"
#include "core/RetentionTracer.h"
#include <algorithm>

using namespace cgc;

GcSentinel::GcSentinel(Collector &GC, const SentinelPolicy &Policy)
    : GC(GC), Policy(Policy) {
  if (this->Policy.WindowCollections < 2)
    this->Policy.WindowCollections = 2;
  Window.reserve(this->Policy.WindowCollections);
}

bool GcSentinel::windowIsStorm(uint64_t &GrowthOut) const {
  if (Window.size() < Policy.WindowCollections)
    return false;
  uint64_t First = Window.front().BytesLive;
  uint64_t Last = Window.back().BytesLive;
  if (Last <= First)
    return false;
  uint64_t Growth = Last - First;
  if (Growth < Policy.GrowthFloorBytes)
    return false;
  if (static_cast<double>(Growth) <
      Policy.GrowthSlopeFraction * static_cast<double>(First))
    return false;
  // Most deltas must point up, or a sawtooth whose net drift happens to
  // clear the floor would flap the ladder.  Ceiling division: a 4-sample
  // sawtooth has 2 of 3 deltas growing, and floor(3*3/4) = 2 would let
  // it through.
  unsigned Deltas = static_cast<unsigned>(Window.size()) - 1;
  unsigned Needed = Policy.MinGrowingDeltas != 0
                        ? Policy.MinGrowingDeltas
                        : (Deltas * 3 + 3) / 4;
  unsigned Growing = 0;
  for (size_t I = 0; I + 1 < Window.size(); ++I)
    if (Window[I + 1].BytesLive > Window[I].BytesLive)
      ++Growing;
  if (Growing < Needed)
    return false;
  GrowthOut = Growth;
  return true;
}

void GcSentinel::onCollectionEnd(uint64_t CollectionIndex,
                                 const CollectionStats &Stats) {
  SentinelSample Sample;
  Sample.CollectionIndex = CollectionIndex;
  Sample.BytesLive = Stats.BytesLive;
  Sample.BlacklistedPages = Stats.BlacklistedPages;
  Sample.NearMisses = Stats.NearMisses;

  bool Grew = !Window.empty() && Sample.BytesLive > Window.back().BytesLive;
  if (Window.size() == Policy.WindowCollections)
    Window.erase(Window.begin());
  Window.push_back(Sample);

  // Level-3 tightening expires on its own, independent of calm: the
  // override is a probe, not a permanent policy change.
  if (TightenActive && CollectionIndex >= TightenUntil) {
    TightenActive = false;
    if (SavedInterior) {
      GC.Config.Interior = *SavedInterior;
      SavedInterior.reset();
    }
  }

  CalmStreak = Grew ? 0 : CalmStreak + 1;
  if (this->Stats.CurrentLevel > 0 && CalmStreak >= Policy.CalmCollections) {
    standDown();
    ++this->Stats.Deescalations;
    GC.noteCrashEvent(GcEventKind::SentinelEscalation, /*Phase=*/-1,
                      /*Value=*/0);
    return;
  }

  uint64_t Growth = 0;
  if (!windowIsStorm(Growth))
    return;
  ++this->Stats.StormsDetected;

  // Saturated ladder: level 4 already raised its incident; re-raising
  // every collection until calm would flap the observer stream.
  if (this->Stats.CurrentLevel >= 4)
    return;
  if (EverEscalated &&
      CollectionIndex - LastEscalationIndex < Policy.EscalationCooldown)
    return;

  escalate(CollectionIndex, Growth);
}

void GcSentinel::escalate(uint64_t CollectionIndex, uint64_t GrowthBytes) {
  EverEscalated = true;
  LastEscalationIndex = CollectionIndex;
  unsigned Level = ++Stats.CurrentLevel;
  GC.CrashInfo.SentinelLevel.store(Level, std::memory_order_relaxed);
  GC.noteCrashEvent(GcEventKind::SentinelEscalation, /*Phase=*/-1, Level);

  switch (Level) {
  case 1:
    // Appendix B: dead-frame residue on the allocator's own stack is
    // the dominant accidental retention source; §3.1 clearing is cheap.
    if (!SavedStackClearing)
      SavedStackClearing = GC.Config.StackClearing;
    GC.Config.StackClearing = StackClearMode::Cheap;
    ++Stats.StackClearForces;
    break;
  case 2:
    // Drop blacklist entries the last collection no longer observed —
    // stale entries squeeze allocation onto fewer pages, which raises
    // the density of objects under any surviving false reference.
    GC.BlacklistImpl->refresh();
    ++Stats.BlacklistRefreshes;
    break;
  case 3:
    // Observation 7 in reverse: if arbitrary interior pointers are
    // pinning the growth, requiring first-page references for
    // TightenCycles collections lets the next cycles reclaim objects
    // held only by deep interior misidentifications.
    if (!SavedInterior)
      SavedInterior = GC.Config.Interior;
    if (GC.Config.Interior == InteriorPolicy::All)
      GC.Config.Interior = InteriorPolicy::FirstPage;
    TightenActive = true;
    TightenUntil = CollectionIndex + Policy.TightenCycles;
    ++Stats.InteriorTightenings;
    break;
  default:
    raiseIncident(CollectionIndex, GrowthBytes);
    break;
  }
}

void GcSentinel::raiseIncident(uint64_t CollectionIndex,
                               uint64_t GrowthBytes) {
  GcIncident Incident;
  Incident.Cause = GcIncidentCause::RetentionStorm;
  Incident.CollectionIndex = CollectionIndex;
  Incident.EscalationLevel = Stats.CurrentLevel;
  Incident.WindowGrowthBytes = GrowthBytes;
  Incident.Trajectory = Window;

  // Sample live objects evenly and ask the tracer which root source
  // anchors each one.  A sample, not a census: the incident is a
  // debugging lead ("your stack residue holds 80% of the growth"), not
  // an accounting statement.
  std::vector<void *> Bases;
  GC.forEachObject([&](void *Ptr, size_t, ObjectKind) {
    Bases.push_back(Ptr);
  });
  constexpr size_t MaxSamples = 32;
  constexpr unsigned NumRootSources = 4; // RootSource enumerator count.
  size_t Stride = std::max<size_t>(1, Bases.size() / MaxSamples);
  RetentionTracer Tracer(GC);
  uint64_t PerSource[NumRootSources][2] = {};
  for (size_t I = 0; I < Bases.size() && Incident.ObjectsSampled < MaxSamples;
       I += Stride) {
    ++Incident.ObjectsSampled;
    RetentionTrace Trace = Tracer.explain(Bases[I]);
    if (!Trace.Reached)
      continue;
    unsigned Source = static_cast<unsigned>(Trace.Source);
    PerSource[Source][0] += 1;
    PerSource[Source][1] += GC.objectSizeOf(Bases[I]);
  }
  for (unsigned S = 0; S != NumRootSources; ++S) {
    if (PerSource[S][0] == 0)
      continue;
    GcIncidentRootSummary Summary;
    Summary.Source = static_cast<RootSource>(S);
    Summary.Objects = PerSource[S][0];
    Summary.Bytes = PerSource[S][1];
    Incident.RetainedByRoot.push_back(Summary);
  }
  std::sort(Incident.RetainedByRoot.begin(), Incident.RetainedByRoot.end(),
            [](const GcIncidentRootSummary &A,
               const GcIncidentRootSummary &B) { return A.Bytes > B.Bytes; });

  ++Stats.IncidentsRaised;
  GC.CrashInfo.SentinelIncidents.fetch_add(1, std::memory_order_relaxed);
  GC.noteCrashEvent(GcEventKind::Incident, /*Phase=*/-1, GrowthBytes);
  LastIncident = Incident;

  GC.warn(Collector::WarnEvent::SentinelIncident,
          "cgc: retention storm: live bytes kept growing through every "
          "sentinel escalation",
          GrowthBytes);
  GC.Observers.dispatch([&](GcObserver &O) { O.onIncident(Incident); });
}

void GcSentinel::standDown() {
  if (SavedStackClearing) {
    GC.Config.StackClearing = *SavedStackClearing;
    SavedStackClearing.reset();
  }
  if (SavedInterior) {
    GC.Config.Interior = *SavedInterior;
    SavedInterior.reset();
  }
  TightenActive = false;
  Stats.CurrentLevel = 0;
  GC.CrashInfo.SentinelLevel.store(0, std::memory_order_relaxed);
}
