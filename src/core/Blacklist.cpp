//===- core/Blacklist.cpp - Page blacklisting -----------------------------===//

#include "core/Blacklist.h"
#include "core/GcConfig.h"
#include "support/Assert.h"

using namespace cgc;

FlatBitmapBlacklist::FlatBitmapBlacklist(PageIndex NumPages, bool Aging)
    : Current(NumPages), SeenThisCycle(NumPages), Aging(Aging) {}

void FlatBitmapBlacklist::noteCandidate(PageIndex Page) {
  ++Stats.CandidatesNoted;
  if (Page >= Current.size())
    return;
  Current.set(Page);
  if (InCycle)
    SeenThisCycle.set(Page);
}

void FlatBitmapBlacklist::beginCycle() {
  SeenThisCycle.clearAll();
  InCycle = true;
}

void FlatBitmapBlacklist::endCycle() {
  ++Stats.Cycles;
  InCycle = false;
  if (!Aging)
    return;
  // Entries the just-finished collection did not re-observe are dropped:
  // the stale value that produced them has been overwritten.
  Current = SeenThisCycle;
}

void FlatBitmapBlacklist::refresh() {
  // SeenThisCycle is a subset of Current (noteCandidate sets both), so
  // the intersection the sentinel wants is the seen set itself.  Only
  // meaningful between cycles; mid-cycle the seen set is still filling.
  if (InCycle)
    return;
  Current = SeenThisCycle;
}

HashedBlacklist::HashedBlacklist(unsigned BitsLog2, bool Aging)
    : BitsLog2(BitsLog2), Current(size_t(1) << BitsLog2),
      SeenThisCycle(size_t(1) << BitsLog2), Aging(Aging) {
  CGC_CHECK(BitsLog2 >= 4 && BitsLog2 <= 28,
            "hashed blacklist size out of range");
}

void HashedBlacklist::noteCandidate(PageIndex Page) {
  ++Stats.CandidatesNoted;
  size_t Bit = hashPage(Page);
  Current.set(Bit);
  if (InCycle)
    SeenThisCycle.set(Bit);
}

void HashedBlacklist::beginCycle() {
  SeenThisCycle.clearAll();
  InCycle = true;
}

void HashedBlacklist::endCycle() {
  ++Stats.Cycles;
  InCycle = false;
  if (!Aging)
    return;
  Current = SeenThisCycle;
}

void HashedBlacklist::refresh() {
  if (InCycle)
    return;
  Current = SeenThisCycle;
}

std::unique_ptr<Blacklist> cgc::createBlacklist(BlacklistMode Mode,
                                                PageIndex NumPages,
                                                unsigned HashedBitsLog2,
                                                bool Aging) {
  switch (Mode) {
  case BlacklistMode::Off:
    return std::make_unique<NullBlacklist>();
  case BlacklistMode::FlatBitmap:
    return std::make_unique<FlatBitmapBlacklist>(NumPages, Aging);
  case BlacklistMode::Hashed:
    return std::make_unique<HashedBlacklist>(HashedBitsLog2, Aging);
  }
  CGC_UNREACHABLE("bad blacklist mode");
}
