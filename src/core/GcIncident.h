//===- core/GcIncident.h - Structured retention incidents ------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured payload the retention-storm sentinel emits once its
/// defensive escalations have all run and the heap is still growing: a
/// cause, the trajectory window that tripped the detector, and a
/// retained-by-root-source summary sampled through RetentionTracer.
/// Delivered through GcObserver::onIncident and, as a one-line summary,
/// through the rate-limited GcWarnProc.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_CORE_GCINCIDENT_H
#define CGC_CORE_GCINCIDENT_H

#include "roots/RootSet.h"
#include <cstdint>
#include <vector>

namespace cgc {

enum class GcIncidentCause : unsigned char {
  /// Live bytes grew past the configured slope/floor for a full window
  /// of collections despite every sentinel escalation.
  RetentionStorm,
  /// Explicit free of a non-heap or non-object pointer (guarded mode).
  InvalidFree,
  /// Explicit free of an object that was already freed (guarded mode).
  DoubleFree,
  /// A guarded object's debug-header canary was overwritten.
  GuardHeaderSmash,
  /// A guarded object's trailing redzone was overwritten.
  GuardRedzoneSmash,
  /// A freed, quarantined object was written through a dangling
  /// pointer before its quarantine slot was flushed.
  QuarantineUseAfterFree,
  /// A stop-the-world handshake exhausted its watchdog deadline: some
  /// registered mutator neither parked cooperatively nor answered the
  /// suspend signal, and the collection attempt was abandoned.
  HandshakeTimeout,
  /// A wild store landed on a sealed metadata page
  /// (GcConfig::SealMetadata): the SIGSEGV sub-handler attributed the
  /// write, let it proceed against an unprotected copy of the page, and
  /// the collector ran verify-and-repair at its next entry.
  MetadataWildWrite,
  /// The redirect layer saw free()/realloc() of a pointer the
  /// collector does not own — memory from another allocator handed to
  /// a GC entry point.  The call degraded to a pass-through (or no-op);
  /// the incident is the structured record of the mismatch.
  ForeignFree,
};

constexpr const char *gcIncidentCauseName(GcIncidentCause Cause) {
  switch (Cause) {
  case GcIncidentCause::RetentionStorm:
    return "retention-storm";
  case GcIncidentCause::InvalidFree:
    return "invalid-free";
  case GcIncidentCause::DoubleFree:
    return "double-free";
  case GcIncidentCause::GuardHeaderSmash:
    return "guard-header-smash";
  case GcIncidentCause::GuardRedzoneSmash:
    return "guard-redzone-smash";
  case GcIncidentCause::QuarantineUseAfterFree:
    return "quarantine-use-after-free";
  case GcIncidentCause::HandshakeTimeout:
    return "handshake-timeout";
  case GcIncidentCause::MetadataWildWrite:
    return "metadata-wild-write";
  case GcIncidentCause::ForeignFree:
    return "foreign-free";
  }
  return "?";
}

/// One registered thread's view of a failed stop-the-world handshake,
/// captured at the watchdog's final-timeout rung.  State is the raw
/// MutatorState value at capture time (core/ThreadRegistry.h).
struct GcHandshakeTraceEntry {
  uint64_t ThreadId = 0;
  uint32_t State = 0;
  uint64_t SafepointsTaken = 0;
  /// Suspend-signal deliveries attempted against this thread (0 when
  /// it parked cooperatively or the signal fallback was disabled).
  uint64_t SignalAttempts = 0;
  /// The thread ended the handshake preemptively suspended.
  bool SignalSuspended = false;
};

/// One per-collection sample from the sentinel's sliding window.
struct SentinelSample {
  uint64_t CollectionIndex = 0;
  uint64_t BytesLive = 0;
  uint64_t BlacklistedPages = 0;
  /// Candidates that hit a blacklisted page this cycle (near misses).
  uint64_t NearMisses = 0;
};

/// Bytes/objects retained, grouped by the root source whose word
/// anchors them (RetentionTracer sample, not a full census).
struct GcIncidentRootSummary {
  RootSource Source = RootSource::Client;
  uint64_t Objects = 0;
  uint64_t Bytes = 0;
};

struct GcIncident {
  GcIncidentCause Cause = GcIncidentCause::RetentionStorm;
  /// Collection at which the incident was raised.
  uint64_t CollectionIndex = 0;
  /// Sentinel escalation level when the incident fired.
  unsigned EscalationLevel = 0;
  /// Net live-bytes growth across the trajectory window.
  uint64_t WindowGrowthBytes = 0;
  /// The window that tripped the detector, oldest first.
  std::vector<SentinelSample> Trajectory;
  /// Top retained-by-root-source groups, largest bytes first.
  std::vector<GcIncidentRootSummary> RetainedByRoot;
  /// Objects fed to RetentionTracer to build RetainedByRoot.
  uint64_t ObjectsSampled = 0;

  // Guarded-heap violation payload (guard-mode causes only).
  /// Interned allocation-site tag of the offending object; nullptr for
  /// retention storms, "(untagged)" for guarded objects with no tag.
  const char *GuardSite = nullptr;
  /// The offending object's monotonic allocation seqno (0 if the
  /// header was unreadable).
  uint64_t GuardSeqno = 0;
  /// The offending object's user-requested size (0 if unreadable).
  uint64_t GuardUserBytes = 0;
  /// The offending address as passed by the client (free'd pointer or
  /// the smashed object's user base).
  uint64_t GuardAddress = 0;

  /// Per-thread handshake trace (HandshakeTimeout only): every
  /// registered thread other than the collector, in registration
  /// order, with its state at the final-timeout rung.
  std::vector<GcHandshakeTraceEntry> HandshakeTrace;

  // Metadata wild-write payload (MetadataWildWrite only).
  /// The faulting store's target address inside the sealed metadata
  /// arena.
  uint64_t MetadataAddress = 0;
  /// Which sealed structure the address fell in ("block-table",
  /// "page-map", "free-lists", or "metadata" when unattributable).
  const char *MetadataRegion = nullptr;
  /// Block whose descriptor was hit (0 = none / not a descriptor).
  uint32_t MetadataBlock = 0;
  /// Heap page whose page-map entry was hit (0 when the write did not
  /// land in the page-map entry array).
  uint64_t MetadataPage = 0;
};

} // namespace cgc

#endif // CGC_CORE_GCINCIDENT_H
