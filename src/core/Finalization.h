//===- core/Finalization.h - Finalization queue ----------------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PCR-style finalization: "selected otherwise unreachable heap cells
/// [are] enqueued for further action" (paper, Appendix B).  The paper's
/// PCR experiment counts reclaimed lists exactly this way, and our
/// Program T harness offers the same methodology.
///
/// Objects found unreachable at the end of marking are *resurrected*
/// (marked, with their reachable subgraph) so their contents stay valid
/// until the client runs the finalizer; the next collection then
/// reclaims them.  Finalization order between mutually reachable
/// finalizable objects is unspecified, as in PCR.
///
/// Pipeline split: detection and resurrection are marking work (they
/// mutate mark state, and must precede the sweep), so they run in the
/// Mark phase and *stage* the queued objects.  The Finalize phase then
/// publishes the staged set to the ready queue, which is what
/// pendingFinalizers()/runFinalizers() observe.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_CORE_FINALIZATION_H
#define CGC_CORE_FINALIZATION_H

#include "core/GcStats.h"
#include "core/Marker.h"
#include "heap/ObjectHeap.h"
#include <functional>
#include <unordered_map>
#include <vector>

namespace cgc {

class FinalizationQueue {
public:
  using Finalizer = std::function<void(void *)>;

  /// Registers \p Fn to run when the object at \p Offset becomes
  /// unreachable.  Re-registering replaces the previous finalizer.
  void registerFinalizer(WindowOffset Offset, Finalizer Fn) {
    Registered[Offset] = std::move(Fn);
  }

  /// Removes a registration; \returns true if one existed.
  bool unregister(WindowOffset Offset) {
    return Registered.erase(Offset) != 0;
  }

  size_t registeredCount() const { return Registered.size(); }
  size_t readyCount() const { return Ready.size(); }

  /// Mark phase: stages unreachable registered objects and resurrects
  /// them through \p MarkerImpl so the sweep spares them.
  /// \returns the number of objects staged.
  size_t processUnreachable(Marker &MarkerImpl, ObjectHeap &Heap,
                            BlockTable &Blocks, CollectionStats &Stats);

  /// Finalize phase: publishes the staged set to the ready queue.
  /// \returns how many finalizers became ready.
  size_t publishStaged();

  /// Runs (and removes) every ready finalizer; \returns how many ran.
  size_t runReady(VirtualArena &Arena);

private:
  std::unordered_map<WindowOffset, Finalizer> Registered;
  /// Queued this cycle, not yet published (Mark .. Finalize window).
  std::vector<std::pair<WindowOffset, Finalizer>> Staged;
  std::vector<std::pair<WindowOffset, Finalizer>> Ready;
};

} // namespace cgc

#endif // CGC_CORE_FINALIZATION_H
