//===- core/ThreadRegistry.cpp - Mutator threads and safepoints ----------===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//

#include "core/ThreadRegistry.h"
#include "heap/ThreadCache.h"
#include <chrono>
#if defined(__linux__)
#include <pthread.h>
#endif

namespace cgc {

namespace {

thread_local MutatorThread *CurrentMutator = nullptr;

uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

MutatorThread *ThreadRegistry::current() { return CurrentMutator; }

const void *ThreadRegistry::currentStackBase() {
#if defined(__linux__)
  pthread_attr_t Attr;
  if (pthread_getattr_np(pthread_self(), &Attr) == 0) {
    void *Addr = nullptr;
    size_t Size = 0;
    int Rc = pthread_attr_getstack(&Attr, &Addr, &Size);
    pthread_attr_destroy(&Attr);
    if (Rc == 0 && Addr != nullptr)
      return static_cast<const unsigned char *>(Addr) + Size;
  }
#endif
  // Fallback: an address in the caller's frame.  Frames entered after
  // registration sit below it on a downward-growing stack, so the
  // scannable range still covers every later local.
  volatile char Probe = 0;
  return const_cast<const char *>(&Probe);
}

MutatorThread *ThreadRegistry::registerThread(const void *StackBase,
                                              unsigned MaxThreads) {
  CGC_CHECK(CurrentMutator == nullptr,
            "thread registered with a collector twice");
  std::lock_guard<std::mutex> Guard(Lock);
  // The caller holds the heap lock, so no handshake is in flight; a
  // full registry is the only refusal.
  if (MaxThreads != 0 && Threads.size() >= MaxThreads)
    return nullptr;
  auto Thread = std::make_unique<MutatorThread>();
  Thread->Id = NextId++;
  Thread->StackBase = StackBase;
  Thread->StackTop.store(StackBase, std::memory_order_release);
  MutatorThread *Raw = Thread.get();
  Threads.push_back(std::move(Thread));
  Count.store(Threads.size(), std::memory_order_release);
  LifetimeRegistrations.fetch_add(1, std::memory_order_relaxed);
  CurrentMutator = Raw;
  return Raw;
}

void ThreadRegistry::unregisterThread(MutatorThread *Thread) {
  CGC_CHECK(Thread != nullptr && Thread == CurrentMutator,
            "unregister from a thread that is not registered");
  std::lock_guard<std::mutex> Guard(Lock);
  for (size_t I = 0, E = Threads.size(); I != E; ++I) {
    if (Threads[I].get() != Thread)
      continue;
    Threads.erase(Threads.begin() + static_cast<ptrdiff_t>(I));
    Count.store(Threads.size(), std::memory_order_release);
    CurrentMutator = nullptr;
    return;
  }
  CGC_CHECK(false, "thread record not found in registry");
}

void ThreadRegistry::publishScanState(MutatorThread *Self) {
  // Flush callee-saved registers into the record's jmp_buf (the classic
  // uncooperative-environment technique; see MachineStack) and publish
  // an address within the current frame as the conservative low bound
  // of the live stack.  The park/blocked frames sit below every mutator
  // frame, so [StackTop, StackBase) covers all live locals.
  setjmp(Self->Registers);
  volatile char Probe = 0;
  Self->StackTop.store(const_cast<const char *>(&Probe),
                       std::memory_order_release);
}

void ThreadRegistry::parkAtSafepoint(MutatorThread *Self) {
  publishScanState(Self);
  std::unique_lock<std::mutex> Guard(Lock);
  if (!StopFlag.load(std::memory_order_acquire))
    return; // Raced with resume; never parked.
  Self->State.store(static_cast<uint32_t>(MutatorState::AtSafepoint),
                    std::memory_order_release);
  Self->SafepointsTaken.fetch_add(1, std::memory_order_relaxed);
  SafepointParks.fetch_add(1, std::memory_order_relaxed);
  MutatorParked.notify_all();
  WorldResumed.wait(Guard,
                    [&] { return !StopFlag.load(std::memory_order_acquire); });
  Self->State.store(static_cast<uint32_t>(MutatorState::Running),
                    std::memory_order_release);
}

void ThreadRegistry::beginBlocked(MutatorThread *Self) {
  publishScanState(Self);
  std::lock_guard<std::mutex> Guard(Lock);
  Self->State.store(static_cast<uint32_t>(MutatorState::BlockedOnHeap),
                    std::memory_order_release);
  MutatorParked.notify_all();
}

void ThreadRegistry::endBlocked(MutatorThread *Self) {
  // The caller acquired the heap lock, and StopRequested is only ever
  // raised while that lock is held — so no stop is in flight and the
  // transition back to Running cannot be misread as a missed park.
  Self->State.store(static_cast<uint32_t>(MutatorState::Running),
                    std::memory_order_release);
}

ThreadRegistry::HandshakeResult
ThreadRegistry::stopTheWorld(const MutatorThread *Self) {
  HandshakeResult Result;
  const uint64_t Begin = nowNanos();
  std::unique_lock<std::mutex> Guard(Lock);
  StopFlag.store(true, std::memory_order_release);
  auto AllParked = [&] {
    for (const std::unique_ptr<MutatorThread> &Thread : Threads) {
      if (Thread.get() == Self)
        continue;
      if (Thread->state() == MutatorState::Running)
        return false;
    }
    return true;
  };
  MutatorParked.wait(Guard, AllParked);
  for (const std::unique_ptr<MutatorThread> &Thread : Threads)
    if (Thread.get() != Self)
      ++Result.MutatorsStopped;
  Result.Nanos = nowNanos() - Begin;
  Handshakes.fetch_add(1, std::memory_order_relaxed);
  return Result;
}

void ThreadRegistry::resumeTheWorld() {
  std::lock_guard<std::mutex> Guard(Lock);
  StopFlag.store(false, std::memory_order_release);
  WorldResumed.notify_all();
}

} // namespace cgc
