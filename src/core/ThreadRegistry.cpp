//===- core/ThreadRegistry.cpp - Mutator threads and safepoints ----------===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//

#include "core/ThreadRegistry.h"
#include "heap/ThreadCache.h"
#include "support/FaultInjection.h"
#include <algorithm>
#include <chrono>
#include <pthread.h>

namespace cgc {

// The async-signal-safe suspend handler cannot include this header
// (support must not depend on core), so it publishes raw state values
// that must stay in lockstep with the enum.
static_assert(static_cast<uint32_t>(MutatorState::Running) ==
                  suspend::RunningState,
              "suspend handler state constants drifted");
static_assert(static_cast<uint32_t>(MutatorState::SignalSuspended) ==
                  suspend::SignalSuspendedState,
              "suspend handler state constants drifted");

namespace {

// initial-exec TLS: the general-dynamic model's first per-thread access
// runs __tls_get_addr, which may realloc the thread's DTV.  When the
// collector is a preloaded shared object that realloc re-enters the
// interposed allocator mid-registration; initial-exec accesses never
// allocate.
#if defined(__GNUC__)
#define CGC_CORE_TLS __attribute__((tls_model("initial-exec")))
#else
#define CGC_CORE_TLS
#endif

thread_local MutatorThread *CurrentMutator CGC_CORE_TLS = nullptr;

uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

MutatorThread *ThreadRegistry::current() { return CurrentMutator; }

const void *ThreadRegistry::currentStackBase() {
#if defined(__linux__)
  pthread_attr_t Attr;
  if (pthread_getattr_np(pthread_self(), &Attr) == 0) {
    void *Addr = nullptr;
    size_t Size = 0;
    int Rc = pthread_attr_getstack(&Attr, &Addr, &Size);
    pthread_attr_destroy(&Attr);
    if (Rc == 0 && Addr != nullptr)
      return static_cast<const unsigned char *>(Addr) + Size;
  }
#endif
  // Fallback: an address in the caller's frame.  Frames entered after
  // registration sit below it on a downward-growing stack, so the
  // scannable range still covers every later local.
  volatile char Probe = 0;
  return const_cast<const char *>(&Probe);
}

MutatorThread *ThreadRegistry::registerThread(const void *StackBase,
                                              unsigned MaxThreads) {
  CGC_CHECK(CurrentMutator == nullptr,
            "thread registered with a collector twice");
  std::lock_guard<std::mutex> Guard(Lock);
  // The caller holds the heap lock, so no handshake is in flight; a
  // full registry is the only refusal.
  if (MaxThreads != 0 && Threads.size() >= MaxThreads)
    return nullptr;
  auto Thread = std::make_unique<MutatorThread>();
  Thread->Id = NextId++;
  Thread->StackBase = StackBase;
  Thread->StackTop.store(StackBase, std::memory_order_release);
  // Wire the suspension slot before the record becomes visible to the
  // watchdog: the handler reads these through the thread_local slot.
  Thread->Suspend.State = &Thread->State;
  Thread->Suspend.StackTop = &Thread->StackTop;
  Thread->Suspend.Handle = pthread_self();
  MutatorThread *Raw = Thread.get();
  Threads.push_back(std::move(Thread));
  Count.store(Threads.size(), std::memory_order_release);
  LifetimeRegistrations.fetch_add(1, std::memory_order_relaxed);
  CurrentMutator = Raw;
  suspend::setCurrentSlot(&Raw->Suspend);
  if (WatchdogDeadlineNanos != 0 && WatchdogSignal >= 0)
    suspend::unblockInCurrentThread(WatchdogSignal);
  return Raw;
}

void ThreadRegistry::unregisterThread(MutatorThread *Thread) {
  CGC_CHECK(Thread != nullptr && Thread == CurrentMutator,
            "unregister from a thread that is not registered");
  std::lock_guard<std::mutex> Guard(Lock);
  for (size_t I = 0, E = Threads.size(); I != E; ++I) {
    if (Threads[I].get() != Thread)
      continue;
    suspend::setCurrentSlot(nullptr);
    Threads.erase(Threads.begin() + static_cast<ptrdiff_t>(I));
    Count.store(Threads.size(), std::memory_order_release);
    CurrentMutator = nullptr;
    return;
  }
  CGC_CHECK(false, "thread record not found in registry");
}

void ThreadRegistry::publishScanState(MutatorThread *Self) {
  // Flush callee-saved registers into the record's jmp_buf (the classic
  // uncooperative-environment technique; see MachineStack) and publish
  // an address within the current frame as the conservative low bound
  // of the live stack.  The park/blocked frames sit below every mutator
  // frame, so [StackTop, StackBase) covers all live locals.
  setjmp(Self->Registers);
  volatile char Probe = 0;
  Self->StackTop.store(const_cast<const char *>(&Probe),
                       std::memory_order_release);
}

void ThreadRegistry::parkAtSafepoint(MutatorThread *Self) {
  // Deterministic wedged-mutator site: the thread behaves as if it
  // never saw the poll, which is exactly what the watchdog's
  // escalation ladder exists to survive.  Only reached while a stop is
  // actually requested (safepoint() gates on stopRequested).
  if (CGC_INJECT_FAULT(WedgedMutator))
    return;
  publishScanState(Self);
  // Leave Running *before* touching the registry lock: the watchdog's
  // suspend handler parks any Running thread it interrupts, and a
  // thread parked in sigsuspend while holding this lock would wedge
  // the watchdog itself.  In a stopped state the handler only acks.
  Self->State.store(static_cast<uint32_t>(MutatorState::AtSafepoint),
                    std::memory_order_release);
  std::unique_lock<std::mutex> Guard(Lock);
  if (!StopFlag.load(std::memory_order_acquire)) {
    // Raced with resume; never parked.
    Self->State.store(static_cast<uint32_t>(MutatorState::Running),
                      std::memory_order_release);
    return;
  }
  Self->SafepointsTaken.fetch_add(1, std::memory_order_relaxed);
  SafepointParks.fetch_add(1, std::memory_order_relaxed);
  MutatorParked.notify_all();
  WorldResumed.wait(Guard,
                    [&] { return !StopFlag.load(std::memory_order_acquire); });
  Self->State.store(static_cast<uint32_t>(MutatorState::Running),
                    std::memory_order_release);
}

void ThreadRegistry::beginBlocked(MutatorThread *Self) {
  publishScanState(Self);
  // As in parkAtSafepoint: enter the stopped state before taking the
  // registry lock, so a suspend signal landing here finds a thread
  // that only needs an ack, never one to park while holding the lock.
  Self->State.store(static_cast<uint32_t>(MutatorState::BlockedOnHeap),
                    std::memory_order_release);
  std::lock_guard<std::mutex> Guard(Lock);
  MutatorParked.notify_all();
}

void ThreadRegistry::endBlocked(MutatorThread *Self) {
  // The caller acquired the heap lock, and StopRequested is only ever
  // raised while that lock is held — so no stop is in flight and the
  // transition back to Running cannot be misread as a missed park.
  Self->State.store(static_cast<uint32_t>(MutatorState::Running),
                    std::memory_order_release);
}

ThreadRegistry::HandshakeResult
ThreadRegistry::stopTheWorld(const MutatorThread *Self) {
  HandshakeResult Result;
  const uint64_t Begin = nowNanos();
  std::unique_lock<std::mutex> Guard(Lock);
  // Preallocate the timeout trace now, while every mutator is still
  // running free: once the signal rung has suspended a thread at an
  // arbitrary instruction — possibly inside libc malloc, holding an
  // arena lock — the collector must not allocate from the system heap
  // (the bdwgc no-malloc-while-stopped rule), or the push_back below
  // could deadlock the whole handshake.
  if (WatchdogDeadlineNanos != 0)
    Result.Trace.reserve(Threads.size());
  StopFlag.store(true, std::memory_order_release);
  auto AllParked = [&] {
    for (const std::unique_ptr<MutatorThread> &Thread : Threads) {
      if (Thread.get() == Self)
        continue;
      if (Thread->state() == MutatorState::Running)
        return false;
    }
    return true;
  };
  if (WatchdogDeadlineNanos == 0) {
    // No watchdog: the pre-hardening unbounded cooperative wait,
    // bit-identically.
    MutatorParked.wait(Guard, AllParked);
  } else {
    const uint64_t WarnAt = Begin + WatchdogDeadlineNanos / 4;
    const uint64_t SignalAt = Begin + WatchdogDeadlineNanos / 2;
    const uint64_t FinalAt = Begin + WatchdogDeadlineNanos;
    bool Warned = false;
    // Poll interval once the signal rung is live; doubles up to 16 ms
    // so re-sends against a blocked delivery back off.
    uint64_t PollNanos = 1000 * 1000;
    while (!AllParked()) {
      uint64_t Now = nowNanos();
      if (Now >= FinalAt)
        break;
      uint64_t WakeAt;
      if (Now < WarnAt)
        WakeAt = WarnAt;
      else if (Now < SignalAt)
        WakeAt = SignalAt;
      else
        WakeAt = std::min(FinalAt, Now + PollNanos);
      // wait_for releases the registry lock, so cooperative threads
      // keep parking (and handlers never need the lock at all).
      MutatorParked.wait_for(Guard, std::chrono::nanoseconds(WakeAt - Now),
                             AllParked);
      if (AllParked())
        break;
      Now = nowNanos();
      if (!Warned && Now >= WarnAt) {
        Warned = true;
        Result.Rung = std::max(Result.Rung, 1u);
        WarnRungs.fetch_add(1, std::memory_order_relaxed);
        if (StallWarn)
          for (const std::unique_ptr<MutatorThread> &Thread : Threads)
            if (Thread.get() != Self &&
                Thread->state() == MutatorState::Running)
              StallWarn(StallWarnCtx, Thread->Id,
                        Thread->State.load(std::memory_order_acquire),
                        Now - Begin);
      }
      if (Now >= SignalAt && WatchdogSignal >= 0) {
        if (Result.Rung < 2) {
          Result.Rung = 2;
          SignalRungs.fetch_add(1, std::memory_order_relaxed);
        }
        // Consume handler acks (the semaphore side of the protocol);
        // the states themselves are re-read below and by AllParked.
        suspend::drainAcks();
        for (const std::unique_ptr<MutatorThread> &Thread : Threads) {
          if (Thread.get() == Self ||
              Thread->state() != MutatorState::Running)
            continue;
          if (Thread->Suspend.Pending.load(std::memory_order_acquire)) {
            // A previous send has not been answered: retry.
            ++Result.SignalSendRetries;
            SignalSendRetries.fetch_add(1, std::memory_order_relaxed);
          }
          suspend::sendSuspend(Thread->Suspend, WatchdogSignal);
        }
        if (PollNanos < 16u * 1000 * 1000)
          PollNanos *= 2;
      }
    }
    if (!AllParked()) {
      Result.TimedOut = true;
      Result.Rung = 3;
      for (const std::unique_ptr<MutatorThread> &Thread : Threads) {
        if (Thread.get() == Self)
          continue;
        GcHandshakeTraceEntry Entry;
        Entry.ThreadId = Thread->Id;
        Entry.State = Thread->State.load(std::memory_order_acquire);
        Entry.SafepointsTaken =
            Thread->SafepointsTaken.load(std::memory_order_relaxed);
        Entry.SignalAttempts =
            Thread->Suspend.SignalAttempts.load(std::memory_order_relaxed);
        Entry.SignalSuspended =
            Entry.State ==
            static_cast<uint32_t>(MutatorState::SignalSuspended);
        Result.Trace.push_back(Entry);
      }
    }
  }
  for (const std::unique_ptr<MutatorThread> &Thread : Threads) {
    if (Thread.get() == Self)
      continue;
    const MutatorState State = Thread->state();
    if (!Result.TimedOut || State != MutatorState::Running)
      ++Result.MutatorsStopped;
    if (State == MutatorState::SignalSuspended)
      ++Result.SignalSuspended;
  }
  Result.Nanos = nowNanos() - Begin;
  if (Result.SignalSuspended != 0)
    SignalSuspensions.fetch_add(Result.SignalSuspended,
                                std::memory_order_relaxed);
  if (Result.TimedOut) {
    HandshakeTimeouts.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Handshakes counts completed rendezvous only, so "handshakes ==
    // threaded collections" stays true for crash/report consumers.
    Handshakes.fetch_add(1, std::memory_order_relaxed);
    TotalStopNanos.fetch_add(Result.Nanos, std::memory_order_relaxed);
    if (Result.Nanos > MaxStopNanos.load(std::memory_order_relaxed))
      MaxStopNanos.store(Result.Nanos, std::memory_order_relaxed);
  }
  return Result;
}

void ThreadRegistry::resumeTheWorld() {
  // Under the registry lock do only the cheap, non-blocking work:
  // clear the stop flag and every Pending bit (the park loop's exit
  // condition) and wake the cooperatively parked threads.  The
  // signal-suspended threads' send-and-confirm loops run after the
  // lock is dropped — resumeThread retries with nanosleep backoff for
  // up to tens of milliseconds per slow-to-schedule thread, and
  // holding the lock through that would block parking mutators and
  // registration far past the measured stop time.
  {
    std::lock_guard<std::mutex> Guard(Lock);
    StopFlag.store(false, std::memory_order_release);
    for (const std::unique_ptr<MutatorThread> &Thread : Threads) {
      suspend::SuspendSlot &Slot = Thread->Suspend;
      if (Slot.Pending.load(std::memory_order_acquire))
        Slot.Pending.store(false, std::memory_order_release);
      Slot.SignalAttempts.store(0, std::memory_order_relaxed);
    }
    WorldResumed.notify_all();
  }
  // Safe without the registry lock: the caller holds the heap lock,
  // which serializes registration and unregistration, so the record
  // set is stable; state transitions are lock-free atomics; and a
  // signal-suspended thread cannot unregister (and free its record)
  // until it resumes and then acquires the heap lock we still hold.
  for (const std::unique_ptr<MutatorThread> &Thread : Threads)
    if (Thread->state() == MutatorState::SignalSuspended)
      suspend::resumeThread(Thread->Suspend);
  suspend::drainAcks();
}

void ThreadRegistry::configureWatchdog(uint64_t DeadlineNanos,
                                       int SuspendSignal, StallWarnFn Warn,
                                       void *WarnCtx) {
  std::lock_guard<std::mutex> Guard(Lock);
  WatchdogDeadlineNanos = DeadlineNanos;
  WatchdogSignal = SuspendSignal;
  StallWarn = Warn;
  StallWarnCtx = WarnCtx;
}

void ThreadRegistry::rebuildAfterFork(
    MutatorThread *Survivor,
    const std::function<void(MutatorThread &)> &OnDrop) {
  std::lock_guard<std::mutex> Guard(Lock);
  std::vector<std::unique_ptr<MutatorThread>> Kept;
  for (std::unique_ptr<MutatorThread> &Thread : Threads) {
    if (Thread.get() == Survivor) {
      Thread->Suspend.Pending.store(false, std::memory_order_relaxed);
      Thread->Suspend.SignalAttempts.store(0, std::memory_order_relaxed);
      Thread->State.store(static_cast<uint32_t>(MutatorState::Running),
                          std::memory_order_release);
      Kept.push_back(std::move(Thread));
    } else if (OnDrop) {
      OnDrop(*Thread);
    }
  }
  Threads = std::move(Kept);
  Count.store(Threads.size(), std::memory_order_release);
  StopFlag.store(false, std::memory_order_release);
  suspend::reinitAfterFork();
}

} // namespace cgc
