//===- core/Marker.h - Conservative marking with blacklisting --*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The conservative mark phase, structured exactly as the paper's
/// Figure 2:
///
/// \code
///   mark(p) {
///     if p is not a valid object address
///       if p is in the vicinity of the heap
///         add p to blacklist            // the bold-face additions
///       return
///     if p is marked return
///     set mark bit for p
///     for each field q in the object referenced by p  mark(q)
///   }
/// \endcode
///
/// Recursion is replaced by an explicit mark stack.  Validity checking
/// honors the configured interior-pointer policy and scan alignments;
/// the "vicinity of the heap" test is membership in the potential heap
/// arena, and as the paper notes it "overlaps substantially with the
/// immediately preceding pointer validity check" — both start from the
/// same page-map probe.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_CORE_MARKER_H
#define CGC_CORE_MARKER_H

#include "core/Blacklist.h"
#include "core/GcConfig.h"
#include "core/GcStats.h"
#include "heap/ObjectHeap.h"
#include "roots/RootSet.h"
#include <vector>

namespace cgc {

class Marker {
public:
  Marker(VirtualArena &Arena, PageAllocator &Pages, PageMap &Map,
         BlockTable &Blocks, ObjectHeap &Heap, Blacklist &BlacklistImpl,
         const GcConfig &Config);

  /// Runs a full mark phase: clears marks, scans \p Roots and all
  /// uncollectable objects, and transitively marks the reachable heap.
  /// Phase statistics accumulate into \p Stats.
  void runMark(const RootSet &Roots, CollectionStats &Stats);

  /// Marks a single candidate and drains the resulting work (used by
  /// finalization to resurrect objects, and by tests).
  void markFromCandidate(WindowOffset Candidate, CollectionStats &Stats);

  /// Resolves \p Candidate under the configured policies without
  /// marking.  Exposed for the misidentification-rate experiments.
  ObjectRef resolveCandidate(WindowOffset Candidate) const;

  /// Registers an additional valid interior displacement for the
  /// BaseOnly policy (tagged-pointer language implementations store
  /// base + tag).  Displacement 0 is always valid.
  void registerDisplacement(uint32_t Displacement);

private:
  struct WorkItem {
    WindowOffset Begin;
    uint32_t Bytes;
    /// Layout of the pushed object; 0 = conservative scan.
    uint32_t LayoutId;
  };

  /// Figure 2's mark(p): validity test, blacklist note, mark, push.
  void considerCandidate(WindowOffset Candidate, ScanOrigin Origin,
                         CollectionStats &Stats);

  void scanRootRange(const RootRange &Range, const unsigned char *Begin,
                     const unsigned char *End, CollectionStats &Stats);
  void scanHeapRange(WindowOffset Begin, uint32_t Bytes,
                     CollectionStats &Stats);
  static ScanOrigin originOf(RootSource Source);
  void scanTypedObject(WindowOffset Begin, uint32_t Bytes,
                       uint32_t LayoutId, CollectionStats &Stats);
  void markUncollectableObjects(CollectionStats &Stats);
  void drainMarkStack(CollectionStats &Stats);

  VirtualArena &Arena;
  PageAllocator &Pages;
  PageMap &Map;
  BlockTable &Blocks;
  ObjectHeap &Heap;
  Blacklist &BlacklistImpl;
  const GcConfig &Config;
  std::vector<WorkItem> MarkStack;
  /// Sorted extra displacements valid under BaseOnly (0 is implicit).
  std::vector<uint32_t> Displacements;
};

} // namespace cgc

#endif // CGC_CORE_MARKER_H
