//===- core/Marker.h - Conservative marking with blacklisting --*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The conservative mark phase, structured exactly as the paper's
/// Figure 2:
///
/// \code
///   mark(p) {
///     if p is not a valid object address
///       if p is in the vicinity of the heap
///         add p to blacklist            // the bold-face additions
///       return
///     if p is marked return
///     set mark bit for p
///     for each field q in the object referenced by p  mark(q)
///   }
/// \endcode
///
/// Recursion is replaced by explicit mark stacks.  The Marker is the
/// facade the collector's phase pipeline drives:
///
///   * runRootScan — the RootScan phase: clear marks, mark
///     uncollectable objects, scan every root span.  Objects reached
///     here are marked and their scan work is *seeded*, not drained.
///   * runMarkPhase — the Mark phase: drain the seeds to the full
///     reachability closure, on GcConfig::MarkThreads workers (see
///     core/MarkContext.h for the work-stealing machinery; 1 worker is
///     the paper's exact sequential marker).
///
/// Validity checking honors the configured interior-pointer policy and
/// scan alignments; the "vicinity of the heap" test is membership in
/// the potential heap arena, and as the paper notes it "overlaps
/// substantially with the immediately preceding pointer validity
/// check" — both start from the same page-map probe.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_CORE_MARKER_H
#define CGC_CORE_MARKER_H

#include "core/Blacklist.h"
#include "core/GcConfig.h"
#include "core/GcStats.h"
#include "core/MarkContext.h"
#include "heap/ObjectHeap.h"
#include "roots/RootSet.h"
#include <vector>

namespace cgc {

class Marker {
public:
  Marker(VirtualArena &Arena, PageAllocator &Pages, PageMap &Map,
         BlockTable &Blocks, ObjectHeap &Heap, Blacklist &BlacklistImpl,
         GcWorkerPool &Pool, const GcConfig &Config);

  /// RootScan phase: clears marks, marks uncollectable objects, scans
  /// \p Roots, and seeds the mark queue with everything reached.
  /// Phase statistics accumulate into \p Stats.
  void runRootScan(const RootSet &Roots, CollectionStats &Stats);

  /// Mark phase: drains the seeds left by runRootScan to the full
  /// transitive closure on GcConfig::MarkThreads workers.  Records the
  /// worker count in \p Stats.
  void runMarkPhase(CollectionStats &Stats);

  /// Runs a full mark (runRootScan + runMarkPhase).  Kept for callers
  /// outside the phase pipeline (tests, measureLiveness).
  void runMark(const RootSet &Roots, CollectionStats &Stats);

  /// Marks a single candidate and drains the resulting work
  /// sequentially (used by finalization to resurrect objects, and by
  /// tests).
  void markFromCandidate(WindowOffset Candidate, CollectionStats &Stats);

  /// Resolves \p Candidate under the configured policies without
  /// marking.  Exposed for the misidentification-rate experiments.
  ObjectRef resolveCandidate(WindowOffset Candidate) const {
    return Context.resolveCandidate(Candidate);
  }

  /// Registers an additional valid interior displacement for the
  /// BaseOnly policy (tagged-pointer language implementations store
  /// base + tag).  Displacement 0 is always valid.
  void registerDisplacement(uint32_t Displacement) {
    Context.registerDisplacement(Displacement);
  }

private:
  void markUncollectableObjects(CollectionStats &Stats);

  BlockTable &Blocks;
  ObjectHeap &Heap;
  /// Borrowed for the parallel root-scan gather (the Mark phase's
  /// workers come from the same pool, via Context).
  GcWorkerPool &Pool;
  const GcConfig &Config;
  MarkContext Context;
  /// Mark work seeded by the RootScan phase, consumed by the Mark
  /// phase.  Doubles as the sequential drain stack.
  std::vector<MarkWorkItem> Seeds;
};

} // namespace cgc

#endif // CGC_CORE_MARKER_H
