//===- core/SweepContext.cpp - Parallel sweep phase ----------------------===//

#include "core/SweepContext.h"
#include <algorithm>

using namespace cgc;

namespace {
/// One planned block's body output, filled in by whichever worker swept
/// it and consumed by the sequential merge.
struct SweepOutcome {
  uint64_t BytesFreed = 0;
  SweepDisposition Disposition = SweepDisposition::Keep;
};
} // namespace

SweepResult SweepContext::run(CollectionStats &Stats) {
  unsigned Workers = std::clamp(Config.SweepThreads, 1u, MaxWorkers);

  SweepResult Result;
  ObjectHeap::SweepPlan Plan = Heap.beginSweep(Result);

  // Negotiate the worker count only when the parallel path would run:
  // a failed thread spawn degrades the sweep (worst case to the
  // sequential path below), never aborts it.
  if (Workers > 1 && Plan.SmallBlocks.size() >= 2)
    Workers = Pool.ensureWorkers(Workers);
  Stats.SweepWorkers = Workers;

  // Too little work to shard (or sequential configured): sweep inline.
  // This is byte-for-byte ObjectHeap::sweep().
  if (Workers == 1 || Plan.SmallBlocks.size() < 2) {
    for (BlockId Id : Plan.SmallBlocks)
      Heap.sweepSmallBlock(Id, Result);
    Heap.finishSweep(Plan, Result);
    return Result;
  }

  // Shard the plan stride-wise across the pool.  Worker W sweeps plan
  // entries W, W+N, W+2N, ...: bodies touch only their own block plus
  // the worker's private Result and the block's preassigned outcome
  // slot, so no two workers ever write the same location.
  std::vector<SweepResult> WorkerResults(Workers);
  std::vector<SweepOutcome> Outcomes(Plan.SmallBlocks.size());
  BlockTable &Blocks = Heap.blockTable();
  Pool.runOn(Workers, [&](unsigned WorkerId) {
    SweepResult &Mine = WorkerResults[WorkerId];
    for (size_t I = WorkerId; I < Plan.SmallBlocks.size(); I += Workers) {
      SweepOutcome &Out = Outcomes[I];
      Out.BytesFreed = Heap.sweepSmallBlockBody(
          Blocks.get(Plan.SmallBlocks[I]), Mine, Out.Disposition);
    }
  });

  // Merge sequentially in plan order — the order the sequential sweep
  // releases and re-lists blocks — then fold the per-worker counters.
  for (size_t I = 0; I != Plan.SmallBlocks.size(); ++I)
    Heap.applySweepDisposition(Plan.SmallBlocks[I], Outcomes[I].Disposition,
                               Outcomes[I].BytesFreed);
  for (const SweepResult &WorkerResult : WorkerResults)
    Result.add(WorkerResult);

  Heap.finishSweep(Plan, Result);
  return Result;
}
