//===- core/MarkContext.cpp - Shared state for (parallel) marking ---------===//

#include "core/MarkContext.h"
#include "support/FaultInjection.h"
#include "support/MathExtras.h"
#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

using namespace cgc;

namespace {

uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint32_t load32(const unsigned char *P, bool BigEndian) {
  uint32_t Value;
  std::memcpy(&Value, P, sizeof(Value));
  if (BigEndian)
    Value = __builtin_bswap32(Value);
  return Value;
}

uint64_t load64(const unsigned char *P) {
  uint64_t Value;
  std::memcpy(&Value, P, sizeof(Value));
  return Value;
}

ScanOrigin originOf(RootSource Source) {
  switch (Source) {
  case RootSource::StaticData:
    return ScanOrigin::StaticData;
  case RootSource::Stack:
    return ScanOrigin::Stack;
  case RootSource::Registers:
    return ScanOrigin::Registers;
  case RootSource::Client:
    return ScanOrigin::Client;
  }
  return ScanOrigin::Client;
}

/// Private-stack size at which a parallel worker exposes work, and the
/// batch size it exposes/steals.  Exposing the oldest half keeps the
/// hot (deepest) end private while thieves receive the widest subtrees.
constexpr size_t ExposeThreshold = 64;
constexpr size_t ExposeBatch = ExposeThreshold / 2;

} // namespace

//===----------------------------------------------------------------------===//
// MarkContext
//===----------------------------------------------------------------------===//

MarkContext::MarkContext(VirtualArena &Arena, PageAllocator &Pages,
                         PageMap &Map, BlockTable &Blocks, ObjectHeap &Heap,
                         Blacklist &BlacklistImpl, GcWorkerPool &Pool,
                         const GcConfig &Config)
    : Arena(Arena), Pages(Pages), Map(Map), Blocks(Blocks), Heap(Heap),
      BlacklistImpl(BlacklistImpl), Pool(Pool), Config(Config) {}

MarkContext::~MarkContext() = default;

ObjectRef MarkContext::resolveCandidate(WindowOffset Candidate) const {
  BlockId Id = Map.blockAt(pageOfOffset(Candidate));
  if (Id == InvalidBlockId)
    return {};
  const BlockDescriptor &Block = Blocks.get(Id);
  int32_t Slot = Block.slotContaining(Candidate);
  if (Slot < 0)
    return {};
  uint32_t SlotIdx = static_cast<uint32_t>(Slot);
  WindowOffset Base = Block.slotOffset(SlotIdx);
  // Per-object override first (observation 7's remedy): pointers past
  // the first page never retain an ignore-off-page object.
  if (Block.IgnoreOffPage && Candidate - Base >= PageSize)
    return {};
  switch (Config.Interior) {
  case InteriorPolicy::All:
    break;
  case InteriorPolicy::BaseOnly: {
    if (Candidate != Base &&
        !std::binary_search(Displacements.begin(), Displacements.end(),
                            static_cast<uint32_t>(Candidate - Base)))
      return {};
    break;
  }
  case InteriorPolicy::FirstPage:
    if (Candidate - Base >= PageSize)
      return {};
    break;
  }
  if (Config.PreciseFreeSlotDetection && !Block.AllocBits.test(SlotIdx))
    return {};
  return {Id, SlotIdx};
}

void MarkContext::gatherRootSpan(const RootRange &Range,
                                 const unsigned char *Begin,
                                 const unsigned char *End,
                                 RootSpanGather &Out) const {
  // Mirror of MarkWorker::scanRootSpan's decode loops, minus every
  // side effect: the membership test reads only the arena geometry, so
  // N workers can gather N spans at once.
  Out.BytesScanned += static_cast<uint64_t>(End - Begin);
  unsigned Stride = Config.RootScanAlignment;
  CGC_CHECK(Stride >= 1 && Stride <= 8, "bad root scan alignment");

  if (Range.Encoding == RootEncoding::Native64) {
    if (static_cast<size_t>(End - Begin) < sizeof(uint64_t))
      return;
    for (const unsigned char *P = Begin; P + sizeof(uint64_t) <= End;
         P += Stride) {
      ++Out.CandidatesExamined;
      uint64_t Word = load64(P);
      Address Addr = static_cast<Address>(Word);
      if (!Arena.contains(Addr))
        continue;
      Out.Candidates.push_back(Arena.offsetOf(Addr));
    }
    return;
  }

  bool BigEndian = Range.Encoding == RootEncoding::Window32BE;
  if (static_cast<size_t>(End - Begin) < sizeof(uint32_t))
    return;
  for (const unsigned char *P = Begin; P + sizeof(uint32_t) <= End;
       P += Stride) {
    ++Out.CandidatesExamined;
    WindowOffset Offset = load32(P, BigEndian);
    if (!Arena.containsOffset(Offset))
      continue;
    Out.Candidates.push_back(Offset);
  }
}

void MarkContext::registerDisplacement(uint32_t Displacement) {
  auto It = std::lower_bound(Displacements.begin(), Displacements.end(),
                             Displacement);
  if (It == Displacements.end() || *It != Displacement)
    Displacements.insert(It, Displacement);
}

void MarkContext::mark(std::vector<MarkWorkItem> &Seeds, unsigned Workers,
                       CollectionStats &Stats) {
  Workers = std::clamp(Workers, 1u, MaxWorkers);
  // Negotiate the worker count only when the parallel path would
  // actually run: a failed spawn degrades the phase, never aborts it,
  // and the sequential configurations still never touch the pool.
  if (Workers > 1 && Seeds.size() >= 2)
    Workers = Pool.ensureWorkers(Workers);
  Stats.MarkWorkers = Workers;
  if (Workers == 1 || Seeds.size() < 2) {
    // The paper's marker: one LIFO stack, drained in place.
    MarkWorker Worker(*this, Stats, &Seeds);
    Worker.drainSequential(Seeds);
    recoverFromOverflow(Stats);
    return;
  }

  while (Slots.size() < Workers)
    Slots.push_back(std::make_unique<StealSlot>());
  for (unsigned I = 0; I != Workers; ++I)
    Slots[I]->Items.clear();

  // Per-worker scan counters; merged below so the shared record is
  // never written concurrently.
  std::vector<CollectionStats> WorkerStats(Workers);
  std::vector<std::unique_ptr<MarkWorker>> WorkersVec;
  WorkersVec.reserve(Workers);
  for (unsigned I = 0; I != Workers; ++I)
    WorkersVec.push_back(
        std::make_unique<MarkWorker>(*this, WorkerStats[I], I, Workers));

  // Round-robin seeding: root-scan candidates arrive in scan order, so
  // neighboring seeds (often the same structure) spread across workers.
  for (size_t I = 0; I != Seeds.size(); ++I)
    WorkersVec[I % Workers]->seed(Seeds[I]);
  InFlight.store(Seeds.size(), std::memory_order_relaxed);
  Seeds.clear();

  // Hand the drain to the persistent pool: worker 0 is this thread,
  // the rest are parked pool threads (spawned once, ever).
  Pool.runOn(Workers,
             [&WorkersVec](unsigned Id) { WorkersVec[Id]->runParallel(); });

  // Sequential epilogue: replay buffered blacklist candidates in worker
  // order, then fold the per-worker counters into the cycle record.
  for (unsigned I = 0; I != Workers; ++I)
    WorkersVec[I]->flushBlacklist();
  for (unsigned I = 0; I != Workers; ++I)
    Stats.addScanCounters(WorkerStats[I]);
  recoverFromOverflow(Stats);
}

void MarkContext::recoverFromOverflow(CollectionStats &Stats) {
  if (!Overflowed.load(std::memory_order_acquire))
    return;
  // A dropped push always targets an object whose mark bit was just
  // set, so the lost work is recoverable from the mark bitmap: rescan
  // every marked pointer-bearing object and repeat until no pass marks
  // anything new.  This is the classic overflow recovery; it converges
  // even while the fault stays armed, because a pass that marks
  // nothing new also pushes (and therefore drops) nothing.
  uint64_t Before;
  do {
    Overflowed.store(false, std::memory_order_relaxed);
    Before = Stats.ObjectsMarked;
    std::vector<MarkWorkItem> Stack;
    Blocks.forEach([&](BlockId, BlockDescriptor &Block) {
      if (kindIsPointerFree(Block.Kind))
        return;
      for (uint32_t Slot = 0; Slot != Block.ObjectCount; ++Slot)
        if (Block.MarkBits.test(Slot))
          Stack.push_back({Block.slotOffset(Slot), Block.ObjectSize,
                           Block.LayoutId});
    });
    MarkWorker Worker(*this, Stats, &Stack);
    Worker.drainSequential(Stack);
  } while (Stats.ObjectsMarked != Before);
}

//===----------------------------------------------------------------------===//
// MarkWorker
//===----------------------------------------------------------------------===//

MarkWorker::MarkWorker(MarkContext &Ctx, CollectionStats &Stats,
                       std::vector<MarkWorkItem> *ExternalStack)
    : Ctx(Ctx), Stats(Stats), ExternalStack(ExternalStack) {}

MarkWorker::MarkWorker(MarkContext &Ctx, CollectionStats &Stats, unsigned Id,
                       unsigned NumWorkers)
    : Ctx(Ctx), Stats(Stats), Id(Id), NumWorkers(NumWorkers),
      Parallel(true) {}

void MarkWorker::push(const MarkWorkItem &Item) {
  if (CGC_INJECT_FAULT(MarkStackOverflow)) {
    // Simulated mark-stack overflow: drop the item (its object is
    // already marked) and flag the context so mark() rebuilds the
    // closure from the mark bitmap afterwards.  Sits before the
    // InFlight bump so parallel termination detection stays balanced.
    ++Stats.MarkStackOverflows;
    Ctx.Overflowed.store(true, std::memory_order_release);
    return;
  }
  if (!Parallel) {
    ExternalStack->push_back(Item);
    return;
  }
  Ctx.InFlight.fetch_add(1, std::memory_order_acq_rel);
  Local.push_back(Item);
  if (Local.size() >= ExposeThreshold)
    exposeForStealing();
}

void MarkWorker::seed(const MarkWorkItem &Item) { Local.push_back(Item); }

void MarkWorker::considerCandidate(WindowOffset Candidate,
                                   ScanOrigin Origin, bool PreciseWord) {
  // Figure 2, line by line.  "if p is not a valid object address":
  ObjectRef Ref = Ctx.resolveCandidate(Candidate);
  if (!Ref.valid()) {
    // "if p is in the vicinity of the heap, add p to blacklist".  The
    // proximity test shares its page probe with the validity check.
    // A word the descriptor declared to be a pointer can't be a
    // misidentified integer: its failed resolution is stale or foreign
    // data, so it neither blacklists the page nor counts as a near
    // miss.
    if (PreciseWord)
      return;
    PageIndex Page = pageOfOffset(Candidate);
    if (Ctx.Pages.inPotentialHeap(Page)) {
      if (Parallel) {
        // The blacklist is single-threaded; buffer for the post-join
        // flush (timed there, preserving the footnote-3 measurement).
        BlacklistBuffer.push_back(Page);
      } else {
        uint64_t Start = nowNanos();
        Ctx.BlacklistImpl.noteCandidate(Page);
        Stats.BlacklistNanos += nowNanos() - Start;
      }
      ++Stats.NearMisses;
      ++Stats.NearMissesByOrigin[static_cast<unsigned>(Origin)];
    }
    return;
  }
  // "if p is marked return; set mark bit for p" — atomically, so N
  // workers racing on one object mark (and push) it exactly once.
  BlockDescriptor &Block = Ctx.Blocks.get(Ref.Block);
  if (Block.testAndSetMark(Ref.Slot))
    return;
  ++Stats.ObjectsMarked;
  Stats.BytesMarked += Block.ObjectSize;
  ++Stats.MarksByOrigin[static_cast<unsigned>(Origin)];
  // "for each field q ... mark(q)" — deferred to the mark stack, and
  // skipped entirely for objects declared pointer-free.
  if (!kindIsPointerFree(Block.Kind))
    push({Block.slotOffset(Ref.Slot), Block.ObjectSize, Block.LayoutId});
}

void MarkWorker::scanTypedObject(WindowOffset Begin, uint32_t Bytes,
                                 uint32_t LayoutId) {
  const TypeDescriptor &D = Ctx.Heap.layout(LayoutId);
  const unsigned char *Base =
      static_cast<const unsigned char *>(Ctx.Arena.pointerTo(Begin));
  // The slot can be larger than the type (size-class rounding); the
  // tail past the descriptor is never traced.
  uint32_t Words = std::min<uint32_t>(
      D.NumWords, Bytes / static_cast<uint32_t>(sizeof(uint64_t)));
  constexpr unsigned Precise =
      static_cast<unsigned>(DescriptorClass::Precise);
  for (uint32_t Word = D.findPointerWord(0); Word < Words;
       Word = D.findPointerWord(Word + 1)) {
    ++Stats.HeapWordsScanned;
    ++Stats.ScanWordsByClass[Precise];
    uint64_t Value = load64(Base + Word * sizeof(uint64_t));
    Address Addr = static_cast<Address>(Value);
    if (!Ctx.Arena.contains(Addr))
      continue;
    ++Stats.ScanCandidatesByClass[Precise];
    considerCandidate(Ctx.Arena.offsetOf(Addr), ScanOrigin::Heap,
                      /*PreciseWord=*/true);
  }
}

void MarkWorker::scanHeapRange(WindowOffset Begin, uint32_t Bytes) {
  if (Bytes < sizeof(uint64_t))
    return;
  const unsigned char *P =
      static_cast<const unsigned char *>(Ctx.Arena.pointerTo(Begin));
  const unsigned char *End = P + Bytes;
  unsigned Stride = Ctx.Config.HeapScanAlignment;
  CGC_CHECK(Stride >= 1 && Stride <= 8, "bad heap scan alignment");
  constexpr unsigned Cons =
      static_cast<unsigned>(DescriptorClass::Conservative);
  for (; P + sizeof(uint64_t) <= End; P += Stride) {
    ++Stats.HeapWordsScanned;
    ++Stats.ScanWordsByClass[Cons];
    uint64_t Word = load64(P);
    Address Addr = static_cast<Address>(Word);
    if (!Ctx.Arena.contains(Addr))
      continue;
    ++Stats.ScanCandidatesByClass[Cons];
    considerCandidate(Ctx.Arena.offsetOf(Addr), ScanOrigin::Heap);
  }
}

void MarkWorker::scanRootSpan(const RootRange &Range,
                              const unsigned char *Begin,
                              const unsigned char *End) {
  Stats.RootBytesScanned += static_cast<uint64_t>(End - Begin);
  unsigned Stride = Ctx.Config.RootScanAlignment;
  CGC_CHECK(Stride >= 1 && Stride <= 8, "bad root scan alignment");

  if (Range.Encoding == RootEncoding::Native64) {
    if (static_cast<size_t>(End - Begin) < sizeof(uint64_t))
      return;
    for (const unsigned char *P = Begin; P + sizeof(uint64_t) <= End;
         P += Stride) {
      ++Stats.RootCandidatesExamined;
      uint64_t Word = load64(P);
      Address Addr = static_cast<Address>(Word);
      if (!Ctx.Arena.contains(Addr))
        continue;
      WindowOffset Offset = Ctx.Arena.offsetOf(Addr);
      uint64_t Before = Stats.ObjectsMarked;
      considerCandidate(Offset, originOf(Range.Source));
      if (Stats.ObjectsMarked != Before)
        ++Stats.RootHits;
    }
    return;
  }

  // Window32: every 32-bit value is an offset into the window, exactly
  // as every 32-bit integer was an address on the paper's machines.
  bool BigEndian = Range.Encoding == RootEncoding::Window32BE;
  if (static_cast<size_t>(End - Begin) < sizeof(uint32_t))
    return;
  for (const unsigned char *P = Begin; P + sizeof(uint32_t) <= End;
       P += Stride) {
    ++Stats.RootCandidatesExamined;
    WindowOffset Offset = load32(P, BigEndian);
    if (!Ctx.Arena.containsOffset(Offset))
      continue;
    uint64_t Before = Stats.ObjectsMarked;
    considerCandidate(Offset, originOf(Range.Source));
    if (Stats.ObjectsMarked != Before)
      ++Stats.RootHits;
  }
}

void MarkWorker::replayRootCandidates(
    const RootRange &Range, const MarkContext::RootSpanGather &Gather) {
  Stats.RootBytesScanned += Gather.BytesScanned;
  Stats.RootCandidatesExamined += Gather.CandidatesExamined;
  for (WindowOffset Offset : Gather.Candidates) {
    uint64_t Before = Stats.ObjectsMarked;
    considerCandidate(Offset, originOf(Range.Source));
    if (Stats.ObjectsMarked != Before)
      ++Stats.RootHits;
  }
}

void MarkWorker::scanObject(const MarkWorkItem &Item) {
  if (Item.LayoutId != 0)
    scanTypedObject(Item.Begin, Item.Bytes, Item.LayoutId);
  else
    scanHeapRange(Item.Begin, Item.Bytes);
}

void MarkWorker::drainSequential(std::vector<MarkWorkItem> &Stack) {
  CGC_ASSERT(&Stack == ExternalStack, "draining a foreign stack");
  while (!Stack.empty()) {
    MarkWorkItem Item = Stack.back();
    Stack.pop_back();
    scanObject(Item);
  }
}

void MarkWorker::exposeForStealing() {
  MarkContext::StealSlot &Slot = *Ctx.Slots[Id];
  std::lock_guard<std::mutex> Guard(Slot.Lock);
  // Donate the oldest (widest) half; keep the hot end private.
  Slot.Items.insert(Slot.Items.end(), Local.begin(),
                    Local.begin() + ExposeBatch);
  Local.erase(Local.begin(), Local.begin() + ExposeBatch);
}

bool MarkWorker::takeSharedWork() {
  // Reclaim our own slot first (no contention in the common case)...
  {
    MarkContext::StealSlot &Own = *Ctx.Slots[Id];
    std::lock_guard<std::mutex> Guard(Own.Lock);
    if (!Own.Items.empty()) {
      Local.swap(Own.Items);
      return true;
    }
  }
  // ...then steal a batch from a victim, scanning the ring from our
  // right neighbor so thieves spread over victims.
  for (unsigned Step = 1; Step != NumWorkers; ++Step) {
    unsigned Victim = (Id + Step) % NumWorkers;
    MarkContext::StealSlot &Slot = *Ctx.Slots[Victim];
    std::unique_lock<std::mutex> Guard(Slot.Lock, std::try_to_lock);
    if (!Guard.owns_lock() || Slot.Items.empty())
      continue;
    size_t Take = std::min(Slot.Items.size(), ExposeBatch);
    Local.insert(Local.end(), Slot.Items.begin(),
                 Slot.Items.begin() + Take);
    Slot.Items.erase(Slot.Items.begin(), Slot.Items.begin() + Take);
    return true;
  }
  return false;
}

void MarkWorker::runParallel() {
  CGC_ASSERT(Parallel, "runParallel on a sequential worker");
  for (;;) {
    while (!Local.empty()) {
      MarkWorkItem Item = Local.back();
      Local.pop_back();
      scanObject(Item);
      Ctx.InFlight.fetch_sub(1, std::memory_order_acq_rel);
    }
    if (takeSharedWork())
      continue;
    if (Ctx.InFlight.load(std::memory_order_acquire) == 0)
      return;
    std::this_thread::yield();
  }
}

void MarkWorker::flushBlacklist() {
  if (BlacklistBuffer.empty())
    return;
  uint64_t Start = nowNanos();
  for (PageIndex Page : BlacklistBuffer)
    Ctx.BlacklistImpl.noteCandidate(Page);
  Stats.BlacklistNanos += nowNanos() - Start;
  BlacklistBuffer.clear();
}
