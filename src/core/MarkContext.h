//===- core/MarkContext.h - Shared state for (parallel) marking -*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The marking engine, split per the phase pipeline into:
///
///   * MarkContext — state shared by every mark worker: the heap views
///     (page map, block table, object heap), the candidate-resolution
///     policies (interior-pointer rules, displacements), the blacklist
///     feed, and the work-stealing queues.  During the Mark phase all
///     of this is read-only except the atomic mark bitmap and the
///     per-worker queues.
///
///   * MarkWorker — one tracer.  Each worker owns a private LIFO stack
///     (the paper's mark stack) plus a mutex-guarded steal slot; when
///     the private stack grows past a threshold the worker exposes its
///     oldest half for stealing, and when it runs dry it reclaims its
///     own slot or steals a batch from a victim's.  Oldest-first
///     stealing hands thieves the widest subtrees, the classic
///     breadth-steal/depth-run discipline.  Near-miss blacklist
///     candidates are buffered per worker and flushed sequentially
///     after the workers join (the Blacklist is single-threaded).
///
/// MarkContext is a pure marking algorithm: it owns no threads.  The
/// parallel path borrows the collector's persistent GcWorkerPool
/// (spawn-once, parked between phases), so short collection cycles pay
/// no thread-spawn cost.
///
/// Sequential marking (MarkThreads == 1) bypasses all of the above: the
/// single worker drains one external LIFO vector exactly as the seed
/// collector's drainMarkStack did, so paper experiments are untouched.
/// Either way the marked set is the reachability closure and every
/// CollectionStats counter is a sum over scanned words, so results are
/// identical for any worker count.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_CORE_MARKCONTEXT_H
#define CGC_CORE_MARKCONTEXT_H

#include "core/Blacklist.h"
#include "core/GcConfig.h"
#include "core/GcStats.h"
#include "core/GcWorkerPool.h"
#include "heap/ObjectHeap.h"
#include "roots/RootSet.h"
#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

namespace cgc {

/// One unit of tracing work: an object whose contents must be scanned.
struct MarkWorkItem {
  WindowOffset Begin;
  uint32_t Bytes;
  /// Layout of the pushed object; 0 = conservative scan.
  uint32_t LayoutId;
};

class MarkWorker;

class MarkContext {
public:
  /// Hard cap on mark workers (queue slots are preallocated lazily up
  /// to this).
  static constexpr unsigned MaxWorkers = GcWorkerPool::MaxWorkers;

  MarkContext(VirtualArena &Arena, PageAllocator &Pages, PageMap &Map,
              BlockTable &Blocks, ObjectHeap &Heap,
              Blacklist &BlacklistImpl, GcWorkerPool &Pool,
              const GcConfig &Config);
  ~MarkContext();

  /// Resolves \p Candidate under the configured policies without
  /// marking.  Exposed for the misidentification-rate experiments.
  /// Read-only; safe from any mark worker.
  ObjectRef resolveCandidate(WindowOffset Candidate) const;

  /// One root span's decoded candidates, produced by gatherRootSpan on
  /// any worker and consumed by MarkWorker::replayRootCandidates on the
  /// collecting thread.  Splitting the root scan into a read-only
  /// parallel gather and a sequential replay keeps the marked set, the
  /// blacklist, and every counter bit-identical for any
  /// GcConfig::RootScanThreads value.
  struct RootSpanGather {
    uint64_t BytesScanned = 0;
    uint64_t CandidatesExamined = 0;
    /// Arena offsets of words that passed the window-membership test,
    /// in span scan order.
    std::vector<WindowOffset> Candidates;
  };

  /// Decodes one root span per its encoding and scan alignment into
  /// \p Out.  Touches no shared mutable state: safe to run on many
  /// spans concurrently.
  void gatherRootSpan(const RootRange &Range, const unsigned char *Begin,
                      const unsigned char *End, RootSpanGather &Out) const;

  /// Registers an additional valid interior displacement for the
  /// BaseOnly policy.  Displacement 0 is always valid.  Not legal
  /// during a mark.
  void registerDisplacement(uint32_t Displacement);

  /// Transitively marks the heap from \p Seeds, which is consumed.
  /// \p Workers == 1 drains \p Seeds in place, LIFO — the paper's exact
  /// sequential marker; \p Workers > 1 (clamped to MaxWorkers) seeds
  /// that many MarkWorkers round-robin and runs them to quiescence on
  /// the persistent worker pool, with the caller's thread as worker 0.
  /// The count is negotiated down through GcWorkerPool::ensureWorkers
  /// when thread spawning fails, so marking always completes (worst
  /// case sequentially) with a bit-identical marked set.  Records the
  /// worker count actually used in Stats.MarkWorkers and accumulates
  /// scan counters into \p Stats.  Ends with recoverFromOverflow.
  void mark(std::vector<MarkWorkItem> &Seeds, unsigned Workers,
            CollectionStats &Stats);

  /// Rebuilds the reachability closure after mark-stack pushes were
  /// dropped (MarkStackOverflow fault injection): rescans every marked
  /// object in pointer-bearing blocks, sequentially, until no new
  /// objects get marked.  Dropped items always reference objects whose
  /// mark bit is already set, so the fixpoint converges even while the
  /// fault stays armed.  No-op when nothing was dropped.
  void recoverFromOverflow(CollectionStats &Stats);

private:
  friend class MarkWorker;

  /// A worker's stealable overflow: oldest exposed items first.
  struct StealSlot {
    std::mutex Lock;
    std::vector<MarkWorkItem> Items;
  };

  VirtualArena &Arena;
  PageAllocator &Pages;
  PageMap &Map;
  BlockTable &Blocks;
  ObjectHeap &Heap;
  Blacklist &BlacklistImpl;
  /// The collector-wide persistent worker pool; borrowed, never owned.
  GcWorkerPool &Pool;
  const GcConfig &Config;
  /// Sorted extra displacements valid under BaseOnly (0 is implicit).
  std::vector<uint32_t> Displacements;

  /// One steal slot per worker; sized on demand by mark().
  std::vector<std::unique_ptr<StealSlot>> Slots;
  /// Items pushed but not yet fully scanned, across all workers.
  /// Reaches zero exactly when the closure is complete; workers use it
  /// for termination detection.
  std::atomic<uint64_t> InFlight{0};
  /// Set by any worker that dropped a push (injected mark-stack
  /// overflow); read by recoverFromOverflow after the workers join.
  std::atomic<bool> Overflowed{false};
};

/// One mark tracer.  Constructed per phase (root scan, mark drain,
/// finalization resurrection); holds no state that outlives a phase.
class MarkWorker {
public:
  /// Sequential worker: pushes go to \p ExternalStack, blacklist notes
  /// go straight to the blacklist (with the paper's footnote-3 timing).
  MarkWorker(MarkContext &Ctx, CollectionStats &Stats,
             std::vector<MarkWorkItem> *ExternalStack);

  /// Parallel worker \p Id of \p NumWorkers; pushes go to the private
  /// stack with periodic exposure, near misses are buffered.
  MarkWorker(MarkContext &Ctx, CollectionStats &Stats, unsigned Id,
             unsigned NumWorkers);

  /// Figure 2's mark(p): validity test, blacklist note, mark, push.
  /// \p PreciseWord marks candidates read from a precisely-traced word:
  /// a failed resolution is then a stale or foreign pointer, not a near
  /// miss, so it never feeds the blacklist or the near-miss counters
  /// (BlacklistPromote treats such words as incapable of pinning
  /// pages).
  void considerCandidate(WindowOffset Candidate, ScanOrigin Origin,
                         bool PreciseWord = false);

  /// Scans one root span for candidate words, honoring the range's
  /// encoding and the configured scan alignment.
  void scanRootSpan(const RootRange &Range, const unsigned char *Begin,
                    const unsigned char *End);

  /// Replays a gathered span through considerCandidate, folding the
  /// gather's scan counters into this worker's stats.  Sequential; call
  /// in span registration order for determinism.
  void replayRootCandidates(const RootRange &Range,
                            const MarkContext::RootSpanGather &Gather);

  /// Sequential: drains \p Stack (must be this worker's ExternalStack)
  /// to empty, scanning each popped object.
  void drainSequential(std::vector<MarkWorkItem> &Stack);

  /// Parallel: preloads one item onto the private stack before the
  /// workers start (seeding only; no InFlight bookkeeping).
  void seed(const MarkWorkItem &Item);

  /// Parallel: drains the private stack, reclaiming/stealing shared
  /// work, until the context-wide closure completes.
  void runParallel();

  /// Parallel: replays buffered near misses into the blacklist.  Call
  /// after every worker has joined; single-threaded.
  void flushBlacklist();

private:
  void scanObject(const MarkWorkItem &Item);
  void scanHeapRange(WindowOffset Begin, uint32_t Bytes);
  void scanTypedObject(WindowOffset Begin, uint32_t Bytes,
                       uint32_t LayoutId);
  void push(const MarkWorkItem &Item);
  void exposeForStealing();
  /// Refills the private stack from this worker's slot or a victim's.
  bool takeSharedWork();

  MarkContext &Ctx;
  CollectionStats &Stats;
  /// Sequential mode: the shared LIFO (seed list or drain stack).
  std::vector<MarkWorkItem> *ExternalStack = nullptr;
  /// Parallel mode: the private mark stack.
  std::vector<MarkWorkItem> Local;
  /// Parallel mode: near-miss pages awaiting the sequential flush.
  std::vector<PageIndex> BlacklistBuffer;
  unsigned Id = 0;
  unsigned NumWorkers = 1;
  bool Parallel = false;
};

} // namespace cgc

#endif // CGC_CORE_MARKCONTEXT_H
