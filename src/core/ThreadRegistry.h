//===- core/ThreadRegistry.h - Mutator threads and safepoints --*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mutator-thread registry and the cooperative stop-the-world
/// handshake.  The paper's collector assumes a single mutator whose
/// stack and registers are the conservative root set; this layer grows
/// that into N registered mutator threads, each with a recorded stack
/// base, a stack top and register snapshot published whenever the
/// thread parks, and (optionally) a per-size-class allocation cache.
///
/// The handshake is cooperative first: the collector raises
/// StopRequested and waits for every registered thread to park itself
/// in one of two stopped states:
///
///   * AtSafepoint — the thread polled the flag (allocation slow path,
///     or an explicit cgc_safepoint() in a compute loop), published its
///     stack top + registers, and is waiting on the resume signal.
///   * BlockedOnHeap — the thread published its stack top + registers
///     *before* trying to acquire the heap lock.  The collector holds
///     the heap lock for the whole collection, so a thread in this
///     state is frozen on the mutex and is safely scannable.
///
/// Deadlock freedom rests on two rules: StopRequested is only ever set
/// and cleared while the collector holds the heap lock, and a mutator
/// always publishes its scan state and leaves Running before it can
/// block on that lock.  Once the wait predicate "every registered
/// thread except the collector is not Running" becomes true it stays
/// true until resume: parked threads only re-enter Running after
/// observing StopRequested == false under the registry lock, and a
/// blocked thread only wakes when the collector releases the heap lock
/// after resuming the world.
///
/// A mutator that never reaches a poll — spinning in compute code,
/// wedged in a syscall without beginBlocked, or simply buggy — would
/// stall that wait forever.  With GcConfig::HandshakeDeadlineMs set,
/// stopTheWorld arms a monotonic-clock watchdog that climbs an
/// escalation ladder instead:
///
///   1. at deadline/4, a rate-limited warning names each still-running
///      thread and its state;
///   2. at deadline/2, each still-running thread is suspended
///      preemptively with the reserved real-time signal
///      (support/SignalSuspend.h): the async-signal-safe handler
///      publishes the thread's stack top + sigsetjmp register snapshot,
///      acks on a semaphore, and parks in sigsuspend until resume.
///      Sends are retried with backoff; a fourth stopped state,
///      SignalSuspended, satisfies the same wait predicate;
///   3. at the full deadline, the handshake reports TimedOut with a
///      per-thread trace; the collector abandons the collection (or
///      aborts under GcConfig::HandshakeFatal).
///
/// With a zero deadline (the default) the wait is unbounded and the
/// protocol is exactly the pre-watchdog cooperative handshake.
///
/// With zero registered threads none of this machinery is reachable:
/// the collector takes no lock, requests no stop, and reproduces the
/// sequential paper collector bit-identically.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_CORE_THREADREGISTRY_H
#define CGC_CORE_THREADREGISTRY_H

#include "core/GcIncident.h"
#include "support/Assert.h"
#include "support/SignalSuspend.h"
#include <atomic>
#include <condition_variable>
#include <csetjmp>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace cgc {

class Collector;
class ThreadCache;

/// Where a registered mutator currently stands with respect to the
/// stop-the-world protocol.
enum class MutatorState : uint32_t {
  /// Mutating freely; its stack top / register snapshot are stale.
  Running,
  /// Parked at a safepoint with fresh scan state, waiting for resume.
  AtSafepoint,
  /// Published fresh scan state and is (or is about to be) blocked on
  /// the heap lock.  Counts as stopped: the collector owns that lock
  /// for the entire collection.
  BlockedOnHeap,
  /// Suspended preemptively by the watchdog's reserved signal; the
  /// handler published scan state and is parked in sigsuspend.  Counts
  /// as stopped; only the resume signal releases it.
  SignalSuspended,
};

/// Per-thread record.  Owned by the registry; the address is stable for
/// the thread's registered lifetime (records are heap-allocated and the
/// registry stores pointers), so the owner thread may keep it in a
/// thread_local and the collector may scan Registers in place.
struct MutatorThread {
  /// 1-based registration order; never reused within a registry.
  uint64_t Id = 0;
  /// High end of the thread's scannable stack, recorded at
  /// registration.  Frames above the registration point are invisible
  /// to the collector — register at the top of the thread's main.
  const void *StackBase = nullptr;
  /// Low end of the live stack, published each time the thread parks.
  std::atomic<const void *> StackTop{nullptr};
  /// Callee-saved registers flushed with setjmp when the thread parks,
  /// scanned in place as a conservative root range.
  std::jmp_buf Registers;
  /// MutatorState, as its underlying integer.
  std::atomic<uint32_t> State{static_cast<uint32_t>(MutatorState::Running)};
  /// Per-size-class allocation cache; null when ThreadCacheSlots == 0
  /// or guarded mode is active.
  std::unique_ptr<ThreadCache> Cache;
  /// Owner-thread counters for the lock-free fast path; read by the
  /// collector only while the world is stopped (or after unregister).
  std::atomic<uint64_t> CacheAllocs{0};
  std::atomic<uint64_t> CacheAllocBytes{0};
  /// Times this thread parked at a safepoint (lifetime).
  std::atomic<uint64_t> SafepointsTaken{0};
  /// Preemptive-suspension slot for the watchdog's signal rung; its
  /// State/StackTop pointers alias the fields above and the pthread
  /// handle is captured at registration.  While Suspend.UseRegisters
  /// is set, Suspend.Registers (the handler's sigsetjmp capture) is
  /// the scannable register snapshot instead of Registers.
  suspend::SuspendSlot Suspend;

  MutatorState state() const {
    return static_cast<MutatorState>(State.load(std::memory_order_acquire));
  }
};

class ThreadRegistry {
public:
  ThreadRegistry() = default;
  ThreadRegistry(const ThreadRegistry &) = delete;
  ThreadRegistry &operator=(const ThreadRegistry &) = delete;

  /// Registers the calling thread.  Serialized against the handshake by
  /// the caller (Collector::registerMutatorThread holds the heap lock),
  /// so registration never races a stop.  \returns the new record, or
  /// null when \p MaxThreads registrations are already live.
  MutatorThread *registerThread(const void *StackBase, unsigned MaxThreads);

  /// Unregisters \p Thread (must be the calling thread's record, with
  /// its cache already flushed).  Caller holds the heap lock.
  void unregisterThread(MutatorThread *Thread);

  /// Registered threads right now.  Lock-free; the allocation fast path
  /// uses this (via Collector's sticky threaded-mode flag) to keep the
  /// zero-thread configuration on the paper's sequential path.
  uint64_t registeredCount() const {
    return Count.load(std::memory_order_acquire);
  }

  /// Lifetime registration total (never decreases; feeds crash state).
  uint64_t lifetimeRegistrations() const {
    return LifetimeRegistrations.load(std::memory_order_relaxed);
  }

  /// The calling thread's record, or null if it never registered with
  /// any registry.  (One registry per process is the supported shape;
  /// the record is checked against this registry where it matters.)
  static MutatorThread *current();

  /// Best-effort high end of the calling thread's stack: the pthread
  /// stack extent where the platform exposes it, else an address in the
  /// caller's frame (in that case register near the thread's entry
  /// point, since shallower frames are invisible to the collector).
  static const void *currentStackBase();

  /// True while a stop-the-world is in flight.  Mutators poll this on
  /// the allocation fast path and in cgc_safepoint().
  bool stopRequested() const {
    return StopFlag.load(std::memory_order_acquire);
  }

  /// Collector side: raises StopRequested and waits until every
  /// registered thread other than \p Self has stopped (AtSafepoint,
  /// BlockedOnHeap, or SignalSuspended).  Caller must hold the heap
  /// lock for the entire stop..resume window.  With a watchdog
  /// configured the wait is bounded and the result records how far up
  /// the escalation ladder the handshake climbed; TimedOut means some
  /// thread could not be stopped and the collection must be abandoned
  /// (StopRequested stays raised until resumeTheWorld).
  struct HandshakeResult {
    uint64_t MutatorsStopped = 0;
    uint64_t Nanos = 0;
    /// Threads that ended the handshake preemptively suspended.
    uint64_t SignalSuspended = 0;
    /// Suspend-signal re-sends beyond each thread's first.
    uint64_t SignalSendRetries = 0;
    /// Highest ladder rung climbed: 0 cooperative, 1 warned,
    /// 2 signaled, 3 timed out.
    uint32_t Rung = 0;
    bool TimedOut = false;
    /// Per-thread state at the final-timeout rung (TimedOut only).
    std::vector<GcHandshakeTraceEntry> Trace;
  };
  HandshakeResult stopTheWorld(const MutatorThread *Self);

  /// Collector side: clears StopRequested, wakes every parked thread,
  /// and releases (resume signal, retried) every signal-suspended
  /// thread.  Caller still holds the heap lock.
  void resumeTheWorld();

  /// Rate-limited stall warning sink for the watchdog's first rung:
  /// invoked, with the registry lock held, once per still-running
  /// thread when the handshake crosses deadline/4.  Must not call back
  /// into the registry.
  using StallWarnFn = void (*)(void *Ctx, uint64_t ThreadId,
                               uint32_t State, uint64_t StalledNanos);

  /// Arms (or with \p DeadlineNanos == 0 disarms) the handshake
  /// watchdog.  \p SuspendSignal is the resolved, installed suspend
  /// signal, or -1 to skip the signal rung (the ladder then goes
  /// warn → timeout).  Not thread-safe against in-flight handshakes;
  /// the collector configures it at construction.
  void configureWatchdog(uint64_t DeadlineNanos, int SuspendSignal,
                         StallWarnFn Warn, void *WarnCtx);

  /// Mutator side: if a stop is requested, publish scan state and park
  /// until resumed.  Cheap when no stop is in flight (one acquire
  /// load); never call while holding the heap lock.
  void safepoint(MutatorThread *Self) {
    if (!stopRequested() || Self == nullptr)
      return;
    parkAtSafepoint(Self);
  }

  /// Mutator side: publish scan state and enter BlockedOnHeap *before*
  /// acquiring the heap lock, so a thread frozen on the collector's
  /// mutex still counts as stopped and is scannable.
  void beginBlocked(MutatorThread *Self);

  /// Mutator side: back to Running, after the heap lock is acquired.
  /// Holding the lock proves no stop is in flight.
  void endBlocked(MutatorThread *Self);

  /// Iterates every registered record.  Caller must hold the heap lock
  /// (registration and unregistration are serialized under it).
  template <typename FnT> void forEachThread(FnT Fn) const {
    std::lock_guard<std::mutex> Guard(Lock);
    for (const std::unique_ptr<MutatorThread> &Thread : Threads)
      Fn(*Thread);
  }

  /// Stop-the-world handshakes completed (lifetime).
  uint64_t handshakes() const {
    return Handshakes.load(std::memory_order_relaxed);
  }

  /// Safepoint parks taken across all threads (lifetime).
  uint64_t safepointParks() const {
    return SafepointParks.load(std::memory_order_relaxed);
  }

  /// Lifetime handshake-hardening counters (all relaxed atomics).
  uint64_t maxStopNanos() const {
    return MaxStopNanos.load(std::memory_order_relaxed);
  }
  uint64_t totalStopNanos() const {
    return TotalStopNanos.load(std::memory_order_relaxed);
  }
  uint64_t signalSuspensions() const {
    return SignalSuspensions.load(std::memory_order_relaxed);
  }
  uint64_t signalSendRetries() const {
    return SignalSendRetries.load(std::memory_order_relaxed);
  }
  uint64_t warnRungs() const {
    return WarnRungs.load(std::memory_order_relaxed);
  }
  uint64_t signalRungs() const {
    return SignalRungs.load(std::memory_order_relaxed);
  }
  uint64_t handshakeTimeouts() const {
    return HandshakeTimeouts.load(std::memory_order_relaxed);
  }

  /// Child-side fork cleanup: drops every record except \p Survivor
  /// (the forking thread's record; null when the forking thread was
  /// unregistered), invoking \p OnDrop on each dropped record first so
  /// the collector can reverse its cache reservations against the debt
  /// ledger.  Also clears any in-flight stop and stale suspension
  /// state.  Call only from a freshly forked child, before it mutates.
  void rebuildAfterFork(MutatorThread *Survivor,
                        const std::function<void(MutatorThread &)> &OnDrop);

  /// Fork safety: prepare acquires the registry lock so the fork
  /// snapshot never copies it mid-transition; parent and child release
  /// it (the child before rebuildAfterFork).
  void lockForFork() { Lock.lock(); }
  void unlockForFork() { Lock.unlock(); }

private:
  void parkAtSafepoint(MutatorThread *Self);
  /// Publishes \p Self's stack top and register snapshot.  Must not be
  /// inlined into a frame that dies before the state is consumed; the
  /// park/blocked wrappers keep their frames alive.
  static void publishScanState(MutatorThread *Self);

  mutable std::mutex Lock;
  /// Collector waits here for the last mutator to park.
  std::condition_variable MutatorParked;
  /// Parked mutators wait here for resume.
  std::condition_variable WorldResumed;
  std::vector<std::unique_ptr<MutatorThread>> Threads;
  std::atomic<uint64_t> Count{0};
  std::atomic<bool> StopFlag{false};
  uint64_t NextId = 1;
  std::atomic<uint64_t> LifetimeRegistrations{0};
  std::atomic<uint64_t> Handshakes{0};
  std::atomic<uint64_t> SafepointParks{0};

  /// Watchdog configuration (written once at collector construction).
  uint64_t WatchdogDeadlineNanos = 0;
  int WatchdogSignal = -1;
  StallWarnFn StallWarn = nullptr;
  void *StallWarnCtx = nullptr;

  /// Lifetime handshake-hardening counters.
  std::atomic<uint64_t> MaxStopNanos{0};
  std::atomic<uint64_t> TotalStopNanos{0};
  std::atomic<uint64_t> SignalSuspensions{0};
  std::atomic<uint64_t> SignalSendRetries{0};
  std::atomic<uint64_t> WarnRungs{0};
  std::atomic<uint64_t> SignalRungs{0};
  std::atomic<uint64_t> HandshakeTimeouts{0};
};

} // namespace cgc

#endif // CGC_CORE_THREADREGISTRY_H
