//===- core/ThreadRegistry.h - Mutator threads and safepoints --*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mutator-thread registry and the cooperative stop-the-world
/// handshake.  The paper's collector assumes a single mutator whose
/// stack and registers are the conservative root set; this layer grows
/// that into N registered mutator threads, each with a recorded stack
/// base, a stack top and register snapshot published whenever the
/// thread parks, and (optionally) a per-size-class allocation cache.
///
/// The handshake is cooperative, not signal-based: the collector never
/// suspends a thread from the outside.  Instead it raises StopRequested
/// and waits for every registered thread to park itself in one of two
/// stopped states:
///
///   * AtSafepoint — the thread polled the flag (allocation slow path,
///     or an explicit cgc_safepoint() in a compute loop), published its
///     stack top + registers, and is waiting on the resume signal.
///   * BlockedOnHeap — the thread published its stack top + registers
///     *before* trying to acquire the heap lock.  The collector holds
///     the heap lock for the whole collection, so a thread in this
///     state is frozen on the mutex and is safely scannable.
///
/// Deadlock freedom rests on two rules: StopRequested is only ever set
/// and cleared while the collector holds the heap lock, and a mutator
/// always publishes its scan state and leaves Running before it can
/// block on that lock.  Once the wait predicate "every registered
/// thread except the collector is not Running" becomes true it stays
/// true until resume: parked threads only re-enter Running after
/// observing StopRequested == false under the registry lock, and a
/// blocked thread only wakes when the collector releases the heap lock
/// after resuming the world.
///
/// With zero registered threads none of this machinery is reachable:
/// the collector takes no lock, requests no stop, and reproduces the
/// sequential paper collector bit-identically.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_CORE_THREADREGISTRY_H
#define CGC_CORE_THREADREGISTRY_H

#include "support/Assert.h"
#include <atomic>
#include <condition_variable>
#include <csetjmp>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace cgc {

class Collector;
class ThreadCache;

/// Where a registered mutator currently stands with respect to the
/// stop-the-world protocol.
enum class MutatorState : uint32_t {
  /// Mutating freely; its stack top / register snapshot are stale.
  Running,
  /// Parked at a safepoint with fresh scan state, waiting for resume.
  AtSafepoint,
  /// Published fresh scan state and is (or is about to be) blocked on
  /// the heap lock.  Counts as stopped: the collector owns that lock
  /// for the entire collection.
  BlockedOnHeap,
};

/// Per-thread record.  Owned by the registry; the address is stable for
/// the thread's registered lifetime (records are heap-allocated and the
/// registry stores pointers), so the owner thread may keep it in a
/// thread_local and the collector may scan Registers in place.
struct MutatorThread {
  /// 1-based registration order; never reused within a registry.
  uint64_t Id = 0;
  /// High end of the thread's scannable stack, recorded at
  /// registration.  Frames above the registration point are invisible
  /// to the collector — register at the top of the thread's main.
  const void *StackBase = nullptr;
  /// Low end of the live stack, published each time the thread parks.
  std::atomic<const void *> StackTop{nullptr};
  /// Callee-saved registers flushed with setjmp when the thread parks,
  /// scanned in place as a conservative root range.
  std::jmp_buf Registers;
  /// MutatorState, as its underlying integer.
  std::atomic<uint32_t> State{static_cast<uint32_t>(MutatorState::Running)};
  /// Per-size-class allocation cache; null when ThreadCacheSlots == 0
  /// or guarded mode is active.
  std::unique_ptr<ThreadCache> Cache;
  /// Owner-thread counters for the lock-free fast path; read by the
  /// collector only while the world is stopped (or after unregister).
  std::atomic<uint64_t> CacheAllocs{0};
  std::atomic<uint64_t> CacheAllocBytes{0};
  /// Times this thread parked at a safepoint (lifetime).
  std::atomic<uint64_t> SafepointsTaken{0};

  MutatorState state() const {
    return static_cast<MutatorState>(State.load(std::memory_order_acquire));
  }
};

class ThreadRegistry {
public:
  ThreadRegistry() = default;
  ThreadRegistry(const ThreadRegistry &) = delete;
  ThreadRegistry &operator=(const ThreadRegistry &) = delete;

  /// Registers the calling thread.  Serialized against the handshake by
  /// the caller (Collector::registerMutatorThread holds the heap lock),
  /// so registration never races a stop.  \returns the new record, or
  /// null when \p MaxThreads registrations are already live.
  MutatorThread *registerThread(const void *StackBase, unsigned MaxThreads);

  /// Unregisters \p Thread (must be the calling thread's record, with
  /// its cache already flushed).  Caller holds the heap lock.
  void unregisterThread(MutatorThread *Thread);

  /// Registered threads right now.  Lock-free; the allocation fast path
  /// uses this (via Collector's sticky threaded-mode flag) to keep the
  /// zero-thread configuration on the paper's sequential path.
  uint64_t registeredCount() const {
    return Count.load(std::memory_order_acquire);
  }

  /// Lifetime registration total (never decreases; feeds crash state).
  uint64_t lifetimeRegistrations() const {
    return LifetimeRegistrations.load(std::memory_order_relaxed);
  }

  /// The calling thread's record, or null if it never registered with
  /// any registry.  (One registry per process is the supported shape;
  /// the record is checked against this registry where it matters.)
  static MutatorThread *current();

  /// Best-effort high end of the calling thread's stack: the pthread
  /// stack extent where the platform exposes it, else an address in the
  /// caller's frame (in that case register near the thread's entry
  /// point, since shallower frames are invisible to the collector).
  static const void *currentStackBase();

  /// True while a stop-the-world is in flight.  Mutators poll this on
  /// the allocation fast path and in cgc_safepoint().
  bool stopRequested() const {
    return StopFlag.load(std::memory_order_acquire);
  }

  /// Collector side: raises StopRequested and waits until every
  /// registered thread other than \p Self has parked (AtSafepoint or
  /// BlockedOnHeap).  Caller must hold the heap lock for the entire
  /// stop..resume window.  \returns how many threads were waited into a
  /// stopped state and how long the rendezvous took.
  struct HandshakeResult {
    uint64_t MutatorsStopped = 0;
    uint64_t Nanos = 0;
  };
  HandshakeResult stopTheWorld(const MutatorThread *Self);

  /// Collector side: clears StopRequested and wakes every parked
  /// thread.  Caller still holds the heap lock.
  void resumeTheWorld();

  /// Mutator side: if a stop is requested, publish scan state and park
  /// until resumed.  Cheap when no stop is in flight (one acquire
  /// load); never call while holding the heap lock.
  void safepoint(MutatorThread *Self) {
    if (!stopRequested() || Self == nullptr)
      return;
    parkAtSafepoint(Self);
  }

  /// Mutator side: publish scan state and enter BlockedOnHeap *before*
  /// acquiring the heap lock, so a thread frozen on the collector's
  /// mutex still counts as stopped and is scannable.
  void beginBlocked(MutatorThread *Self);

  /// Mutator side: back to Running, after the heap lock is acquired.
  /// Holding the lock proves no stop is in flight.
  void endBlocked(MutatorThread *Self);

  /// Iterates every registered record.  Caller must hold the heap lock
  /// (registration and unregistration are serialized under it).
  template <typename FnT> void forEachThread(FnT Fn) const {
    std::lock_guard<std::mutex> Guard(Lock);
    for (const std::unique_ptr<MutatorThread> &Thread : Threads)
      Fn(*Thread);
  }

  /// Stop-the-world handshakes completed (lifetime).
  uint64_t handshakes() const {
    return Handshakes.load(std::memory_order_relaxed);
  }

  /// Safepoint parks taken across all threads (lifetime).
  uint64_t safepointParks() const {
    return SafepointParks.load(std::memory_order_relaxed);
  }

private:
  void parkAtSafepoint(MutatorThread *Self);
  /// Publishes \p Self's stack top and register snapshot.  Must not be
  /// inlined into a frame that dies before the state is consumed; the
  /// park/blocked wrappers keep their frames alive.
  static void publishScanState(MutatorThread *Self);

  mutable std::mutex Lock;
  /// Collector waits here for the last mutator to park.
  std::condition_variable MutatorParked;
  /// Parked mutators wait here for resume.
  std::condition_variable WorldResumed;
  std::vector<std::unique_ptr<MutatorThread>> Threads;
  std::atomic<uint64_t> Count{0};
  std::atomic<bool> StopFlag{false};
  uint64_t NextId = 1;
  std::atomic<uint64_t> LifetimeRegistrations{0};
  std::atomic<uint64_t> Handshakes{0};
  std::atomic<uint64_t> SafepointParks{0};
};

} // namespace cgc

#endif // CGC_CORE_THREADREGISTRY_H
