//===- core/Collector.h - Public collector facade --------------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point: a conservative mark-sweep collector with
/// page blacklisting, configurable interior-pointer recognition, heap
/// placement control, and §3.1 stack clearing.
///
/// Typical use:
/// \code
///   cgc::Collector GC;                       // default config
///   auto *Cell = static_cast<Node *>(GC.allocate(sizeof(Node)));
///   GC.addRootRange(&Globals, &Globals + 1,
///                   cgc::RootEncoding::Native64,
///                   cgc::RootSource::StaticData, "globals");
///   GC.collect("checkpoint");
/// \endcode
///
/// Each Collector instance owns an independent heap window, so tests
/// and experiments can run many differently configured collectors in
/// one process.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_CORE_COLLECTOR_H
#define CGC_CORE_COLLECTOR_H

#include "core/Blacklist.h"
#include "core/Finalization.h"
#include "core/GcConfig.h"
#include "core/GcIncident.h"
#include "core/GcObserver.h"
#include "core/GcPhase.h"
#include "core/GcStats.h"
#include "core/Marker.h"
#include "core/SweepContext.h"
#include "core/ThreadRegistry.h"
#include "heap/ObjectHeap.h"
#include "roots/MachineStack.h"
#include "roots/RootSet.h"
#include "support/CrashReporter.h"
#include "support/MetadataArena.h"
#include <functional>
#include <memory>
#include <optional>

namespace cgc {

class GcSentinel;
struct GcSentinelStats;

class Collector {
public:
  explicit Collector(const GcConfig &Config = GcConfig());
  ~Collector();

  Collector(const Collector &) = delete;
  Collector &operator=(const Collector &) = delete;

  //===--------------------------------------------------------------===//
  // Allocation
  //===--------------------------------------------------------------===//

  /// Allocates \p Bytes of \p Kind storage, collecting and/or growing
  /// the heap per policy.  Memory is zero-initialized.
  ///
  /// On exhaustion the slow path climbs a policy ladder before giving
  /// up: collect, flush pending lazy sweeps, grow the arena, run an
  /// emergency collection with interior-pointer recognition and
  /// blacklist page constraints relaxed, and finally invoke the
  /// installed GcOomHandler (whose result is returned verbatim).
  /// \returns nullptr only when the ladder is exhausted and no handler
  /// is installed (or the handler returned nullptr).
  void *allocate(size_t Bytes, ObjectKind Kind = ObjectKind::Normal);

  /// Explicitly frees an object (required for Uncollectable objects;
  /// optional for others).  \p Ptr must be an object base address.
  void deallocate(void *Ptr);

  /// Registers an object layout (which words may hold pointers) and
  /// returns its id for allocateTyped.  Typed objects are scanned
  /// precisely: the "exact heap information, conservative stacks"
  /// regime of systems like Bartlett's and Chailloux's collectors.
  LayoutId registerObjectLayout(const std::vector<bool> &PointerWords,
                                size_t SizeBytes);

  /// Allocates an object with a registered layout (Normal kind).
  void *allocateTyped(LayoutId Layout);

  /// Allocates a large object that only first-page pointers retain
  /// (observation 7's remedy for >100 KB objects under blacklisting).
  void *allocateIgnoreOffPage(size_t Bytes,
                              ObjectKind Kind = ObjectKind::Normal);

  /// allocate(), tagged with an allocation-site string (interned by
  /// value; typically a "file:line" literal).  Guarded mode records the
  /// site in the object's debug header so violation and leak reports
  /// name it; without DebugGuards the tag is ignored.
  void *allocateTagged(size_t Bytes, const char *Site,
                       ObjectKind Kind = ObjectKind::Normal);

  /// Under InteriorPolicy::BaseOnly, also accept base + Displacement
  /// as a valid reference (tagged-pointer language implementations).
  void registerDisplacement(uint32_t Displacement);

  /// Excludes [Begin, End) from all root scanning — the paper's advice
  /// for "large static data areas that contain seemingly random,
  /// nonpointer areas (e.g. IO buffers)".
  void addRootExclusion(const void *Begin, const void *End);

  //===--------------------------------------------------------------===//
  // Collection
  //===--------------------------------------------------------------===//

  /// Runs a full collection as the phase pipeline
  /// RootScan -> Mark -> BlacklistPromote -> Sweep -> Finalize (see
  /// core/GcPhase.h), emitting observer events around every phase.
  /// \p Reason is recorded in statistics and reported to observers.
  /// \returns the cycle's statistics.
  CollectionStats collect(const char *Reason = "explicit");

  /// Sets the Mark-phase worker count for future collections (clamped
  /// to [1, MarkContext::MaxWorkers]).  1 = the paper's sequential
  /// marker; any value yields the identical marked set and counters.
  void setMarkThreads(unsigned Threads) {
    Config.MarkThreads = Threads == 0 ? 1 : Threads;
  }
  unsigned markThreads() const { return Config.MarkThreads; }

  /// Sets the Sweep-phase worker count for future collections (clamped
  /// to [1, SweepContext::MaxWorkers]).  1 = the paper's sequential
  /// sweep; any value yields the identical retained set, free-list
  /// order, and counters.
  void setSweepThreads(unsigned Threads) {
    Config.SweepThreads = Threads == 0 ? 1 : Threads;
  }
  unsigned sweepThreads() const { return Config.SweepThreads; }

  /// Sets the RootScan-phase worker count for future collections
  /// (clamped to [1, MarkContext::MaxWorkers]).  1 = the paper's
  /// sequential scan; any value yields the identical seeded set and
  /// counters (workers gather candidates read-only, then the candidates
  /// replay sequentially in range-registration order).
  void setRootScanThreads(unsigned Threads) {
    Config.RootScanThreads = Threads == 0 ? 1 : Threads;
  }
  unsigned rootScanThreads() const { return Config.RootScanThreads; }

  /// Installs (or clears, with nullptr) the out-of-memory handler the
  /// allocation ladder invokes once per exhausted request.
  void setOomHandler(GcOomHandler Fn, void *UserData = nullptr) {
    Config.OomHandler = Fn;
    Config.OomHandlerData = UserData;
  }

  /// Installs (or clears, with nullptr) the warn procedure receiving
  /// rate-limited resilience warnings.
  void setWarnProc(GcWarnProc Fn, void *UserData = nullptr) {
    Config.WarnProc = Fn;
    Config.WarnProcData = UserData;
  }

  /// Runs the mark phase only — no sweep, no finalization — so the heap
  /// is unchanged.  Experiments use this to ask "what would appear
  /// live?" repeatedly against the same structure.  ObjectsMarked /
  /// BytesMarked carry the answer.
  CollectionStats measureLiveness();

  //===--------------------------------------------------------------===//
  // Roots
  //===--------------------------------------------------------------===//

  RootId addRootRange(const void *Begin, const void *End,
                      RootEncoding Encoding, RootSource Source,
                      std::string Label);
  bool removeRootRange(RootId Id);
  bool updateRootRange(RootId Id, const void *Begin, const void *End);

  /// Enables conservative scanning of the calling thread's real stack
  /// and registers during collections.  Call from near main().
  void enableMachineStackScanning();

  //===--------------------------------------------------------------===//
  // Mutator threads (see core/ThreadRegistry.h).  With zero registered
  // threads every path below is unreachable and the collector runs the
  // paper's sequential protocol bit-identically.
  //===--------------------------------------------------------------===//

  /// Registers the calling thread as a mutator: records its stack base
  /// (\p StackBaseHint, or the platform stack extent when null), gives
  /// it a per-size-class allocation cache (GcConfig::ThreadCacheSlots;
  /// disabled in guarded mode), and — sticky, for the collector's
  /// lifetime — switches every public entry point onto the heap lock.
  /// During collections the thread's stack and registers join the
  /// conservative root set.  Call from near the thread's entry point,
  /// before it allocates or holds GC pointers.  \returns false when
  /// GcConfig::MutatorThreads registrations are already live.
  bool registerMutatorThread(const void *StackBaseHint = nullptr);

  /// Unregisters the calling thread (must be registered): flushes its
  /// cache back to the heap and removes it from the stop-the-world
  /// protocol.  Its stack is no longer scanned — drop or hand off GC
  /// pointers first.
  void unregisterMutatorThread();

  /// Blocking safepoint: if a stop-the-world is in flight, publishes
  /// the calling thread's scan state and parks until resume.  Cheap
  /// (one atomic load) otherwise.  Allocation already polls this;
  /// compute-only loops should call it periodically.
  void safepoint();

  /// The mutator registry, for tests and tooling.
  ThreadRegistry &threadRegistry() { return Registry; }

  /// Snapshot of the lifetime stop-the-world handshake counters:
  /// time-to-stop (max/total over completed rendezvous), signal
  /// suspensions and send retries, and watchdog rung counts.  All
  /// zeros until the first threaded collection.
  GcHandshakeStats handshakeStats() const {
    GcHandshakeStats Snapshot;
    Snapshot.Handshakes = Registry.handshakes();
    Snapshot.MaxStopNanos = Registry.maxStopNanos();
    Snapshot.TotalStopNanos = Registry.totalStopNanos();
    Snapshot.SignalSuspensions = Registry.signalSuspensions();
    Snapshot.SignalSendRetries = Registry.signalSendRetries();
    Snapshot.WarnRungs = Registry.warnRungs();
    Snapshot.SignalRungs = Registry.signalRungs();
    Snapshot.HandshakeTimeouts = Registry.handshakeTimeouts();
    return Snapshot;
  }

  //===--------------------------------------------------------------===//
  // Queries
  //===--------------------------------------------------------------===//

  /// \returns true if \p Ptr points into the collector's window.
  bool isHeapPointer(const void *Ptr) const;

  /// \returns the object base for \p Ptr under the configured
  /// interior-pointer policy, or nullptr if \p Ptr resolves to nothing.
  void *objectBase(const void *Ptr) const;

  /// \returns the allocation size of the object at base \p Ptr, or 0.
  size_t objectSizeOf(const void *Ptr) const;

  /// \returns true if the object at base \p Ptr is currently allocated.
  bool isAllocated(const void *Ptr) const;

  /// \returns true if the last collection marked the object at \p Ptr
  /// (base address) live.  Only meaningful right after collect().
  bool wasMarkedLive(const void *Ptr) const;

  /// Window offset of \p Ptr; experiments report window addresses.
  WindowOffset windowOffsetOf(const void *Ptr) const;
  /// Inverse of windowOffsetOf.
  void *pointerAtOffset(WindowOffset Offset) const;

  //===--------------------------------------------------------------===//
  // Finalization (PCR-style; see Finalization.h)
  //===--------------------------------------------------------------===//

  void registerFinalizer(void *Ptr, std::function<void(void *)> Fn);
  bool unregisterFinalizer(void *Ptr);
  /// Runs finalizers queued by earlier collections; \returns count run.
  size_t runFinalizers();
  size_t pendingFinalizers() const { return Finalizers.readyCount(); }

  //===--------------------------------------------------------------===//
  // Leak detection (the paper's "debugging tool" use case)
  //===--------------------------------------------------------------===//

  /// After marking and before sweeping, reports every allocated object
  /// the collection found unreachable.  Useful with Uncollectable
  /// allocations to audit explicit-deallocation programs.
  using LeakCallback = std::function<void(void *Ptr, size_t Bytes,
                                          ObjectKind Kind)>;
  void setLeakCallback(LeakCallback Fn) { OnLeak = std::move(Fn); }

  //===--------------------------------------------------------------===//
  // Guarded-heap mode (GcConfig::DebugGuards; see heap/GuardedHeap.h)
  //===--------------------------------------------------------------===//

  /// The guard layer, or nullptr when DebugGuards is off.
  GuardLayer *guards() { return Guards.get(); }

  /// Lifetime guard counters.  Requires DebugGuards.
  const GcGuardStats &guardStats() const {
    CGC_CHECK(Guards, "guardStats requires GcConfig::DebugGuards");
    return Guards->Stats;
  }

  /// Releases every quarantined object now, re-checking each slot's
  /// poison fill for use-after-free writes first.  Every collection
  /// does this implicitly before its phases run.  No-op without guards.
  void flushQuarantine();

  /// Find-leaks collection: flushes the quarantine, marks (without
  /// sweeping), and reports every guarded object that is unreachable
  /// but was never explicitly freed, grouped by allocation site in
  /// site-registration order (deterministic).  Requires DebugGuards.
  GcLeakReport findLeaks();

  /// The most recent guard-violation incident, or nullptr if none has
  /// been raised.  Meant for tests and tooling running with
  /// GuardFatal == false; the same payload is delivered through
  /// GcObserver::onIncident as it happens.
  const GcIncident *lastGuardIncident() const {
    return HasGuardIncident ? &LastGuardIncidentInfo : nullptr;
  }

  /// Raises a client-misuse incident (observers + rate-limited warn)
  /// without touching the guard-incident latch: used by the unguarded
  /// free ladder and the malloc-redirect layer for foreign frees and
  /// kin.  \p Detail is a static string for the warn proc; \p Addr the
  /// offending pointer.
  void raiseClientIncident(GcIncidentCause Cause, uint64_t Addr,
                           const char *Detail);

  //===--------------------------------------------------------------===//
  // Observability (see core/GcObserver.h)
  //===--------------------------------------------------------------===//

  /// Registers \p Observer (not owned; must outlive its registration)
  /// for collection/phase/object-retained events.  \returns an id for
  /// removeObserver.  Legal from inside an observer callback.
  GcObserverId addObserver(GcObserver *Observer) {
    return Observers.add(Observer);
  }

  /// Unregisters an observer; \returns true if it was registered.
  /// Legal from inside an observer callback, including the observer
  /// unregistering itself.
  bool removeObserver(GcObserverId Id) { return Observers.remove(Id); }

  //===--------------------------------------------------------------===//
  // Retention-storm sentinel (see core/GcSentinel.h)
  //===--------------------------------------------------------------===//

  /// Replaces the sentinel policy at runtime.  Policy.Enabled == true
  /// (re)creates the sentinel with a fresh window; false tears it down,
  /// restoring any configuration knobs its ladder overrode.  Must not
  /// be called from an observer callback.
  void configureSentinel(const SentinelPolicy &Policy);

  /// The active sentinel, or nullptr when disabled.
  GcSentinel *sentinel() { return SentinelImpl.get(); }

  //===--------------------------------------------------------------===//
  // Crash reporting (see support/CrashReporter.h)
  //===--------------------------------------------------------------===//

  /// This collector's crash-visible state: relaxed-atomic mirrors of
  /// phase/heap/resilience counters plus the event ring, kept current
  /// by every collection and readable from a signal handler.
  const GcCrashState &crashState() const { return CrashInfo; }

  //===--------------------------------------------------------------===//
  // Stack clearing (§3.1)
  //===--------------------------------------------------------------===//

  /// Registers a hook the allocator runs every StackClearEveryNAllocs
  /// allocations when StackClearing == Cheap (e.g. SimStack clearing).
  void addStackClearHook(std::function<void()> Hook);

  /// Registers a hook run at the start of every collection, before any
  /// scanning.  Simulated mutators use this to sync their stack-top
  /// root bounds and refresh register residue.
  void addPreCollectionHook(std::function<void()> Hook);

  //===--------------------------------------------------------------===//
  // Introspection
  //===--------------------------------------------------------------===//

  /// Process-unique identity for this collector instance (stable even
  /// if a later collector reuses this one's address).  Client libraries
  /// key per-collector caches (e.g. registered layout ids) on it.
  uint64_t uniqueId() const { return UniqueId; }

  const GcConfig &config() const { return Config; }
  const CollectionStats &lastCollection() const { return LastCycle; }
  const GcLifetimeStats &lifetimeStats() const { return Lifetime; }
  /// Snapshot of the resilience counters (OOM ladder rungs, warnings,
  /// worker spawn failures).
  GcResilienceStats resilienceStats() const {
    GcResilienceStats Snapshot = Resilience;
    Snapshot.WorkerSpawnFailures = Pool->spawnFailures();
    return Snapshot;
  }
  uint64_t allocatedBytes() const { return Heap->allocatedBytes(); }
  uint64_t committedHeapBytes() const {
    return Pages->stats().CommittedPages * PageSize;
  }
  uint64_t blacklistedPageCount() const {
    return BlacklistImpl->entryCount();
  }
  const PageAllocatorStats &pageStats() const { return Pages->stats(); }
  const ObjectHeapStats &heapStats() const { return Heap->stats(); }
  const BlacklistStats &blacklistStats() const {
    return BlacklistImpl->stats();
  }

  /// Prints a human-readable statistics report (the paper's programs
  /// "reference sprintf and use it to print collector statistics").
  void printReport(std::FILE *Out) const;

  /// Prints a per-size-class heap census and the blacklist geography:
  /// the debugging view the paper's appendix analyses were read from
  /// ("A quick examination of the blacklist ... suggests").
  void dumpHeap(std::FILE *Out) const;

  /// Calls \p Fn(base pointer, size, kind) for every currently
  /// allocated object, in address order.
  void forEachObject(
      const std::function<void(void *, size_t, ObjectKind)> &Fn) const;

  /// Runs the deep heap verifier (heap/HeapVerifier.h) plus
  /// collector-level cross-checks (blacklist consistency) and \returns
  /// the accumulated diagnostic report instead of aborting.  O(heap).
  HeapVerifyReport verifyHeapReport();

  /// verifyHeapReport(), with the historical abort semantics: prints
  /// the full report and fatals on any inconsistency.
  void verifyHeap();

  /// Runs the verifier's self-healing pass under the heap lock:
  /// counters resynced from their bitmaps, the page map re-derived from
  /// the block table, class free lists and free page runs rebuilt, and
  /// blocks with untrustworthy geometry quarantined (their pages
  /// deliberately leaked).  \returns the pre-repair report with each
  /// finding's Outcome filled in and RepairedClean reflecting the
  /// post-repair re-verification; counters fold into repairStats().
  HeapVerifyReport verifyAndRepair();

  /// Snapshot of the corruption-containment counters: repair passes,
  /// quarantined blocks/pages, collection retries, wild writes to
  /// sealed metadata, and the seal/unseal mprotect traffic.
  GcRepairStats repairStats() const;

  VirtualArena &arena() { return *Arena; }
  /// Low-level access for tests and experiment harnesses.
  ObjectHeap &objectHeap() { return *Heap; }
  PageAllocator &pageAllocator() { return *Pages; }
  Marker &marker() { return *MarkerImpl; }
  Blacklist &blacklist() { return *BlacklistImpl; }
  RootSet &roots() { return Roots; }
  /// The persistent worker pool shared by the Mark and Sweep phases.
  /// Threads are spawned lazily at the first parallel phase and parked
  /// between collections; tests assert on threadsSpawned().
  GcWorkerPool &workerPool() { return *Pool; }

private:
  /// Feeds the observer layer's phase-end events back into the current
  /// cycle's CollectionStats: GcStats is itself an observer consumer,
  /// so per-phase timing has exactly one source of truth.
  class PhaseTimingSink final : public GcObserver {
  public:
    void attach(CollectionStats *Cycle) { Current = Cycle; }
    void onPhaseEnd(GcPhase Phase, uint64_t Nanos,
                    const CollectionStats &) override {
      if (Current)
        Current->PhaseNanos[static_cast<unsigned>(Phase)] += Nanos;
    }

  private:
    CollectionStats *Current = nullptr;
  };

  /// Runs the deep verifier after every pipeline phase when
  /// GcConfig::VerifyEveryCollection is on; aborts with the report on
  /// any inconsistency so fuzz runs fail at the phase that corrupted
  /// the heap, not collections later.
  class VerifySink final : public GcObserver {
  public:
    explicit VerifySink(Collector &GC) : GC(GC) {}
    void onPhaseEnd(GcPhase Phase, uint64_t Nanos,
                    const CollectionStats &SoFar) override;

  private:
    Collector &GC;
  };

  friend class GcSentinel;

  /// Rate-limited warning kinds (one backoff counter each).
  enum class WarnEvent : unsigned {
    CollectionNoProgress = 0,
    LargeAllocOnBlacklistedHeap = 1,
    WorkerSpawnFailure = 2,
    SentinelIncident = 3,
    InvalidFree = 4,
    GuardViolation = 5,
    HandshakeStall = 6,
    MetadataRepair = 7,
    ReentrantCollection = 8,
    MidCyclePinOverflow = 9,
  };
  static constexpr unsigned NumWarnEvents = 10;

  /// The unguarded allocation paths (the historical allocate /
  /// allocateIgnoreOffPage bodies); the public entry points route
  /// through the guard layer first when DebugGuards is on.
  void *allocateRaw(size_t Bytes, ObjectKind Kind);
  void *allocateRawIgnoreOffPage(size_t Bytes, ObjectKind Kind);
  /// Guarded allocation: pads the request for header + redzone, takes a
  /// raw slot, arms the guard metadata, and returns the interior user
  /// pointer (slot base + GuardLayer::HeaderBytes).
  void *allocateGuarded(size_t Bytes, ObjectKind Kind, GuardSiteId Site,
                        bool IgnoreOffPage);
  /// Guarded free-path validation ladder; every bad class raises a
  /// structured incident instead of undefined behavior.
  void deallocateGuarded(void *Ptr);
  /// Resolution of a client pointer to a guarded object (user pointer =
  /// slot base + HeaderBytes with an intact, unquarantined header).
  struct GuardedRef {
    bool Valid = false;
    ObjectRef Ref;
    WindowOffset SlotBase = 0;
    GuardLayer::Decoded Info;
  };
  GuardedRef guardedRefFor(const void *Ptr) const;
  /// Updates counters/crash state, raises the GcIncident (observers +
  /// rate-limited warn), and fatals when GuardFatal.  \p Detail is a
  /// static string naming the violation for the warn proc and the
  /// fatal message.
  void reportGuardViolation(const GuardViolation &V, uint64_t Addr,
                            const char *Detail);
  /// Poison-checks one quarantine entry and releases its slot.
  void releaseQuarantined(const GuardLayer::QuarantineEntry &Entry);

  /// Heap-lock protocol (threaded mode only).  lockHeap publishes the
  /// calling thread's scan state and enters BlockedOnHeap before the
  /// acquire, so a thread frozen on the collector's mutex counts as
  /// stopped; the mutex is recursive because collect() runs from
  /// allocation slow paths that already hold it.
  void lockHeap();
  void unlockHeap();
  /// RAII heap lock that is a no-op until the first thread registers,
  /// keeping the zero-thread configuration on the unlocked sequential
  /// path.
  struct HeapLockGuard {
    explicit HeapLockGuard(Collector &GC)
        : GC(GC), Active(GC.ThreadedMode.load(std::memory_order_relaxed)) {
      if (Active)
        GC.lockHeap();
    }
    ~HeapLockGuard() {
      if (Active)
        GC.unlockHeap();
    }
    HeapLockGuard(const HeapLockGuard &) = delete;
    HeapLockGuard &operator=(const HeapLockGuard &) = delete;
    Collector &GC;
    bool Active;
  };
  /// Threaded-mode allocate(): safepoint poll, lock-free cache pop,
  /// then the locked refill / ordinary slow path.
  void *allocateThreaded(size_t Bytes, ObjectKind Kind);
  /// Refills \p Self's cache for \p Class under the heap lock and
  /// serves one slot; falls back to the ordinary small-object ladder
  /// when the class needs a new block.
  void *refillAndAllocate(MutatorThread *Self, size_t Bytes,
                          ObjectKind Kind, unsigned Class);
  /// Refills \p Self's typed stub for Precise descriptor \p Layout
  /// under the heap lock and serves one slot; falls back to the typed
  /// slow path when the layout needs a new block.
  void *refillTypedAndAllocate(MutatorThread *Self, LayoutId Layout);
  /// Counters + conditional clear for a slot handed out from a cache,
  /// mirroring allocateRaw's tail (BytesSinceGc was charged at refill).
  void *finishCachedAllocation(MutatorThread *Self, void *Result,
                               unsigned Class);
  /// Same, for a slot of known byte capacity (typed stubs record it).
  void *finishCachedSlot(MutatorThread *Self, void *Result,
                         size_t SlotBytes);
  /// Accounting + observer event for a completed cache refill.
  void noteCacheRefill(unsigned Class, unsigned Slots);
  /// What flushThreadCaches did: slots returned to the heap, and
  /// caches it had to leave populated because their owner is frozen by
  /// the watchdog's suspend signal.
  struct CacheFlushOutcome {
    uint64_t SlotsFlushed = 0;
    uint64_t CachesSkipped = 0;
  };
  /// Flushes every registered thread's cache (world stopped or
  /// quiesced) and cross-checks the reservation debt.  Caches owned by
  /// signal-suspended threads are skipped untouched: the owner may be
  /// frozen mid-take() inside the lock-free fast path, so mutating its
  /// stub vectors (or trusting its CacheAllocs counter) from here
  /// would race the instruction it resumes on — their slots are
  /// instead pinned live for the cycle (pinSuspendedThreadCaches), and
  /// the exact debt cross-check stands down until a handshake where
  /// every cache could be drained.
  CacheFlushOutcome flushThreadCaches();
  /// Sets the mark bit on every slot still cached by a signal-
  /// suspended thread, after the Mark phase and before the sweep, so
  /// the sweep keeps them (bdwgc's mark-the-free-lists treatment of
  /// thread-local caches).  Allocation-free: the world may hold a
  /// thread suspended inside libc malloc.  \returns slots pinned.
  uint64_t pinSuspendedThreadCaches();

  /// Pins an object allocated while a collection is in flight (an
  /// observer or warn callback allocating mid-cycle): marks it live
  /// now and records it for the post-Mark re-pin, since the Mark
  /// phase's bit reset would otherwise erase a pre-Mark pin.
  void pinMidCycleAllocation(void *Ptr);
  /// Whether any registered mutator is currently parked by the
  /// watchdog's suspend signal (frozen at an arbitrary instruction,
  /// possibly inside libc malloc with an arena lock held).
  bool anyMutatorSignalSuspended() const;
  /// Adds [StackTop, StackBase) + register-snapshot root ranges for
  /// every registered thread, in registration order; the collecting
  /// thread's bounds are the caller's (fresh) probe and jmp_buf.
  void addMutatorRootRanges(const MutatorThread *SelfThread,
                            const void *SelfStackTop,
                            const void *SelfRegsBegin,
                            const void *SelfRegsEnd,
                            std::vector<RootId> &Ids);

  /// ThreadRegistry::StallWarnFn target: routes a watchdog stall report
  /// for one still-running mutator through the rate-limited warn path
  /// (WarnEvent::HandshakeStall), naming the thread and its state.
  static void stallWarnThunk(void *Ctx, uint64_t ThreadId, uint32_t State,
                             uint64_t StalledNanos);
  /// Raises the HandshakeTimeout incident (per-thread trace attached),
  /// updates resilience/crash counters, and either fatals
  /// (GcConfig::HandshakeFatal) or resumes the stopped threads so the
  /// caller can abandon the collection attempt.  \p Reason names the
  /// abandoned collection for the event ring.
  void abandonStoppedWorld(ThreadRegistry::HandshakeResult &Handshake,
                           const char *Reason);
  /// Publishes the registry's lifetime handshake counters into the
  /// crash-visible state after every stop-the-world.
  void publishHandshakeCrashState();
  /// pthread_atfork handlers (process-wide, covering every live
  /// Collector in construction order): prepare quiesces the worker pool
  /// and takes each collector's heap, pool, and registry locks in rank
  /// order; parent unwinds; the child rebuilds each registry around the
  /// surviving thread, retires stale thread caches against the debt
  /// ledger, resets the worker pool, and reinstalls the crash reporter.
  static void forkPrepare();
  static void forkParent();
  static void forkChild();
  /// Per-collector pieces of the fork handlers.
  void forkPrepareOne();
  void forkParentOne();
  void forkChildOne();

  bool shouldCollectBeforeGrowth() const;
  void maybeRunStackClearHooks();
  /// Runs the startup collection once, before the first allocation.
  void maybeStartupCollect();
  /// Small-object slow path: threshold collect, grow, then the ladder.
  void *allocateSmallSlow(size_t Bytes, ObjectKind Kind);
  /// Large-object slow path: threshold collect, direct attempt (grows
  /// internally), then the ladder.
  void *allocateLargeSlow(size_t Bytes, ObjectKind Kind,
                          bool IgnoreOffPage);
  /// Typed-object slow path, mirroring allocateSmallSlow.
  void *allocateTypedSlow(LayoutId Layout);
  /// The shared exhaustion tail: flush lazy sweeps, collect, emergency
  /// collect — retrying \p Retry between rungs.  \returns the
  /// allocation or nullptr with the ladder exhausted (the OOM handler
  /// is the caller's last step, via reportOutOfMemory).
  void *runExhaustionLadder(uint64_t Bytes,
                            const std::function<void *()> &Retry);
  /// Emits the out-of-memory observer event and invokes the installed
  /// handler (once); \returns the handler's result verbatim.
  void *reportOutOfMemory(uint64_t Bytes);
  /// Tracks whether a ladder-forced collection reclaimed anything and
  /// warns on repeated no-progress cycles.
  void noteLadderCollection(const CollectionStats &Cycle);
  /// Issues \p Message through the warn proc and observers, suppressed
  /// to occurrences 1, 2, 4, 8, ... per event kind.
  void warn(WarnEvent Event, const char *Message, uint64_t Value);
  void reportLeaks();
  /// Runs one pipeline phase: phase-begin event, \p Body, timing,
  /// phase-end event (which the timing sink folds into \p Cycle).
  void runPhase(GcPhase Phase, CollectionStats &Cycle,
                const std::function<void()> &Body);
  void emitRetainedObjects();

  /// Lazily unseals the metadata arena on entry to a metadata-mutating
  /// path and re-seals at the outermost scope's exit once a collection
  /// has requested it (SealPending) — so sealed-mode traffic stays at
  /// two mprotect transitions per collection no matter how deeply
  /// collect() nests inside allocation slow paths.  No-op without
  /// GcConfig::SealMetadata.
  struct MetadataScope {
    explicit MetadataScope(Collector &GC) : GC(GC) {
      if (GC.MetaArena) {
        ++GC.MetadataDepth;
        if (GC.MetaArena->sealed()) {
          GC.MetaArena->unseal();
          GC.serviceMetadataWildWrites();
        }
      }
    }
    ~MetadataScope() {
      if (GC.MetaArena && --GC.MetadataDepth == 0 && GC.SealPending) {
        GC.SealPending = false;
        GC.MetaArena->seal();
      }
    }
    MetadataScope(const MetadataScope &) = delete;
    MetadataScope &operator=(const MetadataScope &) = delete;
    Collector &GC;
  };
  /// Drains the sealed arena's wild-write ring: attributes each caught
  /// store to the structure it hit (block table, page map, free lists),
  /// raises GcIncident{MetadataWildWrite}, and runs one repair pass.
  /// Called whenever the arena transitions sealed -> unsealed.
  void serviceMetadataWildWrites();
  /// One verifyAndRepair pass with counters folded into
  /// RepairStatsInfo; callers hold the heap lock (and, mid-collection,
  /// the stopped world).  \returns the annotated pre-repair report.
  HeapVerifyReport repairHeapLocked();

  /// Records an event in the crash-visible ring (see CrashInfo).
  void noteCrashEvent(GcEventKind Kind, int Phase, uint64_t Value) {
    CrashInfo.Events.push(
        Kind, Phase, CrashInfo.CollectionIndex.load(std::memory_order_relaxed),
        Value);
  }

  GcConfig Config;
  std::unique_ptr<VirtualArena> Arena;
  /// Dedicated mmap arena for GC metadata when GcConfig::SealMetadata
  /// is on; its pages flip PROT_READ between collections.  Declared
  /// before the structures that allocate from it so it is destroyed
  /// last.  Null (and everything heap-allocated) when sealing is off.
  std::unique_ptr<MetadataArena> MetaArena;
  std::unique_ptr<PageAllocator> Pages;
  std::unique_ptr<PageMap> Map;
  std::unique_ptr<BlockTable> Blocks;
  /// Guard layer (DebugGuards only).  Declared before Heap, which
  /// borrows a const pointer for sweep-time validation.
  std::unique_ptr<GuardLayer> Guards;
  std::unique_ptr<ObjectHeap> Heap;
  std::unique_ptr<Blacklist> BlacklistImpl;
  /// Declared before the phase drivers that borrow it so it outlives
  /// them on destruction.
  std::unique_ptr<GcWorkerPool> Pool;
  std::unique_ptr<Marker> MarkerImpl;
  std::unique_ptr<SweepContext> SweepCtx;
  RootSet Roots;
  FinalizationQueue Finalizers;
  std::optional<MachineStack> MachineStackScanner;
  ThreadRegistry Registry;
  /// Serializes every heap-mutating entry point in threaded mode, and
  /// doubles as the stop-the-world fence: the collector holds it for
  /// the whole collection.  Recursive so collections triggered from
  /// allocation slow paths re-enter cleanly.
  std::recursive_mutex HeapLock;
  /// Set (never cleared) by the first registerMutatorThread.  Until
  /// then no entry point touches HeapLock or the registry, so the
  /// single-mutator configuration is instruction-identical to the
  /// sequential collector.
  std::atomic<bool> ThreadedMode{false};
  /// Cache slots handed out by threads that have since unregistered;
  /// with live threads' counters this reconciles the heap's
  /// reservation debt.
  uint64_t CacheAllocsRetired = 0;

  LeakCallback OnLeak;
  std::vector<std::function<void()>> StackClearHooks;
  std::vector<std::function<void()>> PreCollectionHooks;
  GcObserverRegistry Observers;
  PhaseTimingSink TimingSink;
  VerifySink VerifierSink{*this};
  std::unique_ptr<GcSentinel> SentinelImpl;
  GcObserverId SentinelObserverId = 0;
  GcCrashState CrashInfo;
  bool CrashRegistered = false;

  uint64_t UniqueId;
  GcIncident LastGuardIncidentInfo;
  bool HasGuardIncident = false;
  CollectionStats LastCycle;
  GcLifetimeStats Lifetime;
  GcResilienceStats Resilience;
  /// Corruption-containment counters; seal traffic is read from the
  /// arena at snapshot time (repairStats()).
  GcRepairStats RepairStatsInfo;
  /// Set by the verify sink when a mid-collection verification failed
  /// under !RepairFatal: the remaining phases are skipped, the cycle
  /// abandoned, the heap repaired, and the pipeline retried once.
  bool RepairPending = false;
  /// Depth of nested MetadataScope frames (heap lock serializes).
  unsigned MetadataDepth = 0;
  /// A collection finished inside a nested scope; seal on unwind.
  bool SealPending = false;
  uint64_t WarnOccurrences[NumWarnEvents] = {};
  uint64_t BytesSinceGc = 0;
  uint64_t AllocsSinceClear = 0;
  bool StartupGcDone = false;
  bool InCollection = false;
  /// Objects handed out while InCollection (observer/warn callbacks
  /// allocating mid-cycle).  Each is mark-bit pinned at allocation
  /// time, but a begin-observer allocation precedes the Mark phase's
  /// bit reset — so the pipeline re-pins this list after Mark, before
  /// leak reporting and the sweep.  Cleared when the cycle ends.
  /// Capacity is reserved before stopTheWorld (MidCyclePinReserve) so
  /// appending never calls libc malloc inside the stopped window; see
  /// pinMidCycleAllocation for the overflow degrade.
  std::vector<void *> MidCyclePins;
  /// Entries MidCyclePins reserves before the world stops.  Growth
  /// past it is allowed only when no mutator is signal-suspended
  /// (handshake-parked threads sit in the safepoint poll, not inside
  /// libc, so malloc is safe then).
  static constexpr size_t MidCyclePinReserve = 1024;
  /// A mid-cycle pin could not be recorded without allocating while a
  /// mutator was frozen inside libc: leak reporting and the sweep are
  /// skipped for the rest of the cycle (including a repair retry) so
  /// the unrecorded object can never be reclaimed.  Reset with
  /// MidCyclePins at cycle end.
  bool MidCyclePinOverflow = false;
  /// The registered thread that initiated the current stop-the-world
  /// window (nullptr outside a stop, or when the initiator is
  /// unregistered).  Observer callbacks run on this thread while every
  /// other mutator is parked; its safepoint polls must not park it
  /// against its own stop request, so a callback that allocates cannot
  /// self-deadlock (see DESIGN.md "Callback re-entrancy").
  std::atomic<MutatorThread *> StopInitiator{nullptr};
};

/// RAII mutator registration: registers the constructing thread with
/// \p GC and unregisters at scope exit.  The canonical shape of a
/// mutator thread's entry function:
/// \code
///   void worker(cgc::Collector &GC) {
///     cgc::GcThreadScope Scope(GC);
///     // ... allocate, mutate, GC.safepoint() in compute loops ...
///   }
/// \endcode
class GcThreadScope {
public:
  explicit GcThreadScope(Collector &GC, const void *StackBaseHint = nullptr)
      : GC(GC), Registered(GC.registerMutatorThread(StackBaseHint)) {}
  ~GcThreadScope() {
    if (Registered)
      GC.unregisterMutatorThread();
  }
  GcThreadScope(const GcThreadScope &) = delete;
  GcThreadScope &operator=(const GcThreadScope &) = delete;

  /// False when the registry was full (GcConfig::MutatorThreads).
  bool registered() const { return Registered; }

private:
  Collector &GC;
  bool Registered;
};

} // namespace cgc

#endif // CGC_CORE_COLLECTOR_H
