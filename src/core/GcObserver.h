//===- core/GcObserver.h - GC event/observability hooks --------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The collector's observability layer.  Every collection emits a fixed
/// event sequence:
///
///   onCollectionBegin
///     onPhaseBegin/onPhaseEnd for each pipeline phase, in GcPhase
///     order (see core/GcPhase.h)
///     onObjectRetained for each surviving object (Finalize phase;
///     opt-in via wantsRetainedObjects)
///   onCollectionEnd
///
/// Collections triggered from inside allocation (allocation-threshold,
/// heap-exhausted, the startup collection) emit exactly the same
/// sequence, so consecutive collections never interleave events.
///
/// GcStats' per-phase timing, the collector report, and the parallel-
/// mark benchmark all consume this layer; clients register their own
/// observers through Collector::addObserver or the C API.
///
/// Re-entrancy rules: callbacks may register and unregister observers
/// (including the running observer unregistering itself); an observer
/// removed mid-dispatch receives no further events, and one added
/// mid-dispatch starts receiving events at the next event.  Callbacks
/// must not allocate from or collect the observed collector — the
/// collector is mid-cycle.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_CORE_GCOBSERVER_H
#define CGC_CORE_GCOBSERVER_H

#include "core/GcPhase.h"
#include "heap/ObjectKind.h"
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cgc {

struct CollectionStats;
struct GcIncident;

using GcObserverId = uint32_t;

/// Interface for collection-cycle event consumers.  All callbacks have
/// empty default implementations so observers override only what they
/// consume.
class GcObserver {
public:
  virtual ~GcObserver() = default;

  /// A collection cycle is starting.  \p CollectionIndex counts
  /// collections over the collector's lifetime (0-based); \p Reason is
  /// the string passed to Collector::collect.
  virtual void onCollectionBegin(uint64_t CollectionIndex,
                                 const char *Reason) {
    (void)CollectionIndex;
    (void)Reason;
  }

  /// The cycle finished; \p Stats is the completed cycle record.
  virtual void onCollectionEnd(uint64_t CollectionIndex,
                               const CollectionStats &Stats) {
    (void)CollectionIndex;
    (void)Stats;
  }

  /// Pipeline phase \p Phase is starting.
  virtual void onPhaseBegin(GcPhase Phase) { (void)Phase; }

  /// Pipeline phase \p Phase finished after \p Nanos.  \p SoFar is the
  /// cycle's statistics accumulated up to and including this phase.
  virtual void onPhaseEnd(GcPhase Phase, uint64_t Nanos,
                          const CollectionStats &SoFar) {
    (void)Phase;
    (void)Nanos;
    (void)SoFar;
  }

  /// Return true to receive onObjectRetained events.  Off by default:
  /// enumerating survivors costs a full heap walk per collection.
  virtual bool wantsRetainedObjects() const { return false; }

  /// The collection retained (marked) the allocated object at \p Ptr.
  /// Emitted during the Finalize phase, in block order.
  virtual void onObjectRetained(void *Ptr, size_t Bytes, ObjectKind Kind) {
    (void)Ptr;
    (void)Bytes;
    (void)Kind;
  }

  /// The allocation ladder is about to run a last-resort emergency
  /// collection (interior-pointer recognition and page-placement
  /// constraints relaxed) for a request of \p RequestBytes.
  virtual void onEmergencyCollection(uint64_t RequestBytes) {
    (void)RequestBytes;
  }

  /// Every ladder rung failed for a request of \p RequestBytes.
  /// \p HandlerInstalled tells whether a GcOomHandler will be invoked
  /// after this event.
  virtual void onOutOfMemory(uint64_t RequestBytes, bool HandlerInstalled) {
    (void)RequestBytes;
    (void)HandlerInstalled;
  }

  /// A rate-limited resilience warning was issued (same payload the
  /// warn proc receives; suppressed repetitions are not dispatched).
  virtual void onWarning(const char *Message, uint64_t Value) {
    (void)Message;
    (void)Value;
  }

  /// The per-phase verifier sink (GcConfig::VerifyEveryCollection) ran
  /// the deep heap verifier.  \p Clean is true when no inconsistencies
  /// were found; \p IssueCount is the report size.  Explicit
  /// Collector::verifyHeapReport calls do not dispatch this event.
  virtual void onHeapVerified(bool Clean, size_t IssueCount) {
    (void)Clean;
    (void)IssueCount;
  }

  /// The stop-the-world handshake completed: \p MutatorsStopped
  /// registered threads parked within \p Nanos.  Emitted before
  /// onCollectionBegin's phases, only when at least one mutator thread
  /// is registered — single-mutator collections never handshake.
  virtual void onStopTheWorld(uint64_t MutatorsStopped, uint64_t Nanos) {
    (void)MutatorsStopped;
    (void)Nanos;
  }

  /// A registered thread's allocation cache was refilled with
  /// \p Slots reservations of size class \p SizeClass (dispatched under
  /// the heap lock, from the allocating thread).
  virtual void onThreadCacheRefill(unsigned SizeClass, unsigned Slots) {
    (void)SizeClass;
    (void)Slots;
  }

  /// The retention-storm sentinel exhausted its escalation ladder and
  /// raised a structured incident (core/GcIncident.h).  \p Incident is
  /// valid only for the duration of the callback.  Dispatched from
  /// onCollectionEnd context, so the usual no-alloc/no-collect rules
  /// apply.
  virtual void onIncident(const GcIncident &Incident) { (void)Incident; }
};

/// Holds registered observers and dispatches events to them.  Observers
/// are not owned.  Registration and unregistration are legal at any
/// time, including from inside a callback being dispatched.
class GcObserverRegistry {
public:
  GcObserverId add(GcObserver *Observer) {
    Entries.push_back({NextId, Observer});
    return NextId++;
  }

  /// \returns true if \p Id was registered.  Safe during dispatch: the
  /// slot is tombstoned and compacted once no dispatch is running.
  bool remove(GcObserverId Id) {
    for (Entry &E : Entries) {
      if (E.Id != Id || !E.Observer)
        continue;
      E.Observer = nullptr;
      if (DispatchDepth == 0)
        compact();
      return true;
    }
    return false;
  }

  bool empty() const { return Entries.empty(); }

  bool anyWantsRetainedObjects() const {
    for (const Entry &E : Entries)
      if (E.Observer && E.Observer->wantsRetainedObjects())
        return true;
    return false;
  }

  /// Calls \p Fn(observer) on every live observer.  Indexes rather than
  /// iterates so callbacks may add or remove observers underneath us;
  /// tombstones keep already-visited slots stable.
  template <typename FnT> void dispatch(FnT Fn) {
    ++DispatchDepth;
    for (size_t I = 0; I < Entries.size(); ++I) {
      if (GcObserver *Observer = Entries[I].Observer)
        Fn(*Observer);
    }
    if (--DispatchDepth == 0)
      compact();
  }

private:
  struct Entry {
    GcObserverId Id;
    GcObserver *Observer;
  };

  void compact() {
    size_t Out = 0;
    for (size_t I = 0; I != Entries.size(); ++I)
      if (Entries[I].Observer)
        Entries[Out++] = Entries[I];
    Entries.resize(Out);
  }

  std::vector<Entry> Entries;
  GcObserverId NextId = 1;
  unsigned DispatchDepth = 0;
};

} // namespace cgc

#endif // CGC_CORE_GCOBSERVER_H
