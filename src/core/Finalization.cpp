//===- core/Finalization.cpp - Finalization queue -------------------------===//

#include "core/Finalization.h"

using namespace cgc;

size_t FinalizationQueue::processUnreachable(Marker &MarkerImpl,
                                             ObjectHeap &Heap,
                                             BlockTable &Blocks,
                                             CollectionStats &Stats) {
  // Entries staged by an abandoned (repair-retried) cycle left the
  // Registered map but were never published; their resurrection marks
  // were discarded with the retry's mark reset, so renew them or the
  // sweep reclaims objects a pending finalizer will read.  Empty —
  // and free — on every normally completed cycle.
  for (const auto &[Offset, Fn] : Staged)
    MarkerImpl.markFromCandidate(Offset, Stats);
  // Collect the unreachable set first: resurrecting one object may make
  // another registered object reachable again, and PCR semantics queue
  // everything that was unreachable at mark completion.
  std::vector<WindowOffset> Unreachable;
  for (const auto &[Offset, Fn] : Registered) {
    ObjectRef Ref = Heap.refForBase(Offset);
    if (!Ref.valid())
      continue; // Object was explicitly freed; registration is stale.
    const BlockDescriptor &Block = Blocks.get(Ref.Block);
    if (!Block.MarkBits.test(Ref.Slot))
      Unreachable.push_back(Offset);
  }
  for (WindowOffset Offset : Unreachable) {
    auto It = Registered.find(Offset);
    Staged.emplace_back(Offset, std::move(It->second));
    Registered.erase(It);
    // Resurrect: the finalizer may read the object, so it and its
    // reachable subgraph must survive the upcoming sweep.
    MarkerImpl.markFromCandidate(Offset, Stats);
  }
  Stats.FinalizersQueued += Unreachable.size();
  return Unreachable.size();
}

size_t FinalizationQueue::publishStaged() {
  size_t Count = Staged.size();
  Ready.insert(Ready.end(), std::make_move_iterator(Staged.begin()),
               std::make_move_iterator(Staged.end()));
  Staged.clear();
  return Count;
}

size_t FinalizationQueue::runReady(VirtualArena &Arena) {
  // Finalizers may register new finalizers or trigger allocation, so
  // drain from a moved-out copy.
  std::vector<std::pair<WindowOffset, Finalizer>> Batch = std::move(Ready);
  Ready.clear();
  for (auto &[Offset, Fn] : Batch)
    Fn(Arena.pointerTo(Offset));
  return Batch.size();
}
