//===- core/GcWorkerPool.cpp - Persistent GC worker threads ---------------===//

#include "core/GcWorkerPool.h"
#include "support/Assert.h"
#include "support/FaultInjection.h"
#include <algorithm>
#include <system_error>

using namespace cgc;

GcWorkerPool::~GcWorkerPool() {
  {
    std::lock_guard<std::mutex> Guard(Lock);
    ShuttingDown = true;
  }
  WorkReady.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

unsigned GcWorkerPool::threadsSpawned() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return static_cast<unsigned>(Threads.size());
}

uint64_t GcWorkerPool::jobsDispatched() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Generation;
}

void GcWorkerPool::lockForFork() { Lock.lock(); }

void GcWorkerPool::unlockForFork() { Lock.unlock(); }

void GcWorkerPool::resetAfterFork() {
  std::lock_guard<std::mutex> Guard(Lock);
  CGC_ASSERT(Job == nullptr, "fork with a pool job in flight");
  for (std::thread &T : Threads)
    T.detach();
  Threads.clear();
  Remaining = 0;
  JobWorkers = 0;
  ShuttingDown = false;
}

uint64_t GcWorkerPool::spawnFailures() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return SpawnFailures;
}

void GcWorkerPool::setSpawnFailureCallback(std::function<void(uint64_t)> Fn) {
  std::lock_guard<std::mutex> Guard(Lock);
  OnSpawnFailure = std::move(Fn);
}

void GcWorkerPool::ensureThreads(unsigned Count) {
  uint64_t FailureTotal = 0;
  std::function<void(uint64_t)> Callback;
  {
    std::lock_guard<std::mutex> Guard(Lock);
    while (Threads.size() < Count) {
      if (CGC_INJECT_FAULT(WorkerSpawn)) {
        FailureTotal = ++SpawnFailures;
        break;
      }
      unsigned Index = static_cast<unsigned>(Threads.size());
      // A thread spawned mid-life must not run a job dispatched before
      // it existed: it starts already caught up with the current
      // generation.
      try {
        Threads.emplace_back(
            [this, Index, Gen = Generation] { threadMain(Index, Gen); });
      } catch (const std::system_error &) {
        // Resource exhaustion (EAGAIN and friends).  Not fatal: phases
        // degrade to however many workers exist.
        FailureTotal = ++SpawnFailures;
        break;
      }
    }
    if (FailureTotal != 0)
      Callback = OnSpawnFailure;
  }
  // The callback may warn through the collector (observers, warn
  // procs); holding the pool lock across that invites deadlock with a
  // callback that queries the pool.
  if (Callback)
    Callback(FailureTotal);
}

unsigned GcWorkerPool::ensureWorkers(unsigned Desired) {
  Desired = std::clamp(Desired, 1u, MaxWorkers);
  if (Desired == 1)
    return 1;
  ensureThreads(Desired - 1);
  std::lock_guard<std::mutex> Guard(Lock);
  return std::min<unsigned>(Desired,
                            static_cast<unsigned>(Threads.size()) + 1);
}

void GcWorkerPool::runOn(unsigned Workers,
                         const std::function<void(unsigned)> &Fn) {
  Workers = std::clamp(Workers, 1u, MaxWorkers);
  if (Workers == 1) {
    // Sequential phases bypass the pool entirely: no threads, no
    // locks, nothing the paper's configurations could observe.
    Fn(0);
    return;
  }
  ensureThreads(Workers - 1);
  {
    std::unique_lock<std::mutex> Guard(Lock);
    // Spawning can fail (or be fault-injected to fail); run on the
    // threads that actually exist.
    Workers = std::min<unsigned>(
        Workers, static_cast<unsigned>(Threads.size()) + 1);
    if (Workers == 1) {
      Guard.unlock();
      Fn(0);
      return;
    }
    CGC_ASSERT(Job == nullptr, "nested GcWorkerPool::runOn");
    Job = &Fn;
    JobWorkers = Workers;
    Remaining = Workers - 1;
    ++Generation;
  }
  WorkReady.notify_all();
  // The caller is always worker 0, so a phase keeps making progress
  // even if the OS is slow to schedule the pool threads.
  Fn(0);
  std::unique_lock<std::mutex> Guard(Lock);
  JobDone.wait(Guard, [this] { return Remaining == 0; });
  Job = nullptr;
}

void GcWorkerPool::threadMain(unsigned Index, uint64_t StartGeneration) {
  uint64_t Seen = StartGeneration;
  std::unique_lock<std::mutex> Guard(Lock);
  for (;;) {
    WorkReady.wait(Guard,
                   [&] { return ShuttingDown || Generation != Seen; });
    if (ShuttingDown)
      return;
    Seen = Generation;
    // A job may ask for fewer workers than the pool has spawned; the
    // extras stay parked but still acknowledge the generation.
    if (Index + 1 >= JobWorkers)
      continue;
    const std::function<void(unsigned)> *MyJob = Job;
    Guard.unlock();
    (*MyJob)(Index + 1);
    Guard.lock();
    if (--Remaining == 0)
      JobDone.notify_one();
  }
}
