//===- core/GcNew.cpp - Typed allocation helpers --------------------------===//

#include "core/GcNew.h"

using namespace cgc;

namespace {
thread_local Collector *AmbientGC = nullptr;
} // namespace

Collector *cgc::ambientCollector() { return AmbientGC; }

GcScope::GcScope(Collector &GC) : Previous(AmbientGC) { AmbientGC = &GC; }

GcScope::~GcScope() { AmbientGC = Previous; }

void *GcAllocated::operator new(size_t Bytes) {
  CGC_CHECK(AmbientGC, "GcAllocated::new without an active GcScope");
  void *Memory = AmbientGC->allocate(Bytes, ObjectKind::Normal);
  CGC_CHECK(Memory, "GcAllocated::new: heap arena exhausted");
  return Memory;
}

void *GcAllocated::operator new[](size_t Bytes) {
  return GcAllocated::operator new(Bytes);
}
