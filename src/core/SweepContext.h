//===- core/SweepContext.h - Parallel sweep phase --------------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Sweep phase, run on the collector's persistent worker pool.
///
/// Sweeping decomposes cleanly (see heap/ObjectHeap.h):
///
///   1. beginSweep — sequential prologue: class lists emptied, large
///      and uncollectable blocks handled inline, small collectable
///      blocks gathered into a plan (or queued, under LazySweep).
///   2. per-block bodies — sweepSmallBlockBody on each planned block.
///      A body touches only its block's own metadata and pages, so the
///      plan shards across pool workers with no synchronization beyond
///      the pool's job barrier.  Each worker accumulates counters into
///      a private SweepResult and records each block's disposition and
///      freed bytes into its preassigned slot of a shared outcome
///      array (disjoint indices — no races).
///   3. sequential merge — dispositions applied in plan (block-id)
///      order, exactly the order the sequential sweep would, so class
///      lists — including the LIFO ablation's stacks — come out
///      bit-identical for any worker count; per-worker results summed.
///   4. finishSweep — sequential epilogue: large releases, stats.
///
/// With SweepThreads == 1 the context calls the per-block steps inline
/// on the caller's thread, reproducing ObjectHeap::sweep() exactly.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_CORE_SWEEPCONTEXT_H
#define CGC_CORE_SWEEPCONTEXT_H

#include "core/GcConfig.h"
#include "core/GcStats.h"
#include "core/GcWorkerPool.h"
#include "heap/ObjectHeap.h"

namespace cgc {

class SweepContext {
public:
  static constexpr unsigned MaxWorkers = GcWorkerPool::MaxWorkers;

  SweepContext(ObjectHeap &Heap, GcWorkerPool &Pool, const GcConfig &Config)
      : Heap(Heap), Pool(Pool), Config(Config) {}

  /// Runs a complete sweep on GcConfig::SweepThreads workers and
  /// \returns the merged result.  Records the worker count in \p Stats.
  SweepResult run(CollectionStats &Stats);

private:
  ObjectHeap &Heap;
  GcWorkerPool &Pool;
  const GcConfig &Config;
};

} // namespace cgc

#endif // CGC_CORE_SWEEPCONTEXT_H
