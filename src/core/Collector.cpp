//===- core/Collector.cpp - Public collector facade -----------------------===//

#include "core/Collector.h"
#include "core/GcSentinel.h"
#include "heap/ThreadCache.h"
#include "support/MathExtras.h"
#include "support/SignalSuspend.h"
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <new>
#include <pthread.h>

using namespace cgc;

namespace {

uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Live collectors in construction order, for the process-wide
/// pthread_atfork handlers.  Function-local statics so a collector
/// constructed before main() still finds them initialized.
std::mutex &forkListLock() {
  static std::mutex Lock;
  return Lock;
}

std::vector<Collector *> &forkCollectors() {
  static std::vector<Collector *> List;
  return List;
}

} // namespace

Collector::Collector(const GcConfig &Cfg) : Config(Cfg) {
  static std::atomic<uint64_t> NextUniqueId{1};
  UniqueId = NextUniqueId.fetch_add(1);
  // CI's verifier lane flips this on for unmodified test binaries.
  if (const char *Env = std::getenv("CGC_VERIFY_EVERY_COLLECTION"))
    if (*Env != '\0' && !(Env[0] == '0' && Env[1] == '\0'))
      Config.VerifyEveryCollection = true;
  Arena = std::make_unique<VirtualArena>(Config.WindowBytes);

  uint64_t BaseOffset = alignTo(Config.heapBaseOffset(), PageSize);
  CGC_CHECK(BaseOffset + Config.MaxHeapBytes <= Arena->size(),
            "heap arena does not fit the window at this placement");
  PageIndex BasePage = pageOfOffset(BaseOffset);
  PageIndex MaxPages =
      static_cast<PageIndex>(Config.MaxHeapBytes >> PageSizeLog2);

  // Sealed-metadata mode: the block table, page map, and free-run maps
  // draw their storage from a dedicated arena whose pages are flipped
  // PROT_READ between collections, so a wild client store into GC
  // metadata faults (and is contained) instead of silently corrupting.
  if (Config.SealMetadata)
    MetaArena = std::make_unique<MetadataArena>();
  Pages = std::make_unique<PageAllocator>(*Arena, BasePage, MaxPages,
                                          Config.HeapGrowthPages,
                                          Config.DecommitFreedPages,
                                          MetaArena.get());
  Map = std::make_unique<PageMap>(Arena->numPages(), MetaArena.get());
  Blocks = std::make_unique<BlockTable>(MetaArena.get());

  if (Config.DebugGuards) {
    // Guarded sweeps validate every slot against its header, and the
    // quarantine-flush-before-sweep invariant needs sweeps to happen
    // inside collections — so lazy sweeping is forced off.
    Config.LazySweep = false;
    Guards = std::make_unique<GuardLayer>(Config.QuarantineSlots);
  }

  ObjectHeapConfig HeapConfig;
  HeapConfig.AvoidTrailingZeroAddresses = Config.AvoidTrailingZeroAddresses;
  HeapConfig.ClearFreedObjects = Config.ClearFreedObjects;
  HeapConfig.AddressOrderedAllocation = Config.AddressOrderedAllocation;
  HeapConfig.LazySweep = Config.LazySweep;
  HeapConfig.Guards = Guards.get();
  HeapConfig.PointerPageConstraint = Config.Interior == InteriorPolicy::All
                                         ? PageConstraint::AllPagesClean
                                         : PageConstraint::FirstPageClean;
  Heap = std::make_unique<ObjectHeap>(*Arena, *Pages, *Map, *Blocks,
                                      HeapConfig);

  BlacklistImpl =
      createBlacklist(Config.Blacklist, Arena->numPages(),
                      Config.HashedBlacklistBitsLog2, Config.BlacklistAging);
  Pages->setBlacklistQuery([this](PageIndex Page) {
    return BlacklistImpl->isBlacklisted(Page);
  });

  // One persistent pool serves both parallel phases: threads are
  // spawned lazily at the first collection that wants them and parked
  // between phases, never constructed per collection.
  Pool = std::make_unique<GcWorkerPool>();
  MarkerImpl = std::make_unique<Marker>(*Arena, *Pages, *Map, *Blocks,
                                        *Heap, *BlacklistImpl, *Pool,
                                        Config);
  SweepCtx = std::make_unique<SweepContext>(*Heap, *Pool, Config);

  // Guarded user pointers are slot base + HeaderBytes; under BaseOnly
  // interior recognition that displacement must be registered or no
  // guarded object would ever be retained.
  if (Guards && Config.Interior == InteriorPolicy::BaseOnly)
    MarkerImpl->registerDisplacement(GuardLayer::HeaderBytes);

  // GcStats consumes the observer layer like any other client: the
  // timing sink is the first registered observer, so later observers
  // see phase timings already folded into the cycle record.  The
  // verifier sink comes second: by the time it aborts on a corrupted
  // phase, the phase's timing is already recorded.
  Observers.add(&TimingSink);
  Observers.add(&VerifierSink);

  // Crash visibility: mirror this collector's identity into the
  // process-global registry the signal-handler dump walks.  A full
  // registry (> MaxTrackedCollectors live collectors) just means this
  // one is absent from crash reports.
  CrashInfo.CollectorId.store(UniqueId, std::memory_order_relaxed);
  CrashInfo.GuardedMode.store(Guards ? 1 : 0, std::memory_order_relaxed);
  CrashRegistered = crash::registerState(&CrashInfo);

  // Repeated spawn failures go through the same exponential-backoff
  // limiter as the OOM ladder's warnings, so a soak run that can never
  // spawn reports occurrences 1, 2, 4, 8, ... instead of spamming.
  Pool->setSpawnFailureCallback([this](uint64_t Failures) {
    warn(WarnEvent::WorkerSpawnFailure,
         "cgc: worker thread spawn failed; collection degraded to fewer "
         "workers",
         Failures);
  });

  // Handshake watchdog: resolve and install the reserved suspend signal
  // up front, so the first stalled handshake can escalate without doing
  // anything allocation- or lock-shaped in the stop path.  A negative
  // SuspendSignal disables the signal rung (the ladder goes
  // warn -> timeout); installation failure degrades the same way.
  if (Config.HandshakeDeadlineMs != 0) {
    int Sig = -1;
    if (Config.SuspendSignal >= 0) {
      Sig = suspend::resolveSuspendSignal(Config.SuspendSignal);
      if (Sig >= 0 && suspend::ensureInstalled(Sig) < 0)
        Sig = -1;
      if (Sig >= 0)
        crash::setReservedSignal(Sig);
    }
    Registry.configureWatchdog(Config.HandshakeDeadlineMs * 1000000ull, Sig,
                               &Collector::stallWarnThunk, this);
  }

  // Fork safety: every live collector participates in one process-wide
  // atfork triple (registered once; the handlers walk the list).
  {
    std::lock_guard<std::mutex> Guard(forkListLock());
    forkCollectors().push_back(this);
  }
  static std::once_flag AtforkOnce;
  std::call_once(AtforkOnce, [] {
    ::pthread_atfork(&Collector::forkPrepare, &Collector::forkParent,
                     &Collector::forkChild);
  });

  configureSentinel(Config.Sentinel);

  // Seal immediately: the window until the first allocation unseals is
  // already one where a buggy client could scribble on fresh metadata.
  if (MetaArena)
    MetaArena->seal();
}

Collector::~Collector() {
  // Member destructors (block table, page map, free-run maps) release
  // their storage back into the arena, which must be writable.
  if (MetaArena)
    MetaArena->unseal();
  {
    std::lock_guard<std::mutex> Guard(forkListLock());
    std::vector<Collector *> &List = forkCollectors();
    List.erase(std::remove(List.begin(), List.end(), this), List.end());
  }
  if (CrashRegistered)
    crash::unregisterState(&CrashInfo);
}

//===----------------------------------------------------------------------===//
// Fork safety
//===----------------------------------------------------------------------===//

void Collector::forkPrepare() {
  forkListLock().lock();
  for (Collector *GC : forkCollectors())
    GC->forkPrepareOne();
}

void Collector::forkParent() {
  std::vector<Collector *> &List = forkCollectors();
  for (auto It = List.rbegin(); It != List.rend(); ++It)
    (*It)->forkParentOne();
  forkListLock().unlock();
}

void Collector::forkChild() {
  std::vector<Collector *> &List = forkCollectors();
  for (auto It = List.rbegin(); It != List.rend(); ++It)
    (*It)->forkChildOne();
  crash::reinstallAfterFork();
  forkListLock().unlock();
}

void Collector::forkPrepareOne() {
  // Rank order: the heap lock first (waits out any in-flight collection
  // and quiesces allocation; lockHeap publishes a registered forking
  // thread's scan state before blocking so the handshake stays
  // deadlock-free), then the worker pool (no job dispatch straddles the
  // fork), then the registry (no registration straddles it).
  lockHeap();
  Pool->lockForFork();
  Registry.lockForFork();
}

void Collector::forkParentOne() {
  Registry.unlockForFork();
  Pool->unlockForFork();
  unlockHeap();
}

void Collector::forkChildOne() {
  Registry.unlockForFork();
  Pool->unlockForFork();
  // Only the forking thread survived the fork: the pool workers and
  // every other mutator are gone.  Detach the stale pool records so the
  // next parallel phase respawns, and drop the dead mutators' records —
  // returning their cache reservations against the debt ledger first,
  // exactly as unregisterMutatorThread would have.
  Pool->resetAfterFork();
  Registry.rebuildAfterFork(
      ThreadRegistry::current(), [this](MutatorThread &Thread) {
        if (Thread.Cache)
          Thread.Cache->flush(*Heap);
        CacheAllocsRetired +=
            Thread.CacheAllocs.load(std::memory_order_relaxed);
      });
  CrashInfo.RegisteredThreads.store(Registry.registeredCount(),
                                    std::memory_order_relaxed);
  CrashInfo.CacheSlotDebt.store(Heap->cacheSlotDebt(),
                                std::memory_order_relaxed);
  // The heap lock cannot simply be released here: recursive-mutex
  // ownership is bound to the locking thread's kernel TID, and the
  // forking thread has a new one in the child, so unlock() would fail
  // with EPERM (swallowed inside std::recursive_mutex) and leave the
  // lock wedged under the dead parent thread's id.  The child is
  // single-threaded at this point, so reconstructing the mutex in
  // place is safe.
  new (&HeapLock) std::recursive_mutex();
}

//===----------------------------------------------------------------------===//
// Stop-the-world hardening
//===----------------------------------------------------------------------===//

void Collector::stallWarnThunk(void *Ctx, uint64_t ThreadId, uint32_t State,
                               uint64_t StalledNanos) {
  (void)StalledNanos;
  Collector *GC = static_cast<Collector *>(Ctx);
  // One static message per observable state so the warn proc contract
  // (static strings) holds; the stalled thread's id rides in Value.
  const char *Message =
      State == static_cast<uint32_t>(MutatorState::Running)
          ? "cgc: stop-the-world stalled; mutator thread is running past "
            "the handshake deadline's warning rung"
          : "cgc: stop-the-world stalled; mutator thread is slow to park";
  GC->warn(WarnEvent::HandshakeStall, Message, ThreadId);
}

void Collector::publishHandshakeCrashState() {
  CrashInfo.Handshakes.store(Registry.handshakes(),
                             std::memory_order_relaxed);
  CrashInfo.SignalSuspensions.store(Registry.signalSuspensions(),
                                    std::memory_order_relaxed);
  CrashInfo.HandshakeTimeouts.store(Registry.handshakeTimeouts(),
                                    std::memory_order_relaxed);
  CrashInfo.MaxStopNanos.store(Registry.maxStopNanos(),
                               std::memory_order_relaxed);
}

void Collector::abandonStoppedWorld(
    ThreadRegistry::HandshakeResult &Handshake, const char *Reason) {
  (void)Reason;
  ++Resilience.HandshakeTimeouts;
  ++Resilience.AbandonedCollections;
  publishHandshakeCrashState();
  GcIncident Incident;
  Incident.Cause = GcIncidentCause::HandshakeTimeout;
  Incident.CollectionIndex = Lifetime.Collections;
  Incident.HandshakeTrace = std::move(Handshake.Trace);
  Observers.dispatch([&](GcObserver &O) { O.onIncident(Incident); });
  warn(WarnEvent::HandshakeStall,
       "cgc: stop-the-world handshake timed out; abandoning collection",
       Handshake.Nanos);
  if (Config.HandshakeFatal)
    fatalError("stop-the-world handshake timed out", __FILE__, __LINE__);
  // The world resumes un-collected; the caller returns an empty cycle
  // and the allocation ladder degrades to heap growth.
  Registry.resumeTheWorld();
}

void Collector::configureSentinel(const SentinelPolicy &Policy) {
  if (SentinelImpl) {
    SentinelImpl->standDown();
    Observers.remove(SentinelObserverId);
    SentinelImpl.reset();
    SentinelObserverId = 0;
  }
  Config.Sentinel = Policy;
  if (!Policy.Enabled)
    return;
  SentinelImpl = std::make_unique<GcSentinel>(*this, Policy);
  SentinelObserverId = Observers.add(SentinelImpl.get());
}

void Collector::maybeStartupCollect() {
  // The paper's startup guarantee: one (fast) collection before any
  // allocation, so static false references are blacklisted before the
  // allocator can place pages under them.
  if (StartupGcDone || InCollection)
    return;
  StartupGcDone = true;
  if (Config.GcAtStartup)
    collect("startup");
}

void *Collector::allocate(size_t Bytes, ObjectKind Kind) {
  if (ThreadedMode.load(std::memory_order_relaxed))
    return allocateThreaded(Bytes, Kind);
  if (Guards)
    return allocateGuarded(Bytes, Kind, /*Site=*/0, /*IgnoreOffPage=*/false);
  return allocateRaw(Bytes, Kind);
}

//===----------------------------------------------------------------------===//
// Mutator threads
//===----------------------------------------------------------------------===//

void Collector::lockHeap() {
  MutatorThread *Self = ThreadRegistry::current();
  // Publish scan state and leave Running *before* the acquire: if a
  // collection holds the lock, this thread is frozen here with fresh
  // stack/register bounds and counts as stopped (see ThreadRegistry.h).
  if (Self)
    Registry.beginBlocked(Self);
  HeapLock.lock();
  if (Self)
    Registry.endBlocked(Self);
}

void Collector::unlockHeap() { HeapLock.unlock(); }

bool Collector::registerMutatorThread(const void *StackBaseHint) {
  const void *Base =
      StackBaseHint ? StackBaseHint : ThreadRegistry::currentStackBase();
  // A plain acquire, not lockHeap(): this thread has no registry record
  // yet, so an in-flight collection neither waits for it nor scans it,
  // and blocking unpublished here is safe.  Holding the lock serializes
  // registration against any handshake.
  std::lock_guard<std::recursive_mutex> Guard(HeapLock);
  MutatorThread *Thread =
      Registry.registerThread(Base, Config.MutatorThreads);
  if (!Thread)
    return false;
  if (Config.ThreadCacheSlots != 0 && !Guards)
    Thread->Cache = std::make_unique<ThreadCache>(Heap->numSizeClasses(),
                                                  Config.ThreadCacheSlots);
  ThreadedMode.store(true, std::memory_order_release);
  CrashInfo.RegisteredThreads.store(Registry.registeredCount(),
                                    std::memory_order_relaxed);
  return true;
}

void Collector::unregisterMutatorThread() {
  MutatorThread *Self = ThreadRegistry::current();
  CGC_CHECK(Self != nullptr,
            "unregisterMutatorThread from an unregistered thread");
  lockHeap();
  if (Self->Cache)
    Self->Cache->flush(*Heap);
  CacheAllocsRetired += Self->CacheAllocs.load(std::memory_order_relaxed);
  Registry.unregisterThread(Self);
  CrashInfo.RegisteredThreads.store(Registry.registeredCount(),
                                    std::memory_order_relaxed);
  CrashInfo.CacheSlotDebt.store(Heap->cacheSlotDebt(),
                                std::memory_order_relaxed);
  unlockHeap();
}

void Collector::safepoint() {
  if (!ThreadedMode.load(std::memory_order_relaxed))
    return;
  MutatorThread *Self = ThreadRegistry::current();
  // The stop initiator polling its own stop request (an observer or
  // warn callback allocating mid-collection) must not park: the resume
  // it would wait for is the one it has not issued yet.
  if (Self && Self != StopInitiator.load(std::memory_order_relaxed))
    Registry.safepoint(Self);
}

void *Collector::allocateThreaded(size_t Bytes, ObjectKind Kind) {
  MutatorThread *Self = ThreadRegistry::current();
  if (Self != nullptr &&
      Self == StopInitiator.load(std::memory_order_relaxed))
    // Mid-collection re-entrant allocation (callback context): no
    // safepoint (self-park) and no cache refill (a refilled slot would
    // be allocated-but-uncharted under the already-flushed caches);
    // take the locked slow path, which pins the object (allocateRaw).
    Self = nullptr;
  if (Self != nullptr) {
    // The allocation-time safepoint: the flag check is the documented
    // "flag-checked slow path"; parking happens only under a stop.
    Registry.safepoint(Self);
    if (Self->Cache && !Guards && Kind == ObjectKind::Normal &&
        SizeClassTable::isSmall(Bytes)) {
      unsigned Class = Heap->sizeClassFor(Bytes == 0 ? 1 : Bytes);
      // Lock-free fast path: pop a pre-reserved slot.
      if (void *Cached = Self->Cache->take(Class))
        return finishCachedAllocation(Self, Cached, Class);
      HeapLockGuard Guard(*this);
      return refillAndAllocate(Self, Bytes, Kind, Class);
    }
  }
  HeapLockGuard Guard(*this);
  if (Guards)
    return allocateGuarded(Bytes, Kind, /*Site=*/0, /*IgnoreOffPage=*/false);
  return allocateRaw(Bytes, Kind);
}

void *Collector::finishCachedAllocation(MutatorThread *Self, void *Result,
                                        unsigned Class) {
  // Size-class geometry is immutable, so reading it lock-free is safe.
  return finishCachedSlot(Self, Result, Heap->sizeClassBytes(Class));
}

void *Collector::finishCachedSlot(MutatorThread *Self, void *Result,
                                  size_t SlotBytes) {
  Self->CacheAllocs.fetch_add(1, std::memory_order_relaxed);
  Self->CacheAllocBytes.fetch_add(SlotBytes, std::memory_order_relaxed);
  // Mirrors allocateRaw's tail: fresh pages are OS-zeroed and reused
  // slots were cleared at free time when ClearFreedObjects is on.
  if (!Config.ClearFreedObjects)
    std::memset(Result, 0, SlotBytes);
  return Result;
}

void Collector::noteCacheRefill(unsigned Class, unsigned Slots) {
  // The whole batch is charged against the collection trigger up front;
  // the handshake flush returns unused slots before any marking, so the
  // retained set never sees the over-charge.
  BytesSinceGc += static_cast<uint64_t>(Slots) * Heap->sizeClassBytes(Class);
  CrashInfo.CacheSlotDebt.store(Heap->cacheSlotDebt(),
                                std::memory_order_relaxed);
  Observers.dispatch(
      [&](GcObserver &O) { O.onThreadCacheRefill(Class, Slots); });
}

void *Collector::refillAndAllocate(MutatorThread *Self, size_t Bytes,
                                   ObjectKind Kind, unsigned Class) {
  MetadataScope MetaScope(*this);
  maybeStartupCollect();
  maybeRunStackClearHooks();
  if (unsigned Got = Self->Cache->refill(*Heap, Class)) {
    noteCacheRefill(Class, Got);
    void *Cached = Self->Cache->take(Class);
    CGC_ASSERT(Cached != nullptr, "refilled cache has no slot");
    return finishCachedAllocation(Self, Cached, Class);
  }
  // No free slot of this class anywhere: let the ordinary slow path
  // collect/grow/climb the ladder for one object, then top the cache
  // up from whatever that reclaimed.
  void *Result = allocateRaw(Bytes, Kind);
  if (Result != nullptr)
    if (unsigned Got = Self->Cache->refill(*Heap, Class))
      noteCacheRefill(Class, Got);
  return Result;
}

Collector::CacheFlushOutcome Collector::flushThreadCaches() {
  CacheFlushOutcome Outcome;
  uint64_t HandedOut = CacheAllocsRetired;
  Registry.forEachThread([&](MutatorThread &Thread) {
    // A thread the watchdog suspended preemptively can be frozen at
    // any instruction of the lock-free take() fast path — between
    // Stub.back() and pop_back(), or holding a popped slot it has not
    // yet counted in CacheAllocs.  Draining its stubs here would
    // mutate owner-thread-only state it resumes into (releasing a
    // slot it is about to hand out double-allocates it), so leave the
    // cache untouched; pinSuspendedThreadCaches keeps the slots alive
    // through the sweep instead.
    if (Thread.state() == MutatorState::SignalSuspended && Thread.Cache) {
      ++Outcome.CachesSkipped;
      return;
    }
    if (Thread.Cache)
      Outcome.SlotsFlushed += Thread.Cache->flush(*Heap);
    HandedOut += Thread.CacheAllocs.load(std::memory_order_relaxed);
  });
  // With every cache empty the heap's outstanding reservation debt is
  // exactly the slots the fast paths handed to clients; anything else
  // means a reservation leaked or double-released.  With a cache left
  // populated the identity cannot hold — and a suspended owner may
  // sit between popping a slot and counting it, so even adding the
  // skipped caches' contents back would be off by one.  The check
  // resumes at the next fully drained handshake.
  if (Outcome.CachesSkipped == 0)
    CGC_CHECK(Heap->cacheSlotDebt() == HandedOut,
              "thread-cache reservation debt does not reconcile");
  return Outcome;
}

void Collector::pinMidCycleAllocation(void *Ptr) {
  Heap->markAllocatedObjectLive(Ptr);
  if (MidCyclePins.size() == MidCyclePins.capacity() &&
      anyMutatorSignalSuspended()) {
    // Growing the vector calls libc malloc, and a signal-suspended
    // mutator may be frozen inside libc with an arena lock held (the
    // no-malloc-between-suspend-and-resume rule collect() reserves
    // around).  Record the overflow instead: the pipeline skips leak
    // reporting and the sweep for this cycle, so the pin that could
    // not be re-pinned after Mark's bit reset is never reclaimed.
    MidCyclePinOverflow = true;
    return;
  }
  MidCyclePins.push_back(Ptr);
}

bool Collector::anyMutatorSignalSuspended() const {
  bool Any = false;
  Registry.forEachThread([&](MutatorThread &Thread) {
    if (Thread.state() == MutatorState::SignalSuspended)
      Any = true;
  });
  return Any;
}

uint64_t Collector::pinSuspendedThreadCaches() {
  uint64_t Pinned = 0;
  Registry.forEachThread([&](MutatorThread &Thread) {
    if (Thread.state() != MutatorState::SignalSuspended || !Thread.Cache)
      return;
    // Reading the frozen owner's stub vectors is safe — the thread is
    // parked in the suspend handler, and each fast-path mutation
    // leaves the vector consistent at every instruction boundary.  A
    // slot it popped but still holds in a register is covered by its
    // signal-time stack/register root ranges instead.
    Thread.Cache->forEachCachedSlot([&](void *Slot) {
      Heap->markCachedSlotLive(Slot);
      ++Pinned;
    });
  });
  return Pinned;
}

void Collector::addMutatorRootRanges(const MutatorThread *SelfThread,
                                     const void *SelfStackTop,
                                     const void *SelfRegsBegin,
                                     const void *SelfRegsEnd,
                                     std::vector<RootId> &Ids) {
  // Published tops are probe-local addresses with no particular
  // alignment; round them down to pointer alignment so the strided
  // root scan lands exactly on the frame's pointer slots.  The extra
  // few bytes below the probe are dead stack — harmless to scan.
  auto AlignDownToPointer = [](const void *P) {
    return reinterpret_cast<const void *>(
        reinterpret_cast<uintptr_t>(P) & ~uintptr_t(sizeof(void *) - 1));
  };
  Registry.forEachThread([&](MutatorThread &Thread) {
    bool IsSelf = &Thread == SelfThread;
    const void *Top = AlignDownToPointer(
        IsSelf ? SelfStackTop
               : Thread.StackTop.load(std::memory_order_acquire));
    const void *RegsBegin;
    const void *RegsEnd;
    if (IsSelf) {
      RegsBegin = SelfRegsBegin;
      RegsEnd = SelfRegsEnd;
    } else if (Thread.Suspend.UseRegisters.load(std::memory_order_acquire)) {
      // Preemptively suspended: the cooperative jmp_buf is stale; the
      // handler's sigsetjmp capture is the live register snapshot.
      RegsBegin = static_cast<const void *>(&Thread.Suspend.Registers);
      RegsEnd = static_cast<const void *>(
          reinterpret_cast<const unsigned char *>(
              &Thread.Suspend.Registers) +
          sizeof(sigjmp_buf));
    } else {
      RegsBegin = static_cast<const void *>(&Thread.Registers);
      RegsEnd = static_cast<const void *>(
          reinterpret_cast<const unsigned char *>(&Thread.Registers) +
          sizeof(std::jmp_buf));
    }
    if (Top != nullptr && Thread.StackBase != nullptr &&
        Top < Thread.StackBase)
      Ids.push_back(Roots.addRange(Top, Thread.StackBase,
                                   RootEncoding::Native64, RootSource::Stack,
                                   "mutator-stack"));
    // Labels here must fit the small-string buffer: these ranges are
    // registered while the world is stopped, when a heap-allocating
    // std::string could deadlock against a signal-suspended thread's
    // malloc arena lock.
    Ids.push_back(Roots.addRange(RegsBegin, RegsEnd, RootEncoding::Native64,
                                 RootSource::Registers, "mutator-regs"));
  });
}

void *Collector::allocateTagged(size_t Bytes, const char *Site,
                                ObjectKind Kind) {
  if (!Guards)
    return allocate(Bytes, Kind); // Tags only exist in guarded mode.
  safepoint();
  HeapLockGuard Guard(*this);
  return allocateGuarded(Bytes, Kind, Guards->internSite(Site),
                         /*IgnoreOffPage=*/false);
}

void *Collector::allocateGuarded(size_t Bytes, ObjectKind Kind,
                                 GuardSiteId Site, bool IgnoreOffPage) {
  if (Bytes == 0)
    Bytes = 1;
  CGC_CHECK(Bytes <= GuardLayer::MaxUserBytes,
            "guarded allocation too large");
  size_t Padded = static_cast<size_t>(GuardLayer::paddedSize(Bytes));
  void *Slot = IgnoreOffPage ? allocateRawIgnoreOffPage(Padded, Kind)
                             : allocateRaw(Padded, Kind);
  if (!Slot)
    return nullptr;
  // An installed OOM handler's result is returned verbatim; it is not
  // heap memory, so it cannot (and must not) be armed.
  if (!Arena->contains(reinterpret_cast<Address>(Slot)))
    return Slot;
  ObjectRef Ref = Heap->refForBase(windowOffsetOf(Slot));
  CGC_ASSERT(Ref.valid(), "guarded slot must be an object base");
  // Arm against the slot's full capacity (the size class may round the
  // padded request up), so the redzone covers the slop bytes too.
  uint64_t Seqno = Guards->arm(Slot, Heap->objectSize(Ref), Bytes, Site);
  (void)Seqno;
  return GuardLayer::userPointer(Slot);
}

void *Collector::allocateRaw(size_t Bytes, ObjectKind Kind) {
  MetadataScope MetaScope(*this);
  maybeStartupCollect();
  maybeRunStackClearHooks();

  void *Result;
  if (SizeClassTable::isSmall(Bytes)) {
    Result = Heap->allocateFromExisting(Bytes, Kind);
    if (!Result)
      Result = allocateSmallSlow(Bytes, Kind);
  } else {
    Result = allocateLargeSlow(Bytes, Kind, /*IgnoreOffPage=*/false);
  }
  if (!Result)
    return reportOutOfMemory(Bytes);

  BytesSinceGc += Bytes;
  // A callback allocating mid-collection gets an object with a clear
  // mark bit that the cycle's own sweep would reclaim before the
  // callback even returns; pin it for this cycle.
  if (InCollection)
    pinMidCycleAllocation(Result);
  // Fresh pages are zero-filled by the OS; reused slots were cleared
  // at free time when ClearFreedObjects is on.  Clear here otherwise
  // so clients always see zeroed memory.
  if (!Config.ClearFreedObjects)
    std::memset(Result, 0, Bytes);
  return Result;
}

void *Collector::allocateSmallSlow(size_t Bytes, ObjectKind Kind) {
  // Out of cached slots: decide whether to collect before taking more
  // pages.  (Never mid-collection: a callback's allocation must not
  // recurse into collect.)
  if (!InCollection && shouldCollectBeforeGrowth()) {
    collect("allocation-threshold");
    if (void *Result = Heap->allocateFromExisting(Bytes, Kind))
      return Result;
  }
  // Grow: a fresh block for this class (commits pages as needed).
  if (Heap->addBlockForClass(Bytes, Kind))
    return Heap->allocateFromExisting(Bytes, Kind);
  return runExhaustionLadder(Bytes, [&]() -> void * {
    if (void *Result = Heap->allocateFromExisting(Bytes, Kind))
      return Result;
    if (Heap->addBlockForClass(Bytes, Kind))
      return Heap->allocateFromExisting(Bytes, Kind);
    return nullptr;
  });
}

void *Collector::allocateLargeSlow(size_t Bytes, ObjectKind Kind,
                                   bool IgnoreOffPage) {
  if (!InCollection && shouldCollectBeforeGrowth())
    collect("allocation-threshold");
  if (void *Result = Heap->allocateLarge(Bytes, Kind, IgnoreOffPage))
    return Result;
  // A blacklist that has eaten a sizable share of the committed heap is
  // the paper's worst case for large objects: every candidate run must
  // dodge it.  Tell the client (rate-limited) before fighting on.
  uint64_t Blacklisted = BlacklistImpl->entryCount();
  if (Blacklisted * 4 >= Pages->stats().CommittedPages &&
      Pages->stats().CommittedPages > 0)
    warn(WarnEvent::LargeAllocOnBlacklistedHeap,
         "cgc: large allocation on a blacklist-saturated heap", Bytes);
  return runExhaustionLadder(Bytes, [&]() -> void * {
    return Heap->allocateLarge(Bytes, Kind, IgnoreOffPage);
  });
}

void *Collector::allocateTypedSlow(LayoutId Layout) {
  uint64_t Bytes = Heap->layout(Layout).SizeBytes;
  if (!InCollection && shouldCollectBeforeGrowth()) {
    collect("allocation-threshold");
    if (void *Result = Heap->allocateTypedFromExisting(Layout))
      return Result;
  }
  if (Heap->addBlockForLayout(Layout))
    return Heap->allocateTypedFromExisting(Layout);
  return runExhaustionLadder(Bytes, [&]() -> void * {
    if (void *Result = Heap->allocateTypedFromExisting(Layout))
      return Result;
    if (Heap->addBlockForLayout(Layout))
      return Heap->allocateTypedFromExisting(Layout);
    return nullptr;
  });
}

void *Collector::runExhaustionLadder(uint64_t Bytes,
                                     const std::function<void *()> &Retry) {
  // Rung 1: finish pending lazy sweeps.  Queued blocks of *other*
  // classes may sweep empty and release whole page runs.
  if (Heap->pendingSweepCount() > 0) {
    ++Resilience.LazySweepFlushes;
    Heap->finishPendingSweeps();
    if (void *Result = Retry())
      return Result;
  }
  // Re-entrant allocation from a mid-collection callback: the
  // remaining rungs all collect, which would recurse.  Sweep-flush was
  // the last safe resort; report exhaustion to the callback instead.
  if (InCollection)
    return nullptr;
  // Rung 2: a full collection.
  ++Resilience.HeapExhaustedCollections;
  CrashInfo.HeapExhaustedCollections.store(
      Resilience.HeapExhaustedCollections, std::memory_order_relaxed);
  noteLadderCollection(collect("heap-exhausted"));
  if (void *Result = Retry())
    return Result;
  // Rung 3: emergency collection.  Interior-pointer recognition drops
  // from All to FirstPage (objects kept alive only by deep interior
  // pointers are reclaimed) and page runs accept blacklisted interior
  // pages — survival over blacklist hygiene, right before reporting
  // out of memory.
  ++Resilience.EmergencyCollections;
  CrashInfo.EmergencyCollections.store(Resilience.EmergencyCollections,
                                       std::memory_order_relaxed);
  noteCrashEvent(GcEventKind::EmergencyCollection, /*Phase=*/-1, Bytes);
  Observers.dispatch(
      [&](GcObserver &O) { O.onEmergencyCollection(Bytes); });
  InteriorPolicy SavedInterior = Config.Interior;
  if (SavedInterior == InteriorPolicy::All)
    Config.Interior = InteriorPolicy::FirstPage;
  Heap->setEmergencyPageRelaxation(true);
  noteLadderCollection(collect("emergency"));
  void *Result = Retry();
  Heap->setEmergencyPageRelaxation(false);
  Config.Interior = SavedInterior;
  return Result;
}

void *Collector::reportOutOfMemory(uint64_t Bytes) {
  ++Resilience.OomEvents;
  CrashInfo.OomEvents.store(Resilience.OomEvents,
                            std::memory_order_relaxed);
  noteCrashEvent(GcEventKind::OutOfMemory, /*Phase=*/-1, Bytes);
  bool HasHandler = Config.OomHandler != nullptr;
  Observers.dispatch(
      [&](GcObserver &O) { O.onOutOfMemory(Bytes, HasHandler); });
  if (!HasHandler)
    return nullptr;
  ++Resilience.OomHandlerInvocations;
  return Config.OomHandler(Bytes, Config.OomHandlerData);
}

void Collector::noteLadderCollection(const CollectionStats &Cycle) {
  // With lazy sweeping the cycle itself frees nothing — the queued
  // blocks are the progress; only count cycles that left nothing to
  // sweep either.
  if (Cycle.BytesSweptFree != 0 || Heap->pendingSweepCount() != 0)
    return;
  ++Resilience.NoProgressCollections;
  warn(WarnEvent::CollectionNoProgress,
       "cgc: collection reclaimed nothing under allocation pressure",
       Resilience.NoProgressCollections);
}

void Collector::warn(WarnEvent Event, const char *Message, uint64_t Value) {
  uint64_t Count = ++WarnOccurrences[static_cast<unsigned>(Event)];
  // Exponential backoff: deliver occurrences 1, 2, 4, 8, ...
  if ((Count & (Count - 1)) != 0) {
    ++Resilience.WarningsSuppressed;
    return;
  }
  ++Resilience.WarningsIssued;
  CrashInfo.WarningsIssued.store(Resilience.WarningsIssued,
                                 std::memory_order_relaxed);
  noteCrashEvent(GcEventKind::Warning, /*Phase=*/-1, Value);
  if (Config.WarnProc)
    Config.WarnProc(Message, Value, Config.WarnProcData);
  Observers.dispatch([&](GcObserver &O) { O.onWarning(Message, Value); });
}

void Collector::deallocate(void *Ptr) {
  HeapLockGuard Guard(*this);
  MetadataScope MetaScope(*this);
  if (Guards) {
    deallocateGuarded(Ptr);
    return;
  }
  // Even without guards a bad free must not be undefined behavior:
  // classify first and turn the bad classes into structured incidents
  // (plus the rate-limited warning) while the free itself is ignored.
  switch (Heap->classifyExplicitFree(Ptr)) {
  case ObjectHeap::FreeClass::Ok:
    Finalizers.unregister(windowOffsetOf(Ptr));
    Heap->deallocateExplicit(Ptr);
    return;
  case ObjectHeap::FreeClass::NonHeap:
    raiseClientIncident(GcIncidentCause::ForeignFree,
                        reinterpret_cast<uint64_t>(Ptr),
                        "cgc: ignored free of a non-heap pointer");
    return;
  case ObjectHeap::FreeClass::NotObjectBase:
    raiseClientIncident(GcIncidentCause::InvalidFree,
                        reinterpret_cast<uint64_t>(Ptr),
                        "cgc: ignored free of a non-object (interior?) pointer");
    return;
  case ObjectHeap::FreeClass::NotAllocated:
    raiseClientIncident(GcIncidentCause::DoubleFree,
                        reinterpret_cast<uint64_t>(Ptr),
                        "cgc: ignored double free");
    return;
  }
}

void Collector::raiseClientIncident(GcIncidentCause Cause, uint64_t Addr,
                                    const char *Detail) {
  noteCrashEvent(GcEventKind::Incident, /*Phase=*/-1, Addr);
  GcIncident Incident;
  Incident.Cause = Cause;
  Incident.CollectionIndex = Lifetime.Collections;
  Incident.GuardAddress = Addr;
  // Deliberately does NOT set LastGuardIncidentInfo/HasGuardIncident:
  // the latch is the guarded heap's test surface and client misuse in
  // unguarded mode must not masquerade as a guard violation.
  Observers.dispatch([&](GcObserver &O) { O.onIncident(Incident); });
  warn(WarnEvent::InvalidFree, Detail, Addr);
}

Collector::GuardedRef Collector::guardedRefFor(const void *Ptr) const {
  GuardedRef G;
  Address Addr = reinterpret_cast<Address>(Ptr);
  if (!Arena->contains(Addr))
    return G;
  WindowOffset UserOff = Arena->offsetOf(Addr);
  if (UserOff < GuardLayer::HeaderBytes)
    return G;
  WindowOffset SlotOff = UserOff - GuardLayer::HeaderBytes;
  ObjectRef Ref = Heap->refForBase(SlotOff);
  if (!Ref.valid() || !Heap->isAllocated(Ref) ||
      Blocks->get(Ref.Block).LayoutId != 0 || Guards->isQuarantined(SlotOff))
    return G;
  GuardLayer::Decoded Info =
      GuardLayer::inspect(Arena->pointerTo(SlotOff), Heap->objectSize(Ref));
  if (!Info.HeaderIntact)
    return G;
  G.Valid = true;
  G.Ref = Ref;
  G.SlotBase = SlotOff;
  G.Info = Info;
  return G;
}

void Collector::reportGuardViolation(const GuardViolation &V, uint64_t Addr,
                                     const char *Detail) {
  switch (V.Kind) {
  case GuardViolationKind::HeaderSmash:
    ++Guards->Stats.HeaderSmashes;
    break;
  case GuardViolationKind::RedzoneSmash:
    ++Guards->Stats.RedzoneSmashes;
    break;
  case GuardViolationKind::DoubleFree:
    ++Guards->Stats.DoubleFrees;
    break;
  case GuardViolationKind::InvalidFree:
    ++Guards->Stats.InvalidFrees;
    break;
  case GuardViolationKind::QuarantineUseAfterFree:
    ++Guards->Stats.UseAfterFreeWrites;
    break;
  }
  const char *Site = Guards->siteName(V.Site);
  CrashInfo.GuardViolations.fetch_add(1, std::memory_order_relaxed);
  CrashInfo.LastGuardSeqno.store(V.Seqno, std::memory_order_relaxed);
  CrashInfo.LastGuardKind.store(guardViolationKindName(V.Kind),
                                std::memory_order_relaxed);
  CrashInfo.LastGuardSite.store(Site, std::memory_order_relaxed);
  noteCrashEvent(GcEventKind::Incident, /*Phase=*/-1, Addr);

  GcIncident Incident;
  switch (V.Kind) {
  case GuardViolationKind::HeaderSmash:
    Incident.Cause = GcIncidentCause::GuardHeaderSmash;
    break;
  case GuardViolationKind::RedzoneSmash:
    Incident.Cause = GcIncidentCause::GuardRedzoneSmash;
    break;
  case GuardViolationKind::DoubleFree:
    Incident.Cause = GcIncidentCause::DoubleFree;
    break;
  case GuardViolationKind::InvalidFree:
    Incident.Cause = GcIncidentCause::InvalidFree;
    break;
  case GuardViolationKind::QuarantineUseAfterFree:
    Incident.Cause = GcIncidentCause::QuarantineUseAfterFree;
    break;
  }
  Incident.CollectionIndex = Lifetime.Collections;
  Incident.GuardSite = Site;
  Incident.GuardSeqno = V.Seqno;
  Incident.GuardUserBytes = V.UserBytes;
  Incident.GuardAddress = Addr;
  LastGuardIncidentInfo = Incident;
  HasGuardIncident = true;
  Observers.dispatch([&](GcObserver &O) { O.onIncident(Incident); });
  warn(WarnEvent::GuardViolation, Detail, Addr);

  if (Config.GuardFatal) {
    char Message[256];
    std::snprintf(Message, sizeof(Message),
                  "cgc guard violation: %s (site %s, seqno %llu, "
                  "addr 0x%llx)",
                  Detail, Site, (unsigned long long)V.Seqno,
                  (unsigned long long)Addr);
    fatalError(Message, __FILE__, __LINE__);
  }
}

void Collector::deallocateGuarded(void *Ptr) {
  Address Addr = reinterpret_cast<Address>(Ptr);
  GuardViolation V;
  if (!Arena->contains(Addr)) {
    V.Kind = GuardViolationKind::InvalidFree;
    reportGuardViolation(V, Addr, "free of a non-heap pointer");
    return;
  }
  WindowOffset UserOff = Arena->offsetOf(Addr);

  // Typed (precisely scanned) objects carry no guard metadata even in
  // guarded mode; their base pointers free through the raw path.
  ObjectRef RawRef = Heap->refForBase(UserOff);
  if (RawRef.valid() && Heap->isAllocated(RawRef) &&
      Blocks->get(RawRef.Block).LayoutId != 0) {
    Finalizers.unregister(UserOff);
    Heap->deallocateExplicit(Ptr);
    return;
  }

  if (UserOff >= GuardLayer::HeaderBytes) {
    WindowOffset SlotOff = UserOff - GuardLayer::HeaderBytes;
    ObjectRef Ref = Heap->refForBase(SlotOff);
    if (Ref.valid() && Blocks->get(Ref.Block).LayoutId == 0) {
      if (!Heap->isAllocated(Ref)) {
        // Valid slot base, already swept or flushed: a late double free.
        V.Kind = GuardViolationKind::DoubleFree;
        V.Base = SlotOff;
        reportGuardViolation(V, Addr, "double free");
        return;
      }
      if (Guards->isQuarantined(SlotOff)) {
        // Still parked from the first free; the ring entry remembers
        // the original allocation's identity.
        V.Kind = GuardViolationKind::DoubleFree;
        V.Base = SlotOff;
        if (const GuardLayer::QuarantineEntry *E =
                Guards->findQuarantined(SlotOff)) {
          V.Seqno = E->Seqno;
          V.Site = E->Site;
          V.UserBytes = E->UserBytes;
        }
        reportGuardViolation(V, Addr, "double free");
        return;
      }
      uint64_t SlotBytes = Heap->objectSize(Ref);
      void *SlotPtr = Arena->pointerTo(SlotOff);
      GuardLayer::Decoded Info = GuardLayer::inspect(SlotPtr, SlotBytes);
      V.Base = SlotOff;
      V.Seqno = Info.Seqno;
      V.Site = Info.Site;
      V.UserBytes = Info.UserBytes;
      if (!Info.HeaderIntact) {
        V.Kind = GuardViolationKind::HeaderSmash;
        reportGuardViolation(V, Addr, "guard header smash");
        return;
      }
      if (!Info.RedzoneIntact) {
        V.Kind = GuardViolationKind::RedzoneSmash;
        reportGuardViolation(V, Addr, "guard redzone smash");
        return;
      }
      // A fully validated guarded free: poison, park, maybe release
      // the ring's oldest entry.
      Finalizers.unregister(SlotOff);
      GuardLayer::QuarantineEntry Evicted;
      if (Guards->quarantine(SlotPtr, SlotOff, SlotBytes, Info, Evicted))
        releaseQuarantined(Evicted);
      CrashInfo.QuarantineDepth.store(Guards->quarantineDepth(),
                                      std::memory_order_relaxed);
      return;
    }
  }
  V.Kind = GuardViolationKind::InvalidFree;
  reportGuardViolation(V, Addr, "free of a non-object pointer");
}

void Collector::releaseQuarantined(const GuardLayer::QuarantineEntry &E) {
  void *SlotPtr = Arena->pointerTo(E.Base);
  if (!GuardLayer::poisonIntact(SlotPtr, E.SlotBytes)) {
    GuardViolation V;
    V.Kind = GuardViolationKind::QuarantineUseAfterFree;
    V.Base = E.Base;
    V.Seqno = E.Seqno;
    V.Site = E.Site;
    V.UserBytes = E.UserBytes;
    reportGuardViolation(
        V, reinterpret_cast<uint64_t>(SlotPtr) + GuardLayer::HeaderBytes,
        "quarantine use-after-free write");
  }
  ++Guards->Stats.QuarantineFlushes;
  Heap->deallocateExplicit(SlotPtr);
}

void Collector::flushQuarantine() {
  if (!Guards)
    return;
  HeapLockGuard Guard(*this);
  MetadataScope MetaScope(*this);
  GuardLayer::QuarantineEntry E;
  while (Guards->popOldest(E))
    releaseQuarantined(E);
  CrashInfo.QuarantineDepth.store(0, std::memory_order_relaxed);
}

GcLeakReport Collector::findLeaks() {
  CGC_CHECK(Guards, "findLeaks requires GcConfig::DebugGuards");
  HeapLockGuard Guard(*this);
  GcLeakReport Report;
  flushQuarantine();
  // Mark without sweeping: the mark bits then say exactly which
  // guarded objects are unreachable, and the heap is left unchanged.
  measureLiveness();
  std::vector<GcLeakSite> BySite(Guards->siteCount());
  Blocks->forEach([&](BlockId, BlockDescriptor &Block) {
    if (Block.LayoutId != 0)
      return;
    for (uint32_t Slot = 0; Slot != Block.ObjectCount; ++Slot) {
      if (!Block.AllocBits.test(Slot) || Block.MarkBits.test(Slot))
        continue;
      WindowOffset Base = Block.slotOffset(Slot);
      GuardLayer::Decoded Info =
          GuardLayer::inspect(Arena->pointerTo(Base), Block.ObjectSize);
      GuardSiteId Site =
          Info.HeaderIntact && Info.Site < BySite.size() ? Info.Site : 0;
      GcLeakSite &Bucket = BySite[Site];
      if (Bucket.Objects == 0 || Info.Seqno < Bucket.FirstSeqno)
        Bucket.FirstSeqno = Info.Seqno;
      ++Bucket.Objects;
      Bucket.Bytes += Info.HeaderIntact ? Info.UserBytes : Block.ObjectSize;
    }
  });
  for (GuardSiteId Site = 0; Site != BySite.size(); ++Site) {
    if (BySite[Site].Objects == 0)
      continue;
    BySite[Site].Site = Guards->siteName(Site);
    Report.TotalObjects += BySite[Site].Objects;
    Report.TotalBytes += BySite[Site].Bytes;
    Report.Sites.push_back(BySite[Site]);
  }
  Guards->Stats.LeakedObjects = Report.TotalObjects;
  Guards->Stats.LeakedBytes = Report.TotalBytes;
  return Report;
}

LayoutId
Collector::registerObjectLayout(const std::vector<bool> &PointerWords,
                                size_t SizeBytes) {
  HeapLockGuard Guard(*this);
  MetadataScope MetaScope(*this);
  return Heap->registerLayout(PointerWords, SizeBytes);
}

void *Collector::allocateTyped(LayoutId Layout) {
  safepoint();
  // Lock-free typed fast path: a stub only ever holds slots this thread
  // reserved earlier for this descriptor, and records their capacity,
  // so no descriptor-table read happens outside the lock.
  MutatorThread *Self = nullptr;
  if (ThreadedMode.load(std::memory_order_relaxed)) {
    Self = ThreadRegistry::current();
    // Mid-collection callback: bypass the cache paths entirely (see
    // allocateThreaded) and let the locked tail pin the object.
    if (Self == StopInitiator.load(std::memory_order_relaxed))
      Self = nullptr;
    if (Self && Self->Cache && !Guards &&
        !Config.AllConservativeDescriptors) {
      size_t SlotBytes = 0;
      if (void *Cached = Self->Cache->takeTyped(Layout, SlotBytes))
        return finishCachedSlot(Self, Cached, SlotBytes);
    }
  }
  size_t RouteBytes;
  ObjectKind RouteKind;
  {
    HeapLockGuard Guard(*this);
    MetadataScope MetaScope(*this);
    const TypeDescriptor &D = Heap->layout(Layout);
    if (!Config.AllConservativeDescriptors &&
        D.Class == DescriptorClass::Precise) {
      if (Self && Self->Cache && !Guards)
        return refillTypedAndAllocate(Self, Layout);
      maybeStartupCollect();
      maybeRunStackClearHooks();
      void *Result = Heap->allocateTypedFromExisting(Layout);
      if (!Result)
        Result = allocateTypedSlow(Layout);
      if (!Result)
        return reportOutOfMemory(D.SizeBytes);
      BytesSinceGc += D.SizeBytes;
      if (InCollection)
        pinMidCycleAllocation(Result);
      if (!Config.ClearFreedObjects)
        std::memset(Result, 0, D.SizeBytes);
      return Result;
    }
    // Degenerate bitmaps collapse onto the ordinary kinds, and the
    // all-conservative ablation ignores descriptors outright: route
    // through allocate() so guarded mode, thread caches, and the
    // allocation stream are exactly the untyped collector's.
    // Registered sizes are granule-aligned, so the size class — and
    // with it every downstream decision — is unchanged.
    RouteBytes = D.SizeBytes;
    RouteKind = !Config.AllConservativeDescriptors &&
                        D.Class == DescriptorClass::PointerFree
                    ? ObjectKind::PointerFree
                    : ObjectKind::Normal;
  }
  return allocate(RouteBytes, RouteKind);
}

void *Collector::refillTypedAndAllocate(MutatorThread *Self,
                                        LayoutId Layout) {
  MetadataScope MetaScope(*this);
  maybeStartupCollect();
  maybeRunStackClearHooks();
  unsigned Class = Heap->sizeClassFor(Heap->layout(Layout).SizeBytes);
  if (unsigned Got = Self->Cache->refillTyped(*Heap, Layout)) {
    noteCacheRefill(Class, Got);
    size_t SlotBytes = 0;
    void *Cached = Self->Cache->takeTyped(Layout, SlotBytes);
    CGC_ASSERT(Cached != nullptr, "refilled typed cache has no slot");
    return finishCachedSlot(Self, Cached, SlotBytes);
  }
  // No free slot of this layout anywhere: drive the typed ladder for
  // one object, then top the stub up from whatever that reclaimed.
  void *Result = Heap->allocateTypedFromExisting(Layout);
  if (!Result)
    Result = allocateTypedSlow(Layout);
  if (!Result)
    return reportOutOfMemory(Heap->layout(Layout).SizeBytes);
  BytesSinceGc += Heap->layout(Layout).SizeBytes;
  if (!Config.ClearFreedObjects)
    std::memset(Result, 0, Heap->layout(Layout).SizeBytes);
  if (unsigned Got = Self->Cache->refillTyped(*Heap, Layout))
    noteCacheRefill(Class, Got);
  return Result;
}

void *Collector::allocateIgnoreOffPage(size_t Bytes, ObjectKind Kind) {
  safepoint();
  HeapLockGuard Guard(*this);
  if (Guards)
    return allocateGuarded(Bytes, Kind, /*Site=*/0, /*IgnoreOffPage=*/true);
  return allocateRawIgnoreOffPage(Bytes, Kind);
}

void *Collector::allocateRawIgnoreOffPage(size_t Bytes, ObjectKind Kind) {
  MetadataScope MetaScope(*this);
  maybeStartupCollect();
  if (SizeClassTable::isSmall(Bytes))
    return allocateRaw(Bytes, Kind); // Small objects fit one page anyway.
  maybeRunStackClearHooks();
  void *Result = allocateLargeSlow(Bytes, Kind, /*IgnoreOffPage=*/true);
  if (!Result)
    return reportOutOfMemory(Bytes);
  BytesSinceGc += Bytes;
  if (InCollection)
    pinMidCycleAllocation(Result);
  if (!Config.ClearFreedObjects)
    std::memset(Result, 0, Bytes);
  return Result;
}

void Collector::registerDisplacement(uint32_t Displacement) {
  HeapLockGuard Guard(*this);
  MarkerImpl->registerDisplacement(Displacement);
}

void Collector::addRootExclusion(const void *Begin, const void *End) {
  HeapLockGuard Guard(*this);
  Roots.addExclusion(Begin, End);
}

bool Collector::shouldCollectBeforeGrowth() const {
  uint64_t Committed = committedHeapBytes();
  if (Committed < Config.MinHeapBytesBeforeGc)
    return false;
  double Threshold =
      static_cast<double>(Committed) * Config.CollectBeforeGrowthRatio;
  return static_cast<double>(BytesSinceGc) >= Threshold;
}

void Collector::runPhase(GcPhase Phase, CollectionStats &Cycle,
                         const std::function<void()> &Body) {
  CrashInfo.Phase.store(static_cast<int32_t>(Phase),
                        std::memory_order_relaxed);
  noteCrashEvent(GcEventKind::PhaseBegin, static_cast<int>(Phase), 0);
  Observers.dispatch([&](GcObserver &O) { O.onPhaseBegin(Phase); });
  uint64_t Start = nowNanos();
  Body();
  uint64_t Nanos = nowNanos() - Start;
  // The timing sink (always registered first) records Nanos into
  // Cycle.PhaseNanos before any client observer sees the event.
  Observers.dispatch(
      [&](GcObserver &O) { O.onPhaseEnd(Phase, Nanos, Cycle); });
  noteCrashEvent(GcEventKind::PhaseEnd, static_cast<int>(Phase), Nanos);
}

void Collector::emitRetainedObjects() {
  if (!Observers.anyWantsRetainedObjects())
    return;
  Blocks->forEach([&](BlockId, BlockDescriptor &Block) {
    for (uint32_t Slot = 0; Slot != Block.ObjectCount; ++Slot) {
      if (!Block.AllocBits.test(Slot) || !Block.MarkBits.test(Slot))
        continue;
      void *Ptr = Arena->pointerTo(Block.slotOffset(Slot));
      Observers.dispatch([&](GcObserver &O) {
        if (O.wantsRetainedObjects())
          O.onObjectRetained(Ptr, Block.ObjectSize, Block.Kind);
      });
    }
  });
}

CollectionStats Collector::collect(const char *Reason) {
  HeapLockGuard HeapGuard(*this);
  // A callback collecting mid-collection (observer, warn proc, OOM
  // handler) gets a refused empty cycle, not an abort: the documented
  // contract is "must not collect", and the robust reading of a
  // violation is a no-op.
  if (InCollection) {
    warn(WarnEvent::ReentrantCollection,
         "cgc: refused re-entrant collection from a callback",
         Lifetime.Collections);
    return CollectionStats();
  }
  // Degraded mode: repeated post-repair verification failures mean the
  // metadata cannot be trusted to survive a pipeline.  Every further
  // cycle is refused (an empty cycle reads as "reclaimed nothing"), so
  // the allocation ladder degrades to fresh-page growth.
  if (RepairStatsInfo.DegradedMode)
    return CollectionStats();
  MetadataScope MetaScope(*this);

  // Threaded mode: rendezvous every registered mutator at a safepoint
  // before any phase touches shared heap state, and drain the
  // per-thread allocation caches so mark/sweep never see a slot that is
  // allocated-but-uncharted.  With zero registered threads this whole
  // block is dead and the cycle is bit-identical to sequential mode.
  MutatorThread *SelfThread = nullptr;
  bool WorldStopped = false;
  ThreadRegistry::HandshakeResult Handshake;
  CacheFlushOutcome CacheFlush;
  std::vector<RootId> ThreadRootIds;
  if (ThreadedMode.load(std::memory_order_relaxed) &&
      Registry.registeredCount() != 0) {
    SelfThread = ThreadRegistry::current();
    // Reserve every vector the stopped-world window appends to before
    // any mutator can be frozen: the watchdog's signal rung may park a
    // thread inside libc malloc with an arena lock held, after which a
    // collector-side system allocation can deadlock (the bdwgc
    // no-malloc-between-suspend-and-resume rule).  Two ranges per
    // thread (stack + registers), plus two for the machine-stack pair
    // an unregistered collecting thread adds.
    const size_t RangeBudget = 2 * Registry.registeredCount() + 2;
    ThreadRootIds.reserve(RangeBudget);
    Roots.reserveAdditional(RangeBudget);
    // Mid-cycle callback allocations append to MidCyclePins while the
    // world is stopped; pre-grow it here for the same reason.
    if (MidCyclePins.capacity() < MidCyclePinReserve)
      MidCyclePins.reserve(MidCyclePinReserve);
    Handshake = Registry.stopTheWorld(SelfThread);
    WorldStopped = true;
    StopInitiator.store(SelfThread, std::memory_order_release);
    // Watchdog final rung: some mutator could not be stopped.  Raise
    // the structured incident and abandon the attempt — no phase may
    // run against a world that is still mutating.  The caller's
    // allocation ladder treats the empty cycle as "reclaimed nothing"
    // and degrades to heap growth.
    if (Handshake.TimedOut) {
      StopInitiator.store(nullptr, std::memory_order_release);
      abandonStoppedWorld(Handshake, Reason);
      return CollectionStats();
    }
    CacheFlush = flushThreadCaches();
    publishHandshakeCrashState();
    CrashInfo.CacheSlotDebt.store(Heap->cacheSlotDebt(),
                                  std::memory_order_relaxed);
    Observers.dispatch([&](GcObserver &O) {
      O.onStopTheWorld(Handshake.MutatorsStopped, Handshake.Nanos);
    });
  }

  // Guarded mode: release every quarantined slot (poison-checked)
  // before any phase runs, so the sweep only ever sees armed headers
  // and use-after-free writes are detected at a deterministic point.
  flushQuarantine();
  InCollection = true;

  // Deterministic corruption drills: any armed Metadata* fault site
  // fires here — after unsealing, before any phase — so corrupt-soak
  // runs replay bit-for-bit.  No-op without armed sites.
  Heap->injectMetadataFaults();

  for (const auto &Hook : PreCollectionHooks)
    Hook();

  CollectionStats Cycle;
  Cycle.MutatorsStopped = Handshake.MutatorsStopped;
  Cycle.HandshakeNanos = Handshake.Nanos;
  Cycle.CacheSlotsFlushed = CacheFlush.SlotsFlushed;
  TimingSink.attach(&Cycle);
  uint64_t CollectionIndex = Lifetime.Collections;
  CrashInfo.CollectionIndex.store(CollectionIndex,
                                  std::memory_order_relaxed);
  noteCrashEvent(GcEventKind::CollectionBegin, /*Phase=*/-1, 0);
  Observers.dispatch(
      [&](GcObserver &O) { O.onCollectionBegin(CollectionIndex, Reason); });

  // If real-stack scanning is on, snapshot the stack and registers and
  // expose them as temporary root ranges.  A registered collecting
  // thread is covered by the mutator root ranges below instead — the
  // MachineStack base belongs to whichever thread enabled scanning,
  // which need not be this one.
  std::jmp_buf RegisterBuffer;
  RootId StackRoot = 0, RegisterRoot = 0;
  if (MachineStackScanner && SelfThread == nullptr) {
    MachineStack::Snapshot Snap =
        MachineStackScanner->capture(RegisterBuffer);
    StackRoot = Roots.addRange(Snap.HotEnd, Snap.Base,
                               RootEncoding::Native64, RootSource::Stack,
                               "machine-stack");
    RegisterRoot = Roots.addRange(Snap.RegistersBegin, Snap.RegistersEnd,
                                  RootEncoding::Native64,
                                  RootSource::Registers,
                                  "machine-regs");
  }

  // Stopped mutators published their stack top and registers at the
  // safepoint; the collecting thread snapshots its own here.  Probe and
  // jmp_buf are function-scope so the ranges stay valid through every
  // phase; deeper collector frames sit below the probe and are
  // (correctly) excluded.
  std::jmp_buf SelfRegisters;
  volatile char SelfProbe = 0;
  if (WorldStopped) {
    if (SelfThread)
      setjmp(SelfRegisters);
    addMutatorRootRanges(
        SelfThread, const_cast<const char *>(&SelfProbe), &SelfRegisters,
        reinterpret_cast<const unsigned char *>(&SelfRegisters) +
            sizeof(std::jmp_buf),
        ThreadRootIds);
  }

  // The phase pipeline, transactional under the repair ladder: the
  // verify sink (VerifyEveryCollection, !RepairFatal) sets
  // RepairPending at the first corrupted phase boundary, after which
  // the remaining phases are skipped — no sweep may run over metadata
  // that failed verification.
  RepairPending = false;
  auto RunPipeline = [&](CollectionStats &C) {
    // beginCycle is reset-safe: an abandoned attempt re-begins without
    // an intervening endCycle.
    BlacklistImpl->beginCycle();

    if (!RepairPending)
      runPhase(GcPhase::RootScan, C,
               [&] { MarkerImpl->runRootScan(Roots, C); });

    if (!RepairPending)
      runPhase(GcPhase::Mark, C, [&] {
        MarkerImpl->runMarkPhase(C);
        // Finalizer detection resurrects unreachable objects (marking
        // work), staging them for the Finalize phase.
        Finalizers.processUnreachable(*MarkerImpl, *Heap, *Blocks, C);
      });

    // Caches that could not be drained (owner frozen by the suspend
    // signal, possibly mid-fast-path) still hold reserved slots with
    // AllocBits set but no marks; pin them before leak reporting and
    // the sweep so neither treats them as garbage.
    if (!RepairPending && CacheFlush.CachesSkipped != 0)
      C.CacheSlotsPinned = pinSuspendedThreadCaches();

    // Begin-observer allocations were pinned before the Mark phase
    // reset every mark bit; re-pin the whole mid-cycle list so the
    // sweep keeps them (idempotent for post-Mark allocations).
    if (!RepairPending)
      for (void *Pinned : MidCyclePins)
        Heap->markAllocatedObjectLive(Pinned);

    if (!RepairPending)
      runPhase(GcPhase::BlacklistPromote, C,
               [&] { BlacklistImpl->endCycle(); });

    // A pin that overflowed the pre-reserved buffer was never recorded,
    // so Mark's bit reset erased it: reclaiming anything now could
    // sweep a live mid-cycle allocation.  Degrade to a no-reclaim
    // cycle (the allocation ladder reads it as "reclaimed nothing" and
    // grows the heap) rather than ever freeing an unpinned object.
    if (!RepairPending && MidCyclePinOverflow)
      warn(WarnEvent::MidCyclePinOverflow,
           "cgc: mid-cycle pin list overflowed while a mutator was "
           "signal-suspended; skipping reclamation this cycle",
           Lifetime.Collections);

    if (!RepairPending && OnLeak && !MidCyclePinOverflow)
      reportLeaks();

    if (!RepairPending && !MidCyclePinOverflow)
      runPhase(GcPhase::Sweep, C, [&] {
        SweepResult Swept = SweepCtx->run(C);
        if (Guards && !Swept.GuardViolations.empty()) {
          // Workers found violations in whatever shard order; seqno
          // (with base as tiebreaker for unreadable headers) restores
          // the unique allocation order, so the report — and the
          // aborting violation under GuardFatal — is identical for any
          // SweepThreads value.
          std::sort(Swept.GuardViolations.begin(),
                    Swept.GuardViolations.end(),
                    [](const GuardViolation &A, const GuardViolation &B) {
                      return A.Seqno != B.Seqno ? A.Seqno < B.Seqno
                                                : A.Base < B.Base;
                    });
          for (const GuardViolation &V : Swept.GuardViolations)
            reportGuardViolation(
                V,
                reinterpret_cast<uint64_t>(Arena->pointerTo(V.Base)) +
                    GuardLayer::HeaderBytes,
                V.Kind == GuardViolationKind::HeaderSmash
                    ? "guard header smash"
                    : "guard redzone smash");
        }
        C.ObjectsSweptFree = Swept.ObjectsSweptFree;
        C.BytesSweptFree = Swept.BytesSweptFree;
        C.ObjectsLive = Swept.ObjectsLive;
        C.BytesLive = Swept.BytesLive;
        if (Config.LazySweep) {
          // Small blocks are swept later; report liveness from marks.
          C.ObjectsLive = C.ObjectsMarked;
          C.BytesLive = C.BytesMarked;
        }
        C.SlotsPinned = Swept.SlotsPinned;
        C.PagesReleased = Swept.PagesReleased;
      });

    if (!RepairPending)
      runPhase(GcPhase::Finalize, C, [&] {
        Finalizers.publishStaged();
        emitRetainedObjects();
      });
  };

  RunPipeline(Cycle);

  // Transactional retry: a mid-phase verification failure abandoned
  // the pipeline above.  Repair in place — world still stopped, heap
  // lock held — and retry the cycle once under the already-paid
  // handshake (the root-scan clears the partial mark state).  A second
  // failure parks the collector in degraded mode rather than ever
  // sweeping over metadata that cannot be made consistent.
  if (RepairPending) {
    RepairPending = false;
    ++RepairStatsInfo.CollectionsRetried;
    repairHeapLocked();
    CollectionStats Retry;
    Retry.MutatorsStopped = Cycle.MutatorsStopped;
    Retry.HandshakeNanos = Cycle.HandshakeNanos;
    Retry.CacheSlotsFlushed = Cycle.CacheSlotsFlushed;
    Cycle = Retry; // Same address: the timing sink stays attached.
    RunPipeline(Cycle);
    if (RepairPending) {
      RepairPending = false;
      repairHeapLocked();
      RepairStatsInfo.DegradedMode = true;
      warn(WarnEvent::MetadataRepair,
           "cgc: heap verification failed again after repair; collector "
           "degraded to growth-only allocation",
           Lifetime.Collections);
    }
  }

  Cycle.BlacklistedPages = BlacklistImpl->entryCount();
  // Aggregate views of the pipeline timings (see GcStats.h).
  Cycle.MarkNanos =
      Cycle.PhaseNanos[static_cast<unsigned>(GcPhase::RootScan)] +
      Cycle.PhaseNanos[static_cast<unsigned>(GcPhase::Mark)] +
      Cycle.PhaseNanos[static_cast<unsigned>(GcPhase::BlacklistPromote)];
  Cycle.SweepNanos = Cycle.PhaseNanos[static_cast<unsigned>(GcPhase::Sweep)];

  if (StackRoot != 0)
    Roots.removeRange(StackRoot);
  if (RegisterRoot != 0)
    Roots.removeRange(RegisterRoot);
  for (RootId Id : ThreadRootIds)
    Roots.removeRange(Id);

  LastCycle = Cycle;
  Lifetime.accumulate(Cycle);
  BytesSinceGc = 0;
  // Refresh the crash-visible heap summary before dispatching: if an
  // observer callback crashes, the report shows this cycle's numbers.
  CrashInfo.Phase.store(-1, std::memory_order_relaxed);
  CrashInfo.LiveBytes.store(Cycle.BytesLive, std::memory_order_relaxed);
  CrashInfo.CommittedBytes.store(committedHeapBytes(),
                                 std::memory_order_relaxed);
  CrashInfo.BlacklistedPages.store(Cycle.BlacklistedPages,
                                   std::memory_order_relaxed);
  static_assert(NumDescriptorClasses == 3,
                "GcCrashState's scan-mix arrays are sized 3");
  for (unsigned I = 0; I != NumDescriptorClasses; ++I) {
    CrashInfo.ScanWordsByClass[I].store(Cycle.ScanWordsByClass[I],
                                        std::memory_order_relaxed);
    CrashInfo.ScanCandidatesByClass[I].store(
        Cycle.ScanCandidatesByClass[I], std::memory_order_relaxed);
  }
  noteCrashEvent(GcEventKind::CollectionEnd, /*Phase=*/-1, Cycle.BytesLive);
  Observers.dispatch(
      [&](GcObserver &O) { O.onCollectionEnd(CollectionIndex, Cycle); });
  TimingSink.attach(nullptr);
  if (WorldStopped) {
    StopInitiator.store(nullptr, std::memory_order_release);
    Registry.resumeTheWorld();
  }
  InCollection = false;
  MidCyclePins.clear();
  MidCyclePinOverflow = false;
  // Request re-sealing: it happens when the outermost MetadataScope
  // unwinds, so an allocation slow path that triggered this collection
  // finishes on writable metadata first.
  SealPending = true;
  return Cycle;
}

CollectionStats Collector::measureLiveness() {
  HeapLockGuard HeapGuard(*this);
  // Same graceful refusal as collect(): a mid-collection callback
  // asking for a census gets an empty one.
  if (InCollection) {
    warn(WarnEvent::ReentrantCollection,
         "cgc: refused re-entrant collection from a callback",
         Lifetime.Collections);
    return CollectionStats();
  }
  MetadataScope MetaScope(*this);
  // Same rendezvous as collect(), minus the cache flush: a liveness
  // census must not perturb the caches it is measuring, and cached
  // slots carry set alloc+mark treatment only at sweep time (which a
  // census never reaches).
  MutatorThread *SelfThread = nullptr;
  bool WorldStopped = false;
  std::vector<RootId> ThreadRootIds;
  if (ThreadedMode.load(std::memory_order_relaxed) &&
      Registry.registeredCount() != 0) {
    SelfThread = ThreadRegistry::current();
    // As in collect(): reserve root-range storage before any mutator
    // can be frozen inside libc malloc by the watchdog's signal rung.
    const size_t RangeBudget = 2 * Registry.registeredCount() + 2;
    ThreadRootIds.reserve(RangeBudget);
    Roots.reserveAdditional(RangeBudget);
    if (MidCyclePins.capacity() < MidCyclePinReserve)
      MidCyclePins.reserve(MidCyclePinReserve);
    ThreadRegistry::HandshakeResult Handshake =
        Registry.stopTheWorld(SelfThread);
    WorldStopped = true;
    StopInitiator.store(SelfThread, std::memory_order_release);
    if (Handshake.TimedOut) {
      StopInitiator.store(nullptr, std::memory_order_release);
      abandonStoppedWorld(Handshake, "measure-liveness");
      return CollectionStats();
    }
    publishHandshakeCrashState();
    Observers.dispatch([&](GcObserver &O) {
      O.onStopTheWorld(Handshake.MutatorsStopped, Handshake.Nanos);
    });
  }
  InCollection = true;
  for (const auto &Hook : PreCollectionHooks)
    Hook();
  CollectionStats Cycle;
  std::jmp_buf RegisterBuffer;
  RootId StackRoot = 0, RegisterRoot = 0;
  if (MachineStackScanner && SelfThread == nullptr) {
    MachineStack::Snapshot Snap =
        MachineStackScanner->capture(RegisterBuffer);
    StackRoot = Roots.addRange(Snap.HotEnd, Snap.Base,
                               RootEncoding::Native64, RootSource::Stack,
                               "machine-stack");
    RegisterRoot = Roots.addRange(Snap.RegistersBegin, Snap.RegistersEnd,
                                  RootEncoding::Native64,
                                  RootSource::Registers,
                                  "machine-regs");
  }
  std::jmp_buf SelfRegisters;
  volatile char SelfProbe = 0;
  if (WorldStopped) {
    if (SelfThread)
      setjmp(SelfRegisters);
    addMutatorRootRanges(
        SelfThread, const_cast<const char *>(&SelfProbe), &SelfRegisters,
        reinterpret_cast<const unsigned char *>(&SelfRegisters) +
            sizeof(std::jmp_buf),
        ThreadRootIds);
  }
  MarkerImpl->runMark(Roots, Cycle);
  if (StackRoot != 0)
    Roots.removeRange(StackRoot);
  if (RegisterRoot != 0)
    Roots.removeRange(RegisterRoot);
  for (RootId Id : ThreadRootIds)
    Roots.removeRange(Id);
  if (WorldStopped) {
    StopInitiator.store(nullptr, std::memory_order_release);
    Registry.resumeTheWorld();
  }
  InCollection = false;
  MidCyclePins.clear();
  MidCyclePinOverflow = false;
  return Cycle;
}

HeapVerifyReport Collector::verifyHeapReport() {
  HeapLockGuard Guard(*this);
  HeapVerifyReport Report = Heap->verify();
  // Thread-cache reservation ledger: every slot the heap charged to
  // reserveCacheSlot is either parked in some thread's cache or was
  // handed to a mutator (live or already retired with its thread).
  // Valid only while mutators are quiesced — between the caller's
  // operations under the heap lock a mutator may be mid-refill — so a
  // mismatch is reported, not fataled, and the verifier is expected to
  // run from tests at known-quiet points.
  if (ThreadedMode.load(std::memory_order_relaxed)) {
    uint64_t Accounted = CacheAllocsRetired;
    Registry.forEachThread([&](MutatorThread &Thread) {
      Accounted += Thread.CacheAllocs.load(std::memory_order_relaxed);
      if (Thread.Cache)
        Accounted += Thread.Cache->cachedSlots();
    });
    if (Heap->cacheSlotDebt() != Accounted)
      Report.notef("thread caches: heap reservation debt %llu but caches "
                   "and hand-outs account for %llu",
                   (unsigned long long)Heap->cacheSlotDebt(),
                   (unsigned long long)Accounted);
  }
  // Collector-level cross-check: every flat-bitmap blacklist entry must
  // lie inside the potential heap — Figure 2 only notes candidates in
  // the heap's vicinity, so an out-of-range bit means the marker (or
  // the bitmap) corrupted itself.  The hashed form aliases many pages
  // per bit, so only the flat form supports the count comparison.
  if (Config.Blacklist == BlacklistMode::FlatBitmap) {
    uint64_t Seen = 0;
    for (PageIndex P = Pages->arenaBasePage(); P != Pages->arenaLimitPage();
         ++P)
      if (BlacklistImpl->isBlacklisted(P))
        ++Seen;
    if (Seen != BlacklistImpl->entryCount())
      Report.notef("blacklist: %llu pages flagged inside the arena, entry "
                   "count says %llu (bits set outside the potential heap)",
                   (unsigned long long)Seen,
                   (unsigned long long)BlacklistImpl->entryCount());
  }
  return Report;
}

void Collector::verifyHeap() {
  HeapVerifyReport Report = verifyHeapReport();
  if (Report.clean())
    return;
  std::fprintf(stderr, "cgc heap verification failed (%zu issues):\n%s",
               Report.Issues.size(), Report.str().c_str());
  fatalError("heap verification failed", __FILE__, __LINE__);
}

void Collector::VerifySink::onPhaseEnd(GcPhase Phase, uint64_t,
                                       const CollectionStats &) {
  if (!GC.Config.VerifyEveryCollection)
    return;
  HeapVerifyReport Report = GC.verifyHeapReport();
  GC.noteCrashEvent(GcEventKind::HeapVerified, static_cast<int>(Phase),
                    Report.Issues.size());
  GC.Observers.dispatch([&](GcObserver &O) {
    O.onHeapVerified(Report.clean(), Report.Issues.size());
  });
  if (Report.clean())
    return;
  if (!GC.Config.RepairFatal && GC.InCollection) {
    // Guard smashes are damage to *client* memory that the sweep
    // reports through the guard-violation path; metadata repair cannot
    // resolve them, so they never spin the abandon-repair-retry
    // ladder.
    bool OnlyGuardSmashes = !Report.Findings.empty();
    for (const VerifyFinding &F : Report.Findings)
      if (F.Kind != VerifyFindingKind::GuardSmash)
        OnlyGuardSmashes = false;
    if (OnlyGuardSmashes)
      return;
    // Abandon the cycle: collect() skips the remaining phases, repairs
    // under the still-stopped world, and retries once.
    GC.RepairPending = true;
    GC.warn(WarnEvent::MetadataRepair,
            "cgc: heap verification failed mid-collection; abandoning "
            "the cycle for repair",
            Report.Issues.size());
    return;
  }
  std::fprintf(stderr,
               "cgc heap verification failed after phase %s "
               "(%zu issues):\n%s",
               gcPhaseName(Phase), Report.Issues.size(),
               Report.str().c_str());
  fatalError("heap verification failed during collection", __FILE__,
             __LINE__);
}

HeapVerifyReport Collector::repairHeapLocked() {
  HeapRepairStats Stats;
  HeapVerifyReport Report = Heap->verifyAndRepair(Stats);
  ++RepairStatsInfo.VerifyRepairsRun;
  RepairStatsInfo.FindingsRepaired += Stats.FindingsRepaired;
  RepairStatsInfo.BlocksQuarantined += Stats.BlocksQuarantined;
  RepairStatsInfo.PagesQuarantined += Stats.PagesQuarantined;
  RepairStatsInfo.FreeListRebuilds += Stats.FreeListRebuilds;
  RepairStatsInfo.PageMapRederivations += Stats.PageMapRederivations;
  RepairStatsInfo.CountersResynced += Stats.CountersResynced;
  if (!Report.clean())
    warn(WarnEvent::MetadataRepair,
         Report.RepairedClean
             ? "cgc: metadata corruption repaired in place"
             : "cgc: metadata corruption only partially repaired",
         Report.Issues.size());
  return Report;
}

HeapVerifyReport Collector::verifyAndRepair() {
  HeapLockGuard Guard(*this);
  MetadataScope MetaScope(*this);
  return repairHeapLocked();
}

GcRepairStats Collector::repairStats() const {
  GcRepairStats Snapshot = RepairStatsInfo;
  if (MetaArena) {
    Snapshot.SealTransitions = MetaArena->protectTransitions();
    Snapshot.SealNanos = MetaArena->protectNanos();
  }
  return Snapshot;
}

void Collector::serviceMetadataWildWrites() {
  if (!MetaArena)
    return;
  MetadataArena::WildWrite Writes[16];
  unsigned Count = MetaArena->drainWildWrites(Writes, 16);
  if (Count == 0)
    return;
  for (unsigned I = 0; I != Count; ++I) {
    const void *Addr = reinterpret_cast<const void *>(Writes[I].Address);
    GcIncident Incident;
    Incident.Cause = GcIncidentCause::MetadataWildWrite;
    Incident.CollectionIndex = Lifetime.Collections;
    Incident.MetadataAddress = Writes[I].Address;
    PageIndex Page = 0;
    BlockId Hit = Blocks->descriptorContaining(Addr);
    if (Map->attributeAddress(Addr, Page)) {
      Incident.MetadataRegion = "page-map";
      Incident.MetadataPage = Page;
    } else if (Hit != InvalidBlockId) {
      Incident.MetadataRegion = "block-table";
      Incident.MetadataBlock = Hit;
      if (Blocks->isLive(Hit))
        Incident.MetadataPage = Blocks->get(Hit).StartPage;
    } else if (MetaArena->contains(Addr)) {
      Incident.MetadataRegion = "free-lists";
    } else {
      Incident.MetadataRegion = "metadata";
    }
    ++RepairStatsInfo.MetadataWildWrites;
    noteCrashEvent(GcEventKind::Incident, /*Phase=*/-1, Writes[I].Address);
    Observers.dispatch([&](GcObserver &O) { O.onIncident(Incident); });
    warn(WarnEvent::MetadataRepair,
         "cgc: wild write to sealed GC metadata caught and contained",
         Writes[I].Address);
  }
  // The faulting stores landed (the handler unprotected their pages so
  // the writers could retry): whatever they hit is suspect — verify
  // and repair before any allocator or collector path trusts it.
  repairHeapLocked();
}

void Collector::reportLeaks() {
  Blocks->forEach([&](BlockId, BlockDescriptor &Block) {
    for (uint32_t Slot = 0; Slot != Block.ObjectCount; ++Slot) {
      if (!Block.AllocBits.test(Slot) || Block.MarkBits.test(Slot))
        continue;
      void *Base = Arena->pointerTo(Block.slotOffset(Slot));
      if (Guards && Block.LayoutId == 0) {
        // Quarantine was flushed at collection start, so every slot
        // here is an armed object; report its client-visible identity.
        GuardLayer::Decoded Info =
            GuardLayer::inspect(Base, Block.ObjectSize);
        OnLeak(GuardLayer::userPointer(Base),
               Info.HeaderIntact ? static_cast<size_t>(Info.UserBytes)
                                 : Block.ObjectSize,
               Block.Kind);
        continue;
      }
      OnLeak(Base, Block.ObjectSize, Block.Kind);
    }
  });
}

RootId Collector::addRootRange(const void *Begin, const void *End,
                               RootEncoding Encoding, RootSource Source,
                               std::string Label) {
  HeapLockGuard Guard(*this);
  return Roots.addRange(Begin, End, Encoding, Source, std::move(Label));
}

bool Collector::removeRootRange(RootId Id) {
  HeapLockGuard Guard(*this);
  return Roots.removeRange(Id);
}

bool Collector::updateRootRange(RootId Id, const void *Begin,
                                const void *End) {
  HeapLockGuard Guard(*this);
  return Roots.updateRange(Id, Begin, End);
}

void Collector::enableMachineStackScanning() {
  if (!MachineStackScanner)
    MachineStackScanner.emplace();
}

bool Collector::isHeapPointer(const void *Ptr) const {
  return Arena->contains(reinterpret_cast<Address>(Ptr));
}

void *Collector::objectBase(const void *Ptr) const {
  if (!isHeapPointer(Ptr))
    return nullptr;
  ObjectRef Ref = MarkerImpl->resolveCandidate(
      Arena->offsetOf(reinterpret_cast<Address>(Ptr)));
  if (!Ref.valid())
    return nullptr;
  void *Base = Arena->pointerTo(Heap->baseOffset(Ref));
  // Guarded untyped objects: the client-visible base is past the header.
  if (Guards && Blocks->get(Ref.Block).LayoutId == 0 &&
      Heap->isAllocated(Ref) &&
      !Guards->isQuarantined(Heap->baseOffset(Ref)))
    return GuardLayer::userPointer(Base);
  return Base;
}

size_t Collector::objectSizeOf(const void *Ptr) const {
  if (!isHeapPointer(Ptr))
    return 0;
  if (Guards) {
    GuardedRef G = guardedRefFor(Ptr);
    if (G.Valid)
      return static_cast<size_t>(G.Info.UserBytes);
  }
  ObjectRef Ref =
      Heap->refForBase(Arena->offsetOf(reinterpret_cast<Address>(Ptr)));
  return Ref.valid() ? Heap->objectSize(Ref) : 0;
}

bool Collector::isAllocated(const void *Ptr) const {
  if (!isHeapPointer(Ptr))
    return false;
  if (Guards && guardedRefFor(Ptr).Valid)
    return true;
  ObjectRef Ref =
      Heap->refForBase(Arena->offsetOf(reinterpret_cast<Address>(Ptr)));
  return Ref.valid() && Heap->isAllocated(Ref);
}

bool Collector::wasMarkedLive(const void *Ptr) const {
  if (!isHeapPointer(Ptr))
    return false;
  ObjectRef Ref;
  if (Guards) {
    GuardedRef G = guardedRefFor(Ptr);
    if (G.Valid)
      Ref = G.Ref;
  }
  if (!Ref.valid())
    Ref = Heap->refForBase(Arena->offsetOf(reinterpret_cast<Address>(Ptr)));
  if (!Ref.valid())
    return false;
  return Blocks->get(Ref.Block).MarkBits.test(Ref.Slot);
}

WindowOffset Collector::windowOffsetOf(const void *Ptr) const {
  return Arena->offsetOf(reinterpret_cast<Address>(Ptr));
}

void *Collector::pointerAtOffset(WindowOffset Offset) const {
  return Arena->pointerTo(Offset);
}

void Collector::registerFinalizer(void *Ptr,
                                  std::function<void(void *)> Fn) {
  HeapLockGuard Guard(*this);
  CGC_CHECK(isAllocated(Ptr), "finalizer on a non-object");
  if (Guards) {
    GuardedRef G = guardedRefFor(Ptr);
    if (G.Valid) {
      // Key on the slot base (the offset the queue can resolve) and
      // hand the finalizer the user pointer it expects.
      Finalizers.registerFinalizer(G.SlotBase,
                                   [Fn = std::move(Fn)](void *SlotPtr) {
                                     Fn(GuardLayer::userPointer(SlotPtr));
                                   });
      return;
    }
  }
  Finalizers.registerFinalizer(windowOffsetOf(Ptr), std::move(Fn));
}

bool Collector::unregisterFinalizer(void *Ptr) {
  HeapLockGuard Guard(*this);
  if (Guards) {
    GuardedRef G = guardedRefFor(Ptr);
    if (G.Valid)
      return Finalizers.unregister(G.SlotBase);
  }
  return Finalizers.unregister(windowOffsetOf(Ptr));
}

size_t Collector::runFinalizers() {
  HeapLockGuard Guard(*this);
  return Finalizers.runReady(*Arena);
}

void Collector::addStackClearHook(std::function<void()> Hook) {
  StackClearHooks.push_back(std::move(Hook));
}

void Collector::addPreCollectionHook(std::function<void()> Hook) {
  PreCollectionHooks.push_back(std::move(Hook));
}

void Collector::printReport(std::FILE *Out) const {
  std::fprintf(Out, "=== cgc collector report ===\n");
  std::fprintf(Out, "window          : %llu MiB reserved, heap arena at "
                    "offset 0x%llx (max %llu MiB)\n",
               (unsigned long long)(Arena->size() >> 20),
               (unsigned long long)Config.heapBaseOffset(),
               (unsigned long long)(Config.MaxHeapBytes >> 20));
  std::fprintf(Out, "heap            : %llu KiB committed, %llu KiB "
                    "allocated, %llu free pages\n",
               (unsigned long long)(committedHeapBytes() >> 10),
               (unsigned long long)(Heap->allocatedBytes() >> 10),
               (unsigned long long)Pages->freePageCount());
  std::fprintf(Out, "objects         : %llu allocated over lifetime, "
                    "%llu explicit frees\n",
               (unsigned long long)Heap->stats().ObjectsAllocated,
               (unsigned long long)Heap->stats().ExplicitFrees);
  std::fprintf(Out, "collections     : %llu (mark %.2f ms, sweep %.2f "
                    "ms total)\n",
               (unsigned long long)Lifetime.Collections,
               Lifetime.TotalMarkNanos / 1e6,
               Lifetime.TotalSweepNanos / 1e6);
  std::fprintf(Out, "pipeline        :");
  for (unsigned I = 0; I != NumGcPhases; ++I)
    std::fprintf(Out, " %s %.2f ms%s",
                 gcPhaseName(static_cast<GcPhase>(I)),
                 Lifetime.TotalPhaseNanos[I] / 1e6,
                 I + 1 == NumGcPhases ? "\n" : ",");
  std::fprintf(Out, "workers         : %u mark, %u sweep, %u root-scan "
                    "configured; %u pool thread(s) spawned\n",
               Config.MarkThreads, Config.SweepThreads,
               Config.RootScanThreads, Pool->threadsSpawned());
  if (Registry.lifetimeRegistrations() != 0) {
    std::fprintf(Out, "mutators        : %llu registered now, %llu over "
                      "lifetime; %llu handshakes, %llu safepoint parks\n",
                 (unsigned long long)Registry.registeredCount(),
                 (unsigned long long)Registry.lifetimeRegistrations(),
                 (unsigned long long)Registry.handshakes(),
                 (unsigned long long)Registry.safepointParks());
    uint64_t Handshakes = Registry.handshakes();
    std::fprintf(Out, "stop-the-world  : %.2f us mean, %.2f us max to "
                      "stop; %llu warn rungs, %llu signal rungs, %llu "
                      "suspensions, %llu send retries, %llu timeouts\n",
                 Handshakes == 0
                     ? 0.0
                     : Registry.totalStopNanos() / 1e3 / Handshakes,
                 Registry.maxStopNanos() / 1e3,
                 (unsigned long long)Registry.warnRungs(),
                 (unsigned long long)Registry.signalRungs(),
                 (unsigned long long)Registry.signalSuspensions(),
                 (unsigned long long)Registry.signalSendRetries(),
                 (unsigned long long)Registry.handshakeTimeouts());
  }
  std::fprintf(Out, "last cycle      : %llu live objects (%llu KiB), "
                    "%llu freed, %llu pinned slots\n",
               (unsigned long long)LastCycle.ObjectsLive,
               (unsigned long long)(LastCycle.BytesLive >> 10),
               (unsigned long long)LastCycle.ObjectsSweptFree,
               (unsigned long long)LastCycle.SlotsPinned);
  std::fprintf(Out, "scan mix        : conservative %llu words / %llu "
                    "candidates, precise %llu / %llu, pointer-free "
                    "%llu / %llu\n",
               (unsigned long long)Lifetime.TotalScanWordsByClass[0],
               (unsigned long long)Lifetime.TotalScanCandidatesByClass[0],
               (unsigned long long)Lifetime.TotalScanWordsByClass[1],
               (unsigned long long)Lifetime.TotalScanCandidatesByClass[1],
               (unsigned long long)Lifetime.TotalScanWordsByClass[2],
               (unsigned long long)Lifetime.TotalScanCandidatesByClass[2]);
  std::fprintf(Out, "blacklist       : %llu pages, %llu candidates "
                    "noted, %.3f%% of GC time\n",
               (unsigned long long)BlacklistImpl->entryCount(),
               (unsigned long long)BlacklistImpl->stats().CandidatesNoted,
               (Lifetime.TotalMarkNanos + Lifetime.TotalSweepNanos) == 0
                   ? 0.0
                   : 100.0 * Lifetime.TotalBlacklistNanos /
                         (Lifetime.TotalMarkNanos +
                          Lifetime.TotalSweepNanos));
  std::fprintf(Out, "pages skipped   : %llu during blacklist-aware "
                    "placement, %llu grow events\n",
               (unsigned long long)Pages->stats().BlacklistSkippedPages,
               (unsigned long long)Pages->stats().GrowEvents);
  std::fprintf(Out, "roots           : %zu ranges (%zu bytes), %zu "
                    "exclusions\n",
               Roots.rangeCount(), Roots.totalBytes(),
               Roots.exclusionCount());
}

void Collector::dumpHeap(std::FILE *Out) const {
  std::fprintf(Out, "=== cgc heap dump ===\n");
  // Census per (kind, object size): blocks, slots, live, pinned.
  struct Census {
    uint64_t Blocks = 0;
    uint64_t Slots = 0;
    uint64_t Live = 0;
    uint64_t Pinned = 0;
  };
  std::map<std::pair<unsigned, uint32_t>, Census> Counts;
  uint64_t LargeBlocks = 0, LargeBytes = 0;
  Blocks->forEach([&](BlockId, BlockDescriptor &Block) {
    if (Block.IsLarge) {
      ++LargeBlocks;
      LargeBytes += Block.ObjectSize;
      return;
    }
    Census &C = Counts[{static_cast<unsigned>(Block.Kind),
                        Block.ObjectSize}];
    ++C.Blocks;
    C.Slots += Block.ObjectCount;
    C.Live += Block.AllocatedCount;
    C.Pinned += Block.PinnedCount;
  });
  std::fprintf(Out, "%-14s %8s %8s %9s %9s %8s\n", "kind", "size",
               "blocks", "slots", "live", "pinned");
  for (const auto &[Key, C] : Counts)
    std::fprintf(Out, "%-14s %8u %8llu %9llu %9llu %8llu\n",
                 objectKindName(static_cast<ObjectKind>(Key.first)),
                 Key.second, (unsigned long long)C.Blocks,
                 (unsigned long long)C.Slots, (unsigned long long)C.Live,
                 (unsigned long long)C.Pinned);
  std::fprintf(Out, "large blocks: %llu (%llu KiB)\n",
               (unsigned long long)LargeBlocks,
               (unsigned long long)(LargeBytes >> 10));

  // Blacklist geography: contiguous blacklisted stretches within the
  // committed heap (what observation 7's "quick examination" saw).
  std::fprintf(Out, "blacklisted stretches in committed heap:\n");
  PageIndex RunStart = 0;
  uint32_t RunLength = 0;
  unsigned Printed = 0;
  for (PageIndex P = Pages->arenaBasePage();
       P <= Pages->committedLimitPage() && Printed < 16; ++P) {
    bool Bad = P < Pages->committedLimitPage() &&
               BlacklistImpl->isBlacklisted(P);
    if (Bad) {
      if (RunLength == 0)
        RunStart = P;
      ++RunLength;
    } else if (RunLength != 0) {
      std::fprintf(Out, "  pages [%u, %u): %u page(s) at offset 0x%llx\n",
                   RunStart, RunStart + RunLength, RunLength,
                   (unsigned long long)offsetOfPage(RunStart));
      RunLength = 0;
      ++Printed;
    }
  }
  if (Printed == 16)
    std::fprintf(Out, "  ... (more)\n");
  std::fprintf(Out, "free page runs:\n");
  Printed = 0;
  Pages->forEachFreeRun([&](PageIndex Start, uint32_t Length) {
    if (Printed++ < 16)
      std::fprintf(Out, "  pages [%u, %u): %u page(s)\n", Start,
                   Start + Length, Length);
  });
}

void Collector::forEachObject(
    const std::function<void(void *, size_t, ObjectKind)> &Fn) const {
  // Gather blocks in address order first: BlockTable iterates in id
  // order, which is allocation order, not address order.
  std::vector<const BlockDescriptor *> Sorted;
  Blocks->forEach([&](BlockId, BlockDescriptor &Block) {
    Sorted.push_back(&Block);
  });
  std::sort(Sorted.begin(), Sorted.end(),
            [](const BlockDescriptor *A, const BlockDescriptor *B) {
              return A->StartPage < B->StartPage;
            });
  for (const BlockDescriptor *Block : Sorted) {
    for (uint32_t Slot = 0; Slot != Block->ObjectCount; ++Slot) {
      if (!Block->AllocBits.test(Slot))
        continue;
      WindowOffset Base = Block->slotOffset(Slot);
      if (Guards && Block->LayoutId == 0) {
        // Quarantined slots are freed from the client's point of view;
        // everything else reports its user pointer and requested size.
        if (Guards->isQuarantined(Base))
          continue;
        GuardLayer::Decoded Info =
            GuardLayer::inspect(Arena->pointerTo(Base), Block->ObjectSize);
        Fn(GuardLayer::userPointer(Arena->pointerTo(Base)),
           Info.HeaderIntact ? static_cast<size_t>(Info.UserBytes)
                             : Block->ObjectSize,
           Block->Kind);
        continue;
      }
      Fn(Arena->pointerTo(Base), Block->ObjectSize, Block->Kind);
    }
  }
}

void Collector::maybeRunStackClearHooks() {
  if (Config.StackClearing != StackClearMode::Cheap)
    return;
  if (++AllocsSinceClear < Config.StackClearEveryNAllocs)
    return;
  AllocsSinceClear = 0;
  for (const auto &Hook : StackClearHooks)
    Hook();
  if (MachineStackScanner)
    MachineStackScanner->clearDeadStack(Config.StackClearChunkBytes);
}
