//===- core/Marker.cpp - Conservative marking with blacklisting ----------===//

#include "core/Marker.h"
#include <algorithm>

using namespace cgc;

Marker::Marker(VirtualArena &Arena, PageAllocator &Pages, PageMap &Map,
               BlockTable &Blocks, ObjectHeap &Heap,
               Blacklist &BlacklistImpl, GcWorkerPool &Pool,
               const GcConfig &Config)
    : Blocks(Blocks), Heap(Heap), Config(Config),
      Context(Arena, Pages, Map, Blocks, Heap, BlacklistImpl, Pool,
              Config) {}

void Marker::markUncollectableObjects(CollectionStats &Stats) {
  Blocks.forEach([&](BlockId, BlockDescriptor &Block) {
    if (Block.Kind != ObjectKind::Uncollectable)
      return;
    for (uint32_t Slot = 0; Slot != Block.ObjectCount; ++Slot) {
      if (!Block.AllocBits.test(Slot))
        continue;
      if (Block.MarkBits.testAndSet(Slot))
        continue;
      ++Stats.ObjectsMarked;
      Stats.BytesMarked += Block.ObjectSize;
      Seeds.push_back({Block.slotOffset(Slot), Block.ObjectSize,
                       Block.LayoutId});
    }
  });
}

void Marker::runRootScan(const RootSet &Roots, CollectionStats &Stats) {
  Heap.clearMarks();
  Seeds.clear();
  // Uncollectable objects are roots: live by definition, and their
  // contents may hold the only pointer to collectable data.
  markUncollectableObjects(Stats);
  MarkWorker Scanner(Context, Stats, &Seeds);
  for (const RootScanSpan &Span : Roots.scannableSpans())
    Scanner.scanRootSpan(*Span.Range, Span.Begin, Span.End);
}

void Marker::runMarkPhase(CollectionStats &Stats) {
  // mark() records the worker count actually used (it can be
  // negotiated down when thread spawning fails) in Stats.MarkWorkers.
  unsigned Workers =
      std::clamp(Config.MarkThreads, 1u, MarkContext::MaxWorkers);
  Context.mark(Seeds, Workers, Stats);
}

void Marker::runMark(const RootSet &Roots, CollectionStats &Stats) {
  runRootScan(Roots, Stats);
  runMarkPhase(Stats);
}

void Marker::markFromCandidate(WindowOffset Candidate,
                               CollectionStats &Stats) {
  // Resurrection-sized graphs; always sequential, independent of the
  // Mark phase's worker count.
  std::vector<MarkWorkItem> Stack;
  MarkWorker Worker(Context, Stats, &Stack);
  Worker.considerCandidate(Candidate, ScanOrigin::Client);
  Worker.drainSequential(Stack);
  Context.recoverFromOverflow(Stats);
}
