//===- core/Marker.cpp - Conservative marking with blacklisting ----------===//

#include "core/Marker.h"
#include "support/MathExtras.h"
#include <algorithm>
#include <chrono>
#include <cstring>

using namespace cgc;

namespace {

uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint32_t load32(const unsigned char *P, bool BigEndian) {
  uint32_t Value;
  std::memcpy(&Value, P, sizeof(Value));
  if (BigEndian)
    Value = __builtin_bswap32(Value);
  return Value;
}

uint64_t load64(const unsigned char *P) {
  uint64_t Value;
  std::memcpy(&Value, P, sizeof(Value));
  return Value;
}

} // namespace

Marker::Marker(VirtualArena &Arena, PageAllocator &Pages, PageMap &Map,
               BlockTable &Blocks, ObjectHeap &Heap,
               Blacklist &BlacklistImpl, const GcConfig &Config)
    : Arena(Arena), Pages(Pages), Map(Map), Blocks(Blocks), Heap(Heap),
      BlacklistImpl(BlacklistImpl), Config(Config) {}

ObjectRef Marker::resolveCandidate(WindowOffset Candidate) const {
  BlockId Id = Map.blockAt(pageOfOffset(Candidate));
  if (Id == InvalidBlockId)
    return {};
  const BlockDescriptor &Block = Blocks.get(Id);
  int32_t Slot = Block.slotContaining(Candidate);
  if (Slot < 0)
    return {};
  uint32_t SlotIdx = static_cast<uint32_t>(Slot);
  WindowOffset Base = Block.slotOffset(SlotIdx);
  // Per-object override first (observation 7's remedy): pointers past
  // the first page never retain an ignore-off-page object.
  if (Block.IgnoreOffPage && Candidate - Base >= PageSize)
    return {};
  switch (Config.Interior) {
  case InteriorPolicy::All:
    break;
  case InteriorPolicy::BaseOnly: {
    if (Candidate != Base &&
        !std::binary_search(Displacements.begin(), Displacements.end(),
                            static_cast<uint32_t>(Candidate - Base)))
      return {};
    break;
  }
  case InteriorPolicy::FirstPage:
    if (Candidate - Base >= PageSize)
      return {};
    break;
  }
  if (Config.PreciseFreeSlotDetection && !Block.AllocBits.test(SlotIdx))
    return {};
  return {Id, SlotIdx};
}

ScanOrigin Marker::originOf(RootSource Source) {
  switch (Source) {
  case RootSource::StaticData:
    return ScanOrigin::StaticData;
  case RootSource::Stack:
    return ScanOrigin::Stack;
  case RootSource::Registers:
    return ScanOrigin::Registers;
  case RootSource::Client:
    return ScanOrigin::Client;
  }
  return ScanOrigin::Client;
}

void Marker::considerCandidate(WindowOffset Candidate, ScanOrigin Origin,
                               CollectionStats &Stats) {
  // Figure 2, line by line.  "if p is not a valid object address":
  ObjectRef Ref = resolveCandidate(Candidate);
  if (!Ref.valid()) {
    // "if p is in the vicinity of the heap, add p to blacklist".  The
    // proximity test shares its page probe with the validity check.
    PageIndex Page = pageOfOffset(Candidate);
    if (Pages.inPotentialHeap(Page)) {
      uint64_t Start = nowNanos();
      BlacklistImpl.noteCandidate(Page);
      Stats.BlacklistNanos += nowNanos() - Start;
      ++Stats.NearMisses;
      ++Stats.NearMissesByOrigin[static_cast<unsigned>(Origin)];
    }
    return;
  }
  // "if p is marked return; set mark bit for p":
  BlockDescriptor &Block = Blocks.get(Ref.Block);
  if (Block.MarkBits.testAndSet(Ref.Slot))
    return;
  ++Stats.ObjectsMarked;
  Stats.BytesMarked += Block.ObjectSize;
  ++Stats.MarksByOrigin[static_cast<unsigned>(Origin)];
  // "for each field q ... mark(q)" — deferred to the mark stack, and
  // skipped entirely for objects declared pointer-free.
  if (Block.Kind != ObjectKind::PointerFree)
    MarkStack.push_back({Block.slotOffset(Ref.Slot), Block.ObjectSize,
                         Block.LayoutId});
}

void Marker::registerDisplacement(uint32_t Displacement) {
  auto It = std::lower_bound(Displacements.begin(), Displacements.end(),
                             Displacement);
  if (It == Displacements.end() || *It != Displacement)
    Displacements.insert(It, Displacement);
}

void Marker::scanTypedObject(WindowOffset Begin, uint32_t Bytes,
                             uint32_t LayoutId, CollectionStats &Stats) {
  const ObjectLayout &Layout = Heap.layout(LayoutId);
  const unsigned char *Base =
      static_cast<const unsigned char *>(Arena.pointerTo(Begin));
  size_t Words = std::min<size_t>(Layout.PointerWords.size(),
                                  Bytes / sizeof(uint64_t));
  for (size_t Word = Layout.PointerWords.findFirstSet(); Word < Words;
       Word = Layout.PointerWords.findFirstSet(Word + 1)) {
    ++Stats.HeapWordsScanned;
    uint64_t Value = load64(Base + Word * sizeof(uint64_t));
    Address Addr = static_cast<Address>(Value);
    if (!Arena.contains(Addr))
      continue;
    considerCandidate(Arena.offsetOf(Addr), ScanOrigin::Heap, Stats);
  }
}

void Marker::scanRootRange(const RootRange &Range,
                           const unsigned char *Begin,
                           const unsigned char *End,
                           CollectionStats &Stats) {
  Stats.RootBytesScanned += static_cast<uint64_t>(End - Begin);
  unsigned Stride = Config.RootScanAlignment;
  CGC_CHECK(Stride >= 1 && Stride <= 8, "bad root scan alignment");

  if (Range.Encoding == RootEncoding::Native64) {
    if (static_cast<size_t>(End - Begin) < sizeof(uint64_t))
      return;
    for (const unsigned char *P = Begin; P + sizeof(uint64_t) <= End;
         P += Stride) {
      ++Stats.RootCandidatesExamined;
      uint64_t Word = load64(P);
      Address Addr = static_cast<Address>(Word);
      if (!Arena.contains(Addr))
        continue;
      WindowOffset Offset = Arena.offsetOf(Addr);
      uint64_t Before = Stats.ObjectsMarked;
      considerCandidate(Offset, originOf(Range.Source), Stats);
      if (Stats.ObjectsMarked != Before)
        ++Stats.RootHits;
    }
    return;
  }

  // Window32: every 32-bit value is an offset into the window, exactly
  // as every 32-bit integer was an address on the paper's machines.
  bool BigEndian = Range.Encoding == RootEncoding::Window32BE;
  if (static_cast<size_t>(End - Begin) < sizeof(uint32_t))
    return;
  for (const unsigned char *P = Begin; P + sizeof(uint32_t) <= End;
       P += Stride) {
    ++Stats.RootCandidatesExamined;
    WindowOffset Offset = load32(P, BigEndian);
    if (!Arena.containsOffset(Offset))
      continue;
    uint64_t Before = Stats.ObjectsMarked;
    considerCandidate(Offset, originOf(Range.Source), Stats);
    if (Stats.ObjectsMarked != Before)
      ++Stats.RootHits;
  }
}

void Marker::scanHeapRange(WindowOffset Begin, uint32_t Bytes,
                           CollectionStats &Stats) {
  if (Bytes < sizeof(uint64_t))
    return;
  const unsigned char *P =
      static_cast<const unsigned char *>(Arena.pointerTo(Begin));
  const unsigned char *End = P + Bytes;
  unsigned Stride = Config.HeapScanAlignment;
  CGC_CHECK(Stride >= 1 && Stride <= 8, "bad heap scan alignment");
  for (; P + sizeof(uint64_t) <= End; P += Stride) {
    ++Stats.HeapWordsScanned;
    uint64_t Word = load64(P);
    Address Addr = static_cast<Address>(Word);
    if (!Arena.contains(Addr))
      continue;
    considerCandidate(Arena.offsetOf(Addr), ScanOrigin::Heap, Stats);
  }
}

void Marker::markUncollectableObjects(CollectionStats &Stats) {
  Blocks.forEach([&](BlockId, BlockDescriptor &Block) {
    if (Block.Kind != ObjectKind::Uncollectable)
      return;
    for (uint32_t Slot = 0; Slot != Block.ObjectCount; ++Slot) {
      if (!Block.AllocBits.test(Slot))
        continue;
      if (Block.MarkBits.testAndSet(Slot))
        continue;
      ++Stats.ObjectsMarked;
      Stats.BytesMarked += Block.ObjectSize;
      MarkStack.push_back({Block.slotOffset(Slot), Block.ObjectSize,
                           Block.LayoutId});
    }
  });
}

void Marker::drainMarkStack(CollectionStats &Stats) {
  while (!MarkStack.empty()) {
    WorkItem Item = MarkStack.back();
    MarkStack.pop_back();
    if (Item.LayoutId != 0)
      scanTypedObject(Item.Begin, Item.Bytes, Item.LayoutId, Stats);
    else
      scanHeapRange(Item.Begin, Item.Bytes, Stats);
  }
}

void Marker::runMark(const RootSet &Roots, CollectionStats &Stats) {
  Heap.clearMarks();
  MarkStack.clear();
  // Uncollectable objects are roots: live by definition, and their
  // contents may hold the only pointer to collectable data.
  markUncollectableObjects(Stats);
  Roots.forEach([&](const RootRange &Range) {
    Roots.forEachScannableSubrange(
        Range.Begin, Range.End,
        [&](const unsigned char *Begin, const unsigned char *End) {
          scanRootRange(Range, Begin, End, Stats);
        });
  });
  drainMarkStack(Stats);
}

void Marker::markFromCandidate(WindowOffset Candidate,
                               CollectionStats &Stats) {
  considerCandidate(Candidate, ScanOrigin::Client, Stats);
  drainMarkStack(Stats);
}
