//===- core/Marker.cpp - Conservative marking with blacklisting ----------===//

#include "core/Marker.h"
#include <algorithm>

using namespace cgc;

Marker::Marker(VirtualArena &Arena, PageAllocator &Pages, PageMap &Map,
               BlockTable &Blocks, ObjectHeap &Heap,
               Blacklist &BlacklistImpl, GcWorkerPool &Pool,
               const GcConfig &Config)
    : Blocks(Blocks), Heap(Heap), Pool(Pool), Config(Config),
      Context(Arena, Pages, Map, Blocks, Heap, BlacklistImpl, Pool,
              Config) {}

void Marker::markUncollectableObjects(CollectionStats &Stats) {
  Blocks.forEach([&](BlockId, BlockDescriptor &Block) {
    if (!kindIsUncollectable(Block.Kind))
      return;
    for (uint32_t Slot = 0; Slot != Block.ObjectCount; ++Slot) {
      if (!Block.AllocBits.test(Slot))
        continue;
      if (Block.MarkBits.testAndSet(Slot))
        continue;
      ++Stats.ObjectsMarked;
      Stats.BytesMarked += Block.ObjectSize;
      // Pointer-free uncollectable payloads are live by definition but
      // hold no pointers: nothing to trace through them.
      if (kindIsPointerFree(Block.Kind))
        continue;
      Seeds.push_back({Block.slotOffset(Slot), Block.ObjectSize,
                       Block.LayoutId});
    }
  });
}

void Marker::runRootScan(const RootSet &Roots, CollectionStats &Stats) {
  Heap.clearMarks();
  Seeds.clear();
  // Uncollectable objects are roots: live by definition, and their
  // contents may hold the only pointer to collectable data.
  markUncollectableObjects(Stats);
  MarkWorker Scanner(Context, Stats, &Seeds);
  std::vector<RootScanSpan> Spans = Roots.scannableSpans();
  unsigned Workers =
      std::clamp(Config.RootScanThreads, 1u, MarkContext::MaxWorkers);
  if (Workers > 1 && Spans.size() >= 2)
    Workers = Pool.ensureWorkers(Workers);
  Stats.RootScanWorkers = Workers;
  if (Workers == 1 || Spans.size() < 2) {
    for (const RootScanSpan &Span : Spans)
      Scanner.scanRootSpan(*Span.Range, Span.Begin, Span.End);
    return;
  }

  // Parallel path, in two halves.  Gather: workers pull spans off a
  // shared index and decode them read-only into per-span buffers.
  // Replay: the collecting thread feeds every buffered candidate
  // through considerCandidate in span registration order, so marking,
  // RootHits, and blacklist notes — and therefore the whole collection
  // — are bit-identical for any worker count or span/worker pairing.
  std::vector<MarkContext::RootSpanGather> Gathers(Spans.size());
  std::atomic<size_t> NextSpan{0};
  Pool.runOn(Workers, [&](unsigned) {
    for (;;) {
      size_t I = NextSpan.fetch_add(1, std::memory_order_relaxed);
      if (I >= Spans.size())
        return;
      Context.gatherRootSpan(*Spans[I].Range, Spans[I].Begin, Spans[I].End,
                             Gathers[I]);
    }
  });
  for (size_t I = 0; I != Spans.size(); ++I)
    Scanner.replayRootCandidates(*Spans[I].Range, Gathers[I]);
}

void Marker::runMarkPhase(CollectionStats &Stats) {
  // mark() records the worker count actually used (it can be
  // negotiated down when thread spawning fails) in Stats.MarkWorkers.
  unsigned Workers =
      std::clamp(Config.MarkThreads, 1u, MarkContext::MaxWorkers);
  Context.mark(Seeds, Workers, Stats);
}

void Marker::runMark(const RootSet &Roots, CollectionStats &Stats) {
  runRootScan(Roots, Stats);
  runMarkPhase(Stats);
}

void Marker::markFromCandidate(WindowOffset Candidate,
                               CollectionStats &Stats) {
  // Resurrection-sized graphs; always sequential, independent of the
  // Mark phase's worker count.
  std::vector<MarkWorkItem> Stack;
  MarkWorker Worker(Context, Stats, &Stack);
  Worker.considerCandidate(Candidate, ScanOrigin::Client);
  Worker.drainSequential(Stack);
  Context.recoverFromOverflow(Stats);
}
