//===- core/Blacklist.h - Page blacklisting --------------------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's central contribution: during marking, every value that
/// looks like it *could* become a heap address but is not a valid object
/// address is recorded, and the allocator then refuses to place
/// pointer-sensitive objects on those pages.  "This scheme is likely to
/// blacklist addresses that correspond to long-lived data values before
/// these values become false references."
///
/// Two representations, both page-granular as in the paper:
///   * FlatBitmapBlacklist — a bit array indexed by page number.
///   * HashedBlacklist — a hash table with one bit per entry; a false
///     reference to any page in a hash class blacklists the whole
///     class.  "Since collisions can easily be made rare, this does not
///     result in much lost precision."
///
/// Aging implements "blacklisted values that are no longer found by a
/// later collection may be removed from the list": each collection
/// records the candidates it saw, and at cycle end the live set becomes
/// the just-seen set.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_CORE_BLACKLIST_H
#define CGC_CORE_BLACKLIST_H

#include "heap/HeapUnits.h"
#include "support/BitVector.h"
#include <cstdint>
#include <memory>

namespace cgc {

struct BlacklistStats {
  /// Candidates reported by the marker over the collector's lifetime.
  uint64_t CandidatesNoted = 0;
  /// Collection cycles observed.
  uint64_t Cycles = 0;
};

class Blacklist {
public:
  virtual ~Blacklist() = default;

  /// Records that marking saw a near-miss candidate on \p Page.
  virtual void noteCandidate(PageIndex Page) = 0;

  /// \returns true if allocation on \p Page should be avoided.
  virtual bool isBlacklisted(PageIndex Page) const = 0;

  /// Called at the start of a collection cycle.
  virtual void beginCycle() = 0;

  /// Called at the end of a collection cycle; applies aging.
  virtual void endCycle() = 0;

  /// One-shot aging on demand: drops every entry the most recent
  /// collection did not re-observe, even when aging is off.  The
  /// retention-storm sentinel's level-2 response — stale entries
  /// squeeze allocation onto fewer pages.  No-op by default.
  virtual void refresh() {}

  /// Number of pages currently blacklisted (hash mode: an upper-bound
  /// estimate of pages per set bit is not attempted; reports set bits).
  virtual uint64_t entryCount() const = 0;

  const BlacklistStats &stats() const { return Stats; }

protected:
  BlacklistStats Stats;
};

/// No-op blacklist used when blacklisting is disabled.
class NullBlacklist final : public Blacklist {
public:
  void noteCandidate(PageIndex) override { ++Stats.CandidatesNoted; }
  bool isBlacklisted(PageIndex) const override { return false; }
  void beginCycle() override {}
  void endCycle() override { ++Stats.Cycles; }
  uint64_t entryCount() const override { return 0; }
};

/// Bit-array blacklist indexed by window page number.
class FlatBitmapBlacklist final : public Blacklist {
public:
  /// \param NumPages window page count.
  /// \param Aging    drop entries a later collection no longer sees.
  FlatBitmapBlacklist(PageIndex NumPages, bool Aging);

  void noteCandidate(PageIndex Page) override;
  bool isBlacklisted(PageIndex Page) const override {
    return Page < Current.size() && Current.test(Page);
  }
  void beginCycle() override;
  void endCycle() override;
  void refresh() override;
  uint64_t entryCount() const override { return Current.count(); }

private:
  BitVector Current;
  BitVector SeenThisCycle;
  bool Aging;
  bool InCycle = false;
};

/// Hash-table blacklist: page -> bit index; collisions blacklist the
/// whole hash class.
class HashedBlacklist final : public Blacklist {
public:
  HashedBlacklist(unsigned BitsLog2, bool Aging);

  void noteCandidate(PageIndex Page) override;
  bool isBlacklisted(PageIndex Page) const override {
    return Current.test(hashPage(Page));
  }
  void beginCycle() override;
  void endCycle() override;
  void refresh() override;
  uint64_t entryCount() const override { return Current.count(); }

private:
  size_t hashPage(PageIndex Page) const {
    // Multiplicative hashing; high bits select the bucket.
    return static_cast<size_t>((uint64_t(Page) * 0x9e3779b97f4a7c15ULL) >>
                               (64 - BitsLog2));
  }

  unsigned BitsLog2;
  BitVector Current;
  BitVector SeenThisCycle;
  bool Aging;
  bool InCycle = false;
};

enum class BlacklistMode : unsigned char;

/// Factory used by the collector.
std::unique_ptr<Blacklist> createBlacklist(BlacklistMode Mode,
                                           PageIndex NumPages,
                                           unsigned HashedBitsLog2,
                                           bool Aging);

} // namespace cgc

#endif // CGC_CORE_BLACKLIST_H
