//===- core/RetentionTracer.cpp - Why is this object live? ----------------===//

#include "core/RetentionTracer.h"
#include "support/Assert.h"
#include <cstring>
#include <deque>
#include <unordered_map>

using namespace cgc;

namespace {

uint64_t keyOf(ObjectRef Ref) {
  return (uint64_t(Ref.Block) << 32) | Ref.Slot;
}

uint32_t load32At(const unsigned char *P, bool BigEndian) {
  uint32_t Value;
  std::memcpy(&Value, P, sizeof(Value));
  if (BigEndian)
    Value = __builtin_bswap32(Value);
  return Value;
}

uint64_t load64At(const unsigned char *P) {
  uint64_t Value;
  std::memcpy(&Value, P, sizeof(Value));
  return Value;
}

struct Provenance {
  /// Key of the parent object, or 0 for root-reached.
  uint64_t ParentKey = 0;
  /// For root-reached objects: which root range and word.
  uint32_t RootIndex = 0;
  const void *RootWord = nullptr;
  /// The candidate value used to reach this object.
  WindowOffset ReachedThrough = 0;
};

} // namespace

std::string RetentionTrace::describe() const {
  if (!Reached)
    return "(not reachable from the current roots)";
  char Buffer[128];
  std::string Text = RootLabel;
  for (const RetentionStep &Step : Chain) {
    std::snprintf(Buffer, sizeof(Buffer), " -> obj@0x%llx (%u bytes)",
                  (unsigned long long)Step.ObjectBase, Step.ObjectSize);
    Text += Buffer;
  }
  return Text;
}

RetentionTrace RetentionTracer::explain(const void *Target) {
  RetentionTrace Result;
  if (!GC.isHeapPointer(Target))
    return Result;
  Marker &M = GC.marker();
  VirtualArena &Arena = GC.arena();
  ObjectHeap &Heap = GC.objectHeap();
  const GcConfig &Config = GC.config();

  ObjectRef TargetRef = M.resolveCandidate(
      Arena.offsetOf(reinterpret_cast<Address>(Target)));
  if (!TargetRef.valid())
    return Result;
  uint64_t TargetKey = keyOf(TargetRef);

  std::unordered_map<uint64_t, Provenance> Visited;
  std::deque<uint64_t> Queue;
  std::vector<const RootRange *> RootRanges;

  auto visit = [&](WindowOffset Candidate, uint64_t ParentKey,
                   uint32_t RootIndex, const void *RootWord) -> bool {
    ObjectRef Ref = M.resolveCandidate(Candidate);
    if (!Ref.valid())
      return false;
    uint64_t Key = keyOf(Ref);
    if (Visited.count(Key))
      return false;
    Provenance P;
    P.ParentKey = ParentKey;
    P.RootIndex = RootIndex;
    P.RootWord = RootWord;
    P.ReachedThrough = Candidate;
    Visited.emplace(Key, P);
    Queue.push_back(Key);
    return Key == TargetKey;
  };

  bool Found = false;

  // Uncollectable objects are roots (including the pointer-free
  // variety: live by definition, even though nothing traces through
  // them).
  Heap.forEachBlock([&](BlockId Id, BlockDescriptor &Block) {
    if (Found || !kindIsUncollectable(Block.Kind))
      return;
    for (uint32_t Slot = 0; Slot != Block.ObjectCount && !Found; ++Slot) {
      if (!Block.AllocBits.test(Slot))
        continue;
      ObjectRef Ref{Id, Slot};
      uint64_t Key = keyOf(Ref);
      if (Visited.count(Key))
        continue;
      Provenance P;
      P.ParentKey = 0;
      P.RootIndex = ~0u; // Sentinel: uncollectable root.
      P.ReachedThrough = Heap.baseOffset(Ref);
      Visited.emplace(Key, P);
      Queue.push_back(Key);
      Found = Key == TargetKey;
    }
  });

  // Registered root ranges, honoring exclusions, encodings, alignment.
  RootSet &Roots = GC.roots();
  Roots.forEach([&](const RootRange &Range) {
    if (Found)
      return;
    RootRanges.push_back(&Range);
    uint32_t RootIndex = static_cast<uint32_t>(RootRanges.size() - 1);
    Roots.forEachScannableSubrange(
        Range.Begin, Range.End,
        [&](const unsigned char *Begin, const unsigned char *End) {
          if (Found)
            return;
          unsigned Stride = Config.RootScanAlignment;
          if (Range.Encoding == RootEncoding::Native64) {
            for (const unsigned char *P = Begin;
                 !Found && P + sizeof(uint64_t) <= End; P += Stride) {
              Address Addr = static_cast<Address>(load64At(P));
              if (!Arena.contains(Addr))
                continue;
              Found |= visit(Arena.offsetOf(Addr), 0, RootIndex, P);
            }
            return;
          }
          bool BigEndian = Range.Encoding == RootEncoding::Window32BE;
          for (const unsigned char *P = Begin;
               !Found && P + sizeof(uint32_t) <= End; P += Stride) {
            WindowOffset Offset = load32At(P, BigEndian);
            if (!Arena.containsOffset(Offset))
              continue;
            Found |= visit(Offset, 0, RootIndex, P);
          }
        });
  });

  // Breadth-first over the heap so the reported chain is shortest.
  while (!Found && !Queue.empty()) {
    uint64_t Key = Queue.front();
    Queue.pop_front();
    ObjectRef Ref{static_cast<BlockId>(Key >> 32),
                  static_cast<uint32_t>(Key)};
    const BlockDescriptor &Block =
        Heap.blockTable().get(Ref.Block);
    if (kindIsPointerFree(Block.Kind))
      continue;
    WindowOffset Base = Heap.baseOffset(Ref);
    const unsigned char *P =
        static_cast<const unsigned char *>(Arena.pointerTo(Base));
    uint32_t Bytes = Block.ObjectSize;

    if (Block.LayoutId != 0) {
      // Mirror of MarkWorker::scanTypedObject: stride over exactly the
      // descriptor's pointer-bearing words.
      const TypeDescriptor &D = Heap.layout(Block.LayoutId);
      uint32_t Words = std::min<uint32_t>(
          D.NumWords, Bytes / static_cast<uint32_t>(sizeof(uint64_t)));
      for (uint32_t Word = D.findPointerWord(0); !Found && Word < Words;
           Word = D.findPointerWord(Word + 1)) {
        Address Addr =
            static_cast<Address>(load64At(P + Word * sizeof(uint64_t)));
        if (Arena.contains(Addr))
          Found |= visit(Arena.offsetOf(Addr), Key, 0, nullptr);
      }
      continue;
    }
    unsigned Stride = Config.HeapScanAlignment;
    for (uint32_t I = 0; !Found && I + sizeof(uint64_t) <= Bytes;
         I += Stride) {
      Address Addr = static_cast<Address>(load64At(P + I));
      if (Arena.contains(Addr))
        Found |= visit(Arena.offsetOf(Addr), Key, 0, nullptr);
    }
  }

  if (!Visited.count(TargetKey))
    return Result;

  // Reconstruct the chain target -> ... -> root, then reverse.
  Result.Reached = true;
  std::vector<RetentionStep> Reversed;
  uint64_t Cursor = TargetKey;
  while (true) {
    const Provenance &P = Visited.at(Cursor);
    ObjectRef Ref{static_cast<BlockId>(Cursor >> 32),
                  static_cast<uint32_t>(Cursor)};
    RetentionStep Step;
    Step.ObjectBase = Heap.baseOffset(Ref);
    Step.ObjectSize = static_cast<uint32_t>(Heap.objectSize(Ref));
    Step.ReachedThrough = P.ReachedThrough;
    Reversed.push_back(Step);
    if (P.ParentKey == 0) {
      if (P.RootIndex == ~0u) {
        Result.RootLabel = "(uncollectable object)";
        Result.Source = RootSource::Client;
      } else {
        const RootRange *Range = RootRanges[P.RootIndex];
        Result.RootLabel = Range->Label;
        Result.Source = Range->Source;
        Result.RootWord = P.RootWord;
      }
      break;
    }
    Cursor = P.ParentKey;
  }
  Result.Chain.assign(Reversed.rbegin(), Reversed.rend());
  return Result;
}
