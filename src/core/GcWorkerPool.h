//===- core/GcWorkerPool.h - Persistent GC worker threads ------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent pool of collector worker threads shared by every
/// parallel collection phase (Mark and Sweep today; RootScan is the
/// natural next tenant).  The paper's collector is single-threaded;
/// this is the post-paper scaling layer, and its design goal is that
/// parallelism never perturbs the paper's measurements:
///
///   * Threads are spawned **once**, lazily, the first time a phase
///     asks for more than one worker — never per collection.  Spawn
///     cost previously bounded speedup on the short cycles that
///     dominate Program T and the Figure-3 grids; a parked pool makes
///     a phase hand-off two condition-variable signals.
///   * Between jobs the threads park on a condition variable, so an
///     idle collector burns no CPU.
///   * A phase runs as runOn(N, Fn): the calling (mutator) thread is
///     always worker 0 and the pool contributes workers 1..N-1, so
///     N == 1 never touches the pool at all — the sequential paper
///     configurations cannot even observe its existence.
///
/// The pool is deliberately phase-shaped rather than task-shaped: one
/// job at a time, every worker runs the same function, and runOn is a
/// full barrier.  Collection phases are stop-the-world, so nothing
/// more general is needed, and the barrier is what lets the sequential
/// merge steps that follow each parallel phase (stats folding,
/// free-list application, blacklist replay) run without locks.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_CORE_GCWORKERPOOL_H
#define CGC_CORE_GCWORKERPOOL_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cgc {

class GcWorkerPool {
public:
  /// Hard cap on workers per job (caller + MaxWorkers - 1 pool
  /// threads).  Matches the historical MarkContext ceiling.
  static constexpr unsigned MaxWorkers = 64;

  GcWorkerPool() = default;
  ~GcWorkerPool();

  GcWorkerPool(const GcWorkerPool &) = delete;
  GcWorkerPool &operator=(const GcWorkerPool &) = delete;

  /// Runs \p Fn(WorkerId) on \p Workers workers (clamped to
  /// [1, MaxWorkers]) and returns once every invocation has finished —
  /// a full barrier.  The calling thread is worker 0; pool threads
  /// (spawned on first need, reused ever after) are workers
  /// 1..Workers-1.  Workers == 1 calls Fn(0) inline without touching
  /// any pool state.  If thread spawning failed, the job runs on the
  /// threads that exist (worst case: inline on the caller).  Not
  /// reentrant: phases never nest.
  void runOn(unsigned Workers, const std::function<void(unsigned)> &Fn);

  /// Negotiates a worker count before a phase shards its work: tries
  /// to ensure \p Desired - 1 pool threads exist and \returns the
  /// count actually available, min(Desired, spawned + 1).  Thread
  /// construction failure (std::system_error, or an injected
  /// WorkerSpawn fault) is not fatal: the phase degrades to fewer
  /// workers — ultimately sequential — with bit-identical results.
  unsigned ensureWorkers(unsigned Desired);

  /// Pool thread spawns that failed over this pool's lifetime.
  uint64_t spawnFailures() const;

  /// Installs a callback invoked (outside the pool lock) each time a
  /// spawn attempt fails, with the lifetime failure total.  The
  /// collector routes this into its exponential-backoff warn limiter,
  /// so a soak run that keeps failing to spawn reports occurrences
  /// 1, 2, 4, 8, ... instead of spamming (or staying silent after the
  /// first).
  void setSpawnFailureCallback(std::function<void(uint64_t)> Fn);

  /// Number of pool threads ever spawned (== currently parked or
  /// working; pool threads live until destruction).  A collector that
  /// has only run sequential phases reports 0.
  unsigned threadsSpawned() const;

  /// Number of jobs dispatched to pool threads (sequential runOn(1)
  /// calls are not jobs).  Tests use this with threadsSpawned() to
  /// prove threads are reused, not respawned.
  uint64_t jobsDispatched() const;

  /// Fork safety.  lockForFork (pthread_atfork prepare) acquires the
  /// pool lock so the fork snapshot never catches a thread mid-wakeup
  /// with the lock held; phases run under the collector's heap lock —
  /// already held by prepare — so no job can be in flight.
  /// unlockForFork releases it again in the parent and the child.
  void lockForFork();
  void unlockForFork();

  /// Child-side fork cleanup: the forked child has none of the pool's
  /// threads (fork preserves only the calling thread), but the copied
  /// bookkeeping says it does.  Drops every thread record — detached;
  /// there is nothing to join — and resets job state so the next
  /// parallel phase respawns from scratch.
  void resetAfterFork();

private:
  void threadMain(unsigned Index, uint64_t StartGeneration);
  /// Grows the pool to \p Count threads; caller must not hold Lock.
  void ensureThreads(unsigned Count);

  mutable std::mutex Lock;
  /// Pool threads wait here for a new job generation (or shutdown).
  std::condition_variable WorkReady;
  /// The runOn caller waits here for the last participant to finish.
  std::condition_variable JobDone;
  std::vector<std::thread> Threads;

  /// Current job, valid while a runOn is in flight.  Guarded by Lock;
  /// read by participants after they observe the new generation.
  const std::function<void(unsigned)> *Job = nullptr;
  /// Bumped per dispatched job; parked threads use it to tell "new
  /// job" from a spurious wakeup.
  uint64_t Generation = 0;
  /// Workers participating in the current job, caller included.
  /// Threads with Index + 1 >= JobWorkers sit the job out.
  unsigned JobWorkers = 0;
  /// Pool threads still inside the current job.
  unsigned Remaining = 0;
  /// Spawn attempts that threw (or were fault-injected to fail).
  uint64_t SpawnFailures = 0;
  /// See setSpawnFailureCallback; copied out of the lock before use.
  std::function<void(uint64_t)> OnSpawnFailure;
  bool ShuttingDown = false;
};

} // namespace cgc

#endif // CGC_CORE_GCWORKERPOOL_H
