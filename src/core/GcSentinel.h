//===- core/GcSentinel.h - Retention-storm sentinel ------------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime defense against the paper's §2 failure mode: conservative
/// misidentification silently retaining garbage until the heap grows
/// without bound.  The sentinel is a GcObserver that watches the
/// live-bytes trajectory across a sliding window of collections
/// (GcConfig::SentinelPolicy) and, when sustained growth exceeds the
/// configured slope/floor, climbs a four-level escalation ladder of the
/// paper's own remedies:
///
///   level 1  force §3.1 cheap stack clearing (dead-frame residue is
///            Appendix B's dominant leak source)
///   level 2  refresh the blacklist (drop entries the last collection
///            no longer observed, even with aging off)
///   level 3  tighten interior-pointer recognition All -> FirstPage for
///            TightenCycles collections (observation 7's remedy)
///   level 4  emit a structured GcIncident — cause, trajectory window,
///            top retained-bytes-by-root-source sampled through
///            RetentionTracer — via GcWarnProc and onIncident
///
/// CalmCollections consecutive non-growing collections stand the
/// sentinel down: every overridden configuration knob is restored and
/// the level returns to 0.  Detection requires a full window with most
/// deltas positive, so sawtooth workloads (grow, drop, grow, drop) do
/// not flap the ladder.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_CORE_GCSENTINEL_H
#define CGC_CORE_GCSENTINEL_H

#include "core/GcConfig.h"
#include "core/GcIncident.h"
#include "core/GcObserver.h"
#include <optional>
#include <vector>

namespace cgc {

class Collector;

struct GcSentinelStats {
  /// Windows that met the storm criteria (counted even while the
  /// ladder is saturated or cooling down).
  uint64_t StormsDetected = 0;
  uint64_t StackClearForces = 0;
  uint64_t BlacklistRefreshes = 0;
  uint64_t InteriorTightenings = 0;
  uint64_t IncidentsRaised = 0;
  uint64_t Deescalations = 0;
  /// Current ladder level, 0 (calm) through 4 (incident raised).
  unsigned CurrentLevel = 0;
};

class GcSentinel final : public GcObserver {
public:
  GcSentinel(Collector &GC, const SentinelPolicy &Policy);

  void onCollectionEnd(uint64_t CollectionIndex,
                       const CollectionStats &Stats) override;

  const GcSentinelStats &stats() const { return Stats; }
  unsigned currentLevel() const { return Stats.CurrentLevel; }
  /// The current trajectory window, oldest first (tests and the soak
  /// harness assert on it).
  const std::vector<SentinelSample> &trajectory() const { return Window; }
  /// The last incident raised, if any (copied at emission time).
  const std::optional<GcIncident> &lastIncident() const {
    return LastIncident;
  }

  /// Restores every configuration knob the ladder overrode and returns
  /// to level 0.  Called on de-escalation and before the sentinel is
  /// torn down.
  void standDown();

private:
  bool windowIsStorm(uint64_t &GrowthOut) const;
  void escalate(uint64_t CollectionIndex, uint64_t GrowthBytes);
  void raiseIncident(uint64_t CollectionIndex, uint64_t GrowthBytes);

  Collector &GC;
  SentinelPolicy Policy;
  GcSentinelStats Stats;
  std::vector<SentinelSample> Window;
  std::optional<GcIncident> LastIncident;

  /// Saved knobs to restore on stand-down.
  std::optional<StackClearMode> SavedStackClearing;
  std::optional<InteriorPolicy> SavedInterior;
  /// Collection index at which the level-3 tightening expires.
  uint64_t TightenUntil = 0;
  bool TightenActive = false;

  /// Collection index of the last escalation, for the cooldown.
  uint64_t LastEscalationIndex = 0;
  bool EverEscalated = false;
  /// Consecutive non-growing collections (de-escalation hysteresis).
  unsigned CalmStreak = 0;
};

} // namespace cgc

#endif // CGC_CORE_GCSENTINEL_H
