//===- core/RetentionTracer.h - Why is this object live? -------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Answers the question the paper's authors kept having to answer by
/// hand: *which reference keeps this object alive?*  ("Whenever we have
/// managed to track down similar references, this has been the case";
/// "Daniel Edelson and Regis Cridlig helped to track down the
/// performance problems they observed.")
///
/// The tracer runs a provenance-recording reachability pass from the
/// current root set and reconstructs, for a target object, the chain
/// root word -> object -> object -> ... -> target, labeling the root
/// range (static data / stack / registers / client) the chain starts
/// from.  False retention debugging then reads off directly: a chain
/// starting at an integer table or a dead stack slot is a
/// misidentification; a chain starting at a client root is a real leak.
///
/// The pass uses its own visited set and does not disturb mark bits.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_CORE_RETENTIONTRACER_H
#define CGC_CORE_RETENTIONTRACER_H

#include "core/Collector.h"
#include <string>
#include <vector>

namespace cgc {

struct RetentionStep {
  /// Base window offset of the object on the chain.
  WindowOffset ObjectBase = 0;
  uint32_t ObjectSize = 0;
  /// The candidate value through which this object was reached (may be
  /// an interior address).
  WindowOffset ReachedThrough = 0;
};

struct RetentionTrace {
  bool Reached = false;
  /// Label and classification of the root range the chain starts from.
  std::string RootLabel;
  RootSource Source = RootSource::Client;
  /// Host address of the specific root word holding the first link.
  const void *RootWord = nullptr;
  /// Chain from the root-adjacent object to the target (inclusive).
  std::vector<RetentionStep> Chain;

  /// Renders "label[+offset] -> obj@0x... -> ... -> target" to a
  /// string for logs and tests.
  std::string describe() const;
};

class RetentionTracer {
public:
  explicit RetentionTracer(Collector &GC) : GC(GC) {}

  /// Traces why \p Target (any address resolving to an object under
  /// the collector's interior policy) is reachable.  \returns
  /// Reached=false if it is not reachable from the current roots.
  RetentionTrace explain(const void *Target);

private:
  Collector &GC;
};

} // namespace cgc

#endif // CGC_CORE_RETENTIONTRACER_H
