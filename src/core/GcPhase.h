//===- core/GcPhase.h - Collection pipeline phases -------------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The collection cycle as an explicit phase pipeline.  The paper
/// presents one monolithic mark-sweep cycle; structuring it as named
/// phases with per-phase timing gives every phase a checkable boundary
/// (in the spirit of verified-GC work, where phase invariants are the
/// proof obligations) and lets the Mark and Sweep phases run on the
/// collector's persistent worker pool (core/GcWorkerPool.h) without
/// touching the phases around them.
///
/// Pipeline order, fixed for every collection:
///
///   RootScan -> Mark -> BlacklistPromote -> Sweep -> Finalize
///
///   * RootScan         — clear marks, mark uncollectable objects, scan
///                        every root span; reachable objects found here
///                        seed the mark work queue.
///   * Mark             — transitively mark the heap from the seeds
///                        (1..N workers; see core/MarkContext.h).
///                        Finalizable objects found unreachable are
///                        resurrected here (resurrection is marking
///                        work) and staged for the Finalize phase.
///   * BlacklistPromote — flush worker blacklist buffers and promote
///                        this cycle's near-miss candidates into the
///                        active blacklist (aging happens here too).
///   * Sweep            — reclaim unmarked objects, pin marked-free
///                        slots, release empty blocks (1..N pool
///                        workers; see core/SweepContext.h).
///   * Finalize         — publish staged finalizers to the ready queue
///                        and emit object-retained observer events.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_CORE_GCPHASE_H
#define CGC_CORE_GCPHASE_H

namespace cgc {

enum class GcPhase : unsigned char {
  RootScan,
  Mark,
  BlacklistPromote,
  Sweep,
  Finalize,
};

constexpr unsigned NumGcPhases = 5;

constexpr const char *gcPhaseName(GcPhase Phase) {
  switch (Phase) {
  case GcPhase::RootScan:
    return "root-scan";
  case GcPhase::Mark:
    return "mark";
  case GcPhase::BlacklistPromote:
    return "blacklist-promote";
  case GcPhase::Sweep:
    return "sweep";
  case GcPhase::Finalize:
    return "finalize";
  }
  return "?";
}

} // namespace cgc

#endif // CGC_CORE_GCPHASE_H
