//===- core/GcStats.h - Collection statistics ------------------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-collection and lifetime statistics.  The paper's measurements
/// (Table 1 retention, footnote-3 overheads, §3.1 apparent liveness)
/// are all derived from these counters.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_CORE_GCSTATS_H
#define CGC_CORE_GCSTATS_H

#include "core/GcPhase.h"
#include "heap/TypeDescriptor.h"
#include <cstdint>

namespace cgc {

/// Where a candidate word was found during scanning.  Mirrors
/// RootSource with an extra entry for heap-object contents; used for
/// the paper's source-of-leakage analysis (Appendix B identifies
/// static variables, allocator stack garbage, and heap-resident
/// pointers as distinct leak sources).
enum class ScanOrigin : unsigned char {
  StaticData,
  Stack,
  Registers,
  Client,
  Heap,
};

constexpr unsigned NumScanOrigins = 5;

constexpr const char *scanOriginName(ScanOrigin Origin) {
  switch (Origin) {
  case ScanOrigin::StaticData:
    return "static data";
  case ScanOrigin::Stack:
    return "stack";
  case ScanOrigin::Registers:
    return "registers";
  case ScanOrigin::Client:
    return "client roots";
  case ScanOrigin::Heap:
    return "heap objects";
  }
  return "?";
}

/// Statistics for one collection cycle.
struct CollectionStats {
  uint64_t RootBytesScanned = 0;
  uint64_t RootCandidatesExamined = 0;
  /// Root candidates that resolved to a valid object.
  uint64_t RootHits = 0;
  /// Candidates (root or heap) in the potential heap that failed the
  /// validity test: the Figure-2 blacklist feed.
  uint64_t NearMisses = 0;
  uint64_t HeapWordsScanned = 0;
  uint64_t ObjectsMarked = 0;
  uint64_t BytesMarked = 0;
  uint64_t ObjectsSweptFree = 0;
  uint64_t BytesSweptFree = 0;
  uint64_t ObjectsLive = 0;
  uint64_t BytesLive = 0;
  uint64_t SlotsPinned = 0;
  uint64_t PagesReleased = 0;
  uint64_t BlacklistedPages = 0;
  uint64_t FinalizersQueued = 0;
  /// Mark-stack overflows this cycle (real or fault-injected).  Each
  /// one dropped a work item; the marker recovered by rescanning marked
  /// objects to a fixpoint, so the marked set is unaffected.
  uint64_t MarkStackOverflows = 0;
  /// Mark workers used by this cycle's Mark phase (GcConfig::MarkThreads
  /// at the time of collection; 1 = the paper's sequential marker).
  uint32_t MarkWorkers = 1;
  /// Sweep workers used by this cycle's Sweep phase
  /// (GcConfig::SweepThreads at the time of collection; 1 = the paper's
  /// sequential sweep).
  uint32_t SweepWorkers = 1;
  /// Workers that gathered root candidates this cycle
  /// (GcConfig::RootScanThreads; 1 = the paper's sequential scan).
  uint32_t RootScanWorkers = 1;
  /// Registered mutator threads the stop-the-world handshake waited
  /// into a stopped state (0 in single-mutator mode: no handshake ran).
  uint64_t MutatorsStopped = 0;
  /// Nanoseconds from raising the stop request to the last mutator
  /// parking (0 when no handshake ran).
  uint64_t HandshakeNanos = 0;
  /// Thread-cache slots flushed back to the heap at this cycle's
  /// handshake (unused reservations returned before RootScan).
  uint64_t CacheSlotsFlushed = 0;
  /// Thread-cache slots that could not be flushed — their owner was
  /// frozen by the watchdog's suspend signal, possibly mid-fast-path —
  /// and were instead marked live so the sweep keeps them (0 on every
  /// cooperative handshake).
  uint64_t CacheSlotsPinned = 0;
  /// Nanoseconds spent in each pipeline phase (indexed by GcPhase).
  uint64_t PhaseNanos[NumGcPhases] = {};
  /// Aggregate nanoseconds: MarkNanos covers RootScan + Mark +
  /// BlacklistPromote (the historical "mark phase"), SweepNanos the
  /// Sweep phase.  Kept so pre-pipeline consumers read the same totals.
  uint64_t MarkNanos = 0;
  uint64_t SweepNanos = 0;
  /// Nanoseconds of MarkNanos spent on blacklist bookkeeping (the
  /// paper's footnote-3 "0.2% of its time" measurement).
  uint64_t BlacklistNanos = 0;
  /// Valid-object marks and near misses, broken down by where the
  /// candidate word was found (indexed by ScanOrigin).
  uint64_t MarksByOrigin[NumScanOrigins] = {};
  uint64_t NearMissesByOrigin[NumScanOrigins] = {};
  /// Heap-object words examined, broken down by how the containing
  /// object is traced (indexed by DescriptorClass).  PointerFree stays
  /// zero by construction (such payloads are never scanned); the other
  /// two sum to HeapWordsScanned.
  uint64_t ScanWordsByClass[NumDescriptorClasses] = {};
  /// Of those words, the ones whose value fell inside the heap window
  /// and were therefore considered as candidate pointers (indexed by
  /// DescriptorClass).
  uint64_t ScanCandidatesByClass[NumDescriptorClasses] = {};

  /// Folds another stats record's scanning counters into this one.
  /// Parallel marking accumulates per-worker records and merges them
  /// here; every counter is a sum, so the merged result is identical
  /// to a sequential mark regardless of worker interleaving.
  void addScanCounters(const CollectionStats &Other) {
    RootBytesScanned += Other.RootBytesScanned;
    RootCandidatesExamined += Other.RootCandidatesExamined;
    RootHits += Other.RootHits;
    NearMisses += Other.NearMisses;
    HeapWordsScanned += Other.HeapWordsScanned;
    ObjectsMarked += Other.ObjectsMarked;
    BytesMarked += Other.BytesMarked;
    BlacklistNanos += Other.BlacklistNanos;
    MarkStackOverflows += Other.MarkStackOverflows;
    for (unsigned I = 0; I != NumScanOrigins; ++I) {
      MarksByOrigin[I] += Other.MarksByOrigin[I];
      NearMissesByOrigin[I] += Other.NearMissesByOrigin[I];
    }
    for (unsigned I = 0; I != NumDescriptorClasses; ++I) {
      ScanWordsByClass[I] += Other.ScanWordsByClass[I];
      ScanCandidatesByClass[I] += Other.ScanCandidatesByClass[I];
    }
  }
};

/// Lifetime counters for the memory-pressure resilience layer: how
/// often the allocation slow-path ladder escalated, what the warn proc
/// saw, and how the collector degraded under injected faults.
struct GcResilienceStats {
  /// "heap-exhausted" collections forced by the allocation ladder.
  uint64_t HeapExhaustedCollections = 0;
  /// Times the ladder flushed pending lazy sweeps to reclaim pages.
  uint64_t LazySweepFlushes = 0;
  /// Last-resort collections run with interior-pointer recognition and
  /// page-placement constraints relaxed.
  uint64_t EmergencyCollections = 0;
  /// Allocations that exhausted the entire ladder.
  uint64_t OomEvents = 0;
  /// OomEvents that invoked an installed OOM handler.
  uint64_t OomHandlerInvocations = 0;
  /// Ladder collections that reclaimed nothing.
  uint64_t NoProgressCollections = 0;
  /// Warnings delivered to the warn proc / observers.
  uint64_t WarningsIssued = 0;
  /// Warnings swallowed by the exponential-backoff rate limiter.
  uint64_t WarningsSuppressed = 0;
  /// Pool worker threads that failed to spawn (collection degraded to
  /// fewer workers; results are unchanged).
  uint64_t WorkerSpawnFailures = 0;
  /// Stop-the-world handshakes that exhausted the watchdog deadline.
  /// Each one abandoned a collection attempt (HandshakeTimeout
  /// incident raised; allocation degraded to heap growth).
  uint64_t HandshakeTimeouts = 0;
  /// Collection attempts abandoned before any phase ran (today always
  /// equal to HandshakeTimeouts; split out so future abandon causes
  /// keep their own accounting).
  uint64_t AbandonedCollections = 0;
};

/// Lifetime counters for the corruption-containment layer: what the
/// self-healing verifier rebuilt, what it had to quarantine
/// (deliberately leak), how often a collection was abandoned and
/// retried after repair, and the sealed-metadata traffic.
struct GcRepairStats {
  /// verifyAndRepair passes executed (verifier-triggered or wild-write
  /// triggered).
  uint64_t VerifyRepairsRun = 0;
  /// Findings the repair pass resolved in place (counters resynced,
  /// page-map entries re-derived, lists rebuilt).
  uint64_t FindingsRepaired = 0;
  /// Blocks with irreparable geometry dropped from the block table;
  /// their pages are quarantined, not returned to the free lists.
  uint64_t BlocksQuarantined = 0;
  /// Pages deliberately leaked to quarantine (never reallocated).
  uint64_t PagesQuarantined = 0;
  /// Class free lists rebuilt from the alloc bitmaps.
  uint64_t FreeListRebuilds = 0;
  /// Page-map entry arrays re-derived from the block table.
  uint64_t PageMapRederivations = 0;
  /// Alloc/pinned counters resynced to their bitmaps.
  uint64_t CountersResynced = 0;
  /// Collections abandoned mid-pipeline and retried after repair.
  uint64_t CollectionsRetried = 0;
  /// Wild writes to sealed metadata pages caught by the SIGSEGV
  /// sub-handler and raised as MetadataWildWrite incidents.
  uint64_t MetadataWildWrites = 0;
  /// Seal/unseal mprotect transitions (2 per collection when
  /// GcConfig::SealMetadata is on and mutation happened in between).
  uint64_t SealTransitions = 0;
  /// Nanoseconds spent inside seal/unseal mprotect calls (lifetime).
  uint64_t SealNanos = 0;
  /// The collector gave up on collection after a repeated mid-repair
  /// verification failure; collect() returns empty cycles and
  /// allocation degrades to fresh-page growth.
  bool DegradedMode = false;
};

/// Lifetime stop-the-world handshake timing and watchdog-escalation
/// counters, snapshotted from the mutator registry
/// (Collector::handshakeStats).  Mean time-to-stop is
/// TotalStopNanos / Handshakes.
struct GcHandshakeStats {
  /// Completed rendezvous (equals threaded collections).
  uint64_t Handshakes = 0;
  uint64_t MaxStopNanos = 0;
  uint64_t TotalStopNanos = 0;
  /// Threads preemptively suspended by the reserved signal (lifetime).
  uint64_t SignalSuspensions = 0;
  /// Suspend-signal re-sends beyond each thread's first (lifetime).
  uint64_t SignalSendRetries = 0;
  /// Handshakes that climbed to the warning rung (deadline/4).
  uint64_t WarnRungs = 0;
  /// Handshakes that climbed to the signal rung (deadline/2).
  uint64_t SignalRungs = 0;
  /// Handshakes that exhausted the full deadline.
  uint64_t HandshakeTimeouts = 0;
};

/// Lifetime totals across collections.
struct GcLifetimeStats {
  uint64_t Collections = 0;
  uint64_t TotalMarkNanos = 0;
  uint64_t TotalSweepNanos = 0;
  uint64_t TotalBlacklistNanos = 0;
  uint64_t TotalBytesSweptFree = 0;
  uint64_t TotalNearMisses = 0;
  /// Per-pipeline-phase lifetime totals (indexed by GcPhase).
  uint64_t TotalPhaseNanos[NumGcPhases] = {};
  /// Lifetime heap-word scan mix (indexed by DescriptorClass).
  uint64_t TotalScanWordsByClass[NumDescriptorClasses] = {};
  uint64_t TotalScanCandidatesByClass[NumDescriptorClasses] = {};

  void accumulate(const CollectionStats &Cycle) {
    ++Collections;
    TotalMarkNanos += Cycle.MarkNanos;
    TotalSweepNanos += Cycle.SweepNanos;
    TotalBlacklistNanos += Cycle.BlacklistNanos;
    TotalBytesSweptFree += Cycle.BytesSweptFree;
    TotalNearMisses += Cycle.NearMisses;
    for (unsigned I = 0; I != NumGcPhases; ++I)
      TotalPhaseNanos[I] += Cycle.PhaseNanos[I];
    for (unsigned I = 0; I != NumDescriptorClasses; ++I) {
      TotalScanWordsByClass[I] += Cycle.ScanWordsByClass[I];
      TotalScanCandidatesByClass[I] += Cycle.ScanCandidatesByClass[I];
    }
  }
};

} // namespace cgc

#endif // CGC_CORE_GCSTATS_H
