//===- interp/Value.h - Lisp values on the collector -----------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Values for the small Lisp that ships with the collector.  The paper
/// lists "portable implementations of Scheme, ML, Common Lisp, Mesa,
/// and CLU" as the flagship clients of conservative collection: a
/// language runtime that compiles to C and lets the collector find its
/// roots on the C stack.  This module is that client, in miniature.
///
/// A Value is a 16-byte tagged record.  Heap cells (pairs, closures)
/// are cgc objects holding Values; the collector scans them
/// conservatively and finds the Object pointers at word offsets, with
/// no cooperation from the interpreter — no shadow stack, no root
/// registration per temporary.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_INTERP_VALUE_H
#define CGC_INTERP_VALUE_H

#include <cstdint>

namespace cgc::interp {

class Interpreter;
struct Obj;

enum class Tag : uint64_t {
  Nil,
  Fixnum,
  Boolean,
  Symbol, ///< Payload: index into the interpreter's symbol table.
  Pair,
  Closure,
  Builtin,
};

/// Builtins receive the interpreter and their evaluated argument list.
using BuiltinFn = struct Value (*)(Interpreter &, struct Value Args);

struct Value {
  Tag Kind = Tag::Nil;
  union {
    int64_t Fixnum;
    bool Boolean;
    uint64_t Symbol;
    Obj *Object;
    BuiltinFn Builtin;
  };

  Value() : Fixnum(0) {}

  static Value nil() { return Value(); }
  static Value fixnum(int64_t N) {
    Value V;
    V.Kind = Tag::Fixnum;
    V.Fixnum = N;
    return V;
  }
  static Value boolean(bool B) {
    Value V;
    V.Kind = Tag::Boolean;
    V.Boolean = B;
    return V;
  }
  static Value symbol(uint64_t Index) {
    Value V;
    V.Kind = Tag::Symbol;
    V.Symbol = Index;
    return V;
  }
  static Value object(Tag Kind, Obj *O) {
    Value V;
    V.Kind = Kind;
    V.Object = O;
    return V;
  }
  static Value builtin(BuiltinFn Fn) {
    Value V;
    V.Kind = Tag::Builtin;
    V.Builtin = Fn;
    return V;
  }

  bool isNil() const { return Kind == Tag::Nil; }
  bool isPair() const { return Kind == Tag::Pair; }
  bool isFixnum() const { return Kind == Tag::Fixnum; }
  bool isSymbol() const { return Kind == Tag::Symbol; }
  bool isCallable() const {
    return Kind == Tag::Closure || Kind == Tag::Builtin;
  }
  /// Scheme truthiness: everything but #f.
  bool truthy() const { return !(Kind == Tag::Boolean && !Boolean); }
};

/// Heap cell: pair (Slots[0]=car, Slots[1]=cdr) or closure
/// (Slots[0]=params, Slots[1]=body, Slots[2]=captured env), selected by
/// the referencing Value's tag.
struct Obj {
  Value Slots[3];
};

} // namespace cgc::interp

#endif // CGC_INTERP_VALUE_H
