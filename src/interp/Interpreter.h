//===- interp/Interpreter.h - A small Lisp on the collector ----*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small Scheme-flavored interpreter whose entire runtime heap —
/// pairs, closures, environments — lives on a cgc::Collector, in the
/// style of the Scheme->C and ML->C systems the paper cites.  The only
/// registered root is the global environment; every interpreter
/// temporary is kept alive by conservative machine-stack scanning (or
/// by whatever roots the embedder provides).
///
/// Supported: fixnums, booleans, symbols, pairs; special forms quote,
/// if, cond, lambda, define, set!, begin, let, and, or; proper lexical
/// closures with recursion through the live global environment.
/// Errors set a flag and message rather than unwinding (the library
/// builds without exceptions).
///
//===----------------------------------------------------------------------===//

#ifndef CGC_INTERP_INTERPRETER_H
#define CGC_INTERP_INTERPRETER_H

#include "core/Collector.h"
#include "interp/Value.h"
#include <string>
#include <string_view>
#include <vector>

namespace cgc::interp {

class Interpreter {
public:
  /// Binds the interpreter to \p GC and installs the standard builtins
  /// (+ - * quotient remainder < > <= >= = eq? cons car cdr null?
  /// pair? not list length append).
  explicit Interpreter(Collector &GC);
  ~Interpreter();

  Interpreter(const Interpreter &) = delete;
  Interpreter &operator=(const Interpreter &) = delete;

  //===--------------------------------------------------------------===//
  // Running programs
  //===--------------------------------------------------------------===//

  /// Reads and evaluates every form in \p Program; \returns the last
  /// result (nil for an empty program or on error — check failed()).
  Value evalString(std::string_view Program);

  /// Evaluates one already-read expression in the global environment.
  Value eval(Value Expr);

  //===--------------------------------------------------------------===//
  // Reader and printer
  //===--------------------------------------------------------------===//

  /// Reads one datum from \p Text starting at \p Cursor (updated).
  /// \returns nil and sets the error flag on malformed input.
  Value read(std::string_view Text, size_t &Cursor);

  /// Renders a value as an s-expression.
  std::string toString(Value V) const;

  //===--------------------------------------------------------------===//
  // Environment and builtins
  //===--------------------------------------------------------------===//

  /// Binds \p Name to \p Bound in the global environment.
  void defineGlobal(const char *Name, Value Bound);
  void defineBuiltin(const char *Name, BuiltinFn Fn) {
    defineGlobal(Name, Value::builtin(Fn));
  }

  /// \returns the global binding of \p Name, or nil if absent.
  Value globalValue(const char *Name);

  //===--------------------------------------------------------------===//
  // Construction helpers (for builtins and embedders)
  //===--------------------------------------------------------------===//

  Value cons(Value Car, Value Cdr);
  static Value car(Value V) {
    return V.isPair() ? V.Object->Slots[0] : Value::nil();
  }
  static Value cdr(Value V) {
    return V.isPair() ? V.Object->Slots[1] : Value::nil();
  }
  Value symbol(std::string_view Name);
  const std::string &symbolName(uint64_t Index) const {
    return Symbols[Index];
  }

  /// Builds a proper list from \p Items.
  Value list(const std::vector<Value> &Items);

  //===--------------------------------------------------------------===//
  // Errors and introspection
  //===--------------------------------------------------------------===//

  bool failed() const { return Failed; }
  const std::string &errorMessage() const { return ErrorMessage; }
  void clearError() {
    Failed = false;
    ErrorMessage.clear();
  }
  /// Reports an error (used by builtins); evaluation returns nil.
  Value fail(std::string Message);

  Collector &collector() { return GC; }
  size_t symbolCount() const { return Symbols.size(); }

private:
  Value evalIn(Value Expr, Value Env);
  Value evalSequence(Value Body, Value Env);
  Value evalArgs(Value Exprs, Value Env);
  Value apply(Value Fn, Value Args);
  Value envBind(Value Env, Value Name, Value Bound);
  Value *envLookup(Value Env, uint64_t Symbol);
  Value globalEnv() const;
  Value makeClosure(Value Params, Value Body, Value Env);
  void installBuiltins();

  Collector &GC;
  /// Descriptor for Obj: each Value is {Tag word, payload word}, and
  /// only the payload words (1, 3, 5) can hold heap pointers.  The Tag
  /// words and any integer payloads are never traced, so a fixnum that
  /// happens to look like a heap address cannot retain (or blacklist)
  /// anything.
  LayoutId ObjLayout = 0;
  std::vector<std::string> Symbols;
  /// The global environment's pair pointer, registered as a root.
  uint64_t GlobalEnvRoot = 0;
  RootId GlobalRootId = 0;
  bool Failed = false;
  std::string ErrorMessage;

  // Interned special-form symbols, resolved once.
  uint64_t SymQuote, SymIf, SymLambda, SymDefine, SymBegin, SymLet,
      SymAnd, SymOr, SymCond, SymElse, SymSet;
};

} // namespace cgc::interp

#endif // CGC_INTERP_INTERPRETER_H
