//===- interp/Interpreter.cpp - A small Lisp on the collector -------------===//

#include "interp/Interpreter.h"
#include <cctype>
#include <cstdlib>

using namespace cgc;
using namespace cgc::interp;

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

Interpreter::Interpreter(Collector &GC) : GC(GC) {
  static_assert(sizeof(Obj) == 6 * sizeof(uint64_t),
                "Obj layout bitmap below assumes three two-word Values");
  ObjLayout = GC.registerObjectLayout(
      {false, true, false, true, false, true}, sizeof(Obj));
  GlobalRootId = GC.addRootRange(&GlobalEnvRoot, &GlobalEnvRoot + 1,
                                 RootEncoding::Native64,
                                 RootSource::StaticData,
                                 "lisp-global-environment");
  SymQuote = symbol("quote").Symbol;
  SymIf = symbol("if").Symbol;
  SymLambda = symbol("lambda").Symbol;
  SymDefine = symbol("define").Symbol;
  SymBegin = symbol("begin").Symbol;
  SymLet = symbol("let").Symbol;
  SymAnd = symbol("and").Symbol;
  SymOr = symbol("or").Symbol;
  SymCond = symbol("cond").Symbol;
  SymElse = symbol("else").Symbol;
  SymSet = symbol("set!").Symbol;
  installBuiltins();
}

Interpreter::~Interpreter() { GC.removeRootRange(GlobalRootId); }

Value Interpreter::fail(std::string Message) {
  if (!Failed) { // Keep the first, most precise message.
    Failed = true;
    ErrorMessage = std::move(Message);
  }
  return Value::nil();
}

//===----------------------------------------------------------------------===//
// Heap constructors
//===----------------------------------------------------------------------===//

Value Interpreter::cons(Value Car, Value Cdr) {
  auto *O = static_cast<Obj *>(GC.allocateTyped(ObjLayout));
  if (!O)
    return fail("out of memory");
  O->Slots[0] = Car;
  O->Slots[1] = Cdr;
  return Value::object(Tag::Pair, O);
}

Value Interpreter::makeClosure(Value Params, Value Body, Value Env) {
  auto *O = static_cast<Obj *>(GC.allocateTyped(ObjLayout));
  if (!O)
    return fail("out of memory");
  O->Slots[0] = Params;
  O->Slots[1] = Body;
  O->Slots[2] = Env;
  return Value::object(Tag::Closure, O);
}

Value Interpreter::symbol(std::string_view Name) {
  for (uint64_t I = 0; I != Symbols.size(); ++I)
    if (Symbols[I] == Name)
      return Value::symbol(I);
  Symbols.emplace_back(Name);
  return Value::symbol(Symbols.size() - 1);
}

Value Interpreter::list(const std::vector<Value> &Items) {
  Value Result = Value::nil();
  for (size_t I = Items.size(); I-- > 0;)
    Result = cons(Items[I], Result);
  return Result;
}

//===----------------------------------------------------------------------===//
// Environments: association lists of (symbol . value) pairs
//===----------------------------------------------------------------------===//

Value Interpreter::envBind(Value Env, Value Name, Value Bound) {
  return cons(cons(Name, Bound), Env);
}

Value *Interpreter::envLookup(Value Env, uint64_t Symbol) {
  for (Value E = Env; E.isPair(); E = cdr(E)) {
    Value Binding = car(E);
    if (car(Binding).isSymbol() && car(Binding).Symbol == Symbol)
      return &Binding.Object->Slots[1];
  }
  return nullptr;
}

Value Interpreter::globalEnv() const {
  if (GlobalEnvRoot == 0)
    return Value::nil();
  return Value::object(Tag::Pair,
                       reinterpret_cast<Obj *>(GlobalEnvRoot));
}

void Interpreter::defineGlobal(const char *Name, Value Bound) {
  Value NewGlobal = envBind(globalEnv(), symbol(Name), Bound);
  GlobalEnvRoot = reinterpret_cast<uint64_t>(NewGlobal.Object);
}

Value Interpreter::globalValue(const char *Name) {
  Value Sym = symbol(Name);
  if (Value *Slot = envLookup(globalEnv(), Sym.Symbol))
    return *Slot;
  return Value::nil();
}

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

namespace {

void skipSpace(std::string_view Text, size_t &Cursor) {
  while (Cursor < Text.size()) {
    char C = Text[Cursor];
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++Cursor;
    } else if (C == ';') {
      while (Cursor < Text.size() && Text[Cursor] != '\n')
        ++Cursor;
    } else {
      return;
    }
  }
}

bool isDelimiter(char C) {
  return std::isspace(static_cast<unsigned char>(C)) || C == '(' ||
         C == ')' || C == ';';
}

} // namespace

Value Interpreter::read(std::string_view Text, size_t &Cursor) {
  skipSpace(Text, Cursor);
  if (Cursor >= Text.size())
    return fail("unexpected end of input");
  char C = Text[Cursor];

  if (C == '\'') {
    ++Cursor;
    Value Quoted = read(Text, Cursor);
    return cons(Value::symbol(SymQuote), cons(Quoted, Value::nil()));
  }

  if (C == '(') {
    ++Cursor;
    std::vector<Value> Items;
    while (true) {
      skipSpace(Text, Cursor);
      if (Cursor >= Text.size())
        return fail("unterminated list");
      if (Text[Cursor] == ')') {
        ++Cursor;
        return list(Items);
      }
      Items.push_back(read(Text, Cursor));
      if (Failed)
        return Value::nil();
    }
  }

  if (C == ')') {
    ++Cursor;
    return fail("unexpected ')'");
  }

  // Atom.
  size_t Start = Cursor;
  while (Cursor < Text.size() && !isDelimiter(Text[Cursor]))
    ++Cursor;
  std::string_view Token = Text.substr(Start, Cursor - Start);
  if (Token == "#t")
    return Value::boolean(true);
  if (Token == "#f")
    return Value::boolean(false);
  // Fixnum?
  std::string Buffer(Token);
  char *End = nullptr;
  long long N = std::strtoll(Buffer.c_str(), &End, 10);
  if (End && *End == 0 && End != Buffer.c_str())
    return Value::fixnum(N);
  return symbol(Token);
}

//===----------------------------------------------------------------------===//
// Printer
//===----------------------------------------------------------------------===//

std::string Interpreter::toString(Value V) const {
  switch (V.Kind) {
  case Tag::Nil:
    return "()";
  case Tag::Fixnum:
    return std::to_string(V.Fixnum);
  case Tag::Boolean:
    return V.Boolean ? "#t" : "#f";
  case Tag::Symbol:
    return Symbols[V.Symbol];
  case Tag::Closure:
    return "#<closure>";
  case Tag::Builtin:
    return "#<builtin>";
  case Tag::Pair: {
    std::string Text = "(";
    Value P = V;
    bool First = true;
    while (P.isPair()) {
      if (!First)
        Text += ' ';
      First = false;
      Text += toString(car(P));
      P = cdr(P);
    }
    if (!P.isNil()) {
      Text += " . ";
      Text += toString(P);
    }
    Text += ')';
    return Text;
  }
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Evaluator
//===----------------------------------------------------------------------===//

Value Interpreter::evalString(std::string_view Program) {
  size_t Cursor = 0;
  Value Result = Value::nil();
  while (!Failed) {
    skipSpace(Program, Cursor);
    if (Cursor >= Program.size())
      break;
    Value Expr = read(Program, Cursor);
    if (Failed)
      break;
    Result = eval(Expr);
  }
  return Failed ? Value::nil() : Result;
}

Value Interpreter::eval(Value Expr) { return evalIn(Expr, globalEnv()); }

Value Interpreter::evalSequence(Value Body, Value Env) {
  Value Result = Value::nil();
  for (Value B = Body; B.isPair() && !Failed; B = cdr(B))
    Result = evalIn(car(B), Env);
  return Result;
}

Value Interpreter::evalArgs(Value Exprs, Value Env) {
  if (!Exprs.isPair() || Failed)
    return Value::nil();
  Value Head = evalIn(car(Exprs), Env);
  return cons(Head, evalArgs(cdr(Exprs), Env));
}

Value Interpreter::apply(Value Fn, Value Args) {
  if (Fn.Kind == Tag::Builtin)
    return Fn.Builtin(*this, Args);
  if (Fn.Kind != Tag::Closure)
    return fail("application of a non-function");
  Value Params = Fn.Object->Slots[0];
  Value Body = Fn.Object->Slots[1];
  Value Env = Fn.Object->Slots[2];
  for (; Params.isPair(); Params = cdr(Params), Args = cdr(Args)) {
    if (!Args.isPair())
      return fail("too few arguments to closure");
    Env = envBind(Env, car(Params), car(Args));
  }
  return evalSequence(Body, Env);
}

Value Interpreter::evalIn(Value Expr, Value Env) {
  if (Failed)
    return Value::nil();
  switch (Expr.Kind) {
  case Tag::Nil:
  case Tag::Fixnum:
  case Tag::Boolean:
  case Tag::Closure:
  case Tag::Builtin:
    return Expr;
  case Tag::Symbol: {
    if (Value *Slot = envLookup(Env, Expr.Symbol))
      return *Slot;
    // Fall back to the live global environment so recursive and
    // forward-referenced top-level definitions resolve.
    if (Value *Slot = envLookup(globalEnv(), Expr.Symbol))
      return *Slot;
    return fail("unbound symbol '" + Symbols[Expr.Symbol] + "'");
  }
  case Tag::Pair:
    break;
  }

  Value Head = car(Expr);
  if (Head.isSymbol()) {
    uint64_t S = Head.Symbol;
    if (S == SymQuote)
      return car(cdr(Expr));
    if (S == SymIf) {
      Value Test = evalIn(car(cdr(Expr)), Env);
      if (Failed)
        return Value::nil();
      return Test.truthy() ? evalIn(car(cdr(cdr(Expr))), Env)
                           : evalIn(car(cdr(cdr(cdr(Expr)))), Env);
    }
    if (S == SymLambda)
      return makeClosure(car(cdr(Expr)), cdr(cdr(Expr)), Env);
    if (S == SymDefine) {
      Value Name = car(cdr(Expr));
      if (!Name.isSymbol())
        return fail("define requires a symbol name");
      Value Bound = evalIn(car(cdr(cdr(Expr))), Env);
      if (Failed)
        return Value::nil();
      Value NewGlobal = envBind(globalEnv(), Name, Bound);
      GlobalEnvRoot = reinterpret_cast<uint64_t>(NewGlobal.Object);
      return Bound;
    }
    if (S == SymBegin)
      return evalSequence(cdr(Expr), Env);
    if (S == SymLet) {
      // (let ((name expr)...) body...)
      Value NewEnv = Env;
      for (Value B = car(cdr(Expr)); B.isPair() && !Failed; B = cdr(B)) {
        Value Binding = car(B);
        Value Bound = evalIn(car(cdr(Binding)), Env);
        NewEnv = envBind(NewEnv, car(Binding), Bound);
      }
      return evalSequence(cdr(cdr(Expr)), NewEnv);
    }
    if (S == SymAnd) {
      Value Result = Value::boolean(true);
      for (Value B = cdr(Expr); B.isPair() && !Failed; B = cdr(B)) {
        Result = evalIn(car(B), Env);
        if (!Result.truthy())
          return Result;
      }
      return Result;
    }
    if (S == SymOr) {
      Value Result = Value::boolean(false);
      for (Value B = cdr(Expr); B.isPair() && !Failed; B = cdr(B)) {
        Result = evalIn(car(B), Env);
        if (Result.truthy())
          return Result;
      }
      return Result;
    }
    if (S == SymCond) {
      // (cond (test body...)... (else body...))
      for (Value C = cdr(Expr); C.isPair() && !Failed; C = cdr(C)) {
        Value Clause = car(C);
        Value Test = car(Clause);
        bool IsElse = Test.isSymbol() && Test.Symbol == SymElse;
        if (IsElse || evalIn(Test, Env).truthy())
          return evalSequence(cdr(Clause), Env);
      }
      return Value::nil();
    }
    if (S == SymSet) {
      Value Name = car(cdr(Expr));
      if (!Name.isSymbol())
        return fail("set! requires a symbol name");
      Value Bound = evalIn(car(cdr(cdr(Expr))), Env);
      if (Failed)
        return Value::nil();
      // Mutate the nearest binding: lexical first, then global.
      if (Value *Slot = envLookup(Env, Name.Symbol)) {
        *Slot = Bound;
        return Bound;
      }
      if (Value *Slot = envLookup(globalEnv(), Name.Symbol)) {
        *Slot = Bound;
        return Bound;
      }
      return fail("set! of unbound symbol '" + Symbols[Name.Symbol] +
                  "'");
    }
  }

  Value Fn = evalIn(Head, Env);
  if (Failed)
    return Value::nil();
  Value Args = evalArgs(cdr(Expr), Env);
  if (Failed)
    return Value::nil();
  return apply(Fn, Args);
}
