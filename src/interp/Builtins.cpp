//===- interp/Builtins.cpp - Standard builtins ----------------------------===//

#include "interp/Interpreter.h"

using namespace cgc;
using namespace cgc::interp;

namespace {

int64_t asFixnum(Interpreter &In, Value V) {
  if (!V.isFixnum()) {
    In.fail("expected a number, got " + In.toString(V));
    return 0;
  }
  return V.Fixnum;
}

Value builtinAdd(Interpreter &In, Value Args) {
  int64_t Sum = 0;
  for (Value A = Args; A.isPair(); A = Interpreter::cdr(A))
    Sum += asFixnum(In, Interpreter::car(A));
  return Value::fixnum(Sum);
}

Value builtinSub(Interpreter &In, Value Args) {
  if (!Args.isPair())
    return In.fail("- requires at least one argument");
  int64_t Result = asFixnum(In, Interpreter::car(Args));
  Value Rest = Interpreter::cdr(Args);
  if (Rest.isNil())
    return Value::fixnum(-Result); // Unary negation.
  for (Value A = Rest; A.isPair(); A = Interpreter::cdr(A))
    Result -= asFixnum(In, Interpreter::car(A));
  return Value::fixnum(Result);
}

Value builtinMul(Interpreter &In, Value Args) {
  int64_t Product = 1;
  for (Value A = Args; A.isPair(); A = Interpreter::cdr(A))
    Product *= asFixnum(In, Interpreter::car(A));
  return Value::fixnum(Product);
}

Value builtinQuotient(Interpreter &In, Value Args) {
  int64_t A = asFixnum(In, Interpreter::car(Args));
  int64_t B = asFixnum(In, Interpreter::car(Interpreter::cdr(Args)));
  if (B == 0)
    return In.fail("division by zero");
  return Value::fixnum(A / B);
}

Value builtinRemainder(Interpreter &In, Value Args) {
  int64_t A = asFixnum(In, Interpreter::car(Args));
  int64_t B = asFixnum(In, Interpreter::car(Interpreter::cdr(Args)));
  if (B == 0)
    return In.fail("division by zero");
  return Value::fixnum(A % B);
}

template <typename CmpT>
Value compareChain(Interpreter &In, Value Args, CmpT Cmp) {
  if (!Args.isPair())
    return Value::boolean(true);
  int64_t Prev = asFixnum(In, Interpreter::car(Args));
  for (Value A = Interpreter::cdr(Args); A.isPair();
       A = Interpreter::cdr(A)) {
    int64_t Next = asFixnum(In, Interpreter::car(A));
    if (!Cmp(Prev, Next))
      return Value::boolean(false);
    Prev = Next;
  }
  return Value::boolean(true);
}

Value builtinLess(Interpreter &In, Value Args) {
  return compareChain(In, Args,
                      [](int64_t A, int64_t B) { return A < B; });
}
Value builtinGreater(Interpreter &In, Value Args) {
  return compareChain(In, Args,
                      [](int64_t A, int64_t B) { return A > B; });
}
Value builtinLessEq(Interpreter &In, Value Args) {
  return compareChain(In, Args,
                      [](int64_t A, int64_t B) { return A <= B; });
}
Value builtinGreaterEq(Interpreter &In, Value Args) {
  return compareChain(In, Args,
                      [](int64_t A, int64_t B) { return A >= B; });
}
Value builtinNumEq(Interpreter &In, Value Args) {
  return compareChain(In, Args,
                      [](int64_t A, int64_t B) { return A == B; });
}

Value builtinEq(Interpreter &, Value Args) {
  Value A = Interpreter::car(Args);
  Value B = Interpreter::car(Interpreter::cdr(Args));
  bool Same = A.Kind == B.Kind;
  if (Same) {
    switch (A.Kind) {
    case Tag::Nil:
      break;
    case Tag::Fixnum:
      Same = A.Fixnum == B.Fixnum;
      break;
    case Tag::Boolean:
      Same = A.Boolean == B.Boolean;
      break;
    case Tag::Symbol:
      Same = A.Symbol == B.Symbol;
      break;
    case Tag::Pair:
    case Tag::Closure:
      Same = A.Object == B.Object;
      break;
    case Tag::Builtin:
      Same = A.Builtin == B.Builtin;
      break;
    }
  }
  return Value::boolean(Same);
}

Value builtinCons(Interpreter &In, Value Args) {
  return In.cons(Interpreter::car(Args),
                 Interpreter::car(Interpreter::cdr(Args)));
}
Value builtinCar(Interpreter &In, Value Args) {
  Value P = Interpreter::car(Args);
  if (!P.isPair())
    return In.fail("car of a non-pair");
  return Interpreter::car(P);
}
Value builtinCdr(Interpreter &In, Value Args) {
  Value P = Interpreter::car(Args);
  if (!P.isPair())
    return In.fail("cdr of a non-pair");
  return Interpreter::cdr(P);
}
Value builtinIsNull(Interpreter &, Value Args) {
  return Value::boolean(Interpreter::car(Args).isNil());
}
Value builtinIsPair(Interpreter &, Value Args) {
  return Value::boolean(Interpreter::car(Args).isPair());
}
Value builtinNot(Interpreter &, Value Args) {
  return Value::boolean(!Interpreter::car(Args).truthy());
}

Value builtinList(Interpreter &, Value Args) { return Args; }

Value builtinLength(Interpreter &In, Value Args) {
  int64_t Count = 0;
  for (Value P = Interpreter::car(Args); P.isPair();
       P = Interpreter::cdr(P))
    ++Count;
  (void)In;
  return Value::fixnum(Count);
}

Value builtinAppend(Interpreter &In, Value Args) {
  // (append a b): copy a's spine, share b.
  Value A = Interpreter::car(Args);
  Value B = Interpreter::car(Interpreter::cdr(Args));
  std::vector<Value> Items;
  for (Value P = A; P.isPair(); P = Interpreter::cdr(P))
    Items.push_back(Interpreter::car(P));
  Value Result = B;
  for (size_t I = Items.size(); I-- > 0;)
    Result = In.cons(Items[I], Result);
  return Result;
}

} // namespace

void Interpreter::installBuiltins() {
  defineBuiltin("+", builtinAdd);
  defineBuiltin("-", builtinSub);
  defineBuiltin("*", builtinMul);
  defineBuiltin("quotient", builtinQuotient);
  defineBuiltin("remainder", builtinRemainder);
  defineBuiltin("<", builtinLess);
  defineBuiltin(">", builtinGreater);
  defineBuiltin("<=", builtinLessEq);
  defineBuiltin(">=", builtinGreaterEq);
  defineBuiltin("=", builtinNumEq);
  defineBuiltin("eq?", builtinEq);
  defineBuiltin("cons", builtinCons);
  defineBuiltin("car", builtinCar);
  defineBuiltin("cdr", builtinCdr);
  defineBuiltin("null?", builtinIsNull);
  defineBuiltin("pair?", builtinIsPair);
  defineBuiltin("not", builtinNot);
  defineBuiltin("list", builtinList);
  defineBuiltin("length", builtinLength);
  defineBuiltin("append", builtinAppend);
}
