//===- baseline/ExplicitHeap.cpp - malloc/free baseline -------------------===//

#include "baseline/ExplicitHeap.h"
#include "support/Assert.h"
#include "support/MathExtras.h"

using namespace cgc;
using namespace cgc::baseline;

ExplicitHeap::ExplicitHeap(uint64_t CapacityBytes, Policy P)
    : Arena(CapacityBytes), P(P) {
  // Offset 0 is reserved as the null sentinel for free-list links.
  Top = 16;
}

unsigned ExplicitHeap::binForSize(uint64_t Size) {
  unsigned Bin = log2Floor(Size);
  return Bin >= NumBins ? NumBins - 1 : Bin;
}

void ExplicitHeap::pushFree(uint64_t Offset) {
  unsigned Bin = binForSize(headerAt(Offset)->size());
  FreeLinks *Links = linksOf(Offset);
  if (P == Policy::LifoFit || Bins[Bin] == 0 || Bins[Bin] > Offset) {
    Links->NextOffset = Bins[Bin];
    Links->PrevOffset = 0;
    if (Bins[Bin] != 0)
      linksOf(Bins[Bin])->PrevOffset = Offset;
    Bins[Bin] = Offset;
    return;
  }
  // Address-ordered: walk to the insertion point.  This is the cost a
  // malloc pays for sorted free lists; a sweeping collector gets the
  // same order for free.
  uint64_t Prev = Bins[Bin];
  while (true) {
    ++Stats.FreeListSearchSteps;
    uint64_t Next = linksOf(Prev)->NextOffset;
    if (Next == 0 || Next > Offset)
      break;
    Prev = Next;
  }
  Links->NextOffset = linksOf(Prev)->NextOffset;
  Links->PrevOffset = Prev;
  if (Links->NextOffset != 0)
    linksOf(Links->NextOffset)->PrevOffset = Offset;
  linksOf(Prev)->NextOffset = Offset;
}

void ExplicitHeap::unlinkFree(uint64_t Offset) {
  FreeLinks *Links = linksOf(Offset);
  unsigned Bin = binForSize(headerAt(Offset)->size());
  if (Links->PrevOffset != 0)
    linksOf(Links->PrevOffset)->NextOffset = Links->NextOffset;
  else
    Bins[Bin] = Links->NextOffset;
  if (Links->NextOffset != 0)
    linksOf(Links->NextOffset)->PrevOffset = Links->PrevOffset;
}

uint64_t ExplicitHeap::takeFit(uint64_t Need) {
  for (unsigned Bin = binForSize(Need); Bin != NumBins; ++Bin) {
    for (uint64_t Block = Bins[Bin]; Block != 0;
         Block = linksOf(Block)->NextOffset) {
      ++Stats.FreeListSearchSteps;
      if (headerAt(Block)->size() >= Need) {
        unlinkFree(Block);
        return Block;
      }
    }
  }
  return 0;
}

void *ExplicitHeap::malloc(size_t Bytes) {
  ++Stats.MallocCalls;
  uint64_t Need = alignTo(Bytes, 16) + HeaderBytes;
  if (Need < MinBlockBytes)
    Need = MinBlockBytes;

  uint64_t Block = takeFit(Need);
  if (Block != 0) {
    Header *H = headerAt(Block);
    uint64_t BlockSize = H->size();
    // Split when the remainder can stand alone as a free block.
    if (BlockSize >= Need + MinBlockBytes) {
      ++Stats.Splits;
      uint64_t Remainder = Block + Need;
      H->set(Need, /*Used=*/true);
      Header *R = headerAt(Remainder);
      R->set(BlockSize - Need, /*Used=*/false);
      R->PrevSize = Need;
      uint64_t After = Remainder + R->size();
      if (After < Top)
        headerAt(After)->PrevSize = R->size();
      pushFree(Remainder);
    } else {
      H->set(BlockSize, /*Used=*/true);
    }
    Stats.BytesInUse += headerAt(Block)->size() - HeaderBytes;
    return reinterpret_cast<void *>(Arena.addressOf(Block + HeaderBytes));
  }

  // No fit: extend the wilderness.
  if (Top + Need > Arena.size())
    return nullptr;
  Block = Top;
  Header *H = headerAt(Block);
  H->set(Need, /*Used=*/true);
  // The block before the wilderness is whatever currently ends at Top.
  H->PrevSize = LastTopBlockSize;
  Top += Need;
  if (Top > Stats.FootprintBytes)
    Stats.FootprintBytes = Top;
  Stats.BytesInUse += Need - HeaderBytes;
  LastTopBlockSize = Need;
  return reinterpret_cast<void *>(Arena.addressOf(Block + HeaderBytes));
}

void ExplicitHeap::free(void *Ptr) {
  ++Stats.FreeCalls;
  uint64_t Offset =
      Arena.offsetOf(reinterpret_cast<Address>(Ptr)) - HeaderBytes;
  Header *H = headerAt(Offset);
  CGC_CHECK(H->inUse(), "double free or bad pointer");
  CGC_CHECK(Stats.BytesInUse >= H->size() - HeaderBytes,
            "accounting underflow");
  Stats.BytesInUse -= H->size() - HeaderBytes;
  uint64_t Size = H->size();

  // Coalesce with the following block.
  uint64_t Next = Offset + Size;
  if (Next < Top && !headerAt(Next)->inUse()) {
    ++Stats.Coalesces;
    unlinkFree(Next);
    Size += headerAt(Next)->size();
  }
  // Coalesce with the preceding block.
  if (H->PrevSize != 0) {
    uint64_t Prev = Offset - H->PrevSize;
    if (!headerAt(Prev)->inUse()) {
      ++Stats.Coalesces;
      unlinkFree(Prev);
      Size += H->PrevSize;
      Offset = Prev;
    }
  }

  Header *Merged = headerAt(Offset);
  uint64_t PrevSize = Merged->PrevSize;
  Merged->set(Size, /*Used=*/false);
  Merged->PrevSize = PrevSize;

  if (Offset + Size == Top) {
    // Give the block back to the wilderness.
    Top = Offset;
    LastTopBlockSize = PrevSize;
    return;
  }
  headerAt(Offset + Size)->PrevSize = Size;
  pushFree(Offset);
}

HeapVerifyReport ExplicitHeap::verify() const {
  HeapVerifyReport R;
  uint64_t Offset = 16;
  uint64_t PrevSize = 0;
  bool PrevFree = false;
  while (Offset < Top) {
    const Header *H = headerAt(Offset);
    if (H->size() < MinBlockBytes || H->size() % 16 != 0) {
      R.notef("block at offset %llu: bad size %llu",
              (unsigned long long)Offset, (unsigned long long)H->size());
      // The walk cannot step past a corrupt size reliably; stop here
      // rather than cascade one corruption into a flood of noise.
      return R;
    }
    if (H->PrevSize != PrevSize)
      R.notef("block at offset %llu: boundary tag says previous size "
              "%llu, walk says %llu",
              (unsigned long long)Offset, (unsigned long long)H->PrevSize,
              (unsigned long long)PrevSize);
    if (PrevFree && !H->inUse())
      R.notef("block at offset %llu: adjacent free blocks not coalesced",
              (unsigned long long)Offset);
    PrevFree = !H->inUse();
    PrevSize = H->size();
    Offset += H->size();
  }
  if (Offset != Top)
    R.notef("heap walk overshot the top: offset %llu, top %llu",
            (unsigned long long)Offset, (unsigned long long)Top);
  return R;
}

void ExplicitHeap::verifyHeap() const {
  HeapVerifyReport Report = verify();
  if (Report.clean())
    return;
  std::fprintf(stderr,
               "explicit heap verification failed (%zu issues):\n%s",
               Report.Issues.size(), Report.str().c_str());
  fatalError("explicit heap verification failed", __FILE__, __LINE__);
}
