//===- baseline/ExplicitHeap.h - malloc/free baseline ----------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An explicit-deallocation allocator in the style of a classic
/// boundary-tag malloc, built as the comparison baseline the paper's
/// conclusions discuss:
///
///   * "simply replacing explicit deallocation in a leak-free program
///     with conservative garbage collection is still likely to increase
///     memory consumption" — measured by bench_zorn_cost.
///   * "even a completely nonmoving conservative collector should gain
///     a slight advantage ... in that it is usually much less expensive
///     to keep free lists sorted by address" — the allocator offers a
///     LIFO policy (what malloc does cheaply) and an address-ordered
///     policy (expensive for malloc, cheap for a sweeping collector),
///     so the fragmentation effect can be isolated.
///   * footnote 3 compares the collector's 8-byte allocation time with
///     "malloc/free round-trip times".
///
/// Layout: 16-byte headers with size + in-use flag + previous-block
/// size (boundary tags), immediate coalescing, segregated power-of-two
/// bins, bump allocation from a reserved arena when no free block fits.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_BASELINE_EXPLICITHEAP_H
#define CGC_BASELINE_EXPLICITHEAP_H

#include "heap/HeapVerifier.h"
#include "heap/VirtualArena.h"
#include <cstddef>
#include <cstdint>

namespace cgc::baseline {

struct ExplicitHeapStats {
  uint64_t MallocCalls = 0;
  uint64_t FreeCalls = 0;
  uint64_t BytesInUse = 0;        ///< Payload bytes currently allocated.
  uint64_t FootprintBytes = 0;    ///< High-water mark of arena usage.
  uint64_t Splits = 0;
  uint64_t Coalesces = 0;
  uint64_t FreeListSearchSteps = 0;
};

class ExplicitHeap {
public:
  enum class Policy {
    /// Free blocks are pushed/popped LIFO within their bin: the cheap
    /// choice for malloc implementations.
    LifoFit,
    /// Free blocks are kept address-ordered within their bin: reduces
    /// fragmentation but costs a search on every free — "usually much
    /// less expensive" for a collector, which sorts during sweep.
    AddressOrderedFit,
  };

  explicit ExplicitHeap(uint64_t CapacityBytes,
                        Policy P = Policy::LifoFit);

  /// Allocates \p Bytes; nullptr when the arena is exhausted.
  void *malloc(size_t Bytes);

  /// Frees a pointer previously returned by malloc.
  void free(void *Ptr);

  const ExplicitHeapStats &stats() const { return Stats; }

  /// Fraction of the footprint not currently in use (payload bytes):
  /// external + internal fragmentation combined.
  double fragmentation() const {
    if (Stats.FootprintBytes == 0)
      return 0.0;
    return 1.0 - static_cast<double>(Stats.BytesInUse) /
                     static_cast<double>(Stats.FootprintBytes);
  }

  /// Walks the heap checking boundary-tag invariants, accumulating a
  /// diagnostic report in the same format as the GC heap's deep
  /// verifier (heap/HeapVerifier.h).  For tests.
  HeapVerifyReport verify() const;

  /// verify(), with the historical abort semantics: prints the full
  /// report and fatals on any inconsistency.
  void verifyHeap() const;

private:
  struct Header {
    uint64_t SizeAndFlags; ///< Block size (multiple of 16) | in-use bit.
    uint64_t PrevSize;     ///< Size of the block before this one (0 if
                           ///< first).
    static constexpr uint64_t InUseBit = 1;
    uint64_t size() const { return SizeAndFlags & ~InUseBit; }
    bool inUse() const { return SizeAndFlags & InUseBit; }
    void set(uint64_t Size, bool Used) {
      SizeAndFlags = Size | (Used ? InUseBit : 0);
    }
  };

  struct FreeLinks {
    uint64_t NextOffset; ///< Arena offset of the next free block, 0=end.
    uint64_t PrevOffset;
  };

  static constexpr uint64_t HeaderBytes = sizeof(Header);
  static constexpr uint64_t MinBlockBytes = 48; // header + links + pad.
  static constexpr unsigned NumBins = 48;

  Header *headerAt(uint64_t Offset) const {
    return reinterpret_cast<Header *>(Arena.addressOf(Offset));
  }
  FreeLinks *linksOf(uint64_t Offset) const {
    return reinterpret_cast<FreeLinks *>(
        Arena.addressOf(Offset + HeaderBytes));
  }
  static unsigned binForSize(uint64_t Size);

  void pushFree(uint64_t Offset);
  void unlinkFree(uint64_t Offset);
  /// Finds and unlinks a free block of at least \p Need bytes.
  uint64_t takeFit(uint64_t Need);
  uint64_t nextOffset(uint64_t Offset) const {
    return Offset + headerAt(Offset)->size();
  }

  VirtualArena Arena;
  Policy P;
  uint64_t Top = 0;            ///< Bump pointer (arena offset).
  uint64_t LastTopBlockSize = 0; ///< Size of the block ending at Top.
  uint64_t Bins[NumBins] = {}; ///< Head offset per bin, 0 = empty.
  ExplicitHeapStats Stats;
};

} // namespace cgc::baseline

#endif // CGC_BASELINE_EXPLICITHEAP_H
