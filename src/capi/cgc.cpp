//===- capi/cgc.cpp - C API for the cgc collector -------------------------===//

#include "capi/cgc.h"
#include "core/Collector.h"
#include <memory>

using namespace cgc;

namespace {

/// Bridges a C event callback onto the C++ observer interface.  The
/// collector dispatches by index with tombstoned removal, so a removed
/// adapter is never invoked again — but an observer may remove *itself*
/// from inside its own callback, so adapters stay alive until
/// cgc_destroy rather than being freed on removal.
class CEventObserver final : public GcObserver {
public:
  CEventObserver(cgc_gc_event_fn Fn, void *ClientData)
      : Fn(Fn), ClientData(ClientData) {}

  void onCollectionBegin(uint64_t Index, const char *) override {
    Fn(CGC_EVENT_COLLECTION_BEGIN, -1, Index, ClientData);
  }
  void onCollectionEnd(uint64_t Index, const CollectionStats &) override {
    Fn(CGC_EVENT_COLLECTION_END, -1, Index, ClientData);
  }
  void onPhaseBegin(GcPhase Phase) override {
    Fn(CGC_EVENT_PHASE_BEGIN, static_cast<int>(Phase), 0, ClientData);
  }
  void onPhaseEnd(GcPhase Phase, uint64_t Nanos,
                  const CollectionStats &) override {
    Fn(CGC_EVENT_PHASE_END, static_cast<int>(Phase), Nanos, ClientData);
  }

  GcObserverId RegistrationId = 0;

private:
  cgc_gc_event_fn Fn;
  void *ClientData;
};

} // namespace

/// The opaque handle is a thin wrapper so the C side never sees C++
/// types and the C++ side keeps full type safety.
struct cgc_collector {
  explicit cgc_collector(const GcConfig &Config) : GC(Config) {}
  Collector GC;
  std::vector<std::unique_ptr<CEventObserver>> Observers;
};

static GcConfig convertConfig(const cgc_config *C) {
  GcConfig Config;
  if (!C)
    return Config;
  if (C->window_bytes)
    Config.WindowBytes = C->window_bytes;
  if (C->max_heap_bytes)
    Config.MaxHeapBytes = C->max_heap_bytes;
  if (C->heap_base_offset) {
    Config.Placement = HeapPlacement::Custom;
    Config.CustomHeapBaseOffset = C->heap_base_offset;
  }
  switch (C->interior_policy) {
  case CGC_INTERIOR_BASE_ONLY:
    Config.Interior = InteriorPolicy::BaseOnly;
    break;
  case CGC_INTERIOR_FIRST_PAGE:
    Config.Interior = InteriorPolicy::FirstPage;
    break;
  default:
    Config.Interior = InteriorPolicy::All;
    break;
  }
  switch (C->blacklist_mode) {
  case CGC_BLACKLIST_OFF:
    Config.Blacklist = BlacklistMode::Off;
    break;
  case CGC_BLACKLIST_HASHED:
    Config.Blacklist = BlacklistMode::Hashed;
    break;
  default:
    Config.Blacklist = BlacklistMode::FlatBitmap;
    break;
  }
  Config.BlacklistAging = C->blacklist_aging != 0;
  Config.GcAtStartup = C->gc_at_startup != 0;
  Config.LazySweep = C->lazy_sweep != 0;
  if (C->root_scan_alignment == 1 || C->root_scan_alignment == 2 ||
      C->root_scan_alignment == 4 || C->root_scan_alignment == 8)
    Config.RootScanAlignment = C->root_scan_alignment;
  if (C->mark_threads)
    Config.MarkThreads = C->mark_threads;
  return Config;
}

extern "C" {

void cgc_config_init(cgc_config *Config) {
  if (!Config)
    return;
  GcConfig Defaults;
  Config->window_bytes = Defaults.WindowBytes;
  Config->max_heap_bytes = Defaults.MaxHeapBytes;
  Config->heap_base_offset = 0;
  Config->interior_policy = CGC_INTERIOR_ALL;
  Config->blacklist_mode = CGC_BLACKLIST_FLAT;
  Config->blacklist_aging = Defaults.BlacklistAging ? 1 : 0;
  Config->gc_at_startup = Defaults.GcAtStartup ? 1 : 0;
  Config->lazy_sweep = 0;
  Config->root_scan_alignment = Defaults.RootScanAlignment;
  Config->mark_threads = Defaults.MarkThreads;
  Config->all_interior_pointers_avoid_spans = 0;
}

cgc_collector *cgc_create(const cgc_config *Config) {
  return new cgc_collector(convertConfig(Config));
}

void cgc_destroy(cgc_collector *GC) { delete GC; }

void *cgc_malloc(cgc_collector *GC, size_t Bytes) {
  return GC->GC.allocate(Bytes, ObjectKind::Normal);
}

void *cgc_malloc_atomic(cgc_collector *GC, size_t Bytes) {
  return GC->GC.allocate(Bytes, ObjectKind::PointerFree);
}

void *cgc_malloc_uncollectable(cgc_collector *GC, size_t Bytes) {
  return GC->GC.allocate(Bytes, ObjectKind::Uncollectable);
}

void *cgc_malloc_ignore_off_page(cgc_collector *GC, size_t Bytes) {
  return GC->GC.allocateIgnoreOffPage(Bytes, ObjectKind::Normal);
}

void cgc_free(cgc_collector *GC, void *Ptr) {
  if (Ptr)
    GC->GC.deallocate(Ptr);
}

unsigned long long cgc_gcollect(cgc_collector *GC) {
  return GC->GC.collect("cgc_gcollect").BytesSweptFree;
}

void cgc_set_mark_threads(cgc_collector *GC, unsigned Threads) {
  GC->GC.setMarkThreads(Threads);
}

unsigned cgc_mark_threads(cgc_collector *GC) {
  return GC->GC.markThreads();
}

unsigned cgc_add_gc_observer(cgc_collector *GC, cgc_gc_event_fn Fn,
                             void *ClientData) {
  if (!Fn)
    return 0;
  auto Adapter = std::make_unique<CEventObserver>(Fn, ClientData);
  Adapter->RegistrationId = GC->GC.addObserver(Adapter.get());
  unsigned Handle = Adapter->RegistrationId;
  GC->Observers.push_back(std::move(Adapter));
  return Handle;
}

int cgc_remove_gc_observer(cgc_collector *GC, unsigned Handle) {
  for (auto &Adapter : GC->Observers)
    if (Adapter && Adapter->RegistrationId == Handle) {
      bool Removed = GC->GC.removeObserver(Handle);
      // The adapter object itself is retained until cgc_destroy; see
      // CEventObserver.
      return Removed ? 1 : 0;
    }
  return 0;
}

unsigned cgc_add_roots(cgc_collector *GC, const void *Lo,
                       const void *Hi) {
  return GC->GC.addRootRange(Lo, Hi, RootEncoding::Native64,
                             RootSource::StaticData, "c-api-roots");
}

int cgc_remove_roots(cgc_collector *GC, unsigned Handle) {
  return GC->GC.removeRootRange(Handle) ? 1 : 0;
}

void cgc_exclude_roots(cgc_collector *GC, const void *Lo,
                       const void *Hi) {
  GC->GC.addRootExclusion(Lo, Hi);
}

void cgc_enable_stack_scanning(cgc_collector *GC) {
  GC->GC.enableMachineStackScanning();
}

void cgc_register_displacement(cgc_collector *GC, unsigned Displacement) {
  GC->GC.registerDisplacement(Displacement);
}

int cgc_register_finalizer(cgc_collector *GC, void *Obj,
                           cgc_finalizer_fn Fn, void *ClientData) {
  if (!Obj || !Fn || !GC->GC.isAllocated(Obj))
    return 0;
  GC->GC.registerFinalizer(
      Obj, [Fn, ClientData](void *P) { Fn(P, ClientData); });
  return 1;
}

int cgc_unregister_finalizer(cgc_collector *GC, void *Obj) {
  return GC->GC.unregisterFinalizer(Obj) ? 1 : 0;
}

size_t cgc_run_finalizers(cgc_collector *GC) {
  return GC->GC.runFinalizers();
}

int cgc_is_heap_ptr(cgc_collector *GC, const void *Ptr) {
  return GC->GC.isHeapPointer(Ptr) ? 1 : 0;
}

void *cgc_base(cgc_collector *GC, const void *Ptr) {
  return GC->GC.objectBase(Ptr);
}

size_t cgc_size(cgc_collector *GC, const void *Ptr) {
  return GC->GC.objectSizeOf(Ptr);
}

unsigned long long cgc_heap_committed_bytes(cgc_collector *GC) {
  return GC->GC.committedHeapBytes();
}

unsigned long long cgc_live_bytes(cgc_collector *GC) {
  return GC->GC.allocatedBytes();
}

unsigned long long cgc_collection_count(cgc_collector *GC) {
  return GC->GC.lifetimeStats().Collections;
}

unsigned long long cgc_blacklisted_pages(cgc_collector *GC) {
  return GC->GC.blacklistedPageCount();
}

void cgc_dump(cgc_collector *GC) { GC->GC.printReport(stderr); }

} // extern "C"
