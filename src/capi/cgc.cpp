//===- capi/cgc.cpp - C API for the cgc collector -------------------------===//

#include "capi/cgc.h"
#include "capi/cgc_internal.h"
#include "core/Collector.h"
#include "core/GcIncident.h"
#include "core/GcSentinel.h"
#include "support/CrashReporter.h"
#include "support/FaultInjection.h"
#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>
#include <vector>

using namespace cgc;

namespace {

/// Bridges a C event callback onto the C++ observer interface.  The
/// collector dispatches by index with tombstoned removal, so a removed
/// adapter is never invoked again — but an observer may remove *itself*
/// from inside its own callback, so adapters stay alive until
/// cgc_destroy rather than being freed on removal.
class CEventObserver final : public GcObserver {
public:
  CEventObserver(cgc_gc_event_fn Fn, void *ClientData)
      : Fn(Fn), ClientData(ClientData) {}

  void onCollectionBegin(uint64_t Index, const char *) override {
    Fn(CGC_EVENT_COLLECTION_BEGIN, -1, Index, ClientData);
  }
  void onCollectionEnd(uint64_t Index, const CollectionStats &) override {
    Fn(CGC_EVENT_COLLECTION_END, -1, Index, ClientData);
  }
  void onPhaseBegin(GcPhase Phase) override {
    Fn(CGC_EVENT_PHASE_BEGIN, static_cast<int>(Phase), 0, ClientData);
  }
  void onPhaseEnd(GcPhase Phase, uint64_t Nanos,
                  const CollectionStats &) override {
    Fn(CGC_EVENT_PHASE_END, static_cast<int>(Phase), Nanos, ClientData);
  }

  GcObserverId RegistrationId = 0;

private:
  cgc_gc_event_fn Fn;
  void *ClientData;
};

/// Bridges the sentinel's onIncident onto the flat C callback.  Lives
/// in the handle; registered only while a callback is installed.
class CIncidentObserver final : public GcObserver {
public:
  void onIncident(const GcIncident &Incident) override {
    if (Fn)
      Fn(static_cast<int>(Incident.Cause), Incident.CollectionIndex,
         Incident.EscalationLevel, Incident.WindowGrowthBytes, ClientData);
  }

  cgc_incident_fn Fn = nullptr;
  void *ClientData = nullptr;
};

} // namespace

/// The opaque handle is a thin wrapper so the C side never sees C++
/// types and the C++ side keeps full type safety.
struct cgc_collector {
  explicit cgc_collector(const GcConfig &Config) : GC(Config) {}
  Collector GC;
  std::vector<std::unique_ptr<CEventObserver>> Observers;
  /// C-side OOM handler and warn proc; bridged through static
  /// trampolines (GcOomHandler's uint64_t signature need not match the
  /// C typedefs exactly, so the pointers are never cast across).
  cgc_oom_fn COomFn = nullptr;
  void *COomData = nullptr;
  cgc_warn_fn CWarnFn = nullptr;
  void *CWarnData = nullptr;
  /// C-side incident callback adapter; registered while Fn is set.
  CIncidentObserver IncidentObserver;
  GcObserverId IncidentObserverId = 0;
};

static SentinelPolicy convertSentinelPolicy(const cgc_sentinel_policy *C) {
  SentinelPolicy Policy;
  if (!C)
    return Policy;
  Policy.Enabled = C->enabled != 0;
  if (C->window_collections)
    Policy.WindowCollections = C->window_collections;
  if (C->growth_floor_bytes)
    Policy.GrowthFloorBytes = C->growth_floor_bytes;
  if (C->growth_slope_fraction > 0)
    Policy.GrowthSlopeFraction = C->growth_slope_fraction;
  Policy.MinGrowingDeltas = C->min_growing_deltas;
  if (C->escalation_cooldown)
    Policy.EscalationCooldown = C->escalation_cooldown;
  if (C->tighten_cycles)
    Policy.TightenCycles = C->tighten_cycles;
  if (C->calm_collections)
    Policy.CalmCollections = C->calm_collections;
  return Policy;
}

static GcConfig convertConfig(const cgc_config *C) {
  GcConfig Config;
  if (!C)
    return Config;
  if (C->window_bytes)
    Config.WindowBytes = C->window_bytes;
  if (C->max_heap_bytes)
    Config.MaxHeapBytes = C->max_heap_bytes;
  switch (C->heap_placement) {
  case CGC_PLACEMENT_LOW_SBRK:
    Config.Placement = HeapPlacement::LowSbrk;
    break;
  case CGC_PLACEMENT_ASCII_RANGE:
    Config.Placement = HeapPlacement::AsciiRange;
    break;
  case CGC_PLACEMENT_CUSTOM:
    Config.Placement = HeapPlacement::Custom;
    Config.CustomHeapBaseOffset = C->heap_base_offset;
    break;
  default:
    Config.Placement = HeapPlacement::HighBitsMixed;
    break;
  }
  // Pre-placement-enum clients set only heap_base_offset; honor it.
  if (C->heap_base_offset && Config.Placement != HeapPlacement::Custom) {
    Config.Placement = HeapPlacement::Custom;
    Config.CustomHeapBaseOffset = C->heap_base_offset;
  }
  if (C->heap_growth_pages)
    Config.HeapGrowthPages = C->heap_growth_pages;
  Config.DecommitFreedPages = C->decommit_freed_pages != 0;
  switch (C->interior_policy) {
  case CGC_INTERIOR_BASE_ONLY:
    Config.Interior = InteriorPolicy::BaseOnly;
    break;
  case CGC_INTERIOR_FIRST_PAGE:
    Config.Interior = InteriorPolicy::FirstPage;
    break;
  default:
    Config.Interior = InteriorPolicy::All;
    break;
  }
  switch (C->blacklist_mode) {
  case CGC_BLACKLIST_OFF:
    Config.Blacklist = BlacklistMode::Off;
    break;
  case CGC_BLACKLIST_HASHED:
    Config.Blacklist = BlacklistMode::Hashed;
    break;
  default:
    Config.Blacklist = BlacklistMode::FlatBitmap;
    break;
  }
  Config.BlacklistAging = C->blacklist_aging != 0;
  if (C->hashed_blacklist_bits_log2)
    Config.HashedBlacklistBitsLog2 = C->hashed_blacklist_bits_log2;
  Config.GcAtStartup = C->gc_at_startup != 0;
  Config.LazySweep = C->lazy_sweep != 0;
  if (C->root_scan_alignment == 1 || C->root_scan_alignment == 2 ||
      C->root_scan_alignment == 4 || C->root_scan_alignment == 8)
    Config.RootScanAlignment = C->root_scan_alignment;
  if (C->heap_scan_alignment == 1 || C->heap_scan_alignment == 2 ||
      C->heap_scan_alignment == 4 || C->heap_scan_alignment == 8)
    Config.HeapScanAlignment = C->heap_scan_alignment;
  if (C->mark_threads)
    Config.MarkThreads = C->mark_threads;
  if (C->sweep_threads)
    Config.SweepThreads = C->sweep_threads;
  if (C->root_scan_threads)
    Config.RootScanThreads = C->root_scan_threads;
  if (C->mutator_threads)
    Config.MutatorThreads = C->mutator_threads;
  if (C->thread_cache_slots)
    Config.ThreadCacheSlots = C->thread_cache_slots;
  Config.PreciseFreeSlotDetection = C->precise_free_slot_detection != 0;
  if (C->collect_before_growth_ratio > 0)
    Config.CollectBeforeGrowthRatio = C->collect_before_growth_ratio;
  if (C->min_heap_bytes_before_gc)
    Config.MinHeapBytesBeforeGc = C->min_heap_bytes_before_gc;
  Config.StackClearing = C->stack_clearing == CGC_STACK_CLEAR_CHEAP
                             ? StackClearMode::Cheap
                             : StackClearMode::Off;
  if (C->stack_clear_chunk_bytes)
    Config.StackClearChunkBytes = C->stack_clear_chunk_bytes;
  if (C->stack_clear_every_n_allocs)
    Config.StackClearEveryNAllocs = C->stack_clear_every_n_allocs;
  Config.AvoidTrailingZeroAddresses = C->avoid_trailing_zero_addresses != 0;
  Config.ClearFreedObjects = C->clear_freed_objects != 0;
  Config.AddressOrderedAllocation = C->address_ordered_allocation != 0;
  Config.VerifyEveryCollection = C->verify_every_collection != 0;
  Config.Sentinel = convertSentinelPolicy(&C->sentinel);
  Config.DebugGuards = C->debug_guards != 0;
  Config.GuardFatal = C->guard_fatal != 0;
  // Unlike most numeric fields, 0 is meaningful here (release freed
  // guarded objects immediately); cgc_config_init seeds the default.
  Config.QuarantineSlots = C->quarantine_slots;
  Config.HandshakeDeadlineMs = C->handshake_deadline_ms;
  Config.HandshakeFatal = C->handshake_fatal != 0;
  // 0 (default signal) and negative (rung disabled) are both
  // meaningful; copy verbatim.
  Config.SuspendSignal = C->suspend_signal;
  Config.SealMetadata = C->seal_metadata != 0;
  Config.RepairFatal = C->repair_fatal != 0;
  return Config;
}

extern "C" {

/// Fills a cgc_config from a GcConfig — the single source of truth for
/// both cgc_config_init (from a default GcConfig) and
/// cgc_current_config (from a live collector's GcConfig), so the C
/// mirror cannot drift from the C++ struct in one place but not the
/// other.
static void fillCConfig(cgc_config *Out, const GcConfig &In) {
  Out->window_bytes = In.WindowBytes;
  Out->max_heap_bytes = In.MaxHeapBytes;
  Out->heap_base_offset =
      In.Placement == HeapPlacement::Custom ? In.CustomHeapBaseOffset : 0;
  switch (In.Placement) {
  case HeapPlacement::LowSbrk:
    Out->heap_placement = CGC_PLACEMENT_LOW_SBRK;
    break;
  case HeapPlacement::HighBitsMixed:
    Out->heap_placement = CGC_PLACEMENT_HIGH_BITS_MIXED;
    break;
  case HeapPlacement::AsciiRange:
    Out->heap_placement = CGC_PLACEMENT_ASCII_RANGE;
    break;
  case HeapPlacement::Custom:
    Out->heap_placement = CGC_PLACEMENT_CUSTOM;
    break;
  }
  Out->heap_growth_pages = In.HeapGrowthPages;
  Out->decommit_freed_pages = In.DecommitFreedPages ? 1 : 0;
  switch (In.Interior) {
  case InteriorPolicy::BaseOnly:
    Out->interior_policy = CGC_INTERIOR_BASE_ONLY;
    break;
  case InteriorPolicy::FirstPage:
    Out->interior_policy = CGC_INTERIOR_FIRST_PAGE;
    break;
  case InteriorPolicy::All:
    Out->interior_policy = CGC_INTERIOR_ALL;
    break;
  }
  switch (In.Blacklist) {
  case BlacklistMode::Off:
    Out->blacklist_mode = CGC_BLACKLIST_OFF;
    break;
  case BlacklistMode::FlatBitmap:
    Out->blacklist_mode = CGC_BLACKLIST_FLAT;
    break;
  case BlacklistMode::Hashed:
    Out->blacklist_mode = CGC_BLACKLIST_HASHED;
    break;
  }
  Out->blacklist_aging = In.BlacklistAging ? 1 : 0;
  Out->hashed_blacklist_bits_log2 = In.HashedBlacklistBitsLog2;
  Out->gc_at_startup = In.GcAtStartup ? 1 : 0;
  Out->lazy_sweep = In.LazySweep ? 1 : 0;
  Out->root_scan_alignment = In.RootScanAlignment;
  Out->heap_scan_alignment = In.HeapScanAlignment;
  Out->mark_threads = In.MarkThreads;
  Out->sweep_threads = In.SweepThreads;
  Out->root_scan_threads = In.RootScanThreads;
  Out->mutator_threads = In.MutatorThreads;
  Out->thread_cache_slots = In.ThreadCacheSlots;
  Out->all_interior_pointers_avoid_spans = 0;
  Out->precise_free_slot_detection = In.PreciseFreeSlotDetection ? 1 : 0;
  Out->collect_before_growth_ratio = In.CollectBeforeGrowthRatio;
  Out->min_heap_bytes_before_gc = In.MinHeapBytesBeforeGc;
  Out->stack_clearing = In.StackClearing == StackClearMode::Cheap
                            ? CGC_STACK_CLEAR_CHEAP
                            : CGC_STACK_CLEAR_OFF;
  Out->stack_clear_chunk_bytes = In.StackClearChunkBytes;
  Out->stack_clear_every_n_allocs = In.StackClearEveryNAllocs;
  Out->avoid_trailing_zero_addresses =
      In.AvoidTrailingZeroAddresses ? 1 : 0;
  Out->clear_freed_objects = In.ClearFreedObjects ? 1 : 0;
  Out->address_ordered_allocation = In.AddressOrderedAllocation ? 1 : 0;
  Out->verify_every_collection = In.VerifyEveryCollection ? 1 : 0;
  Out->sentinel.enabled = In.Sentinel.Enabled ? 1 : 0;
  Out->sentinel.window_collections = In.Sentinel.WindowCollections;
  Out->sentinel.growth_floor_bytes = In.Sentinel.GrowthFloorBytes;
  Out->sentinel.growth_slope_fraction = In.Sentinel.GrowthSlopeFraction;
  Out->sentinel.min_growing_deltas = In.Sentinel.MinGrowingDeltas;
  Out->sentinel.escalation_cooldown = In.Sentinel.EscalationCooldown;
  Out->sentinel.tighten_cycles = In.Sentinel.TightenCycles;
  Out->sentinel.calm_collections = In.Sentinel.CalmCollections;
  Out->debug_guards = In.DebugGuards ? 1 : 0;
  Out->guard_fatal = In.GuardFatal ? 1 : 0;
  Out->quarantine_slots = In.QuarantineSlots;
  Out->handshake_deadline_ms = In.HandshakeDeadlineMs;
  Out->handshake_fatal = In.HandshakeFatal ? 1 : 0;
  Out->suspend_signal = In.SuspendSignal;
  Out->seal_metadata = In.SealMetadata ? 1 : 0;
  Out->repair_fatal = In.RepairFatal ? 1 : 0;
}

void cgc_config_init(cgc_config *Config) {
  if (!Config)
    return;
  fillCConfig(Config, GcConfig());
}

cgc_collector *cgc_create(const cgc_config *Config) {
  return new cgc_collector(convertConfig(Config));
}

void cgc_destroy(cgc_collector *GC) { delete GC; }

/// Every C allocation entry point funnels its result through here so
/// the errno contract is uniform: a NULL return always leaves
/// errno == ENOMEM, the way libc allocators do.  (Callers ported from
/// plain malloc check errno, and the redirect layer forwards these
/// returns straight to such callers.)
static void *finishAlloc(void *Ptr) {
  if (!Ptr)
    errno = ENOMEM;
  return Ptr;
}

void *cgc_malloc(cgc_collector *GC, size_t Bytes) {
  return finishAlloc(GC->GC.allocate(Bytes, ObjectKind::Normal));
}

void *cgc_malloc_atomic(cgc_collector *GC, size_t Bytes) {
  return finishAlloc(GC->GC.allocate(Bytes, ObjectKind::PointerFree));
}

void *cgc_malloc_uncollectable(cgc_collector *GC, size_t Bytes) {
  return finishAlloc(GC->GC.allocate(Bytes, ObjectKind::Uncollectable));
}

void *cgc_malloc_atomic_uncollectable(cgc_collector *GC, size_t Bytes) {
  return finishAlloc(
      GC->GC.allocate(Bytes, ObjectKind::PointerFreeUncollectable));
}

void *cgc_malloc_ignore_off_page(cgc_collector *GC, size_t Bytes) {
  return finishAlloc(GC->GC.allocateIgnoreOffPage(Bytes, ObjectKind::Normal));
}

unsigned cgc_register_descriptor(cgc_collector *GC,
                                 const unsigned char *PointerWords,
                                 size_t NumWords, size_t Bytes) {
  std::vector<bool> Words(NumWords);
  for (size_t I = 0; I != NumWords; ++I)
    Words[I] = PointerWords[I] != 0;
  return GC->GC.registerObjectLayout(Words, Bytes);
}

void *cgc_malloc_explicitly_typed(cgc_collector *GC, unsigned Descriptor) {
  return finishAlloc(GC->GC.allocateTyped(Descriptor));
}

// This file's definitions sit inside an extern "C" region; the bridge
// is a C++ symbol, so re-open C++ linkage for it.
extern "C++" {
namespace cgc {
namespace capi {
Collector &collectorOf(cgc_collector *Handle) { return Handle->GC; }
} // namespace capi
} // namespace cgc
}

void cgc_free(cgc_collector *GC, void *Ptr) {
  if (Ptr)
    GC->GC.deallocate(Ptr);
}

unsigned long long cgc_gcollect(cgc_collector *GC) {
  return GC->GC.collect("cgc_gcollect").BytesSweptFree;
}

void cgc_set_mark_threads(cgc_collector *GC, unsigned Threads) {
  GC->GC.setMarkThreads(Threads);
}

unsigned cgc_mark_threads(cgc_collector *GC) {
  return GC->GC.markThreads();
}

void cgc_set_sweep_threads(cgc_collector *GC, unsigned Threads) {
  GC->GC.setSweepThreads(Threads);
}

unsigned cgc_sweep_threads(cgc_collector *GC) {
  return GC->GC.sweepThreads();
}

void cgc_set_root_scan_threads(cgc_collector *GC, unsigned Threads) {
  GC->GC.setRootScanThreads(Threads);
}

unsigned cgc_root_scan_threads(cgc_collector *GC) {
  return GC->GC.rootScanThreads();
}

int cgc_register_thread(cgc_collector *GC) {
  return GC->GC.registerMutatorThread() ? 1 : 0;
}

void cgc_unregister_thread(cgc_collector *GC) {
  GC->GC.unregisterMutatorThread();
}

void cgc_safepoint(cgc_collector *GC) { GC->GC.safepoint(); }

void cgc_current_config(cgc_collector *GC, cgc_config *Out) {
  if (!Out)
    return;
  fillCConfig(Out, GC->GC.config());
}

/// Trampolines bridging the C++ handler signatures (uint64_t) onto the
/// C typedefs (size_t / unsigned long long) without casting function
/// pointers across signatures.
static void *oomTrampoline(uint64_t Bytes, void *UserData) {
  auto *Handle = static_cast<cgc_collector *>(UserData);
  return Handle->COomFn(static_cast<size_t>(Bytes), Handle->COomData);
}

static void warnTrampoline(const char *Message, uint64_t Value,
                           void *UserData) {
  auto *Handle = static_cast<cgc_collector *>(UserData);
  Handle->CWarnFn(Message, Value, Handle->CWarnData);
}

void cgc_set_oom_handler(cgc_collector *GC, cgc_oom_fn Fn,
                         void *ClientData) {
  GC->COomFn = Fn;
  GC->COomData = ClientData;
  GC->GC.setOomHandler(Fn ? oomTrampoline : nullptr, GC);
}

void cgc_set_warn_proc(cgc_collector *GC, cgc_warn_fn Fn,
                       void *ClientData) {
  GC->CWarnFn = Fn;
  GC->CWarnData = ClientData;
  GC->GC.setWarnProc(Fn ? warnTrampoline : nullptr, GC);
}

size_t cgc_verify_heap(cgc_collector *GC, char *Report,
                       size_t ReportBytes) {
  HeapVerifyReport Result = GC->GC.verifyHeapReport();
  if (Report && ReportBytes > 0) {
    std::string Text = Result.str();
    size_t Len = std::min(Text.size(), ReportBytes - 1);
    std::memcpy(Report, Text.data(), Len);
    Report[Len] = '\0';
  }
  return Result.Issues.size();
}

// The C mirrors must track the C++ enums value-for-value; a drift here
// would silently mistranslate every streamed finding.
static_assert(CGC_VERIFY_GENERIC ==
                  static_cast<int>(VerifyFindingKind::Generic) &&
              CGC_VERIFY_BLOCK_GEOMETRY ==
                  static_cast<int>(VerifyFindingKind::BlockGeometry) &&
              CGC_VERIFY_PAGE_MAP_STALE ==
                  static_cast<int>(VerifyFindingKind::PageMapStale) &&
              CGC_VERIFY_COUNTER_MISMATCH ==
                  static_cast<int>(VerifyFindingKind::CounterMismatch) &&
              CGC_VERIFY_FREE_LIST_BROKEN ==
                  static_cast<int>(VerifyFindingKind::FreeListBroken) &&
              CGC_VERIFY_FREE_RUN_BROKEN ==
                  static_cast<int>(VerifyFindingKind::FreeRunBroken) &&
              CGC_VERIFY_GUARD_SMASH ==
                  static_cast<int>(VerifyFindingKind::GuardSmash) &&
              CGC_VERIFY_ACCOUNTING ==
                  static_cast<int>(VerifyFindingKind::Accounting),
              "CGC_VERIFY_* drifted from VerifyFindingKind");
static_assert(CGC_REPAIR_NOT_ATTEMPTED ==
                  static_cast<int>(VerifyRepairOutcome::NotAttempted) &&
              CGC_REPAIR_REPAIRED ==
                  static_cast<int>(VerifyRepairOutcome::Repaired) &&
              CGC_REPAIR_QUARANTINED ==
                  static_cast<int>(VerifyRepairOutcome::Quarantined),
              "CGC_REPAIR_* drifted from VerifyRepairOutcome");
static_assert(CGC_INCIDENT_METADATA_WILD_WRITE ==
                      static_cast<int>(GcIncidentCause::MetadataWildWrite) &&
                  CGC_INCIDENT_FOREIGN_FREE ==
                      static_cast<int>(GcIncidentCause::ForeignFree),
              "incident cause drifted");
static_assert(CGC_FAULT_METADATA_HEADER_FLIP ==
                  static_cast<int>(FaultSite::MetadataHeaderFlip) &&
              CGC_FAULT_METADATA_FREE_LIST_SMASH ==
                  static_cast<int>(FaultSite::MetadataFreeListSmash) &&
              CGC_FAULT_METADATA_PAGE_MAP_CLOBBER ==
                  static_cast<int>(FaultSite::MetadataPageMapClobber) &&
              CGC_FAULT_METADATA_ALLOC_BIT_FLIP ==
                  static_cast<int>(FaultSite::MetadataAllocBitFlip),
              "CGC_FAULT_* drifted from FaultSite");

static void fillRepairStats(cgc_repair_stats *Out, const GcRepairStats &In) {
  Out->verify_repairs_run = In.VerifyRepairsRun;
  Out->findings_repaired = In.FindingsRepaired;
  Out->blocks_quarantined = In.BlocksQuarantined;
  Out->pages_quarantined = In.PagesQuarantined;
  Out->free_list_rebuilds = In.FreeListRebuilds;
  Out->page_map_rederivations = In.PageMapRederivations;
  Out->counters_resynced = In.CountersResynced;
  Out->collections_retried = In.CollectionsRetried;
  Out->metadata_wild_writes = In.MetadataWildWrites;
  Out->seal_transitions = In.SealTransitions;
  Out->seal_nanos = In.SealNanos;
  Out->degraded_mode = In.DegradedMode ? 1 : 0;
}

/// Streams one report's findings through the C callback.  The C struct
/// borrows each finding's message string, so the callback contract (the
/// pointer dies with the call) keeps this allocation-free per finding.
static void streamFindings(const HeapVerifyReport &Report,
                           cgc_verify_report_fn Fn, void *ClientData) {
  for (const VerifyFinding &F : Report.Findings) {
    cgc_verify_finding C;
    C.kind = static_cast<int>(F.Kind);
    C.message = F.Message.c_str();
    C.page = F.Page;
    C.block = F.Block;
    C.outcome = static_cast<int>(F.Outcome);
    Fn(&C, ClientData);
  }
}

size_t cgc_verify_heap_report(cgc_collector *GC, cgc_verify_report_fn Fn,
                              void *ClientData) {
  HeapVerifyReport Result = GC->GC.verifyHeapReport();
  if (Fn)
    streamFindings(Result, Fn, ClientData);
  return Result.Findings.size();
}

int cgc_verify_and_repair(cgc_collector *GC, cgc_verify_report_fn Fn,
                          void *ClientData, cgc_repair_stats *Out) {
  HeapVerifyReport Report = GC->GC.verifyAndRepair();
  if (Fn)
    streamFindings(Report, Fn, ClientData);
  if (Out)
    fillRepairStats(Out, GC->GC.repairStats());
  return (Report.clean() || Report.RepairedClean) ? 1 : 0;
}

void cgc_get_repair_stats(cgc_collector *GC, cgc_repair_stats *Out) {
  if (Out)
    fillRepairStats(Out, GC->GC.repairStats());
}

int cgc_fault_injection_available(void) {
  return FaultInjectionCompiled ? 1 : 0;
}

/// Maps a CGC_FAULT_* constant onto the C++ enum; returns false for
/// out-of-range sites so bad input is a no-op rather than UB.
static bool convertFaultSite(int Site, FaultSite &Out) {
  if (Site < 0 || static_cast<unsigned>(Site) >= NumFaultSites)
    return false;
  Out = static_cast<FaultSite>(Site);
  return true;
}

void cgc_fault_arm(int Site, unsigned long long SkipHits,
                   unsigned long long FailCount) {
  FaultSite S;
  if (convertFaultSite(Site, S))
    FaultInjector::instance().arm(S, SkipHits, FailCount);
}

void cgc_fault_arm_random(int Site, double Probability,
                          unsigned long long Seed) {
  FaultSite S;
  if (convertFaultSite(Site, S))
    FaultInjector::instance().armRandom(S, Probability, Seed);
}

void cgc_fault_disarm_all(void) { FaultInjector::instance().disarmAll(); }

unsigned long long cgc_fault_fired(int Site) {
  FaultSite S;
  if (!convertFaultSite(Site, S))
    return 0;
  return FaultInjector::instance().stats(S).Fired;
}

unsigned cgc_add_gc_observer(cgc_collector *GC, cgc_gc_event_fn Fn,
                             void *ClientData) {
  if (!Fn)
    return 0;
  auto Adapter = std::make_unique<CEventObserver>(Fn, ClientData);
  Adapter->RegistrationId = GC->GC.addObserver(Adapter.get());
  unsigned Handle = Adapter->RegistrationId;
  GC->Observers.push_back(std::move(Adapter));
  return Handle;
}

int cgc_remove_gc_observer(cgc_collector *GC, unsigned Handle) {
  for (auto &Adapter : GC->Observers)
    if (Adapter && Adapter->RegistrationId == Handle) {
      bool Removed = GC->GC.removeObserver(Handle);
      // The adapter object itself is retained until cgc_destroy; see
      // CEventObserver.
      return Removed ? 1 : 0;
    }
  return 0;
}

unsigned cgc_add_roots(cgc_collector *GC, const void *Lo,
                       const void *Hi) {
  return GC->GC.addRootRange(Lo, Hi, RootEncoding::Native64,
                             RootSource::StaticData, "c-api-roots");
}

int cgc_remove_roots(cgc_collector *GC, unsigned Handle) {
  return GC->GC.removeRootRange(Handle) ? 1 : 0;
}

void cgc_exclude_roots(cgc_collector *GC, const void *Lo,
                       const void *Hi) {
  GC->GC.addRootExclusion(Lo, Hi);
}

void cgc_enable_stack_scanning(cgc_collector *GC) {
  GC->GC.enableMachineStackScanning();
}

void cgc_register_displacement(cgc_collector *GC, unsigned Displacement) {
  GC->GC.registerDisplacement(Displacement);
}

int cgc_register_finalizer(cgc_collector *GC, void *Obj,
                           cgc_finalizer_fn Fn, void *ClientData) {
  if (!Obj || !Fn || !GC->GC.isAllocated(Obj))
    return 0;
  GC->GC.registerFinalizer(
      Obj, [Fn, ClientData](void *P) { Fn(P, ClientData); });
  return 1;
}

int cgc_unregister_finalizer(cgc_collector *GC, void *Obj) {
  return GC->GC.unregisterFinalizer(Obj) ? 1 : 0;
}

size_t cgc_run_finalizers(cgc_collector *GC) {
  return GC->GC.runFinalizers();
}

int cgc_is_heap_ptr(cgc_collector *GC, const void *Ptr) {
  return GC->GC.isHeapPointer(Ptr) ? 1 : 0;
}

void *cgc_base(cgc_collector *GC, const void *Ptr) {
  return GC->GC.objectBase(Ptr);
}

size_t cgc_size(cgc_collector *GC, const void *Ptr) {
  return GC->GC.objectSizeOf(Ptr);
}

unsigned long long cgc_heap_committed_bytes(cgc_collector *GC) {
  return GC->GC.committedHeapBytes();
}

unsigned long long cgc_live_bytes(cgc_collector *GC) {
  return GC->GC.allocatedBytes();
}

unsigned long long cgc_collection_count(cgc_collector *GC) {
  return GC->GC.lifetimeStats().Collections;
}

unsigned long long cgc_blacklisted_pages(cgc_collector *GC) {
  return GC->GC.blacklistedPageCount();
}

void cgc_dump(cgc_collector *GC) { GC->GC.printReport(stderr); }

void cgc_sentinel_policy_init(cgc_sentinel_policy *Policy) {
  if (!Policy)
    return;
  SentinelPolicy Defaults;
  Policy->enabled = Defaults.Enabled ? 1 : 0;
  Policy->window_collections = Defaults.WindowCollections;
  Policy->growth_floor_bytes = Defaults.GrowthFloorBytes;
  Policy->growth_slope_fraction = Defaults.GrowthSlopeFraction;
  Policy->min_growing_deltas = Defaults.MinGrowingDeltas;
  Policy->escalation_cooldown = Defaults.EscalationCooldown;
  Policy->tighten_cycles = Defaults.TightenCycles;
  Policy->calm_collections = Defaults.CalmCollections;
}

void cgc_sentinel_configure(cgc_collector *GC,
                            const cgc_sentinel_policy *Policy) {
  GC->GC.configureSentinel(convertSentinelPolicy(Policy));
}

int cgc_sentinel_get_stats(cgc_collector *GC, cgc_sentinel_stats *Out) {
  if (Out)
    std::memset(Out, 0, sizeof(*Out));
  GcSentinel *Sentinel = GC->GC.sentinel();
  if (!Sentinel)
    return 0;
  if (Out) {
    const GcSentinelStats &S = Sentinel->stats();
    Out->storms_detected = S.StormsDetected;
    Out->stack_clear_forces = S.StackClearForces;
    Out->blacklist_refreshes = S.BlacklistRefreshes;
    Out->interior_tightenings = S.InteriorTightenings;
    Out->incidents_raised = S.IncidentsRaised;
    Out->deescalations = S.Deescalations;
    Out->current_level = S.CurrentLevel;
  }
  return 1;
}

void cgc_set_incident_callback(cgc_collector *GC, cgc_incident_fn Fn,
                               void *ClientData) {
  GC->IncidentObserver.Fn = Fn;
  GC->IncidentObserver.ClientData = ClientData;
  if (Fn && GC->IncidentObserverId == 0) {
    GC->IncidentObserverId = GC->GC.addObserver(&GC->IncidentObserver);
  } else if (!Fn && GC->IncidentObserverId != 0) {
    GC->GC.removeObserver(GC->IncidentObserverId);
    GC->IncidentObserverId = 0;
  }
}

void *cgc_debug_malloc(cgc_collector *GC, size_t Bytes, const char *Site) {
  return finishAlloc(GC->GC.allocateTagged(Bytes, Site, ObjectKind::Normal));
}

void cgc_debug_flush_quarantine(cgc_collector *GC) {
  if (GC->GC.guards())
    GC->GC.flushQuarantine();
}

int cgc_debug_get_stats(cgc_collector *GC, cgc_guard_stats *Out) {
  if (Out)
    std::memset(Out, 0, sizeof(*Out));
  if (!GC->GC.guards())
    return 0;
  if (Out) {
    const GcGuardStats &S = GC->GC.guardStats();
    Out->guarded_allocations = S.GuardedAllocations;
    Out->guarded_frees = S.GuardedFrees;
    Out->quarantine_depth = S.QuarantineDepth;
    Out->quarantine_flushes = S.QuarantineFlushes;
    Out->header_smashes = S.HeaderSmashes;
    Out->redzone_smashes = S.RedzoneSmashes;
    Out->double_frees = S.DoubleFrees;
    Out->invalid_frees = S.InvalidFrees;
    Out->use_after_free_writes = S.UseAfterFreeWrites;
    Out->guard_slop_bytes = S.GuardSlopBytes;
    Out->leaked_objects = S.LeakedObjects;
    Out->leaked_bytes = S.LeakedBytes;
  }
  return 1;
}

unsigned long long cgc_debug_find_leaks(cgc_collector *GC, cgc_leak_fn Fn,
                                        void *User) {
  if (!GC->GC.guards())
    return 0;
  GcLeakReport Report = GC->GC.findLeaks();
  if (Fn)
    for (const GcLeakSite &Site : Report.Sites)
      Fn(Site.Site, Site.Objects, Site.Bytes, Site.FirstSeqno, User);
  return Report.TotalObjects;
}

void cgc_install_crash_reporter(void) { crash::install(); }

void cgc_dump_crash_report(int Fd) { crash::dump(Fd); }

} // extern "C"
