//===- capi/cgc_internal.h - C-handle bridge for in-tree code --*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In-tree-only bridge from the opaque C handle to the C++ Collector.
/// The redirect layer drives the collector through the public C API
/// for everything clients could do themselves, but incident raising
/// and other introspection need the C++ object.  NOT installed; the
/// cgc_collector layout stays private to capi/cgc.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_CAPI_CGC_INTERNAL_H
#define CGC_CAPI_CGC_INTERNAL_H

typedef struct cgc_collector cgc_collector;

namespace cgc {

class Collector;

namespace capi {

/// The Collector inside a C handle (defined in cgc.cpp, the only
/// translation unit that knows the handle layout).
Collector &collectorOf(cgc_collector *Handle);

} // namespace capi
} // namespace cgc

#endif // CGC_CAPI_CGC_INTERNAL_H
