/*===- capi/cgc.h - C API for the cgc collector ----------------*- C -*-===*
 *
 * Part of the cgc project: a reproduction of Boehm, "Space Efficient
 * Conservative Garbage Collection", PLDI 1993.
 *
 *===--------------------------------------------------------------------===*
 *
 * A C interface in the shape of the era's collectors (the paper's
 * collector was a C library; this API mirrors its descendants'
 * GC_malloc family).  Every function takes an explicit collector
 * handle — unlike the originals there is no hidden global, so several
 * independently configured collectors can coexist in one process.
 *
 * Minimal use:
 *
 *   cgc_config Config;
 *   cgc_config_init(&Config);
 *   cgc_collector *GC = cgc_create(&Config);
 *   cgc_enable_stack_scanning(GC);
 *   int **P = cgc_malloc(GC, sizeof(int *));
 *   cgc_gcollect(GC);
 *   cgc_destroy(GC);
 *
 *===--------------------------------------------------------------------===*/

#ifndef CGC_CAPI_CGC_H
#define CGC_CAPI_CGC_H

#include <stddef.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct cgc_collector cgc_collector;

/* Interior-pointer policies (see core/GcConfig.h). */
enum {
  CGC_INTERIOR_BASE_ONLY = 0,
  CGC_INTERIOR_FIRST_PAGE = 1,
  CGC_INTERIOR_ALL = 2,
};

/* Blacklist representations. */
enum {
  CGC_BLACKLIST_OFF = 0,
  CGC_BLACKLIST_FLAT = 1,
  CGC_BLACKLIST_HASHED = 2,
};

/* Plain-C mirror of the collector configuration.  Zero/default
 * initialize with cgc_config_init; unset fields keep library defaults.
 */
typedef struct cgc_config {
  unsigned long long window_bytes;       /* 0 = default (4 GiB)        */
  unsigned long long max_heap_bytes;     /* 0 = default (256 MiB)      */
  unsigned long long heap_base_offset;   /* 0 = recommended placement  */
  int interior_policy;                   /* CGC_INTERIOR_*             */
  int blacklist_mode;                    /* CGC_BLACKLIST_*            */
  int blacklist_aging;                   /* boolean                    */
  int gc_at_startup;                     /* boolean                    */
  int lazy_sweep;                        /* boolean                    */
  unsigned root_scan_alignment;          /* 1, 2, 4, or 8              */
  int all_interior_pointers_avoid_spans; /* reserved; must be 0        */
} cgc_config;

/* Fills *config with the library defaults. */
void cgc_config_init(cgc_config *config);

/* Creates/destroys a collector.  NULL config = defaults. */
cgc_collector *cgc_create(const cgc_config *config);
void cgc_destroy(cgc_collector *gc);

/* --- allocation (all memory is zero-initialized) -------------------- */

/* Pointer-bearing, collectable. */
void *cgc_malloc(cgc_collector *gc, size_t bytes);
/* Guaranteed pointer-free: never scanned, may use blacklisted pages. */
void *cgc_malloc_atomic(cgc_collector *gc, size_t bytes);
/* Scanned but never collected; free with cgc_free. */
void *cgc_malloc_uncollectable(cgc_collector *gc, size_t bytes);
/* Large object retained only through first-page pointers (paper,
 * observation 7). */
void *cgc_malloc_ignore_off_page(cgc_collector *gc, size_t bytes);
/* Explicit deallocation (required for uncollectable objects). */
void cgc_free(cgc_collector *gc, void *ptr);

/* --- collection ------------------------------------------------------ */

/* Runs a full collection; returns the number of bytes reclaimed. */
unsigned long long cgc_gcollect(cgc_collector *gc);

/* --- roots ----------------------------------------------------------- */

/* Registers [lo, hi) as a static-data root scanned for native
 * pointers; returns a handle for cgc_remove_roots. */
unsigned cgc_add_roots(cgc_collector *gc, const void *lo, const void *hi);
int cgc_remove_roots(cgc_collector *gc, unsigned handle);
/* Excludes [lo, hi) from all root scanning (IO buffers etc.). */
void cgc_exclude_roots(cgc_collector *gc, const void *lo, const void *hi);
/* Scans the calling thread's stack and registers during collections. */
void cgc_enable_stack_scanning(cgc_collector *gc);
/* Registers a valid interior displacement for BASE_ONLY policy. */
void cgc_register_displacement(cgc_collector *gc, unsigned displacement);

/* --- finalization ---------------------------------------------------- */

typedef void (*cgc_finalizer_fn)(void *obj, void *client_data);
/* Registers fn to run (via cgc_run_finalizers) once obj is found
 * unreachable.  Returns nonzero on success. */
int cgc_register_finalizer(cgc_collector *gc, void *obj,
                           cgc_finalizer_fn fn, void *client_data);
int cgc_unregister_finalizer(cgc_collector *gc, void *obj);
/* Runs queued finalizers; returns how many ran. */
size_t cgc_run_finalizers(cgc_collector *gc);

/* --- introspection --------------------------------------------------- */

int cgc_is_heap_ptr(cgc_collector *gc, const void *ptr);
/* Object base for an interior pointer, or NULL. */
void *cgc_base(cgc_collector *gc, const void *ptr);
/* Allocation size of the object at base ptr, or 0. */
size_t cgc_size(cgc_collector *gc, const void *ptr);
unsigned long long cgc_heap_committed_bytes(cgc_collector *gc);
unsigned long long cgc_live_bytes(cgc_collector *gc);
unsigned long long cgc_collection_count(cgc_collector *gc);
unsigned long long cgc_blacklisted_pages(cgc_collector *gc);
/* Prints the statistics report to stderr. */
void cgc_dump(cgc_collector *gc);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* CGC_CAPI_CGC_H */
