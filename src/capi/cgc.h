/*===- capi/cgc.h - C API for the cgc collector ----------------*- C -*-===*
 *
 * Part of the cgc project: a reproduction of Boehm, "Space Efficient
 * Conservative Garbage Collection", PLDI 1993.
 *
 *===--------------------------------------------------------------------===*
 *
 * A C interface in the shape of the era's collectors (the paper's
 * collector was a C library; this API mirrors its descendants'
 * GC_malloc family).  Every function takes an explicit collector
 * handle — unlike the originals there is no hidden global, so several
 * independently configured collectors can coexist in one process.
 *
 * Minimal use:
 *
 *   cgc_config Config;
 *   cgc_config_init(&Config);
 *   cgc_collector *GC = cgc_create(&Config);
 *   cgc_enable_stack_scanning(GC);
 *   int **P = cgc_malloc(GC, sizeof(int *));
 *   cgc_gcollect(GC);
 *   cgc_destroy(GC);
 *
 *===--------------------------------------------------------------------===*/

#ifndef CGC_CAPI_CGC_H
#define CGC_CAPI_CGC_H

#include <stddef.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct cgc_collector cgc_collector;

/* Interior-pointer policies (see core/GcConfig.h). */
enum {
  CGC_INTERIOR_BASE_ONLY = 0,
  CGC_INTERIOR_FIRST_PAGE = 1,
  CGC_INTERIOR_ALL = 2,
};

/* Blacklist representations. */
enum {
  CGC_BLACKLIST_OFF = 0,
  CGC_BLACKLIST_FLAT = 1,
  CGC_BLACKLIST_HASHED = 2,
};

/* Heap placements (see core/GcConfig.h; the paper's "properly
 * positioning the heap in the address space"). */
enum {
  CGC_PLACEMENT_HIGH_BITS_MIXED = 0, /* the recommended default */
  CGC_PLACEMENT_LOW_SBRK = 1,
  CGC_PLACEMENT_ASCII_RANGE = 2,
  CGC_PLACEMENT_CUSTOM = 3,          /* use heap_base_offset    */
};

/* Stack-clearing modes (the paper's section-3.1 technique). */
enum {
  CGC_STACK_CLEAR_OFF = 0,
  CGC_STACK_CLEAR_CHEAP = 1,
};

/* Collection pipeline phases, in the order every collection runs them:
 * root-scan -> mark -> blacklist-promote -> sweep -> finalize.  Event
 * observers (cgc_add_observer) receive begin/end callbacks per phase.
 */
enum {
  CGC_PHASE_ROOT_SCAN = 0,
  CGC_PHASE_MARK = 1,
  CGC_PHASE_BLACKLIST_PROMOTE = 2,
  CGC_PHASE_SWEEP = 3,
  CGC_PHASE_FINALIZE = 4,
};

/* Plain-C mirror of GcConfig::SentinelPolicy — the retention-storm
 * sentinel watching the live-bytes trajectory across a window of
 * collections (see core/GcSentinel.h).  Zero numeric fields keep the
 * library defaults. */
typedef struct cgc_sentinel_policy {
  int enabled;                             /* boolean; default off     */
  unsigned window_collections;             /* 0 = default (8)          */
  unsigned long long growth_floor_bytes;   /* 0 = default (1 MiB)      */
  double growth_slope_fraction;            /* <= 0 = default (0.05)    */
  unsigned min_growing_deltas;             /* 0 = 3/4 of the window    */
  unsigned escalation_cooldown;            /* 0 = default (2)          */
  unsigned tighten_cycles;                 /* 0 = default (8)          */
  unsigned calm_collections;               /* 0 = default (4)          */
} cgc_sentinel_policy;

/* Plain-C mirror of the collector configuration.  Zero/default
 * initialize with cgc_config_init; unset fields keep library defaults.
 */
typedef struct cgc_config {
  unsigned long long window_bytes;       /* 0 = default (4 GiB)        */
  unsigned long long max_heap_bytes;     /* 0 = default (256 MiB)      */
  unsigned long long heap_base_offset;   /* 0 = recommended placement  */
  int interior_policy;                   /* CGC_INTERIOR_*             */
  int blacklist_mode;                    /* CGC_BLACKLIST_*            */
  int blacklist_aging;                   /* boolean                    */
  int gc_at_startup;                     /* boolean                    */
  int lazy_sweep;                        /* boolean                    */
  unsigned root_scan_alignment;          /* 1, 2, 4, or 8              */
  /* Mark-phase worker threads.  0 or 1 = the paper's sequential
   * marker (the default, and bit-for-bit the paper's experiment
   * behavior); N > 1 traces the heap on N work-stealing workers.  The
   * retained-object set and every statistics counter are identical
   * for any value; only mark wall-clock time changes.  Clamped to 64.
   */
  unsigned mark_threads;
  int all_interior_pointers_avoid_spans; /* reserved; must be 0        */
  /* Sweep-phase worker threads.  0 or 1 = the paper's sequential
   * sweep (the default); N > 1 shards the block list across the same
   * persistent worker pool the mark phase uses.  The retained set,
   * free-list order, and every statistics counter are identical for
   * any value; only sweep wall-clock time changes.  Clamped to 64.
   */
  unsigned sweep_threads;
  /* Root-scan-phase worker threads.  0 or 1 = sequential (the
   * default); N > 1 decodes root spans on N workers, then replays the
   * candidates sequentially in registration order — the marked set,
   * the blacklist, and every counter are identical for any value.
   * Clamped to 64. */
  unsigned root_scan_threads;
  /* Maximum registered mutator threads (cgc_register_thread); 0 =
   * default (64).  A collector with no registered threads runs the
   * paper's sequential single-mutator protocol bit-identically. */
  unsigned mutator_threads;
  /* Per-size-class slots in each registered thread's allocation
   * cache; 0 = default (32).  Caches are refilled in batches under
   * the heap lock, popped lock-free, and flushed at every
   * stop-the-world handshake. */
  unsigned thread_cache_slots;
  int heap_placement;                    /* CGC_PLACEMENT_*            */
  unsigned heap_growth_pages;            /* 0 = default (256)          */
  int decommit_freed_pages;              /* boolean                    */
  unsigned heap_scan_alignment;          /* 1, 2, 4, or 8; 0 = default */
  unsigned hashed_blacklist_bits_log2;   /* 0 = default (16)           */
  int precise_free_slot_detection;       /* boolean                    */
  double collect_before_growth_ratio;    /* <= 0 = default (0.5)       */
  unsigned long long min_heap_bytes_before_gc; /* 0 = default (1 MiB)  */
  int stack_clearing;                    /* CGC_STACK_CLEAR_*          */
  unsigned stack_clear_chunk_bytes;      /* 0 = default (4096)         */
  unsigned stack_clear_every_n_allocs;   /* 0 = default (64)           */
  int avoid_trailing_zero_addresses;     /* boolean                    */
  int clear_freed_objects;               /* boolean                    */
  int address_ordered_allocation;        /* boolean                    */
  /* Run the deep heap verifier after every collection phase and abort
   * with a full diagnostic report on any inconsistency.  Expensive
   * (O(heap) per phase); meant for fuzzing and debugging.  Also
   * forced on by the CGC_VERIFY_EVERY_COLLECTION environment
   * variable. */
  int verify_every_collection;           /* boolean                    */
  /* Retention-storm sentinel policy; sentinel.enabled defaults off. */
  cgc_sentinel_policy sentinel;
  /* Guarded-heap (debug) mode: every allocation carries a 16-byte
   * header (allocation-site tag, monotonic sequence number, canary)
   * and a trailing redzone, validated at every sweep and by the heap
   * verifier; explicit frees are fully validated and freed objects are
   * poisoned and parked in a bounded quarantine that detects
   * use-after-free writes.  Forces lazy_sweep off.  Retained sets are
   * bit-identical to an unguarded collector on the same workload. */
  int debug_guards;                      /* boolean; default off       */
  /* Abort with a diagnostic on the first guard violation (default).
   * Zero records the violation as an incident (cgc_incident_fn,
   * CGC_INCIDENT_*) and keeps running. */
  int guard_fatal;                       /* boolean; default on        */
  /* Quarantine capacity in objects; freed guarded objects are parked
   * this long before their memory is reusable.  0 = release
   * immediately (no use-after-free window).  Default 256. */
  unsigned quarantine_slots;
  /* Stop-the-world handshake watchdog deadline in milliseconds.
   * 0 (default) disables the watchdog: the handshake waits forever,
   * exactly as before the hardening layer existed.  Nonzero arms an
   * escalation ladder: a rate-limited warning at deadline/4, a
   * preemptive signal suspension of still-running mutators at
   * deadline/2, and at the full deadline a CGC_INCIDENT_HANDSHAKE_
   * TIMEOUT incident after which the collection attempt is abandoned
   * and allocation degrades to heap growth. */
  unsigned long long handshake_deadline_ms;
  /* Abort (through the fatal-error path, crash report included)
   * instead of abandoning the collection when the handshake deadline
   * expires.  Boolean; default off. */
  int handshake_fatal;
  /* The reserved suspend signal for the watchdog's preemptive rung;
   * the resume signal is always suspend+1 and both are reserved
   * process-wide while any watchdog is armed.  0 (default) =
   * SIGRTMIN+6, overridable with the CGC_SUSPEND_SIGNAL environment
   * variable; negative disables the signal rung entirely (the ladder
   * then goes warn -> timeout). */
  int suspend_signal;
  /* Place the collector's own metadata (block table, page map, free
   * lists) in a dedicated arena kept PROT_READ between collections.
   * A wild store into sealed metadata faults; the collector's SIGSEGV
   * sub-handler attributes it to the damaged structure, raises a
   * CGC_INCIDENT_METADATA_WILD_WRITE incident, repairs the heap in
   * place, and resumes the store — instead of crashing later on
   * corrupt metadata.  Costs two mprotect calls per collection. */
  int seal_metadata;                     /* boolean; default off       */
  /* Abort (through the fatal-error path) when the mid-collection
   * verifier finds corrupt metadata (default, the historical
   * behavior).  Zero engages the containment ladder instead: abandon
   * the collection, repair the heap from the surviving structures,
   * retry the cycle once, and on a second failure degrade to
   * fresh-page allocation — never aborting. */
  int repair_fatal;                      /* boolean; default on        */
} cgc_config;

/* Fills *config with the library defaults.  Every field of the C++
 * GcConfig has a counterpart here, initialized to the same default;
 * cgc_current_config reads the resolved configuration back. */
void cgc_config_init(cgc_config *config);

/* Creates/destroys a collector.  NULL config = defaults. */
cgc_collector *cgc_create(const cgc_config *config);
void cgc_destroy(cgc_collector *gc);

/* --- allocation (all memory is zero-initialized) -------------------- */

/* Pointer-bearing, collectable. */
void *cgc_malloc(cgc_collector *gc, size_t bytes);
/* Guaranteed pointer-free: never scanned, may use blacklisted pages. */
void *cgc_malloc_atomic(cgc_collector *gc, size_t bytes);
/* Scanned but never collected; free with cgc_free. */
void *cgc_malloc_uncollectable(cgc_collector *gc, size_t bytes);
/* Pointer-free AND uncollectable (bdwgc's GC_malloc_atomic_uncollectable):
 * never scanned, never reclaimed by the collector; free with cgc_free. */
void *cgc_malloc_atomic_uncollectable(cgc_collector *gc, size_t bytes);
/* Large object retained only through first-page pointers (paper,
 * observation 7). */
void *cgc_malloc_ignore_off_page(cgc_collector *gc, size_t bytes);
/* Explicit deallocation (required for uncollectable objects). */
void cgc_free(cgc_collector *gc, void *ptr);

/* --- typed (descriptor-driven) allocation ---------------------------- */

/* Registers an interned layout descriptor for objects of size bytes
 * (small objects only).  pointer_words[i] nonzero means word i may hold
 * a pointer; words at and past num_words are pointer-free.  Returns the
 * descriptor id.  Registering the same {bitmap, size} twice returns the
 * same id.  Degenerate bitmaps (every word / no word) transparently
 * behave like cgc_malloc / cgc_malloc_atomic. */
unsigned cgc_register_descriptor(cgc_collector *gc,
                                 const unsigned char *pointer_words,
                                 size_t num_words, size_t bytes);

/* Allocates one object of the given descriptor.  Only the declared
 * pointer words are traced; the rest are ignored by the marker and
 * never feed the page blacklist. */
void *cgc_malloc_explicitly_typed(cgc_collector *gc, unsigned descriptor);

/* --- collection ------------------------------------------------------ */

/* Runs a full collection; returns the number of bytes reclaimed. */
unsigned long long cgc_gcollect(cgc_collector *gc);

/* Sets the mark-phase worker count for future collections (see
 * cgc_config.mark_threads; 0 is treated as 1). */
void cgc_set_mark_threads(cgc_collector *gc, unsigned threads);
unsigned cgc_mark_threads(cgc_collector *gc);

/* Sets the sweep-phase worker count for future collections (see
 * cgc_config.sweep_threads; 0 is treated as 1). */
void cgc_set_sweep_threads(cgc_collector *gc, unsigned threads);
unsigned cgc_sweep_threads(cgc_collector *gc);

/* Sets the root-scan-phase worker count for future collections (see
 * cgc_config.root_scan_threads; 0 is treated as 1). */
void cgc_set_root_scan_threads(cgc_collector *gc, unsigned threads);
unsigned cgc_root_scan_threads(cgc_collector *gc);

/* --- mutator threads -------------------------------------------------- */

/* Registers the calling thread as a mutator of gc.  Until the first
 * registration the collector runs the paper's sequential protocol
 * bit-identically; afterwards allocation and collection synchronize
 * through the heap lock and a cooperative stop-the-world handshake.
 * Call near the top of the thread's entry function: stack frames
 * entered before registration are invisible to the collector, so the
 * thread must not yet hold the only pointer to a collectable object.
 * Returns nonzero on success, 0 when cgc_config.mutator_threads
 * registrations are already live.  Pair with cgc_unregister_thread
 * before the thread exits. */
int cgc_register_thread(cgc_collector *gc);

/* Unregisters the calling thread (flushing its allocation cache).
 * The thread must not touch gc afterwards without re-registering. */
void cgc_unregister_thread(cgc_collector *gc);

/* Safepoint poll: if a collection is waiting for this thread, publish
 * scan state and park until it finishes.  Cheap when no collection is
 * pending.  Allocation already polls; call this inside long
 * allocation-free compute loops.  No-op for unregistered threads. */
void cgc_safepoint(cgc_collector *gc);

/* Fills *out with gc's resolved configuration — the exact settings the
 * collector is running with, after defaulting and clamping.  A config
 * passed to cgc_create round-trips: every field set to a definite
 * value comes back unchanged. */
void cgc_current_config(cgc_collector *gc, cgc_config *out);

/* --- memory-pressure resilience -------------------------------------- */

/* Out-of-memory handler, invoked exactly once per exhausted request
 * after the allocation ladder (collect, flush lazy sweeps, grow,
 * emergency collect with relaxed interior-pointer recognition) has
 * failed.  bytes is the requested size.  Whatever it returns is
 * returned from the failed allocation verbatim — return NULL to
 * propagate the failure, or longjmp/throw to unwind. */
typedef void *(*cgc_oom_fn)(size_t bytes, void *client_data);

/* Installs (or clears, with NULL) the out-of-memory handler. */
void cgc_set_oom_handler(cgc_collector *gc, cgc_oom_fn fn,
                         void *client_data);

/* Warn procedure for rate-limited resilience warnings (repeated
 * collections reclaiming nothing under allocation pressure, large
 * allocations on a blacklist-saturated heap).  Each warning kind is
 * delivered on its 1st, 2nd, 4th, 8th, ... occurrence; value carries
 * the occurrence count or a size, depending on the message. */
typedef void (*cgc_warn_fn)(const char *message, unsigned long long value,
                            void *client_data);

/* Installs (or clears, with NULL) the warn procedure. */
void cgc_set_warn_proc(cgc_collector *gc, cgc_warn_fn fn,
                       void *client_data);

/* Runs the deep heap verifier (block table <-> page map <-> free
 * lists <-> mark bits <-> blacklist cross-checks) and returns the
 * number of inconsistencies found, 0 for a clean heap.  Never aborts.
 * When report/report_bytes name a buffer, the human-readable issue
 * report (one line per issue, NUL-terminated, truncated to fit) is
 * written into it. */
size_t cgc_verify_heap(cgc_collector *gc, char *report,
                       size_t report_bytes);

/* Structured verifier finding kinds (VerifyFindingKind). */
enum {
  CGC_VERIFY_GENERIC = 0,          /* uncategorized cross-check failure */
  CGC_VERIFY_BLOCK_GEOMETRY = 1,   /* block descriptor/header damage    */
  CGC_VERIFY_PAGE_MAP_STALE = 2,   /* page-map entry disagrees w/ table */
  CGC_VERIFY_COUNTER_MISMATCH = 3, /* live/free counters out of sync    */
  CGC_VERIFY_FREE_LIST_BROKEN = 4, /* small-object free list damaged    */
  CGC_VERIFY_FREE_RUN_BROKEN = 5,  /* page-allocator free run damaged   */
  CGC_VERIFY_GUARD_SMASH = 6,      /* guarded-heap canary/redzone smash */
  CGC_VERIFY_ACCOUNTING = 7,       /* byte accounting inconsistency     */
};

/* Repair outcome per finding (VerifyRepairOutcome). */
enum {
  CGC_REPAIR_NOT_ATTEMPTED = 0,    /* verify-only pass, or unrepaired   */
  CGC_REPAIR_REPAIRED = 1,         /* structure rebuilt in place        */
  CGC_REPAIR_QUARANTINED = 2,      /* block/page leaked deliberately    */
};

/* One structured verifier finding.  message points into report
 * storage and is valid only for the duration of the callback. */
typedef struct cgc_verify_finding {
  int kind;                 /* CGC_VERIFY_*                             */
  const char *message;      /* human-readable one-liner                 */
  unsigned long long page;  /* faulting page index; 0 = not page-level  */
  unsigned block;           /* faulting block id; 0 = not block-level   */
  int outcome;              /* CGC_REPAIR_*                             */
} cgc_verify_finding;

/* Streaming verifier-report callback: one call per finding. */
typedef void (*cgc_verify_report_fn)(const cgc_verify_finding *finding,
                                     void *client_data);

/* Runs the deep heap verifier and streams every structured finding
 * (capped and deduplicated per (kind, page); see cgc_repair_stats for
 * the truncation counters) through fn.  Returns the number of
 * findings reported.  Never aborts; fn may be NULL to just count. */
size_t cgc_verify_heap_report(cgc_collector *gc, cgc_verify_report_fn fn,
                              void *client_data);

/* Lifetime corruption-containment counters (GcRepairStats). */
typedef struct cgc_repair_stats {
  unsigned long long verify_repairs_run;   /* verifyAndRepair passes    */
  unsigned long long findings_repaired;    /* findings fixed in place   */
  unsigned long long blocks_quarantined;   /* blocks deliberately leaked*/
  unsigned long long pages_quarantined;    /* pages deliberately leaked */
  unsigned long long free_list_rebuilds;   /* free lists rebuilt        */
  unsigned long long page_map_rederivations; /* page-map entries fixed  */
  unsigned long long counters_resynced;    /* counters re-derived       */
  unsigned long long collections_retried;  /* cycles abandoned+retried  */
  unsigned long long metadata_wild_writes; /* sealed-arena SIGSEGVs     */
  unsigned long long seal_transitions;     /* mprotect seal/unseal calls*/
  unsigned long long seal_nanos;           /* total mprotect time       */
  int degraded_mode;        /* boolean: collector gave up on collecting */
} cgc_repair_stats;

/* Runs a verify-and-repair pass: free lists rebuilt from the alloc and
 * mark bits, page-map entries re-derived from the block table,
 * irreparable blocks/pages quarantined (deliberately leaked).  Streams
 * the pre-repair findings — each with its repair outcome filled in —
 * through fn (NULL to skip), then fills *out (when non-NULL) with the
 * lifetime repair counters.  Returns nonzero when the heap verified
 * clean after repair.  Never aborts, regardless of repair_fatal. */
int cgc_verify_and_repair(cgc_collector *gc, cgc_verify_report_fn fn,
                          void *client_data, cgc_repair_stats *out);

/* Fills *out with the lifetime corruption-containment counters without
 * running the verifier. */
void cgc_get_repair_stats(cgc_collector *gc, cgc_repair_stats *out);

/* --- retention-storm sentinel ---------------------------------------- */

/* Fills *policy with the library defaults (sentinel disabled). */
void cgc_sentinel_policy_init(cgc_sentinel_policy *policy);

/* Replaces the sentinel policy at runtime.  enabled nonzero (re)creates
 * the sentinel with a fresh trajectory window; zero tears it down and
 * restores any configuration knobs its escalation ladder overrode.
 * Must not be called from inside an observer or incident callback. */
void cgc_sentinel_configure(cgc_collector *gc,
                            const cgc_sentinel_policy *policy);

/* Lifetime counters of the sentinel's detections and responses. */
typedef struct cgc_sentinel_stats {
  unsigned long long storms_detected;
  unsigned long long stack_clear_forces;
  unsigned long long blacklist_refreshes;
  unsigned long long interior_tightenings;
  unsigned long long incidents_raised;
  unsigned long long deescalations;
  unsigned current_level;   /* 0 (calm) .. 4 (incident raised) */
} cgc_sentinel_stats;

/* Fills *out with the sentinel's counters; returns nonzero when the
 * sentinel is enabled, 0 (and a zeroed *out) when it is not. */
int cgc_sentinel_get_stats(cgc_collector *gc, cgc_sentinel_stats *out);

/* Incident causes (GcIncidentCause).  The guard causes fire only in
 * guarded-heap mode with guard_fatal disabled. */
enum {
  CGC_INCIDENT_RETENTION_STORM = 0,
  CGC_INCIDENT_INVALID_FREE = 1,
  CGC_INCIDENT_DOUBLE_FREE = 2,
  CGC_INCIDENT_GUARD_HEADER_SMASH = 3,
  CGC_INCIDENT_GUARD_REDZONE_SMASH = 4,
  CGC_INCIDENT_QUARANTINE_USE_AFTER_FREE = 5,
  /* A stop-the-world handshake exhausted handshake_deadline_ms; the
   * collection attempt was abandoned. */
  CGC_INCIDENT_HANDSHAKE_TIMEOUT = 6,
  /* A wild store hit the sealed metadata arena (seal_metadata mode);
   * the write was contained, attributed, and the heap repaired. */
  CGC_INCIDENT_METADATA_WILD_WRITE = 7,
  /* The malloc-redirect layer saw free()/realloc() of a pointer the
   * collector does not own (redirect/Redirect.h); the call degraded
   * to a pass-through or no-op.  Also raised for an unguarded
   * cgc_free of a non-heap pointer. */
  CGC_INCIDENT_FOREIGN_FREE = 8,
};

/* Incident callback: the sentinel exhausted its escalation ladder and
 * the heap is still growing.  cause is CGC_INCIDENT_*; collection is
 * the 0-based collection index at which the incident fired;
 * window_growth_bytes is the net live-bytes growth across the
 * trajectory window.  Runs from collection-end context: it must not
 * allocate from or collect gc. */
typedef void (*cgc_incident_fn)(int cause, unsigned long long collection,
                                unsigned escalation_level,
                                unsigned long long window_growth_bytes,
                                void *client_data);

/* Installs (or clears, with NULL) the incident callback. */
void cgc_set_incident_callback(cgc_collector *gc, cgc_incident_fn fn,
                               void *client_data);

/* --- crash reporting -------------------------------------------------- */

/* Installs process-wide SIGSEGV/SIGABRT handlers that write the crash
 * report (collector phase, heap summary, resilience counters, armed
 * fault sites, last-events ring) to stderr, then restore the previous
 * disposition and re-raise.  Idempotent; async-signal-safe (write(2)
 * only, no allocation, no locks). */
void cgc_install_crash_reporter(void);

/* Writes the same crash report, on demand, to fd.  Async-signal-safe;
 * covers every live collector in the process. */
void cgc_dump_crash_report(int fd);

/* --- guarded-heap debugging ------------------------------------------ */

/* Allocation tagged with a site string for the guarded heap's
 * violation and leak reports.  site must outlive the collector (a
 * string literal; CGC_MALLOC_SITE builds one from __FILE__:__LINE__).
 * Without debug_guards this is exactly cgc_malloc. */
void *cgc_debug_malloc(cgc_collector *gc, size_t bytes, const char *site);

#define CGC_STRINGIZE_(x) #x
#define CGC_STRINGIZE(x) CGC_STRINGIZE_(x)
/* cgc_debug_malloc tagged with the call's file:line. */
#define CGC_MALLOC_SITE(gc, bytes)                                        \
  cgc_debug_malloc((gc), (bytes), __FILE__ ":" CGC_STRINGIZE(__LINE__))

/* Releases every quarantined object now, re-checking its poison fill
 * (a failed check is a use-after-free violation).  Collections flush
 * the quarantine themselves; this forces it between collections.
 * No-op without debug_guards. */
void cgc_debug_flush_quarantine(cgc_collector *gc);

/* Lifetime counters of the guarded heap (GcGuardStats). */
typedef struct cgc_guard_stats {
  unsigned long long guarded_allocations;
  unsigned long long guarded_frees;
  unsigned long long quarantine_depth;
  unsigned long long quarantine_flushes;
  unsigned long long header_smashes;
  unsigned long long redzone_smashes;
  unsigned long long double_frees;
  unsigned long long invalid_frees;
  unsigned long long use_after_free_writes;
  unsigned long long guard_slop_bytes;   /* header+redzone overhead   */
  unsigned long long leaked_objects;     /* from the last find-leaks  */
  unsigned long long leaked_bytes;
} cgc_guard_stats;

/* Fills *out with the guard counters; returns nonzero when guarded
 * mode is active, 0 (and a zeroed *out) when it is not. */
int cgc_debug_get_stats(cgc_collector *gc, cgc_guard_stats *out);

/* Leak-report callback: one call per allocation site that owns
 * never-freed unreachable objects, in deterministic site-intern
 * order.  first_seqno is the earliest leaked allocation's sequence
 * number.  Runs outside collection; it must not allocate from or
 * collect gc. */
typedef void (*cgc_leak_fn)(const char *site, unsigned long long objects,
                            unsigned long long bytes,
                            unsigned long long first_seqno, void *user);

/* Runs a find-leaks pass: flushes the quarantine, marks from the
 * current roots, and reports every unreachable-but-never-freed
 * guarded object grouped by allocation site.  Returns the total
 * leaked object count.  Requires debug_guards (returns 0 without). */
unsigned long long cgc_debug_find_leaks(cgc_collector *gc, cgc_leak_fn fn,
                                        void *user);

/* --- fault injection (testing) --------------------------------------- */

/* Injectable failure sites; process-global, shared by every collector
 * in the process. */
enum {
  CGC_FAULT_ARENA_GROW = 0,         /* page commit/grow fails          */
  CGC_FAULT_PAGE_RUN_SEARCH = 1,    /* free-run search reports no fit  */
  CGC_FAULT_WORKER_SPAWN = 2,       /* GC worker thread spawn fails    */
  CGC_FAULT_MARK_STACK_OVERFLOW = 3,/* mark-stack push drops its item  */
  CGC_FAULT_WEDGED_MUTATOR = 4,     /* safepoint park behaves as missed */
  /* Deterministic metadata-corruption classes (collection entry picks
   * a victim and damages it before any phase runs; the verifier must
   * detect and repair it). */
  CGC_FAULT_METADATA_HEADER_FLIP = 5,      /* block-descriptor bit flip  */
  CGC_FAULT_METADATA_FREE_LIST_SMASH = 6,  /* free-list link smashed     */
  CGC_FAULT_METADATA_PAGE_MAP_CLOBBER = 7, /* page-map entry clobbered   */
  CGC_FAULT_METADATA_ALLOC_BIT_FLIP = 8,   /* alloc bit vs header flip   */
};

/* Returns nonzero when the library was built with the injection hooks
 * compiled in (CMake option CGC_FAULT_INJECTION).  When it returns 0
 * the arming calls below are accepted but never fire. */
int cgc_fault_injection_available(void);

/* Arms a site deterministically: the next skip_hits reaches succeed,
 * the fail_count after that fail, then the site disarms itself.
 * fail_count of (unsigned long long)-1 means fail forever. */
void cgc_fault_arm(int site, unsigned long long skip_hits,
                   unsigned long long fail_count);

/* Arms a site probabilistically: each reach fails with the given
 * probability, drawn from a stream seeded with seed (deterministic
 * replay). */
void cgc_fault_arm_random(int site, double probability,
                          unsigned long long seed);

/* Disarms every site (counters survive). */
void cgc_fault_disarm_all(void);

/* Times the site was forced to fail since process start. */
unsigned long long cgc_fault_fired(int site);

/* --- observability --------------------------------------------------- */

/* Events delivered to cgc_gc_event_fn observers.  Every collection —
 * including ones triggered from inside allocation — emits:
 *   COLLECTION_BEGIN,
 *   { PHASE_BEGIN, PHASE_END } per phase in CGC_PHASE_* order,
 *   COLLECTION_END.
 */
enum {
  CGC_EVENT_COLLECTION_BEGIN = 0,
  CGC_EVENT_COLLECTION_END = 1,
  CGC_EVENT_PHASE_BEGIN = 2,
  CGC_EVENT_PHASE_END = 3,
};

/* Observer callback.  event is CGC_EVENT_*.  phase is CGC_PHASE_* for
 * phase events and -1 for collection events.  nanos is the phase
 * duration for CGC_EVENT_PHASE_END, the 0-based collection index for
 * CGC_EVENT_COLLECTION_BEGIN/END, and 0 otherwise.  The callback runs
 * mid-collection: it must not allocate from or collect gc. */
typedef void (*cgc_gc_event_fn)(int event, int phase,
                                unsigned long long nanos,
                                void *client_data);

/* Registers an observer; returns a handle (never 0) for
 * cgc_remove_gc_observer.  Registration and removal are legal from
 * inside a callback, including an observer removing itself. */
unsigned cgc_add_gc_observer(cgc_collector *gc, cgc_gc_event_fn fn,
                             void *client_data);
/* Unregisters; returns nonzero if the handle was registered. */
int cgc_remove_gc_observer(cgc_collector *gc, unsigned handle);

/* --- roots ----------------------------------------------------------- */

/* Registers [lo, hi) as a static-data root scanned for native
 * pointers; returns a handle for cgc_remove_roots. */
unsigned cgc_add_roots(cgc_collector *gc, const void *lo, const void *hi);
int cgc_remove_roots(cgc_collector *gc, unsigned handle);
/* Excludes [lo, hi) from all root scanning (IO buffers etc.). */
void cgc_exclude_roots(cgc_collector *gc, const void *lo, const void *hi);
/* Scans the calling thread's stack and registers during collections. */
void cgc_enable_stack_scanning(cgc_collector *gc);
/* Registers a valid interior displacement for BASE_ONLY policy. */
void cgc_register_displacement(cgc_collector *gc, unsigned displacement);

/* --- finalization ---------------------------------------------------- */

typedef void (*cgc_finalizer_fn)(void *obj, void *client_data);
/* Registers fn to run (via cgc_run_finalizers) once obj is found
 * unreachable.  Returns nonzero on success. */
int cgc_register_finalizer(cgc_collector *gc, void *obj,
                           cgc_finalizer_fn fn, void *client_data);
int cgc_unregister_finalizer(cgc_collector *gc, void *obj);
/* Runs queued finalizers; returns how many ran. */
size_t cgc_run_finalizers(cgc_collector *gc);

/* --- introspection --------------------------------------------------- */

int cgc_is_heap_ptr(cgc_collector *gc, const void *ptr);
/* Object base for an interior pointer, or NULL. */
void *cgc_base(cgc_collector *gc, const void *ptr);
/* Allocation size of the object at base ptr, or 0. */
size_t cgc_size(cgc_collector *gc, const void *ptr);
unsigned long long cgc_heap_committed_bytes(cgc_collector *gc);
unsigned long long cgc_live_bytes(cgc_collector *gc);
unsigned long long cgc_collection_count(cgc_collector *gc);
unsigned long long cgc_blacklisted_pages(cgc_collector *gc);
/* Prints the statistics report to stderr. */
void cgc_dump(cgc_collector *gc);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* CGC_CAPI_CGC_H */
