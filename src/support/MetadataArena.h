//===- support/MetadataArena.h - Sealable metadata storage -----*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Page-granular storage for GC metadata that can be *sealed*
/// (mprotect'd PROT_READ) between collections, so a wild store from
/// client code faults instead of silently corrupting a block
/// descriptor, page-map entry, or free-list node (the paper's shared
/// address space means arbitrary C code can scribble on the collector).
///
/// The arena is a bump-plus-freelist allocator over dedicated mmap'd
/// chunks; `MetadataAllocator<T>` adapts it to standard containers and
/// degrades to `::operator new` when no arena is configured, so the
/// unsealed collector's containers are untouched.
///
/// Sealing is cooperative with a process-wide SIGSEGV sub-handler
/// (installHandler): a write that faults inside a registered, sealed
/// chunk is let through — the handler unprotects the one page, records
/// the faulting address in a lock-free ring, and returns so the store
/// retries.  The owning collector drains the ring at its next entry,
/// attributes the address to a block/page, raises a structured
/// GcIncident{MetadataWildWrite}, and runs verify-and-repair.  Faults
/// outside every arena chain to the previously installed handler
/// (e.g. the crash reporter), so the sub-handler is invisible to
/// ordinary crashes.
///
/// Everything the handler reads is append-only or atomic: the chunk
/// table is a fixed array published with release stores, and the
/// pending-write ring uses relaxed atomics only.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_SUPPORT_METADATAARENA_H
#define CGC_SUPPORT_METADATAARENA_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

namespace cgc {

class MetadataArena {
public:
  MetadataArena();
  ~MetadataArena();

  MetadataArena(const MetadataArena &) = delete;
  MetadataArena &operator=(const MetadataArena &) = delete;

  /// Allocates \p Size bytes aligned to \p Align (<= 16) from the
  /// arena's dedicated pages.  Never returns nullptr (fatals on mmap
  /// failure, like the rest of the collector's infallible metadata
  /// paths).  Must not be called while sealed.
  void *allocate(size_t Size, size_t Align);

  /// Returns \p Ptr (of \p Size bytes) to the arena's free lists.
  /// Must not be called while sealed.
  void deallocate(void *Ptr, size_t Size);

  /// Flips every chunk PROT_READ.  Idempotent.
  void seal();

  /// Flips every chunk PROT_READ|PROT_WRITE.  Idempotent.
  void unseal();

  bool sealed() const { return Sealed.load(std::memory_order_acquire); }

  /// True when \p Ptr lies inside one of this arena's chunks.
  /// Async-signal-safe.
  bool contains(const void *Ptr) const;

  /// Total nanoseconds spent inside seal/unseal mprotect loops, and
  /// the number of transitions, for the pause-time benchmark.
  uint64_t protectNanos() const {
    return ProtectNanos.load(std::memory_order_relaxed);
  }
  uint64_t protectTransitions() const {
    return ProtectTransitions.load(std::memory_order_relaxed);
  }

  /// One wild write the SIGSEGV sub-handler let through.
  struct WildWrite {
    uintptr_t Address = 0;
  };

  /// Drains up to \p Max pending wild writes recorded against this
  /// arena into \p Out; \returns the count drained.
  unsigned drainWildWrites(WildWrite *Out, unsigned Max);

  /// Installs the process-wide SIGSEGV sub-handler (idempotent,
  /// first call wins) that recovers wild writes to sealed arenas and
  /// chains every other fault to the previously installed handler.
  static void installHandler();

  /// True when \p Addr lies in any live arena's chunks (for tests).
  static bool anyArenaContains(const void *Addr);

private:
  struct Chunk {
    std::atomic<uintptr_t> Base{0};
    std::atomic<size_t> Size{0};
  };

  /// Intrusive free-list node stored in freed metadata memory.
  struct FreeNode {
    FreeNode *Next;
  };

  void *allocateFromChunks(size_t Size);
  void addChunk(size_t MinBytes);

  static constexpr size_t ChunkBytes = size_t(256) << 10; // 256 KiB
  static constexpr unsigned MaxChunks = 1024;             // 256 MiB cap
  /// Segregated free lists for 16, 32, 64, ..., 4096-byte cells.
  static constexpr unsigned NumSizeClasses = 9;
  static constexpr size_t MinCellBytes = 16;

  static unsigned classFor(size_t Size);
  static size_t classBytes(unsigned Class);

  Chunk Chunks[MaxChunks];
  std::atomic<unsigned> NumChunks{0};
  /// Bump frontier within the newest chunk.
  uintptr_t BumpPtr = 0;
  uintptr_t BumpEnd = 0;
  FreeNode *FreeLists[NumSizeClasses] = {};
  /// Head of the oversize (page-rounded) free list; nodes store
  /// {NextAddress, RoundedBytes} in their first two words.
  uintptr_t OversizeFree = 0;
  std::atomic<bool> Sealed{false};
  std::atomic<uint64_t> ProtectNanos{0};
  std::atomic<uint64_t> ProtectTransitions{0};
};

/// Standard-allocator adapter over MetadataArena.  A null arena (the
/// default) degrades to global operator new/delete, so containers in
/// unsealed collectors behave exactly as before.
template <typename T> class MetadataAllocator {
public:
  using value_type = T;

  MetadataAllocator(MetadataArena *Arena = nullptr) : Arena(Arena) {}
  template <typename U>
  MetadataAllocator(const MetadataAllocator<U> &Other)
      : Arena(Other.Arena) {}

  T *allocate(size_t N) {
    if (Arena)
      return static_cast<T *>(
          Arena->allocate(N * sizeof(T), alignof(T) > 16 ? 16 : alignof(T)));
    return static_cast<T *>(::operator new(N * sizeof(T)));
  }

  void deallocate(T *Ptr, size_t N) {
    if (Arena) {
      Arena->deallocate(Ptr, N * sizeof(T));
      return;
    }
    ::operator delete(Ptr);
  }

  template <typename U> bool operator==(const MetadataAllocator<U> &O) const {
    return Arena == O.Arena;
  }
  template <typename U> bool operator!=(const MetadataAllocator<U> &O) const {
    return Arena != O.Arena;
  }

  MetadataArena *Arena;
};

} // namespace cgc

#endif // CGC_SUPPORT_METADATAARENA_H
