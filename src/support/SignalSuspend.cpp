//===- support/SignalSuspend.cpp - Preemptive mutator suspension ----------===//

#include "support/SignalSuspend.h"
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>
#include <semaphore.h>

using namespace cgc;
using namespace cgc::suspend;

namespace {

// initial-exec TLS: all three variables are read inside the suspend
// signal handler.  The general-dynamic model's first per-thread access
// goes through __tls_get_addr, which may malloc (DTV growth) — not
// async-signal-safe, and fatal when the collector is a preloaded
// shared object whose interposer the malloc would re-enter.
#if defined(__GNUC__)
#define CGC_SUSPEND_TLS __attribute__((tls_model("initial-exec")))
#else
#define CGC_SUSPEND_TLS
#endif

/// The calling thread's suspension slot; deliveries before
/// setCurrentSlot (or after clearing it) are stale and ignored.
thread_local SuspendSlot *CurrentSlot CGC_SUSPEND_TLS = nullptr;

/// Nesting depth of SuspendCriticalScope on this thread; while
/// nonzero the handler must not park (the thread holds a lock the
/// stop initiator may need).  volatile sig_atomic_t: written in
/// normal context, read in the handler, same thread only.
thread_local volatile sig_atomic_t CriticalDepth CGC_SUSPEND_TLS = 0;

/// Set by the handler when a suspension had to be deferred because
/// CriticalDepth was nonzero; the outermost scope exit consumes it
/// and re-raises the suspend signal.
thread_local volatile sig_atomic_t DeferredSuspend CGC_SUSPEND_TLS = 0;

/// Published suspend signal; -1 until ensureInstalled succeeds.
/// Relaxed-readable from signal context (installedSignal).
std::atomic<int> InstalledSig{-1};

/// Serializes (re)installation; the handler never takes it.
std::mutex InstallLock;

/// Mask a suspended thread parks on: everything blocked except the
/// resume signal and the fatal signals the crash reporter owns, so a
/// crash inside the park is still reportable.  Double-buffered: a
/// reinstall with a different signal number builds the new mask into
/// the inactive buffer under InstallLock and publishes it by flipping
/// ParkMaskIndex, so a handler parking concurrently never reads a
/// torn sigset_t or a transient all-blocked state.
sigset_t ParkMasks[2];
std::atomic<unsigned> ParkMaskIndex{0};

/// Handler→watchdog ack channel (sem_post is async-signal-safe).
sem_t AckSem;
bool AckSemReady = false;

void keepFatalSignalsDeliverable(sigset_t *Set) {
  sigdelset(Set, SIGSEGV);
  sigdelset(Set, SIGBUS);
  sigdelset(Set, SIGILL);
  sigdelset(Set, SIGFPE);
  sigdelset(Set, SIGABRT);
}

/// Async-signal-safe suspend handler.  Touches only atomics, the
/// thread-local slot pointer, sigsetjmp, sem_post, and sigsuspend;
/// saves and restores errno around everything.
void suspendHandler(int) {
  const int SavedErrno = errno;
  SuspendSlot *Slot = CurrentSlot;
  if (Slot != nullptr && Slot->Pending.load(std::memory_order_acquire)) {
    if (CriticalDepth != 0) {
      // Interrupted inside a suspension-unsafe critical section
      // (SuspendCriticalScope): the thread holds a process-global
      // lock the stop initiator may itself need mid-collection, so
      // parking here would deadlock the handshake's caller.  Leave
      // the thread Running (no ack — the watchdog keeps retrying)
      // and let the scope exit re-raise the signal just outside.
      DeferredSuspend = 1;
    } else if (Slot->State->load(std::memory_order_acquire) ==
               RunningState) {
      // Capture the interrupted register file, then publish a probe
      // from this (deeper) frame as the stack top: the scan range
      // grows toward the interrupted frames, and a conservative
      // superset is always safe.
      (void)sigsetjmp(Slot->Registers, 0);
      volatile char Probe = 0;
      Slot->StackTop->store(const_cast<const char *>(&Probe),
                            std::memory_order_release);
      Slot->UseRegisters.store(true, std::memory_order_release);
      Slot->State->store(SignalSuspendedState, std::memory_order_release);
      sem_post(&AckSem);
      // Re-read the published mask each iteration: a concurrent
      // reinstall flips the index to a fully built buffer, never a
      // half-written one.
      while (Slot->Pending.load(std::memory_order_acquire))
        sigsuspend(
            &ParkMasks[ParkMaskIndex.load(std::memory_order_acquire)]);
      Slot->UseRegisters.store(false, std::memory_order_release);
      Slot->State->store(RunningState, std::memory_order_release);
    } else {
      // Already stopped cooperatively (parked, or frozen behind the
      // heap lock); ack so the watchdog stops retrying this thread.
      sem_post(&AckSem);
    }
  }
  errno = SavedErrno;
}

/// The resume signal needs a disposition (the RT default would kill
/// the process); its only job is to interrupt sigsuspend.
void resumeHandler(int) {}

} // namespace

namespace cgc {
namespace suspend {

int resolveSuspendSignal(int Configured) {
  int Sig = Configured > 0 ? Configured : 0;
  if (Sig == 0) {
    if (const char *Env = std::getenv("CGC_SUSPEND_SIGNAL"))
      Sig = std::atoi(Env);
  }
  if (Sig == 0)
    Sig = SIGRTMIN + 6;
  if (Sig < 1 || Sig + 1 > SIGRTMAX)
    return -1;
  return Sig;
}

int ensureInstalled(int SuspendSig) {
  if (SuspendSig < 1 || SuspendSig + 1 > SIGRTMAX)
    return -1;
  std::lock_guard<std::mutex> Guard(InstallLock);
  if (InstalledSig.load(std::memory_order_relaxed) == SuspendSig)
    return SuspendSig;
  struct sigaction SuspendAction;
  std::memset(&SuspendAction, 0, sizeof(SuspendAction));
  SuspendAction.sa_handler = suspendHandler;
  // Block everything while the handler runs except the signals whose
  // delivery must never wait (crash reporting); the park itself uses
  // ParkMask, which additionally admits the resume signal.
  sigfillset(&SuspendAction.sa_mask);
  keepFatalSignalsDeliverable(&SuspendAction.sa_mask);
  SuspendAction.sa_flags = SA_RESTART;
  if (::sigaction(SuspendSig, &SuspendAction, nullptr) != 0)
    return -1;
  struct sigaction ResumeAction;
  std::memset(&ResumeAction, 0, sizeof(ResumeAction));
  ResumeAction.sa_handler = resumeHandler;
  ::sigemptyset(&ResumeAction.sa_mask);
  ResumeAction.sa_flags = SA_RESTART;
  if (::sigaction(SuspendSig + 1, &ResumeAction, nullptr) != 0)
    return -1;
  // Build the new park mask off to the side and publish it atomically;
  // a thread parking under the previous signal keeps a complete mask.
  const unsigned NextMask =
      ParkMaskIndex.load(std::memory_order_relaxed) ^ 1u;
  sigfillset(&ParkMasks[NextMask]);
  sigdelset(&ParkMasks[NextMask], SuspendSig + 1);
  keepFatalSignalsDeliverable(&ParkMasks[NextMask]);
  ParkMaskIndex.store(NextMask, std::memory_order_release);
  if (!AckSemReady) {
    sem_init(&AckSem, 0, 0);
    AckSemReady = true;
  }
  InstalledSig.store(SuspendSig, std::memory_order_release);
  return SuspendSig;
}

int installedSignal() {
  return InstalledSig.load(std::memory_order_relaxed);
}

void setCurrentSlot(SuspendSlot *Slot) { CurrentSlot = Slot; }

void unblockInCurrentThread(int SuspendSig) {
  if (SuspendSig < 1)
    return;
  sigset_t Set;
  sigemptyset(&Set);
  sigaddset(&Set, SuspendSig);
  sigaddset(&Set, SuspendSig + 1);
  pthread_sigmask(SIG_UNBLOCK, &Set, nullptr);
}

bool sendSuspend(SuspendSlot &Slot, int SuspendSig) {
  Slot.Pending.store(true, std::memory_order_release);
  Slot.SignalAttempts.fetch_add(1, std::memory_order_relaxed);
  return pthread_kill(Slot.Handle, SuspendSig) == 0;
}

unsigned drainAcks() {
  if (!AckSemReady)
    return 0;
  unsigned Drained = 0;
  while (sem_trywait(&AckSem) == 0)
    ++Drained;
  return Drained;
}

void resumeThread(SuspendSlot &Slot) {
  Slot.Pending.store(false, std::memory_order_release);
  const int Suspend = InstalledSig.load(std::memory_order_acquire);
  if (Suspend < 0 || Slot.State == nullptr)
    return;
  // Real-time signals queue, so the first resume normally lands; the
  // bounded backoff loop covers a thread the scheduler is slow to run
  // (and gives up rather than hanging resumeTheWorld on a thread the
  // OS will not deliver to).
  uint64_t SleepNanos = 1000;
  for (int Attempt = 0; Attempt != 64; ++Attempt) {
    if (Slot.State->load(std::memory_order_acquire) != SignalSuspendedState)
      return;
    pthread_kill(Slot.Handle, Suspend + 1);
    struct timespec Ts = {0, static_cast<long>(SleepNanos)};
    nanosleep(&Ts, nullptr);
    if (SleepNanos < 1000000)
      SleepNanos *= 2;
  }
}

SuspendCriticalScope::SuspendCriticalScope() {
  CriticalDepth = CriticalDepth + 1;
}

SuspendCriticalScope::~SuspendCriticalScope() {
  CriticalDepth = CriticalDepth - 1;
  if (CriticalDepth == 0 && DeferredSuspend != 0) {
    DeferredSuspend = 0;
    // A suspension was deferred while this section was live: re-raise
    // the signal now that the lock is released, so the handler parks
    // the thread at a point the initiator can tolerate.  Gated on
    // Pending — if the handshake already gave up (timeout) or a
    // retried delivery parked us at depth zero above, the request is
    // stale and the raise would be a no-op anyway.
    const int Sig = InstalledSig.load(std::memory_order_acquire);
    SuspendSlot *Slot = CurrentSlot;
    if (Sig > 0 && Slot != nullptr &&
        Slot->Pending.load(std::memory_order_acquire))
      ::raise(Sig);
  }
}

void reinitAfterFork() {
  std::lock_guard<std::mutex> Guard(InstallLock);
  if (!AckSemReady)
    return;
  // The child inherits the semaphore memory, possibly with acks from
  // threads that no longer exist; reset it to a clean zero.
  while (sem_trywait(&AckSem) == 0) {
  }
}

} // namespace suspend
} // namespace cgc
