//===- support/Random.h - Deterministic random numbers ---------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random generation.  Every experiment in the
/// reproduction is seeded, so that Table 1-style retention percentages
/// are reproducible run to run; the paper's own numbers were *not*
/// reproducible ("polluted with UNIX environment variables ... register
/// values left over from kernel calls"), which we model explicitly by
/// drawing that pollution from seeded generators instead.
///
/// The core generator is xoshiro256**, seeded via SplitMix64 so that
/// small consecutive seeds give unrelated streams.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_SUPPORT_RANDOM_H
#define CGC_SUPPORT_RANDOM_H

#include "support/Assert.h"
#include <cstdint>
#include <vector>

namespace cgc {

/// SplitMix64: used to expand a 64-bit seed into generator state.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

/// xoshiro256**: fast, high-quality, and deterministic across platforms.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x5eed5eed5eed5eedULL) { reseed(Seed); }

  /// Re-initializes the stream from \p Seed.
  void reseed(uint64_t Seed) {
    SplitMix64 Init(Seed);
    for (uint64_t &Word : State)
      Word = Init.next();
  }

  /// \returns the next 64 uniformly random bits.
  uint64_t next64() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// \returns the next 32 uniformly random bits.
  uint32_t next32() { return static_cast<uint32_t>(next64() >> 32); }

  /// \returns a uniform value in [0, Bound); \p Bound must be nonzero.
  /// Uses Lemire's multiply-shift rejection method.
  uint64_t nextBelow(uint64_t Bound);

  /// \returns a uniform value in [Lo, Hi] inclusive.
  uint64_t nextInRange(uint64_t Lo, uint64_t Hi) {
    CGC_ASSERT(Lo <= Hi, "nextInRange: empty range");
    return Lo + nextBelow(Hi - Lo + 1);
  }

  /// \returns true with probability \p Probability (clamped to [0,1]).
  bool nextBool(double Probability);

  /// \returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
  }

  /// Fisher-Yates shuffles \p Values in place.
  template <typename T> void shuffle(std::vector<T> &Values) {
    for (size_t I = Values.size(); I > 1; --I) {
      size_t J = static_cast<size_t>(nextBelow(I));
      std::swap(Values[I - 1], Values[J]);
    }
  }

  /// Picks a uniformly random element index of a nonempty container.
  size_t pickIndex(size_t Size) {
    CGC_ASSERT(Size > 0, "pickIndex on empty container");
    return static_cast<size_t>(nextBelow(Size));
  }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace cgc

#endif // CGC_SUPPORT_RANDOM_H
