//===- support/Statistics.h - Running stats and table output ---*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small statistics helpers used by the experiment harnesses: a running
/// mean/min/max/stddev accumulator, a power-of-two histogram, and a
/// fixed-width text table printer that formats benchmark output in the
/// shape of the paper's tables.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_SUPPORT_STATISTICS_H
#define CGC_SUPPORT_STATISTICS_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace cgc {

/// Accumulates samples and reports mean/min/max/stddev without storing
/// the sample list (Welford's algorithm).
class RunningStat {
public:
  void addSample(double Value);

  size_t sampleCount() const { return Count; }
  double mean() const { return Count == 0 ? 0.0 : Mean; }
  double minimum() const { return Count == 0 ? 0.0 : Min; }
  double maximum() const { return Count == 0 ? 0.0 : Max; }

  /// Sample standard deviation; zero with fewer than two samples.
  double stddev() const;

  /// Merges another accumulator into this one.
  void merge(const RunningStat &Other);

private:
  size_t Count = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// Histogram over power-of-two buckets: bucket B counts values in
/// [2^B, 2^(B+1)), with bucket 0 also covering zero.
class Log2Histogram {
public:
  void addSample(uint64_t Value);
  size_t bucketCount() const { return Buckets.size(); }
  uint64_t bucketValue(size_t Bucket) const {
    return Bucket < Buckets.size() ? Buckets[Bucket] : 0;
  }
  uint64_t totalSamples() const { return Total; }

  /// Renders one line per nonempty bucket into \p Out.
  void print(std::FILE *Out, const char *Label) const;

private:
  std::vector<uint64_t> Buckets;
  uint64_t Total = 0;
};

/// Fixed-width text tables in the style of the paper's Table 1.
///
/// Usage:
/// \code
///   TablePrinter T({"Machine", "Optimized?", "No Blacklisting", ...});
///   T.addRow({"SPARC(static)", "no", "79-79.5%", "0-.5%"});
///   T.print(stdout);
/// \endcode
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> Headers);

  void addRow(std::vector<std::string> Cells);

  /// Writes the table with a header rule to \p Out.
  void print(std::FILE *Out) const;

  /// Formats a double as a percentage string like "12.5%".
  static std::string percent(double Fraction, int Decimals = 1);

  /// Formats a byte count with a KiB/MiB suffix.
  static std::string bytes(uint64_t NumBytes);

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace cgc

#endif // CGC_SUPPORT_STATISTICS_H
