//===- support/BitVector.h - Dynamic bit vector ----------------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense bit vector.  Mark bitmaps, page blacklists, and page-occupancy
/// maps are all bit vectors indexed by object or page number, so this
/// class provides the scan primitives those clients need: population
/// count, find-first-set/unset in a range, and whole-range clear.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_SUPPORT_BITVECTOR_H
#define CGC_SUPPORT_BITVECTOR_H

#include "support/Assert.h"
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cgc {

class BitVector {
public:
  static constexpr size_t Npos = static_cast<size_t>(-1);

  BitVector() = default;
  explicit BitVector(size_t NumBits, bool Initial = false) {
    resize(NumBits, Initial);
  }

  size_t size() const { return NumBits; }
  bool empty() const { return NumBits == 0; }

  /// Grows or shrinks to \p NewSize bits; new bits take value \p Value.
  void resize(size_t NewSize, bool Value = false);

  bool test(size_t Index) const {
    CGC_ASSERT(Index < NumBits, "BitVector::test out of range");
    return (Words[Index / BitsPerWord] >> (Index % BitsPerWord)) & 1;
  }

  void set(size_t Index) {
    CGC_ASSERT(Index < NumBits, "BitVector::set out of range");
    Words[Index / BitsPerWord] |= uint64_t(1) << (Index % BitsPerWord);
  }

  void reset(size_t Index) {
    CGC_ASSERT(Index < NumBits, "BitVector::reset out of range");
    Words[Index / BitsPerWord] &= ~(uint64_t(1) << (Index % BitsPerWord));
  }

  /// Sets bit \p Index and returns its previous value.  The mark loop
  /// uses this to combine the "already marked?" test with marking.
  bool testAndSet(size_t Index) {
    CGC_ASSERT(Index < NumBits, "BitVector::testAndSet out of range");
    uint64_t &Word = Words[Index / BitsPerWord];
    uint64_t Mask = uint64_t(1) << (Index % BitsPerWord);
    bool Old = (Word & Mask) != 0;
    Word |= Mask;
    return Old;
  }

  /// Atomic testAndSet: safe against concurrent testAndSetAtomic calls
  /// on any bit of this vector.  Parallel mark workers race to claim
  /// objects through this; exactly one caller sees false per bit.  Must
  /// not run concurrently with the non-atomic mutators.
  bool testAndSetAtomic(size_t Index) {
    CGC_ASSERT(Index < NumBits, "BitVector::testAndSetAtomic out of range");
    uint64_t Mask = uint64_t(1) << (Index % BitsPerWord);
    uint64_t Old = __atomic_fetch_or(&Words[Index / BitsPerWord], Mask,
                                     __ATOMIC_ACQ_REL);
    return (Old & Mask) != 0;
  }

  /// Clears every bit (size unchanged).
  void clearAll();

  /// Sets every bit (size unchanged).
  void setAll();

  /// \returns the number of set bits.
  size_t count() const;

  /// \returns the number of set bits in [Begin, End).
  size_t countInRange(size_t Begin, size_t End) const;

  /// \returns the index of the first set bit at or after \p From,
  /// or Npos if none.
  size_t findFirstSet(size_t From = 0) const;

  /// \returns the index of the first clear bit at or after \p From,
  /// or Npos if none.
  size_t findFirstUnset(size_t From = 0) const;

  /// \returns true if any bit in [Begin, End) is set.  Page allocation
  /// uses this to reject runs that overlap blacklisted pages.
  bool anyInRange(size_t Begin, size_t End) const;

  /// Sets all bits in [Begin, End).
  void setRange(size_t Begin, size_t End);

  /// Clears all bits in [Begin, End).
  void resetRange(size_t Begin, size_t End);

  /// Bitwise AND with \p Other (sizes must match).  Blacklist aging
  /// intersects "blacklisted" with "seen this collection".
  void andWith(const BitVector &Other);

  /// Bitwise OR with \p Other (sizes must match).
  void orWith(const BitVector &Other);

  bool operator==(const BitVector &Other) const {
    return NumBits == Other.NumBits && Words == Other.Words;
  }

private:
  static constexpr size_t BitsPerWord = 64;

  /// Zeroes the unused high bits of the last word so count() and the
  /// find operations never see stale bits.
  void clearUnusedBits();

  std::vector<uint64_t> Words;
  size_t NumBits = 0;
};

} // namespace cgc

#endif // CGC_SUPPORT_BITVECTOR_H
