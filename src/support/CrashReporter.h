//===- support/CrashReporter.h - Async-signal-safe post-mortems -*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A crash reporter that can run inside a SIGSEGV/SIGABRT handler and
/// still tell you what the collector was doing.  Every collector keeps
/// a GcCrashState — a POD of relaxed-atomic mirrors of its phase, heap
/// summary, resilience counters, and an EventRing of its last events —
/// registered in a process-global lock-free table.  The dump walks the
/// table and formats each state with hand-rolled integer formatters
/// into a stack buffer, emitting only write(2) calls: no malloc, no
/// stdio, no locks, no unbounded recursion.
///
/// Three entry points:
///   * crash::install()   — sigaction handlers for SIGSEGV and SIGABRT
///                          that dump to stderr, restore the previous
///                          disposition, and re-raise;
///   * crash::dump(fd)    — the same report, on demand, to any fd
///                          (exposed as cgc_dump_crash_report);
///   * crash::registerState / unregisterState — collector lifecycle.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_SUPPORT_CRASHREPORTER_H
#define CGC_SUPPORT_CRASHREPORTER_H

#include "support/EventRing.h"
#include <atomic>
#include <cstdint>

namespace cgc {

/// Per-collector crash-visible state.  Writers are the collector's
/// ordinary (non-signal) code paths; the only reader that matters is
/// the signal handler, so every field is a relaxed atomic and the
/// struct owns no heap memory.
struct GcCrashState {
  /// Collector::uniqueId(); 0 marks a free registry slot.
  std::atomic<uint64_t> CollectorId{0};
  /// Current pipeline phase as int(GcPhase), or -1 outside collection.
  std::atomic<int32_t> Phase{-1};
  std::atomic<uint64_t> CollectionIndex{0};
  /// Heap summary, refreshed at every collection boundary.
  std::atomic<uint64_t> LiveBytes{0};
  std::atomic<uint64_t> CommittedBytes{0};
  std::atomic<uint64_t> BlacklistedPages{0};
  /// Last cycle's heap-scan mix, indexed by DescriptorClass
  /// (0 conservative, 1 precise, 2 pointer-free — the array size is a
  /// literal so this header stays free of heap-layer includes): words
  /// examined and candidate pointers considered.
  std::atomic<uint64_t> ScanWordsByClass[3]{};
  std::atomic<uint64_t> ScanCandidatesByClass[3]{};
  /// Resilience counters (subset of GcResilienceStats).
  std::atomic<uint64_t> HeapExhaustedCollections{0};
  std::atomic<uint64_t> EmergencyCollections{0};
  std::atomic<uint64_t> OomEvents{0};
  std::atomic<uint64_t> WarningsIssued{0};
  /// Sentinel escalation level (0 = calm) and incidents raised.
  std::atomic<uint64_t> SentinelLevel{0};
  std::atomic<uint64_t> SentinelIncidents{0};
  /// Guarded-heap mode (GcConfig::DebugGuards): 1 when active.  The
  /// kind/site pointers are string literals and interned site strings
  /// (stable for the collector's lifetime), so the signal handler can
  /// print them without touching collector memory management.
  std::atomic<uint64_t> GuardedMode{0};
  std::atomic<uint64_t> GuardViolations{0};
  /// Thread layer: registered mutators right now, stop-the-world
  /// handshakes completed, and the heap's outstanding thread-cache
  /// reservation debt (slots cached or handed out lock-free).  All zero
  /// in single-mutator mode, and the dump omits the line.
  std::atomic<uint64_t> RegisteredThreads{0};
  std::atomic<uint64_t> Handshakes{0};
  std::atomic<uint64_t> CacheSlotDebt{0};
  /// Stop-the-world hardening: threads preemptively suspended by the
  /// watchdog's reserved signal, handshakes that hit the final timeout
  /// (abandoned collections), and the slowest completed time-to-stop.
  std::atomic<uint64_t> SignalSuspensions{0};
  std::atomic<uint64_t> HandshakeTimeouts{0};
  std::atomic<uint64_t> MaxStopNanos{0};
  std::atomic<uint64_t> QuarantineDepth{0};
  std::atomic<uint64_t> LastGuardSeqno{0};
  std::atomic<const char *> LastGuardKind{nullptr};
  std::atomic<const char *> LastGuardSite{nullptr};
  /// The last Capacity events, crash-readable.
  EventRing Events;
};

namespace crash {

/// Registry capacity; registering more live collectors than this is
/// legal — the overflow simply isn't crash-visible.
inline constexpr unsigned MaxTrackedCollectors = 32;

/// Adds \p State to the crash registry.  \returns false when the
/// registry is full (the collector still works; it just won't appear
/// in dumps).
bool registerState(GcCrashState *State);

/// Removes \p State; safe to call for a state that never registered.
void unregisterState(GcCrashState *State);

/// Installs SIGSEGV/SIGABRT handlers (idempotent; first call wins).
/// On signal: dump to stderr, restore the previous disposition, and
/// re-raise so the process still dies with the original signal.
void install();

/// Writes the full crash report to \p fd.  Async-signal-safe; callable
/// at any time, not just from handlers.  \p Signal is included in the
/// header when >= 0.
void dump(int Fd, int Signal = -1);

/// Declares \p Sig (the collector's reserved suspend signal) as one the
/// crash handlers must keep blocked while dumping, so a suspend request
/// landing mid-dump cannot interleave with the report or deadlock on
/// the dump's write loop.  Re-applies the handler registration when
/// install() already ran, preserving the saved previous dispositions.
void setReservedSignal(int Sig);

/// Child-side fork cleanup: clears the in-progress dump latch and
/// re-applies the handler registration (no-op when install() never
/// ran), so a crash in the child still produces a report.
void reinstallAfterFork();

} // namespace crash

} // namespace cgc

#endif // CGC_SUPPORT_CRASHREPORTER_H
