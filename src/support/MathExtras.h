//===- support/MathExtras.h - Small integer/address helpers ----*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Alignment and power-of-two arithmetic used by the page-level heap and
/// by the conservative scanner's address filters.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_SUPPORT_MATHEXTRAS_H
#define CGC_SUPPORT_MATHEXTRAS_H

#include "support/Assert.h"
#include <bit>
#include <cstddef>
#include <cstdint>

namespace cgc {

/// \returns true if \p Value is a power of two (zero is not).
constexpr bool isPowerOf2(uint64_t Value) {
  return Value != 0 && (Value & (Value - 1)) == 0;
}

/// \returns \p Value rounded up to the next multiple of \p Align.
/// \p Align must be a power of two.
constexpr uint64_t alignTo(uint64_t Value, uint64_t Align) {
  return (Value + Align - 1) & ~(Align - 1);
}

/// \returns \p Value rounded down to a multiple of \p Align (power of two).
constexpr uint64_t alignDown(uint64_t Value, uint64_t Align) {
  return Value & ~(Align - 1);
}

/// \returns true if \p Value is a multiple of power-of-two \p Align.
constexpr bool isAligned(uint64_t Value, uint64_t Align) {
  return (Value & (Align - 1)) == 0;
}

/// \returns the number of trailing zero bits of \p Value; 64 for zero.
constexpr unsigned countTrailingZeros(uint64_t Value) {
  return Value == 0 ? 64 : static_cast<unsigned>(std::countr_zero(Value));
}

/// \returns floor(log2(Value)); \p Value must be nonzero.
constexpr unsigned log2Floor(uint64_t Value) {
  return 63 - static_cast<unsigned>(std::countl_zero(Value));
}

/// \returns ceil(log2(Value)); \p Value must be nonzero.
constexpr unsigned log2Ceil(uint64_t Value) {
  return Value <= 1 ? 0 : log2Floor(Value - 1) + 1;
}

/// \returns ceil(Num / Den) for nonzero \p Den.
constexpr uint64_t divideCeil(uint64_t Num, uint64_t Den) {
  return (Num + Den - 1) / Den;
}

/// Saturating subtraction: max(A - B, 0) for unsigned operands.
constexpr uint64_t saturatingSub(uint64_t A, uint64_t B) {
  return A > B ? A - B : 0;
}

} // namespace cgc

#endif // CGC_SUPPORT_MATHEXTRAS_H
