//===- support/CrashReporter.cpp - Async-signal-safe post-mortems ---------===//

#include "support/CrashReporter.h"
#include "core/GcPhase.h"
#include "support/FaultInjection.h"
#include <csignal>
#include <cstring>
#include <unistd.h>

using namespace cgc;

namespace {

//===----------------------------------------------------------------------===//
// Async-signal-safe formatting
//===----------------------------------------------------------------------===//
// snprintf is not on the POSIX async-signal-safe list (it may take
// locale locks or allocate), so the report is assembled with these
// write-only helpers into a caller-owned buffer flushed via write(2).

struct LineBuffer {
  static constexpr size_t Size = 512;
  char Data[Size];
  size_t Len = 0;

  void append(const char *Text) {
    while (*Text && Len + 1 < Size)
      Data[Len++] = *Text++;
  }

  void appendU64(uint64_t Value) {
    char Digits[20];
    unsigned N = 0;
    do {
      Digits[N++] = static_cast<char>('0' + Value % 10);
      Value /= 10;
    } while (Value != 0);
    while (N != 0 && Len + 1 < Size)
      Data[Len++] = Digits[--N];
  }

  void flush(int Fd) {
    if (Len == 0)
      return;
    // Partial writes and EINTR: keep going; a truncated report still
    // beats none, and the handler must never loop forever.
    size_t Off = 0;
    for (unsigned Attempts = 0; Off < Len && Attempts < 16; ++Attempts) {
      ssize_t Wrote = ::write(Fd, Data + Off, Len - Off);
      if (Wrote <= 0)
        break;
      Off += static_cast<size_t>(Wrote);
    }
    Len = 0;
  }
};

const char *phaseNameOrNone(int Phase) {
  if (Phase < 0 || Phase >= static_cast<int>(NumGcPhases))
    return "none";
  return gcPhaseName(static_cast<GcPhase>(Phase));
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

std::atomic<GcCrashState *> Registry[crash::MaxTrackedCollectors];

//===----------------------------------------------------------------------===//
// Signal handling
//===----------------------------------------------------------------------===//

std::atomic<bool> Installed{false};
/// Re-entry gate: a fault inside the dump must not recurse.
std::atomic<bool> Dumping{false};
/// The collector's reserved suspend signal (and its resume companion,
/// Sig + 1), kept blocked while a crash handler dumps so a concurrent
/// stop-the-world cannot interleave with the report.  -1 when none.
std::atomic<int> ReservedSignal{-1};
struct sigaction PreviousSegv;
struct sigaction PreviousAbrt;

void restoreAndReraise(int Signal) {
  const struct sigaction *Previous =
      Signal == SIGSEGV ? &PreviousSegv : &PreviousAbrt;
  ::sigaction(Signal, Previous, nullptr);
  ::raise(Signal);
}

void handleFatalSignal(int Signal) {
  if (!Dumping.exchange(true, std::memory_order_relaxed))
    crash::dump(STDERR_FILENO, Signal);
  restoreAndReraise(Signal);
}

/// (Re-)applies the SIGSEGV/SIGABRT registrations with the current
/// reserved-signal mask.  SavePrevious only on the very first install:
/// later re-applies (reserved-signal updates, fork children) must not
/// clobber the saved chain with our own handler.
void applyHandlers(bool SavePrevious) {
  struct sigaction Action;
  std::memset(&Action, 0, sizeof(Action));
  Action.sa_handler = handleFatalSignal;
  ::sigemptyset(&Action.sa_mask);
  int Reserved = ReservedSignal.load(std::memory_order_relaxed);
  if (Reserved > 0) {
    ::sigaddset(&Action.sa_mask, Reserved);
    ::sigaddset(&Action.sa_mask, Reserved + 1);
  }
  // No SA_RESETHAND: the handler restores the previous disposition
  // itself so chained handlers (gtest death tests, sanitizers) still
  // run after the report.  A crash landing inside the suspend handler
  // follows the same chain: dump, restore, re-raise.
  ::sigaction(SIGSEGV, &Action, SavePrevious ? &PreviousSegv : nullptr);
  ::sigaction(SIGABRT, &Action, SavePrevious ? &PreviousAbrt : nullptr);
}

} // namespace

namespace cgc::crash {

bool registerState(GcCrashState *State) {
  for (unsigned I = 0; I != MaxTrackedCollectors; ++I) {
    GcCrashState *Expected = nullptr;
    if (Registry[I].compare_exchange_strong(Expected, State,
                                            std::memory_order_acq_rel))
      return true;
  }
  return false;
}

void unregisterState(GcCrashState *State) {
  for (unsigned I = 0; I != MaxTrackedCollectors; ++I) {
    GcCrashState *Expected = State;
    if (Registry[I].compare_exchange_strong(Expected, nullptr,
                                            std::memory_order_acq_rel))
      return;
  }
}

void install() {
  if (Installed.exchange(true, std::memory_order_acq_rel))
    return;
  applyHandlers(/*SavePrevious=*/true);
}

void setReservedSignal(int Sig) {
  ReservedSignal.store(Sig, std::memory_order_relaxed);
  if (Installed.load(std::memory_order_acquire))
    applyHandlers(/*SavePrevious=*/false);
}

void reinstallAfterFork() {
  // A fork during a dump leaves the latch set in the child; clear it so
  // the child's first crash still reports.
  Dumping.store(false, std::memory_order_relaxed);
  if (Installed.load(std::memory_order_acquire))
    applyHandlers(/*SavePrevious=*/false);
}

void dump(int Fd, int Signal) {
  LineBuffer Line;
  Line.append("=== cgc crash report");
  if (Signal >= 0) {
    Line.append(" (signal ");
    Line.appendU64(static_cast<uint64_t>(Signal));
    Line.append(")");
  }
  Line.append(" ===\n");
  Line.flush(Fd);

  // Process-global fault-injection state first: armed sites explain
  // "why was the heap exhausted" before any per-collector numbers.
  if (FaultInjectionCompiled) {
    Line.append("fault sites:");
    bool Any = false;
    for (unsigned I = 0; I != NumFaultSites; ++I) {
      FaultSite Site = static_cast<FaultSite>(I);
      uint64_t Fired = FaultInjector::instance().firedRelaxed(Site);
      bool Armed = FaultInjector::instance().armedRelaxed(Site);
      if (!Armed && Fired == 0)
        continue;
      Any = true;
      Line.append(" ");
      Line.append(faultSiteName(Site));
      Line.append(Armed ? "(armed," : "(disarmed,");
      Line.append("fired=");
      Line.appendU64(Fired);
      Line.append(")");
    }
    if (!Any)
      Line.append(" none armed or fired");
    Line.append("\n");
    Line.flush(Fd);
  }

  for (unsigned I = 0; I != MaxTrackedCollectors; ++I) {
    GcCrashState *State = Registry[I].load(std::memory_order_acquire);
    if (!State)
      continue;
    uint64_t Id = State->CollectorId.load(std::memory_order_relaxed);
    if (Id == 0)
      continue;

    Line.append("collector #");
    Line.appendU64(Id);
    Line.append(": phase=");
    Line.append(
        phaseNameOrNone(State->Phase.load(std::memory_order_relaxed)));
    Line.append(" collection=");
    Line.appendU64(State->CollectionIndex.load(std::memory_order_relaxed));
    Line.append("\n");
    Line.flush(Fd);

    Line.append("  heap: live-bytes=");
    Line.appendU64(State->LiveBytes.load(std::memory_order_relaxed));
    Line.append(" committed-bytes=");
    Line.appendU64(State->CommittedBytes.load(std::memory_order_relaxed));
    Line.append(" blacklisted-pages=");
    Line.appendU64(
        State->BlacklistedPages.load(std::memory_order_relaxed));
    Line.append("\n");
    Line.flush(Fd);

    // Heap-scan mix of the last cycle: words/candidates per descriptor
    // class.  All zeros before the first collection; pointer-free stays
    // zero by construction.
    static const char *const ClassTags[3] = {" conservative=", " precise=",
                                             " pointer-free="};
    Line.append("  scan-mix:");
    for (unsigned C = 0; C != 3; ++C) {
      Line.append(ClassTags[C]);
      Line.appendU64(
          State->ScanWordsByClass[C].load(std::memory_order_relaxed));
      Line.append("/");
      Line.appendU64(
          State->ScanCandidatesByClass[C].load(std::memory_order_relaxed));
    }
    Line.append("\n");
    Line.flush(Fd);

    Line.append("  resilience: heap-exhausted=");
    Line.appendU64(
        State->HeapExhaustedCollections.load(std::memory_order_relaxed));
    Line.append(" emergency=");
    Line.appendU64(
        State->EmergencyCollections.load(std::memory_order_relaxed));
    Line.append(" oom=");
    Line.appendU64(State->OomEvents.load(std::memory_order_relaxed));
    Line.append(" warnings=");
    Line.appendU64(State->WarningsIssued.load(std::memory_order_relaxed));
    Line.append("\n");
    Line.flush(Fd);

    uint64_t Registered =
        State->RegisteredThreads.load(std::memory_order_relaxed);
    uint64_t Handshakes = State->Handshakes.load(std::memory_order_relaxed);
    uint64_t CacheDebt = State->CacheSlotDebt.load(std::memory_order_relaxed);
    if (Registered != 0 || Handshakes != 0 || CacheDebt != 0) {
      Line.append("  threads: registered=");
      Line.appendU64(Registered);
      Line.append(" handshakes=");
      Line.appendU64(Handshakes);
      Line.append(" cache-slot-debt=");
      Line.appendU64(CacheDebt);
      Line.append(" signal-suspends=");
      Line.appendU64(
          State->SignalSuspensions.load(std::memory_order_relaxed));
      Line.append(" stalls=");
      Line.appendU64(
          State->HandshakeTimeouts.load(std::memory_order_relaxed));
      Line.append(" max-stop-us=");
      Line.appendU64(State->MaxStopNanos.load(std::memory_order_relaxed) /
                     1000);
      Line.append("\n");
      Line.flush(Fd);
    }

    Line.append("  sentinel: level=");
    Line.appendU64(State->SentinelLevel.load(std::memory_order_relaxed));
    Line.append(" incidents=");
    Line.appendU64(
        State->SentinelIncidents.load(std::memory_order_relaxed));
    Line.append("\n");
    Line.flush(Fd);

    if (State->GuardedMode.load(std::memory_order_relaxed) != 0) {
      Line.append("  guards: violations=");
      Line.appendU64(
          State->GuardViolations.load(std::memory_order_relaxed));
      Line.append(" quarantine-depth=");
      Line.appendU64(
          State->QuarantineDepth.load(std::memory_order_relaxed));
      Line.append("\n");
      Line.flush(Fd);
      const char *Kind =
          State->LastGuardKind.load(std::memory_order_relaxed);
      if (Kind) {
        const char *Site =
            State->LastGuardSite.load(std::memory_order_relaxed);
        Line.append("  last-violation: ");
        Line.append(Kind);
        Line.append(" seqno=");
        Line.appendU64(
            State->LastGuardSeqno.load(std::memory_order_relaxed));
        Line.append(" site=");
        Line.append(Site ? Site : "(untagged)");
        Line.append("\n");
        Line.flush(Fd);
      }
    }

    GcEventRecord Records[EventRing::Capacity];
    unsigned Count = State->Events.snapshot(Records, EventRing::Capacity);
    Line.append("  events (last ");
    Line.appendU64(Count);
    Line.append(" of ");
    Line.appendU64(State->Events.pushed());
    Line.append("):\n");
    Line.flush(Fd);
    for (unsigned R = 0; R != Count; ++R) {
      const GcEventRecord &Record = Records[R];
      Line.append("    [");
      Line.appendU64(Record.Sequence);
      Line.append("] ");
      Line.append(gcEventKindName(Record.kind()));
      Line.append(" phase=");
      Line.append(phaseNameOrNone(Record.phase()));
      Line.append(" collection=");
      Line.appendU64(Record.collectionIndex());
      Line.append(" value=");
      Line.appendU64(Record.Value);
      Line.append("\n");
      Line.flush(Fd);
    }
  }

  Line.append("=== end cgc crash report ===\n");
  Line.flush(Fd);
}

} // namespace cgc::crash
