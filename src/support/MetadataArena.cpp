//===- support/MetadataArena.cpp - Sealable metadata storage --------------===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//

#include "support/MetadataArena.h"
#include "support/Assert.h"
#include <csignal>
#include <cstring>
#include <ctime>
#include <mutex>
#include <sys/mman.h>

using namespace cgc;

namespace {

constexpr size_t HostPageSize = 4096;

uint64_t monotonicNanos() {
  struct timespec Ts;
  ::clock_gettime(CLOCK_MONOTONIC, &Ts);
  return static_cast<uint64_t>(Ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(Ts.tv_nsec);
}

size_t roundUpToPages(size_t Bytes) {
  return (Bytes + HostPageSize - 1) & ~(HostPageSize - 1);
}

//===----------------------------------------------------------------------===//
// Global arena registry + pending wild-write ring
//===----------------------------------------------------------------------===//
// Both structures are read from the SIGSEGV sub-handler, so they are
// fixed-size arrays of atomics: registration publishes with release
// stores, the handler reads with acquire loads, and nothing ever
// allocates or locks on the signal path.

constexpr unsigned MaxArenas = 64;
std::atomic<MetadataArena *> ArenaRegistry[MaxArenas];

constexpr unsigned WildRingSlots = 64;
std::atomic<uintptr_t> WildRing[WildRingSlots];
std::atomic<unsigned> WildRingNext{0};

void registerArena(MetadataArena *Arena) {
  for (unsigned I = 0; I != MaxArenas; ++I) {
    MetadataArena *Expected = nullptr;
    if (ArenaRegistry[I].compare_exchange_strong(Expected, Arena,
                                                 std::memory_order_acq_rel))
      return;
  }
  CGC_UNREACHABLE("too many live metadata arenas");
}

void unregisterArena(MetadataArena *Arena) {
  for (unsigned I = 0; I != MaxArenas; ++I) {
    MetadataArena *Expected = Arena;
    if (ArenaRegistry[I].compare_exchange_strong(Expected, nullptr,
                                                 std::memory_order_acq_rel))
      return;
  }
}

MetadataArena *arenaContaining(const void *Addr) {
  for (unsigned I = 0; I != MaxArenas; ++I) {
    MetadataArena *Arena = ArenaRegistry[I].load(std::memory_order_acquire);
    if (Arena && Arena->contains(Addr))
      return Arena;
  }
  return nullptr;
}

//===----------------------------------------------------------------------===//
// SIGSEGV sub-handler
//===----------------------------------------------------------------------===//

std::mutex InstallLock;
bool HandlerInstalled = false;
struct sigaction PreviousSegv;

void handleSegv(int Signal, siginfo_t *Info, void *Context);

/// Hands a fault we do not own to whoever was installed before us.
/// Direct invocation (rather than restore-and-return) avoids the
/// handler ping-pong that restore-based chaining causes when the crash
/// reporter's own restore-and-reraise leads back here.
void chainToPrevious(int Signal, siginfo_t *Info, void *Context) {
  if (PreviousSegv.sa_flags & SA_SIGINFO) {
    if (PreviousSegv.sa_sigaction &&
        PreviousSegv.sa_sigaction != handleSegv) {
      PreviousSegv.sa_sigaction(Signal, Info, Context);
      return;
    }
  } else if (PreviousSegv.sa_handler != SIG_DFL &&
             PreviousSegv.sa_handler != SIG_IGN) {
    PreviousSegv.sa_handler(Signal);
    return;
  }
  // Default (or degenerate) previous disposition: restore it and
  // return; the faulting instruction re-executes and the kernel
  // terminates the process the ordinary way.
  ::sigaction(Signal, &PreviousSegv, nullptr);
}

void handleSegv(int Signal, siginfo_t *Info, void *Context) {
  void *Addr = Info ? Info->si_addr : nullptr;
  MetadataArena *Arena = Addr ? arenaContaining(Addr) : nullptr;
  if (!Arena || !Arena->sealed()) {
    chainToPrevious(Signal, Info, Context);
    return;
  }
  // A wild store hit sealed metadata.  Let it through: unprotect the
  // one page so the retried store succeeds, and queue the address for
  // the collector to attribute, report, and repair at its next entry.
  // The page stays writable until the next seal — the damage is
  // contained by verify-and-repair, not by re-faulting every store.
  uintptr_t Page = reinterpret_cast<uintptr_t>(Addr) & ~(HostPageSize - 1);
  ::mprotect(reinterpret_cast<void *>(Page), HostPageSize,
             PROT_READ | PROT_WRITE);
  unsigned Slot = WildRingNext.fetch_add(1, std::memory_order_relaxed) %
                  WildRingSlots;
  WildRing[Slot].store(reinterpret_cast<uintptr_t>(Addr),
                       std::memory_order_relaxed);
}

} // namespace

//===----------------------------------------------------------------------===//
// MetadataArena
//===----------------------------------------------------------------------===//

MetadataArena::MetadataArena() { registerArena(this); }

MetadataArena::~MetadataArena() {
  unregisterArena(this);
  unsigned N = NumChunks.load(std::memory_order_acquire);
  for (unsigned I = 0; I != N; ++I) {
    uintptr_t Base = Chunks[I].Base.load(std::memory_order_relaxed);
    size_t Size = Chunks[I].Size.load(std::memory_order_relaxed);
    if (Base)
      ::munmap(reinterpret_cast<void *>(Base), Size);
  }
}

unsigned MetadataArena::classFor(size_t Size) {
  size_t Cell = MinCellBytes;
  unsigned Class = 0;
  while (Cell < Size) {
    Cell <<= 1;
    ++Class;
  }
  return Class;
}

size_t MetadataArena::classBytes(unsigned Class) {
  return MinCellBytes << Class;
}

void MetadataArena::addChunk(size_t MinBytes) {
  unsigned Index = NumChunks.load(std::memory_order_relaxed);
  CGC_CHECK(Index < MaxChunks, "metadata arena chunk table exhausted");
  size_t Bytes = MinBytes > ChunkBytes ? roundUpToPages(MinBytes) : ChunkBytes;
  void *Mem = ::mmap(nullptr, Bytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  CGC_CHECK(Mem != MAP_FAILED, "metadata arena mmap failed");
  Chunks[Index].Size.store(Bytes, std::memory_order_relaxed);
  // Publish base last: once the handler can see the chunk it must see
  // its size too.
  Chunks[Index].Base.store(reinterpret_cast<uintptr_t>(Mem),
                           std::memory_order_release);
  NumChunks.store(Index + 1, std::memory_order_release);
  BumpPtr = reinterpret_cast<uintptr_t>(Mem);
  BumpEnd = BumpPtr + Bytes;
}

void *MetadataArena::allocateFromChunks(size_t Size) {
  if (BumpEnd - BumpPtr < Size)
    addChunk(Size);
  void *Result = reinterpret_cast<void *>(BumpPtr);
  BumpPtr += Size;
  return Result;
}

void *MetadataArena::allocate(size_t Size, size_t Align) {
  CGC_ASSERT(!sealed(), "metadata arena allocation while sealed");
  CGC_ASSERT(Align <= MinCellBytes, "over-aligned metadata allocation");
  if (Size == 0)
    Size = 1;
  if (Size > classBytes(NumSizeClasses - 1)) {
    // Oversize: first-fit from the oversize list (free nodes carry
    // their rounded size in the second word), else a dedicated chunk.
    size_t Bytes = roundUpToPages(Size);
    uintptr_t *Prev = reinterpret_cast<uintptr_t *>(&OversizeFree);
    for (uintptr_t Node = OversizeFree; Node;
         Node = *reinterpret_cast<uintptr_t *>(Node)) {
      size_t NodeBytes = reinterpret_cast<uintptr_t *>(Node)[1];
      if (NodeBytes == Bytes) {
        *Prev = *reinterpret_cast<uintptr_t *>(Node);
        return reinterpret_cast<void *>(Node);
      }
      Prev = reinterpret_cast<uintptr_t *>(Node);
    }
    addChunk(Bytes);
    void *Result = reinterpret_cast<void *>(BumpPtr);
    BumpPtr += Bytes;
    return Result;
  }
  unsigned Class = classFor(Size);
  if (FreeNode *Node = FreeLists[Class]) {
    FreeLists[Class] = Node->Next;
    return Node;
  }
  return allocateFromChunks(classBytes(Class));
}

void MetadataArena::deallocate(void *Ptr, size_t Size) {
  if (!Ptr)
    return;
  CGC_ASSERT(!sealed(), "metadata arena deallocation while sealed");
  CGC_ASSERT(contains(Ptr), "foreign pointer returned to metadata arena");
  if (Size == 0)
    Size = 1;
  if (Size > classBytes(NumSizeClasses - 1)) {
    uintptr_t *Node = reinterpret_cast<uintptr_t *>(Ptr);
    Node[0] = OversizeFree;
    Node[1] = roundUpToPages(Size);
    OversizeFree = reinterpret_cast<uintptr_t>(Ptr);
    return;
  }
  unsigned Class = classFor(Size);
  FreeNode *Node = static_cast<FreeNode *>(Ptr);
  Node->Next = FreeLists[Class];
  FreeLists[Class] = Node;
}

void MetadataArena::seal() {
  if (Sealed.exchange(true, std::memory_order_acq_rel))
    return;
  installHandler();
  uint64_t Start = monotonicNanos();
  unsigned N = NumChunks.load(std::memory_order_acquire);
  for (unsigned I = 0; I != N; ++I) {
    uintptr_t Base = Chunks[I].Base.load(std::memory_order_relaxed);
    size_t Size = Chunks[I].Size.load(std::memory_order_relaxed);
    if (Base)
      ::mprotect(reinterpret_cast<void *>(Base), Size, PROT_READ);
  }
  ProtectNanos.fetch_add(monotonicNanos() - Start, std::memory_order_relaxed);
  ProtectTransitions.fetch_add(1, std::memory_order_relaxed);
}

void MetadataArena::unseal() {
  if (!Sealed.exchange(false, std::memory_order_acq_rel))
    return;
  uint64_t Start = monotonicNanos();
  unsigned N = NumChunks.load(std::memory_order_acquire);
  for (unsigned I = 0; I != N; ++I) {
    uintptr_t Base = Chunks[I].Base.load(std::memory_order_relaxed);
    size_t Size = Chunks[I].Size.load(std::memory_order_relaxed);
    if (Base)
      ::mprotect(reinterpret_cast<void *>(Base), Size,
                 PROT_READ | PROT_WRITE);
  }
  ProtectNanos.fetch_add(monotonicNanos() - Start, std::memory_order_relaxed);
  ProtectTransitions.fetch_add(1, std::memory_order_relaxed);
}

bool MetadataArena::contains(const void *Ptr) const {
  uintptr_t Addr = reinterpret_cast<uintptr_t>(Ptr);
  unsigned N = NumChunks.load(std::memory_order_acquire);
  for (unsigned I = 0; I != N; ++I) {
    uintptr_t Base = Chunks[I].Base.load(std::memory_order_acquire);
    if (!Base)
      continue;
    size_t Size = Chunks[I].Size.load(std::memory_order_relaxed);
    if (Addr >= Base && Addr < Base + Size)
      return true;
  }
  return false;
}

unsigned MetadataArena::drainWildWrites(WildWrite *Out, unsigned Max) {
  unsigned Count = 0;
  for (unsigned I = 0; I != WildRingSlots && Count < Max; ++I) {
    uintptr_t Addr = WildRing[I].load(std::memory_order_relaxed);
    if (!Addr || !contains(reinterpret_cast<void *>(Addr)))
      continue;
    // Claim the slot; a concurrent drain from another collector can
    // only claim addresses inside its own arena, so exchange suffices.
    if (WildRing[I].exchange(0, std::memory_order_relaxed) != Addr)
      continue;
    Out[Count++].Address = Addr;
  }
  return Count;
}

void MetadataArena::installHandler() {
  std::lock_guard<std::mutex> Guard(InstallLock);
  // Self-healing install: if someone (the crash reporter re-applying
  // its registrations, a test harness) displaced us, hook back in
  // front and remember them as the new chain target.
  struct sigaction Current;
  if (::sigaction(SIGSEGV, nullptr, &Current) == 0 && HandlerInstalled &&
      (Current.sa_flags & SA_SIGINFO) && Current.sa_sigaction == handleSegv)
    return;
  struct sigaction Action;
  std::memset(&Action, 0, sizeof(Action));
  Action.sa_sigaction = handleSegv;
  Action.sa_flags = SA_SIGINFO | SA_NODEFER;
  ::sigemptyset(&Action.sa_mask);
  ::sigaction(SIGSEGV, &Action, &PreviousSegv);
  HandlerInstalled = true;
}

bool MetadataArena::anyArenaContains(const void *Addr) {
  return arenaContaining(Addr) != nullptr;
}
