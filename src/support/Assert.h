//===- support/Assert.h - Assertions and fatal-error helpers ---*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assertion macros used throughout the collector.  The collector is a
/// runtime system: an invariant violation means heap corruption is
/// imminent, so we always abort with a message rather than limp on.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_SUPPORT_ASSERT_H
#define CGC_SUPPORT_ASSERT_H

#include <cstdio>
#include <cstdlib>

namespace cgc {

/// Prints \p Msg with source location and aborts.  Used for invariant
/// violations that must be fatal even in release builds.
[[noreturn]] inline void fatalError(const char *Msg, const char *File,
                                    int Line) {
  std::fprintf(stderr, "cgc fatal error: %s (%s:%d)\n", Msg, File, Line);
  std::abort();
}

} // namespace cgc

/// Always-on invariant check.  The collector's metadata invariants guard
/// against heap corruption, so they stay enabled in release builds.
#define CGC_CHECK(Cond, Msg)                                                   \
  do {                                                                         \
    if (!(Cond))                                                               \
      ::cgc::fatalError(Msg, __FILE__, __LINE__);                              \
  } while (false)

/// Debug-only assertion for hot paths (mark loop, allocation fast path).
#ifndef NDEBUG
#define CGC_ASSERT(Cond, Msg) CGC_CHECK(Cond, Msg)
#else
#define CGC_ASSERT(Cond, Msg)                                                  \
  do {                                                                         \
  } while (false)
#endif

/// Marks a point in control flow that must be unreachable.
#define CGC_UNREACHABLE(Msg) ::cgc::fatalError(Msg, __FILE__, __LINE__)

#endif // CGC_SUPPORT_ASSERT_H
