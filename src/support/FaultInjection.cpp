//===- support/FaultInjection.cpp - Deterministic fault injection ---------===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"
#include "support/Assert.h"
#include "support/SignalSuspend.h"

namespace cgc {

const char *faultSiteName(FaultSite Site) {
  switch (Site) {
  case FaultSite::ArenaGrow:
    return "arena-grow";
  case FaultSite::PageRunSearch:
    return "page-run-search";
  case FaultSite::WorkerSpawn:
    return "worker-spawn";
  case FaultSite::MarkStackOverflow:
    return "mark-stack-overflow";
  case FaultSite::WedgedMutator:
    return "wedged-mutator";
  case FaultSite::MetadataHeaderFlip:
    return "metadata-header-flip";
  case FaultSite::MetadataFreeListSmash:
    return "metadata-free-list-smash";
  case FaultSite::MetadataPageMapClobber:
    return "metadata-page-map-clobber";
  case FaultSite::MetadataAllocBitFlip:
    return "metadata-alloc-bit-flip";
  }
  CGC_UNREACHABLE("unknown fault site");
}

FaultInjector &FaultInjector::instance() {
  static FaultInjector Injector;
  return Injector;
}

void FaultInjector::arm(FaultSite Site, uint64_t SkipHits,
                        uint64_t FailCount) {
  suspend::SuspendCriticalScope NoSuspend;
  std::lock_guard<std::mutex> Guard(Lock);
  SiteState &S = Sites[static_cast<unsigned>(Site)];
  if (S.Arming == Mode::Disarmed)
    ArmedCount.fetch_add(1, std::memory_order_relaxed);
  S.Arming = Mode::Deterministic;
  S.SkipHits = SkipHits;
  S.FailCount = FailCount;
  ArmedMirror[static_cast<unsigned>(Site)].store(1,
                                                 std::memory_order_relaxed);
}

void FaultInjector::armRandom(FaultSite Site, double Probability,
                              uint64_t Seed) {
  suspend::SuspendCriticalScope NoSuspend;
  std::lock_guard<std::mutex> Guard(Lock);
  SiteState &S = Sites[static_cast<unsigned>(Site)];
  if (S.Arming == Mode::Disarmed)
    ArmedCount.fetch_add(1, std::memory_order_relaxed);
  S.Arming = Mode::Probabilistic;
  S.Probability = Probability;
  S.Stream.reseed(Seed);
  ArmedMirror[static_cast<unsigned>(Site)].store(1,
                                                 std::memory_order_relaxed);
}

void FaultInjector::disarm(FaultSite Site) {
  suspend::SuspendCriticalScope NoSuspend;
  std::lock_guard<std::mutex> Guard(Lock);
  SiteState &S = Sites[static_cast<unsigned>(Site)];
  if (S.Arming != Mode::Disarmed)
    ArmedCount.fetch_sub(1, std::memory_order_relaxed);
  S.Arming = Mode::Disarmed;
  ArmedMirror[static_cast<unsigned>(Site)].store(0,
                                                 std::memory_order_relaxed);
}

void FaultInjector::disarmAll() {
  suspend::SuspendCriticalScope NoSuspend;
  std::lock_guard<std::mutex> Guard(Lock);
  for (SiteState &S : Sites)
    S.Arming = Mode::Disarmed;
  ArmedCount.store(0, std::memory_order_relaxed);
  for (unsigned I = 0; I != NumFaultSites; ++I)
    ArmedMirror[I].store(0, std::memory_order_relaxed);
}

FaultSiteStats FaultInjector::stats(FaultSite Site) const {
  suspend::SuspendCriticalScope NoSuspend;
  std::lock_guard<std::mutex> Guard(Lock);
  return Sites[static_cast<unsigned>(Site)].Stats;
}

void FaultInjector::resetStats() {
  suspend::SuspendCriticalScope NoSuspend;
  std::lock_guard<std::mutex> Guard(Lock);
  for (SiteState &S : Sites)
    S.Stats = FaultSiteStats();
  for (unsigned I = 0; I != NumFaultSites; ++I)
    FiredMirror[I].store(0, std::memory_order_relaxed);
}

bool FaultInjector::shouldFailSlow(FaultSite Site) {
  suspend::SuspendCriticalScope NoSuspend;
  std::lock_guard<std::mutex> Guard(Lock);
  SiteState &S = Sites[static_cast<unsigned>(Site)];
  ++S.Stats.Hits;
  switch (S.Arming) {
  case Mode::Disarmed:
    return false;
  case Mode::Deterministic:
    if (S.SkipHits > 0) {
      --S.SkipHits;
      return false;
    }
    if (S.FailCount == 0)
      return false;
    if (S.FailCount != UINT64_MAX && --S.FailCount == 0) {
      S.Arming = Mode::Disarmed;
      ArmedCount.fetch_sub(1, std::memory_order_relaxed);
      ArmedMirror[static_cast<unsigned>(Site)].store(
          0, std::memory_order_relaxed);
    }
    ++S.Stats.Fired;
    FiredMirror[static_cast<unsigned>(Site)].fetch_add(
        1, std::memory_order_relaxed);
    return true;
  case Mode::Probabilistic:
    if (!S.Stream.nextBool(S.Probability))
      return false;
    ++S.Stats.Fired;
    FiredMirror[static_cast<unsigned>(Site)].fetch_add(
        1, std::memory_order_relaxed);
    return true;
  }
  CGC_UNREACHABLE("unknown fault arming mode");
}

} // namespace cgc
