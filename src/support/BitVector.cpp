//===- support/BitVector.cpp - Dynamic bit vector -------------------------===//

#include "support/BitVector.h"
#include "support/MathExtras.h"
#include <bit>

using namespace cgc;

void BitVector::resize(size_t NewSize, bool Value) {
  size_t OldSize = NumBits;
  size_t NewWords = divideCeil(NewSize, BitsPerWord);
  if (Value && NewSize > OldSize && OldSize % BitsPerWord != 0) {
    // Fill the tail of the current last word before growing.
    size_t WordIdx = OldSize / BitsPerWord;
    uint64_t Mask = ~uint64_t(0) << (OldSize % BitsPerWord);
    Words[WordIdx] |= Mask;
  }
  Words.resize(NewWords, Value ? ~uint64_t(0) : 0);
  NumBits = NewSize;
  clearUnusedBits();
}

void BitVector::clearUnusedBits() {
  if (NumBits % BitsPerWord == 0 || Words.empty())
    return;
  uint64_t Mask = (uint64_t(1) << (NumBits % BitsPerWord)) - 1;
  Words.back() &= Mask;
}

void BitVector::clearAll() {
  for (uint64_t &Word : Words)
    Word = 0;
}

void BitVector::setAll() {
  for (uint64_t &Word : Words)
    Word = ~uint64_t(0);
  clearUnusedBits();
}

size_t BitVector::count() const {
  size_t Total = 0;
  for (uint64_t Word : Words)
    Total += static_cast<size_t>(std::popcount(Word));
  return Total;
}

size_t BitVector::countInRange(size_t Begin, size_t End) const {
  CGC_ASSERT(Begin <= End && End <= NumBits, "countInRange out of range");
  size_t Total = 0;
  for (size_t I = Begin; I < End;) {
    size_t WordIdx = I / BitsPerWord;
    size_t BitIdx = I % BitsPerWord;
    size_t Span = std::min(End - I, BitsPerWord - BitIdx);
    uint64_t Word = Words[WordIdx] >> BitIdx;
    if (Span < BitsPerWord)
      Word &= (uint64_t(1) << Span) - 1;
    Total += static_cast<size_t>(std::popcount(Word));
    I += Span;
  }
  return Total;
}

size_t BitVector::findFirstSet(size_t From) const {
  if (From >= NumBits)
    return Npos;
  size_t WordIdx = From / BitsPerWord;
  uint64_t Word = Words[WordIdx] & (~uint64_t(0) << (From % BitsPerWord));
  while (true) {
    if (Word != 0) {
      size_t Bit = WordIdx * BitsPerWord +
                   static_cast<size_t>(std::countr_zero(Word));
      return Bit < NumBits ? Bit : Npos;
    }
    if (++WordIdx >= Words.size())
      return Npos;
    Word = Words[WordIdx];
  }
}

size_t BitVector::findFirstUnset(size_t From) const {
  if (From >= NumBits)
    return Npos;
  size_t WordIdx = From / BitsPerWord;
  // Invert and mask off bits below From, then search for a set bit.
  uint64_t Word = ~Words[WordIdx] & (~uint64_t(0) << (From % BitsPerWord));
  while (true) {
    if (Word != 0) {
      size_t Bit = WordIdx * BitsPerWord +
                   static_cast<size_t>(std::countr_zero(Word));
      return Bit < NumBits ? Bit : Npos;
    }
    if (++WordIdx >= Words.size())
      return Npos;
    Word = ~Words[WordIdx];
  }
}

bool BitVector::anyInRange(size_t Begin, size_t End) const {
  size_t First = findFirstSet(Begin);
  return First != Npos && First < End;
}

void BitVector::setRange(size_t Begin, size_t End) {
  CGC_ASSERT(Begin <= End && End <= NumBits, "setRange out of range");
  for (size_t I = Begin; I < End;) {
    size_t WordIdx = I / BitsPerWord;
    size_t BitIdx = I % BitsPerWord;
    size_t Span = std::min(End - I, BitsPerWord - BitIdx);
    uint64_t Mask = Span == BitsPerWord ? ~uint64_t(0)
                                        : ((uint64_t(1) << Span) - 1);
    Words[WordIdx] |= Mask << BitIdx;
    I += Span;
  }
}

void BitVector::resetRange(size_t Begin, size_t End) {
  CGC_ASSERT(Begin <= End && End <= NumBits, "resetRange out of range");
  for (size_t I = Begin; I < End;) {
    size_t WordIdx = I / BitsPerWord;
    size_t BitIdx = I % BitsPerWord;
    size_t Span = std::min(End - I, BitsPerWord - BitIdx);
    uint64_t Mask = Span == BitsPerWord ? ~uint64_t(0)
                                        : ((uint64_t(1) << Span) - 1);
    Words[WordIdx] &= ~(Mask << BitIdx);
    I += Span;
  }
}

void BitVector::andWith(const BitVector &Other) {
  CGC_CHECK(NumBits == Other.NumBits, "BitVector size mismatch in andWith");
  for (size_t I = 0, E = Words.size(); I != E; ++I)
    Words[I] &= Other.Words[I];
}

void BitVector::orWith(const BitVector &Other) {
  CGC_CHECK(NumBits == Other.NumBits, "BitVector size mismatch in orWith");
  for (size_t I = 0, E = Words.size(); I != E; ++I)
    Words[I] |= Other.Words[I];
}
