//===- support/Statistics.cpp - Running stats and table output ------------===//

#include "support/Statistics.h"
#include "support/Assert.h"
#include "support/MathExtras.h"
#include <cmath>

using namespace cgc;

void RunningStat::addSample(double Value) {
  if (Count == 0) {
    Min = Max = Value;
  } else {
    Min = std::min(Min, Value);
    Max = std::max(Max, Value);
  }
  ++Count;
  double Delta = Value - Mean;
  Mean += Delta / static_cast<double>(Count);
  M2 += Delta * (Value - Mean);
}

double RunningStat::stddev() const {
  if (Count < 2)
    return 0.0;
  return std::sqrt(M2 / static_cast<double>(Count - 1));
}

void RunningStat::merge(const RunningStat &Other) {
  if (Other.Count == 0)
    return;
  if (Count == 0) {
    *this = Other;
    return;
  }
  double Delta = Other.Mean - Mean;
  size_t Total = Count + Other.Count;
  Mean += Delta * static_cast<double>(Other.Count) /
          static_cast<double>(Total);
  M2 += Other.M2 + Delta * Delta * static_cast<double>(Count) *
                       static_cast<double>(Other.Count) /
                       static_cast<double>(Total);
  Min = std::min(Min, Other.Min);
  Max = std::max(Max, Other.Max);
  Count = Total;
}

void Log2Histogram::addSample(uint64_t Value) {
  size_t Bucket = Value == 0 ? 0 : log2Floor(Value);
  if (Bucket >= Buckets.size())
    Buckets.resize(Bucket + 1, 0);
  ++Buckets[Bucket];
  ++Total;
}

void Log2Histogram::print(std::FILE *Out, const char *Label) const {
  std::fprintf(Out, "%s (%llu samples)\n", Label,
               static_cast<unsigned long long>(Total));
  for (size_t B = 0, E = Buckets.size(); B != E; ++B) {
    if (Buckets[B] == 0)
      continue;
    unsigned long long Lo = B == 0 ? 0 : (1ULL << B);
    unsigned long long Hi = (1ULL << (B + 1)) - 1;
    std::fprintf(Out, "  [%10llu, %10llu]: %llu\n", Lo, Hi,
                 static_cast<unsigned long long>(Buckets[B]));
  }
}

TablePrinter::TablePrinter(std::vector<std::string> TableHeaders)
    : Headers(std::move(TableHeaders)) {}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  CGC_CHECK(Cells.size() == Headers.size(),
            "TablePrinter row width mismatch");
  Rows.push_back(std::move(Cells));
}

void TablePrinter::print(std::FILE *Out) const {
  std::vector<size_t> Widths(Headers.size(), 0);
  for (size_t C = 0; C != Headers.size(); ++C)
    Widths[C] = Headers[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto printRow = [&](const std::vector<std::string> &Cells) {
    for (size_t C = 0; C != Cells.size(); ++C)
      std::fprintf(Out, "%s%-*s", C == 0 ? "| " : " | ",
                   static_cast<int>(Widths[C]), Cells[C].c_str());
    std::fprintf(Out, " |\n");
  };

  printRow(Headers);
  for (size_t C = 0; C != Headers.size(); ++C) {
    std::fprintf(Out, C == 0 ? "|-" : "-|-");
    for (size_t I = 0; I != Widths[C]; ++I)
      std::fputc('-', Out);
  }
  std::fprintf(Out, "-|\n");
  for (const auto &Row : Rows)
    printRow(Row);
}

std::string TablePrinter::percent(double Fraction, int Decimals) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f%%", Decimals,
                Fraction * 100.0);
  return Buffer;
}

std::string TablePrinter::bytes(uint64_t NumBytes) {
  char Buffer[64];
  if (NumBytes >= (1ULL << 20))
    std::snprintf(Buffer, sizeof(Buffer), "%.1f MiB",
                  static_cast<double>(NumBytes) / (1 << 20));
  else if (NumBytes >= (1ULL << 10))
    std::snprintf(Buffer, sizeof(Buffer), "%.1f KiB",
                  static_cast<double>(NumBytes) / (1 << 10));
  else
    std::snprintf(Buffer, sizeof(Buffer), "%llu B",
                  static_cast<unsigned long long>(NumBytes));
  return Buffer;
}
