//===- support/Random.cpp - Deterministic random numbers ------------------===//

#include "support/Random.h"

using namespace cgc;

uint64_t Rng::nextBelow(uint64_t Bound) {
  CGC_ASSERT(Bound != 0, "nextBelow: zero bound");
  // Lemire's method: multiply into a 128-bit product and reject the
  // small biased region at the bottom.
  uint64_t X = next64();
  __uint128_t Product = static_cast<__uint128_t>(X) * Bound;
  uint64_t Low = static_cast<uint64_t>(Product);
  if (Low < Bound) {
    uint64_t Threshold = (0 - Bound) % Bound;
    while (Low < Threshold) {
      X = next64();
      Product = static_cast<__uint128_t>(X) * Bound;
      Low = static_cast<uint64_t>(Product);
    }
  }
  return static_cast<uint64_t>(Product >> 64);
}

bool Rng::nextBool(double Probability) {
  if (Probability <= 0.0)
    return false;
  if (Probability >= 1.0)
    return true;
  return nextDouble() < Probability;
}
