//===- support/FaultInjection.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seedable fault injection for the collector's
/// resource-acquisition sites.  The paper's collector has to stay alive
/// inside a fixed address range under adversarial conditions; this
/// harness lets tests *manufacture* those conditions on demand: a page
/// commit that fails, a free-run search that comes up empty, a worker
/// thread that cannot be spawned, a mark stack that overflows.
///
/// Injection points are expressed as `CGC_INJECT_FAULT(Site)` checks.
/// When the build disables `CGC_FAULT_INJECTION` the macro folds to
/// constant `false` and the sites compile to nothing; when enabled, a
/// disarmed injector costs a single relaxed atomic load on a path that
/// is never hot (every site sits on a slow path that already touches a
/// mutex or spawns a thread).
///
/// Two arming modes, both deterministic:
///  - arm(Site, SkipHits, FailCount): let SkipHits calls through, then
///    fail the next FailCount calls.
///  - armRandom(Site, Probability, Seed): fail each hit with a fixed
///    probability drawn from a seeded xoshiro256** stream, so fuzz runs
///    replay bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_SUPPORT_FAULTINJECTION_H
#define CGC_SUPPORT_FAULTINJECTION_H

#include "support/Random.h"
#include <atomic>
#include <cstdint>
#include <mutex>

namespace cgc {

/// Every place the collector can be told to fail on purpose.
enum class FaultSite : unsigned {
  /// PageAllocator::grow — the arena refuses to commit more pages, as
  /// if the window's commit limit had been reached early.
  ArenaGrow = 0,
  /// PageAllocator free-run search — pretends no run satisfies the
  /// request even if one exists, forcing the grow/collect paths.
  PageRunSearch = 1,
  /// GcWorkerPool thread spawn — std::thread construction fails; the
  /// pool must degrade to fewer workers (ultimately sequential).
  WorkerSpawn = 2,
  /// MarkWorker::push — the mark stack "overflows" and drops the item;
  /// marking must recover by rescanning marked objects to a fixpoint.
  MarkStackOverflow = 3,
  /// ThreadRegistry::parkAtSafepoint — the mutator ignores the
  /// safepoint poll and keeps running, as if wedged in a compute loop;
  /// the handshake watchdog must stop it preemptively.
  WedgedMutator = 4,

  // Metadata-corruption sites (ObjectHeap::injectMetadataFaults, run at
  // collection entry): each one deterministically mutilates live GC
  // metadata the way a wild client store would, so the verifier's
  // detect-repair-retry path can be driven seed-replayably.  They must
  // stay contiguous above the allocation/thread sites — soak_chaos's
  // historical digests draw from the first NumChaosFaultSites only.
  /// BlockDescriptor header bit-flip: the chosen live block's
  /// AllocatedCount has its low bit flipped, so counter and alloc
  /// bitmap disagree.
  MetadataHeaderFlip = 5,
  /// Free-list link smash: the chosen class list's first partial-block
  /// entry is erased, leaving a block with free slots invisible to the
  /// allocator.
  MetadataFreeListSmash = 6,
  /// Page-map entry clobber: the chosen live block's start-page entry
  /// is overwritten with InvalidBlockId, orphaning the block.
  MetadataPageMapClobber = 7,
  /// Alloc-bit flip: a clear, non-pinned alloc bit in the chosen block
  /// is set, so the bitmap claims one more object than the counter.
  MetadataAllocBitFlip = 8,
};

inline constexpr unsigned NumFaultSites = 9;

/// \returns a stable human-readable name for \p Site.
const char *faultSiteName(FaultSite Site);

/// Per-site counters, readable while armed.
struct FaultSiteStats {
  /// Times the site was reached (armed or not, when compiled in).
  uint64_t Hits = 0;
  /// Times the site was forced to fail.
  uint64_t Fired = 0;
};

/// Process-global fault injector.  All state is behind a mutex except
/// the armed-site count, which gates the disarmed fast path with one
/// relaxed load.  Tests arm sites directly or through the C API.
/// Every lock section is a suspend::SuspendCriticalScope: a mutator
/// polling an armed WedgedMutator site is inside this mutex on every
/// safepoint, and the watchdog's preemptive suspension must not park
/// it there — the stop initiator takes the same mutex at each
/// CGC_INJECT_FAULT site mid-collection.
class FaultInjector {
public:
  /// \returns the process-wide injector.
  static FaultInjector &instance();

  /// Arms \p Site deterministically: the next \p SkipHits calls
  /// succeed, the \p FailCount after that fail, then the site disarms
  /// itself.  FailCount of UINT64_MAX means "fail forever".
  void arm(FaultSite Site, uint64_t SkipHits = 0, uint64_t FailCount = 1);

  /// Arms \p Site probabilistically: each hit fails with probability
  /// \p Probability, drawn from a stream seeded with \p Seed.
  void armRandom(FaultSite Site, double Probability, uint64_t Seed);

  /// Disarms \p Site; its counters survive until resetStats().
  void disarm(FaultSite Site);

  /// Disarms every site.
  void disarmAll();

  /// \returns the counters for \p Site.
  FaultSiteStats stats(FaultSite Site) const;

  /// Zeroes every site's counters (leaves arming untouched).
  void resetStats();

  /// Called from CGC_INJECT_FAULT.  \returns true when the site must
  /// fail this time.  Disarmed process: one relaxed load, no locking.
  bool shouldFail(FaultSite Site) {
    if (ArmedCount.load(std::memory_order_relaxed) == 0)
      return false;
    return shouldFailSlow(Site);
  }

  /// Lock-free mirrors of per-site state, readable from a signal
  /// handler (the crash reporter's armed-fault-sites line).  Values may
  /// trail the mutex-guarded truth by one update; never blocks.
  bool armedRelaxed(FaultSite Site) const {
    return ArmedMirror[static_cast<unsigned>(Site)].load(
               std::memory_order_relaxed) != 0;
  }
  uint64_t firedRelaxed(FaultSite Site) const {
    return FiredMirror[static_cast<unsigned>(Site)].load(
        std::memory_order_relaxed);
  }

private:
  enum class Mode { Disarmed, Deterministic, Probabilistic };

  struct SiteState {
    Mode Arming = Mode::Disarmed;
    uint64_t SkipHits = 0;
    uint64_t FailCount = 0;
    double Probability = 0.0;
    Rng Stream;
    FaultSiteStats Stats;
  };

  bool shouldFailSlow(FaultSite Site);

  mutable std::mutex Lock;
  SiteState Sites[NumFaultSites];
  std::atomic<uint64_t> ArmedCount{0};
  /// Signal-handler-readable mirrors; see armedRelaxed/firedRelaxed.
  std::atomic<uint8_t> ArmedMirror[NumFaultSites] = {};
  std::atomic<uint64_t> FiredMirror[NumFaultSites] = {};
};

/// True when the build compiled the injection sites in.  Benchmarks
/// report this so a "with hooks" run is distinguishable from a "hooks
/// compiled out" run in the emitted JSON.
#ifdef CGC_FAULT_INJECTION_ENABLED
inline constexpr bool FaultInjectionCompiled = true;
#else
inline constexpr bool FaultInjectionCompiled = false;
#endif

} // namespace cgc

/// Injection-site check.  Folds to constant false (and the whole
/// `if (CGC_INJECT_FAULT(...))` body to nothing) when the hooks are
/// compiled out.
#ifdef CGC_FAULT_INJECTION_ENABLED
#define CGC_INJECT_FAULT(Site)                                                 \
  (::cgc::FaultInjector::instance().shouldFail(::cgc::FaultSite::Site))
#else
#define CGC_INJECT_FAULT(Site) (false)
#endif

#endif // CGC_SUPPORT_FAULTINJECTION_H
