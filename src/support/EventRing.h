//===- support/EventRing.h - Lock-free ring of recent GC events -*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-capacity ring buffer of the collector's most recent events,
/// designed so a crashing process can still read it: records are
/// pre-formatted fixed-size integer pairs, every access is a relaxed
/// atomic, and nothing ever locks, allocates, or blocks.  The writer is
/// the collector (mutator thread, stop-the-world phases); the reader is
/// the crash reporter's signal handler, which may interrupt the writer
/// mid-push.  A torn record in that window costs one garbled line in a
/// post-mortem dump — never a hang or a second fault, which is the
/// trade the reporter wants.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_SUPPORT_EVENTRING_H
#define CGC_SUPPORT_EVENTRING_H

#include <atomic>
#include <cstdint>

namespace cgc {

/// Event kinds recorded in the ring.  A superset of the observer
/// layer's events: the ring also records sentinel escalations and
/// incidents so a crash dump shows the defensive actions that preceded
/// it.
enum class GcEventKind : unsigned char {
  CollectionBegin = 0,
  PhaseBegin = 1,
  PhaseEnd = 2,
  CollectionEnd = 3,
  EmergencyCollection = 4,
  OutOfMemory = 5,
  Warning = 6,
  HeapVerified = 7,
  SentinelEscalation = 8,
  Incident = 9,
};

constexpr unsigned NumGcEventKinds = 10;

/// Stable, async-signal-safe (string-literal) name for \p Kind.
constexpr const char *gcEventKindName(GcEventKind Kind) {
  switch (Kind) {
  case GcEventKind::CollectionBegin:
    return "collection-begin";
  case GcEventKind::PhaseBegin:
    return "phase-begin";
  case GcEventKind::PhaseEnd:
    return "phase-end";
  case GcEventKind::CollectionEnd:
    return "collection-end";
  case GcEventKind::EmergencyCollection:
    return "emergency-collection";
  case GcEventKind::OutOfMemory:
    return "out-of-memory";
  case GcEventKind::Warning:
    return "warning";
  case GcEventKind::HeapVerified:
    return "heap-verified";
  case GcEventKind::SentinelEscalation:
    return "sentinel-escalation";
  case GcEventKind::Incident:
    return "incident";
  }
  return "?";
}

/// One decoded ring record.  Meta packs kind (bits 0-7), phase
/// (bits 8-15; 0xff = no phase) and the collection index (bits 16-63);
/// Value is event-specific (phase nanos, request bytes, escalation
/// level, ...).
struct GcEventRecord {
  uint64_t Sequence = 0;
  uint64_t Meta = 0;
  uint64_t Value = 0;

  GcEventKind kind() const { return static_cast<GcEventKind>(Meta & 0xff); }
  /// Phase index at record time, or -1 when no phase was running.
  int phase() const {
    unsigned P = static_cast<unsigned>((Meta >> 8) & 0xff);
    return P == 0xff ? -1 : static_cast<int>(P);
  }
  uint64_t collectionIndex() const { return Meta >> 16; }
};

/// The ring itself.  Capacity is a power of two so the reader can mask
/// the head without division (division is async-signal-safe, but masks
/// keep the handler's code trivially auditable).
class EventRing {
public:
  static constexpr unsigned Capacity = 64;

  EventRing() = default;
  EventRing(const EventRing &) = delete;
  EventRing &operator=(const EventRing &) = delete;

  static uint64_t encodeMeta(GcEventKind Kind, int Phase,
                             uint64_t CollectionIndex) {
    uint64_t PhaseBits =
        Phase < 0 ? 0xffu : static_cast<uint64_t>(Phase) & 0xff;
    return static_cast<uint64_t>(Kind) | (PhaseBits << 8) |
           (CollectionIndex << 16);
  }

  /// Records an event.  Writer side; relaxed atomics only.
  void push(GcEventKind Kind, int Phase, uint64_t CollectionIndex,
            uint64_t Value) {
    uint64_t Index = Head.load(std::memory_order_relaxed);
    Slot &S = Slots[Index & (Capacity - 1)];
    S.Meta.store(encodeMeta(Kind, Phase, CollectionIndex),
                 std::memory_order_relaxed);
    S.Value.store(Value, std::memory_order_relaxed);
    Head.store(Index + 1, std::memory_order_relaxed);
  }

  /// Total events ever pushed.
  uint64_t pushed() const { return Head.load(std::memory_order_relaxed); }

  /// Copies the most recent min(pushed, Capacity, MaxOut) records into
  /// \p Out, oldest first, and \returns the count.  Reader side;
  /// async-signal-safe (relaxed loads into caller-owned storage).
  unsigned snapshot(GcEventRecord *Out, unsigned MaxOut) const {
    uint64_t End = Head.load(std::memory_order_relaxed);
    uint64_t Available = End < Capacity ? End : Capacity;
    if (Available > MaxOut)
      Available = MaxOut;
    uint64_t Begin = End - Available;
    for (uint64_t I = 0; I != Available; ++I) {
      const Slot &S = Slots[(Begin + I) & (Capacity - 1)];
      Out[I].Sequence = Begin + I;
      Out[I].Meta = S.Meta.load(std::memory_order_relaxed);
      Out[I].Value = S.Value.load(std::memory_order_relaxed);
    }
    return static_cast<unsigned>(Available);
  }

private:
  struct Slot {
    std::atomic<uint64_t> Meta{0};
    std::atomic<uint64_t> Value{0};
  };

  std::atomic<uint64_t> Head{0};
  Slot Slots[Capacity];
};

} // namespace cgc

#endif // CGC_SUPPORT_EVENTRING_H
