//===- support/SignalSuspend.h - Preemptive mutator suspension -*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The signal-based fallback rung of the stop-the-world watchdog
/// ladder (core/ThreadRegistry.h): when a registered mutator fails to
/// park cooperatively before GcConfig::HandshakeDeadlineMs, the
/// collector suspends it preemptively with a dedicated real-time
/// signal, bdwgc-style (pthread_stop_world.c's SIG_SUSPEND protocol).
///
/// The handler is strictly async-signal-safe: it reads atomics the
/// watchdog published, captures the interrupted register file with
/// sigsetjmp, publishes a frame-local probe as the conservative stack
/// top, acks on a semaphore, and parks in sigsuspend until the resume
/// signal (suspend+1) arrives.  Real-time signals queue reliably, but
/// the watchdog still retries sends with backoff against blocked or
/// slow deliveries, and the resume path retries until the thread is
/// observed running again.
///
/// Two consecutive signal numbers are reserved process-wide while any
/// collector arms a watchdog: SIGRTMIN+6 and SIGRTMIN+7 by default,
/// overridable with GcConfig::SuspendSignal or the CGC_SUSPEND_SIGNAL
/// environment variable.  The crash reporter masks the suspend signal
/// while dumping (crash::setReservedSignal) so a dump is never parked
/// mid-write(2).
///
//===----------------------------------------------------------------------===//

#ifndef CGC_SUPPORT_SIGNALSUSPEND_H
#define CGC_SUPPORT_SIGNALSUSPEND_H

#include <atomic>
#include <csetjmp>
#include <csignal>
#include <cstdint>
#include <pthread.h>

namespace cgc {
namespace suspend {

/// Raw MutatorState values the handler publishes.  ThreadRegistry.cpp
/// static_asserts these against core/ThreadRegistry.h's enum — the
/// handler cannot include the registry header without a support→core
/// cycle.
inline constexpr uint32_t RunningState = 0;
inline constexpr uint32_t SignalSuspendedState = 3;

/// Per-thread suspension slot, embedded in each MutatorThread record.
/// The pointer fields alias the owning record's atomics and are set
/// once at registration, before the slot is ever signaled.
struct SuspendSlot {
  /// Watchdog→handler: a suspension is requested.  The handler parks
  /// while this holds; stale or duplicate deliveries with it clear
  /// are ignored.
  std::atomic<bool> Pending{false};
  /// The owning thread's MutatorState word (MutatorThread::State).
  std::atomic<uint32_t> *State = nullptr;
  /// The owning thread's published stack top (MutatorThread::StackTop).
  std::atomic<const void *> *StackTop = nullptr;
  /// Registers captures the interrupted context; valid (and scanned
  /// instead of the cooperative jmp_buf) while UseRegisters is set.
  std::atomic<bool> UseRegisters{false};
  sigjmp_buf Registers;
  /// pthread handle for pthread_kill, captured at registration.
  pthread_t Handle{};
  /// Suspend-signal deliveries attempted against this thread over the
  /// current handshake (reset when the world resumes).
  std::atomic<uint64_t> SignalAttempts{0};
};

/// Resolves the suspend signal number: \p Configured > 0 wins, else
/// the CGC_SUSPEND_SIGNAL environment variable, else SIGRTMIN+6.
/// \returns -1 for out-of-range results (the resume signal is always
/// suspend+1 and must also fit below SIGRTMAX).
int resolveSuspendSignal(int Configured);

/// Installs (or re-installs, for a different number) the process-wide
/// suspend/resume handlers and the park mask.  Thread-safe and
/// idempotent per signal.  \returns the installed suspend signal, or
/// -1 if sigaction refused it.
int ensureInstalled(int SuspendSig);

/// The currently installed suspend signal, or -1.  Async-signal-safe
/// (a relaxed atomic load); the crash reporter reads it while dumping.
int installedSignal();

/// Registers \p Slot as the calling thread's suspension target (null
/// to clear, before unregistering).  Until a thread calls this the
/// handler treats its deliveries as stale and ignores them.
void setCurrentSlot(SuspendSlot *Slot);

/// Unblocks the suspend and resume signals in the calling thread so
/// deliveries cannot sit masked forever (registered threads may
/// inherit restrictive masks).
void unblockInCurrentThread(int SuspendSig);

/// Sends one suspend signal to the thread behind \p Slot (setting
/// Pending first) and bumps its attempt counter.  \returns false if
/// pthread_kill failed outright (thread gone).
bool sendSuspend(SuspendSlot &Slot, int SuspendSig);

/// Drains and \returns the number of handler acks posted since the
/// last drain.  The watchdog uses a positive count as a prompt to
/// re-check thread states instead of sleeping out its poll interval.
unsigned drainAcks();

/// Resumes a signal-suspended thread: clears Pending, then sends the
/// resume signal with bounded retries until the thread leaves
/// SignalSuspendedState.  Safe to call for threads that were never
/// suspended (clears a stale Pending and returns).
void resumeThread(SuspendSlot &Slot);

/// Child-side fork cleanup: drains stale semaphore acks and clears
/// the calling thread's notion of any in-flight suspension.  Signal
/// dispositions themselves survive fork and need no reinstall.
void reinitAfterFork();

/// RAII marker for a suspension-unsafe critical section: a region
/// where the calling thread holds a process-global lock the stop
/// initiator itself may need while the world is stopped (the fault
/// injector's lock is the canonical example — a spinning mutator is
/// inside it on every armed safepoint poll, and the collection path
/// takes it at every CGC_INJECT_FAULT site).  Parking a thread here
/// would deadlock the initiator, so the suspend handler defers
/// instead: it leaves the thread Running, and the scope exit
/// re-raises the suspend signal so the park lands just outside the
/// lock.  The watchdog's normal send retries cover the window.
/// Nestable; cheap enough for slow paths (two thread-local updates).
class SuspendCriticalScope {
public:
  SuspendCriticalScope();
  ~SuspendCriticalScope();
  SuspendCriticalScope(const SuspendCriticalScope &) = delete;
  SuspendCriticalScope &operator=(const SuspendCriticalScope &) = delete;
};

} // namespace suspend
} // namespace cgc

#endif // CGC_SUPPORT_SIGNALSUSPEND_H
