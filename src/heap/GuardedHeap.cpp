//===- heap/GuardedHeap.cpp - Guarded (debug) object layout ---------------===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//

#include "heap/GuardedHeap.h"
#include "support/Assert.h"
#include <cstring>

namespace cgc {

namespace {

uint64_t loadWord(const void *At) {
  uint64_t Word;
  std::memcpy(&Word, At, sizeof(Word));
  return Word;
}

void storeWord(void *At, uint64_t Word) {
  std::memcpy(At, &Word, sizeof(Word));
}

} // namespace

GuardLayer::GuardLayer(uint32_t QuarantineCapacity)
    : Capacity(QuarantineCapacity) {
  Sites.emplace_back("(untagged)");
}

GuardSiteId GuardLayer::internSite(const char *Site) {
  if (!Site || !*Site)
    return 0;
  auto It = SiteIds.find(Site);
  if (It != SiteIds.end())
    return It->second;
  CGC_CHECK(Sites.size() <= MaxSites, "too many guard allocation sites");
  GuardSiteId Id = static_cast<GuardSiteId>(Sites.size());
  Sites.emplace_back(Site);
  SiteIds.emplace(Sites.back(), Id);
  return Id;
}

const char *GuardLayer::siteName(GuardSiteId Id) const {
  if (Id >= Sites.size())
    return "(unknown site)";
  return Sites[Id].c_str();
}

uint64_t GuardLayer::arm(void *SlotBase, uint64_t SlotBytes,
                         uint64_t UserBytes, GuardSiteId Site) {
  CGC_CHECK(UserBytes <= MaxUserBytes, "guarded allocation too large");
  CGC_CHECK(SlotBytes >= HeaderBytes + UserBytes + MinRedzoneBytes,
            "guarded slot smaller than header + user + redzone");
  uint64_t Seqno = ++SeqnoCounter;
  char *Base = static_cast<char *>(SlotBase);
  storeWord(Base, HeaderMagic ^ Seqno);
  storeWord(Base + 8, InfoMagic ^ (UserBytes | (uint64_t(Site) << 40)));
  std::memset(Base + HeaderBytes + UserBytes, RedzoneByte,
              SlotBytes - HeaderBytes - UserBytes);
  ++Stats.GuardedAllocations;
  Stats.GuardSlopBytes += SlotBytes - UserBytes;
  return Seqno;
}

GuardLayer::Decoded GuardLayer::inspect(const void *SlotBase,
                                        uint64_t SlotBytes) {
  Decoded Info;
  const char *Base = static_cast<const char *>(SlotBase);
  uint64_t W0 = loadWord(Base) ^ HeaderMagic;
  uint64_t W1 = loadWord(Base + 8) ^ InfoMagic;
  uint64_t UserBytes = W1 & MaxUserBytes;
  GuardSiteId Site = static_cast<GuardSiteId>(W1 >> 40);
  // A valid header decodes to a seqno below 2^48, a site below 2^20,
  // and a size that fits the slot with its minimum redzone.
  if (W0 == 0 || (W0 >> 48) != 0 || Site > MaxSites ||
      HeaderBytes + UserBytes + MinRedzoneBytes > SlotBytes)
    return Info; // HeaderIntact stays false.
  Info.HeaderIntact = true;
  Info.Seqno = W0;
  Info.Site = Site;
  Info.UserBytes = UserBytes;
  Info.RedzoneIntact = true;
  for (uint64_t At = HeaderBytes + UserBytes; At != SlotBytes; ++At) {
    if (static_cast<unsigned char>(Base[At]) != RedzoneByte) {
      Info.RedzoneIntact = false;
      break;
    }
  }
  return Info;
}

bool GuardLayer::quarantine(void *SlotBase, WindowOffset Base,
                            uint64_t SlotBytes, const Decoded &Info,
                            QuarantineEntry &Evicted) {
  std::memset(SlotBase, PoisonByte, SlotBytes);
  ++Stats.GuardedFrees;
  CGC_ASSERT(Stats.GuardSlopBytes >= SlotBytes - Info.UserBytes,
             "guard slop accounting underflow");
  Stats.GuardSlopBytes -= SlotBytes - Info.UserBytes;
  QuarantineEntry Entry;
  Entry.Base = Base;
  Entry.SlotBytes = SlotBytes;
  Entry.UserBytes = Info.UserBytes;
  Entry.Seqno = Info.Seqno;
  Entry.Site = Info.Site;
  if (Capacity == 0) {
    Evicted = Entry;
    return true;
  }
  Ring.push_back(Entry);
  Quarantined.insert(Base);
  Stats.QuarantineDepth = Ring.size();
  if (Ring.size() <= Capacity)
    return false;
  Evicted = Ring.front();
  Ring.pop_front();
  Quarantined.erase(Evicted.Base);
  Stats.QuarantineDepth = Ring.size();
  return true;
}

bool GuardLayer::popOldest(QuarantineEntry &Out) {
  if (Ring.empty())
    return false;
  Out = Ring.front();
  Ring.pop_front();
  Quarantined.erase(Out.Base);
  Stats.QuarantineDepth = Ring.size();
  return true;
}

const GuardLayer::QuarantineEntry *
GuardLayer::findQuarantined(WindowOffset Base) const {
  for (const QuarantineEntry &E : Ring)
    if (E.Base == Base)
      return &E;
  return nullptr;
}

bool GuardLayer::poisonIntact(const void *SlotBase, uint64_t SlotBytes) {
  const unsigned char *Base = static_cast<const unsigned char *>(SlotBase);
  for (uint64_t At = 0; At != SlotBytes; ++At)
    if (Base[At] != PoisonByte)
      return false;
  return true;
}

} // namespace cgc
