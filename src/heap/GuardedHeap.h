//===- heap/GuardedHeap.h - Guarded (debug) object layout ------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The opt-in guarded-heap mode (GcConfig::DebugGuards): every
/// conservatively scanned object gains a 16-byte debug header
/// (allocation-site tag + monotonic seqno + canary) and a trailing
/// redzone, explicit frees are poisoned and parked in a bounded
/// quarantine ring, and an unreachable-but-never-freed walk groups
/// leaks by allocation site.  This is the lineage of the production
/// collector's GC_DEBUG mode (Boehm & Weiser 1988).
///
/// Determinism contract: guard metadata is scanned conservatively like
/// any other heap bytes, so every metadata word is constructed to have
/// its top bit set (>= 2^63).  Such values are non-canonical user-space
/// addresses on every supported platform — mmap can never place the
/// arena there — so canaries, redzone fill, and quarantine poison are
/// never misidentified as pointers and the retained set is bit-identical
/// with guards on or off, across runs, and for any worker count.  The
/// seqno counter is the only ordering source (no wall clock), so
/// violation reports replay exactly under soak_chaos --replay-check.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_HEAP_GUARDEDHEAP_H
#define CGC_HEAP_GUARDEDHEAP_H

#include "heap/HeapUnits.h"
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace cgc {

/// Interned allocation-site tag.  Id 0 is the untagged bucket.
using GuardSiteId = uint32_t;

enum class GuardViolationKind : unsigned char {
  /// The 16-byte debug header's canary words were overwritten.
  HeaderSmash,
  /// The trailing redzone fill was overwritten (likely a buffer
  /// overrun off the end of the user region).
  RedzoneSmash,
  /// Explicit free of an object that was already freed.
  DoubleFree,
  /// Explicit free of a non-heap or non-object pointer.
  InvalidFree,
  /// A quarantined (freed, poisoned) object was written through a
  /// dangling pointer before its quarantine slot was flushed.
  QuarantineUseAfterFree,
};

constexpr const char *guardViolationKindName(GuardViolationKind Kind) {
  switch (Kind) {
  case GuardViolationKind::HeaderSmash:
    return "guard header smash";
  case GuardViolationKind::RedzoneSmash:
    return "guard redzone smash";
  case GuardViolationKind::DoubleFree:
    return "double free";
  case GuardViolationKind::InvalidFree:
    return "invalid free";
  case GuardViolationKind::QuarantineUseAfterFree:
    return "quarantine use-after-free";
  }
  return "?";
}

/// One detected violation.  Sweep workers accumulate these into their
/// private SweepResult; the collector merges and sorts by Seqno so the
/// report order is identical for any SweepThreads value.
struct GuardViolation {
  GuardViolationKind Kind = GuardViolationKind::HeaderSmash;
  /// Slot base (window offset of the debug header), 0 if unknown.
  WindowOffset Base = 0;
  /// Monotonic allocation seqno from the header, 0 if unreadable.
  uint64_t Seqno = 0;
  /// Allocation site from the header, 0 if unreadable/untagged.
  GuardSiteId Site = 0;
  /// User-requested size from the header, 0 if unreadable.
  uint64_t UserBytes = 0;
};

/// Lifetime counters for the guarded mode, surfaced through
/// Collector::guardStats, cgc_debug_get_stats, and the crash report.
struct GcGuardStats {
  uint64_t GuardedAllocations = 0;
  uint64_t GuardedFrees = 0;
  /// Objects currently parked in the quarantine ring.
  uint64_t QuarantineDepth = 0;
  /// Objects whose quarantine hold completed (poison re-checked, slot
  /// released) — via ring eviction or an explicit/collection flush.
  uint64_t QuarantineFlushes = 0;
  uint64_t HeaderSmashes = 0;
  uint64_t RedzoneSmashes = 0;
  uint64_t DoubleFrees = 0;
  uint64_t InvalidFrees = 0;
  uint64_t UseAfterFreeWrites = 0;
  /// Header + redzone + size-class slop bytes currently committed to
  /// guard metadata (the measured cost of the mode, Zorn-style).
  uint64_t GuardSlopBytes = 0;
  /// Totals from the most recent findLeaks run.
  uint64_t LeakedObjects = 0;
  uint64_t LeakedBytes = 0;
};

/// One allocation site's bucket in a leak report.
struct GcLeakSite {
  const char *Site = nullptr; ///< Interned tag, "(untagged)" for id 0.
  uint64_t Objects = 0;
  uint64_t Bytes = 0; ///< Sum of user-requested sizes.
  /// Smallest seqno in the bucket: the oldest leaked allocation.
  uint64_t FirstSeqno = 0;
};

/// Result of a find-leaks collection: objects that became unreachable
/// without ever being explicitly freed, grouped by allocation site in
/// site-registration order (deterministic).
struct GcLeakReport {
  std::vector<GcLeakSite> Sites;
  uint64_t TotalObjects = 0;
  uint64_t TotalBytes = 0;
};

/// The guard layer: header/redzone layout math, the allocation-site
/// registry, the seqno counter, and the quarantine ring.  Owned by the
/// Collector when GcConfig::DebugGuards is set; the ObjectHeap and
/// HeapVerifier hold a const pointer for sweep/verify-time validation.
///
/// Guarded slot layout (user pointer = slot base + HeaderBytes):
///
///   +----------------+----------------+------------------------+
///   | W0: canary ^   | W1: canary ^   | user bytes  | redzone  |
///   |     seqno      | (size|site<<40)| (zeroed)    | 0xFD...  |
///   +----------------+----------------+------------------------+
///   0                8                16            16+user    slot end
///
/// The redzone always extends to the end of the slot, so size-class
/// slop is covered too; explicit frees repaint the whole slot with the
/// 0xDB poison byte before parking it in quarantine.
class GuardLayer {
public:
  static constexpr uint64_t HeaderBytes = 16;
  static constexpr uint64_t MinRedzoneBytes = 16;
  /// Largest guardable user request: the size field shares a header
  /// word with the site id.
  static constexpr uint64_t MaxUserBytes = (uint64_t(1) << 40) - 1;
  static constexpr GuardSiteId MaxSites = (1u << 20) - 1;
  /// Canary bases.  Top 16 bits are all-ones so the XOR'd payloads
  /// (seqno below bit 48, size|site below bit 60) can never clear the
  /// top bit: every header word stays >= 2^63 and is rejected by the
  /// conservative scan's arena-containment test.
  static constexpr uint64_t HeaderMagic = 0xFFFFC5C5DEAD5EEDull;
  static constexpr uint64_t InfoMagic = 0xFFFFA5A5F00DBA5Eull;
  /// Redzone fill and quarantine poison.  Both >= 0x80: any 8-byte
  /// word whose top byte is one of these reads >= 2^63, and the word
  /// covering the user/redzone boundary always ends in redzone bytes.
  static constexpr unsigned char RedzoneByte = 0xFD;
  static constexpr unsigned char PoisonByte = 0xDB;

  /// \p QuarantineCapacity bounds the ring; 0 disables parking (frees
  /// release immediately after validation).
  explicit GuardLayer(uint32_t QuarantineCapacity);

  //===--------------------------------------------------------------===//
  // Allocation-site registry
  //===--------------------------------------------------------------===//

  /// Interns \p Site (by string value) and returns its id; nullptr or
  /// empty returns the untagged id 0.  Registration order is the
  /// deterministic report order.
  GuardSiteId internSite(const char *Site);

  /// Stable interned string for \p Id ("(untagged)" for 0).  Safe to
  /// stash in async-signal-safe crash state.
  const char *siteName(GuardSiteId Id) const;

  uint32_t siteCount() const { return static_cast<uint32_t>(Sites.size()); }

  //===--------------------------------------------------------------===//
  // Layout
  //===--------------------------------------------------------------===//

  /// Bytes to request from the raw allocator for a \p UserBytes
  /// request: header + user + minimum redzone.
  static constexpr uint64_t paddedSize(uint64_t UserBytes) {
    return HeaderBytes + UserBytes + MinRedzoneBytes;
  }

  static void *userPointer(void *SlotBase) {
    return static_cast<char *>(SlotBase) + HeaderBytes;
  }
  static const void *slotBaseOf(const void *UserPtr) {
    return static_cast<const char *>(UserPtr) - HeaderBytes;
  }

  /// Writes the header and paints the redzone over
  /// [HeaderBytes + UserBytes, SlotBytes).  \returns the seqno stamped
  /// into the header.
  uint64_t arm(void *SlotBase, uint64_t SlotBytes, uint64_t UserBytes,
               GuardSiteId Site);

  /// Decoded header + validation verdict for an armed slot.
  struct Decoded {
    bool HeaderIntact = false;
    bool RedzoneIntact = false;
    uint64_t Seqno = 0;
    GuardSiteId Site = 0;
    uint64_t UserBytes = 0;
  };

  /// Reads the header back and re-checks canaries and redzone.  Pure
  /// reads: safe from concurrent sweep workers and the verifier.
  static Decoded inspect(const void *SlotBase, uint64_t SlotBytes);

  //===--------------------------------------------------------------===//
  // Quarantine
  //===--------------------------------------------------------------===//

  struct QuarantineEntry {
    WindowOffset Base = 0;
    uint64_t SlotBytes = 0;
    uint64_t UserBytes = 0;
    uint64_t Seqno = 0;
    GuardSiteId Site = 0;
  };

  bool isQuarantined(WindowOffset Base) const {
    return Quarantined.count(Base) != 0;
  }

  /// Poisons the whole slot and parks it.  If the ring is full the
  /// oldest entry is popped into \p Evicted and true is returned; the
  /// caller must re-check its poison and release it.  With capacity 0
  /// the slot is poisoned, \p Evicted receives the new entry itself,
  /// and true is returned (immediate release).
  bool quarantine(void *SlotBase, WindowOffset Base, uint64_t SlotBytes,
                  const Decoded &Info, QuarantineEntry &Evicted);

  /// Pops the oldest parked entry for flushing; false when empty.
  bool popOldest(QuarantineEntry &Out);

  /// The parked entry for \p Base, or nullptr.  Linear in the ring
  /// depth; used only on the (already doomed) double-free report path.
  const QuarantineEntry *findQuarantined(WindowOffset Base) const;

  size_t quarantineDepth() const { return Ring.size(); }

  /// True when every byte of the slot still carries the poison fill —
  /// i.e. nothing wrote through a dangling pointer while parked.
  static bool poisonIntact(const void *SlotBase, uint64_t SlotBytes);

  //===--------------------------------------------------------------===//
  // Counters
  //===--------------------------------------------------------------===//

  GcGuardStats Stats;

private:
  uint32_t Capacity;
  uint64_t SeqnoCounter = 0;
  /// Interned site strings; deque keeps c_str() stable forever.
  std::deque<std::string> Sites;
  std::unordered_map<std::string, GuardSiteId> SiteIds;
  std::deque<QuarantineEntry> Ring;
  std::unordered_set<WindowOffset> Quarantined;
};

} // namespace cgc

#endif // CGC_HEAP_GUARDEDHEAP_H
