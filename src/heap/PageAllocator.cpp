//===- heap/PageAllocator.cpp - Page-run allocator ------------------------===//

#include "heap/PageAllocator.h"
#include "support/Assert.h"
#include "support/FaultInjection.h"
#include "support/MathExtras.h"

using namespace cgc;

PageAllocator::PageAllocator(VirtualArena &Arena, PageIndex BasePage,
                             PageIndex MaxPages, uint32_t GrowthPages,
                             bool DecommitFreed, MetadataArena *MetaArena)
    : Arena(Arena), BasePage(BasePage), MaxPages(MaxPages),
      GrowthPages(GrowthPages), DecommitFreed(DecommitFreed),
      CommitLimit(BasePage),
      FreeRuns(RunMap::key_compare(),
               MetadataAllocator<std::pair<const PageIndex, uint32_t>>(
                   MetaArena)),
      Quarantined(RunMap::key_compare(),
                  MetadataAllocator<std::pair<const PageIndex, uint32_t>>(
                      MetaArena)) {
  CGC_CHECK(GrowthPages > 0, "growth increment must be positive");
  CGC_CHECK(uint64_t(BasePage) + MaxPages <= Arena.numPages(),
            "heap arena exceeds the window");
}

std::optional<PageIndex>
PageAllocator::allocateRun(uint32_t NumPages, PageConstraint Constraint) {
  CGC_CHECK(NumPages > 0, "allocating an empty page run");
  while (true) {
    if (auto Start = findInFreeRuns(NumPages, Constraint)) {
      carveFromFreeRun(*Start, NumPages);
      Stats.AllocatedPages += NumPages;
      return Start;
    }
    ++Stats.GrowEvents;
    if (!grow(NumPages)) {
      ++Stats.FailedRequests;
      return std::nullopt;
    }
  }
}

std::optional<PageIndex>
PageAllocator::findInFreeRuns(uint32_t NumPages, PageConstraint Constraint) {
  // Injected run-search failure: report "no fit" so callers exercise
  // their grow/collect fallbacks.
  if (CGC_INJECT_FAULT(PageRunSearch))
    return std::nullopt;
  // Address-ordered first fit: std::map iterates runs lowest first.
  for (const auto &[RunStart, RunLen] : FreeRuns) {
    if (RunLen < NumPages)
      continue;
    if (auto Start = findInRun(RunStart, RunLen, NumPages, Constraint))
      return Start;
  }
  return std::nullopt;
}

std::optional<PageIndex>
PageAllocator::findInRun(PageIndex RunStart, uint32_t RunLen,
                         uint32_t NumPages, PageConstraint Constraint) {
  if (Constraint == PageConstraint::None || !IsBlacklisted)
    return RunStart;

  PageIndex LastStart = RunStart + RunLen - NumPages;
  if (Constraint == PageConstraint::FirstPageClean) {
    for (PageIndex Start = RunStart; Start <= LastStart; ++Start) {
      if (!pageBlacklisted(Start))
        return Start;
      ++Stats.BlacklistSkippedPages;
    }
    return std::nullopt;
  }

  // AllPagesClean: scan forward, restarting just past each blacklisted
  // page, so the search is linear in the run length.
  PageIndex Start = RunStart;
  while (Start <= LastStart) {
    bool Clean = true;
    for (PageIndex P = Start; P != Start + NumPages; ++P) {
      if (pageBlacklisted(P)) {
        Stats.BlacklistSkippedPages += (P + 1) - Start;
        Start = P + 1;
        Clean = false;
        break;
      }
    }
    if (Clean)
      return Start;
  }
  return std::nullopt;
}

bool PageAllocator::grow(uint32_t AtLeastPages) {
  // Injected commit failure: behave exactly like an exhausted arena so
  // the allocation ladder's collect-and-retry rungs get exercised.
  if (CGC_INJECT_FAULT(ArenaGrow))
    return false;
  PageIndex Limit = arenaLimitPage();
  if (CommitLimit >= Limit)
    return false;
  uint64_t Want = std::max<uint64_t>(GrowthPages, AtLeastPages);
  uint64_t Available = Limit - CommitLimit;
  uint32_t Extend = static_cast<uint32_t>(std::min(Want, Available));
  // The new pages start exactly at CommitLimit, so freeRun skips the
  // decommit (they are untouched and already zero-filled).
  freeRun(CommitLimit, Extend);
  CommitLimit += Extend;
  Stats.CommittedPages = CommitLimit - BasePage;
  return true;
}

void PageAllocator::freeRun(PageIndex Start, uint32_t NumPages) {
  CGC_CHECK(NumPages > 0, "freeing an empty page run");
  CGC_CHECK(Start >= BasePage &&
                uint64_t(Start) + NumPages <= arenaLimitPage(),
            "freeing pages outside the heap arena");

  if (DecommitFreed && Start < CommitLimit)
    Arena.decommit(offsetOfPage(Start), uint64_t(NumPages) * PageSize);

  PageIndex End = Start + NumPages;

  // Coalesce with the following run.
  auto After = FreeRuns.lower_bound(Start);
  if (After != FreeRuns.end()) {
    CGC_CHECK(After->first >= End, "double free of a page run");
    if (After->first == End) {
      NumPages += After->second;
      FreeRuns.erase(After);
    }
  }
  // Coalesce with the preceding run.
  auto Before = FreeRuns.lower_bound(Start);
  if (Before != FreeRuns.begin()) {
    --Before;
    CGC_CHECK(Before->first + Before->second <= Start,
              "double free of a page run");
    if (Before->first + Before->second == Start) {
      Before->second += NumPages;
      return;
    }
  }
  FreeRuns.emplace(Start, NumPages);
}

void PageAllocator::carveFromFreeRun(PageIndex Start, uint32_t NumPages) {
  auto It = FreeRuns.upper_bound(Start);
  CGC_CHECK(It != FreeRuns.begin(), "carving from a nonexistent run");
  --It;
  PageIndex RunStart = It->first;
  uint32_t RunLen = It->second;
  CGC_CHECK(Start >= RunStart && Start + NumPages <= RunStart + RunLen,
            "carve range not inside a free run");
  FreeRuns.erase(It);
  if (Start > RunStart)
    FreeRuns.emplace(RunStart, Start - RunStart);
  if (Start + NumPages < RunStart + RunLen)
    FreeRuns.emplace(Start + NumPages, RunStart + RunLen - Start - NumPages);
}

void PageAllocator::quarantineRun(PageIndex Start, uint32_t NumPages) {
  CGC_CHECK(NumPages > 0, "quarantining an empty page run");
  CGC_CHECK(Start >= BasePage &&
                uint64_t(Start) + NumPages <= arenaLimitPage(),
            "quarantining pages outside the heap arena");
  PageIndex End = Start + NumPages;

  // Coalesce with neighbors the same way freeRun does, so repeated
  // repairs of adjacent blocks do not fragment the quarantine map.
  auto After = Quarantined.lower_bound(Start);
  if (After != Quarantined.end() && After->first == End) {
    NumPages += After->second;
    Quarantined.erase(After);
  }
  auto Before = Quarantined.lower_bound(Start);
  if (Before != Quarantined.begin()) {
    --Before;
    if (Before->first + Before->second == Start) {
      Before->second += NumPages;
      Stats.QuarantinedPages += End - Start;
      return;
    }
  }
  Quarantined.emplace(Start, NumPages);
  Stats.QuarantinedPages += End - Start;
}

bool PageAllocator::pageQuarantined(PageIndex Page) const {
  auto It = Quarantined.upper_bound(Page);
  if (It == Quarantined.begin())
    return false;
  --It;
  return Page >= It->first && Page < It->first + It->second;
}

void PageAllocator::rebuildFreeRuns(
    const std::vector<std::pair<PageIndex, uint32_t>> &Runs) {
  FreeRuns.clear();
  for (const auto &[Start, Length] : Runs)
    freeRun(Start, Length);
}

uint64_t PageAllocator::freePageCount() const {
  uint64_t Total = 0;
  for (const auto &[Start, Length] : FreeRuns)
    Total += Length;
  return Total;
}
