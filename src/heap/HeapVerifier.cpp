//===- heap/HeapVerifier.cpp - Deep heap consistency checker --------------===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//

#include "heap/HeapVerifier.h"
#include "heap/ObjectHeap.h"
#include <cstdio>

namespace cgc {

const char *verifyFindingKindName(VerifyFindingKind Kind) {
  switch (Kind) {
  case VerifyFindingKind::Generic:
    return "generic";
  case VerifyFindingKind::BlockGeometry:
    return "block-geometry";
  case VerifyFindingKind::PageMapStale:
    return "page-map-stale";
  case VerifyFindingKind::CounterMismatch:
    return "counter-mismatch";
  case VerifyFindingKind::FreeListBroken:
    return "free-list-broken";
  case VerifyFindingKind::FreeRunBroken:
    return "free-run-broken";
  case VerifyFindingKind::GuardSmash:
    return "guard-smash";
  case VerifyFindingKind::Accounting:
    return "accounting";
  }
  CGC_UNREACHABLE("unknown finding kind");
}

void HeapVerifyReport::record(VerifyFindingKind Kind, BlockId Block,
                              uint64_t Page, std::string Message) {
  // Dedup per (kind, page) — but never for Generic findings, which are
  // heterogeneous collector-level notes all sharing (Generic, 0).
  if (Kind != VerifyFindingKind::Generic) {
    for (const VerifyFinding &F : Findings) {
      if (F.Kind == Kind && F.Page == Page) {
        ++Deduplicated;
        return;
      }
    }
  }
  if (Findings.size() >= MaxFindings) {
    ++Truncated;
    return;
  }
  VerifyFinding F;
  F.Kind = Kind;
  F.Block = Block;
  F.Page = Page;
  F.Message = Message;
  Findings.push_back(std::move(F));
  Issues.push_back(std::move(Message));
}

void HeapVerifyReport::notef(const char *Fmt, ...) {
  char Buffer[512];
  va_list Args;
  va_start(Args, Fmt);
  std::vsnprintf(Buffer, sizeof(Buffer), Fmt, Args);
  va_end(Args);
  record(VerifyFindingKind::Generic, InvalidBlockId, 0, Buffer);
}

void HeapVerifyReport::notefAt(VerifyFindingKind Kind, BlockId Block,
                               uint64_t Page, const char *Fmt, ...) {
  char Buffer[512];
  va_list Args;
  va_start(Args, Fmt);
  std::vsnprintf(Buffer, sizeof(Buffer), Fmt, Args);
  va_end(Args);
  record(Kind, Block, Page, Buffer);
}

std::string HeapVerifyReport::str() const {
  std::string Out;
  for (const std::string &Issue : Issues) {
    Out += Issue;
    Out += '\n';
  }
  return Out;
}

HeapVerifyReport HeapVerifier::run() {
  HeapVerifyReport R;
  PageAllocator &Pages = Heap.Pages;
  PageMap &Map = Heap.Map;
  using K = VerifyFindingKind;

  // --- Block table ↔ page map ↔ bitmaps ↔ byte accounting. ---
  uint64_t BytesSeen = 0;
  uint64_t BlockOwnedPages = 0;
  Heap.Blocks.forEach([&](BlockId Id, BlockDescriptor &Block) {
    if (Block.NumPages == 0 || Block.ObjectCount == 0) {
      R.notefAt(K::BlockGeometry, Id, Block.StartPage,
                "block %u: degenerate (%u pages, %u slots)", Id,
                Block.NumPages, Block.ObjectCount);
      return; // Geometry is garbage; further checks would divide by it.
    }
    if (!Pages.inPotentialHeap(Block.StartPage) ||
        !Pages.inPotentialHeap(Block.StartPage + Block.NumPages - 1))
      R.notefAt(K::BlockGeometry, Id, Block.StartPage,
                "block %u: pages [%llu, %llu) outside the heap arena", Id,
                (unsigned long long)Block.StartPage,
                (unsigned long long)(Block.StartPage + Block.NumPages));
    if (Block.StartPage + Block.NumPages > Pages.committedLimitPage())
      R.notefAt(K::BlockGeometry, Id, Block.StartPage,
                "block %u: extends past the committed limit %llu", Id,
                (unsigned long long)Pages.committedLimitPage());
    if (Block.FirstObjectOffset +
            uint64_t(Block.ObjectCount) * Block.ObjectSize >
        uint64_t(Block.NumPages) * PageSize)
      R.notefAt(K::BlockGeometry, Id, Block.StartPage,
                "block %u: %u slots of %u bytes overflow %u pages", Id,
                Block.ObjectCount, Block.ObjectSize, Block.NumPages);
    for (uint32_t P = 0; P != Block.NumPages; ++P) {
      if (Map.blockAt(Block.StartPage + P) != Id) {
        R.notefAt(K::PageMapStale, Id, Block.StartPage + P,
                  "block %u: page map entry for page %llu points elsewhere",
                  Id, (unsigned long long)(Block.StartPage + P));
        break; // One line per block is enough to localize it.
      }
    }
    if (Block.AllocBits.count() != Block.AllocatedCount)
      R.notefAt(K::CounterMismatch, Id, Block.StartPage,
                "block %u: alloc bitmap has %llu bits set, counter says %u",
                Id, (unsigned long long)Block.AllocBits.count(),
                Block.AllocatedCount);
    if (Block.PinnedBits.count() != Block.PinnedCount)
      R.notefAt(K::CounterMismatch, Id, Block.StartPage,
                "block %u: pinned bitmap has %llu bits set, counter says %u",
                Id, (unsigned long long)Block.PinnedBits.count(),
                Block.PinnedCount);
    if (Block.AllocatedCount + Block.PinnedCount > Block.ObjectCount)
      R.notefAt(K::CounterMismatch, Id, Block.StartPage,
                "block %u: %u allocated + %u pinned exceed %u slots", Id,
                Block.AllocatedCount, Block.PinnedCount, Block.ObjectCount);
    BitVector Overlap = Block.AllocBits;
    Overlap.andWith(Block.PinnedBits);
    if (Overlap.count() != 0)
      R.notefAt(K::CounterMismatch, Id, Block.StartPage,
                "block %u: %llu slots both allocated and pinned", Id,
                (unsigned long long)Overlap.count());
    if (Block.MarkBits.count() > Block.ObjectCount)
      R.notefAt(K::CounterMismatch, Id, Block.StartPage,
                "block %u: mark bitmap has %llu bits set for %u slots", Id,
                (unsigned long long)Block.MarkBits.count(),
                Block.ObjectCount);
    if (Block.IsLarge &&
        (Block.ObjectCount != 1 || Block.AllocatedCount != 1))
      R.notefAt(K::BlockGeometry, Id, Block.StartPage,
                "block %u: large block must hold exactly one object "
                "(%u slots, %u allocated)",
                Id, Block.ObjectCount, Block.AllocatedCount);
    // Every small block with usable space must be reachable by the
    // allocator: listed on its class list or queued for lazy sweep.
    // (The LIFO ablation prunes its stacks lazily, so only the
    // address-ordered discipline supports this check.)
    if (!Block.IsLarge && Block.usableFreeCount() > 0 &&
        Heap.Config.AddressOrderedAllocation) {
      ObjectHeap::ClassList &List = Heap.classListFor(Block);
      bool Listed = List.Partial.count(Block.StartPage) != 0;
      bool Queued = false;
      for (BlockId Q : List.Unswept)
        Queued |= Q == Id;
      if (!Listed && !Queued)
        R.notefAt(K::FreeListBroken, Id, Block.StartPage,
                  "block %u: has %u usable free slots but is invisible to "
                  "the allocator",
                  Id, Block.usableFreeCount());
    }
    // Guarded mode: every allocated untyped slot must carry an intact
    // header and redzone — unless it is parked in the quarantine, where
    // the whole slot is poison instead (checked at flush time, not
    // here: a verifier pass must stay side-effect free).
    if (Heap.Config.Guards && Block.LayoutId == 0) {
      const GuardLayer *Guards = Heap.Config.Guards;
      for (uint32_t Slot = 0; Slot != Block.ObjectCount; ++Slot) {
        if (!Block.AllocBits.test(Slot))
          continue;
        WindowOffset Base = Block.slotOffset(Slot);
        if (Guards->isQuarantined(Base))
          continue;
        GuardLayer::Decoded Info = GuardLayer::inspect(
            Heap.Arena.pointerTo(Base), Block.ObjectSize);
        if (!Info.HeaderIntact)
          R.notefAt(K::GuardSmash, Id, pageOfOffset(Base),
                    "block %u slot %u: guard header smashed (offset 0x%llx)",
                    Id, Slot, (unsigned long long)Base);
        else if (!Info.RedzoneIntact)
          R.notefAt(K::GuardSmash, Id, pageOfOffset(Base),
                    "block %u slot %u: guard redzone smashed (seqno %llu, "
                    "offset 0x%llx)",
                    Id, Slot, (unsigned long long)Info.Seqno,
                    (unsigned long long)Base);
      }
    }
    BytesSeen += uint64_t(Block.AllocatedCount) * Block.ObjectSize;
    BlockOwnedPages += Block.NumPages;
  });
  if (BytesSeen != Heap.AllocatedBytes)
    R.notefAt(K::Accounting, InvalidBlockId, 0,
              "allocated-bytes accounting: blocks hold %llu bytes, counter "
              "says %llu",
              (unsigned long long)BytesSeen,
              (unsigned long long)Heap.AllocatedBytes);

  // --- Class lists point at live, matching blocks. ---
  size_t QueuedBlocks = 0;
  auto CheckList = [&](const ObjectHeap::ClassList &List, const char *What) {
    for (const auto &[StartPage, Id] : List.Partial) {
      if (!Heap.Blocks.isLive(Id)) {
        R.notefAt(K::FreeListBroken, Id, StartPage,
                  "%s class list: entry for page %llu names dead block %u",
                  What, (unsigned long long)StartPage, Id);
        continue;
      }
      const BlockDescriptor &Block = Heap.Blocks.get(Id);
      if (Block.StartPage != StartPage)
        R.notefAt(K::FreeListBroken, Id, StartPage,
                  "%s class list: key page %llu but block %u starts at %llu",
                  What, (unsigned long long)StartPage, Id,
                  (unsigned long long)Block.StartPage);
      if (Block.IsLarge)
        R.notefAt(K::FreeListBroken, Id, StartPage,
                  "%s class list: large block %u listed", What, Id);
      if (Block.usableFreeCount() == 0)
        R.notefAt(K::FreeListBroken, Id, StartPage,
                  "%s class list: block %u listed with no usable slot", What,
                  Id);
    }
    // Unswept entries may name blocks released meanwhile (the queue is
    // pruned lazily); only count them against the pending total.
    QueuedBlocks += List.Unswept.size();
  };
  for (const ObjectHeap::ClassList &List : Heap.ClassLists)
    CheckList(List, "untyped");
  for (const auto &[LayoutId, List] : Heap.TypedClassLists) {
    (void)LayoutId;
    CheckList(List, "typed");
  }
  if (QueuedBlocks != Heap.PendingSweeps)
    R.notefAt(K::Accounting, InvalidBlockId, 0,
              "lazy-sweep queue holds %llu entries, counter says %llu",
              (unsigned long long)QueuedBlocks,
              (unsigned long long)Heap.PendingSweeps);

  // --- Free runs ↔ page map ↔ committed-page partition. ---
  uint64_t FreePages = 0;
  PageIndex PrevEnd = 0;
  bool FirstRun = true;
  Pages.forEachFreeRun([&](PageIndex Start, uint32_t Length) {
    if (Length == 0)
      R.notefAt(K::FreeRunBroken, InvalidBlockId, Start,
                "free run at page %llu: zero length",
                (unsigned long long)Start);
    if (Start < Pages.arenaBasePage() ||
        Start + Length > Pages.committedLimitPage())
      R.notefAt(K::FreeRunBroken, InvalidBlockId, Start,
                "free run [%llu, %llu) outside the committed arena "
                "[%llu, %llu)",
                (unsigned long long)Start,
                (unsigned long long)(Start + Length),
                (unsigned long long)Pages.arenaBasePage(),
                (unsigned long long)Pages.committedLimitPage());
    if (!FirstRun && Start <= PrevEnd)
      R.notefAt(K::FreeRunBroken, InvalidBlockId, Start,
                "free run at page %llu %s the previous run ending at %llu",
                (unsigned long long)Start,
                Start < PrevEnd ? "overlaps" : "abuts (uncoalesced)",
                (unsigned long long)PrevEnd);
    FirstRun = false;
    PrevEnd = Start + Length;
    FreePages += Length;
    for (uint32_t P = 0; P != Length; ++P) {
      if (Map.blockAt(Start + P) != InvalidBlockId) {
        R.notefAt(K::FreeRunBroken, InvalidBlockId, Start + P,
                  "free run [%llu, %llu): page %llu owned by block %u",
                  (unsigned long long)Start,
                  (unsigned long long)(Start + Length),
                  (unsigned long long)(Start + P), Map.blockAt(Start + P));
        break;
      }
    }
  });
  uint64_t QuarantinedPages = 0;
  Pages.forEachQuarantinedRun(
      [&](PageIndex, uint32_t Length) { QuarantinedPages += Length; });
  uint64_t Committed = Pages.committedLimitPage() - Pages.arenaBasePage();
  if (BlockOwnedPages + FreePages + QuarantinedPages != Committed)
    R.notefAt(K::Accounting, InvalidBlockId, 0,
              "committed-page partition: %llu block-owned + %llu free + "
              "%llu quarantined != %llu committed",
              (unsigned long long)BlockOwnedPages,
              (unsigned long long)FreePages,
              (unsigned long long)QuarantinedPages,
              (unsigned long long)Committed);
  if (Pages.stats().CommittedPages != Committed)
    R.notefAt(K::Accounting, InvalidBlockId, 0,
              "page stats: CommittedPages says %llu, commit limit implies "
              "%llu",
              (unsigned long long)Pages.stats().CommittedPages,
              (unsigned long long)Committed);
  return R;
}

//===----------------------------------------------------------------------===//
// Repair
//===----------------------------------------------------------------------===//

HeapVerifyReport HeapVerifier::verifyAndRepair(HeapRepairStats &Stats) {
  HeapVerifyReport Pre = run();
  if (Pre.clean()) {
    Pre.RepairedClean = true;
    return Pre;
  }

  PageAllocator &Pages = Heap.Pages;
  PageMap &Map = Heap.Map;
  std::vector<BlockId> QuarantinedBlocks;

  // (a) Quarantine blocks whose geometry cannot be trusted: every
  // later repair divides by it.  Their pages are withdrawn forever (a
  // wild pointer may still point into them), except pages the block
  // never plausibly owned.
  {
    std::vector<BlockId> Bad;
    Heap.Blocks.forEach([&](BlockId Id, BlockDescriptor &B) {
      bool Garbage =
          B.NumPages == 0 || B.ObjectCount == 0 ||
          !Pages.inPotentialHeap(B.StartPage) ||
          !Pages.inPotentialHeap(B.StartPage + B.NumPages - 1) ||
          B.StartPage + B.NumPages > Pages.committedLimitPage() ||
          B.ObjectSize == 0 ||
          B.FirstObjectOffset + uint64_t(B.ObjectCount) * B.ObjectSize >
              uint64_t(B.NumPages) * PageSize ||
          (B.IsLarge && B.ObjectCount != 1);
      if (Garbage)
        Bad.push_back(Id);
    });
    for (BlockId Id : Bad) {
      BlockDescriptor &B = Heap.Blocks.get(Id);
      bool PagesPlausible =
          B.NumPages != 0 && Pages.inPotentialHeap(B.StartPage) &&
          Pages.inPotentialHeap(B.StartPage + B.NumPages - 1) &&
          B.StartPage + B.NumPages <= Pages.committedLimitPage();
      if (PagesPlausible) {
        Pages.quarantineRun(B.StartPage, B.NumPages);
        Stats.PagesQuarantined += B.NumPages;
      }
      Heap.Blocks.destroy(Id);
      ++Stats.BlocksQuarantined;
      QuarantinedBlocks.push_back(Id);
    }
  }

  // (b) Per-block bitmap/counter repair.  The bitmaps are the source of
  // truth: counters resync to them, overlap resolves in favor of
  // "allocated" (freeing a live object is the one unrecoverable move).
  Heap.Blocks.forEach([&](BlockId, BlockDescriptor &B) {
    bool Resynced = false;
    for (uint32_t Slot = 0; Slot != B.ObjectCount; ++Slot)
      if (B.AllocBits.test(Slot) && B.PinnedBits.test(Slot)) {
        B.PinnedBits.reset(Slot);
        Resynced = true;
      }
    if (B.MarkBits.count() > B.ObjectCount) {
      // Marks are rebuilt every cycle; clearing is always safe here
      // (repair runs with the cycle abandoned and marks invalidated).
      B.MarkBits.clearAll();
      Resynced = true;
    }
    if (B.IsLarge && B.AllocBits.count() == 0) {
      // A large block exists only to hold its object; resurrect the
      // bit rather than leave a phantom empty block.
      B.AllocBits.set(0);
      Resynced = true;
    }
    uint32_t AllocCount = static_cast<uint32_t>(B.AllocBits.count());
    if (B.AllocatedCount != AllocCount) {
      B.AllocatedCount = AllocCount;
      Resynced = true;
    }
    uint32_t PinCount = static_cast<uint32_t>(B.PinnedBits.count());
    if (B.PinnedCount != PinCount) {
      B.PinnedCount = PinCount;
      Resynced = true;
    }
    if (Resynced)
      ++Stats.CountersResynced;
  });

  // (c) Re-derive the page map from the block table: reset the arena
  // range, then stamp each block's run.  A block colliding with an
  // already-stamped page loses — it is quarantined (its non-colliding
  // pages too: their contents are unknown).
  {
    PageIndex Base = Pages.arenaBasePage();
    PageIndex Limit = Pages.committedLimitPage();
    if (Limit > Base)
      Map.clearRun(Base, Limit - Base);
    std::vector<BlockId> Colliding;
    Heap.Blocks.forEach([&](BlockId Id, BlockDescriptor &B) {
      bool Collides = false;
      for (uint32_t P = 0; P != B.NumPages; ++P)
        if (Map.blockAt(B.StartPage + P) != InvalidBlockId) {
          Collides = true;
          break;
        }
      if (Collides) {
        Colliding.push_back(Id);
        return;
      }
      for (uint32_t P = 0; P != B.NumPages; ++P)
        Map.setRaw(B.StartPage + P, Id);
    });
    for (BlockId Id : Colliding) {
      BlockDescriptor &B = Heap.Blocks.get(Id);
      for (uint32_t P = 0; P != B.NumPages; ++P) {
        if (Map.blockAt(B.StartPage + P) == InvalidBlockId) {
          Pages.quarantineRun(B.StartPage + P, 1);
          ++Stats.PagesQuarantined;
        }
      }
      Heap.Blocks.destroy(Id);
      ++Stats.BlocksQuarantined;
      QuarantinedBlocks.push_back(Id);
    }
    ++Stats.PageMapRederivations;
  }

  // (d) Rebuild the class lists from scratch: every small block with a
  // usable slot gets re-listed; the lazy-sweep queue is dropped (the
  // queued blocks' garbage is simply collected next cycle instead).
  {
    for (ObjectHeap::ClassList &List : Heap.ClassLists) {
      List.Partial.clear();
      List.Stack.clear();
      List.Unswept.clear();
    }
    for (auto &[Id, List] : Heap.TypedClassLists) {
      (void)Id;
      List.Partial.clear();
      List.Stack.clear();
      List.Unswept.clear();
    }
    Heap.PendingSweeps = 0;
    Heap.Blocks.forEach([&](BlockId Id, BlockDescriptor &B) {
      if (!B.IsLarge && B.usableFreeCount() > 0)
        Heap.addToClassList(B, Id);
    });
    ++Stats.FreeListRebuilds;
  }

  // (e) Rebuild the free runs as the complement of (block-owned ∪
  // quarantined) within the committed range.
  {
    PageIndex Base = Pages.arenaBasePage();
    PageIndex Limit = Pages.committedLimitPage();
    std::vector<bool> Owned(Limit - Base, false);
    Heap.Blocks.forEach([&](BlockId, BlockDescriptor &B) {
      for (uint32_t P = 0; P != B.NumPages; ++P)
        Owned[B.StartPage + P - Base] = true;
    });
    Pages.forEachQuarantinedRun([&](PageIndex Start, uint32_t Length) {
      for (uint32_t P = 0; P != Length; ++P)
        if (Start + P >= Base && Start + P < Limit)
          Owned[Start + P - Base] = true;
    });
    std::vector<std::pair<PageIndex, uint32_t>> Runs;
    for (PageIndex P = 0; P < Limit - Base;) {
      if (Owned[P]) {
        ++P;
        continue;
      }
      PageIndex RunStart = P;
      while (P < Limit - Base && !Owned[P])
        ++P;
      Runs.emplace_back(Base + RunStart, P - RunStart);
    }
    Pages.rebuildFreeRuns(Runs);
  }

  // (f) Recompute the heap-wide allocated-bytes counter.
  {
    uint64_t Bytes = 0;
    Heap.Blocks.forEach([&](BlockId, BlockDescriptor &B) {
      Bytes += uint64_t(B.AllocatedCount) * B.ObjectSize;
    });
    Heap.AllocatedBytes = Bytes;
  }

  // Annotate the pre-repair findings with what happened to them.
  for (VerifyFinding &F : Pre.Findings) {
    bool BlockGone = false;
    for (BlockId Q : QuarantinedBlocks)
      BlockGone |= Q == F.Block;
    if (BlockGone) {
      F.Outcome = VerifyRepairOutcome::Quarantined;
      continue;
    }
    switch (F.Kind) {
    case VerifyFindingKind::Generic:
    case VerifyFindingKind::GuardSmash:
      // Collector-level notes aren't heap metadata; guard smashes are
      // client-memory damage no metadata rebuild can undo.
      F.Outcome = VerifyRepairOutcome::NotAttempted;
      break;
    default:
      F.Outcome = VerifyRepairOutcome::Repaired;
      ++Stats.FindingsRepaired;
      break;
    }
  }

  // Re-verify: the repaired heap must satisfy every invariant again
  // (guard smashes excepted — those persist until the smashed objects
  // die or the client is told).
  HeapVerifyReport Post = run();
  bool OnlyGuardSmashes = true;
  for (const VerifyFinding &F : Post.Findings)
    OnlyGuardSmashes &= F.Kind == VerifyFindingKind::GuardSmash;
  Pre.RepairedClean = Post.clean() || OnlyGuardSmashes;
  return Pre;
}

} // namespace cgc
