//===- heap/HeapVerifier.cpp - Deep heap consistency checker --------------===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//

#include "heap/HeapVerifier.h"
#include "heap/ObjectHeap.h"
#include <cstdio>

namespace cgc {

void HeapVerifyReport::notef(const char *Fmt, ...) {
  char Buffer[512];
  va_list Args;
  va_start(Args, Fmt);
  std::vsnprintf(Buffer, sizeof(Buffer), Fmt, Args);
  va_end(Args);
  Issues.emplace_back(Buffer);
}

std::string HeapVerifyReport::str() const {
  std::string Out;
  for (const std::string &Issue : Issues) {
    Out += Issue;
    Out += '\n';
  }
  return Out;
}

HeapVerifyReport HeapVerifier::run() {
  HeapVerifyReport R;
  PageAllocator &Pages = Heap.Pages;
  PageMap &Map = Heap.Map;

  // --- Block table ↔ page map ↔ bitmaps ↔ byte accounting. ---
  uint64_t BytesSeen = 0;
  uint64_t BlockOwnedPages = 0;
  Heap.Blocks.forEach([&](BlockId Id, BlockDescriptor &Block) {
    if (Block.NumPages == 0 || Block.ObjectCount == 0) {
      R.notef("block %u: degenerate (%u pages, %u slots)", Id,
              Block.NumPages, Block.ObjectCount);
      return; // Geometry is garbage; further checks would divide by it.
    }
    if (!Pages.inPotentialHeap(Block.StartPage) ||
        !Pages.inPotentialHeap(Block.StartPage + Block.NumPages - 1))
      R.notef("block %u: pages [%llu, %llu) outside the heap arena", Id,
              (unsigned long long)Block.StartPage,
              (unsigned long long)(Block.StartPage + Block.NumPages));
    if (Block.StartPage + Block.NumPages > Pages.committedLimitPage())
      R.notef("block %u: extends past the committed limit %llu", Id,
              (unsigned long long)Pages.committedLimitPage());
    if (Block.FirstObjectOffset +
            uint64_t(Block.ObjectCount) * Block.ObjectSize >
        uint64_t(Block.NumPages) * PageSize)
      R.notef("block %u: %u slots of %u bytes overflow %u pages", Id,
              Block.ObjectCount, Block.ObjectSize, Block.NumPages);
    for (uint32_t P = 0; P != Block.NumPages; ++P) {
      if (Map.blockAt(Block.StartPage + P) != Id) {
        R.notef("block %u: page map entry for page %llu points elsewhere",
                Id, (unsigned long long)(Block.StartPage + P));
        break; // One line per block is enough to localize it.
      }
    }
    if (Block.AllocBits.count() != Block.AllocatedCount)
      R.notef("block %u: alloc bitmap has %llu bits set, counter says %u",
              Id, (unsigned long long)Block.AllocBits.count(),
              Block.AllocatedCount);
    if (Block.PinnedBits.count() != Block.PinnedCount)
      R.notef("block %u: pinned bitmap has %llu bits set, counter says %u",
              Id, (unsigned long long)Block.PinnedBits.count(),
              Block.PinnedCount);
    if (Block.AllocatedCount + Block.PinnedCount > Block.ObjectCount)
      R.notef("block %u: %u allocated + %u pinned exceed %u slots", Id,
              Block.AllocatedCount, Block.PinnedCount, Block.ObjectCount);
    BitVector Overlap = Block.AllocBits;
    Overlap.andWith(Block.PinnedBits);
    if (Overlap.count() != 0)
      R.notef("block %u: %llu slots both allocated and pinned", Id,
              (unsigned long long)Overlap.count());
    if (Block.MarkBits.count() > Block.ObjectCount)
      R.notef("block %u: mark bitmap has %llu bits set for %u slots", Id,
              (unsigned long long)Block.MarkBits.count(), Block.ObjectCount);
    if (Block.IsLarge &&
        (Block.ObjectCount != 1 || Block.AllocatedCount != 1))
      R.notef("block %u: large block must hold exactly one object "
              "(%u slots, %u allocated)",
              Id, Block.ObjectCount, Block.AllocatedCount);
    // Every small block with usable space must be reachable by the
    // allocator: listed on its class list or queued for lazy sweep.
    // (The LIFO ablation prunes its stacks lazily, so only the
    // address-ordered discipline supports this check.)
    if (!Block.IsLarge && Block.usableFreeCount() > 0 &&
        Heap.Config.AddressOrderedAllocation) {
      ObjectHeap::ClassList &List = Heap.classListFor(Block);
      bool Listed = List.Partial.count(Block.StartPage) != 0;
      bool Queued = false;
      for (BlockId Q : List.Unswept)
        Queued |= Q == Id;
      if (!Listed && !Queued)
        R.notef("block %u: has %u usable free slots but is invisible to "
                "the allocator",
                Id, Block.usableFreeCount());
    }
    // Guarded mode: every allocated untyped slot must carry an intact
    // header and redzone — unless it is parked in the quarantine, where
    // the whole slot is poison instead (checked at flush time, not
    // here: a verifier pass must stay side-effect free).
    if (Heap.Config.Guards && Block.LayoutId == 0) {
      const GuardLayer *Guards = Heap.Config.Guards;
      for (uint32_t Slot = 0; Slot != Block.ObjectCount; ++Slot) {
        if (!Block.AllocBits.test(Slot))
          continue;
        WindowOffset Base = Block.slotOffset(Slot);
        if (Guards->isQuarantined(Base))
          continue;
        GuardLayer::Decoded Info = GuardLayer::inspect(
            Heap.Arena.pointerTo(Base), Block.ObjectSize);
        if (!Info.HeaderIntact)
          R.notef("block %u slot %u: guard header smashed (offset 0x%llx)",
                  Id, Slot, (unsigned long long)Base);
        else if (!Info.RedzoneIntact)
          R.notef("block %u slot %u: guard redzone smashed (seqno %llu, "
                  "offset 0x%llx)",
                  Id, Slot, (unsigned long long)Info.Seqno,
                  (unsigned long long)Base);
      }
    }
    BytesSeen += uint64_t(Block.AllocatedCount) * Block.ObjectSize;
    BlockOwnedPages += Block.NumPages;
  });
  if (BytesSeen != Heap.AllocatedBytes)
    R.notef("allocated-bytes accounting: blocks hold %llu bytes, counter "
            "says %llu",
            (unsigned long long)BytesSeen,
            (unsigned long long)Heap.AllocatedBytes);

  // --- Class lists point at live, matching blocks. ---
  size_t QueuedBlocks = 0;
  auto CheckList = [&](const ObjectHeap::ClassList &List, const char *What) {
    for (const auto &[StartPage, Id] : List.Partial) {
      if (!Heap.Blocks.isLive(Id)) {
        R.notef("%s class list: entry for page %llu names dead block %u",
                What, (unsigned long long)StartPage, Id);
        continue;
      }
      const BlockDescriptor &Block = Heap.Blocks.get(Id);
      if (Block.StartPage != StartPage)
        R.notef("%s class list: key page %llu but block %u starts at %llu",
                What, (unsigned long long)StartPage, Id,
                (unsigned long long)Block.StartPage);
      if (Block.IsLarge)
        R.notef("%s class list: large block %u listed", What, Id);
      if (Block.usableFreeCount() == 0)
        R.notef("%s class list: block %u listed with no usable slot", What,
                Id);
    }
    // Unswept entries may name blocks released meanwhile (the queue is
    // pruned lazily); only count them against the pending total.
    QueuedBlocks += List.Unswept.size();
  };
  for (const ObjectHeap::ClassList &List : Heap.ClassLists)
    CheckList(List, "untyped");
  for (const auto &[LayoutId, List] : Heap.TypedClassLists) {
    (void)LayoutId;
    CheckList(List, "typed");
  }
  if (QueuedBlocks != Heap.PendingSweeps)
    R.notef("lazy-sweep queue holds %llu entries, counter says %llu",
            (unsigned long long)QueuedBlocks,
            (unsigned long long)Heap.PendingSweeps);

  // --- Free runs ↔ page map ↔ committed-page partition. ---
  uint64_t FreePages = 0;
  PageIndex PrevEnd = 0;
  bool FirstRun = true;
  Pages.forEachFreeRun([&](PageIndex Start, uint32_t Length) {
    if (Length == 0)
      R.notef("free run at page %llu: zero length",
              (unsigned long long)Start);
    if (Start < Pages.arenaBasePage() ||
        Start + Length > Pages.committedLimitPage())
      R.notef("free run [%llu, %llu) outside the committed arena "
              "[%llu, %llu)",
              (unsigned long long)Start,
              (unsigned long long)(Start + Length),
              (unsigned long long)Pages.arenaBasePage(),
              (unsigned long long)Pages.committedLimitPage());
    if (!FirstRun && Start <= PrevEnd)
      R.notef("free run at page %llu %s the previous run ending at %llu",
              (unsigned long long)Start,
              Start < PrevEnd ? "overlaps" : "abuts (uncoalesced)",
              (unsigned long long)PrevEnd);
    FirstRun = false;
    PrevEnd = Start + Length;
    FreePages += Length;
    for (uint32_t P = 0; P != Length; ++P) {
      if (Map.blockAt(Start + P) != InvalidBlockId) {
        R.notef("free run [%llu, %llu): page %llu owned by block %u",
                (unsigned long long)Start,
                (unsigned long long)(Start + Length),
                (unsigned long long)(Start + P), Map.blockAt(Start + P));
        break;
      }
    }
  });
  uint64_t Committed = Pages.committedLimitPage() - Pages.arenaBasePage();
  if (BlockOwnedPages + FreePages != Committed)
    R.notef("committed-page partition: %llu block-owned + %llu free != "
            "%llu committed",
            (unsigned long long)BlockOwnedPages,
            (unsigned long long)FreePages, (unsigned long long)Committed);
  if (Pages.stats().CommittedPages != Committed)
    R.notef("page stats: CommittedPages says %llu, commit limit implies "
            "%llu",
            (unsigned long long)Pages.stats().CommittedPages,
            (unsigned long long)Committed);
  return R;
}

} // namespace cgc
