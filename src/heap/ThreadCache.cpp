//===- heap/ThreadCache.cpp - Per-thread allocation caches ----------------===//

#include "heap/ThreadCache.h"
#include "heap/ObjectHeap.h"

using namespace cgc;

ThreadCache::ThreadCache(unsigned NumClasses, unsigned SlotsPerClass)
    : Stubs(NumClasses), SlotsPerClass(SlotsPerClass) {
  for (std::vector<void *> &Stub : Stubs)
    Stub.reserve(SlotsPerClass);
}

unsigned ThreadCache::refill(ObjectHeap &Heap, unsigned Class) {
  std::vector<void *> &Stub = Stubs[Class];
  unsigned Want = SlotsPerClass - static_cast<unsigned>(Stub.size());
  unsigned Got = 0;
  for (; Got != Want; ++Got) {
    void *Slot = Heap.reserveCacheSlot(Class);
    if (Slot == nullptr)
      break;
    Stub.push_back(Slot);
  }
  if (Got != 0) {
    ++Refills;
    SlotsRefilledTotal += Got;
  }
  return Got;
}

unsigned ThreadCache::refillTyped(ObjectHeap &Heap, LayoutId Layout) {
  TypedStubList &Typed = TypedStubs[Layout];
  unsigned Want = SlotsPerClass - static_cast<unsigned>(Typed.Stubs.size());
  unsigned Got = 0;
  for (; Got != Want; ++Got) {
    void *Slot = Heap.reserveTypedCacheSlot(Layout);
    if (Slot == nullptr)
      break;
    Typed.Stubs.push_back(Slot);
  }
  if (Got != 0) {
    Typed.SlotBytes = Heap.sizeClassBytes(
        Heap.sizeClassFor(Heap.layout(Layout).SizeBytes));
    ++Refills;
    SlotsRefilledTotal += Got;
  }
  return Got;
}

uint64_t ThreadCache::flush(ObjectHeap &Heap) {
  uint64_t Released = 0;
  for (std::vector<void *> &Stub : Stubs) {
    // Release in reverse so the block's free bits come back in the
    // order the refill took them; the next sequential allocation then
    // sees the same lowest-slot-first heap a never-cached run would.
    while (!Stub.empty()) {
      Heap.releaseCacheSlot(Stub.back());
      Stub.pop_back();
      ++Released;
    }
  }
  // Typed stubs after every untyped one, in ascending descriptor-id
  // order (the map's order), reversed within each for the same
  // lowest-slot-first reason.
  for (auto &[Layout, Typed] : TypedStubs) {
    while (!Typed.Stubs.empty()) {
      Heap.releaseCacheSlot(Typed.Stubs.back());
      Typed.Stubs.pop_back();
      ++Released;
    }
  }
  SlotsFlushedTotal += Released;
  return Released;
}
