//===- heap/PageAllocator.h - Page-run allocator ---------------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Allocates runs of pages inside the heap arena (a sub-range of the
/// window chosen by the placement policy).  Three of the paper's
/// techniques live here:
///
///   * *Placement*: the arena's base offset is configurable, so the heap
///     can sit where random data words are unlikely to point (high bits
///     neither all zeros nor all ones, outside the ASCII byte range).
///   * *Blacklist-aware allocation*: before handing out a run, the
///     allocator consults a per-page predicate.  Pointer-containing
///     allocations refuse blacklisted first pages, and when interior
///     pointers force whole-object retention, refuse runs that *span*
///     blacklisted pages.  Pointer-free allocations ignore the
///     blacklist, reclaiming those pages at near-zero risk.
///   * *Address-ordered free runs*: free runs are kept and allocated in
///     address order, which the paper notes is cheap for a collector and
///     reduces fragmentation versus LIFO reuse.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_HEAP_PAGEALLOCATOR_H
#define CGC_HEAP_PAGEALLOCATOR_H

#include "heap/HeapUnits.h"
#include "heap/VirtualArena.h"
#include "support/MetadataArena.h"
#include <functional>
#include <map>
#include <optional>

namespace cgc {

/// Blacklist requirement for a page-run allocation.
enum class PageConstraint {
  /// Any pages will do (pointer-free objects).
  None,
  /// The first page must not be blacklisted (pointer-containing objects
  /// when only object-base pointers are honored).
  FirstPageClean,
  /// No page of the run may be blacklisted (pointer-containing objects
  /// when arbitrary interior pointers are honored).
  AllPagesClean,
};

struct PageAllocatorStats {
  uint64_t CommittedPages = 0;
  uint64_t FreePages = 0;
  uint64_t AllocatedPages = 0;
  /// Pages passed over during searches because of the blacklist.
  uint64_t BlacklistSkippedPages = 0;
  /// Allocation requests that had to grow the heap.
  uint64_t GrowEvents = 0;
  /// Requests that failed even after growing to the arena limit.
  uint64_t FailedRequests = 0;
  /// Pages deliberately leaked by verify-and-repair: their metadata was
  /// irreparable, so they are withdrawn from circulation forever.
  uint64_t QuarantinedPages = 0;
};

class PageAllocator {
public:
  /// \param Arena        the reserved window.
  /// \param BasePage     first page of the heap arena within the window.
  /// \param MaxPages     arena capacity; the heap never extends past it.
  /// \param GrowthPages  commit increment when the heap grows.
  /// \param DecommitFreed return freed pages to the OS (zero-filled on
  ///                      reuse).
  /// \param MetaArena    optional sealable arena for free-run nodes.
  PageAllocator(VirtualArena &Arena, PageIndex BasePage, PageIndex MaxPages,
                uint32_t GrowthPages, bool DecommitFreed,
                MetadataArena *MetaArena = nullptr);

  /// Installs the per-page blacklist predicate (may be empty).
  void setBlacklistQuery(std::function<bool(PageIndex)> Query) {
    IsBlacklisted = std::move(Query);
  }

  /// Allocates \p NumPages contiguous pages honoring \p Constraint.
  /// Grows the committed heap if needed.  \returns the starting page, or
  /// std::nullopt if the arena limit is reached.
  std::optional<PageIndex> allocateRun(uint32_t NumPages,
                                       PageConstraint Constraint);

  /// Returns a run to the free pool, coalescing with neighbors.
  void freeRun(PageIndex Start, uint32_t NumPages);

  /// First page of the heap arena (potential heap start).
  PageIndex arenaBasePage() const { return BasePage; }
  /// One past the last page the arena may ever use.
  PageIndex arenaLimitPage() const { return BasePage + MaxPages; }
  /// One past the last committed heap page.
  PageIndex committedLimitPage() const { return CommitLimit; }

  /// \returns true if \p Page lies in the *potential* heap: committed or
  /// not, it could become an object address through later allocation.
  /// This is the "vicinity of the heap" test of the paper's Figure 2.
  bool inPotentialHeap(PageIndex Page) const {
    return Page >= BasePage && Page < arenaLimitPage();
  }

  const PageAllocatorStats &stats() const { return Stats; }

  /// Number of free pages currently committed but unused.
  uint64_t freePageCount() const;

  /// Calls \p Fn(Start, Length) for each free run in address order.
  template <typename FnT> void forEachFreeRun(FnT Fn) const {
    for (const auto &[Start, Length] : FreeRuns)
      Fn(Start, Length);
  }

  /// Withdraws [Start, Start+NumPages) from circulation permanently:
  /// the run is recorded as quarantined and will never be handed out
  /// again.  Repair quarantines pages whose metadata cannot be
  /// reconstructed — a deliberate leak beats a dangling reuse.  The
  /// caller is responsible for removing the run from the free pool
  /// (rebuildFreeRuns does this wholesale).
  void quarantineRun(PageIndex Start, uint32_t NumPages);

  /// True when \p Page lies in a quarantined run.
  bool pageQuarantined(PageIndex Page) const;

  /// Calls \p Fn(Start, Length) for each quarantined run.
  template <typename FnT> void forEachQuarantinedRun(FnT Fn) const {
    for (const auto &[Start, Length] : Quarantined)
      Fn(Start, Length);
  }

  /// Repair entry point: discards the (possibly corrupt) free-run set
  /// and re-adds \p Runs, which must be disjoint, ascending, and inside
  /// [arenaBasePage(), committedLimitPage()).  Freed pages are
  /// decommitted per policy, exactly as an ordinary freeRun would.
  void rebuildFreeRuns(
      const std::vector<std::pair<PageIndex, uint32_t>> &Runs);

private:
  /// Searches existing free runs for a feasible start.
  std::optional<PageIndex> findInFreeRuns(uint32_t NumPages,
                                          PageConstraint Constraint);

  /// Finds a feasible start inside [RunStart, RunStart+RunLen), or
  /// nullopt.  Updates BlacklistSkippedPages.
  std::optional<PageIndex> findInRun(PageIndex RunStart, uint32_t RunLen,
                                     uint32_t NumPages,
                                     PageConstraint Constraint);

  /// Commits more of the arena; \returns false at the arena limit.
  bool grow(uint32_t AtLeastPages);

  /// Removes [Start, Start+NumPages) from the free run that contains it.
  void carveFromFreeRun(PageIndex Start, uint32_t NumPages);

  bool pageBlacklisted(PageIndex Page) const {
    return IsBlacklisted && IsBlacklisted(Page);
  }

  VirtualArena &Arena;
  PageIndex BasePage;
  PageIndex MaxPages;
  uint32_t GrowthPages;
  bool DecommitFreed;
  PageIndex CommitLimit; ///< One past the last committed page.
  /// Free and quarantined runs live in the sealable arena (when one is
  /// configured) — their link structure is exactly the metadata a wild
  /// store corrupts.
  using RunMap =
      std::map<PageIndex, uint32_t, std::less<PageIndex>,
               MetadataAllocator<std::pair<const PageIndex, uint32_t>>>;
  RunMap FreeRuns;
  RunMap Quarantined;
  std::function<bool(PageIndex)> IsBlacklisted;
  PageAllocatorStats Stats;
};

} // namespace cgc

#endif // CGC_HEAP_PAGEALLOCATOR_H
