//===- heap/BlockTable.h - Block descriptors -------------------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-block metadata.  A *block* is a run of pages holding either many
/// identical small-object slots (small block, one page) or one large
/// object (large block, >= one page).  All metadata — including mark
/// bits — lives off-page in the descriptor, so the collector never scans
/// its own bookkeeping and client objects need no headers.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_HEAP_BLOCKTABLE_H
#define CGC_HEAP_BLOCKTABLE_H

#include "heap/HeapUnits.h"
#include "heap/ObjectKind.h"
#include "support/Assert.h"
#include "support/BitVector.h"
#include "support/MetadataArena.h"
#include <memory>
#include <vector>

namespace cgc {

struct BlockDescriptor {
  PageIndex StartPage = 0;
  uint32_t NumPages = 0;
  /// Slot size for small blocks; exact requested size for large blocks.
  uint32_t ObjectSize = 0;
  /// Number of slots (1 for large blocks).
  uint32_t ObjectCount = 0;
  /// Byte offset from the block start to the first slot.  Nonzero when
  /// the heap avoids giving objects addresses with many trailing zeros
  /// (the paper's Figure-1 countermeasure).
  uint32_t FirstObjectOffset = 0;
  ObjectKind Kind = ObjectKind::Normal;
  bool IsLarge = false;
  /// Nonzero: objects carry a registered layout (see ObjectHeap's
  /// layout registry); the marker scans only the words the layout marks
  /// as pointers.  This is the paper's "less conservative" end of the
  /// spectrum — exact heap information, conservative roots.
  uint32_t LayoutId = 0;
  /// Large-object option (paper, observation 7): pointers beyond the
  /// first page do not retain this object, regardless of the global
  /// interior-pointer policy.  Lets huge objects coexist with a
  /// blacklist-rich address space.
  bool IgnoreOffPage = false;
  /// One mark bit per slot; rebuilt by every collection.  During the
  /// Mark phase these are the only descriptor bits written, and only
  /// through testAndSetMark, so N mark workers can share the table.
  BitVector MarkBits;
  /// One bit per slot: the slot holds a client-allocated object.  Kept
  /// off-heap so the allocator never writes link words into client
  /// memory — the collector must not manufacture stale heap pointers
  /// itself (the paper's "clean up after themselves" discipline).
  BitVector AllocBits;
  /// One bit per slot: the slot is free but was marked by the last
  /// collection (a false reference points at it), so it must not be
  /// reused until a later collection clears the reference.  This is the
  /// paper's "false references render a section of memory unusable ...
  /// some blacklisting occurs implicitly, after the fact".
  BitVector PinnedBits;
  /// Number of set bits in AllocBits, maintained incrementally.
  uint32_t AllocatedCount = 0;
  /// Number of set bits in PinnedBits.
  uint32_t PinnedCount = 0;

  uint32_t usableFreeCount() const {
    return ObjectCount - AllocatedCount - PinnedCount;
  }

  /// Atomically marks \p Slot; \returns true if it was already marked.
  /// The one mark-bitmap mutation mark workers may perform in parallel.
  bool testAndSetMark(uint32_t Slot) {
    return MarkBits.testAndSetAtomic(Slot);
  }

  WindowOffset startOffset() const { return offsetOfPage(StartPage); }
  WindowOffset endOffset() const {
    return offsetOfPage(StartPage) + uint64_t(NumPages) * PageSize;
  }
  WindowOffset firstSlotOffset() const {
    return startOffset() + FirstObjectOffset;
  }

  /// \returns the slot index containing window offset \p Offset, or -1
  /// if \p Offset is not inside any slot (header gap or tail waste).
  int32_t slotContaining(WindowOffset Offset) const {
    WindowOffset First = firstSlotOffset();
    if (Offset < First)
      return -1;
    uint64_t Delta = Offset - First;
    uint64_t Slot = Delta / ObjectSize;
    if (Slot >= ObjectCount)
      return -1;
    return static_cast<int32_t>(Slot);
  }

  WindowOffset slotOffset(uint32_t Slot) const {
    CGC_ASSERT(Slot < ObjectCount, "slot index out of range");
    return firstSlotOffset() + uint64_t(Slot) * ObjectSize;
  }
};

/// Owns every live block descriptor and recycles identifiers.  With a
/// MetadataArena, descriptors are placement-constructed in sealable
/// pages so wild stores into them fault instead of corrupting silently
/// (their BitVector word arrays still live on the ordinary heap — a
/// documented gap; the verifier cross-checks catch those).
class BlockTable {
public:
  explicit BlockTable(MetadataArena *Arena = nullptr) : Arena(Arena) {}
  ~BlockTable();

  BlockTable(const BlockTable &) = delete;
  BlockTable &operator=(const BlockTable &) = delete;

  /// Creates a descriptor and returns its id (never InvalidBlockId).
  BlockId create();

  /// Destroys descriptor \p Id; the id may be reused later.
  void destroy(BlockId Id);

  BlockDescriptor &get(BlockId Id) {
    CGC_ASSERT(isLive(Id), "dereferencing a dead block id");
    return *Blocks[Id - 1];
  }

  const BlockDescriptor &get(BlockId Id) const {
    CGC_ASSERT(isLive(Id), "dereferencing a dead block id");
    return *Blocks[Id - 1];
  }

  /// Attributes a wild metadata write: when \p Addr lands inside a live
  /// descriptor object, \returns its id (else InvalidBlockId).  Linear
  /// scan — only the incident-report path uses it.
  BlockId descriptorContaining(const void *Addr) const {
    uintptr_t A = reinterpret_cast<uintptr_t>(Addr);
    for (BlockId Id = 1; Id <= Blocks.size(); ++Id) {
      const BlockDescriptor *D = Blocks[Id - 1];
      if (!D)
        continue;
      uintptr_t Base = reinterpret_cast<uintptr_t>(D);
      if (A >= Base && A < Base + sizeof(BlockDescriptor))
        return Id;
    }
    return InvalidBlockId;
  }

  bool isLive(BlockId Id) const {
    return Id != InvalidBlockId && Id <= Blocks.size() &&
           Blocks[Id - 1] != nullptr;
  }

  size_t liveCount() const { return NumLive; }

  /// Calls \p Fn(BlockId, BlockDescriptor&) on every live block in id
  /// order.  Sweeping iterates this way and relies on ids being stable
  /// across the callback (the callback may destroy the current block).
  template <typename FnT> void forEach(FnT Fn) {
    for (BlockId Id = 1; Id <= Blocks.size(); ++Id)
      if (Blocks[Id - 1])
        Fn(Id, *Blocks[Id - 1]);
  }

private:
  BlockDescriptor *newDescriptor();
  void deleteDescriptor(BlockDescriptor *D);

  MetadataArena *Arena;
  std::vector<BlockDescriptor *> Blocks;
  std::vector<BlockId> FreeIds;
  size_t NumLive = 0;
};

} // namespace cgc

#endif // CGC_HEAP_BLOCKTABLE_H
