//===- heap/ThreadCache.h - Per-thread allocation caches -------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-mutator-thread allocation cache: one LIFO stub of pre-reserved
/// slots per small-object size class, refilled in batches from the
/// shared ObjectHeap under the heap lock and consumed lock-free by the
/// owning thread.  This is the conservative-GC shape of thread-local
/// allocation (bdwgc's thread-local free lists, Nofl's lab pointers):
///
///   * Refill pops free slots through the heap's ordinary address-
///     ordered discipline and leaves their AllocBits SET, so a cached
///     slot looks allocated to everything else — the sweep never
///     reclaims it out from under the owner, and the page can never be
///     released while slots from it sit in a cache.
///   * take() is a plain pop on thread-owned vectors: no atomics, no
///     lock, no shared state.  The slow path (empty stub) goes back to
///     the collector, which refills under the heap lock.
///   * At every stop-the-world handshake (and at unregister) the
///     collector flushes all caches: unused slots return to the heap's
///     free state with their reservation accounting reversed, so the
///     marks/sweep that follow see exactly the objects the client
///     actually holds — retained sets stay exact, and the heap verifier
///     can insist the refill/release debt nets to zero.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_HEAP_THREADCACHE_H
#define CGC_HEAP_THREADCACHE_H

#include "heap/TypeDescriptor.h"
#include <cstdint>
#include <map>
#include <vector>

namespace cgc {

class ObjectHeap;

class ThreadCache {
public:
  /// \p NumClasses stubs (one per small size class), each refilled to
  /// at most \p SlotsPerClass slots.
  ThreadCache(unsigned NumClasses, unsigned SlotsPerClass);

  /// Lock-free fast path: pops a cached slot of \p Class, or null when
  /// the stub is empty.  Owner thread only.
  void *take(unsigned Class) {
    std::vector<void *> &Stub = Stubs[Class];
    if (Stub.empty())
      return nullptr;
    void *Result = Stub.back();
    Stub.pop_back();
    ++Hits;
    return Result;
  }

  /// Refills \p Class's stub from \p Heap's existing blocks up to the
  /// per-class capacity.  Caller holds the heap lock.  \returns the
  /// number of slots added (0 means the heap needs a new block — the
  /// caller drives the ordinary growth/collection ladder and retries).
  unsigned refill(ObjectHeap &Heap, unsigned Class);

  /// Lock-free fast path for typed allocation: pops a cached slot of
  /// Precise descriptor \p Layout, or null when no stub exists or it is
  /// empty.  On success \p SlotBytes receives the slot's size-class
  /// capacity (recorded at refill time, so the fast path never reads
  /// the descriptor table).  Owner thread only.
  void *takeTyped(LayoutId Layout, size_t &SlotBytes) {
    auto It = TypedStubs.find(Layout);
    if (It == TypedStubs.end() || It->second.Stubs.empty())
      return nullptr;
    void *Result = It->second.Stubs.back();
    It->second.Stubs.pop_back();
    SlotBytes = It->second.SlotBytes;
    ++Hits;
    return Result;
  }

  /// Refills \p Layout's typed stub up to the per-class capacity.  Only
  /// legal for Precise descriptors (degenerate layouts route through
  /// the untyped kinds and the ordinary per-class stubs).  Caller holds
  /// the heap lock.
  unsigned refillTyped(ObjectHeap &Heap, LayoutId Layout);

  /// Returns every cached slot to \p Heap's free state.  Caller holds
  /// the heap lock with the owner thread parked (or is the owner, at
  /// unregister).  \returns the number of slots released.
  uint64_t flush(ObjectHeap &Heap);

  /// Visits every cached slot, untyped stubs first then typed stubs in
  /// ascending descriptor-id order.  The collector uses this to pin a
  /// signal-suspended owner's slots live for one cycle: reading the
  /// frozen owner's vectors is safe (each fast-path mutation leaves
  /// them consistent at instruction boundaries), where flushing them
  /// would not be.  Allocation-free.
  template <typename FnT> void forEachCachedSlot(FnT Fn) const {
    for (const std::vector<void *> &Stub : Stubs)
      for (void *Slot : Stub)
        Fn(Slot);
    for (const auto &[Layout, Typed] : TypedStubs)
      for (void *Slot : Typed.Stubs)
        Fn(Slot);
  }

  /// Slots currently sitting in stubs (untyped and typed).
  uint64_t cachedSlots() const {
    uint64_t Total = 0;
    for (const std::vector<void *> &Stub : Stubs)
      Total += Stub.size();
    for (const auto &[Layout, Typed] : TypedStubs)
      Total += Typed.Stubs.size();
    return Total;
  }

  unsigned slotsPerClass() const { return SlotsPerClass; }
  uint64_t hits() const { return Hits; }
  uint64_t refills() const { return Refills; }
  uint64_t slotsRefilled() const { return SlotsRefilledTotal; }
  uint64_t slotsFlushed() const { return SlotsFlushedTotal; }

private:
  /// One typed stub: cached slots of a single Precise descriptor plus
  /// their common size-class capacity.
  struct TypedStubList {
    std::vector<void *> Stubs;
    size_t SlotBytes = 0;
  };

  /// Stubs[Class] holds cached slot base pointers, popped LIFO.
  std::vector<std::vector<void *>> Stubs;
  /// Typed stubs keyed by descriptor id; ordered so the flush walks
  /// them deterministically (ascending id, after every untyped stub).
  std::map<LayoutId, TypedStubList> TypedStubs;
  unsigned SlotsPerClass;
  uint64_t Hits = 0;
  uint64_t Refills = 0;
  uint64_t SlotsRefilledTotal = 0;
  uint64_t SlotsFlushedTotal = 0;
};

} // namespace cgc

#endif // CGC_HEAP_THREADCACHE_H
