//===- heap/TypeDescriptor.h - Interned type layout descriptors *- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The descriptor-driven tracing layer's registry.  A TypeDescriptor
/// records which words of an object may hold pointers; the mark loop
/// dispatches on it so typed objects are traced precisely (the "exact
/// heap information, conservative stacks" regime the paper's survey
/// attributes to Bartlett's and Chailloux's collectors, and bdwgc's
/// typd_mlc.c ships in production) while untyped allocations keep the
/// paper's conservative word scan.
///
/// Descriptors are *interned*: registering the same {bitmap, size}
/// twice yields the same id, so library code (cords, the interpreter)
/// can re-register per collector without growing the table.  Two
/// degenerate bitmap shapes collapse onto today's ObjectKinds instead
/// of minting typed ids:
///
///   * all words pointer-bearing -> DescriptorClass::Conservative; the
///     allocation routes to the ordinary untyped Normal-kind path and
///     is scanned exactly like any untyped object.
///   * no word pointer-bearing  -> DescriptorClass::PointerFree; the
///     allocation routes to the PointerFree kind (never scanned, may
///     land on blacklisted pages).
///
/// Only genuinely mixed bitmaps become Precise descriptors with typed
/// (LayoutId != 0) heap blocks — which is what keeps every non-typed
/// code path (guarded heap, sweep order, caches) bit-identical to the
/// pre-descriptor collector.
///
/// The pointer bitmap is stored inline in one machine word for types of
/// up to 64 words (512 bytes — covering both in-tree adopters and the
/// fine-grained size classes) and out of line above that.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_HEAP_TYPEDESCRIPTOR_H
#define CGC_HEAP_TYPEDESCRIPTOR_H

#include "support/Assert.h"
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace cgc {

/// Identifier of an interned descriptor; 0 = fully conservative
/// (untyped).  The name predates the descriptor registry: block tables
/// and the C++ API grew up calling this a "layout" id.
using LayoutId = uint32_t;

/// How the mark loop treats an object's words.
enum class DescriptorClass : unsigned char {
  /// Every word is a potential pointer: the paper's conservative scan.
  Conservative = 0,
  /// Exactly the bitmap's words are traced; the rest are ignored, and
  /// a failed resolution of a traced word is a stale/foreign pointer,
  /// not a near miss — it never feeds the blacklist.
  Precise = 1,
  /// No word holds a pointer; the payload is never scanned.
  PointerFree = 2,
};

constexpr unsigned NumDescriptorClasses = 3;

constexpr const char *descriptorClassName(DescriptorClass Class) {
  switch (Class) {
  case DescriptorClass::Conservative:
    return "conservative";
  case DescriptorClass::Precise:
    return "precise";
  case DescriptorClass::PointerFree:
    return "pointer-free";
  }
  return "unknown";
}

/// One interned per-type layout descriptor.
class TypeDescriptor {
public:
  /// Types of up to this many words keep their bitmap inline.
  static constexpr uint32_t InlineWordLimit = 64;

  DescriptorClass Class = DescriptorClass::Conservative;
  /// Object size in bytes (granule-aligned at interning).
  uint32_t SizeBytes = 0;
  /// Object size in pointer-sized words.
  uint32_t NumWords = 0;

  bool wordMayHoldPointer(uint32_t Word) const {
    if (Word >= NumWords)
      return false;
    if (NumWords <= InlineWordLimit)
      return (InlineBits >> Word) & 1;
    return (OutOfLineBits[Word / 64] >> (Word % 64)) & 1;
  }

  /// First pointer-bearing word index at or after \p From; NumWords
  /// when none remains.  The precise scan loop strides with this.
  uint32_t findPointerWord(uint32_t From) const;

  /// Number of pointer-bearing words.
  uint32_t pointerWordCount() const;

  bool usesInlineBitmap() const { return NumWords <= InlineWordLimit; }

private:
  friend class TypeDescriptorTable;
  /// Pointer-word bitmap when NumWords <= InlineWordLimit.
  uint64_t InlineBits = 0;
  /// Bitmap words (64 object words each) beyond the inline limit.
  std::vector<uint64_t> OutOfLineBits;
};

/// The interned registry; one per ObjectHeap.
class TypeDescriptorTable {
public:
  /// Interns a descriptor for an object of \p SizeBytes whose word I
  /// may hold a pointer iff PointerWords[I] (words past the vector's
  /// end are pointer-free).  \p SizeBytes must already be granule-
  /// aligned.  Degenerate bitmaps classify as Conservative/PointerFree
  /// (see the file comment); identical registrations return the same
  /// id.
  LayoutId intern(const std::vector<bool> &PointerWords,
                  uint32_t SizeBytes);

  const TypeDescriptor &get(LayoutId Id) const {
    CGC_ASSERT(Id != 0 && Id <= Table.size(), "bad descriptor id");
    return Table[Id - 1];
  }

  /// Number of interned descriptors (ids are 1..size()).
  size_t size() const { return Table.size(); }

private:
  std::vector<TypeDescriptor> Table;
  /// Intern key: {size, normalized bitmap} -> id.
  std::map<std::pair<uint32_t, std::vector<uint64_t>>, LayoutId> Ids;
};

} // namespace cgc

#endif // CGC_HEAP_TYPEDESCRIPTOR_H
