//===- heap/ObjectHeap.h - Object-level allocator --------------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The object-level heap: small objects carved from single-page blocks
/// of equal-size slots, large objects on dedicated page runs.  Design
/// points that come straight from the paper:
///
///   * No object headers, no in-object free-list links.  All metadata —
///     mark bits, allocation bits, pin bits — lives off-heap in the
///     block descriptors, so the allocator never plants heap addresses
///     in reusable memory (§3.1: the allocator and collector should
///     "carefully clean up after themselves").
///   * Slots that a collection finds marked-but-free (a false reference
///     points at them) are *pinned*: unusable until a later collection
///     no longer sees the reference.  This models the paper's implicit
///     after-the-fact blacklisting of already-allocated memory.
///   * Blocks optionally place their first slot at a small nonzero
///     offset so object addresses avoid long runs of trailing zeros
///     (the Figure-1 integer-concatenation hazard).
///   * Per-class block selection is address-ordered (lowest block
///     first), the fragmentation-reducing discipline the paper's
///     conclusions recommend; a LIFO mode exists for the ablation.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_HEAP_OBJECTHEAP_H
#define CGC_HEAP_OBJECTHEAP_H

#include "heap/BlockTable.h"
#include "heap/GuardedHeap.h"
#include "heap/HeapUnits.h"
#include "heap/HeapVerifier.h"
#include "heap/ObjectKind.h"
#include "heap/PageAllocator.h"
#include "heap/PageMap.h"
#include "heap/SizeClassTable.h"
#include "heap/TypeDescriptor.h"
#include "heap/VirtualArena.h"
#include <map>
#include <vector>

namespace cgc {

struct ObjectHeapConfig {
  /// Offset the first slot of each small block by two granules so that
  /// no object lands on an address with ~12 trailing zero bits.
  bool AvoidTrailingZeroAddresses = true;
  /// Zero an object's memory when it is freed (sweep or explicit free).
  bool ClearFreedObjects = true;
  /// Pick the lowest-address block with space when allocating (true)
  /// versus the most recently freed-into block (false, LIFO ablation).
  bool AddressOrderedAllocation = true;
  /// Page-run constraint for pointer-containing allocations; set from
  /// the collector's interior-pointer policy.
  PageConstraint PointerPageConstraint = PageConstraint::AllPagesClean;
  /// Defer small-block sweeping to allocation time: collections queue
  /// blocks and allocations sweep them on demand, trading a long
  /// collection pause for amortized per-allocation work.  Large and
  /// uncollectable blocks are always swept eagerly.
  bool LazySweep = false;
  /// Guarded-heap mode: every untyped (LayoutId 0) object carries a
  /// debug header + redzone that sweep and verify re-check through this
  /// layer.  Owned by the Collector; const reads only from here, so
  /// parallel sweep workers validate without synchronization.  The
  /// collector guarantees the quarantine is empty whenever a sweep
  /// runs (every collection flushes it first), so sweep validates all
  /// allocated untyped slots unconditionally.
  const GuardLayer *Guards = nullptr;
};

struct ObjectHeapStats {
  uint64_t ObjectsAllocated = 0;
  uint64_t BytesRequested = 0;
  uint64_t SmallBlocksCreated = 0;
  uint64_t LargeBlocksCreated = 0;
  uint64_t BlocksReleased = 0;
  uint64_t ExplicitFrees = 0;
  /// Slots found pinned by the most recent sweep.
  uint64_t PinnedSlots = 0;
};

struct SweepResult {
  uint64_t BytesSweptFree = 0;
  uint64_t ObjectsSweptFree = 0;
  uint64_t BytesLive = 0;
  uint64_t ObjectsLive = 0;
  uint64_t PagesReleased = 0;
  uint64_t SlotsPinned = 0;
  /// Guarded mode: canary/redzone violations found while sweeping.
  /// Per-worker vectors are concatenated at the merge; the collector
  /// sorts by seqno before reporting, so the order is deterministic
  /// for any worker count.
  std::vector<GuardViolation> GuardViolations;

  /// Folds another result into this one.  Parallel sweeping accumulates
  /// per-worker results and merges them sequentially after the join;
  /// every field is a sum over disjoint blocks, so the merged totals
  /// are identical to a sequential sweep for any worker count.
  void add(const SweepResult &Other) {
    BytesSweptFree += Other.BytesSweptFree;
    ObjectsSweptFree += Other.ObjectsSweptFree;
    BytesLive += Other.BytesLive;
    ObjectsLive += Other.ObjectsLive;
    PagesReleased += Other.PagesReleased;
    SlotsPinned += Other.SlotsPinned;
    GuardViolations.insert(GuardViolations.end(),
                           Other.GuardViolations.begin(),
                           Other.GuardViolations.end());
  }
};

/// What a per-block sweep body decided should happen to its block.
/// The decision is computed in the (possibly parallel) body and applied
/// in the sequential merge step, because releasing a block or re-listing
/// it touches heap-wide structures (page map, page allocator, class
/// lists) that sweep workers must not mutate concurrently.
enum class SweepDisposition : unsigned char {
  /// Block is empty (no allocated, no pinned slots): release its pages.
  Release,
  /// Block has usable free slots: put it back on its class list.
  Relist,
  /// Block is full (or fully pinned): keep it off the class lists.
  Keep,
};

/// Identifies an object (or candidate) resolved by the heap.
struct ObjectRef {
  BlockId Block = InvalidBlockId;
  uint32_t Slot = 0;
  bool valid() const { return Block != InvalidBlockId; }
};

class ObjectHeap {
public:
  ObjectHeap(VirtualArena &Arena, PageAllocator &Pages, PageMap &Map,
             BlockTable &Blocks, const ObjectHeapConfig &Config);

  /// Allocates from existing blocks/free slots only; nullptr when a new
  /// block (and possibly a collection) is needed.  Small sizes only.
  void *allocateFromExisting(size_t Bytes, ObjectKind Kind);

  //===--------------------------------------------------------------===//
  // Thread-cache support (heap/ThreadCache.h).  Callers hold the heap
  // lock.  A reserved slot looks allocated (AllocBits set, counters
  // charged) so nothing reclaims it while it sits in a cache; releasing
  // an unused slot reverses the reservation exactly, and the running
  // debt lets the verifier prove every reservation was either handed to
  // the client or returned.
  //===--------------------------------------------------------------===//

  /// Reserves one free untyped Normal-kind slot of size class \p Class
  /// for a thread cache, through the ordinary address-ordered (or LIFO)
  /// block discipline.  nullptr when the class needs a new block.
  void *reserveCacheSlot(unsigned Class);

  /// Reserves one free slot of Precise descriptor \p Id for a thread
  /// cache (the typed analogue of reserveCacheSlot; caches are keyed by
  /// {size class, descriptor} and typed stubs draw from the
  /// descriptor's own block list).  nullptr when the descriptor needs a
  /// new block.
  void *reserveTypedCacheSlot(LayoutId Id);

  /// Returns an unused cached slot to the free state, reversing its
  /// reservation's accounting (allocated bytes/count, lifetime object
  /// and requested-byte stats).
  void releaseCacheSlot(void *Ptr);

  /// Reserved-minus-released cache slots over the heap's lifetime:
  /// slots currently cached plus slots handed to the client.  After a
  /// full cache flush this equals the client-held handouts; the
  /// collector cross-checks it against the registry's counters.
  uint64_t cacheSlotDebt() const { return CacheSlotDebt; }

  /// Sets the mark bit on a reserved cache slot that could not be
  /// flushed (its owner is frozen by the watchdog's suspend signal), so
  /// the coming sweep treats it as live instead of reclaiming it out
  /// from under the suspended owner.  Call after marking, before the
  /// sweep.  Allocation-free.
  void markCachedSlotLive(const void *Ptr);

  /// Sets the mark bit on an allocated object (small or large): pins an
  /// object allocated from a mid-collection callback so the cycle's own
  /// sweep cannot reclaim it before the callback returns.
  /// Allocation-free.
  void markAllocatedObjectLive(const void *Ptr);

  /// Size-class geometry, exposed for the thread caches.
  unsigned numSizeClasses() const { return SizeClasses.numClasses(); }
  unsigned sizeClassFor(size_t Bytes) const {
    return SizeClasses.classForSize(Bytes);
  }
  size_t sizeClassBytes(unsigned Class) const {
    return SizeClasses.classSize(Class);
  }

  /// Acquires a fresh page for \p Bytes's size class; false on OOM.
  bool addBlockForClass(size_t Bytes, ObjectKind Kind);

  /// Allocates a large object on its own page run; nullptr on OOM.
  /// With \p IgnoreOffPage, only first-page pointers retain the object
  /// (and only the first page needs to be blacklist-clean).
  void *allocateLarge(size_t Bytes, ObjectKind Kind,
                      bool IgnoreOffPage = false);

  /// Registers (interning) a type descriptor; \returns its id.
  /// \p PointerWords[I] true means word I may hold a pointer.  All-true
  /// and all-false bitmaps classify as degenerate Conservative /
  /// PointerFree descriptors whose allocations route onto the ordinary
  /// kind paths (see heap/TypeDescriptor.h); only mixed bitmaps mint
  /// Precise descriptors with typed blocks.
  LayoutId registerLayout(const std::vector<bool> &PointerWords,
                          size_t SizeBytes);

  /// \returns the interned descriptor (Id must be valid and nonzero).
  const TypeDescriptor &layout(LayoutId Id) const {
    return Descriptors.get(Id);
  }

  /// The descriptor registry (for reports and tests).
  const TypeDescriptorTable &descriptorTable() const { return Descriptors; }

  /// Allocates an object with a registered descriptor.  Precise
  /// descriptors use typed (LayoutId != 0) Normal-kind blocks and are
  /// scanned precisely; degenerate descriptors route onto the untyped
  /// Normal / PointerFree paths.  Small sizes only; nullptr when a new
  /// block is needed (drive with addBlockForLayout, as with the untyped
  /// path).
  void *allocateTypedFromExisting(LayoutId Id);
  bool addBlockForLayout(LayoutId Id);

  /// How an explicit-free candidate pointer classifies, computed
  /// without mutating anything; the collector's free-path validation
  /// turns the bad classes into warnings (unguarded) or structured
  /// incidents (guarded) instead of undefined behavior.
  enum class FreeClass : unsigned char {
    /// An allocated object base: deallocateExplicit will succeed.
    Ok,
    /// Not inside the heap arena's committed object pages.
    NonHeap,
    /// Inside the heap but not an object base (interior or slop).
    NotObjectBase,
    /// A valid slot base that is not currently allocated (double free
    /// or a pointer into a swept block).
    NotAllocated,
  };
  FreeClass classifyExplicitFree(const void *Ptr) const;

  /// Explicitly frees \p Ptr (any kind).  Required for Uncollectable
  /// objects; legal for others (leak-detector workloads free manually).
  /// Aborts on invalid frees; callers wanting graceful handling must
  /// classifyExplicitFree first (the Collector's free path does).
  void deallocateExplicit(void *Ptr);

  /// Resolves an exact object base address; invalid ref otherwise.
  ObjectRef refForBase(WindowOffset Offset) const;

  /// \returns the object's base window offset.
  WindowOffset baseOffset(ObjectRef Ref) const;

  /// \returns the client-visible size of the object.
  size_t objectSize(ObjectRef Ref) const;

  bool isAllocated(ObjectRef Ref) const {
    return Blocks.get(Ref.Block).AllocBits.test(Ref.Slot);
  }

  /// Clears every mark bit; called at the start of a collection.
  /// With lazy sweeping, any still-pending blocks are swept first —
  /// their mark bits are about to be invalidated.
  void clearMarks();

  /// Reclaims unmarked objects, pins marked-free slots, releases empty
  /// blocks.  Uncollectable blocks are exempt from reclamation.  With
  /// LazySweep, small blocks are only *queued*: allocations (or the
  /// next collection) sweep them on demand, and the returned counts
  /// cover the eagerly-swept blocks only.
  ///
  /// This is the sequential entry point, equivalent to
  /// beginSweep + sweepSmallBlock per plan entry + finishSweep; the
  /// parallel Sweep phase (core/SweepContext.h) drives those pieces
  /// directly, sharding the small-block list across pool workers.
  SweepResult sweep();

  //===--------------------------------------------------------------===//
  // Sweep, decomposed for (optionally parallel) execution.
  //
  // The sequential sweep() above and the parallel SweepContext both run
  // exactly this pipeline; with one worker the sharded path degenerates
  // to the sequential one instruction for instruction, which is what
  // keeps SweepThreads a pure performance knob.
  //===--------------------------------------------------------------===//

  /// The sequential prologue's output: which blocks the (possibly
  /// parallel) per-block stage must sweep, and which large blocks the
  /// epilogue must release.
  struct SweepPlan {
    /// Small collectable blocks to sweep, in block-id order (empty
    /// under LazySweep — those were queued instead).  Id order is the
    /// order the sequential sweep visits blocks, and the merge step
    /// applies dispositions in this order so LIFO free lists come out
    /// identical for any worker count.
    std::vector<BlockId> SmallBlocks;
    /// Unmarked large blocks, released by finishSweep (the sequential
    /// sweep has always deferred large releases to after the small
    /// loop; keeping that order keeps free-page runs bit-identical).
    std::vector<BlockId> LargeToRelease;
  };

  /// Sequential sweep prologue: empties every class list, queues small
  /// blocks for lazy sweeping (LazySweep) or collects them into the
  /// returned plan, and handles uncollectable and large blocks inline
  /// (they are cheap: per-slot bit scans with no memory clearing).
  /// Accumulates their counters into \p Result.
  SweepPlan beginSweep(SweepResult &Result);

  /// Re-entrant per-block sweep body: frees unmarked slots, pins
  /// marked-free slots, and accumulates counters into \p Result —
  /// touching ONLY \p Block's own metadata, the block's pages, and
  /// \p Result.  Safe to run concurrently on disjoint blocks.  The
  /// block's disposition is returned through \p Disposition; \returns
  /// the freed bytes the sequential merge must subtract from the
  /// heap-wide allocated-bytes counter.
  uint64_t sweepSmallBlockBody(BlockDescriptor &Block, SweepResult &Result,
                               SweepDisposition &Disposition);

  /// Sequential merge step for one block: folds \p BytesFreed into the
  /// heap totals and applies \p Disposition (release / re-list / keep).
  /// Must be called in SweepPlan order.  \returns false if the block
  /// was released.
  bool applySweepDisposition(BlockId Id, SweepDisposition Disposition,
                             uint64_t BytesFreed);

  /// Sequential sweep epilogue: releases the plan's large blocks and
  /// publishes \p Result's pinned-slot total into the heap stats.
  void finishSweep(const SweepPlan &Plan, const SweepResult &Result);

  /// Sweeps one small block against its current mark bits: body +
  /// disposition in one sequential step.  Releases the block if empty,
  /// re-lists it when usable.  \returns false if the block was
  /// released.  (Lazy sweeping drives this from allocation; the
  /// sequential Sweep phase drives it per plan entry.)
  bool sweepSmallBlock(BlockId Id, SweepResult &Result);

  /// Sweeps every block still pending from the last collection.
  void finishPendingSweeps();

  /// Number of blocks queued and not yet swept.
  size_t pendingSweepCount() const { return PendingSweeps; }

  /// Runs the deep heap verifier (heap/HeapVerifier.h): block table ↔
  /// page map ↔ free runs ↔ class lists ↔ bitmaps/byte accounting.
  /// Accumulates a diagnostic report instead of aborting.  O(heap);
  /// intended for tests and debugging sessions.
  HeapVerifyReport verify();

  /// verify(), with the historical abort semantics: prints the full
  /// report and fatals on any inconsistency.
  void verifyHeap();

  /// The verifier's self-healing pass (HeapVerifier::verifyAndRepair):
  /// counters resynced from bitmaps, page map re-derived, class lists
  /// and free runs rebuilt, irreparable blocks quarantined.  Callers
  /// must hold the heap lock with the world stopped.
  HeapVerifyReport verifyAndRepair(HeapRepairStats &Stats);

  /// Deterministic metadata corruption (the Metadata* fault-injection
  /// sites): each armed site that fires mutilates live metadata exactly
  /// the way a wild client store would — a header counter bit-flip, a
  /// smashed free-list link, a clobbered page-map entry, a stray alloc
  /// bit.  Driven by the collector at collection entry (after any
  /// unsealing) so corrupt-soak runs replay bit-for-bit.  No-op when
  /// nothing fires.
  void injectMetadataFaults();

  const ObjectHeapStats &stats() const { return Stats; }

  /// Total bytes in allocated slots (client-usable view of heap usage).
  uint64_t allocatedBytes() const { return AllocatedBytes; }

  /// Calls \p Fn(BlockId, BlockDescriptor&) for every live block.
  template <typename FnT> void forEachBlock(FnT Fn) { Blocks.forEach(Fn); }

  VirtualArena &arena() { return Arena; }
  BlockTable &blockTable() { return Blocks; }

  /// When set, pointer-containing page runs accept AllPagesClean →
  /// FirstPageClean relaxation: the allocation ladder's emergency mode
  /// trades blacklist avoidance for survival right before reporting
  /// out-of-memory.
  void setEmergencyPageRelaxation(bool On) { EmergencyRelaxation = On; }

private:
  friend class HeapVerifier;
  struct ClassList {
    /// Blocks of this (kind, class) with at least one usable slot,
    /// keyed by start page: begin() is the lowest-address block.
    std::map<PageIndex, BlockId> Partial;
    /// LIFO stack used instead of Partial when address-ordered
    /// allocation is disabled.
    std::vector<BlockId> Stack;
    /// Lazy sweeping: blocks of this class queued by the last
    /// collection, swept on demand when Partial/Stack run dry.
    std::vector<BlockId> Unswept;
  };

  void *takeSlot(BlockId Id, BlockDescriptor &Block);
  /// Picks the block the next slot of \p List should come from (address
  /// order or pruned LIFO, then lazily-swept blocks); InvalidBlockId
  /// when the class needs a fresh block.  \p Kind/\p SlotSize validate
  /// stale LIFO stack entries; pass layout blocks through unchanged.
  BlockId pickAllocationBlock(ClassList &List, ObjectKind Kind,
                              size_t SlotSize, LayoutId Layout);
  BlockId createSmallBlock(size_t SlotSize, ObjectKind Kind,
                           LayoutId Layout);
  /// Guarded mode: re-checks the header canaries and redzone of every
  /// allocated untyped slot in \p Block, appending violations to
  /// \p Result.  Pure reads of the block's pages and bitmaps, so sweep
  /// workers can run it concurrently on disjoint blocks.
  void validateGuardedBlock(const BlockDescriptor &Block,
                            SweepResult &Result);
  /// Sweeps queued blocks of \p List until one offers a usable slot.
  /// \returns that block id, or InvalidBlockId.
  BlockId sweepUnsweptForAllocation(ClassList &List);
  void releaseBlock(BlockId Id);
  void removeFromClassList(BlockDescriptor &Block, BlockId Id);
  void addToClassList(BlockDescriptor &Block, BlockId Id);
  ClassList &classListFor(const BlockDescriptor &Block);
  PageConstraint constraintFor(ObjectKind Kind, bool Large) const;

  VirtualArena &Arena;
  PageAllocator &Pages;
  PageMap &Map;
  BlockTable &Blocks;
  ObjectHeapConfig Config;
  SizeClassTable SizeClasses;
  /// One class list per (kind, size class).
  std::vector<ClassList> ClassLists;
  /// Class lists for typed blocks, keyed by descriptor id (each
  /// descriptor has one slot size, hence one list).
  std::map<LayoutId, ClassList> TypedClassLists;
  TypeDescriptorTable Descriptors;
  ObjectHeapStats Stats;
  uint64_t AllocatedBytes = 0;
  uint64_t CacheSlotDebt = 0;
  size_t PendingSweeps = 0;
  bool EmergencyRelaxation = false;
};

} // namespace cgc

#endif // CGC_HEAP_OBJECTHEAP_H
