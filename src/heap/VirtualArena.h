//===- heap/VirtualArena.h - Reserved address-space window -----*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reserves one contiguous window of virtual address space and performs
/// machine-address <-> window-offset conversions.  Pages are committed
/// lazily by the OS, so reserving a 4 GiB window costs nothing until the
/// heap actually touches pages.
///
/// The window serves two purposes:
///   1. It gives the collector full control over heap *placement*, which
///      the paper identifies as an inexpensive way to reduce pointer
///      misidentification ("properly positioning the heap in the address
///      space").
///   2. It models the 32-bit address space of the paper's platforms:
///      the simulated 1993 root segments hold 32-bit window offsets, and
///      a random data word hits the heap with probability
///      heap-size / window-size, exactly as on the paper's machines.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_HEAP_VIRTUALARENA_H
#define CGC_HEAP_VIRTUALARENA_H

#include "heap/HeapUnits.h"
#include "support/Assert.h"

namespace cgc {

class VirtualArena {
public:
  /// Reserves \p SizeBytes of address space (rounded up to a page).
  /// Aborts on reservation failure: without a window there is no heap.
  explicit VirtualArena(uint64_t SizeBytes);
  ~VirtualArena();

  VirtualArena(const VirtualArena &) = delete;
  VirtualArena &operator=(const VirtualArena &) = delete;

  Address base() const { return Base; }
  uint64_t size() const { return Size; }
  PageIndex numPages() const {
    return static_cast<PageIndex>(Size >> PageSizeLog2);
  }

  bool contains(Address Addr) const {
    return Addr >= Base && Addr < Base + Size;
  }

  bool containsOffset(WindowOffset Offset) const { return Offset < Size; }

  WindowOffset offsetOf(Address Addr) const {
    CGC_ASSERT(contains(Addr), "address outside the arena");
    return Addr - Base;
  }

  Address addressOf(WindowOffset Offset) const {
    CGC_ASSERT(containsOffset(Offset), "offset outside the arena");
    return Base + Offset;
  }

  void *pointerTo(WindowOffset Offset) const {
    return reinterpret_cast<void *>(addressOf(Offset));
  }

  /// Releases the physical pages backing [Offset, Offset+Bytes) back to
  /// the OS while keeping the reservation.  The next touch reads zeros.
  /// The page allocator calls this when whole blocks are freed, both to
  /// bound RSS and because returning zeroed pages removes stale pointer
  /// data (the paper's "clean up after yourself" discipline).
  void decommit(WindowOffset Offset, uint64_t Bytes);

private:
  Address Base = 0;
  uint64_t Size = 0;
};

} // namespace cgc

#endif // CGC_HEAP_VIRTUALARENA_H
