//===- heap/SizeClassTable.h - Small-object size classes -------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Size classes for small objects.  Objects up to MaxSmallObjectBytes are
/// carved out of single-page blocks of identical-size slots; larger
/// requests get dedicated page runs.  Sizes up to FineGrainedLimit round
/// to the 8-byte granule (the paper's experiments revolve around 8-byte
/// cons cells, so fine granularity at the bottom matters); above that,
/// classes widen to limit per-kind free-list count.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_HEAP_SIZECLASSTABLE_H
#define CGC_HEAP_SIZECLASSTABLE_H

#include "heap/HeapUnits.h"
#include "support/Assert.h"
#include <array>

namespace cgc {

/// Largest request served from shared small-object pages.
constexpr size_t MaxSmallObjectBytes = 2048;

/// Below this size, classes step by one granule (8 bytes).
constexpr size_t FineGrainedLimit = 512;

/// Above FineGrainedLimit, classes step by this many bytes.
constexpr size_t CoarseStepBytes = 128;

class SizeClassTable {
public:
  SizeClassTable();

  /// Number of distinct size classes.
  unsigned numClasses() const { return NumClasses; }

  /// \returns the class index serving a request of \p Bytes
  /// (1 <= Bytes <= MaxSmallObjectBytes).
  unsigned classForSize(size_t Bytes) const {
    CGC_ASSERT(Bytes > 0 && Bytes <= MaxSmallObjectBytes,
               "size out of small-object range");
    return GranulesToClass[(Bytes + GranuleBytes - 1) / GranuleBytes];
  }

  /// \returns the slot size (bytes) of class \p Class.
  size_t classSize(unsigned Class) const {
    CGC_ASSERT(Class < NumClasses, "size class out of range");
    return ClassSizes[Class];
  }

  /// \returns true if a request of \p Bytes is a small object.
  static bool isSmall(size_t Bytes) { return Bytes <= MaxSmallObjectBytes; }

private:
  static constexpr size_t MaxGranules = MaxSmallObjectBytes / GranuleBytes;

  unsigned NumClasses = 0;
  std::array<size_t, 1 + (FineGrainedLimit / GranuleBytes) +
                         (MaxSmallObjectBytes - FineGrainedLimit) /
                             CoarseStepBytes>
      ClassSizes{};
  std::array<unsigned, MaxGranules + 1> GranulesToClass{};
};

} // namespace cgc

#endif // CGC_HEAP_SIZECLASSTABLE_H
