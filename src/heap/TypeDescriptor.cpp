//===- heap/TypeDescriptor.cpp - Interned type layout descriptors ---------===//

#include "heap/TypeDescriptor.h"
#include "heap/HeapUnits.h"

using namespace cgc;

namespace {

/// Index of the lowest set bit at or after \p From within \p Bits,
/// or 64 when none.
uint32_t firstSetFrom(uint64_t Bits, uint32_t From) {
  if (From >= 64)
    return 64;
  uint64_t Masked = Bits & (~uint64_t(0) << From);
  if (Masked == 0)
    return 64;
  return static_cast<uint32_t>(__builtin_ctzll(Masked));
}

} // namespace

uint32_t TypeDescriptor::findPointerWord(uint32_t From) const {
  if (From >= NumWords)
    return NumWords;
  if (usesInlineBitmap()) {
    uint32_t Bit = firstSetFrom(InlineBits, From);
    return Bit >= NumWords ? NumWords : Bit;
  }
  uint32_t WordIdx = From / 64;
  uint32_t BitIdx = From % 64;
  for (; WordIdx != OutOfLineBits.size(); ++WordIdx, BitIdx = 0) {
    uint32_t Bit = firstSetFrom(OutOfLineBits[WordIdx], BitIdx);
    if (Bit != 64) {
      uint32_t Index = WordIdx * 64 + Bit;
      return Index >= NumWords ? NumWords : Index;
    }
  }
  return NumWords;
}

uint32_t TypeDescriptor::pointerWordCount() const {
  if (usesInlineBitmap())
    return static_cast<uint32_t>(__builtin_popcountll(InlineBits));
  uint32_t Count = 0;
  for (uint64_t Bits : OutOfLineBits)
    Count += static_cast<uint32_t>(__builtin_popcountll(Bits));
  return Count;
}

LayoutId TypeDescriptorTable::intern(const std::vector<bool> &PointerWords,
                                     uint32_t SizeBytes) {
  CGC_CHECK(SizeBytes > 0 && SizeBytes % WordBytes == 0,
            "descriptor size must be a positive word multiple");
  uint32_t NumWords = SizeBytes / WordBytes;

  // Normalize to a fixed-width bitmap: words past the provided vector
  // (and any vector entries past the object) are pointer-free.
  std::vector<uint64_t> Bits((NumWords + 63) / 64, 0);
  uint32_t SetCount = 0;
  for (uint32_t I = 0; I != NumWords && I != PointerWords.size(); ++I) {
    if (!PointerWords[I])
      continue;
    Bits[I / 64] |= uint64_t(1) << (I % 64);
    ++SetCount;
  }

  auto Key = std::make_pair(SizeBytes, Bits);
  auto Found = Ids.find(Key);
  if (Found != Ids.end())
    return Found->second;

  TypeDescriptor D;
  D.SizeBytes = SizeBytes;
  D.NumWords = NumWords;
  if (SetCount == 0)
    D.Class = DescriptorClass::PointerFree;
  else if (SetCount == NumWords)
    D.Class = DescriptorClass::Conservative;
  else
    D.Class = DescriptorClass::Precise;
  if (NumWords <= TypeDescriptor::InlineWordLimit)
    D.InlineBits = Bits[0];
  else
    D.OutOfLineBits = Bits;
  Table.push_back(std::move(D));
  LayoutId Id = static_cast<LayoutId>(Table.size());
  Ids.emplace(std::move(Key), Id);
  return Id;
}
