//===- heap/HeapUnits.h - Fundamental heap units and types -----*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Units shared by every heap component.
///
/// The collector manages memory inside a single reserved *window* of
/// virtual address space (default 4 GiB).  The window models the 32-bit
/// address space the paper's experiments ran in: misidentification
/// probabilities depend on the heap's size and placement *relative to
/// the space of likely data values*, so experiments reason in window
/// offsets ("window addresses") while real machine pointers are
/// window-base + offset.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_HEAP_HEAPUNITS_H
#define CGC_HEAP_HEAPUNITS_H

#include <cstddef>
#include <cstdint>

namespace cgc {

/// A real machine address.
using Address = uintptr_t;

/// A byte offset within the collector's reserved window; the unit in
/// which experiments and the blacklist reason about "addresses".
using WindowOffset = uint64_t;

/// Index of a page within the window.
using PageIndex = uint32_t;

/// Identifier of a block descriptor; 0 means "no block".
using BlockId = uint32_t;

constexpr BlockId InvalidBlockId = 0;

constexpr unsigned PageSizeLog2 = 12;
constexpr size_t PageSize = size_t(1) << PageSizeLog2; // 4 KiB

/// Minimum object size and alignment, matching the paper's 8-byte cells.
constexpr size_t GranuleBytes = 8;

/// Size of a scanned word (native pointer width).
constexpr size_t WordBytes = sizeof(void *);

constexpr PageIndex pageOfOffset(WindowOffset Offset) {
  return static_cast<PageIndex>(Offset >> PageSizeLog2);
}

constexpr WindowOffset offsetOfPage(PageIndex Page) {
  return static_cast<WindowOffset>(Page) << PageSizeLog2;
}

} // namespace cgc

#endif // CGC_HEAP_HEAPUNITS_H
