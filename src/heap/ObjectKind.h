//===- heap/ObjectKind.h - Allocation kinds --------------------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Allocation kinds.  The paper stresses that a conservative collector
/// must let clients declare that "an entire large object contains no
/// pointers" (compressed bitmaps, IO buffers); such POINTER_FREE objects
/// are never scanned and may be placed on blacklisted pages, since very
/// little memory can ever be retained through them.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_HEAP_OBJECTKIND_H
#define CGC_HEAP_OBJECTKIND_H

namespace cgc {

enum class ObjectKind : unsigned char {
  /// May contain pointers anywhere; scanned conservatively.
  Normal,
  /// Guaranteed pointer-free ("atomic" in bdwgc terms); never scanned,
  /// eligible for placement on blacklisted pages.
  PointerFree,
  /// Scanned for pointers but never reclaimed by the collector; freed
  /// only by explicit deallocation.  Used to model client data that the
  /// mutator manages manually (and by the leak-detector use case).
  Uncollectable,
  /// Pointer-free AND uncollectable (bdwgc's
  /// GC_malloc_atomic_uncollectable): never scanned, never reclaimed by
  /// the collector, freed only explicitly.  The natural kind for
  /// manually managed buffers that must not pin or be pinned.
  PointerFreeUncollectable,
};

constexpr unsigned NumObjectKinds = 4;

/// True for the kinds whose payload is never scanned for pointers.
constexpr bool kindIsPointerFree(ObjectKind Kind) {
  return Kind == ObjectKind::PointerFree ||
         Kind == ObjectKind::PointerFreeUncollectable;
}

/// True for the kinds the collector never reclaims (explicit free only).
constexpr bool kindIsUncollectable(ObjectKind Kind) {
  return Kind == ObjectKind::Uncollectable ||
         Kind == ObjectKind::PointerFreeUncollectable;
}

constexpr const char *objectKindName(ObjectKind Kind) {
  switch (Kind) {
  case ObjectKind::Normal:
    return "normal";
  case ObjectKind::PointerFree:
    return "pointer-free";
  case ObjectKind::Uncollectable:
    return "uncollectable";
  case ObjectKind::PointerFreeUncollectable:
    return "pointer-free-uncollectable";
  }
  return "unknown";
}

} // namespace cgc

#endif // CGC_HEAP_OBJECTKIND_H
