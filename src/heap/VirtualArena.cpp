//===- heap/VirtualArena.cpp - Reserved address-space window --------------===//

#include "heap/VirtualArena.h"
#include "support/MathExtras.h"
#include <sys/mman.h>

using namespace cgc;

VirtualArena::VirtualArena(uint64_t SizeBytes) {
  Size = alignTo(SizeBytes, PageSize);
  // MAP_NORESERVE: reserve address space only; pages are committed on
  // first touch.  The window is writable so the heap can use any page
  // without further syscalls.
  void *Mapped = ::mmap(nullptr, Size, PROT_READ | PROT_WRITE,
                        MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  CGC_CHECK(Mapped != MAP_FAILED, "failed to reserve the heap window");
  Base = reinterpret_cast<Address>(Mapped);
}

VirtualArena::~VirtualArena() {
  if (Base != 0)
    ::munmap(reinterpret_cast<void *>(Base), Size);
}

void VirtualArena::decommit(WindowOffset Offset, uint64_t Bytes) {
  CGC_ASSERT(isAligned(Offset, PageSize) && isAligned(Bytes, PageSize),
             "decommit range must be page aligned");
  CGC_ASSERT(Offset + Bytes <= Size, "decommit range outside the arena");
  if (Bytes == 0)
    return;
  // MADV_DONTNEED discards the pages; subsequent reads see zero-filled
  // memory, which is exactly the "freshly allocated" state we want.
  ::madvise(reinterpret_cast<void *>(Base + Offset), Bytes, MADV_DONTNEED);
}
