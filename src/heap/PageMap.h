//===- heap/PageMap.h - Page index to block mapping ------------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps every window page to the block occupying it (or none).  This is
/// the first step of the conservative pointer validity test, so lookup
/// must be a constant-time array index.  A flat array over a 4 GiB
/// window is 1 M entries of 4 bytes — an acceptable fixed cost for the
/// O(1) hot path.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_HEAP_PAGEMAP_H
#define CGC_HEAP_PAGEMAP_H

#include "heap/HeapUnits.h"
#include "support/Assert.h"
#include <vector>

namespace cgc {

class PageMap {
public:
  explicit PageMap(PageIndex NumPages)
      : Entries(NumPages, InvalidBlockId) {}

  BlockId blockAt(PageIndex Page) const {
    return Page < Entries.size() ? Entries[Page] : InvalidBlockId;
  }

  void assignRun(PageIndex Start, uint32_t NumPages, BlockId Id) {
    CGC_ASSERT(uint64_t(Start) + NumPages <= Entries.size(),
               "page run outside the window");
    for (uint32_t I = 0; I != NumPages; ++I) {
      CGC_ASSERT(Entries[Start + I] == InvalidBlockId,
                 "assigning an occupied page");
      Entries[Start + I] = Id;
    }
  }

  void clearRun(PageIndex Start, uint32_t NumPages) {
    CGC_ASSERT(uint64_t(Start) + NumPages <= Entries.size(),
               "page run outside the window");
    for (uint32_t I = 0; I != NumPages; ++I)
      Entries[Start + I] = InvalidBlockId;
  }

private:
  std::vector<BlockId> Entries;
};

} // namespace cgc

#endif // CGC_HEAP_PAGEMAP_H
