//===- heap/PageMap.h - Page index to block mapping ------------*- C++ -*-===//
//
// Part of the cgc project: a reproduction of Boehm, "Space Efficient
// Conservative Garbage Collection", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps every window page to the block occupying it (or none).  This is
/// the first step of the conservative pointer validity test, so lookup
/// must be a constant-time array index.  A flat array over a 4 GiB
/// window is 1 M entries of 4 bytes — an acceptable fixed cost for the
/// O(1) hot path.
///
/// The entry array can optionally live in a MetadataArena so sealed
/// collectors take a fault (and a structured incident) instead of
/// silent corruption when client code scribbles on it.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_HEAP_PAGEMAP_H
#define CGC_HEAP_PAGEMAP_H

#include "heap/HeapUnits.h"
#include "support/Assert.h"
#include "support/MetadataArena.h"
#include <vector>

namespace cgc {

class PageMap {
public:
  explicit PageMap(PageIndex NumPages, MetadataArena *Arena = nullptr)
      : Entries(NumPages, InvalidBlockId, MetadataAllocator<BlockId>(Arena)) {}

  BlockId blockAt(PageIndex Page) const {
    return Page < Entries.size() ? Entries[Page] : InvalidBlockId;
  }

  void assignRun(PageIndex Start, uint32_t NumPages, BlockId Id) {
    CGC_ASSERT(uint64_t(Start) + NumPages <= Entries.size(),
               "page run outside the window");
    for (uint32_t I = 0; I != NumPages; ++I) {
      CGC_ASSERT(Entries[Start + I] == InvalidBlockId,
                 "assigning an occupied page");
      Entries[Start + I] = Id;
    }
  }

  void clearRun(PageIndex Start, uint32_t NumPages) {
    CGC_ASSERT(uint64_t(Start) + NumPages <= Entries.size(),
               "page run outside the window");
    for (uint32_t I = 0; I != NumPages; ++I)
      Entries[Start + I] = InvalidBlockId;
  }

  /// Overwrites one entry with no occupancy checking.  Repair code uses
  /// this to re-derive entries from the block table, and fault
  /// injection uses it to clobber them; neither can honor assignRun's
  /// "previously empty" contract.
  void setRaw(PageIndex Page, BlockId Id) {
    CGC_ASSERT(Page < Entries.size(), "page outside the window");
    Entries[Page] = Id;
  }

  /// Entry storage bounds, for attributing a wild metadata write to
  /// this map.  \returns the faulted page index via \p PageOut when
  /// \p Addr lands inside the entry array.
  bool attributeAddress(const void *Addr, PageIndex &PageOut) const {
    uintptr_t A = reinterpret_cast<uintptr_t>(Addr);
    uintptr_t Base = reinterpret_cast<uintptr_t>(Entries.data());
    if (A < Base || A >= Base + Entries.size() * sizeof(BlockId))
      return false;
    PageOut = static_cast<PageIndex>((A - Base) / sizeof(BlockId));
    return true;
  }

private:
  std::vector<BlockId, MetadataAllocator<BlockId>> Entries;
};

} // namespace cgc

#endif // CGC_HEAP_PAGEMAP_H
