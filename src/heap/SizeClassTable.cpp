//===- heap/SizeClassTable.cpp - Small-object size classes ----------------===//

#include "heap/SizeClassTable.h"

using namespace cgc;

SizeClassTable::SizeClassTable() {
  // Fine-grained classes: 8, 16, ..., FineGrainedLimit.
  for (size_t Size = GranuleBytes; Size <= FineGrainedLimit;
       Size += GranuleBytes)
    ClassSizes[NumClasses++] = Size;
  // Coarse classes: FineGrainedLimit + 128, ..., MaxSmallObjectBytes.
  for (size_t Size = FineGrainedLimit + CoarseStepBytes;
       Size <= MaxSmallObjectBytes; Size += CoarseStepBytes)
    ClassSizes[NumClasses++] = Size;

  // Invert: granule count -> smallest class whose slot size fits it.
  unsigned Class = 0;
  for (size_t Granules = 1; Granules <= MaxGranules; ++Granules) {
    size_t Bytes = Granules * GranuleBytes;
    while (ClassSizes[Class] < Bytes)
      ++Class;
    GranulesToClass[Granules] = Class;
  }
  GranulesToClass[0] = 0;
}
