//===- heap/BlockTable.cpp - Block descriptors ----------------------------===//

#include "heap/BlockTable.h"

using namespace cgc;

BlockTable::~BlockTable() {
  for (BlockDescriptor *D : Blocks)
    if (D)
      deleteDescriptor(D);
}

BlockDescriptor *BlockTable::newDescriptor() {
  if (!Arena)
    return new BlockDescriptor();
  void *Mem = Arena->allocate(sizeof(BlockDescriptor),
                              alignof(BlockDescriptor) > 16
                                  ? 16
                                  : alignof(BlockDescriptor));
  return new (Mem) BlockDescriptor();
}

void BlockTable::deleteDescriptor(BlockDescriptor *D) {
  if (!Arena) {
    delete D;
    return;
  }
  D->~BlockDescriptor();
  Arena->deallocate(D, sizeof(BlockDescriptor));
}

BlockId BlockTable::create() {
  ++NumLive;
  if (!FreeIds.empty()) {
    BlockId Id = FreeIds.back();
    FreeIds.pop_back();
    Blocks[Id - 1] = newDescriptor();
    return Id;
  }
  Blocks.push_back(newDescriptor());
  return static_cast<BlockId>(Blocks.size());
}

void BlockTable::destroy(BlockId Id) {
  CGC_CHECK(isLive(Id), "destroying a dead block id");
  deleteDescriptor(Blocks[Id - 1]);
  Blocks[Id - 1] = nullptr;
  FreeIds.push_back(Id);
  --NumLive;
}
