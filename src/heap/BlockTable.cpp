//===- heap/BlockTable.cpp - Block descriptors ----------------------------===//

#include "heap/BlockTable.h"

using namespace cgc;

BlockId BlockTable::create() {
  ++NumLive;
  if (!FreeIds.empty()) {
    BlockId Id = FreeIds.back();
    FreeIds.pop_back();
    Blocks[Id - 1] = std::make_unique<BlockDescriptor>();
    return Id;
  }
  Blocks.push_back(std::make_unique<BlockDescriptor>());
  return static_cast<BlockId>(Blocks.size());
}

void BlockTable::destroy(BlockId Id) {
  CGC_CHECK(isLive(Id), "destroying a dead block id");
  Blocks[Id - 1].reset();
  FreeIds.push_back(Id);
  --NumLive;
}
